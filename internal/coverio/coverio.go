// Package coverio persists model covers to disk so a restarted server
// serves queries immediately instead of re-running Ad-KMN over every
// window — the model_cover table of Figure 1 made durable, next to the
// store's raw-tuple segments.
//
// File format (little endian):
//
//	magic   uint32  "EMCV"
//	count   uint32
//	count × {
//	    window  int64    window index c
//	    length  uint32   payload bytes
//	    payload []byte   wire.Binary-encoded ModelResponse
//	    crc     uint32   CRC-32 (IEEE) of payload
//	}
//
// Covers round-trip through the same wire form the model-cache protocol
// ships, so persistence exercises exactly one serialization path.
package coverio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/wire"
)

const magic = 0x454d4356 // "EMCV"

// ErrCorrupt is returned for malformed snapshot files.
var ErrCorrupt = errors.New("coverio: corrupt snapshot")

// Write serializes covers (keyed by window index) to w.
func Write(w io.Writer, covers map[int]*core.Cover) error {
	idxs := make([]int, 0, len(covers))
	for c := range covers {
		idxs = append(idxs, c)
	}
	sort.Ints(idxs)

	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(idxs)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, c := range idxs {
		resp, err := wire.ModelResponseFromCover(covers[c])
		if err != nil {
			return fmt.Errorf("coverio: window %d: %w", c, err)
		}
		payload, err := wire.Binary.Encode(resp)
		if err != nil {
			return fmt.Errorf("coverio: window %d: %w", c, err)
		}
		var rec [12]byte
		binary.LittleEndian.PutUint64(rec[0:], uint64(int64(c)))
		binary.LittleEndian.PutUint32(rec[8:], uint32(len(payload)))
		if _, err := w.Write(rec[:]); err != nil {
			return err
		}
		if _, err := w.Write(payload); err != nil {
			return err
		}
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
		if _, err := w.Write(crc[:]); err != nil {
			return err
		}
	}
	return nil
}

// Read deserializes a snapshot.
func Read(r io.Reader) (map[int]*core.Cover, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	count := binary.LittleEndian.Uint32(hdr[4:])
	const maxCovers = 1 << 20
	if count > maxCovers {
		return nil, fmt.Errorf("%w: %d covers", ErrCorrupt, count)
	}
	out := make(map[int]*core.Cover, count)
	for i := uint32(0); i < count; i++ {
		var rec [12]byte
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: record %d header: %v", ErrCorrupt, i, err)
		}
		c := int(int64(binary.LittleEndian.Uint64(rec[0:])))
		n := binary.LittleEndian.Uint32(rec[8:])
		if n > 16<<20 {
			return nil, fmt.Errorf("%w: record %d claims %d bytes", ErrCorrupt, i, n)
		}
		payload := make([]byte, n+4)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("%w: record %d payload: %v", ErrCorrupt, i, err)
		}
		body := payload[:n]
		wantCRC := binary.LittleEndian.Uint32(payload[n:])
		if crc32.ChecksumIEEE(body) != wantCRC {
			return nil, fmt.Errorf("%w: record %d checksum", ErrCorrupt, i)
		}
		msg, err := wire.Binary.Decode(body)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrCorrupt, i, err)
		}
		resp, ok := msg.(wire.ModelResponse)
		if !ok {
			return nil, fmt.Errorf("%w: record %d is a %T", ErrCorrupt, i, msg)
		}
		cv, err := wire.CoverFromModelResponse(resp)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrCorrupt, i, err)
		}
		cv.WindowIndex = c
		out[c] = cv
	}
	return out, nil
}

// Save writes a snapshot atomically: to a temp file in the same
// directory, fsynced, then renamed over path.
func Save(path string, covers map[int]*core.Cover) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Write(f, covers); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a snapshot from path. A missing file yields an empty map and
// no error: a cold start is not a failure.
func Load(path string) (map[int]*core.Cover, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return map[int]*core.Cover{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
