package coverio

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/kmeans"
	"repro/internal/store"
	"repro/internal/tuple"
)

func buildCovers(t *testing.T, windows int) map[int]*core.Cover {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	out := make(map[int]*core.Cover, windows)
	for c := 0; c < windows; c++ {
		w := make(tuple.Batch, 150)
		for i := range w {
			x, y := rng.Float64()*2000, rng.Float64()*2000
			w[i] = tuple.Raw{
				T: float64(c)*600 + rng.Float64()*600,
				X: x, Y: y,
				S: 420 + 0.04*x + 0.01*y,
			}
		}
		cv, err := core.BuildCover(w, c, 600, core.Config{Cluster: kmeans.Config{Seed: int64(c)}})
		if err != nil {
			t.Fatal(err)
		}
		out[c] = cv
	}
	return out
}

func TestWriteReadRoundTrip(t *testing.T) {
	covers := buildCovers(t, 3)
	var buf bytes.Buffer
	if err := Write(&buf, covers); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(covers) {
		t.Fatalf("got %d covers, want %d", len(got), len(covers))
	}
	for c, want := range covers {
		cv, ok := got[c]
		if !ok {
			t.Fatalf("window %d missing", c)
		}
		if cv.WindowIndex != c || cv.Size() != want.Size() {
			t.Fatalf("window %d: index=%d size=%d want size=%d",
				c, cv.WindowIndex, cv.Size(), want.Size())
		}
		if cv.ValidUntil != want.ValidUntil {
			t.Errorf("window %d: t_n %v vs %v", c, cv.ValidUntil, want.ValidUntil)
		}
		// Interpolation must agree with the original.
		for trial := 0; trial < 10; trial++ {
			x, y := float64(trial*150), float64(trial*120)
			tm := float64(c)*600 + float64(trial)*50
			a, err1 := want.Interpolate(tm, x, y)
			b, err2 := cv.Interpolate(tm, x, y)
			if err1 != nil || err2 != nil {
				t.Fatalf("interpolate: %v %v", err1, err2)
			}
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("window %d: %v vs %v", c, a, b)
			}
		}
	}
}

func TestEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty snapshot read %d covers", len(got))
	}
}

func TestReadCorruption(t *testing.T) {
	covers := buildCovers(t, 2)
	var buf bytes.Buffer
	if err := Write(&buf, covers); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string]func([]byte) []byte{
		"bad magic":    func(b []byte) []byte { b[0] ^= 0xFF; return b },
		"flipped byte": func(b []byte) []byte { b[30] ^= 0xFF; return b },
		"truncated":    func(b []byte) []byte { return b[:len(b)-7] },
		"short header": func(b []byte) []byte { return b[:5] },
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			bad := corrupt(append([]byte(nil), good...))
			if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
				t.Errorf("want ErrCorrupt, got %v", err)
			}
		})
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "covers.emcv")
	covers := buildCovers(t, 2)
	if err := Save(path, covers); err != nil {
		t.Fatal(err)
	}
	// No temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Error("temp file not cleaned up")
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("loaded %d covers", len(got))
	}
	// Overwrite with fewer covers; load reflects the new snapshot.
	if err := Save(path, map[int]*core.Cover{0: covers[0]}); err != nil {
		t.Fatal(err)
	}
	got, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("after overwrite loaded %d covers", len(got))
	}
}

func TestLoadMissingFileIsColdStart(t *testing.T) {
	got, err := Load(filepath.Join(t.TempDir(), "absent.emcv"))
	if err != nil {
		t.Fatalf("missing file should not error: %v", err)
	}
	if len(got) != 0 {
		t.Errorf("got %d covers from nothing", len(got))
	}
}

func TestMaintainerPrimeIntegration(t *testing.T) {
	// Persist covers from one maintainer, prime another, and confirm the
	// primed one serves them without rebuilding.
	covers := buildCovers(t, 2)
	dir := t.TempDir()
	path := filepath.Join(dir, "covers.emcv")
	if err := Save(path, covers); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	st := store.MustOpenMemory(600)
	m := core.NewMaintainer(st, core.Config{})
	m.Prime(loaded)
	// The store is empty, so a cache miss would fail; a hit proves the
	// primed cover was used.
	cv, err := m.CoverFor(1)
	if err != nil {
		t.Fatalf("primed cover not served: %v", err)
	}
	if cv.Size() != covers[1].Size() {
		t.Errorf("size %d, want %d", cv.Size(), covers[1].Size())
	}
}

func TestSaveErrors(t *testing.T) {
	covers := buildCovers(t, 1)
	// Destination directory does not exist.
	if err := Save(filepath.Join(t.TempDir(), "no", "such", "dir", "c.emcv"), covers); err == nil {
		t.Error("Save into missing directory should error")
	}
	// A cover that cannot be serialized (no regions) aborts the write and
	// cleans up the temp file.
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.emcv")
	if err := Save(path, map[int]*core.Cover{0: {}}); err == nil {
		t.Error("Save of empty cover should error")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("failed Save left the destination file")
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Error("failed Save left the temp file")
	}
}

func TestLoadUnreadable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage.emcv")
	if err := os.WriteFile(path, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("loading garbage should error")
	}
}
