package wire

import (
	"bytes"
	"testing"

	"repro/internal/geo"
	"repro/internal/tuple"
)

// FuzzWireDecode hardens the binary protocol decoder (the bytes a
// server reads straight off a TCP link): arbitrary frames must never
// panic, must fail identically on repeated decodes, and every accepted
// message must re-encode and re-decode to a byte-identical frame. The
// JSON codec is exercised for panic-freedom on the same inputs. Seeds
// are the round-trip suite's message shapes plus legacy (pre-v1)
// layouts and mutations.
func FuzzWireDecode(f *testing.F) {
	add := func(m Message) {
		enc, err := Binary.Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	add(QueryRequest{T: 120, X: 3.5, Y: -7, Pollutant: 1})
	add(QueryResponse{Value: 421.25})
	add(ModelRequest{T: 3600, Pollutant: 2})
	add(ErrorResponse{Msg: "no cover"})
	add(BatchQueryRequest{Items: []QueryRequest{{T: 1, X: 2, Y: 3}, {T: 4, X: 5, Y: 6, Pollutant: 2}}})
	add(BatchQueryResponse{Items: []BatchQueryItem{{Value: 420}, {Err: "out of window"}}})
	add(ModelResponse{
		ValidFrom: 0, ValidUntil: 14400, ValueLo: 300, ValueHi: 600,
		Features:  "linear-xy",
		Centroids: []geo.Point{{X: 1, Y: 2}, {X: 3, Y: 4}},
		Coefs:     [][]float64{{400, 0.1, 0.2}, {410, -0.1, 0}},
	})
	// v1.2 cluster messages.
	add(RingRequest{})
	add(RingResponse{Nodes: []string{"a:1", "b:2"}, Cells: []geo.Point{{X: 1, Y: 2}}, VNodes: 8})
	add(IngestRequest{Pollutant: 1, Tuples: []tuple.Raw{{T: 1, X: 2, Y: 3, S: 4}}})
	add(IngestResponse{Ingested: 7})
	add(HeatmapRequest{T: 60, Cols: 4, Rows: 4})
	add(HeatmapResponse{Cols: 1, Rows: 2, Values: []float64{1, 2}})
	add(NotOwnerResponse{Owner: 1, Addr: "c:3"})
	add(Forwarded{Inner: QueryRequest{T: 1, X: 2, Y: 3}})
	// v1.3 subscription messages.
	add(SubscribeRequest{Pollutant: 1, Points: []SubPoint{{T: 1, X: 2, Y: 3}, {T: 4, X: 5, Y: 6}}})
	add(SubscribeAck{ID: 9, Points: 2})
	add(Push{ID: 9, Seq: 3, Points: []PushPoint{{Index: 0, Value: 420}, {Index: 1, Err: "no cover"}}})
	add(Push{ID: 9, Seq: 4, Resync: true, Err: "owner unreachable", Points: []PushPoint{{Index: 0, Value: 1}}})
	add(UnsubscribeRequest{ID: 9})
	add(UnsubscribeResponse{Removed: true})
	add(Forwarded{Inner: SubscribeRequest{Pollutant: 2, Points: []SubPoint{{T: 1, X: 2, Y: 3}}}})
	// v1.4 replication messages.
	add(RingResponse{Nodes: []string{"a:1", "b:2", "c:3"}, Cells: []geo.Point{{X: 1, Y: 2}}, VNodes: 8, Replicas: 2})
	add(ReplicaIngest{Origin: 1, Pollutant: 2, Seq: 41, Tuples: []tuple.Raw{{T: 1, X: 2, Y: 3, S: 4}}})
	add(ReplicaCatchupRequest{Pollutant: 1, Have: 12})
	add(ReplicaCatchupResponse{From: 12, Done: true, Tuples: []tuple.Raw{{T: 5, X: 6, Y: 7, S: 8}}})
	add(ReplicaCatchupResponse{Snapshot: true, From: 0, Tuples: []tuple.Raw{{T: 1, X: 2, Y: 3, S: 4}}})
	add(ReplicaRead{Origin: 2, Inner: QueryRequest{T: 1, X: 2, Y: 3, Pollutant: 1}})
	add(ReplicaRead{Origin: 0, Inner: HeatmapRequest{T: 60, Cols: 2, Rows: 2}})
	// v1.5 membership messages and epoch-bearing frame variants.
	add(JoinRequest{Addr: "joiner:8081"})
	add(RingUpdate{Ring: RingResponse{Nodes: []string{"a:1", "b:2"}, Cells: []geo.Point{{X: 1, Y: 2}}, VNodes: 8, Epoch: 3}})
	add(RingUpdate{Ring: RingResponse{Nodes: []string{"a:1", ""}, Cells: []geo.Point{{X: 1, Y: 2}}, VNodes: 8, Epoch: 4}, Commit: true})
	add(ShardTransfer{Origin: 1, Pollutant: 2, Have: 99})
	add(Promote{Node: 1, Epoch: 7})
	add(RingResponse{Nodes: []string{"a:1", "b:2"}, Cells: []geo.Point{{X: 1, Y: 2}}, VNodes: 8, Epoch: 5})
	add(NotOwnerResponse{Owner: 1, Addr: "c:3", Epoch: 2})
	add(Forwarded{Inner: QueryRequest{T: 1, X: 2, Y: 3}, Epoch: 4})
	// Legacy untagged frames: 25-byte query, 9-byte model request.
	legacyQuery, _ := Binary.Encode(QueryRequest{T: 9, X: 8, Y: 7})
	f.Add(legacyQuery[:25])
	legacyModel, _ := Binary.Encode(ModelRequest{T: 9})
	f.Add(legacyModel[:9])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x01, 0x02})

	f.Fuzz(func(t *testing.T, data []byte) {
		m1, err1 := Binary.Decode(data)
		m2, err2 := Binary.Decode(data)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("unstable outcome: %v vs %v", err1, err2)
		}
		if err1 != nil {
			if err1.Error() != err2.Error() {
				t.Fatalf("unstable error: %q vs %q", err1, err2)
			}
		} else {
			// Every message the decoder accepts must be encodable (the
			// decoder's bounds are stricter than the encoder's), and the
			// encoded form must be a fixed point — NaN payloads make a
			// byte-level comparison the only reliable equality.
			enc1, err := Binary.Encode(m1)
			if err != nil {
				t.Fatalf("accepted message %T does not re-encode: %v", m1, err)
			}
			if encB, err := Binary.Encode(m2); err != nil || !bytes.Equal(enc1, encB) {
				t.Fatalf("unstable decode of %T (%v)", m1, err)
			}
			m3, err := Binary.Decode(enc1)
			if err != nil {
				t.Fatalf("re-encoded %T does not decode: %v", m1, err)
			}
			enc2, err := Binary.Encode(m3)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc1, enc2) {
				t.Fatalf("%T: encode/decode not a fixed point", m1)
			}
		}
		// The JSON codec shares the error taxonomy; it must never panic.
		if m, err := JSON.Decode(data); err == nil {
			_, _ = JSON.Encode(m)
		}
	})
}
