package wire

// Round-trip and robustness tests for the v1.3 subscription messages,
// plus the backward-compatibility guarantee that pre-subscription
// frames decode unchanged (new tags only, no layout changes).

import (
	"reflect"
	"testing"

	"repro/internal/tuple"
)

func subsMessages() []Message {
	return []Message{
		SubscribeRequest{
			Pollutant: tuple.PM,
			Points: []SubPoint{
				{T: 60, X: 120, Y: -35.5},
				{T: 120, X: 980.25, Y: 410},
			},
		},
		SubscribeAck{ID: 42, Points: 2},
		Push{ID: 42, Seq: 7, Points: []PushPoint{
			{Index: 0, Value: 421.5},
			{Index: 3, Err: "no cover for window"},
		}},
		Push{ID: 42, Seq: 8, Resync: true, Points: []PushPoint{
			{Index: 0, Value: 421.5},
			{Index: 1, Value: 430},
		}},
		Push{ID: 42, Seq: 9, Err: "cluster: owner node 1 unreachable"},
		UnsubscribeRequest{ID: 42},
		UnsubscribeResponse{Removed: true},
		UnsubscribeResponse{Removed: false},
		Forwarded{Inner: SubscribeRequest{Pollutant: tuple.CO, Points: []SubPoint{{T: 1, X: 2, Y: 3}}}},
	}
}

func TestSubsMessageRoundTrip(t *testing.T) {
	for _, codec := range []Codec{Binary, JSON} {
		for _, m := range subsMessages() {
			enc, err := codec.Encode(m)
			if err != nil {
				t.Fatalf("%s encode %T: %v", codec.Name(), m, err)
			}
			dec, err := codec.Decode(enc)
			if err != nil {
				t.Fatalf("%s decode %T: %v", codec.Name(), m, err)
			}
			if !reflect.DeepEqual(m, dec) {
				t.Fatalf("%s round trip of %T:\n got %#v\nwant %#v", codec.Name(), m, dec, m)
			}
		}
	}
}

func TestSubsDecodeRobustness(t *testing.T) {
	goodPush, err := Binary.Encode(Push{ID: 1, Seq: 2, Points: []PushPoint{{Index: 0, Value: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	badFlags := append([]byte(nil), goodPush...)
	badFlags[17] = 0xFF // undefined flag bits
	badPointFlag := append([]byte(nil), goodPush...)
	badPointFlag[24] = 7 // point flag is neither value (0) nor error (1)

	cases := [][]byte{
		{byte(TypeSubscribeRequest)},             // no header
		{byte(TypeSubscribeRequest), 0, 5, 0},    // claims 5 points, has none
		{byte(TypeSubscribeRequest), 0, 0, 0, 9}, // trailing byte
		{byte(TypeSubscribeAck), 1, 2, 3},        // short
		append(make([]byte, 0, 12), // ack with trailing byte
			byte(TypeSubscribeAck), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 9),
		{byte(TypePush), 1, 2, 3}, // short header
		{byte(TypePush), 0, 0, 0, 0, 0, 0, 0, 0, // huge count, no body
			0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 255, 255},
		badFlags,
		badPointFlag,
		append(append([]byte(nil), goodPush...), 0), // trailing byte
		{byte(TypeUnsubscribeRequest), 1},           // short
		{byte(TypeUnsubscribeResponse)},             // short
		{byte(TypeUnsubscribeResponse), 2},          // bool out of range
		{byte(TypeUnsubscribeResponse), 1, 0},       // trailing byte
	}
	for _, data := range cases {
		if _, err := Binary.Decode(data); err == nil {
			t.Errorf("malformed frame % x decoded", data)
		}
	}
}

// TestPreSubsFramesUnchanged locks the v1.3 compatibility guarantee:
// the subscription tags only extend the tag space — every pre-existing
// frame layout, core and cluster, decodes byte-for-byte unchanged.
func TestPreSubsFramesUnchanged(t *testing.T) {
	q, err := Binary.Encode(QueryRequest{T: 1, X: 2, Y: 3, Pollutant: tuple.PM})
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 26 {
		t.Fatalf("v1 QueryRequest frame is %d bytes, want 26", len(q))
	}
	if _, err := Binary.Decode(q[:25]); err != nil {
		t.Fatalf("legacy 25-byte frame no longer decodes: %v", err)
	}
	n, err := Binary.Encode(NotOwnerResponse{Owner: 2, Addr: "x:1"})
	if err != nil {
		t.Fatal(err)
	}
	if dec, err := Binary.Decode(n); err != nil {
		t.Fatalf("v1.2 NotOwner frame no longer decodes: %v", err)
	} else if !reflect.DeepEqual(dec, NotOwnerResponse{Owner: 2, Addr: "x:1"}) {
		t.Fatalf("v1.2 NotOwner frame changed: %#v", dec)
	}
	// The new tags sit strictly above the cluster range.
	if TypeSubscribeRequest != 16 || TypeUnsubscribeResponse != 20 {
		t.Fatalf("subscription tags moved: %d..%d, want 16..20",
			TypeSubscribeRequest, TypeUnsubscribeResponse)
	}
	// And the fixed-size v1.3 frames are locked too.
	ack, _ := Binary.Encode(SubscribeAck{ID: 1, Points: 2})
	if len(ack) != 11 {
		t.Fatalf("SubscribeAck frame is %d bytes, want 11", len(ack))
	}
	un, _ := Binary.Encode(UnsubscribeRequest{ID: 1})
	if len(un) != 9 {
		t.Fatalf("UnsubscribeRequest frame is %d bytes, want 9", len(un))
	}
}
