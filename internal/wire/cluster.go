// Cluster messages: the v1.2 additions that let EnviroMeter nodes form a
// sharded serving cluster. A router (or any node) forwards Query/Batch/
// Ingest frames to the shard owner and scatter-gathers heatmaps; clients
// fetch the consistent-hash ring once and then talk to owners directly.
//
// All additions are new message tags, so the decode of every pre-cluster
// frame — including the legacy 25/9-byte untagged layouts — is unchanged;
// pre-cluster servers answer the unknown tags with an ErrorResponse,
// which cluster-aware callers treat as "peer is not clustered".
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/heatmap"
	"repro/internal/tuple"
)

// Cluster message type tags (v1.2).
const (
	// TypeRingRequest asks a node for the cluster's shard ring.
	TypeRingRequest MsgType = iota + 8
	// TypeRingResponse carries the ring description.
	TypeRingResponse
	// TypeIngestRequest ships a batch of raw tuples for one pollutant.
	TypeIngestRequest
	// TypeIngestResponse acknowledges an applied ingest.
	TypeIngestResponse
	// TypeHeatmapRequest asks for a rasterized cover.
	TypeHeatmapRequest
	// TypeHeatmapResponse carries the raster grid.
	TypeHeatmapResponse
	// TypeNotOwner reports that the receiving node does not own the
	// request's shard and names the node that does.
	TypeNotOwner
	// TypeForwarded wraps a request forwarded by a router so the owner
	// answers locally instead of re-forwarding (or bouncing NotOwner).
	TypeForwarded
)

// RingRequest asks a node for the cluster ring — the bootstrap exchange
// of a shard-aware client. It has no payload.
type RingRequest struct{}

// Type implements Message.
func (RingRequest) Type() MsgType { return TypeRingRequest }

// RingResponse is the serialized shard ring: the node addresses (index =
// node ID), the geo-cell centroids that partition the region, and the
// virtual-node multiplier of the consistent-hash ring. Two parties
// holding equal RingResponses compute identical shard placements.
type RingResponse struct {
	Nodes  []string    `json:"nodes"`
	Cells  []geo.Point `json:"cells"`
	VNodes uint16      `json:"vnodes"`
	// Replicas is the cluster's replication factor R: each shard lives
	// on its owner plus R-1 ring successors. 0 or 1 both mean
	// "unreplicated" and serialize identically (the binary layout only
	// carries the field when R > 1, so pre-replication rings decode —
	// and re-encode — byte-for-byte unchanged).
	Replicas uint16 `json:"replicas,omitempty"`
	// Epoch is the membership epoch (v1.5): it increments on every join,
	// drain, or promotion, so two parties can order ring versions and
	// detect mid-transition disagreement. 0 means "pre-epoch" (a fixed
	// ring from before live membership) and serializes identically to
	// one: the binary layout only appends the field when Epoch > 0.
	Epoch uint64 `json:"epoch,omitempty"`
}

// Type implements Message.
func (RingResponse) Type() MsgType { return TypeRingResponse }

// IngestRequest ships a batch of raw tuples for one pollutant — the wire
// form of the upload a sensing bus performs, and the frame a router uses
// to forward each owner its slice of a mixed upload.
type IngestRequest struct {
	Pollutant tuple.Pollutant `json:"pollutant"`
	Tuples    []tuple.Raw     `json:"tuples"`
}

// Type implements Message.
func (IngestRequest) Type() MsgType { return TypeIngestRequest }

// IngestResponse acknowledges an ingest: the batch (or, through a
// router, every shard's slice of it) has been applied.
type IngestResponse struct {
	Ingested uint32 `json:"ingested"`
}

// Type implements Message.
func (IngestResponse) Type() MsgType { return TypeIngestResponse }

// HeatmapRequest asks for a rasterized cover. With HasRegion unset the
// node rasterizes over its own data bounds; a router sets an explicit
// region so every shard rasterizes a comparable extent.
type HeatmapRequest struct {
	T         float64         `json:"t"`
	Pollutant tuple.Pollutant `json:"pollutant"`
	Cols      uint16          `json:"cols"`
	Rows      uint16          `json:"rows"`
	HasRegion bool            `json:"hasRegion"`
	Region    geo.Rect        `json:"region"`
}

// Type implements Message.
func (HeatmapRequest) Type() MsgType { return TypeHeatmapRequest }

// HeatmapResponse carries one node's raster: the region it covers and
// cols×rows cell values in row-major order, south row first.
type HeatmapResponse struct {
	Region geo.Rect  `json:"region"`
	Cols   uint16    `json:"cols"`
	Rows   uint16    `json:"rows"`
	T      float64   `json:"t"`
	Values []float64 `json:"values"`
}

// Type implements Message.
func (HeatmapResponse) Type() MsgType { return TypeHeatmapResponse }

// NotOwnerResponse is a node declining a request for a shard it does not
// own (and cannot forward): it names the owning node so a shard-aware
// client can refresh its ring and retry there.
type NotOwnerResponse struct {
	Owner uint16 `json:"owner"`
	Addr  string `json:"addr"`
	// Epoch is the bouncing node's membership epoch (0 when pre-epoch).
	// A client holding a ring with a lower epoch knows its placement is
	// stale — not merely disagreeing — and must refresh before retrying.
	Epoch uint64 `json:"epoch,omitempty"`
}

// Type implements Message.
func (NotOwnerResponse) Type() MsgType { return TypeNotOwner }

// Forwarded wraps a request a router already routed: the receiver must
// answer it locally, never re-forward or bounce NotOwner, so one
// misconfigured ring cannot create a forwarding loop. Forwarded frames
// never nest.
type Forwarded struct {
	Inner Message `json:"-"`
	// Epoch is the sender's membership epoch, 0 when unknown (a
	// pre-epoch router). A receiver whose own epoch disagrees answers
	// with an epoch-mismatch error instead of serving a possibly-moved
	// shard; the sender then reconciles rings and re-routes.
	Epoch uint64 `json:"epoch,omitempty"`
}

// Type implements Message.
func (Forwarded) Type() MsgType { return TypeForwarded }

// encodeCluster serializes the v1.2 cluster messages (binary codec).
func encodeCluster(m Message) ([]byte, error) {
	switch v := m.(type) {
	case RingRequest:
		return []byte{byte(TypeRingRequest)}, nil
	case RingResponse:
		if len(v.Nodes) > math.MaxUint16 || len(v.Cells) > math.MaxUint16 {
			return nil, fmt.Errorf("wire: ring too large (%d nodes, %d cells)", len(v.Nodes), len(v.Cells))
		}
		size := 1 + 2
		for _, n := range v.Nodes {
			if len(n) > math.MaxUint16 {
				return nil, fmt.Errorf("wire: node address too long (%d bytes)", len(n))
			}
			size += 2 + len(n)
		}
		size += 2 + 16*len(v.Cells) + 2
		if v.Replicas > 1 {
			size += 2
		}
		if v.Epoch > 0 {
			size += 8
		}
		buf := make([]byte, size)
		buf[0] = byte(TypeRingResponse)
		binary.LittleEndian.PutUint16(buf[1:], uint16(len(v.Nodes)))
		off := 3
		for _, n := range v.Nodes {
			binary.LittleEndian.PutUint16(buf[off:], uint16(len(n)))
			off += 2 + copy(buf[off+2:], n)
		}
		binary.LittleEndian.PutUint16(buf[off:], uint16(len(v.Cells)))
		off += 2
		for _, c := range v.Cells {
			putF64(buf[off:], c.X)
			putF64(buf[off+8:], c.Y)
			off += 16
		}
		binary.LittleEndian.PutUint16(buf[off:], v.VNodes)
		off += 2
		if v.Replicas > 1 {
			binary.LittleEndian.PutUint16(buf[off:], v.Replicas)
			off += 2
		}
		if v.Epoch > 0 {
			binary.LittleEndian.PutUint64(buf[off:], v.Epoch)
		}
		return buf, nil
	case IngestRequest:
		if len(v.Tuples) > math.MaxUint32 {
			return nil, fmt.Errorf("wire: ingest too large (%d tuples)", len(v.Tuples))
		}
		buf := make([]byte, 1+1+4+32*len(v.Tuples))
		buf[0] = byte(TypeIngestRequest)
		buf[1] = byte(v.Pollutant)
		binary.LittleEndian.PutUint32(buf[2:], uint32(len(v.Tuples)))
		off := 6
		for _, r := range v.Tuples {
			putF64(buf[off:], r.T)
			putF64(buf[off+8:], r.X)
			putF64(buf[off+16:], r.Y)
			putF64(buf[off+24:], r.S)
			off += 32
		}
		return buf, nil
	case IngestResponse:
		buf := make([]byte, 1+4)
		buf[0] = byte(TypeIngestResponse)
		binary.LittleEndian.PutUint32(buf[1:], v.Ingested)
		return buf, nil
	case HeatmapRequest:
		size := 1 + 8 + 1 + 2 + 2 + 1
		if v.HasRegion {
			size += 32
		}
		buf := make([]byte, size)
		buf[0] = byte(TypeHeatmapRequest)
		putF64(buf[1:], v.T)
		buf[9] = byte(v.Pollutant)
		binary.LittleEndian.PutUint16(buf[10:], v.Cols)
		binary.LittleEndian.PutUint16(buf[12:], v.Rows)
		if v.HasRegion {
			buf[14] = 1
			putRect(buf[15:], v.Region)
		}
		return buf, nil
	case HeatmapResponse:
		if int(v.Cols)*int(v.Rows) != len(v.Values) {
			return nil, fmt.Errorf("wire: heatmap %dx%d carries %d values", v.Cols, v.Rows, len(v.Values))
		}
		buf := make([]byte, 1+32+2+2+8+8*len(v.Values))
		buf[0] = byte(TypeHeatmapResponse)
		putRect(buf[1:], v.Region)
		binary.LittleEndian.PutUint16(buf[33:], v.Cols)
		binary.LittleEndian.PutUint16(buf[35:], v.Rows)
		putF64(buf[37:], v.T)
		off := 45
		for _, val := range v.Values {
			putF64(buf[off:], val)
			off += 8
		}
		return buf, nil
	case NotOwnerResponse:
		if len(v.Addr) > math.MaxUint16 {
			return nil, fmt.Errorf("wire: owner address too long (%d bytes)", len(v.Addr))
		}
		size := 1 + 2 + 2 + len(v.Addr)
		if v.Epoch > 0 {
			size += 8
		}
		buf := make([]byte, size)
		buf[0] = byte(TypeNotOwner)
		binary.LittleEndian.PutUint16(buf[1:], v.Owner)
		binary.LittleEndian.PutUint16(buf[3:], uint16(len(v.Addr)))
		copy(buf[5:], v.Addr)
		if v.Epoch > 0 {
			binary.LittleEndian.PutUint64(buf[5+len(v.Addr):], v.Epoch)
		}
		return buf, nil
	case Forwarded:
		if v.Inner == nil {
			return nil, fmt.Errorf("%w: forwarded frame without inner message", ErrMalformed)
		}
		if _, nested := v.Inner.(Forwarded); nested {
			return nil, fmt.Errorf("%w: nested forwarded frame", ErrMalformed)
		}
		inner, err := Binary.Encode(v.Inner)
		if err != nil {
			return nil, err
		}
		if v.Epoch > 0 {
			// The epoch variant marks itself with 0xFF — reserved, never a
			// message tag — where the inner tag would sit, so pre-epoch
			// frames decode byte-for-byte unchanged.
			buf := make([]byte, 1+1+8+len(inner))
			buf[0] = byte(TypeForwarded)
			buf[1] = 0xFF
			binary.LittleEndian.PutUint64(buf[2:], v.Epoch)
			copy(buf[10:], inner)
			return buf, nil
		}
		buf := make([]byte, 1+len(inner))
		buf[0] = byte(TypeForwarded)
		copy(buf[1:], inner)
		return buf, nil
	default:
		return encodeSubs(m)
	}
}

// decodeCluster parses the v1.2 cluster messages (binary codec).
func decodeCluster(data []byte) (Message, error) {
	switch MsgType(data[0]) {
	case TypeRingRequest:
		if len(data) != 1 {
			return nil, fmt.Errorf("%w: RingRequest length %d", ErrMalformed, len(data))
		}
		return RingRequest{}, nil
	case TypeRingResponse:
		if len(data) < 3 {
			return nil, fmt.Errorf("%w: RingResponse header", ErrMalformed)
		}
		nNodes := int(binary.LittleEndian.Uint16(data[1:]))
		m := RingResponse{Nodes: make([]string, 0, minInt(nNodes, 256))}
		off := 3
		for i := 0; i < nNodes; i++ {
			if len(data) < off+2 {
				return nil, fmt.Errorf("%w: RingResponse node %d", ErrMalformed, i)
			}
			n := int(binary.LittleEndian.Uint16(data[off:]))
			if len(data) < off+2+n {
				return nil, fmt.Errorf("%w: RingResponse node %d address", ErrMalformed, i)
			}
			m.Nodes = append(m.Nodes, string(data[off+2:off+2+n]))
			off += 2 + n
		}
		if len(data) < off+2 {
			return nil, fmt.Errorf("%w: RingResponse cell count", ErrMalformed)
		}
		nCells := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		// The suffix after the cells discriminates the layout version:
		// v1.2 ends at VNodes (2 bytes), v1.4 appends a 2-byte replication
		// factor, and v1.5 appends an 8-byte epoch after either. All four
		// decode; each optional field is canonical only when non-default
		// (R <= 1 and epoch 0 always serialize without their suffix).
		tail := len(data) - off - 16*nCells
		if tail != 2 && tail != 4 && tail != 10 && tail != 12 {
			return nil, fmt.Errorf("%w: RingResponse length %d for %d cells", ErrMalformed, len(data), nCells)
		}
		m.Cells = make([]geo.Point, nCells)
		for i := range m.Cells {
			m.Cells[i] = geo.Point{X: getF64(data[off:]), Y: getF64(data[off+8:])}
			off += 16
		}
		m.VNodes = binary.LittleEndian.Uint16(data[off:])
		off += 2
		if tail == 4 || tail == 12 {
			m.Replicas = binary.LittleEndian.Uint16(data[off:])
			off += 2
			if m.Replicas <= 1 {
				return nil, fmt.Errorf("%w: RingResponse replica suffix %d", ErrMalformed, m.Replicas)
			}
		}
		if tail >= 10 {
			m.Epoch = binary.LittleEndian.Uint64(data[off:])
			if m.Epoch == 0 {
				return nil, fmt.Errorf("%w: RingResponse zero epoch suffix", ErrMalformed)
			}
		}
		return m, nil
	case TypeIngestRequest:
		if len(data) < 6 {
			return nil, fmt.Errorf("%w: IngestRequest header", ErrMalformed)
		}
		count := int(binary.LittleEndian.Uint32(data[2:]))
		if len(data) != 6+32*count {
			return nil, fmt.Errorf("%w: IngestRequest length %d for %d tuples", ErrMalformed, len(data), count)
		}
		m := IngestRequest{Pollutant: tuple.Pollutant(data[1]), Tuples: make([]tuple.Raw, count)}
		off := 6
		for i := range m.Tuples {
			m.Tuples[i] = tuple.Raw{
				T: getF64(data[off:]), X: getF64(data[off+8:]),
				Y: getF64(data[off+16:]), S: getF64(data[off+24:]),
			}
			off += 32
		}
		return m, nil
	case TypeIngestResponse:
		if len(data) != 5 {
			return nil, fmt.Errorf("%w: IngestResponse length %d", ErrMalformed, len(data))
		}
		return IngestResponse{Ingested: binary.LittleEndian.Uint32(data[1:])}, nil
	case TypeHeatmapRequest:
		if len(data) != 15 && len(data) != 47 {
			return nil, fmt.Errorf("%w: HeatmapRequest length %d", ErrMalformed, len(data))
		}
		m := HeatmapRequest{
			T:         getF64(data[1:]),
			Pollutant: tuple.Pollutant(data[9]),
			Cols:      binary.LittleEndian.Uint16(data[10:]),
			Rows:      binary.LittleEndian.Uint16(data[12:]),
		}
		switch {
		case data[14] == 1 && len(data) == 47:
			m.HasRegion = true
			m.Region = getRect(data[15:])
		case data[14] == 0 && len(data) == 15:
			// no region
		default:
			return nil, fmt.Errorf("%w: HeatmapRequest region flag %d for length %d", ErrMalformed, data[14], len(data))
		}
		return m, nil
	case TypeHeatmapResponse:
		if len(data) < 45 {
			return nil, fmt.Errorf("%w: HeatmapResponse header", ErrMalformed)
		}
		m := HeatmapResponse{
			Region: getRect(data[1:]),
			Cols:   binary.LittleEndian.Uint16(data[33:]),
			Rows:   binary.LittleEndian.Uint16(data[35:]),
			T:      getF64(data[37:]),
		}
		count := int(m.Cols) * int(m.Rows)
		if len(data) != 45+8*count {
			return nil, fmt.Errorf("%w: HeatmapResponse length %d for %dx%d grid", ErrMalformed, len(data), m.Cols, m.Rows)
		}
		m.Values = make([]float64, count)
		off := 45
		for i := range m.Values {
			m.Values[i] = getF64(data[off:])
			off += 8
		}
		return m, nil
	case TypeNotOwner:
		if len(data) < 5 {
			return nil, fmt.Errorf("%w: NotOwnerResponse header", ErrMalformed)
		}
		n := int(binary.LittleEndian.Uint16(data[3:]))
		// The v1.5 layout appends an 8-byte epoch after the address; the
		// address length field keeps both forms unambiguous.
		if len(data) != 5+n && len(data) != 13+n {
			return nil, fmt.Errorf("%w: NotOwnerResponse length", ErrMalformed)
		}
		m := NotOwnerResponse{
			Owner: binary.LittleEndian.Uint16(data[1:]),
			Addr:  string(data[5 : 5+n]),
		}
		if len(data) == 13+n {
			m.Epoch = binary.LittleEndian.Uint64(data[5+n:])
			if m.Epoch == 0 {
				return nil, fmt.Errorf("%w: NotOwnerResponse zero epoch suffix", ErrMalformed)
			}
		}
		return m, nil
	case TypeForwarded:
		if len(data) < 2 {
			return nil, fmt.Errorf("%w: forwarded frame without inner message", ErrMalformed)
		}
		body := data[1:]
		var epoch uint64
		if data[1] == 0xFF {
			// Epoch variant: 0xFF marker + 8-byte epoch precede the inner
			// frame (0xFF is reserved and never a message tag).
			if len(data) < 11 {
				return nil, fmt.Errorf("%w: forwarded epoch header", ErrMalformed)
			}
			epoch = binary.LittleEndian.Uint64(data[2:])
			if epoch == 0 {
				return nil, fmt.Errorf("%w: forwarded zero epoch", ErrMalformed)
			}
			body = data[10:]
		}
		if MsgType(body[0]) == TypeForwarded {
			return nil, fmt.Errorf("%w: nested forwarded frame", ErrMalformed)
		}
		inner, err := Binary.Decode(body)
		if err != nil {
			return nil, err
		}
		return Forwarded{Inner: inner, Epoch: epoch}, nil
	default:
		return decodeSubs(data)
	}
}

// HeatmapResponseFromGrid serializes a raster grid into its wire form.
func HeatmapResponseFromGrid(g *heatmap.Grid) (HeatmapResponse, error) {
	if g == nil {
		return HeatmapResponse{}, fmt.Errorf("%w: nil heatmap grid", ErrMalformed)
	}
	if g.Cols > math.MaxUint16 || g.Rows > math.MaxUint16 {
		return HeatmapResponse{}, fmt.Errorf("wire: heatmap %dx%d too large", g.Cols, g.Rows)
	}
	return HeatmapResponse{
		Region: g.Region,
		Cols:   uint16(g.Cols),
		Rows:   uint16(g.Rows),
		T:      g.T,
		Values: g.Values,
	}, nil
}

// Grid reconstructs the raster grid a heatmap response carries.
func (v HeatmapResponse) Grid() *heatmap.Grid {
	return &heatmap.Grid{
		Region: v.Region,
		Cols:   int(v.Cols),
		Rows:   int(v.Rows),
		T:      v.T,
		Values: v.Values,
	}
}

func putRect(b []byte, r geo.Rect) {
	putF64(b, r.Min.X)
	putF64(b[8:], r.Min.Y)
	putF64(b[16:], r.Max.X)
	putF64(b[24:], r.Max.Y)
}

func getRect(b []byte) geo.Rect {
	return geo.Rect{
		Min: geo.Point{X: getF64(b), Y: getF64(b[8:])},
		Max: geo.Point{X: getF64(b[16:]), Y: getF64(b[24:])},
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
