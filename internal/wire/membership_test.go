package wire

// Round-trip and robustness tests for the v1.5 membership messages
// (JoinRequest, RingUpdate, ShardTransfer, Promote) and the epoch field
// the revision appends to RingResponse, NotOwnerResponse, and Forwarded
// frames — including the compatibility guarantee that an epoch of zero
// reproduces the pre-epoch byte layout exactly, so pre-membership peers
// interoperate unchanged.

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/geo"
	"repro/internal/tuple"
)

func membershipMessages() []Message {
	ring := RingResponse{
		Nodes:    []string{"10.0.0.1:8081", "", "10.0.0.3:8081"}, // slot 1 tombstoned
		Cells:    []geo.Point{{X: -500, Y: 250}, {X: 900, Y: -1200}},
		VNodes:   64,
		Replicas: 2,
		Epoch:    3,
	}
	return []Message{
		JoinRequest{Addr: "joiner.example:9000"},
		JoinRequest{Addr: "j:1"},
		RingUpdate{Ring: ring},
		RingUpdate{Ring: ring, Commit: true},
		ShardTransfer{Origin: 2, Pollutant: tuple.PM, Have: 4096},
		ShardTransfer{Origin: 0, Pollutant: tuple.CO2, Have: 0},
		Promote{Node: 1, Epoch: 7},
		Promote{Node: 0, Epoch: 1},
		// Epoch-bearing variants of the pre-existing frames.
		RingResponse{Nodes: []string{"a:1", "b:2"}, Cells: []geo.Point{{X: 1, Y: 2}}, VNodes: 8, Epoch: 9},
		NotOwnerResponse{Owner: 2, Addr: "10.0.0.3:8081", Epoch: 5},
		Forwarded{Inner: QueryRequest{T: 5, X: 6, Y: 7, Pollutant: tuple.PM}, Epoch: 4},
		Forwarded{Inner: IngestRequest{Pollutant: tuple.CO2, Tuples: []tuple.Raw{{T: 1, X: 2, Y: 3, S: 4}}}, Epoch: 12},
	}
}

func TestMembershipMessageRoundTrip(t *testing.T) {
	for _, codec := range []Codec{Binary, JSON} {
		for _, m := range membershipMessages() {
			enc, err := codec.Encode(m)
			if err != nil {
				t.Fatalf("%s encode %T: %v", codec.Name(), m, err)
			}
			dec, err := codec.Decode(enc)
			if err != nil {
				t.Fatalf("%s decode %T: %v", codec.Name(), m, err)
			}
			if !reflect.DeepEqual(m, dec) {
				t.Fatalf("%s round trip of %T:\n got %#v\nwant %#v", codec.Name(), m, dec, m)
			}
		}
	}
}

// TestEpochZeroKeepsPreEpochLayout locks the interop guarantee: frames
// at epoch zero encode byte-identically to their pre-membership layout,
// and pre-membership frames decode with Epoch == 0 — a v1.4 peer and a
// v1.5 peer exchange them unchanged.
func TestEpochZeroKeepsPreEpochLayout(t *testing.T) {
	ring := RingResponse{Nodes: []string{"a:1", "b:2"}, Cells: []geo.Point{{X: 1, Y: 2}}, VNodes: 8}
	enc, err := Binary.Encode(ring)
	if err != nil {
		t.Fatal(err)
	}
	withEpoch, err := Binary.Encode(RingResponse{Nodes: ring.Nodes, Cells: ring.Cells, VNodes: 8, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(withEpoch) != len(enc)+8 {
		t.Fatalf("epoch field appends %d bytes, want 8", len(withEpoch)-len(enc))
	}
	if !bytes.Equal(withEpoch[:len(enc)], enc) {
		t.Fatal("epoch-bearing ring frame does not extend the pre-epoch layout")
	}
	dec, err := Binary.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.(RingResponse).Epoch != 0 {
		t.Fatalf("pre-epoch ring frame decoded with epoch %d", dec.(RingResponse).Epoch)
	}

	no := NotOwnerResponse{Owner: 1, Addr: "c:3"}
	encNo, err := Binary.Encode(no)
	if err != nil {
		t.Fatal(err)
	}
	if len(encNo) != 5+len(no.Addr) {
		t.Fatalf("epoch-zero NotOwner frame is %d bytes, want pre-epoch %d", len(encNo), 5+len(no.Addr))
	}

	// The Forwarded epoch variant marks itself with 0xFF (reserved,
	// never a tag) where the inner tag sits; the epoch-zero encoding is
	// the bare pre-epoch wrapper.
	fw := Forwarded{Inner: QueryRequest{T: 1, X: 2, Y: 3}}
	encFw, err := Binary.Encode(fw)
	if err != nil {
		t.Fatal(err)
	}
	innerB, err := Binary.Encode(fw.Inner)
	if err != nil {
		t.Fatal(err)
	}
	if len(encFw) != 1+len(innerB) || encFw[1] == 0xFF {
		t.Fatalf("epoch-zero forwarded frame % x is not the bare wrapper", encFw[:2])
	}
	encFwE, err := Binary.Encode(Forwarded{Inner: fw.Inner, Epoch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if encFwE[1] != 0xFF {
		t.Fatalf("epoch-bearing forwarded frame marker is %#x, want 0xFF", encFwE[1])
	}
}

// TestRingUpdateRejectsNonRingPayload: the RingUpdate wrapper carries
// exactly one message shape; anything else is malformed, not recursed.
func TestRingUpdateRejectsNonRingPayload(t *testing.T) {
	inner, err := Binary.Encode(QueryRequest{T: 1, X: 2, Y: 3})
	if err != nil {
		t.Fatal(err)
	}
	frame := append([]byte{byte(TypeRingUpdate), 0}, inner...)
	if _, err := Binary.Decode(frame); !errors.Is(err, ErrMalformed) {
		t.Errorf("RingUpdate wrapping a query decoded: %v", err)
	}
}

func TestMembershipDecodeRobustness(t *testing.T) {
	cases := [][]byte{
		{byte(TypeJoinRequest)},                                       // no length
		{byte(TypeJoinRequest), 5, 0, 'a'},                            // claims 5 bytes, has 1
		{byte(TypeRingUpdate)},                                        // no commit flag
		{byte(TypeRingUpdate), 2, byte(TypeRingResponse)},             // commit flag out of range
		{byte(TypeRingUpdate), 1},                                     // no ring payload
		{byte(TypeShardTransfer), 0, 0, 1},                            // short
		{byte(TypeShardTransfer), 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // long
		{byte(TypePromote), 0, 0},                                     // short
		{byte(TypePromote), 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9},          // long
	}
	for _, data := range cases {
		if _, err := Binary.Decode(data); err == nil {
			t.Errorf("malformed membership frame % x decoded", data)
		}
	}
}
