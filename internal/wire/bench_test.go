package wire

import (
	"testing"

	"repro/internal/geo"
)

func benchModelResponse() ModelResponse {
	m := ModelResponse{
		ValidFrom:  0,
		ValidUntil: 14400,
		Features:   "linear-t",
	}
	for i := 0; i < 40; i++ {
		m.Centroids = append(m.Centroids, geo.Point{X: float64(i * 100), Y: float64(i * 70)})
		m.Coefs = append(m.Coefs, []float64{400 + float64(i), 0.001})
	}
	return m
}

func BenchmarkBinaryEncodeModelResponse(b *testing.B) {
	m := benchModelResponse()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Binary.Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryDecodeModelResponse(b *testing.B) {
	data, err := Binary.Encode(benchModelResponse())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Binary.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJSONEncodeModelResponse(b *testing.B) {
	m := benchModelResponse()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := JSON.Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}
