package wire

import (
	"math/rand"
	"testing"
)

// TestBinaryDecodeNeverPanics feeds the binary decoder random garbage —
// the server decodes frames straight off the radio link, so any byte
// sequence must yield an error, never a panic or a hang.
func TestBinaryDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(512)
		data := make([]byte, n)
		rng.Read(data)
		// Half the trials get a valid type tag to reach deeper code paths.
		if n > 0 && trial%2 == 0 {
			data[0] = byte(1 + rng.Intn(5))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %d random bytes: %v", n, r)
				}
			}()
			_, _ = Binary.Decode(data)
		}()
	}
}

// TestBinaryDecodeMutatedMessages mutates valid encodings at every byte
// position; decoding must never panic and, where it succeeds, must return
// a structurally sane message.
func TestBinaryDecodeMutatedMessages(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range sampleMessages() {
		valid, err := Binary.Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		for pos := 0; pos < len(valid); pos++ {
			mut := append([]byte(nil), valid...)
			mut[pos] ^= byte(1 + rng.Intn(255))
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%T: panic mutating byte %d: %v", m, pos, r)
					}
				}()
				msg, err := Binary.Decode(mut)
				if err == nil && msg == nil {
					t.Fatalf("%T: nil message with nil error", m)
				}
			}()
		}
	}
}

// TestJSONDecodeNeverPanics does the same for the JSON codec.
func TestJSONDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inputs := [][]byte{
		nil,
		[]byte("{}"),
		[]byte(`{"type":0}`),
		[]byte(`{"type":4,"payload":{"coefs":[[1,2],[3]]}}`),
		[]byte(`{"type":4,"payload":{"centroids":null,"coefs":null}}`),
	}
	for trial := 0; trial < 1000; trial++ {
		data := make([]byte, rng.Intn(256))
		rng.Read(data)
		inputs = append(inputs, data)
	}
	for _, data := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", data, r)
				}
			}()
			_, _ = JSON.Decode(data)
		}()
	}
}

// TestCoverFromModelResponseHostileInputs checks that adversarial model
// responses (the client reconstructs covers from network data) are
// rejected cleanly.
func TestCoverFromModelResponseHostileInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		data := make([]byte, 35+rng.Intn(300))
		rng.Read(data)
		data[0] = byte(TypeModelResponse)
		msg, err := Binary.Decode(data)
		if err != nil {
			continue
		}
		resp, ok := msg.(ModelResponse)
		if !ok {
			t.Fatalf("decoded %T from model-response frame", msg)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic reconstructing cover: %v", r)
				}
			}()
			_, _ = CoverFromModelResponse(resp)
		}()
	}
}
