package wire

// Round-trip and robustness tests for the v1.4 replication messages,
// plus the backward-compatibility guarantee that pre-replication frames
// — including the RingResponse without a replica suffix — decode (and
// re-encode) byte-for-byte unchanged.

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/geo"
	"repro/internal/tuple"
)

func replicaMessages() []Message {
	return []Message{
		ReplicaIngest{Origin: 1, Pollutant: tuple.PM, Seq: 41, Tuples: []tuple.Raw{
			{T: 60, X: 120, Y: -35.5, S: 421.5},
			{T: 61, X: 980.25, Y: 410, S: 14},
		}},
		ReplicaIngest{Origin: 0, Pollutant: tuple.CO2, Seq: 0, Tuples: nil},
		ReplicaCatchupRequest{Pollutant: tuple.CO, Have: 12},
		ReplicaCatchupRequest{Pollutant: tuple.CO2, Have: 0},
		ReplicaCatchupResponse{From: 12, Tuples: []tuple.Raw{{T: 1, X: 2, Y: 3, S: 4}}},
		ReplicaCatchupResponse{From: 13, Done: true, Tuples: nil},
		ReplicaCatchupResponse{Snapshot: true, From: 5, Tuples: []tuple.Raw{{T: 9, X: 8, Y: 7, S: 6}}},
		ReplicaRead{Origin: 2, Inner: QueryRequest{T: 1, X: 2, Y: 3, Pollutant: tuple.PM}},
		ReplicaRead{Origin: 0, Inner: HeatmapRequest{T: 60, Cols: 2, Rows: 2, HasRegion: true,
			Region: geo.Rect{Min: geo.Point{X: -1, Y: -1}, Max: geo.Point{X: 1, Y: 1}}}},
		ReplicaRead{Origin: 1, Inner: BatchQueryRequest{Items: []QueryRequest{{T: 1, X: 2, Y: 3}}}},
		RingResponse{Nodes: []string{"a:1", "b:2", "c:3"}, Cells: []geo.Point{{X: 1, Y: 2}}, VNodes: 8, Replicas: 2},
	}
}

func TestReplicaMessageRoundTrip(t *testing.T) {
	for _, codec := range []Codec{Binary, JSON} {
		for _, m := range replicaMessages() {
			enc, err := codec.Encode(m)
			if err != nil {
				t.Fatalf("%s encode %T: %v", codec.Name(), m, err)
			}
			dec, err := codec.Decode(enc)
			if err != nil {
				t.Fatalf("%s decode %T: %v", codec.Name(), m, err)
			}
			// Binary decode materializes nil tuple slices as empty; compare
			// through a second encode for byte-level equality instead.
			enc2, err := codec.Encode(dec)
			if err != nil {
				t.Fatalf("%s re-encode %T: %v", codec.Name(), m, err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("%s round trip of %T not a fixed point:\n got %#v\nwant %#v", codec.Name(), m, dec, m)
			}
		}
	}
}

func TestReplicaReadNeverNestsWrappers(t *testing.T) {
	bad := []Message{
		ReplicaRead{Origin: 1, Inner: ReplicaRead{Origin: 2, Inner: QueryRequest{}}},
		ReplicaRead{Origin: 1, Inner: Forwarded{Inner: QueryRequest{}}},
		ReplicaRead{Origin: 1},
	}
	for _, codec := range []Codec{Binary, JSON} {
		for _, m := range bad {
			if _, err := codec.Encode(m); err == nil {
				t.Errorf("%s encoded %#v", codec.Name(), m)
			}
		}
	}
	// And the decoders reject hand-built nested frames.
	inner, err := Binary.Encode(QueryRequest{T: 1, X: 2, Y: 3, Pollutant: 1})
	if err != nil {
		t.Fatal(err)
	}
	nested := append([]byte{byte(TypeReplicaRead), 0, 0, byte(TypeReplicaRead), 0, 0}, inner...)
	if _, err := Binary.Decode(nested); err == nil {
		t.Error("binary decoded nested replica read")
	}
	fwdNested := append([]byte{byte(TypeReplicaRead), 0, 0, byte(TypeForwarded)}, inner...)
	if _, err := Binary.Decode(fwdNested); err == nil {
		t.Error("binary decoded forwarded frame inside replica read")
	}
}

func TestReplicaDecodeRobustness(t *testing.T) {
	goodIngest, err := Binary.Encode(ReplicaIngest{Origin: 1, Seq: 2, Tuples: []tuple.Raw{{T: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	goodCatchup, err := Binary.Encode(ReplicaCatchupResponse{From: 1, Tuples: []tuple.Raw{{T: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	badFlags := append([]byte(nil), goodCatchup...)
	badFlags[1] = 0xF0 // undefined flag bits

	cases := [][]byte{
		{byte(TypeReplicaIngest)},                     // no header
		goodIngest[:20],                               // truncated tuples
		append(append([]byte(nil), goodIngest...), 0), // trailing byte
		{byte(TypeReplicaCatchupRequest), 1},          // short
		append(make([]byte, 0, 11), // catch-up request with trailing byte
			byte(TypeReplicaCatchupRequest), 0, 0, 0, 0, 0, 0, 0, 0, 0, 9),
		{byte(TypeReplicaCatchupResponse), 0, 0}, // short header
		badFlags,                                 // undefined flags
		goodCatchup[:20],                         // truncated tuples
		append(append([]byte(nil), goodCatchup...), 0), // trailing byte
		{byte(TypeReplicaRead), 0},                     // no inner message
		{byte(TypeReplicaRead), 0, 0, 0xFF},            // unknown inner tag
	}
	for _, data := range cases {
		if _, err := Binary.Decode(data); err == nil {
			t.Errorf("malformed frame % x decoded", data)
		}
	}
}

// TestRingResponseReplicaSuffix locks the RingResponse evolution: the
// replica suffix appears exactly when R > 1, an unreplicated ring's
// frame is byte-identical to its v1.2 form, and a non-canonical suffix
// (R <= 1 spelled out) is rejected so encode∘decode stays a fixed point.
func TestRingResponseReplicaSuffix(t *testing.T) {
	base := RingResponse{Nodes: []string{"a:1", "b:2"}, Cells: []geo.Point{{X: 1, Y: 2}}, VNodes: 8}
	old, err := Binary.Encode(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []uint16{0, 1} {
		m := base
		m.Replicas = r
		enc, err := Binary.Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, old) {
			t.Fatalf("R=%d ring frame differs from the unreplicated layout", r)
		}
	}
	rep := base
	rep.Replicas = 3
	enc, err := Binary.Encode(rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != len(old)+2 {
		t.Fatalf("replicated ring frame is %d bytes, want %d", len(enc), len(old)+2)
	}
	dec, err := Binary.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, rep) {
		t.Fatalf("replicated ring round trip: %#v", dec)
	}
	// Old decoders never see the suffix; old frames decode with R=0 here.
	dec, err = Binary.Decode(old)
	if err != nil {
		t.Fatal(err)
	}
	if dec.(RingResponse).Replicas != 0 {
		t.Fatalf("v1.2 ring frame decoded with R=%d", dec.(RingResponse).Replicas)
	}
	// A suffix spelling out R<=1 is non-canonical and rejected.
	for _, r := range []byte{0, 1} {
		bad := append(append([]byte(nil), old...), r, 0)
		if _, err := Binary.Decode(bad); err == nil {
			t.Errorf("non-canonical replica suffix %d decoded", r)
		}
	}
}

// TestPreReplicaFramesUnchanged locks the v1.4 compatibility guarantee:
// replication only extends the tag space above the subscription range.
func TestPreReplicaFramesUnchanged(t *testing.T) {
	if TypeReplicaIngest != 21 || TypeReplicaRead != 24 {
		t.Fatalf("replication tags moved: %d..%d, want 21..24", TypeReplicaIngest, TypeReplicaRead)
	}
	// Fixed-size v1.4 frames are locked.
	req, _ := Binary.Encode(ReplicaCatchupRequest{Pollutant: 1, Have: 2})
	if len(req) != 10 {
		t.Fatalf("ReplicaCatchupRequest frame is %d bytes, want 10", len(req))
	}
	ing, _ := Binary.Encode(ReplicaIngest{Origin: 1, Seq: 2})
	if len(ing) != 16 {
		t.Fatalf("empty ReplicaIngest frame is %d bytes, want 16", len(ing))
	}
}
