// Membership messages: the v1.5 additions that let the cluster change
// shape while serving traffic. A joining node announces itself and
// receives the next-epoch ring (JoinRequest); a membership coordinator
// pushes ring versions to peers in two steps — prepare, then commit
// (RingUpdate); a node bootstrapping or finishing a handoff pulls a
// shard's replication log from its current holder (ShardTransfer,
// answered with the existing ReplicaCatchupResponse chunks); and a node
// that detected a dead primary asks a surviving replica to promote its
// mirror at a new epoch (Promote).
//
// Like every protocol revision before it these are purely new tags:
// pre-membership frames decode unchanged, and older peers answer the
// unknown tags with an ErrorResponse, which membership-aware callers
// treat as "peer does not support live membership".
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/tuple"
)

// Membership message type tags (v1.5).
const (
	// TypeJoinRequest is a new node announcing itself to a seed node,
	// asking for the next-epoch ring that includes it.
	TypeJoinRequest MsgType = iota + 25
	// TypeRingUpdate pushes a ring version to a peer: prepare (the peer
	// holds it pending, begins bootstrapping any shards it gains) or
	// commit (the peer installs it and fences the old epoch).
	TypeRingUpdate
	// TypeShardTransfer asks a node for the replication log of one of
	// its pollutant streams from a given sequence — the handoff pull a
	// gaining node runs during join, drain, and promotion. Answered
	// with ReplicaCatchupResponse chunks.
	TypeShardTransfer
	// TypePromote asks a surviving replica to promote its mirror of a
	// dead primary at a new epoch.
	TypePromote
)

// JoinRequest is a new node announcing its serving address to any
// current member. The receiver computes the next-epoch ring with the
// joiner appended and answers with its RingResponse — without
// installing it; the joiner bootstraps its shards against that pending
// ring and commits the epoch via RingUpdate once it has the data.
type JoinRequest struct {
	Addr string `json:"addr"`
}

// Type implements Message.
func (JoinRequest) Type() MsgType { return TypeJoinRequest }

// RingUpdate pushes a ring version to a peer. With Commit unset the
// receiver treats the ring as pending: placement does not change, but
// the receiver may begin bootstrapping shards it gains under it. With
// Commit set the receiver installs the ring — its epoch must exceed the
// receiver's current epoch — and thereafter fences routed frames
// carrying older epochs. The receiver answers with the RingResponse of
// whatever ring it currently serves, so the sender can detect a peer
// that is ahead.
type RingUpdate struct {
	Ring   RingResponse `json:"ring"`
	Commit bool         `json:"commit,omitempty"`
}

// Type implements Message.
func (RingUpdate) Type() MsgType { return TypeRingUpdate }

// ShardTransfer asks the receiving node for the replication log of one
// pollutant stream, starting at sequence Have. Origin selects whose
// stream: the receiver's own primary log (Origin == receiver) or its
// mirror log of another node (the promotion/bootstrap-from-replica
// case). Answered with ReplicaCatchupResponse chunks exactly like
// replica catch-up: a suffix when Have is inside the log, a Snapshot
// reset when it is behind it, Done when the chunk reaches the end.
type ShardTransfer struct {
	Origin    uint16          `json:"origin"`
	Pollutant tuple.Pollutant `json:"pollutant"`
	Have      uint64          `json:"have"`
}

// Type implements Message.
func (ShardTransfer) Type() MsgType { return TypeShardTransfer }

// Promote reports that node Node — a shard primary — is dead, asking
// the receiver to promote its mirrors of that node at a new epoch.
// Epoch is the epoch at which the sender observed the death; a receiver
// whose ring has already moved past it answers with its current ring
// and changes nothing (the promotion already happened).
type Promote struct {
	Node  uint16 `json:"node"`
	Epoch uint64 `json:"epoch"`
}

// Type implements Message.
func (Promote) Type() MsgType { return TypePromote }

// encodeMembership serializes the v1.5 membership messages (binary
// codec).
func encodeMembership(m Message) ([]byte, error) {
	switch v := m.(type) {
	case JoinRequest:
		if len(v.Addr) > math.MaxUint16 {
			return nil, fmt.Errorf("wire: join address too long (%d bytes)", len(v.Addr))
		}
		buf := make([]byte, 1+2+len(v.Addr))
		buf[0] = byte(TypeJoinRequest)
		binary.LittleEndian.PutUint16(buf[1:], uint16(len(v.Addr)))
		copy(buf[3:], v.Addr)
		return buf, nil
	case RingUpdate:
		ring, err := Binary.Encode(v.Ring)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, 1+1+len(ring))
		buf[0] = byte(TypeRingUpdate)
		if v.Commit {
			buf[1] = 1
		}
		copy(buf[2:], ring)
		return buf, nil
	case ShardTransfer:
		buf := make([]byte, 1+2+1+8)
		buf[0] = byte(TypeShardTransfer)
		binary.LittleEndian.PutUint16(buf[1:], v.Origin)
		buf[3] = byte(v.Pollutant)
		binary.LittleEndian.PutUint64(buf[4:], v.Have)
		return buf, nil
	case Promote:
		buf := make([]byte, 1+2+8)
		buf[0] = byte(TypePromote)
		binary.LittleEndian.PutUint16(buf[1:], v.Node)
		binary.LittleEndian.PutUint64(buf[3:], v.Epoch)
		return buf, nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnknown, m)
	}
}

// decodeMembership parses the v1.5 membership messages (binary codec).
func decodeMembership(data []byte) (Message, error) {
	switch MsgType(data[0]) {
	case TypeJoinRequest:
		if len(data) < 3 {
			return nil, fmt.Errorf("%w: JoinRequest header", ErrMalformed)
		}
		n := int(binary.LittleEndian.Uint16(data[1:]))
		if len(data) != 3+n {
			return nil, fmt.Errorf("%w: JoinRequest length", ErrMalformed)
		}
		return JoinRequest{Addr: string(data[3:])}, nil
	case TypeRingUpdate:
		if len(data) < 3 {
			return nil, fmt.Errorf("%w: RingUpdate header", ErrMalformed)
		}
		if data[1] > 1 {
			return nil, fmt.Errorf("%w: RingUpdate commit flag %d", ErrMalformed, data[1])
		}
		inner, err := Binary.Decode(data[2:])
		if err != nil {
			return nil, err
		}
		ring, ok := inner.(RingResponse)
		if !ok {
			return nil, fmt.Errorf("%w: RingUpdate carries %T", ErrMalformed, inner)
		}
		return RingUpdate{Ring: ring, Commit: data[1] == 1}, nil
	case TypeShardTransfer:
		if len(data) != 12 {
			return nil, fmt.Errorf("%w: ShardTransfer length %d", ErrMalformed, len(data))
		}
		return ShardTransfer{
			Origin:    binary.LittleEndian.Uint16(data[1:]),
			Pollutant: tuple.Pollutant(data[3]),
			Have:      binary.LittleEndian.Uint64(data[4:]),
		}, nil
	case TypePromote:
		if len(data) != 11 {
			return nil, fmt.Errorf("%w: Promote length %d", ErrMalformed, len(data))
		}
		return Promote{
			Node:  binary.LittleEndian.Uint16(data[1:]),
			Epoch: binary.LittleEndian.Uint64(data[3:]),
		}, nil
	default:
		return nil, fmt.Errorf("%w: tag %d", ErrUnknown, data[0])
	}
}
