// Package wire defines the client↔server protocol of the EnviroMeter
// framework (§2.2–2.3): the query tuples a mobile object transmits, the
// interpolated values the server returns, and the model request/response
// pair that ships the whole model cover (t_n, µ, M) to model-cache
// clients.
//
// Two codecs are provided. The compact binary codec is what the bandwidth
// experiment (Figure 7b) uses — every byte matters on GPRS/3G — while the
// JSON codec serves the web interface and supports the codec ablation.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/regress"
	"repro/internal/tuple"
)

// MsgType discriminates protocol messages.
type MsgType uint8

// Message type tags.
const (
	TypeQueryRequest MsgType = iota + 1
	TypeQueryResponse
	TypeModelRequest
	TypeModelResponse
	TypeError
	TypeBatchQueryRequest
	TypeBatchQueryResponse
)

// Message is any protocol message.
type Message interface {
	// Type returns the message's wire tag.
	Type() MsgType
}

// QueryRequest is the query tuple q_l = (t_l, x_l, y_l) sent by the mobile
// object for one position update, tagged with the pollutant being asked
// about. Legacy (pre-pollutant) frames decode with Pollutant = CO2.
type QueryRequest struct {
	T float64 `json:"t"`
	X float64 `json:"x"`
	Y float64 `json:"y"`
	// Pollutant is always emitted by v1 encoders (no omitempty), so an
	// absent JSON field unambiguously marks a pre-v1 client.
	Pollutant tuple.Pollutant `json:"pollutant"`
	// Legacy marks a frame decoded from the pre-v1 (untagged) layout —
	// a 25-byte binary frame or a JSON body without a pollutant field.
	// The server routes legacy frames to its default pollutant; tagged
	// frames are routed literally. Never set by encoders.
	Legacy bool `json:"-"`
}

// Type implements Message.
func (QueryRequest) Type() MsgType { return TypeQueryRequest }

// QueryResponse carries the interpolated value ŝ_l back to the client.
type QueryResponse struct {
	Value float64 `json:"value"`
}

// Type implements Message.
func (QueryResponse) Type() MsgType { return TypeQueryResponse }

// BatchQueryRequest ships a whole route of query tuples (possibly mixing
// pollutants) in one frame — one radio round trip instead of one per
// point. It is a v1.1 message: every item carries its pollutant tag, and
// pre-batch servers answer the unknown tag with an ErrorResponse, so a
// client can fall back to per-point QueryRequests.
type BatchQueryRequest struct {
	Items []QueryRequest `json:"items"`
}

// Type implements Message.
func (BatchQueryRequest) Type() MsgType { return TypeBatchQueryRequest }

// BatchQueryItem is one request's outcome within a batch response: the
// interpolated value, or the error that request (alone) failed with.
type BatchQueryItem struct {
	Value float64 `json:"value"`
	Err   string  `json:"error,omitempty"`
}

// BatchQueryResponse carries one item per batch request, in order. The
// batch is not atomic: a request outside the retained windows reports its
// error in its own slot without rejecting the rest.
type BatchQueryResponse struct {
	Items []BatchQueryItem `json:"items"`
}

// Type implements Message.
func (BatchQueryResponse) Type() MsgType { return TypeBatchQueryResponse }

// MaxBatchItems bounds the items of one batch message (the binary codec
// carries the count as uint16).
const MaxBatchItems = math.MaxUint16

// ModelRequest is e_l: the model-cache client asking for the current model
// cover of one pollutant. T lets the server pick the window containing the
// client's clock. Legacy frames decode with Pollutant = CO2.
type ModelRequest struct {
	T         float64         `json:"t"`
	Pollutant tuple.Pollutant `json:"pollutant"`
	// Legacy marks a frame decoded from the pre-v1 (untagged) layout;
	// see QueryRequest.Legacy.
	Legacy bool `json:"-"`
}

// Type implements Message.
func (ModelRequest) Type() MsgType { return TypeModelRequest }

// ModelResponse ships (t_n, µ, M): validity, centroids, and model
// coefficients for every region of the cover (§2.3 items i–iii).
type ModelResponse struct {
	ValidFrom  float64     `json:"validFrom"`
	ValidUntil float64     `json:"validUntil"` // t_n
	ValueLo    float64     `json:"valueLo"`    // clamp range low bound
	ValueHi    float64     `json:"valueHi"`    // clamp range high bound
	Pollutant  uint8       `json:"pollutant"`
	Features   string      `json:"features"`
	Centroids  []geo.Point `json:"centroids"`
	Coefs      [][]float64 `json:"coefs"`
}

// Type implements Message.
func (ModelResponse) Type() MsgType { return TypeModelResponse }

// ErrorResponse reports a server-side failure.
type ErrorResponse struct {
	Msg string `json:"error"`
}

// Type implements Message.
func (ErrorResponse) Type() MsgType { return TypeError }

// Protocol errors.
var (
	ErrMalformed = errors.New("wire: malformed message")
	ErrUnknown   = errors.New("wire: unknown message type")
)

// Codec serializes protocol messages.
type Codec interface {
	// Name identifies the codec ("binary", "json").
	Name() string
	// Encode serializes m.
	Encode(m Message) ([]byte, error)
	// Decode parses one message.
	Decode(data []byte) (Message, error)
}

// Binary is the compact binary codec: a 1-byte type tag followed by
// fixed-width little-endian fields. This is the deployment codec.
var Binary Codec = binaryCodec{}

// JSON is the self-describing JSON codec used by the web interface.
var JSON Codec = jsonCodec{}

type binaryCodec struct{}

func (binaryCodec) Name() string { return "binary" }

func (binaryCodec) Encode(m Message) ([]byte, error) {
	switch v := m.(type) {
	case QueryRequest:
		buf := make([]byte, 1+24+1)
		buf[0] = byte(TypeQueryRequest)
		putF64(buf[1:], v.T)
		putF64(buf[9:], v.X)
		putF64(buf[17:], v.Y)
		buf[25] = byte(v.Pollutant)
		return buf, nil
	case QueryResponse:
		buf := make([]byte, 1+8)
		buf[0] = byte(TypeQueryResponse)
		putF64(buf[1:], v.Value)
		return buf, nil
	case ModelRequest:
		buf := make([]byte, 1+8+1)
		buf[0] = byte(TypeModelRequest)
		putF64(buf[1:], v.T)
		buf[9] = byte(v.Pollutant)
		return buf, nil
	case BatchQueryRequest:
		if len(v.Items) > MaxBatchItems {
			return nil, fmt.Errorf("wire: batch too large (%d items)", len(v.Items))
		}
		buf := make([]byte, 1+2+25*len(v.Items))
		buf[0] = byte(TypeBatchQueryRequest)
		binary.LittleEndian.PutUint16(buf[1:], uint16(len(v.Items)))
		off := 3
		for _, it := range v.Items {
			putF64(buf[off:], it.T)
			putF64(buf[off+8:], it.X)
			putF64(buf[off+16:], it.Y)
			buf[off+24] = byte(it.Pollutant)
			off += 25
		}
		return buf, nil
	case BatchQueryResponse:
		if len(v.Items) > MaxBatchItems {
			return nil, fmt.Errorf("wire: batch too large (%d items)", len(v.Items))
		}
		size := 1 + 2
		for _, it := range v.Items {
			if it.Err != "" {
				if len(it.Err) > math.MaxUint16 {
					return nil, fmt.Errorf("wire: batch item error too long (%d bytes)", len(it.Err))
				}
				size += 1 + 2 + len(it.Err)
			} else {
				size += 1 + 8
			}
		}
		buf := make([]byte, size)
		buf[0] = byte(TypeBatchQueryResponse)
		binary.LittleEndian.PutUint16(buf[1:], uint16(len(v.Items)))
		off := 3
		for _, it := range v.Items {
			if it.Err != "" {
				buf[off] = 1
				binary.LittleEndian.PutUint16(buf[off+1:], uint16(len(it.Err)))
				off += 3 + copy(buf[off+3:], it.Err)
			} else {
				buf[off] = 0
				putF64(buf[off+1:], it.Value)
				off += 9
			}
		}
		return buf, nil
	case ModelResponse:
		return encodeModelResponse(v)
	case ErrorResponse:
		if len(v.Msg) > math.MaxUint16 {
			return nil, fmt.Errorf("wire: error message too long (%d bytes)", len(v.Msg))
		}
		buf := make([]byte, 1+2+len(v.Msg))
		buf[0] = byte(TypeError)
		binary.LittleEndian.PutUint16(buf[1:], uint16(len(v.Msg)))
		copy(buf[3:], v.Msg)
		return buf, nil
	default:
		return encodeCluster(m)
	}
}

func encodeModelResponse(v ModelResponse) ([]byte, error) {
	if len(v.Centroids) != len(v.Coefs) {
		return nil, fmt.Errorf("wire: %d centroids vs %d coefficient sets",
			len(v.Centroids), len(v.Coefs))
	}
	if len(v.Centroids) > math.MaxUint16 {
		return nil, fmt.Errorf("wire: cover too large (%d regions)", len(v.Centroids))
	}
	if len(v.Features) > math.MaxUint8 {
		return nil, errors.New("wire: feature name too long")
	}
	size := 1 + 8 + 8 + 8 + 8 + 1 + 1 + len(v.Features) + 2
	for _, c := range v.Coefs {
		if len(c) > math.MaxUint8 {
			return nil, errors.New("wire: too many coefficients")
		}
		size += 16 + 1 + 8*len(c)
	}
	buf := make([]byte, size)
	buf[0] = byte(TypeModelResponse)
	putF64(buf[1:], v.ValidFrom)
	putF64(buf[9:], v.ValidUntil)
	putF64(buf[17:], v.ValueLo)
	putF64(buf[25:], v.ValueHi)
	buf[33] = v.Pollutant
	buf[34] = byte(len(v.Features))
	off := 35 + copy(buf[35:], v.Features)
	binary.LittleEndian.PutUint16(buf[off:], uint16(len(v.Centroids)))
	off += 2
	for i, c := range v.Centroids {
		putF64(buf[off:], c.X)
		putF64(buf[off+8:], c.Y)
		off += 16
		buf[off] = byte(len(v.Coefs[i]))
		off++
		for _, co := range v.Coefs[i] {
			putF64(buf[off:], co)
			off += 8
		}
	}
	return buf, nil
}

func (binaryCodec) Decode(data []byte) (Message, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty", ErrMalformed)
	}
	switch MsgType(data[0]) {
	case TypeQueryRequest:
		// 26 bytes with the v1 pollutant byte; 25-byte legacy frames
		// (pre-pollutant clients) decode as CO2.
		if len(data) != 26 && len(data) != 25 {
			return nil, fmt.Errorf("%w: QueryRequest length %d", ErrMalformed, len(data))
		}
		m := QueryRequest{T: getF64(data[1:]), X: getF64(data[9:]), Y: getF64(data[17:])}
		if len(data) == 26 {
			m.Pollutant = tuple.Pollutant(data[25])
		} else {
			m.Legacy = true
		}
		return m, nil
	case TypeQueryResponse:
		if len(data) != 9 {
			return nil, fmt.Errorf("%w: QueryResponse length %d", ErrMalformed, len(data))
		}
		return QueryResponse{Value: getF64(data[1:])}, nil
	case TypeModelRequest:
		// 10 bytes with the v1 pollutant byte; 9-byte legacy frames decode
		// as CO2.
		if len(data) != 10 && len(data) != 9 {
			return nil, fmt.Errorf("%w: ModelRequest length %d", ErrMalformed, len(data))
		}
		m := ModelRequest{T: getF64(data[1:])}
		if len(data) == 10 {
			m.Pollutant = tuple.Pollutant(data[9])
		} else {
			m.Legacy = true
		}
		return m, nil
	case TypeBatchQueryRequest:
		if len(data) < 3 {
			return nil, fmt.Errorf("%w: BatchQueryRequest header", ErrMalformed)
		}
		count := int(binary.LittleEndian.Uint16(data[1:]))
		if len(data) != 3+25*count {
			return nil, fmt.Errorf("%w: BatchQueryRequest length %d for %d items", ErrMalformed, len(data), count)
		}
		m := BatchQueryRequest{Items: make([]QueryRequest, count)}
		off := 3
		for i := range m.Items {
			m.Items[i] = QueryRequest{
				T:         getF64(data[off:]),
				X:         getF64(data[off+8:]),
				Y:         getF64(data[off+16:]),
				Pollutant: tuple.Pollutant(data[off+24]),
			}
			off += 25
		}
		return m, nil
	case TypeBatchQueryResponse:
		if len(data) < 3 {
			return nil, fmt.Errorf("%w: BatchQueryResponse header", ErrMalformed)
		}
		count := int(binary.LittleEndian.Uint16(data[1:]))
		// Cheapest possible item is 3 bytes (error flag + length); check
		// before allocating so a tiny frame cannot claim a huge count.
		if len(data) < 3+3*count {
			return nil, fmt.Errorf("%w: BatchQueryResponse length %d for %d items", ErrMalformed, len(data), count)
		}
		m := BatchQueryResponse{Items: make([]BatchQueryItem, count)}
		off := 3
		for i := range m.Items {
			if len(data) < off+1 {
				return nil, fmt.Errorf("%w: BatchQueryResponse item %d", ErrMalformed, i)
			}
			switch data[off] {
			case 0:
				if len(data) < off+9 {
					return nil, fmt.Errorf("%w: BatchQueryResponse item %d value", ErrMalformed, i)
				}
				m.Items[i].Value = getF64(data[off+1:])
				off += 9
			case 1:
				if len(data) < off+3 {
					return nil, fmt.Errorf("%w: BatchQueryResponse item %d error header", ErrMalformed, i)
				}
				n := int(binary.LittleEndian.Uint16(data[off+1:]))
				if len(data) < off+3+n {
					return nil, fmt.Errorf("%w: BatchQueryResponse item %d error body", ErrMalformed, i)
				}
				m.Items[i].Err = string(data[off+3 : off+3+n])
				off += 3 + n
			default:
				return nil, fmt.Errorf("%w: BatchQueryResponse item %d flag %d", ErrMalformed, i, data[off])
			}
		}
		if off != len(data) {
			return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(data)-off)
		}
		return m, nil
	case TypeModelResponse:
		return decodeModelResponse(data)
	case TypeError:
		if len(data) < 3 {
			return nil, fmt.Errorf("%w: ErrorResponse header", ErrMalformed)
		}
		n := int(binary.LittleEndian.Uint16(data[1:]))
		if len(data) != 3+n {
			return nil, fmt.Errorf("%w: ErrorResponse length", ErrMalformed)
		}
		return ErrorResponse{Msg: string(data[3:])}, nil
	default:
		return decodeCluster(data)
	}
}

func decodeModelResponse(data []byte) (Message, error) {
	if len(data) < 35 {
		return nil, fmt.Errorf("%w: ModelResponse header", ErrMalformed)
	}
	v := ModelResponse{
		ValidFrom:  getF64(data[1:]),
		ValidUntil: getF64(data[9:]),
		ValueLo:    getF64(data[17:]),
		ValueHi:    getF64(data[25:]),
		Pollutant:  data[33],
	}
	nameLen := int(data[34])
	off := 35
	if len(data) < off+nameLen+2 {
		return nil, fmt.Errorf("%w: ModelResponse name", ErrMalformed)
	}
	v.Features = string(data[off : off+nameLen])
	off += nameLen
	count := int(binary.LittleEndian.Uint16(data[off:]))
	off += 2
	v.Centroids = make([]geo.Point, 0, count)
	v.Coefs = make([][]float64, 0, count)
	for i := 0; i < count; i++ {
		if len(data) < off+17 {
			return nil, fmt.Errorf("%w: ModelResponse region %d", ErrMalformed, i)
		}
		c := geo.Point{X: getF64(data[off:]), Y: getF64(data[off+8:])}
		off += 16
		nc := int(data[off])
		off++
		if len(data) < off+8*nc {
			return nil, fmt.Errorf("%w: ModelResponse coefficients %d", ErrMalformed, i)
		}
		coefs := make([]float64, nc)
		for j := 0; j < nc; j++ {
			coefs[j] = getF64(data[off:])
			off += 8
		}
		v.Centroids = append(v.Centroids, c)
		v.Coefs = append(v.Coefs, coefs)
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(data)-off)
	}
	return v, nil
}

func putF64(b []byte, v float64) { binary.LittleEndian.PutUint64(b, math.Float64bits(v)) }
func getF64(b []byte) float64    { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }

type jsonCodec struct{}

func (jsonCodec) Name() string { return "json" }

// envelope wraps messages with a type tag for JSON transport. Epoch is
// carried only on Forwarded envelopes (the sender's membership epoch);
// pre-epoch decoders ignore the extra field.
type envelope struct {
	Type    MsgType         `json:"type"`
	Epoch   uint64          `json:"epoch,omitempty"`
	Payload json.RawMessage `json:"payload"`
}

func (jsonCodec) Encode(m Message) ([]byte, error) {
	// A forwarded frame nests a full envelope as its payload, so the
	// inner message keeps its own type tag.
	if fw, ok := m.(Forwarded); ok {
		if fw.Inner == nil {
			return nil, fmt.Errorf("%w: forwarded frame without inner message", ErrMalformed)
		}
		if _, nested := fw.Inner.(Forwarded); nested {
			return nil, fmt.Errorf("%w: nested forwarded frame", ErrMalformed)
		}
		payload, err := JSON.Encode(fw.Inner)
		if err != nil {
			return nil, err
		}
		return json.Marshal(envelope{Type: TypeForwarded, Epoch: fw.Epoch, Payload: payload})
	}
	// A replica read nests a full envelope alongside the origin node ID,
	// for the same reason.
	if rr, ok := m.(ReplicaRead); ok {
		if rr.Inner == nil {
			return nil, fmt.Errorf("%w: replica read without inner message", ErrMalformed)
		}
		switch rr.Inner.(type) {
		case ReplicaRead, Forwarded:
			return nil, fmt.Errorf("%w: routing wrapper nested in replica read", ErrMalformed)
		}
		inner, err := JSON.Encode(rr.Inner)
		if err != nil {
			return nil, err
		}
		payload, err := json.Marshal(struct {
			Origin uint16          `json:"origin"`
			Inner  json.RawMessage `json:"inner"`
		}{Origin: rr.Origin, Inner: inner})
		if err != nil {
			return nil, fmt.Errorf("wire: marshal payload: %w", err)
		}
		return json.Marshal(envelope{Type: TypeReplicaRead, Payload: payload})
	}
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("wire: marshal payload: %w", err)
	}
	return json.Marshal(envelope{Type: m.Type(), Payload: payload})
}

func (jsonCodec) Decode(data []byte) (Message, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	var target Message
	switch env.Type {
	case TypeQueryRequest:
		// A pointer pollutant distinguishes "absent" (pre-v1 client →
		// Legacy) from an explicit zero (CO2), mirroring the binary
		// codec's 25- vs 26-byte distinction.
		var v struct {
			T         float64          `json:"t"`
			X         float64          `json:"x"`
			Y         float64          `json:"y"`
			Pollutant *tuple.Pollutant `json:"pollutant"`
		}
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		m := QueryRequest{T: v.T, X: v.X, Y: v.Y}
		if v.Pollutant != nil {
			m.Pollutant = *v.Pollutant
		} else {
			m.Legacy = true
		}
		target = m
	case TypeQueryResponse:
		var v QueryResponse
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		target = v
	case TypeBatchQueryRequest:
		// Batch frames are v1.1-only: items decode literally, no legacy
		// pollutant inference.
		var v BatchQueryRequest
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		target = v
	case TypeBatchQueryResponse:
		var v BatchQueryResponse
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		target = v
	case TypeModelRequest:
		var v struct {
			T         float64          `json:"t"`
			Pollutant *tuple.Pollutant `json:"pollutant"`
		}
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		m := ModelRequest{T: v.T}
		if v.Pollutant != nil {
			m.Pollutant = *v.Pollutant
		} else {
			m.Legacy = true
		}
		target = m
	case TypeModelResponse:
		var v ModelResponse
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		target = v
	case TypeError:
		var v ErrorResponse
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		target = v
	case TypeRingRequest:
		target = RingRequest{}
	case TypeRingResponse:
		var v RingResponse
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		target = v
	case TypeIngestRequest:
		var v IngestRequest
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		target = v
	case TypeIngestResponse:
		var v IngestResponse
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		target = v
	case TypeHeatmapRequest:
		var v HeatmapRequest
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		target = v
	case TypeHeatmapResponse:
		var v HeatmapResponse
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		target = v
	case TypeNotOwner:
		var v NotOwnerResponse
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		target = v
	case TypeForwarded:
		var inner envelope
		if err := json.Unmarshal(env.Payload, &inner); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		if inner.Type == TypeForwarded {
			return nil, fmt.Errorf("%w: nested forwarded frame", ErrMalformed)
		}
		m, err := JSON.Decode(env.Payload)
		if err != nil {
			return nil, err
		}
		target = Forwarded{Inner: m, Epoch: env.Epoch}
	case TypeSubscribeRequest:
		var v SubscribeRequest
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		target = v
	case TypeSubscribeAck:
		var v SubscribeAck
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		target = v
	case TypePush:
		var v Push
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		target = v
	case TypeUnsubscribeRequest:
		var v UnsubscribeRequest
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		target = v
	case TypeUnsubscribeResponse:
		var v UnsubscribeResponse
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		target = v
	case TypeReplicaIngest:
		var v ReplicaIngest
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		target = v
	case TypeReplicaCatchupRequest:
		var v ReplicaCatchupRequest
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		target = v
	case TypeReplicaCatchupResponse:
		var v ReplicaCatchupResponse
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		target = v
	case TypeReplicaRead:
		var v struct {
			Origin uint16          `json:"origin"`
			Inner  json.RawMessage `json:"inner"`
		}
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		var inner envelope
		if err := json.Unmarshal(v.Inner, &inner); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		if inner.Type == TypeReplicaRead || inner.Type == TypeForwarded {
			return nil, fmt.Errorf("%w: routing wrapper nested in replica read", ErrMalformed)
		}
		m, err := JSON.Decode(v.Inner)
		if err != nil {
			return nil, err
		}
		target = ReplicaRead{Origin: v.Origin, Inner: m}
	case TypeJoinRequest:
		var v JoinRequest
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		target = v
	case TypeRingUpdate:
		var v RingUpdate
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		target = v
	case TypeShardTransfer:
		var v ShardTransfer
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		target = v
	case TypePromote:
		var v Promote
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		target = v
	default:
		return nil, fmt.Errorf("%w: tag %d", ErrUnknown, env.Type)
	}
	return target, nil
}

// ModelResponseFromCover serializes a built cover into the wire form the
// server sends in response to e_l.
func ModelResponseFromCover(cv *core.Cover) (ModelResponse, error) {
	if cv == nil || cv.Size() == 0 {
		return ModelResponse{}, errors.New("wire: nil or empty cover")
	}
	resp := ModelResponse{
		ValidFrom:  cv.ValidFrom,
		ValidUntil: cv.ValidUntil,
		ValueLo:    cv.ValueLo,
		ValueHi:    cv.ValueHi,
		Pollutant:  uint8(cv.Pollutant),
		Features:   cv.Regions[0].Model.Features().Name(),
		Centroids:  make([]geo.Point, cv.Size()),
		Coefs:      make([][]float64, cv.Size()),
	}
	for i, r := range cv.Regions {
		if r.Model.Features().Name() != resp.Features {
			return ModelResponse{}, errors.New("wire: mixed feature families in one cover")
		}
		resp.Centroids[i] = r.Centroid
		resp.Coefs[i] = r.Model.Coef()
	}
	return resp, nil
}

// CoverFromModelResponse reconstructs a queryable cover on the client from
// a received model response — the (t_n, µ, M) triple the smartphone stores
// in local memory.
func CoverFromModelResponse(resp ModelResponse) (*core.Cover, error) {
	if len(resp.Centroids) != len(resp.Coefs) {
		return nil, fmt.Errorf("wire: %d centroids vs %d coefficient sets",
			len(resp.Centroids), len(resp.Coefs))
	}
	if len(resp.Centroids) == 0 {
		return nil, errors.New("wire: empty model response")
	}
	f, err := regress.FeaturesByName(resp.Features)
	if err != nil {
		return nil, err
	}
	cv := &core.Cover{
		Pollutant:  tuple.Pollutant(resp.Pollutant),
		ValidFrom:  resp.ValidFrom,
		ValidUntil: resp.ValidUntil,
		ValueLo:    resp.ValueLo,
		ValueHi:    resp.ValueHi,
		Regions:    make([]core.RegionModel, len(resp.Centroids)),
	}
	for i := range resp.Centroids {
		m, err := regress.NewModel(f, resp.Coefs[i])
		if err != nil {
			return nil, fmt.Errorf("wire: region %d: %w", i, err)
		}
		cv.Regions[i] = core.RegionModel{Centroid: resp.Centroids[i], Model: m}
	}
	return cv, nil
}
