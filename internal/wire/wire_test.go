package wire

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/kmeans"
	"repro/internal/tuple"
)

func sampleMessages() []Message {
	return []Message{
		QueryRequest{T: 123.5, X: -45.25, Y: 900, Pollutant: tuple.PM},
		QueryResponse{Value: 512.75},
		ModelRequest{T: 42, Pollutant: tuple.CO},
		ModelResponse{
			ValidFrom:  100,
			ValidUntil: 200,
			Pollutant:  0,
			Features:   "linear-xyt",
			Centroids:  []geo.Point{{X: 1, Y: 2}, {X: 3, Y: 4}},
			Coefs:      [][]float64{{400, 0.1, 0.2, 0.3}, {500, -0.1, -0.2, -0.3}},
		},
		ErrorResponse{Msg: "window 3 is empty"},
		BatchQueryRequest{Items: []QueryRequest{
			{T: 60, X: 1, Y: 2, Pollutant: tuple.CO2},
			{T: 120, X: 3, Y: 4, Pollutant: tuple.PM},
		}},
		BatchQueryResponse{Items: []BatchQueryItem{
			{Value: 417.25},
			{Err: "query: time outside retained data windows"},
			{Value: 90.5},
		}},
	}
}

func TestRoundTripBothCodecs(t *testing.T) {
	for _, codec := range []Codec{Binary, JSON} {
		for _, m := range sampleMessages() {
			data, err := codec.Encode(m)
			if err != nil {
				t.Fatalf("%s: encode %T: %v", codec.Name(), m, err)
			}
			got, err := codec.Decode(data)
			if err != nil {
				t.Fatalf("%s: decode %T: %v", codec.Name(), m, err)
			}
			if !reflect.DeepEqual(got, m) {
				t.Errorf("%s: round trip %T: got %+v, want %+v", codec.Name(), m, got, m)
			}
		}
	}
}

func TestBinaryIsSmallerThanJSON(t *testing.T) {
	// The deployment codec must actually be more compact — the premise of
	// running binary over GPRS.
	for _, m := range sampleMessages() {
		b, err := Binary.Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		j, err := JSON.Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) >= len(j) {
			t.Errorf("%T: binary %d bytes ≥ json %d bytes", m, len(b), len(j))
		}
	}
}

func TestBinaryQueryRequestSize(t *testing.T) {
	// Query tuples ride on every position update; their size is the
	// baseline method's per-query uplink cost. 1 tag + 3 float64s +
	// 1 pollutant byte.
	data, err := Binary.Encode(QueryRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 26 {
		t.Errorf("QueryRequest = %d bytes, want 26", len(data))
	}
	data, err = Binary.Encode(QueryResponse{})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 9 {
		t.Errorf("QueryResponse = %d bytes, want 9", len(data))
	}
}

func TestBinaryLegacyDecode(t *testing.T) {
	// Pre-v1 clients send frames without the trailing pollutant byte;
	// they must decode as CO2 queries so deployed fleets keep working.
	full, err := Binary.Encode(QueryRequest{T: 9, X: 10, Y: 11, Pollutant: tuple.PM})
	if err != nil {
		t.Fatal(err)
	}
	legacy := full[:25] // strip the pollutant byte
	got, err := Binary.Decode(legacy)
	if err != nil {
		t.Fatalf("legacy QueryRequest: %v", err)
	}
	if want := (QueryRequest{T: 9, X: 10, Y: 11, Pollutant: tuple.CO2, Legacy: true}); got != want {
		t.Errorf("legacy QueryRequest = %+v, want %+v", got, want)
	}

	fullM, err := Binary.Encode(ModelRequest{T: 7, Pollutant: tuple.CO})
	if err != nil {
		t.Fatal(err)
	}
	gotM, err := Binary.Decode(fullM[:9])
	if err != nil {
		t.Fatalf("legacy ModelRequest: %v", err)
	}
	if want := (ModelRequest{T: 7, Pollutant: tuple.CO2, Legacy: true}); gotM != want {
		t.Errorf("legacy ModelRequest = %+v, want %+v", gotM, want)
	}

	// Tagged frames round-trip the pollutant and are not marked legacy.
	gotQ, err := Binary.Decode(full)
	if err != nil {
		t.Fatal(err)
	}
	if q := gotQ.(QueryRequest); q.Pollutant != tuple.PM || q.Legacy {
		t.Errorf("tagged QueryRequest = %+v, want pollutant PM, not legacy", q)
	}
}

func TestJSONLegacyDecode(t *testing.T) {
	// JSON bodies without a pollutant field decode as legacy (routed to
	// the server default), mirroring the binary codec's 25-byte frames.
	data := []byte(`{"type":1,"payload":{"t":5,"x":6,"y":7}}`)
	got, err := JSON.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if want := (QueryRequest{T: 5, X: 6, Y: 7, Pollutant: tuple.CO2, Legacy: true}); got != want {
		t.Errorf("legacy JSON QueryRequest = %+v, want %+v", got, want)
	}
	// An explicit zero pollutant is a tagged CO2 request, not legacy.
	data = []byte(`{"type":1,"payload":{"t":5,"x":6,"y":7,"pollutant":0}}`)
	got, err = JSON.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if want := (QueryRequest{T: 5, X: 6, Y: 7, Pollutant: tuple.CO2}); got != want {
		t.Errorf("tagged JSON QueryRequest = %+v, want %+v", got, want)
	}
	// Same distinction for model requests.
	gotM, err := JSON.Decode([]byte(`{"type":3,"payload":{"t":9}}`))
	if err != nil {
		t.Fatal(err)
	}
	if want := (ModelRequest{T: 9, Legacy: true}); gotM != want {
		t.Errorf("legacy JSON ModelRequest = %+v, want %+v", gotM, want)
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"unknown tag", []byte{0xEE, 0, 0}},
		{"short query request", []byte{byte(TypeQueryRequest), 1, 2}},
		{"long query response", make([]byte, 50)},
		{"short model response", []byte{byte(TypeModelResponse), 1}},
		{"short error", []byte{byte(TypeError), 9}},
	}
	// Give "long query response" a valid tag.
	tests[3].data[0] = byte(TypeQueryResponse)
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Binary.Decode(tt.data); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestBinaryModelResponseTruncation(t *testing.T) {
	m := sampleMessages()[3]
	data, err := Binary.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must fail to decode, never panic.
	for cut := 1; cut < len(data); cut++ {
		if _, err := Binary.Decode(data[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	// Trailing garbage must also fail.
	if _, err := Binary.Decode(append(append([]byte{}, data...), 0x00)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestJSONDecodeErrors(t *testing.T) {
	cases := [][]byte{
		[]byte(`not json`),
		[]byte(`{"type":99,"payload":{}}`),
		[]byte(`{"type":1,"payload":"not an object"}`),
	}
	for _, data := range cases {
		if _, err := JSON.Decode(data); err == nil {
			t.Errorf("decode %q: expected error", data)
		}
	}
}

func TestEncodeMismatchedModelResponse(t *testing.T) {
	m := ModelResponse{
		Centroids: []geo.Point{{X: 1, Y: 2}},
		Coefs:     [][]float64{{1}, {2}},
	}
	if _, err := Binary.Encode(m); err == nil {
		t.Error("expected centroid/coef mismatch error")
	}
}

func TestCoverRoundTripThroughWire(t *testing.T) {
	// Build a real cover, ship it, reconstruct it, and verify the client
	// side interpolates identically to the server side — the property the
	// model-cache correctness rests on.
	rng := rand.New(rand.NewSource(1))
	w := make(tuple.Batch, 300)
	for i := range w {
		x, y := rng.Float64()*3000, rng.Float64()*3000
		w[i] = tuple.Raw{T: rng.Float64() * 600, X: x, Y: y, S: 420 + 0.05*x - 0.02*y}
	}
	cv, err := core.BuildCover(w, 0, 600, core.Config{Cluster: kmeans.Config{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ModelResponseFromCover(cv)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ValidUntil != cv.ValidUntil {
		t.Errorf("t_n = %v, want %v", resp.ValidUntil, cv.ValidUntil)
	}
	// Through the binary codec.
	data, err := Binary.Encode(resp)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Binary.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	clientCover, err := CoverFromModelResponse(decoded.(ModelResponse))
	if err != nil {
		t.Fatal(err)
	}
	if clientCover.Size() != cv.Size() {
		t.Fatalf("client cover size %d, want %d", clientCover.Size(), cv.Size())
	}
	for trial := 0; trial < 50; trial++ {
		qt, qx, qy := rng.Float64()*600, rng.Float64()*3000, rng.Float64()*3000
		sv, err1 := cv.Interpolate(qt, qx, qy)
		lv, err2 := clientCover.Interpolate(qt, qx, qy)
		if err1 != nil || err2 != nil {
			t.Fatalf("interpolate errors: %v %v", err1, err2)
		}
		if math.Abs(sv-lv) > 1e-12 {
			t.Fatalf("server %v vs client %v", sv, lv)
		}
	}
}

func TestCoverFromModelResponseErrors(t *testing.T) {
	if _, err := CoverFromModelResponse(ModelResponse{}); err == nil {
		t.Error("empty response should error")
	}
	bad := ModelResponse{
		Features:  "no-such-family",
		Centroids: []geo.Point{{}},
		Coefs:     [][]float64{{1}},
	}
	if _, err := CoverFromModelResponse(bad); err == nil {
		t.Error("unknown family should error")
	}
	mismatch := ModelResponse{
		Features:  "constant",
		Centroids: []geo.Point{{}},
		Coefs:     [][]float64{{1, 2, 3}},
	}
	if _, err := CoverFromModelResponse(mismatch); err == nil {
		t.Error("wrong coefficient count should error")
	}
	short := ModelResponse{
		Features:  "constant",
		Centroids: []geo.Point{{}, {}},
		Coefs:     [][]float64{{1}},
	}
	if _, err := CoverFromModelResponse(short); err == nil {
		t.Error("centroid/coef mismatch should error")
	}
}

func TestModelResponseFromCoverErrors(t *testing.T) {
	if _, err := ModelResponseFromCover(nil); err == nil {
		t.Error("nil cover should error")
	}
	if _, err := ModelResponseFromCover(&core.Cover{}); err == nil {
		t.Error("empty cover should error")
	}
}

func TestUnknownMessageEncode(t *testing.T) {
	type fake struct{ Message }
	if _, err := Binary.Encode(fake{}); !errors.Is(err, ErrUnknown) {
		t.Errorf("want ErrUnknown, got %v", err)
	}
}

func TestBatchQueryMalformedBinary(t *testing.T) {
	good, err := Binary.Encode(BatchQueryRequest{Items: []QueryRequest{{T: 1, X: 2, Y: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"request truncated header", []byte{byte(TypeBatchQueryRequest), 1}},
		{"request short items", good[:len(good)-5]},
		{"request trailing bytes", append(append([]byte{}, good...), 0xAA)},
		{"response truncated header", []byte{byte(TypeBatchQueryResponse), 1}},
		{"response bad flag", []byte{byte(TypeBatchQueryResponse), 1, 0, 7, 0, 0, 0, 0, 0, 0, 0, 0}},
		{"response short value", []byte{byte(TypeBatchQueryResponse), 1, 0, 0, 1, 2}},
		{"response short error", []byte{byte(TypeBatchQueryResponse), 1, 0, 1, 9, 0, 'x'}},
	} {
		if _, err := Binary.Decode(tc.data); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: got %v, want ErrMalformed", tc.name, err)
		}
	}
}

func TestBatchQueryEncodeBounds(t *testing.T) {
	big := BatchQueryRequest{Items: make([]QueryRequest, MaxBatchItems+1)}
	if _, err := Binary.Encode(big); err == nil {
		t.Error("oversized batch request must not encode")
	}
	bigResp := BatchQueryResponse{Items: make([]BatchQueryItem, MaxBatchItems+1)}
	if _, err := Binary.Encode(bigResp); err == nil {
		t.Error("oversized batch response must not encode")
	}
}

func TestBatchQueryBinaryCompact(t *testing.T) {
	// One batch frame must cost less than its requests sent one by one
	// (the point of batching on a constrained link): n×25 payload bytes
	// plus one 3-byte header versus n×26-byte frames.
	items := make([]QueryRequest, 40)
	for i := range items {
		items[i] = QueryRequest{T: float64(i), X: 1, Y: 2, Pollutant: tuple.CO2}
	}
	batch, err := Binary.Encode(BatchQueryRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	single, err := Binary.Encode(items[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) >= len(items)*len(single) {
		t.Errorf("batch frame %dB not smaller than %d single frames (%dB)",
			len(batch), len(items), len(items)*len(single))
	}
}
