// Replication messages: the v1.4 additions that let shard owners stream
// committed ingest slices to their replicas, let a replica that detects
// a sequence gap pull itself back into sync ("I have seq N" → a
// checkpoint-or-suffix chunk stream, the wire form of PR 4's
// checkpoint + segment-suffix recovery), and let any party read a dead
// owner's shards from a replica's mirror (ReplicaRead).
//
// Like the v1.2/v1.3 additions these are purely new tags: every
// pre-replication frame decodes unchanged, and older peers answer the
// unknown tags with an ErrorResponse, which replication-aware callers
// treat as "peer does not replicate".
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/tuple"
)

// Replication message type tags (v1.4).
const (
	// TypeReplicaIngest streams one committed ingest slice from a shard
	// primary to a replica, carrying the slice's replication sequence.
	TypeReplicaIngest MsgType = iota + 21
	// TypeReplicaCatchupRequest is a replica telling a primary the
	// replication sequence it holds, asking for what it is missing.
	TypeReplicaCatchupRequest
	// TypeReplicaCatchupResponse carries one catch-up chunk: a suffix of
	// the primary's replication log, or (Snapshot) the start of a full
	// retained-state reset when the replica is behind the log.
	TypeReplicaCatchupResponse
	// TypeReplicaRead asks a node to answer the inner request from its
	// mirror of another node — the failover read path when that node
	// (the shard's primary) is unreachable.
	TypeReplicaRead
)

// ReplicaIngest is a primary streaming one committed ingest slice to a
// replica. Seq is the replication sequence of the first tuple: the
// replica applies the frame only if it continues its stream (Seq equal
// to — or overlapping — the sequence it holds) and otherwise pulls a
// catch-up instead of applying out of order.
type ReplicaIngest struct {
	// Origin is the primary's node ID; the replica applies the slice to
	// its mirror of that node.
	Origin    uint16          `json:"origin"`
	Pollutant tuple.Pollutant `json:"pollutant"`
	Seq       uint64          `json:"seq"`
	Tuples    []tuple.Raw     `json:"tuples"`
}

// Type implements Message.
func (ReplicaIngest) Type() MsgType { return TypeReplicaIngest }

// ReplicaCatchupRequest is a replica asking the primary for everything
// after the replication sequence it holds ("I have seq N").
type ReplicaCatchupRequest struct {
	Pollutant tuple.Pollutant `json:"pollutant"`
	// Have is the next sequence the replica expects (the number of
	// stream tuples it has applied).
	Have uint64 `json:"have"`
}

// Type implements Message.
func (ReplicaCatchupRequest) Type() MsgType { return TypeReplicaCatchupRequest }

// ReplicaCatchupResponse is one catch-up chunk. With Snapshot unset the
// tuples are the log suffix starting at From == the requested Have (the
// segment-suffix case); with Snapshot set the replica was behind the
// primary's replication log, must drop its mirror state for the stream,
// and receives the primary's retained state from the log start (the
// checkpoint case). Done reports that applying this chunk brings the
// replica up to the primary's current sequence; until then the replica
// keeps requesting with its advanced Have.
type ReplicaCatchupResponse struct {
	Snapshot bool        `json:"snapshot,omitempty"`
	Done     bool        `json:"done,omitempty"`
	From     uint64      `json:"from"`
	Tuples   []tuple.Raw `json:"tuples"`
}

// Type implements Message.
func (ReplicaCatchupResponse) Type() MsgType { return TypeReplicaCatchupResponse }

// ReplicaRead asks the receiving node to answer Inner from its mirror
// of node Origin — the read-failover frame sent when Origin (the
// shard's primary) is unreachable. Like Forwarded it is terminal: the
// receiver answers from local (mirror) state and never re-routes, and
// routing wrappers do not nest.
type ReplicaRead struct {
	Origin uint16  `json:"origin"`
	Inner  Message `json:"-"`
}

// Type implements Message.
func (ReplicaRead) Type() MsgType { return TypeReplicaRead }

// putRaws serializes tuples at buf (32 bytes each).
func putRaws(buf []byte, tuples []tuple.Raw) {
	off := 0
	for _, r := range tuples {
		putF64(buf[off:], r.T)
		putF64(buf[off+8:], r.X)
		putF64(buf[off+16:], r.Y)
		putF64(buf[off+24:], r.S)
		off += 32
	}
}

// getRaws parses count tuples at buf.
func getRaws(buf []byte, count int) []tuple.Raw {
	out := make([]tuple.Raw, count)
	off := 0
	for i := range out {
		out[i] = tuple.Raw{
			T: getF64(buf[off:]), X: getF64(buf[off+8:]),
			Y: getF64(buf[off+16:]), S: getF64(buf[off+24:]),
		}
		off += 32
	}
	return out
}

// encodeReplica serializes the v1.4 replication messages (binary codec).
func encodeReplica(m Message) ([]byte, error) {
	switch v := m.(type) {
	case ReplicaIngest:
		if len(v.Tuples) > math.MaxUint32 {
			return nil, fmt.Errorf("wire: replica ingest too large (%d tuples)", len(v.Tuples))
		}
		buf := make([]byte, 1+2+1+8+4+32*len(v.Tuples))
		buf[0] = byte(TypeReplicaIngest)
		binary.LittleEndian.PutUint16(buf[1:], v.Origin)
		buf[3] = byte(v.Pollutant)
		binary.LittleEndian.PutUint64(buf[4:], v.Seq)
		binary.LittleEndian.PutUint32(buf[12:], uint32(len(v.Tuples)))
		putRaws(buf[16:], v.Tuples)
		return buf, nil
	case ReplicaCatchupRequest:
		buf := make([]byte, 1+1+8)
		buf[0] = byte(TypeReplicaCatchupRequest)
		buf[1] = byte(v.Pollutant)
		binary.LittleEndian.PutUint64(buf[2:], v.Have)
		return buf, nil
	case ReplicaCatchupResponse:
		if len(v.Tuples) > math.MaxUint32 {
			return nil, fmt.Errorf("wire: catch-up chunk too large (%d tuples)", len(v.Tuples))
		}
		buf := make([]byte, 1+1+8+4+32*len(v.Tuples))
		buf[0] = byte(TypeReplicaCatchupResponse)
		if v.Snapshot {
			buf[1] |= 1
		}
		if v.Done {
			buf[1] |= 2
		}
		binary.LittleEndian.PutUint64(buf[2:], v.From)
		binary.LittleEndian.PutUint32(buf[10:], uint32(len(v.Tuples)))
		putRaws(buf[14:], v.Tuples)
		return buf, nil
	case ReplicaRead:
		if v.Inner == nil {
			return nil, fmt.Errorf("%w: replica read without inner message", ErrMalformed)
		}
		switch v.Inner.(type) {
		case ReplicaRead, Forwarded:
			return nil, fmt.Errorf("%w: routing wrapper nested in replica read", ErrMalformed)
		}
		inner, err := Binary.Encode(v.Inner)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, 1+2+len(inner))
		buf[0] = byte(TypeReplicaRead)
		binary.LittleEndian.PutUint16(buf[1:], v.Origin)
		copy(buf[3:], inner)
		return buf, nil
	default:
		return encodeMembership(m)
	}
}

// decodeReplica parses the v1.4 replication messages (binary codec).
func decodeReplica(data []byte) (Message, error) {
	switch MsgType(data[0]) {
	case TypeReplicaIngest:
		if len(data) < 16 {
			return nil, fmt.Errorf("%w: ReplicaIngest header", ErrMalformed)
		}
		count := int(binary.LittleEndian.Uint32(data[12:]))
		if len(data) != 16+32*count {
			return nil, fmt.Errorf("%w: ReplicaIngest length %d for %d tuples", ErrMalformed, len(data), count)
		}
		return ReplicaIngest{
			Origin:    binary.LittleEndian.Uint16(data[1:]),
			Pollutant: tuple.Pollutant(data[3]),
			Seq:       binary.LittleEndian.Uint64(data[4:]),
			Tuples:    getRaws(data[16:], count),
		}, nil
	case TypeReplicaCatchupRequest:
		if len(data) != 10 {
			return nil, fmt.Errorf("%w: ReplicaCatchupRequest length %d", ErrMalformed, len(data))
		}
		return ReplicaCatchupRequest{
			Pollutant: tuple.Pollutant(data[1]),
			Have:      binary.LittleEndian.Uint64(data[2:]),
		}, nil
	case TypeReplicaCatchupResponse:
		if len(data) < 14 {
			return nil, fmt.Errorf("%w: ReplicaCatchupResponse header", ErrMalformed)
		}
		if data[1] > 3 {
			return nil, fmt.Errorf("%w: ReplicaCatchupResponse flags %d", ErrMalformed, data[1])
		}
		count := int(binary.LittleEndian.Uint32(data[10:]))
		if len(data) != 14+32*count {
			return nil, fmt.Errorf("%w: ReplicaCatchupResponse length %d for %d tuples", ErrMalformed, len(data), count)
		}
		return ReplicaCatchupResponse{
			Snapshot: data[1]&1 != 0,
			Done:     data[1]&2 != 0,
			From:     binary.LittleEndian.Uint64(data[2:]),
			Tuples:   getRaws(data[14:], count),
		}, nil
	case TypeReplicaRead:
		if len(data) < 4 {
			return nil, fmt.Errorf("%w: replica read without inner message", ErrMalformed)
		}
		switch MsgType(data[3]) {
		case TypeReplicaRead, TypeForwarded:
			return nil, fmt.Errorf("%w: routing wrapper nested in replica read", ErrMalformed)
		}
		inner, err := Binary.Decode(data[3:])
		if err != nil {
			return nil, err
		}
		return ReplicaRead{Origin: binary.LittleEndian.Uint16(data[1:]), Inner: inner}, nil
	default:
		return decodeMembership(data)
	}
}
