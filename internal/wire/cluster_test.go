package wire

// Round-trip and robustness tests for the v1.2 cluster messages: ring
// exchange, wire ingest, heatmap scatter frames, NotOwner bounces, and
// the Forwarded wrapper — across both codecs, plus the backward-
// compatibility guarantee that pre-cluster frames decode unchanged.

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/geo"
	"repro/internal/heatmap"
	"repro/internal/tuple"
)

func clusterMessages() []Message {
	return []Message{
		RingRequest{},
		RingResponse{
			Nodes:  []string{"10.0.0.1:8081", "10.0.0.2:8081", "edge.example:9000"},
			Cells:  []geo.Point{{X: -500, Y: 250}, {X: 900, Y: -1200}},
			VNodes: 64,
		},
		IngestRequest{
			Pollutant: tuple.PM,
			Tuples: []tuple.Raw{
				{T: 12, X: 1, Y: 2, S: 420},
				{T: 60, X: -3, Y: 4.5, S: 431.25},
			},
		},
		IngestResponse{Ingested: 2},
		HeatmapRequest{T: 1800, Pollutant: tuple.CO, Cols: 32, Rows: 16},
		HeatmapRequest{
			T: 1800, Pollutant: tuple.CO2, Cols: 4, Rows: 2, HasRegion: true,
			Region: geo.Rect{Min: geo.Point{X: -10, Y: -20}, Max: geo.Point{X: 30, Y: 40}},
		},
		HeatmapResponse{
			Region: geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 100, Y: 100}},
			Cols:   2, Rows: 2, T: 1800,
			Values: []float64{400, 410, 420, 430},
		},
		NotOwnerResponse{Owner: 2, Addr: "10.0.0.3:8081"},
		Forwarded{Inner: QueryRequest{T: 5, X: 6, Y: 7, Pollutant: tuple.PM}},
		Forwarded{Inner: IngestRequest{Pollutant: tuple.CO2, Tuples: []tuple.Raw{{T: 1, X: 2, Y: 3, S: 4}}}},
	}
}

func TestClusterMessageRoundTrip(t *testing.T) {
	for _, codec := range []Codec{Binary, JSON} {
		for _, m := range clusterMessages() {
			enc, err := codec.Encode(m)
			if err != nil {
				t.Fatalf("%s encode %T: %v", codec.Name(), m, err)
			}
			dec, err := codec.Decode(enc)
			if err != nil {
				t.Fatalf("%s decode %T: %v", codec.Name(), m, err)
			}
			if !reflect.DeepEqual(m, dec) {
				t.Fatalf("%s round trip of %T:\n got %#v\nwant %#v", codec.Name(), m, dec, m)
			}
		}
	}
}

func TestForwardedNeverNests(t *testing.T) {
	inner := Forwarded{Inner: QueryRequest{T: 1}}
	for _, codec := range []Codec{Binary, JSON} {
		if _, err := codec.Encode(Forwarded{Inner: inner}); err == nil {
			t.Errorf("%s encoded a nested forwarded frame", codec.Name())
		}
	}
	// A hand-crafted nested binary frame must be rejected, not recursed.
	innerB, err := Binary.Encode(inner)
	if err != nil {
		t.Fatal(err)
	}
	nested := append([]byte{byte(TypeForwarded)}, innerB...)
	if _, err := Binary.Decode(nested); !errors.Is(err, ErrMalformed) {
		t.Errorf("nested forwarded frame decoded: %v", err)
	}
	if _, err := Binary.Encode(Forwarded{}); err == nil {
		t.Error("forwarded frame without inner message encoded")
	}
}

func TestClusterDecodeRobustness(t *testing.T) {
	cases := [][]byte{
		{byte(TypeRingRequest), 0},                       // trailing byte
		{byte(TypeRingResponse), 5, 0},                   // claims 5 nodes, has none
		{byte(TypeIngestRequest), 0},                     // truncated header
		{byte(TypeIngestRequest), 0, 255, 255, 255, 255}, // huge count, no body
		{byte(TypeIngestResponse), 1, 2},                 // short
		{byte(TypeHeatmapRequest), 1, 2, 3},              // short
		{byte(TypeHeatmapResponse), 0, 0},                // short header
		{byte(TypeNotOwner), 0},                          // short
		{byte(TypeForwarded)},                            // no inner
	}
	for _, data := range cases {
		if _, err := Binary.Decode(data); err == nil {
			t.Errorf("malformed frame % x decoded", data)
		}
	}
	// A heatmap response whose length disagrees with cols*rows is
	// rejected before allocation.
	hr, _ := Binary.Encode(HeatmapResponse{Cols: 1, Rows: 1, Values: []float64{1}})
	hr[33] = 0xFF // cols := 255
	hr[34] = 0xFF
	if _, err := Binary.Decode(hr); err == nil {
		t.Error("heatmap length mismatch decoded")
	}
}

// TestPreClusterFramesUnchanged locks the backward-compatibility
// guarantee: the cluster tags extend the tag space without touching the
// layout of any pre-cluster frame, including the legacy untagged ones.
func TestPreClusterFramesUnchanged(t *testing.T) {
	q, err := Binary.Encode(QueryRequest{T: 1, X: 2, Y: 3, Pollutant: tuple.PM})
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 26 {
		t.Fatalf("v1 QueryRequest frame is %d bytes, want 26", len(q))
	}
	legacy, err := Binary.Decode(q[:25])
	if err != nil {
		t.Fatalf("legacy 25-byte frame no longer decodes: %v", err)
	}
	if lq := legacy.(QueryRequest); !lq.Legacy {
		t.Error("25-byte frame not marked legacy")
	}
	mr, err := Binary.Decode(append([]byte{byte(TypeModelRequest)}, make([]byte, 8)...))
	if err != nil {
		t.Fatalf("legacy 9-byte model request no longer decodes: %v", err)
	}
	if lm := mr.(ModelRequest); !lm.Legacy {
		t.Error("9-byte model request not marked legacy")
	}
}

func TestHeatmapGridConversion(t *testing.T) {
	g := &heatmap.Grid{
		Region: geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 10, Y: 10}},
		Cols:   2, Rows: 3, T: 60,
		Values: []float64{1, 2, 3, 4, 5, 6},
	}
	resp, err := HeatmapResponseFromGrid(g)
	if err != nil {
		t.Fatal(err)
	}
	back := resp.Grid()
	if !reflect.DeepEqual(g, back) {
		t.Fatalf("grid conversion not a round trip:\n got %#v\nwant %#v", back, g)
	}
	if _, err := HeatmapResponseFromGrid(nil); err == nil {
		t.Error("nil grid converted")
	}
	if _, err := HeatmapResponseFromGrid(&heatmap.Grid{Cols: math.MaxUint16 + 1, Rows: 1}); err == nil {
		t.Error("oversized grid converted")
	}
	if _, err := Binary.Encode(HeatmapResponse{Cols: 2, Rows: 2, Values: []float64{1}}); err == nil {
		t.Error("inconsistent heatmap response encoded")
	}
}
