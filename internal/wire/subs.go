// Subscription messages: the v1.3 additions for server-push continuous
// queries. A client subscribes a route (point set + pollutant) once and
// the server pushes delta frames — only the points whose covers were
// invalidated and re-evaluated — with sequence numbers, instead of the
// client re-polling the full route.
//
// Like the v1.2 cluster messages, these are purely new tags: every
// pre-subscription frame decodes unchanged, and v1.2 peers answer the
// unknown tags with an ErrorResponse, which subscription-aware callers
// treat as "peer does not push".
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/tuple"
)

// Subscription message type tags (v1.3).
const (
	// TypeSubscribeRequest registers a point set for push delivery.
	TypeSubscribeRequest MsgType = iota + 16
	// TypeSubscribeAck acknowledges a subscription with its server ID.
	TypeSubscribeAck
	// TypePush carries one push event: a delta, resync, or error frame.
	TypePush
	// TypeUnsubscribeRequest tears a subscription down by ID.
	TypeUnsubscribeRequest
	// TypeUnsubscribeResponse acknowledges an unsubscribe.
	TypeUnsubscribeResponse
)

// SubPoint is one subscribed route point (t_l, x_l, y_l).
type SubPoint struct {
	T float64 `json:"t"`
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// SubscribeRequest opens a subscription over a point set for one
// pollutant. The transport must support server push (a proto stream or
// the HTTP SSE endpoint); over a plain request/response exchange the
// server answers with an ErrorResponse.
type SubscribeRequest struct {
	Pollutant tuple.Pollutant `json:"pollutant"`
	Points    []SubPoint      `json:"points"`
}

// Type implements Message.
func (SubscribeRequest) Type() MsgType { return TypeSubscribeRequest }

// SubscribeAck confirms a subscription. The initial value vector is not
// in the ack: it arrives as the first Push (a resync, sequence 1), so
// acks and pushes share one consumer path.
type SubscribeAck struct {
	ID     uint64 `json:"id"`
	Points uint16 `json:"points"`
}

// Type implements Message.
func (SubscribeAck) Type() MsgType { return TypeSubscribeAck }

// PushPoint is one point of a push frame: the index into the subscribed
// point set plus the new value or per-point evaluation error.
type PushPoint struct {
	Index uint16  `json:"i"`
	Value float64 `json:"value"`
	Err   string  `json:"error,omitempty"`
}

// Push is one server-push event. A delta frame carries only changed
// points; a resync frame (Resync set) carries every point and tells the
// consumer to discard cached values — the server sends one after a
// slow-consumer overflow dropped an event. Err reports a
// subscription-level condition such as an unreachable shard owner.
type Push struct {
	ID     uint64      `json:"id"`
	Seq    uint64      `json:"seq"`
	Resync bool        `json:"resync,omitempty"`
	Err    string      `json:"error,omitempty"`
	Points []PushPoint `json:"points"`
}

// Type implements Message.
func (Push) Type() MsgType { return TypePush }

// UnsubscribeRequest tears down the subscription with the given ID.
type UnsubscribeRequest struct {
	ID uint64 `json:"id"`
}

// Type implements Message.
func (UnsubscribeRequest) Type() MsgType { return TypeUnsubscribeRequest }

// UnsubscribeResponse reports whether the ID named a live subscription.
type UnsubscribeResponse struct {
	Removed bool `json:"removed"`
}

// Type implements Message.
func (UnsubscribeResponse) Type() MsgType { return TypeUnsubscribeResponse }

// pushResync is the flag bit marking a resync push frame.
const pushResync = 1 << 0

// encodeSubs serializes the v1.3 subscription messages (binary codec).
func encodeSubs(m Message) ([]byte, error) {
	switch v := m.(type) {
	case SubscribeRequest:
		if len(v.Points) > MaxBatchItems {
			return nil, fmt.Errorf("wire: subscription too large (%d points)", len(v.Points))
		}
		buf := make([]byte, 1+1+2+24*len(v.Points))
		buf[0] = byte(TypeSubscribeRequest)
		buf[1] = byte(v.Pollutant)
		binary.LittleEndian.PutUint16(buf[2:], uint16(len(v.Points)))
		off := 4
		for _, p := range v.Points {
			putF64(buf[off:], p.T)
			putF64(buf[off+8:], p.X)
			putF64(buf[off+16:], p.Y)
			off += 24
		}
		return buf, nil
	case SubscribeAck:
		buf := make([]byte, 1+8+2)
		buf[0] = byte(TypeSubscribeAck)
		binary.LittleEndian.PutUint64(buf[1:], v.ID)
		binary.LittleEndian.PutUint16(buf[9:], v.Points)
		return buf, nil
	case Push:
		return encodePush(v)
	case UnsubscribeRequest:
		buf := make([]byte, 1+8)
		buf[0] = byte(TypeUnsubscribeRequest)
		binary.LittleEndian.PutUint64(buf[1:], v.ID)
		return buf, nil
	case UnsubscribeResponse:
		buf := make([]byte, 2)
		buf[0] = byte(TypeUnsubscribeResponse)
		if v.Removed {
			buf[1] = 1
		}
		return buf, nil
	default:
		return encodeReplica(m)
	}
}

func encodePush(v Push) ([]byte, error) {
	if len(v.Points) > MaxBatchItems {
		return nil, fmt.Errorf("wire: push too large (%d points)", len(v.Points))
	}
	if len(v.Err) > math.MaxUint16 {
		return nil, fmt.Errorf("wire: push error too long (%d bytes)", len(v.Err))
	}
	size := 1 + 8 + 8 + 1 + 2 + len(v.Err) + 2
	for _, p := range v.Points {
		if p.Err != "" {
			if len(p.Err) > math.MaxUint16 {
				return nil, fmt.Errorf("wire: push point error too long (%d bytes)", len(p.Err))
			}
			size += 2 + 1 + 2 + len(p.Err)
		} else {
			size += 2 + 1 + 8
		}
	}
	buf := make([]byte, size)
	buf[0] = byte(TypePush)
	binary.LittleEndian.PutUint64(buf[1:], v.ID)
	binary.LittleEndian.PutUint64(buf[9:], v.Seq)
	if v.Resync {
		buf[17] = pushResync
	}
	binary.LittleEndian.PutUint16(buf[18:], uint16(len(v.Err)))
	off := 20 + copy(buf[20:], v.Err)
	binary.LittleEndian.PutUint16(buf[off:], uint16(len(v.Points)))
	off += 2
	for _, p := range v.Points {
		binary.LittleEndian.PutUint16(buf[off:], p.Index)
		off += 2
		if p.Err != "" {
			buf[off] = 1
			binary.LittleEndian.PutUint16(buf[off+1:], uint16(len(p.Err)))
			off += 3 + copy(buf[off+3:], p.Err)
		} else {
			buf[off] = 0
			putF64(buf[off+1:], p.Value)
			off += 9
		}
	}
	return buf, nil
}

// decodeSubs parses the v1.3 subscription messages (binary codec).
func decodeSubs(data []byte) (Message, error) {
	switch MsgType(data[0]) {
	case TypeSubscribeRequest:
		if len(data) < 4 {
			return nil, fmt.Errorf("%w: SubscribeRequest header", ErrMalformed)
		}
		count := int(binary.LittleEndian.Uint16(data[2:]))
		if len(data) != 4+24*count {
			return nil, fmt.Errorf("%w: SubscribeRequest length %d for %d points", ErrMalformed, len(data), count)
		}
		m := SubscribeRequest{Pollutant: tuple.Pollutant(data[1])}
		if count > 0 {
			m.Points = make([]SubPoint, count)
		}
		off := 4
		for i := range m.Points {
			m.Points[i] = SubPoint{T: getF64(data[off:]), X: getF64(data[off+8:]), Y: getF64(data[off+16:])}
			off += 24
		}
		return m, nil
	case TypeSubscribeAck:
		if len(data) != 11 {
			return nil, fmt.Errorf("%w: SubscribeAck length %d", ErrMalformed, len(data))
		}
		return SubscribeAck{
			ID:     binary.LittleEndian.Uint64(data[1:]),
			Points: binary.LittleEndian.Uint16(data[9:]),
		}, nil
	case TypePush:
		return decodePush(data)
	case TypeUnsubscribeRequest:
		if len(data) != 9 {
			return nil, fmt.Errorf("%w: UnsubscribeRequest length %d", ErrMalformed, len(data))
		}
		return UnsubscribeRequest{ID: binary.LittleEndian.Uint64(data[1:])}, nil
	case TypeUnsubscribeResponse:
		if len(data) != 2 || data[1] > 1 {
			return nil, fmt.Errorf("%w: UnsubscribeResponse", ErrMalformed)
		}
		return UnsubscribeResponse{Removed: data[1] == 1}, nil
	default:
		return decodeReplica(data)
	}
}

func decodePush(data []byte) (Message, error) {
	if len(data) < 22 {
		return nil, fmt.Errorf("%w: Push header", ErrMalformed)
	}
	v := Push{
		ID:  binary.LittleEndian.Uint64(data[1:]),
		Seq: binary.LittleEndian.Uint64(data[9:]),
	}
	switch data[17] {
	case 0:
	case pushResync:
		v.Resync = true
	default:
		return nil, fmt.Errorf("%w: Push flags %d", ErrMalformed, data[17])
	}
	errLen := int(binary.LittleEndian.Uint16(data[18:]))
	off := 20
	if len(data) < off+errLen+2 {
		return nil, fmt.Errorf("%w: Push error body", ErrMalformed)
	}
	v.Err = string(data[off : off+errLen])
	off += errLen
	count := int(binary.LittleEndian.Uint16(data[off:]))
	off += 2
	// Cheapest possible point is 5 bytes (index + error flag + length);
	// check before allocating so a tiny frame cannot claim a huge count.
	if len(data) < off+5*count {
		return nil, fmt.Errorf("%w: Push length %d for %d points", ErrMalformed, len(data), count)
	}
	if count > 0 {
		v.Points = make([]PushPoint, count)
	}
	for i := range v.Points {
		if len(data) < off+3 {
			return nil, fmt.Errorf("%w: Push point %d", ErrMalformed, i)
		}
		v.Points[i].Index = binary.LittleEndian.Uint16(data[off:])
		off += 2
		switch data[off] {
		case 0:
			if len(data) < off+9 {
				return nil, fmt.Errorf("%w: Push point %d value", ErrMalformed, i)
			}
			v.Points[i].Value = getF64(data[off+1:])
			off += 9
		case 1:
			if len(data) < off+3 {
				return nil, fmt.Errorf("%w: Push point %d error header", ErrMalformed, i)
			}
			n := int(binary.LittleEndian.Uint16(data[off+1:]))
			if len(data) < off+3+n {
				return nil, fmt.Errorf("%w: Push point %d error body", ErrMalformed, i)
			}
			v.Points[i].Err = string(data[off+3 : off+3+n])
			off += 3 + n
		default:
			return nil, fmt.Errorf("%w: Push point %d flag %d", ErrMalformed, i, data[off])
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(data)-off)
	}
	return v, nil
}
