package query

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/tuple"
)

func TestRequestValidateTaxonomy(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want error // errors.Is target; nil means valid
		bad  bool
	}{
		{name: "zero is CO2 and valid", req: Request{}},
		{name: "negative t", req: Request{T: -0.5}, want: ErrOutOfWindow, bad: true},
		{name: "bad pollutant", req: Request{Pollutant: tuple.Pollutant(200)}, want: ErrUnknownPollutant, bad: true},
		{name: "nan x", req: Request{X: math.NaN()}, bad: true},
		{name: "inf y", req: Request{Y: math.Inf(-1)}, bad: true},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.req.Validate()
			if tt.bad != (err != nil) {
				t.Fatalf("Validate() = %v, bad = %v", err, tt.bad)
			}
			if tt.want != nil && !errors.Is(err, tt.want) {
				t.Errorf("errors.Is(%v, %v) = false", err, tt.want)
			}
		})
	}
}

func TestParseKind(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
		bad  bool
	}{
		{"", KindCover, false},
		{"cover", KindCover, false},
		{"naive", KindNaive, false},
		{"rtree", KindRTree, false},
		{"r-tree", KindRTree, false},
		{"vptree", KindVPTree, false},
		{"vp-tree", KindVPTree, false},
		{"quantum", "", true},
	}
	for _, tt := range cases {
		got, err := ParseKind(tt.in)
		if tt.bad != (err != nil) {
			t.Errorf("ParseKind(%q) err = %v", tt.in, err)
			continue
		}
		if !tt.bad && got != tt.want {
			t.Errorf("ParseKind(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestBuildProcessorKinds(t *testing.T) {
	w := tuple.Batch{
		{T: 1, X: 0, Y: 0, S: 400},
		{T: 2, X: 10, Y: 0, S: 420},
		{T: 3, X: 0, Y: 10, S: 440},
	}
	for _, kind := range []Kind{KindNaive, KindRTree, KindVPTree} {
		p, err := BuildProcessor(Options{Kind: kind, Radius: 100}, w, nil)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		v, err := p.Interpolate(Q{T: 2, X: 1, Y: 1})
		if err != nil {
			t.Fatalf("%v interpolate: %v", kind, err)
		}
		if math.Abs(v-420) > 1e-9 {
			t.Errorf("%v = %v, want mean 420", kind, v)
		}
	}
	// Cover kind requires a cover.
	if _, err := BuildProcessor(Options{Kind: KindCover}, w, nil); err == nil {
		t.Error("cover kind without a cover should error")
	}
	if _, err := BuildProcessor(Options{Kind: "bogus"}, w, nil); err == nil {
		t.Error("bogus kind should error")
	}
}

func TestOptionsWithDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.Kind != KindCover || o.Radius != DefaultRadius {
		t.Errorf("defaults = %+v", o)
	}
	o = Options{Kind: KindNaive, Radius: 10}.WithDefaults()
	if o.Kind != KindNaive || o.Radius != 10 {
		t.Errorf("explicit options clobbered: %+v", o)
	}
}

func TestRunContinuousCtxCancellation(t *testing.T) {
	w := tuple.Batch{{T: 1, X: 0, Y: 0, S: 400}}
	p, err := NewNaive(w, 100)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]Q, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := RunContinuousCtx(ctx, p, qs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if len(out) != 0 {
		t.Errorf("cancelled run produced %d results", len(out))
	}
	out, err = RunContinuousCtx(context.Background(), p, qs)
	if err != nil || len(out) != 10 {
		t.Errorf("live run: %d results, err %v", len(out), err)
	}
}
