// Package query implements the paper's continuous-value query processing
// (§2.2). A mobile object v_q transmits query tuples q_l = (t_l, x_l, y_l)
// and the server interpolates the sensor value ŝ_l at that position. Four
// interchangeable processors answer the query:
//
//   - Naive: exhaustive scan of the window for raw tuples within radius r,
//     averaging their values.
//   - R-tree and VP-tree: the same semantics with the radius search served
//     by a metric-space index ("Metric Space Indexing").
//   - Model cover: nearest centroid µ*, evaluate its model M* ("Model
//     Cover") — the paper's contribution.
//
// All processors are built over one window W_c and are safe for concurrent
// queries after construction.
package query

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/index/rtree"
	"repro/internal/index/vptree"
	"repro/internal/tuple"
)

// Q is a query tuple q_l = (t_l, x_l, y_l).
type Q struct {
	T float64 // query time t_l
	X float64 // x_l
	Y float64 // y_l
}

// Pos returns the query position (x_l, y_l).
func (q Q) Pos() geo.Point { return geo.Point{X: q.X, Y: q.Y} }

// ErrNoData is returned when no raw tuple lies within the query radius, so
// an average-based method has nothing to interpolate from.
var ErrNoData = errors.New("query: no raw tuples within radius")

// Processor interpolates sensor values at query positions.
type Processor interface {
	// Name identifies the method in benchmark output.
	Name() string
	// Interpolate returns ŝ_l for the query tuple.
	Interpolate(q Q) (float64, error)
}

// Naive answers queries by exhaustively scanning the window (§2.2
// "Naïve"): every raw tuple within radius r of (x_l, y_l) contributes to
// an unweighted average.
type Naive struct {
	window tuple.Batch
	radius float64
}

// NewNaive builds a naive processor over the window with query radius r
// in meters.
func NewNaive(w tuple.Batch, r float64) (*Naive, error) {
	if r <= 0 {
		return nil, fmt.Errorf("query: radius %v, want > 0", r)
	}
	return &Naive{window: w, radius: r}, nil
}

// Name implements Processor.
func (n *Naive) Name() string { return "naive" }

// Interpolate implements Processor.
func (n *Naive) Interpolate(q Q) (float64, error) {
	center := q.Pos()
	r2 := n.radius * n.radius
	var sum float64
	var count int
	for _, b := range n.window {
		if b.Pos().Dist2(center) <= r2 {
			sum += b.S
			count++
		}
	}
	if count == 0 {
		return 0, ErrNoData
	}
	return sum / float64(count), nil
}

// RTree answers queries with an R-tree radius search over the window.
type RTree struct {
	window tuple.Batch
	tree   *rtree.Tree
	radius float64
}

// NewRTree builds the index over the window. The tree is bulk-loaded
// (STR), matching how a per-window index would be built in practice.
func NewRTree(w tuple.Batch, r float64) (*RTree, error) {
	return NewRTreeFanout(w, r, rtree.DefaultMaxEntries)
}

// NewRTreeFanout is NewRTree with an explicit node fan-out, used by the
// index-tuning ablation.
func NewRTreeFanout(w tuple.Batch, r float64, fanout int) (*RTree, error) {
	if r <= 0 {
		return nil, fmt.Errorf("query: radius %v, want > 0", r)
	}
	items := make([]rtree.Item, len(w))
	for i := range items {
		items[i] = rtree.Item(i)
	}
	t, err := rtree.Bulk(w.Positions(), items, fanout)
	if err != nil {
		return nil, fmt.Errorf("query: build r-tree: %w", err)
	}
	return &RTree{window: w, tree: t, radius: r}, nil
}

// Name implements Processor.
func (p *RTree) Name() string { return "r-tree" }

// Interpolate implements Processor.
func (p *RTree) Interpolate(q Q) (float64, error) {
	var sum float64
	var count int
	p.tree.SearchRadius(q.Pos(), p.radius, func(_ geo.Point, it rtree.Item) bool {
		sum += p.window[it].S
		count++
		return true
	})
	if count == 0 {
		return 0, ErrNoData
	}
	return sum / float64(count), nil
}

// Tree exposes the underlying index for the memory experiment (Fig 7a).
func (p *RTree) Tree() *rtree.Tree { return p.tree }

// VPTree answers queries with a vantage-point-tree radius search.
type VPTree struct {
	window tuple.Batch
	tree   *vptree.Tree
	radius float64
}

// NewVPTree builds the index over the window.
func NewVPTree(w tuple.Batch, r float64) (*VPTree, error) {
	if r <= 0 {
		return nil, fmt.Errorf("query: radius %v, want > 0", r)
	}
	items := make([]vptree.Item, len(w))
	for i := range items {
		items[i] = vptree.Item(i)
	}
	t, err := vptree.Build(w.Positions(), items)
	if err != nil {
		return nil, fmt.Errorf("query: build vp-tree: %w", err)
	}
	return &VPTree{window: w, tree: t, radius: r}, nil
}

// Name implements Processor.
func (p *VPTree) Name() string { return "vp-tree" }

// Interpolate implements Processor.
func (p *VPTree) Interpolate(q Q) (float64, error) {
	var sum float64
	var count int
	p.tree.SearchRadius(q.Pos(), p.radius, func(_ geo.Point, it vptree.Item) bool {
		sum += p.window[it].S
		count++
		return true
	})
	if count == 0 {
		return 0, ErrNoData
	}
	return sum / float64(count), nil
}

// Tree exposes the underlying index for the memory experiment (Fig 7a).
func (p *VPTree) Tree() *vptree.Tree { return p.tree }

// Cover answers queries by evaluating the model cover (§2.2 "Model
// Cover"): nearest centroid, then model prediction. This is the method
// whose efficiency, accuracy, and memory the paper's evaluation
// demonstrates.
type Cover struct {
	cover *core.Cover
}

// NewCover wraps a built model cover as a processor.
func NewCover(cv *core.Cover) (*Cover, error) {
	if cv == nil || cv.Size() == 0 {
		return nil, errors.New("query: nil or empty cover")
	}
	return &Cover{cover: cv}, nil
}

// Name implements Processor.
func (p *Cover) Name() string { return "ad-kmn" }

// Interpolate implements Processor.
func (p *Cover) Interpolate(q Q) (float64, error) {
	return p.cover.Interpolate(q.T, q.X, q.Y)
}

// CoverModel exposes the underlying cover for the memory experiment.
func (p *Cover) CoverModel() *core.Cover { return p.cover }

// Result pairs a query tuple with its interpolated value.
type Result struct {
	Q     Q
	Value float64
	Err   error
}

// RunContinuous processes a continuous query — the registered mobile
// object's stream of query tuples — through a processor, returning one
// result per tuple (Query 1 semantics: each q_l yields one ŝ_l). It is
// RunContinuousCtx with a background context.
func RunContinuous(p Processor, qs []Q) []Result {
	//ctxcheck:allow compatibility wrapper; RunContinuousCtx is the ctx-aware form
	out, _ := RunContinuousCtx(context.Background(), p, qs)
	return out
}
