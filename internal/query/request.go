package query

// This file defines the v1 typed query surface shared by the facade, the
// engine, the HTTP layer, and the wire clients: the pollutant-aware
// Request, the structured error taxonomy, and the processor-selection
// options that let one request be answered by any of the paper's four
// query methods.

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/tuple"
)

// Request is one v1 query: interpolate pollutant Pollutant at position
// (X, Y) and stream time T. The zero Pollutant is CO2, so untyped legacy
// tuples map onto valid requests.
type Request struct {
	T         float64         `json:"t"`
	X         float64         `json:"x"`
	Y         float64         `json:"y"`
	Pollutant tuple.Pollutant `json:"pollutant"`
}

// Q projects the request onto the per-window query tuple q_l.
func (r Request) Q() Q { return Q{T: r.T, X: r.X, Y: r.Y} }

// Validate checks the request against the error taxonomy: NaN/Inf
// coordinates are malformed, a negative time is ErrOutOfWindow, and an
// unrecognized pollutant is ErrUnknownPollutant.
func (r Request) Validate() error {
	for _, f := range [...]struct {
		name string
		v    float64
	}{{"t", r.T}, {"x", r.X}, {"y", r.Y}} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("query: field %s is not finite", f.name)
		}
	}
	if r.T < 0 {
		return fmt.Errorf("%w: negative time %v", ErrOutOfWindow, r.T)
	}
	if !r.Pollutant.Valid() {
		return fmt.Errorf("%w: %v", ErrUnknownPollutant, r.Pollutant)
	}
	return nil
}

func (r Request) String() string {
	return fmt.Sprintf("q(%s t=%.0f x=%.1f y=%.1f)", r.Pollutant, r.T, r.X, r.Y)
}

// BatchResult is the outcome of one request within a batch. Batches no
// longer fail atomically: each item carries its own value or error, so
// one request outside the retained windows does not reject the route
// points around it.
type BatchResult struct {
	Value float64
	Err   error
}

// The v1 error taxonomy. Every query path wraps one of these sentinels,
// so callers dispatch with errors.Is instead of string matching.
var (
	// ErrNoCover means the window has data but a model cover could not be
	// built or reconstructed for it.
	ErrNoCover = errors.New("query: no model cover available")
	// ErrOutOfWindow means the query time falls outside the retained data
	// windows (negative, before retention, or beyond the stream head).
	ErrOutOfWindow = errors.New("query: time outside retained data windows")
	// ErrUnknownPollutant means the pollutant is invalid or not monitored
	// by the serving engine.
	ErrUnknownPollutant = errors.New("query: unknown pollutant")
)

// Kind selects the query method answering a request — the four processors
// of §2.2, now addressable per request.
type Kind string

// Processor kinds.
const (
	// KindCover evaluates the Ad-KMN model cover (the default).
	KindCover Kind = "cover"
	// KindNaive scans the raw window for tuples within the radius.
	KindNaive Kind = "naive"
	// KindRTree serves the radius search from a bulk-loaded R-tree.
	KindRTree Kind = "rtree"
	// KindVPTree serves the radius search from a vantage-point tree.
	KindVPTree Kind = "vptree"
)

// ParseKind resolves a processor name from the HTTP/CLI surface.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case "", KindCover:
		return KindCover, nil
	case KindNaive, KindRTree, KindVPTree:
		return Kind(s), nil
	case "r-tree":
		return KindRTree, nil
	case "vp-tree":
		return KindVPTree, nil
	default:
		return "", fmt.Errorf("query: unknown processor kind %q", s)
	}
}

// DefaultRadius is the radius, in meters, used by radius-based processors
// when the caller does not override it (the paper's evaluation uses
// r = 250 m for urban corridors).
const DefaultRadius = 250.0

// Options tunes how a request is answered. The zero value means "model
// cover, default radius" — the paper's recommended configuration.
type Options struct {
	// Kind selects the processor (default KindCover).
	Kind Kind
	// Radius is the search radius in meters for radius-based processors.
	Radius float64
	// Concurrency bounds the worker pool answering a batch (0 picks
	// GOMAXPROCS; 1 forces sequential execution). The engine clamps it
	// to a small multiple of GOMAXPROCS, so untrusted callers cannot
	// dictate the server's goroutine count. Single queries ignore it.
	Concurrency int
}

// WithDefaults fills unset fields; a non-finite radius (NaN, ±Inf) is
// replaced by the default rather than poisoning every distance compare.
func (o Options) WithDefaults() Options {
	if o.Kind == "" {
		o.Kind = KindCover
	}
	if !(o.Radius > 0) || math.IsInf(o.Radius, 0) {
		o.Radius = DefaultRadius
	}
	return o
}

// BuildProcessor constructs the processor o selects: cover-based kinds
// wrap cv, radius-based kinds are built over the raw window w.
func BuildProcessor(o Options, w tuple.Batch, cv *core.Cover) (Processor, error) {
	o = o.WithDefaults()
	switch o.Kind {
	case KindCover:
		return NewCover(cv)
	case KindNaive:
		return NewNaive(w, o.Radius)
	case KindRTree:
		return NewRTree(w, o.Radius)
	case KindVPTree:
		return NewVPTree(w, o.Radius)
	default:
		return nil, fmt.Errorf("query: unknown processor kind %q", o.Kind)
	}
}

// RunContinuousCtx is RunContinuous with cooperative cancellation: it
// stops at the first context error, returning the results produced so
// far alongside the context's error.
func RunContinuousCtx(ctx context.Context, p Processor, qs []Q) ([]Result, error) {
	out := make([]Result, 0, len(qs))
	for _, q := range qs {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		v, err := p.Interpolate(q)
		out = append(out, Result{Q: q, Value: v, Err: err})
	}
	return out, nil
}
