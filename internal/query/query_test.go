package query

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/kmeans"
	"repro/internal/tuple"
)

// gridWindow lays tuples on a regular grid with a linear value surface.
// Timestamps are decorrelated from position (as with multiple buses
// sampling independently); a time axis that is an exact linear function of
// position would make the regression design rank deficient.
func gridWindow(n int, spacing float64) tuple.Batch {
	var w tuple.Batch
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x, y := float64(i)*spacing, float64(j)*spacing
			t := float64((i*37 + j*61) % 97)
			w = append(w, tuple.Raw{T: t, X: x, Y: y, S: 400 + 0.1*x + 0.05*y})
		}
	}
	return w
}

func TestNewProcessorValidation(t *testing.T) {
	w := gridWindow(3, 100)
	if _, err := NewNaive(w, 0); err == nil {
		t.Error("naive: expected radius error")
	}
	if _, err := NewRTree(w, -1); err == nil {
		t.Error("r-tree: expected radius error")
	}
	if _, err := NewVPTree(w, 0); err == nil {
		t.Error("vp-tree: expected radius error")
	}
	if _, err := NewCover(nil); err == nil {
		t.Error("cover: expected nil error")
	}
}

func TestAverageMethodsAgree(t *testing.T) {
	// Naive, R-tree, and VP-tree implement identical semantics, so they
	// must return identical values — the reason the paper's accuracy plot
	// omits the index methods ("they produce the same result as the
	// naive method").
	rng := rand.New(rand.NewSource(1))
	w := make(tuple.Batch, 3000)
	for i := range w {
		w[i] = tuple.Raw{
			T: rng.Float64() * 1000,
			X: rng.Float64() * 8000,
			Y: rng.Float64() * 8000,
			S: 400 + rng.Float64()*500,
		}
	}
	naive, err := NewNaive(w, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRTree(w, 1000)
	if err != nil {
		t.Fatal(err)
	}
	vp, err := NewVPTree(w, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		q := Q{T: rng.Float64() * 1000, X: rng.Float64() * 8000, Y: rng.Float64() * 8000}
		vn, en := naive.Interpolate(q)
		vr, er := rt.Interpolate(q)
		vv, ev := vp.Interpolate(q)
		if (en == nil) != (er == nil) || (en == nil) != (ev == nil) {
			t.Fatalf("trial %d: error disagreement: %v %v %v", trial, en, er, ev)
		}
		if en != nil {
			continue
		}
		if math.Abs(vn-vr) > 1e-9 || math.Abs(vn-vv) > 1e-9 {
			t.Fatalf("trial %d: values disagree: naive=%v rtree=%v vptree=%v", trial, vn, vr, vv)
		}
	}
}

func TestNaiveAveragesWithinRadius(t *testing.T) {
	w := tuple.Batch{
		{X: 0, Y: 0, S: 100},
		{X: 50, Y: 0, S: 200},
		{X: 5000, Y: 0, S: 999},
	}
	n, err := NewNaive(w, 100)
	if err != nil {
		t.Fatal(err)
	}
	v, err := n.Interpolate(Q{X: 10, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	if v != 150 {
		t.Errorf("Interpolate = %v, want 150", v)
	}
}

func TestNoDataError(t *testing.T) {
	w := tuple.Batch{{X: 0, Y: 0, S: 100}}
	for _, mk := range []func() (Processor, error){
		func() (Processor, error) { return NewNaive(w, 10) },
		func() (Processor, error) { return NewRTree(w, 10) },
		func() (Processor, error) { return NewVPTree(w, 10) },
	} {
		p, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Interpolate(Q{X: 9999, Y: 9999}); !errors.Is(err, ErrNoData) {
			t.Errorf("%s: want ErrNoData, got %v", p.Name(), err)
		}
	}
}

func TestCoverProcessor(t *testing.T) {
	w := gridWindow(20, 100)
	cv, err := core.BuildCover(w, 0, 1e6, core.Config{Cluster: kmeans.Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewCover(cv)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "ad-kmn" {
		t.Errorf("Name = %q", p.Name())
	}
	// The data is globally linear, so the cover must be near exact.
	v, err := p.Interpolate(Q{T: 200, X: 950, Y: 950})
	if err != nil {
		t.Fatal(err)
	}
	want := 400 + 0.1*950 + 0.05*950
	if math.Abs(v-want) > 10 {
		t.Errorf("cover Interpolate = %v, want ~%v", v, want)
	}
	if p.CoverModel() != cv {
		t.Error("CoverModel must expose the wrapped cover")
	}
}

func TestCoverBeatsNaiveOnGradient(t *testing.T) {
	// On a steep linear gradient, averaging over a 1 km disc biases toward
	// the disc mean while the regression models extrapolate the slope —
	// the mechanism behind Figure 6(b).
	w := gridWindow(30, 100) // 3 km × 3 km
	truth := func(x, y float64) float64 { return 400 + 0.1*x + 0.05*y }
	naive, err := NewNaive(w, 1000)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := core.BuildCover(w, 0, 1e6, core.Config{Cluster: kmeans.Config{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	cover, err := NewCover(cv)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var naiveSSE, coverSSE float64
	n := 200
	for i := 0; i < n; i++ {
		q := Q{T: rng.Float64() * 97, X: rng.Float64() * 2900, Y: rng.Float64() * 2900}
		want := truth(q.X, q.Y)
		nv, err := naive.Interpolate(q)
		if err != nil {
			t.Fatal(err)
		}
		cvv, err := cover.Interpolate(q)
		if err != nil {
			t.Fatal(err)
		}
		naiveSSE += (nv - want) * (nv - want)
		coverSSE += (cvv - want) * (cvv - want)
	}
	if coverSSE >= naiveSSE {
		t.Errorf("cover SSE %v should beat naive SSE %v", coverSSE, naiveSSE)
	}
}

func TestRunContinuous(t *testing.T) {
	w := gridWindow(10, 100)
	p, err := NewNaive(w, 500)
	if err != nil {
		t.Fatal(err)
	}
	qs := []Q{
		{T: 0, X: 450, Y: 450},
		{T: 1, X: 99999, Y: 99999}, // no data
		{T: 2, X: 100, Y: 100},
	}
	res := RunContinuous(p, qs)
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Err != nil || res[2].Err != nil {
		t.Errorf("in-region queries errored: %v %v", res[0].Err, res[2].Err)
	}
	if !errors.Is(res[1].Err, ErrNoData) {
		t.Errorf("out-of-region query: want ErrNoData, got %v", res[1].Err)
	}
	if res[0].Q != qs[0] {
		t.Error("result must echo its query")
	}
}

func TestBoundaryInclusive(t *testing.T) {
	// A tuple exactly at distance r must be included (closed ball), for
	// all three average-based methods.
	w := tuple.Batch{{X: 100, Y: 0, S: 50}}
	for _, mk := range []func() (Processor, error){
		func() (Processor, error) { return NewNaive(w, 100) },
		func() (Processor, error) { return NewRTree(w, 100) },
		func() (Processor, error) { return NewVPTree(w, 100) },
	} {
		p, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		v, err := p.Interpolate(Q{X: 0, Y: 0})
		if err != nil {
			t.Errorf("%s: boundary tuple excluded: %v", p.Name(), err)
			continue
		}
		if v != 50 {
			t.Errorf("%s: v = %v, want 50", p.Name(), v)
		}
	}
}
