package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/geo"
	"repro/internal/tuple"
)

// Vehicle is one mobile sensor platform: a bus shuttling along a route.
type Vehicle struct {
	// Route is the polyline the vehicle traverses back and forth.
	Route *geo.Polyline
	// SpeedMPS is the cruising speed in meters per second (~8 m/s for a
	// city bus including stops).
	SpeedMPS float64
	// StartOffset staggers vehicles along the route (meters of arc length
	// at t = 0).
	StartOffset float64
}

// Config describes a community-sensing deployment.
type Config struct {
	// Field is the ground-truth pollutant field being sensed.
	Field Field
	// Vehicles are the mobile sensors.
	Vehicles []Vehicle
	// SamplingInterval is the seconds between consecutive samples of one
	// vehicle (the paper's dataset: 60 s).
	SamplingInterval float64
	// Duration is the total simulated time in seconds (the paper: ~1
	// month).
	Duration float64
	// NoiseStdDev is the sensor's additive Gaussian noise (ppm).
	NoiseStdDev float64
	// DropoutProb is the probability a scheduled sample is lost (sensor
	// failure, radio loss) — the unreliability §1 attributes to LCSNs.
	DropoutProb float64
	// Seed makes the generated dataset reproducible.
	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Field == nil {
		return errors.New("sim: nil field")
	}
	if len(c.Vehicles) == 0 {
		return errors.New("sim: no vehicles")
	}
	for i, v := range c.Vehicles {
		if v.Route == nil {
			return fmt.Errorf("sim: vehicle %d has nil route", i)
		}
		if v.SpeedMPS <= 0 {
			return fmt.Errorf("sim: vehicle %d speed %v, want > 0", i, v.SpeedMPS)
		}
	}
	if c.SamplingInterval <= 0 {
		return fmt.Errorf("sim: sampling interval %v, want > 0", c.SamplingInterval)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("sim: duration %v, want > 0", c.Duration)
	}
	if c.DropoutProb < 0 || c.DropoutProb >= 1 {
		return fmt.Errorf("sim: dropout probability %v, want [0, 1)", c.DropoutProb)
	}
	return nil
}

// Generate produces the full raw-tuple dataset for the deployment, sorted
// by time. The same Config (including Seed) always yields the same batch.
func Generate(cfg Config) (tuple.Batch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	samplesPerVehicle := int(cfg.Duration / cfg.SamplingInterval)
	out := make(tuple.Batch, 0, samplesPerVehicle*len(cfg.Vehicles))
	for step := 0; step < samplesPerVehicle; step++ {
		t := float64(step) * cfg.SamplingInterval
		for _, v := range cfg.Vehicles {
			if cfg.DropoutProb > 0 && rng.Float64() < cfg.DropoutProb {
				continue
			}
			pos := v.Route.AtLoop(v.StartOffset + v.SpeedMPS*t)
			s := cfg.Field.TrueValue(t, pos.X, pos.Y)
			if cfg.NoiseStdDev > 0 {
				s += rng.NormFloat64() * cfg.NoiseStdDev
			}
			out = append(out, tuple.Raw{T: t, X: pos.X, Y: pos.Y, S: s})
		}
	}
	return out, nil
}

// lausanneRoutes returns the two simulated bus-line corridors. The shapes
// are stylized versions of the east-west lakeside corridor and the
// north-south hill climb of Lausanne's trolleybus network, expressed in
// the local metric frame.
func lausanneRoutes() []*geo.Polyline {
	mk := func(pts []geo.Point) *geo.Polyline {
		pl, err := geo.NewPolyline(pts)
		if err != nil {
			panic(err) // static literals below are valid by construction
		}
		return pl
	}
	eastWest := mk([]geo.Point{
		{X: -1500, Y: 200}, {X: -800, Y: 350}, {X: 0, Y: 500},
		{X: 900, Y: 700}, {X: 1600, Y: 900}, {X: 2400, Y: 1200},
		{X: 3200, Y: 1300}, {X: 4000, Y: 1100},
	})
	northSouth := mk([]geo.Point{
		{X: 1100, Y: -600}, {X: 1150, Y: 100}, {X: 1200, Y: 800},
		{X: 1000, Y: 1500}, {X: 700, Y: 2200}, {X: 500, Y: 2900},
	})
	return []*geo.Polyline{eastWest, northSouth}
}

// DefaultLausanne returns the benchmark deployment configuration
// reproducing the shape of lausanne-data: two bus lines, each served by
// two vehicles (four mobile sensors total), sampling every 60 seconds for
// 30 days — 4 × 43,200 = 172,800 raw tuples, matching the paper's "176K
// raw tuples with sampling interval of 60 seconds" within 2%.
func DefaultLausanne(seed int64) Config {
	routes := lausanneRoutes()
	const month = 30 * secondsPerDay
	return Config{
		Field: DefaultLausanneField(),
		Vehicles: []Vehicle{
			{Route: routes[0], SpeedMPS: 7.5, StartOffset: 0},
			{Route: routes[0], SpeedMPS: 7.5, StartOffset: routes[0].Length() / 2},
			{Route: routes[1], SpeedMPS: 6.5, StartOffset: 0},
			{Route: routes[1], SpeedMPS: 6.5, StartOffset: routes[1].Length() / 2},
		},
		SamplingInterval: 60,
		Duration:         month,
		NoiseStdDev:      12,
		DropoutProb:      0.015,
		Seed:             seed,
	}
}

// LausanneRegion returns the bounding box of the deployment's routes,
// inflated by a margin — the region R over which queries are issued.
func LausanneRegion(margin float64) geo.Rect {
	routes := lausanneRoutes()
	r := routes[0].Bounds()
	for _, pl := range routes[1:] {
		r = r.Union(pl.Bounds())
	}
	return r.Inflate(margin)
}
