package sim

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/tuple"
)

func TestCO2FieldBasics(t *testing.T) {
	f := DefaultLausanneField()
	// Values over the deployment region and a full day stay in a physical
	// range: above outdoor baseline, below the OSHA ceiling.
	for hour := 0; hour < 24; hour++ {
		for _, p := range []geo.Point{{X: 0, Y: 0}, {X: 1200, Y: 800}, {X: 3000, Y: 1000}, {X: -1000, Y: 300}} {
			v := f.TrueValue(float64(hour)*3600, p.X, p.Y)
			if v < 300 || v > 5000 {
				t.Errorf("hour %d at %v: value %v outside physical range", hour, p, v)
			}
		}
	}
}

func TestCO2FieldHotspotShape(t *testing.T) {
	f := DefaultLausanneField()
	// The city-center plume (1200, 800) must dominate its surroundings at
	// the same instant.
	at := func(x, y float64) float64 { return f.TrueValue(30000, x, y) }
	center := at(1200, 800)
	far := at(1200+2500, 800+2500)
	if center <= far {
		t.Errorf("plume center %v should exceed far field %v", center, far)
	}
	// The plume must dominate points well outside its length scale in a
	// direction away from the other sources.
	if away := at(1200-1800, 800-1500); center <= away+50 {
		t.Errorf("plume center %v should decisively exceed off-plume %v", center, away)
	}
}

func TestCO2FieldDiurnalCycle(t *testing.T) {
	f := &CO2Field{Baseline: 420, DiurnalAmplitude: 100}
	var min, max float64 = math.Inf(1), math.Inf(-1)
	for s := 0.0; s < secondsPerDay; s += 600 {
		v := f.TrueValue(s, 0, 0)
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	if max-min < 50 {
		t.Errorf("diurnal swing %v too small", max-min)
	}
	// Periodicity: same time next day gives the same value.
	a := f.TrueValue(4000, 0, 0)
	b := f.TrueValue(4000+secondsPerDay, 0, 0)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("field not diurnal-periodic: %v vs %v", a, b)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultLausanne(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil field", func(c *Config) { c.Field = nil }},
		{"no vehicles", func(c *Config) { c.Vehicles = nil }},
		{"nil route", func(c *Config) { c.Vehicles[0].Route = nil }},
		{"zero speed", func(c *Config) { c.Vehicles[0].SpeedMPS = 0 }},
		{"zero interval", func(c *Config) { c.SamplingInterval = 0 }},
		{"zero duration", func(c *Config) { c.Duration = 0 }},
		{"dropout 1", func(c *Config) { c.DropoutProb = 1 }},
		{"dropout negative", func(c *Config) { c.DropoutProb = -0.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := DefaultLausanne(1)
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultLausanne(7)
	cfg.Duration = 3600 // keep the test fast
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tuple %d differs across identical runs", i)
		}
	}
	// Different seed changes the noise.
	cfg2 := cfg
	cfg2.Seed = 8
	c, err := Generate(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range c {
		if i < len(a) && a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := DefaultLausanne(1)
	cfg.Duration = 6 * 3600 // 6 hours
	cfg.DropoutProb = 0
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantN := int(cfg.Duration/cfg.SamplingInterval) * len(cfg.Vehicles)
	if len(b) != wantN {
		t.Fatalf("generated %d tuples, want %d", len(b), wantN)
	}
	if !b.SortedByTime() {
		t.Error("dataset must be time sorted")
	}
	if err := b.Validate(); err != nil {
		t.Errorf("generated tuples invalid: %v", err)
	}
	// All positions must lie on a route corridor.
	routes := lausanneRoutes()
	for i, r := range b {
		onRoute := false
		for _, pl := range routes {
			if pl.NearestDist(r.Pos()) < 1 {
				onRoute = true
				break
			}
		}
		if !onRoute {
			t.Fatalf("tuple %d at %v is off route", i, r.Pos())
		}
	}
}

func TestGenerateDropout(t *testing.T) {
	cfg := DefaultLausanne(1)
	cfg.Duration = 24 * 3600
	cfg.DropoutProb = 0.3
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full := int(cfg.Duration/cfg.SamplingInterval) * len(cfg.Vehicles)
	frac := float64(len(b)) / float64(full)
	if frac < 0.6 || frac > 0.8 {
		t.Errorf("dropout 0.3 kept fraction %v, want ~0.7", frac)
	}
}

func TestDefaultLausanneMatchesPaperScale(t *testing.T) {
	cfg := DefaultLausanne(1)
	// Don't generate a month of data in a unit test; check the arithmetic.
	wantScheduled := int(cfg.Duration/cfg.SamplingInterval) * len(cfg.Vehicles)
	if wantScheduled != 172800 {
		t.Errorf("scheduled samples = %d, want 172800 (≈ the paper's 176K)", wantScheduled)
	}
	if cfg.SamplingInterval != 60 {
		t.Errorf("sampling interval = %v, want the paper's 60 s", cfg.SamplingInterval)
	}
}

func TestGenerateValuesTrackField(t *testing.T) {
	cfg := DefaultLausanne(2)
	cfg.Duration = 2 * 3600
	cfg.NoiseStdDev = 0
	cfg.DropoutProb = 0
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := cfg.Field
	for i := 0; i < len(b); i += 37 {
		r := b[i]
		want := f.TrueValue(r.T, r.X, r.Y)
		if math.Abs(r.S-want) > 1e-9 {
			t.Fatalf("noiseless tuple %d: S=%v, field=%v", i, r.S, want)
		}
	}
}

func TestLausanneRegionCoversData(t *testing.T) {
	region := LausanneRegion(500)
	cfg := DefaultLausanne(3)
	cfg.Duration = 3600
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range b {
		if !region.Contains(r.Pos()) {
			t.Fatalf("tuple %d at %v outside region %v", i, r.Pos(), region)
		}
	}
	_ = tuple.CO2 // the dataset is CO2 by construction
}
