package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/tuple"
)

// This file extends the deployment simulator to all pollutants the
// OpenSense buses sense. Every vehicle carries one sensor per pollutant
// sampling the same trajectory, so the per-pollutant datasets share
// positions and times but sample different fields with different noise —
// exactly the structure a multi-gas sensor box produces.

// DefaultFieldFor returns a plausible ground-truth field for the
// pollutant, sharing the CO2 field's plume geography (traffic causes all
// three) with pollutant-appropriate baselines and magnitudes.
func DefaultFieldFor(p tuple.Pollutant) (Field, error) {
	co2 := DefaultLausanneField()
	switch p {
	case tuple.CO2:
		return co2, nil
	case tuple.CO:
		// CO tracks traffic with a near-zero background: scale each CO2
		// plume down to single-digit ppm.
		f := &CO2Field{
			Baseline:         0.4,
			DiurnalAmplitude: 3.5,
			GradientX:        co2.GradientX / 50,
			GradientY:        co2.GradientY / 50,
		}
		for _, s := range co2.Sources {
			s.Peak /= 60
			f.Sources = append(f.Sources, s)
		}
		return f, nil
	case tuple.PM:
		// Particulates: modest urban background, strong plumes near the
		// industrial source, slower temporal modulation.
		f := &CO2Field{
			Baseline:         18,
			DiurnalAmplitude: 25,
			GradientX:        co2.GradientX / 10,
			GradientY:        co2.GradientY / 10,
		}
		for _, s := range co2.Sources {
			s.Peak /= 8
			s.Scale *= 1.2
			f.Sources = append(f.Sources, s)
		}
		return f, nil
	default:
		return nil, fmt.Errorf("sim: no default field for pollutant %v", p)
	}
}

// noiseFor returns the per-pollutant sensor noise (standard deviation).
func noiseFor(p tuple.Pollutant) float64 {
	switch p {
	case tuple.CO2:
		return 12
	case tuple.CO:
		return 0.3
	case tuple.PM:
		return 2.5
	default:
		return 0
	}
}

// GenerateMulti produces one dataset per pollutant from a single fleet
// trajectory: shared positions and times, per-pollutant fields and noise.
// The base config's Field and NoiseStdDev are ignored in favor of the
// per-pollutant defaults.
func GenerateMulti(base Config, pollutants []tuple.Pollutant) (map[tuple.Pollutant]tuple.Batch, error) {
	if len(pollutants) == 0 {
		return nil, fmt.Errorf("sim: no pollutants requested")
	}
	// Validate using a throwaway field (base.Field may be nil).
	probe := base
	probe.Field = DefaultLausanneField()
	probe.NoiseStdDev = 0
	if err := probe.Validate(); err != nil {
		return nil, err
	}

	fields := make(map[tuple.Pollutant]Field, len(pollutants))
	for _, p := range pollutants {
		f, err := DefaultFieldFor(p)
		if err != nil {
			return nil, err
		}
		fields[p] = f
	}

	rng := rand.New(rand.NewSource(base.Seed))
	samplesPerVehicle := int(base.Duration / base.SamplingInterval)
	out := make(map[tuple.Pollutant]tuple.Batch, len(pollutants))
	for _, p := range pollutants {
		out[p] = make(tuple.Batch, 0, samplesPerVehicle*len(base.Vehicles))
	}
	for step := 0; step < samplesPerVehicle; step++ {
		t := float64(step) * base.SamplingInterval
		for _, v := range base.Vehicles {
			if base.DropoutProb > 0 && rng.Float64() < base.DropoutProb {
				continue // the whole sensor box misses the report
			}
			pos := v.Route.AtLoop(v.StartOffset + v.SpeedMPS*t)
			for _, p := range pollutants {
				s := fields[p].TrueValue(t, pos.X, pos.Y) + rng.NormFloat64()*noiseFor(p)
				if s < 0 {
					s = 0 // concentrations cannot be negative
				}
				out[p] = append(out[p], tuple.Raw{T: t, X: pos.X, Y: pos.Y, S: s})
			}
		}
	}
	return out, nil
}

// FieldsFor returns the ground-truth fields used by GenerateMulti, for
// accuracy evaluation.
func FieldsFor(pollutants []tuple.Pollutant) (map[tuple.Pollutant]Field, error) {
	out := make(map[tuple.Pollutant]Field, len(pollutants))
	for _, p := range pollutants {
		f, err := DefaultFieldFor(p)
		if err != nil {
			return nil, err
		}
		out[p] = f
	}
	return out, nil
}
