package sim

import (
	"testing"

	"repro/internal/tuple"
)

func TestDefaultFieldFor(t *testing.T) {
	for _, p := range []tuple.Pollutant{tuple.CO2, tuple.CO, tuple.PM} {
		f, err := DefaultFieldFor(p)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		v := f.TrueValue(30000, 1200, 800)
		lo, hi := p.NormalRange()
		if v < lo-hi*0.1 || v > hi {
			t.Errorf("%v: value %v outside plausible range [%v, %v]", p, v, lo, hi)
		}
	}
	if _, err := DefaultFieldFor(tuple.Pollutant(9)); err == nil {
		t.Error("unknown pollutant should error")
	}
}

func TestMagnitudeOrdering(t *testing.T) {
	co2, _ := DefaultFieldFor(tuple.CO2)
	co, _ := DefaultFieldFor(tuple.CO)
	pm, _ := DefaultFieldFor(tuple.PM)
	for _, tv := range []float64{0, 20000, 50000} {
		for _, pos := range [][2]float64{{0, 0}, {1200, 800}, {3000, 1000}} {
			vCO2 := co2.TrueValue(tv, pos[0], pos[1])
			vCO := co.TrueValue(tv, pos[0], pos[1])
			vPM := pm.TrueValue(tv, pos[0], pos[1])
			if !(vCO2 > vPM && vPM > vCO) {
				t.Errorf("t=%v pos=%v: ordering broken co2=%v pm=%v co=%v",
					tv, pos, vCO2, vPM, vCO)
			}
		}
	}
}

func TestGenerateMulti(t *testing.T) {
	cfg := DefaultLausanne(5)
	cfg.Duration = 3600
	cfg.DropoutProb = 0
	pollutants := []tuple.Pollutant{tuple.CO2, tuple.CO, tuple.PM}
	out, err := GenerateMulti(cfg, pollutants)
	if err != nil {
		t.Fatal(err)
	}
	wantN := int(cfg.Duration/cfg.SamplingInterval) * len(cfg.Vehicles)
	for _, p := range pollutants {
		b := out[p]
		if len(b) != wantN {
			t.Fatalf("%v: %d tuples, want %d", p, len(b), wantN)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		for i, r := range b {
			if r.S < 0 {
				t.Fatalf("%v tuple %d: negative concentration %v", p, i, r.S)
			}
		}
	}
	// Shared trajectory: positions and times match across pollutants.
	for i := range out[tuple.CO2] {
		a, b := out[tuple.CO2][i], out[tuple.CO][i]
		if a.T != b.T || a.X != b.X || a.Y != b.Y {
			t.Fatalf("tuple %d: trajectories diverge", i)
		}
	}
	// But values differ (different fields).
	same := 0
	for i := range out[tuple.CO2] {
		if out[tuple.CO2][i].S == out[tuple.CO][i].S {
			same++
		}
	}
	if same > len(out[tuple.CO2])/10 {
		t.Errorf("%d identical values across pollutants", same)
	}
}

func TestGenerateMultiValidation(t *testing.T) {
	cfg := DefaultLausanne(1)
	cfg.Duration = 600
	if _, err := GenerateMulti(cfg, nil); err == nil {
		t.Error("no pollutants should error")
	}
	bad := cfg
	bad.Vehicles = nil
	if _, err := GenerateMulti(bad, []tuple.Pollutant{tuple.CO2}); err == nil {
		t.Error("invalid config should error")
	}
	if _, err := GenerateMulti(cfg, []tuple.Pollutant{tuple.Pollutant(9)}); err == nil {
		t.Error("unknown pollutant should error")
	}
}

func TestFieldsFor(t *testing.T) {
	fields, err := FieldsFor([]tuple.Pollutant{tuple.CO2, tuple.PM})
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != 2 {
		t.Fatalf("fields = %d", len(fields))
	}
	if _, err := FieldsFor([]tuple.Pollutant{tuple.Pollutant(42)}); err == nil {
		t.Error("unknown pollutant should error")
	}
}
