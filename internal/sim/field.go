// Package sim synthesizes the paper's evaluation dataset. The original
// `lausanne-data` — 176K raw CO2 tuples community-sensed over one month by
// sensors on Lausanne public-transport buses (OpenSense) — is proprietary,
// so this package builds the closest synthetic equivalent: a deterministic
// spatio-temporal CO2 field over the city sampled by simulated buses that
// shuttle along fixed routes at the paper's 60-second sampling interval.
//
// The substitution preserves what the experiments measure. Query cost
// depends on tuple counts and the geo-temporal skew of bus-constrained
// sampling (reproduced: tuples lie only on route corridors). Accuracy
// depends on a smooth-but-structured field with local hotspots
// (reproduced: Gaussian emission plumes over a diurnal traffic cycle plus
// sensor noise). Unlike the original, the true field is known exactly, so
// NRMSE is computed against ground truth rather than held-out samples.
package sim

import (
	"math"
)

// Field is a spatio-temporal scalar field: the ground-truth pollutant
// concentration at any position and time.
type Field interface {
	// TrueValue returns the pollutant concentration at stream time t and
	// local position (x, y).
	TrueValue(t, x, y float64) float64
}

// PlumeSource is one localized CO2 emission source (a congested
// intersection, a heating plant, a bus depot).
type PlumeSource struct {
	X, Y      float64 // plume center, meters
	Peak      float64 // peak concentration above baseline, ppm
	Scale     float64 // Gaussian length scale, meters
	Period    float64 // temporal modulation period, seconds (0 = constant)
	Phase     float64 // modulation phase, radians
	Variation float64 // modulation depth in [0, 1]
}

// CO2Field is the synthetic CO2 concentration field: an urban baseline, a
// city-wide diurnal traffic cycle, and a set of local emission plumes.
type CO2Field struct {
	// Baseline is the clean-air floor (ppm), ~420 for an urban area.
	Baseline float64
	// DiurnalAmplitude scales the city-wide day/night swing (ppm).
	DiurnalAmplitude float64
	// GradientX and GradientY add a gentle large-scale spatial trend
	// (ppm per meter), e.g. concentration rising toward the city center.
	GradientX, GradientY float64
	// Sources are the local plumes.
	Sources []PlumeSource
}

// secondsPerDay is the diurnal period.
const secondsPerDay = 86400

// TrueValue implements Field.
func (f *CO2Field) TrueValue(t, x, y float64) float64 {
	v := f.Baseline + f.GradientX*x + f.GradientY*y
	// Two-peak diurnal cycle (morning and evening rush hours), a standard
	// shape for urban traffic CO2.
	day := 2 * math.Pi * t / secondsPerDay
	diurnal := 0.6*math.Max(0, math.Sin(day-math.Pi/3)) +
		0.4*math.Max(0, math.Sin(2*day-math.Pi/2))
	v += f.DiurnalAmplitude * diurnal
	for _, s := range f.Sources {
		dx, dy := x-s.X, y-s.Y
		g := math.Exp(-(dx*dx + dy*dy) / (2 * s.Scale * s.Scale))
		mod := 1.0
		if s.Period > 0 {
			mod = 1 - s.Variation/2 + (s.Variation/2)*math.Sin(2*math.Pi*t/s.Period+s.Phase)
		}
		v += s.Peak * g * mod
	}
	return v
}

// DefaultLausanneField returns the field used by the benchmark dataset:
// an urban baseline with plumes placed along the simulated bus corridors
// (city center, station square, industrial west, campus east).
func DefaultLausanneField() *CO2Field {
	return &CO2Field{
		Baseline:         420,
		DiurnalAmplitude: 140,
		GradientX:        -0.004,
		GradientY:        0.003,
		// Plume length scales sit at 600–1100 m — urban CO2 gradients are
		// smooth at the city-block-to-district scale — which keeps the
		// field learnable by piecewise-linear region models while still
		// defeating a single global model.
		Sources: []PlumeSource{
			{X: 1200, Y: 800, Peak: 600, Scale: 700, Period: secondsPerDay, Phase: 0.4, Variation: 0.6},
			{X: 2600, Y: 1500, Peak: 450, Scale: 650, Period: secondsPerDay, Phase: 1.9, Variation: 0.5},
			{X: -800, Y: 400, Peak: 380, Scale: 900, Period: secondsPerDay / 2, Phase: 0.9, Variation: 0.4},
			{X: 400, Y: 2300, Peak: 330, Scale: 750, Period: secondsPerDay, Phase: 2.8, Variation: 0.7},
			{X: 3400, Y: 300, Peak: 300, Scale: 1100, Period: 0},
		},
	}
}
