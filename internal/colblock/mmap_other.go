//go:build !unix

package colblock

import (
	"errors"
	"os"
)

// mapFile reports mmap unsupported on this platform; OpenFile falls back
// to the pread source.
func mapFile(_ *os.File, _ int64) (Source, error) {
	return nil, errors.New("colblock: mmap unsupported on this platform")
}
