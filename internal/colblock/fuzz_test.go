package colblock

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/tuple"
)

// FuzzColBlockDecode throws arbitrary bytes at the full decode path
// (footer parse, directory validation, block checksums, column decode).
// Seeds come from the real encoder, so mutations start from structurally
// valid images; the invariant is simply that no input crashes or
// over-allocates, and that encoder output always verifies.
func FuzzColBlockDecode(f *testing.F) {
	seed := func(seq int, windows []WindowData, blockTuples int) {
		var buf bytes.Buffer
		if _, err := Encode(&buf, seq, windows, blockTuples); err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(buf.Bytes())
	}
	seed(1, nil, 0)
	seed(7, []WindowData{{Window: 2, Tuples: tuple.Batch{
		{T: 1200.5, X: 10, Y: 20, S: 42.5},
		{T: 1201, X: -30.25, Y: 2000, S: math.Pi},
		{T: 1199, X: 10, Y: 20, S: 0},
	}}}, 2)
	big := make(tuple.Batch, 300)
	for i := range big {
		big[i] = tuple.Raw{T: float64(i), X: float64(i % 17), Y: float64(i % 5), S: float64(i) / 8}
	}
	seed(12, []WindowData{{Window: 0, Tuples: big}, {Window: 1, Tuples: big[:7]}}, 64)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<22 {
			return
		}
		_ = Verify(data)
	})
}
