package colblock

import (
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync/atomic"

	"repro/internal/tuple"
)

// Source is the byte-access abstraction under a Reader: a memory map
// where the platform supports it, pread otherwise. ReadSpan returns the
// requested span; a mapped source returns a sub-slice of the mapping
// (zero copy), a file-backed one allocates.
type Source interface {
	ReadSpan(off, n int64) ([]byte, error)
	Size() int64
	// Mapped reports whether ReadSpan is zero-copy (memory-mapped or
	// in-memory); the reader's stats distinguish the two access paths.
	Mapped() bool
	Close() error
}

// Options configures how a Reader accesses the file.
type Options struct {
	// DisableMmap forces the pread path even where mmap is available —
	// for platforms where a truncated file turns loads into SIGBUS, or
	// to keep the page cache footprint explicit.
	DisableMmap bool

	// BlockTuples is accepted for symmetry with the writer config; the
	// reader takes block sizes from the directory and ignores it.
	BlockTuples int
}

// Stats counts a Reader's work. Zero value is ready; fields are summed
// into the store's columnar stats.
type Stats struct {
	BlocksScanned int64
	BlocksPruned  int64
	MmapReads     int64
	ReadAtReads   int64
	BytesRead     int64
}

// Reader serves windows and region scans from one immutable sidecar
// file. It is safe for concurrent use; Close invalidates it.
type Reader struct {
	src    Source
	seq    int
	tuples int
	blocks []BlockMeta

	// byWindow indexes blocks (directory order, which is time order
	// within a cell run) per window.
	byWindow map[int][]int
	windows  []int // ascending

	blocksScanned atomic.Int64
	blocksPruned  atomic.Int64
	mmapReads     atomic.Int64
	readAtReads   atomic.Int64
	bytesRead     atomic.Int64
	closed        atomic.Bool
}

// OpenFile opens the sidecar at path, memory-mapping it where the
// platform allows (and opts permit) and falling back to pread.
func OpenFile(path string, opts Options) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := info.Size()
	if !opts.DisableMmap {
		if src, err := mapFile(f, size); err == nil {
			// The mapping outlives the descriptor; drop it now.
			f.Close()
			r, err := newReader(src)
			if err != nil {
				src.Close()
				return nil, err
			}
			return r, nil
		}
	}
	r, err := newReader(&readAtSource{f: f, size: size})
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// OpenBytes opens a sidecar image held in memory — the fuzz and test
// entry point, sharing every validation step with OpenFile.
func OpenBytes(data []byte) (*Reader, error) {
	return newReader(byteSource(data))
}

// Verify structurally validates data as a sidecar image and decodes
// every block, returning the first error found. It is the fuzz target's
// workhorse: any input that passes must round-trip cleanly.
func Verify(data []byte) error {
	r, err := OpenBytes(data)
	if err != nil {
		return err
	}
	defer r.Close()
	for _, c := range r.Windows() {
		if _, err := r.WindowTuples(c); err != nil {
			return err
		}
	}
	return nil
}

func newReader(src Source) (*Reader, error) {
	size := src.Size()
	if size < headerSize+trailerSize {
		return nil, fmt.Errorf("%w: %d bytes is below minimum framing", ErrCorrupt, size)
	}
	hdr, err := src.ReadSpan(0, headerSize)
	if err != nil {
		return nil, err
	}
	if le32(hdr[0:]) != colMagic {
		return nil, fmt.Errorf("%w: bad header magic %#x", ErrCorrupt, le32(hdr[0:]))
	}
	if le32(hdr[4:]) != colVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, le32(hdr[4:]))
	}
	trailer, err := src.ReadSpan(size-trailerSize, trailerSize)
	if err != nil {
		return nil, err
	}
	if le32(trailer[28:]) != footMagic {
		return nil, fmt.Errorf("%w: bad footer magic %#x", ErrCorrupt, le32(trailer[28:]))
	}
	if le32(trailer[20:]) != colVersion {
		return nil, fmt.Errorf("%w: unsupported footer version %d", ErrCorrupt, le32(trailer[20:]))
	}
	nblocks := int(le32(trailer[16:]))
	dirLen := int64(nblocks) * dirEntrySize
	dirStart := size - trailerSize - dirLen
	if nblocks < 0 || dirLen < 0 || dirStart < headerSize {
		return nil, fmt.Errorf("%w: directory of %d blocks does not fit", ErrCorrupt, nblocks)
	}
	dir, err := src.ReadSpan(dirStart, dirLen)
	if err != nil {
		return nil, err
	}
	if footerCRC(dir, trailer) != le32(trailer[24:]) {
		return nil, fmt.Errorf("%w: footer checksum mismatch", ErrCorrupt)
	}

	r := &Reader{
		src:      src,
		seq:      int(int64(le64(trailer[0:]))),
		tuples:   int(int64(le64(trailer[8:]))),
		blocks:   make([]BlockMeta, nblocks),
		byWindow: make(map[int][]int),
	}
	if r.tuples < 0 {
		return nil, fmt.Errorf("%w: negative tuple count", ErrCorrupt)
	}
	total := 0
	for i := range r.blocks {
		m := decodeDirEntry(dir[i*dirEntrySize:])
		if m.Count <= 0 || m.Count > maxBlockTuples {
			return nil, fmt.Errorf("%w: directory entry %d count %d", ErrCorrupt, i, m.Count)
		}
		if m.Offset < headerSize || m.Length < 8 || m.Offset+m.Length > dirStart {
			return nil, fmt.Errorf("%w: directory entry %d span [%d,+%d) out of bounds", ErrCorrupt, i, m.Offset, m.Length)
		}
		if m.MinT > m.MaxT || m.MinX > m.MaxX || m.MinY > m.MaxY || m.MinS > m.MaxS {
			return nil, fmt.Errorf("%w: directory entry %d inverted zone map", ErrCorrupt, i)
		}
		total += m.Count
		r.blocks[i] = m
		r.byWindow[m.Window] = append(r.byWindow[m.Window], i)
	}
	if total != r.tuples {
		return nil, fmt.Errorf("%w: directory counts %d do not sum to trailer total %d", ErrCorrupt, total, r.tuples)
	}
	r.windows = make([]int, 0, len(r.byWindow))
	for c := range r.byWindow {
		r.windows = append(r.windows, c)
	}
	sort.Ints(r.windows)
	return r, nil
}

func footerCRC(dir, trailer []byte) uint32 {
	return crc32.Update(crc32.ChecksumIEEE(dir), crc32.IEEETable, trailer[:24])
}

// Seq returns the checkpoint sequence the sidecar belongs to.
func (r *Reader) Seq() int { return r.seq }

// Tuples returns the total tuple count across all windows.
func (r *Reader) Tuples() int { return r.tuples }

// Blocks returns the number of column blocks in the file.
func (r *Reader) Blocks() int { return len(r.blocks) }

// Windows returns the window indexes present, ascending.
func (r *Reader) Windows() []int {
	out := make([]int, len(r.windows))
	copy(out, r.windows)
	return out
}

// WindowCount returns the tuple count of window c (0 if absent), from
// the directory alone.
func (r *Reader) WindowCount(c int) int {
	n := 0
	for _, bi := range r.byWindow[c] {
		n += r.blocks[bi].Count
	}
	return n
}

// WindowZone returns the union of window c's block zone maps — exact
// min/max bounds for every column, with no block reads.
func (r *Reader) WindowZone(c int) (z BlockMeta, ok bool) {
	for i, bi := range r.byWindow[c] {
		m := r.blocks[bi]
		if i == 0 {
			z = m
			continue
		}
		z.Count += m.Count
		z.MinT, z.MaxT = min(z.MinT, m.MinT), max(z.MaxT, m.MaxT)
		z.MinX, z.MaxX = min(z.MinX, m.MinX), max(z.MaxX, m.MaxX)
		z.MinY, z.MaxY = min(z.MinY, m.MinY), max(z.MaxY, m.MaxY)
		z.MinS, z.MaxS = min(z.MinS, m.MinS), max(z.MaxS, m.MaxS)
	}
	return z, len(r.byWindow[c]) > 0
}

// WindowTuples materializes window c in its original append order —
// byte-identical to the slice the row path would hold in memory. Every
// original position must be covered exactly once, or the window is
// reported corrupt.
func (r *Reader) WindowTuples(c int) (tuple.Batch, error) {
	bis := r.byWindow[c]
	if len(bis) == 0 {
		return nil, nil
	}
	total := 0
	for _, bi := range bis {
		total += r.blocks[bi].Count
	}
	out := make(tuple.Batch, total)
	seen := make([]bool, total)
	for _, bi := range bis {
		ts, xs, ys, ss, seqs, err := r.readBlock(r.blocks[bi])
		if err != nil {
			return nil, err
		}
		for i, sq := range seqs {
			if sq < 0 || sq >= int64(total) || seen[sq] {
				return nil, fmt.Errorf("%w: window %d seq %d invalid or duplicated", ErrCorrupt, c, sq)
			}
			seen[sq] = true
			out[sq] = tuple.Raw{T: ts[i], X: xs[i], Y: ys[i], S: ss[i]}
		}
	}
	return out, nil
}

// ScanWindowRegion streams window c's tuples whose (X, Y) fall inside
// the closed rectangle [minX,maxX]×[minY,maxY], pruning whole blocks by
// zone map before touching their bytes. Tuples arrive in block order,
// not append order. It returns how many blocks were scanned vs pruned.
func (r *Reader) ScanWindowRegion(c int, minX, minY, maxX, maxY float64, fn func(tuple.Raw)) (scanned, pruned int, err error) {
	for _, bi := range r.byWindow[c] {
		m := r.blocks[bi]
		if m.MinX > maxX || m.MaxX < minX || m.MinY > maxY || m.MaxY < minY {
			pruned++
			r.blocksPruned.Add(1)
			continue
		}
		ts, xs, ys, ss, _, err := r.readBlock(m)
		if err != nil {
			return scanned, pruned, err
		}
		scanned++
		for i := range xs {
			if xs[i] < minX || xs[i] > maxX || ys[i] < minY || ys[i] > maxY {
				continue
			}
			fn(tuple.Raw{T: ts[i], X: xs[i], Y: ys[i], S: ss[i]})
		}
	}
	return scanned, pruned, nil
}

func (r *Reader) readBlock(m BlockMeta) (ts, xs, ys, ss []float64, seqs []int64, err error) {
	data, err := r.src.ReadSpan(m.Offset, m.Length)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	if r.src.Mapped() {
		r.mmapReads.Add(1)
	} else {
		r.readAtReads.Add(1)
	}
	r.bytesRead.Add(m.Length)
	r.blocksScanned.Add(1)
	return decodeBlock(data, m.Count)
}

// Stats returns a snapshot of the reader's counters.
func (r *Reader) Stats() Stats {
	return Stats{
		BlocksScanned: r.blocksScanned.Load(),
		BlocksPruned:  r.blocksPruned.Load(),
		MmapReads:     r.mmapReads.Load(),
		ReadAtReads:   r.readAtReads.Load(),
		BytesRead:     r.bytesRead.Load(),
	}
}

// Close releases the underlying source. Idempotent.
func (r *Reader) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	return r.src.Close()
}

// readAtSource is the portable pread fallback.
type readAtSource struct {
	f    *os.File
	size int64
}

func (s *readAtSource) ReadSpan(off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off+n > s.size {
		return nil, fmt.Errorf("%w: read span [%d,+%d) outside %d-byte file", ErrCorrupt, off, n, s.size)
	}
	buf := make([]byte, n)
	if _, err := s.f.ReadAt(buf, off); err != nil {
		return nil, err
	}
	return buf, nil
}

func (s *readAtSource) Size() int64  { return s.size }
func (s *readAtSource) Mapped() bool { return false }
func (s *readAtSource) Close() error { return s.f.Close() }

// byteSource serves an in-memory image (tests, fuzzing).
type byteSource []byte

func (s byteSource) ReadSpan(off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off+n > int64(len(s)) {
		return nil, fmt.Errorf("%w: read span [%d,+%d) outside %d-byte image", ErrCorrupt, off, n, len(s))
	}
	return s[off : off+n], nil
}

func (s byteSource) Size() int64  { return int64(len(s)) }
func (s byteSource) Mapped() bool { return true }
func (s byteSource) Close() error { return nil }
