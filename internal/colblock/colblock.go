// Package colblock implements the columnar sidecar format emitted
// alongside store checkpoints: the same tuples as the row-oriented
// checkpoint file, re-sorted by (geo-cell, time) within each window and
// encoded as per-column fixed-point arrays with per-block min/max zone
// maps and a checksummed footer.
//
// The sidecar is an accelerator, never an authority. The row checkpoint
// plus segment suffix remain the durable truth; a missing or corrupt
// sidecar only costs a fallback to row replay. Because every column is
// encoded losslessly (fixed-point only when the exact float64 round-trips
// bit-for-bit, raw IEEE bits otherwise) and each tuple carries its
// original append position, a materialized window is byte-identical to
// the row-replayed one — which is what lets analytical consumers switch
// scan paths without changing a single answer.
//
// # File layout
//
//	header   (8 B)   colMagic u32 | colVersion u32
//	blocks   (...)   self-checksummed column blocks, ≤ BlockTuples each
//	directory(n×96 B) per-block window, offset, length, count, zone maps
//	trailer  (32 B)  seq u64 | tuples u64 | nblocks u32 | version u32 |
//	                 crc u32 (over directory ++ trailer[:24]) | footMagic u32
//
// The footer (directory + trailer) is read from the file end, so a reader
// learns every block's location and zone map from one bounded read before
// touching any tuple data.
//
// # Block layout
//
//	count u32
//	5 columns (T, X, Y, S, seq), each:
//	  enc u8 | scaleExp u8 | width u8 | reserved u8
//	  fixed-point: base i64, then count × width LE offsets from base
//	  raw:         count × 8 B IEEE-754 bits
//	crc u32 (IEEE, over everything above)
//
// Fixed-point stores round(v·10^scaleExp) − base; the encoder only picks
// a scale when decoding reproduces the input bits exactly, so decode is
// base+offset, one divide, no drift.
package colblock

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"repro/internal/tuple"
)

// Format constants. colMagic/colVersion open the file, footMagic seals
// the trailer; envirometer-vet's colfmt analyzer enforces that each is
// exercised by both the encode and the decode path and covered by the
// FuzzColBlockDecode harness.
const (
	colMagic   = 0x454d434c // "EMCL"
	footMagic  = 0x454d4346 // "EMCF"
	colVersion = 1
)

const (
	headerSize   = 8
	trailerSize  = 32
	dirEntrySize = 96

	// DefaultBlockTuples is the block size used when the caller passes 0:
	// large enough to amortize per-block overhead, small enough that zone
	// maps prune meaningful fractions of a window.
	DefaultBlockTuples = 2048

	// maxBlockTuples bounds the per-block allocation a decoder will make
	// from an untrusted count field.
	maxBlockTuples = 1 << 20

	// cellSize is the geo-cell edge, in the store's local metric frame
	// (meters), used for the within-window (cell, time) sort. Spatially
	// close tuples land in the same blocks, which is what makes the
	// per-block X/Y zone maps selective for region scans.
	cellSize = 250.0
)

// Column encodings.
const (
	encRaw   = 0 // count × 8 B IEEE-754 float64 bits
	encFixed = 1 // base i64 + count × width LE unsigned offsets
)

// maxFixed bounds the scaled magnitude accepted by the fixed-point
// encoder, keeping the float64→int64 conversion in defined range.
const maxFixed = float64(1 << 62)

// pow10 holds the exactly-representable powers of ten tried as
// fixed-point scales, index = exponent.
var pow10 = [...]float64{1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}

// ErrCorrupt reports a structurally invalid or checksum-failing sidecar.
// Callers fall back to row replay; they never surface it as data loss.
var ErrCorrupt = errors.New("colblock: corrupt sidecar")

// WindowData is one window's tuples in their original append order, as
// the store holds them in memory and the row checkpoint persists them.
type WindowData struct {
	Window int
	Tuples tuple.Batch
}

// EncodeStats reports what Encode wrote.
type EncodeStats struct {
	Blocks int
	Bytes  int64
}

// Encode writes the columnar sidecar for checkpoint seq covering the
// given windows to w. blockTuples ≤ 0 selects DefaultBlockTuples. The
// caller owns durability (temp+fsync+rename); Encode only streams bytes.
func Encode(w io.Writer, seq int, windows []WindowData, blockTuples int) (EncodeStats, error) {
	if blockTuples <= 0 {
		blockTuples = DefaultBlockTuples
	}
	if blockTuples > maxBlockTuples {
		blockTuples = maxBlockTuples
	}
	sorted := append([]WindowData(nil), windows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Window < sorted[j].Window })

	hdr := make([]byte, headerSize)
	putU32(hdr[0:], colMagic)
	putU32(hdr[4:], colVersion)
	if _, err := w.Write(hdr); err != nil {
		return EncodeStats{}, err
	}

	var (
		st     EncodeStats
		dir    []byte
		off    = int64(headerSize)
		tuples = 0
	)
	for _, wd := range sorted {
		n := len(wd.Tuples)
		tuples += n
		if n == 0 {
			continue
		}
		order := cellTimeOrder(wd.Tuples)
		for lo := 0; lo < n; lo += blockTuples {
			hi := min(lo+blockTuples, n)
			blk, meta := encodeBlock(wd.Tuples, order[lo:hi])
			meta.Window = wd.Window
			meta.Offset = off
			meta.Length = int64(len(blk))
			if _, err := w.Write(blk); err != nil {
				return EncodeStats{}, err
			}
			off += int64(len(blk))
			dir = appendDirEntry(dir, meta)
			st.Blocks++
		}
	}

	trailer := make([]byte, trailerSize)
	putU64(trailer[0:], uint64(int64(seq)))
	putU64(trailer[8:], uint64(int64(tuples)))
	putU32(trailer[16:], uint32(st.Blocks))
	putU32(trailer[20:], colVersion)
	crc := crc32.Update(crc32.ChecksumIEEE(dir), crc32.IEEETable, trailer[:24])
	putU32(trailer[24:], crc)
	putU32(trailer[28:], footMagic)
	if _, err := w.Write(dir); err != nil {
		return EncodeStats{}, err
	}
	if _, err := w.Write(trailer); err != nil {
		return EncodeStats{}, err
	}
	st.Bytes = off + int64(len(dir)) + trailerSize
	return st, nil
}

// cellTimeOrder returns the indexes of b sorted by (geo-cell, time,
// original position). The trailing original-position key makes the order
// deterministic and keeps same-cell same-time tuples in append order.
func cellTimeOrder(b tuple.Batch) []int {
	ord := make([]int, len(b))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(i, j int) bool {
		p, q := b[ord[i]], b[ord[j]]
		pcy, qcy := cellOf(p.Y), cellOf(q.Y)
		if pcy != qcy {
			return pcy < qcy
		}
		pcx, qcx := cellOf(p.X), cellOf(q.X)
		if pcx != qcx {
			return pcx < qcx
		}
		if p.T != q.T {
			return p.T < q.T
		}
		return ord[i] < ord[j]
	})
	return ord
}

func cellOf(v float64) int64 { return int64(math.Floor(v / cellSize)) }

// encodeBlock encodes the tuples b[idx[0]], b[idx[1]], ... as one
// self-checksummed block and returns its bytes plus the zone-map meta.
func encodeBlock(b tuple.Batch, idx []int) ([]byte, BlockMeta) {
	n := len(idx)
	ts := make([]float64, n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	ss := make([]float64, n)
	seqs := make([]int64, n)
	for i, j := range idx {
		r := b[j]
		ts[i], xs[i], ys[i], ss[i] = r.T, r.X, r.Y, r.S
		seqs[i] = int64(j)
	}
	meta := BlockMeta{Count: n}
	meta.MinT, meta.MaxT = minMax(ts)
	meta.MinX, meta.MaxX = minMax(xs)
	meta.MinY, meta.MaxY = minMax(ys)
	meta.MinS, meta.MaxS = minMax(ss)

	buf := make([]byte, 4, 4+n*12)
	putU32(buf, uint32(n))
	buf = appendFloatColumn(buf, ts)
	buf = appendFloatColumn(buf, xs)
	buf = appendFloatColumn(buf, ys)
	buf = appendFloatColumn(buf, ss)
	buf = appendIntColumn(buf, seqs, 0)
	crc := crc32.ChecksumIEEE(buf)
	var tail [4]byte
	putU32(tail[:], crc)
	return append(buf, tail[:]...), meta
}

func minMax(vals []float64) (lo, hi float64) {
	lo, hi = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// appendFloatColumn encodes vals as fixed-point when every value
// round-trips bit-exactly at some power-of-ten scale, and as raw IEEE
// bits otherwise.
func appendFloatColumn(dst []byte, vals []float64) []byte {
	if ints, scale, ok := fixedPoint(vals); ok {
		return appendIntColumn(dst, ints, scale)
	}
	dst = append(dst, encRaw, 0, 8, 0)
	for _, v := range vals {
		dst = appendU64(dst, math.Float64bits(v))
	}
	return dst
}

// fixedPoint tries ascending scales and returns the scaled integers for
// the first scale at which every value decodes back to its exact bits.
// The ascending order also yields the narrowest offsets, since the value
// span grows with the scale.
func fixedPoint(vals []float64) ([]int64, byte, bool) {
	ints := make([]int64, len(vals))
nextScale:
	for e := range pow10 {
		p := pow10[e]
		for i, v := range vals {
			r := math.Round(v * p)
			if !(r >= -maxFixed && r <= maxFixed) {
				continue nextScale
			}
			iv := int64(r)
			if math.Float64bits(float64(iv)/p) != math.Float64bits(v) {
				continue nextScale
			}
			ints[i] = iv
		}
		return ints, byte(e), true
	}
	return nil, 0, false
}

// appendIntColumn encodes ints as base + narrow unsigned offsets.
func appendIntColumn(dst []byte, ints []int64, scale byte) []byte {
	base, maxv := ints[0], ints[0]
	for _, v := range ints[1:] {
		if v < base {
			base = v
		}
		if v > maxv {
			maxv = v
		}
	}
	span := uint64(maxv) - uint64(base)
	var width byte
	switch {
	case span <= 0xff:
		width = 1
	case span <= 0xffff:
		width = 2
	case span <= 0xffffffff:
		width = 4
	default:
		width = 8
	}
	dst = append(dst, encFixed, scale, width, 0)
	dst = appendU64(dst, uint64(base))
	for _, v := range ints {
		u := uint64(v) - uint64(base)
		for b := 0; b < int(width); b++ {
			dst = append(dst, byte(u>>(8*b)))
		}
	}
	return dst
}

// BlockMeta is one directory entry: where a block lives and what its
// zone maps promise about the tuples inside.
type BlockMeta struct {
	Window int
	Offset int64
	Length int64
	Count  int

	MinT, MaxT float64
	MinX, MaxX float64
	MinY, MaxY float64
	MinS, MaxS float64
}

func appendDirEntry(dst []byte, m BlockMeta) []byte {
	var e [dirEntrySize]byte
	putU64(e[0:], uint64(int64(m.Window)))
	putU64(e[8:], uint64(m.Offset))
	putU64(e[16:], uint64(m.Length))
	putU32(e[24:], uint32(m.Count))
	for i, v := range [...]float64{m.MinT, m.MaxT, m.MinX, m.MaxX, m.MinY, m.MaxY, m.MinS, m.MaxS} {
		putU64(e[32+8*i:], math.Float64bits(v))
	}
	return append(dst, e[:]...)
}

func decodeDirEntry(e []byte) BlockMeta {
	var m BlockMeta
	m.Window = int(int64(le64(e[0:])))
	m.Offset = int64(le64(e[8:]))
	m.Length = int64(le64(e[16:]))
	m.Count = int(le32(e[24:]))
	f := func(i int) float64 { return math.Float64frombits(le64(e[32+8*i:])) }
	m.MinT, m.MaxT = f(0), f(1)
	m.MinX, m.MaxX = f(2), f(3)
	m.MinY, m.MaxY = f(4), f(5)
	m.MinS, m.MaxS = f(6), f(7)
	return m
}

// decodeBlock parses one block's bytes (header through CRC) and returns
// its columns. count cross-checks the directory entry.
func decodeBlock(data []byte, count int) (ts, xs, ys, ss []float64, seqs []int64, err error) {
	if len(data) < 8 {
		return nil, nil, nil, nil, nil, fmt.Errorf("%w: block shorter than framing", ErrCorrupt)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != le32(tail) {
		return nil, nil, nil, nil, nil, fmt.Errorf("%w: block checksum mismatch", ErrCorrupt)
	}
	n := int(le32(body[0:4]))
	if n != count || n <= 0 || n > maxBlockTuples {
		return nil, nil, nil, nil, nil, fmt.Errorf("%w: block count %d does not match directory %d", ErrCorrupt, n, count)
	}
	p := body[4:]
	cols := make([][]float64, 4)
	for i := range cols {
		cols[i], p, err = decodeFloatColumn(p, n)
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
	}
	seqs, p, err = decodeSeqColumn(p, n)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	if len(p) != 0 {
		return nil, nil, nil, nil, nil, fmt.Errorf("%w: %d trailing bytes after columns", ErrCorrupt, len(p))
	}
	return cols[0], cols[1], cols[2], cols[3], seqs, nil
}

func decodeFloatColumn(p []byte, n int) ([]float64, []byte, error) {
	enc, scale, width, p, err := columnHeader(p)
	if err != nil {
		return nil, nil, err
	}
	vals := make([]float64, n)
	switch enc {
	case encRaw:
		if len(p) < 8*n {
			return nil, nil, fmt.Errorf("%w: raw column truncated", ErrCorrupt)
		}
		for i := 0; i < n; i++ {
			vals[i] = math.Float64frombits(le64(p[8*i:]))
		}
		return vals, p[8*n:], nil
	case encFixed:
		ints, rest, err := fixedInts(p, n, width)
		if err != nil {
			return nil, nil, err
		}
		if int(scale) >= len(pow10) {
			return nil, nil, fmt.Errorf("%w: fixed-point scale %d out of range", ErrCorrupt, scale)
		}
		d := pow10[scale]
		for i, iv := range ints {
			vals[i] = float64(iv) / d
		}
		return vals, rest, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown column encoding %d", ErrCorrupt, enc)
	}
}

// decodeSeqColumn decodes the original-position column, which the
// encoder always writes as fixed-point with scale 0.
func decodeSeqColumn(p []byte, n int) ([]int64, []byte, error) {
	enc, scale, width, p, err := columnHeader(p)
	if err != nil {
		return nil, nil, err
	}
	if enc != encFixed || scale != 0 {
		return nil, nil, fmt.Errorf("%w: seq column must be integer-encoded", ErrCorrupt)
	}
	return fixedInts(p, n, width)
}

func columnHeader(p []byte) (enc, scale, width byte, rest []byte, err error) {
	if len(p) < 4 {
		return 0, 0, 0, nil, fmt.Errorf("%w: column header truncated", ErrCorrupt)
	}
	enc, scale, width = p[0], p[1], p[2]
	switch width {
	case 1, 2, 4, 8:
	default:
		return 0, 0, 0, nil, fmt.Errorf("%w: column width %d", ErrCorrupt, width)
	}
	return enc, scale, width, p[4:], nil
}

func fixedInts(p []byte, n int, width byte) ([]int64, []byte, error) {
	need := 8 + n*int(width)
	if len(p) < need {
		return nil, nil, fmt.Errorf("%w: fixed column truncated", ErrCorrupt)
	}
	base := le64(p[0:8])
	p = p[8:]
	ints := make([]int64, n)
	w := int(width)
	for i := 0; i < n; i++ {
		var u uint64
		for b := 0; b < w; b++ {
			u |= uint64(p[i*w+b]) << (8 * b)
		}
		ints[i] = int64(base + u)
	}
	return ints, p[n*w:], nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	putU64(b[:], v)
	return append(dst, b[:]...)
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64(b []byte) uint64 {
	return uint64(le32(b)) | uint64(le32(b[4:]))<<32
}
