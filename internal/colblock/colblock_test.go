package colblock

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tuple"
)

func genWindows(r *rand.Rand, nwin, perWin int) []WindowData {
	out := make([]WindowData, 0, nwin)
	for c := 0; c < nwin; c++ {
		b := make(tuple.Batch, perWin)
		for i := range b {
			b[i] = tuple.Raw{
				T: float64(c*600) + r.Float64()*600,
				X: r.Float64()*4000 - 1000,
				Y: r.Float64()*3000 - 500,
				S: math.Round(r.Float64()*1000) / 10, // one decimal: fixed-point friendly
			}
			if i%7 == 0 {
				b[i].S = r.NormFloat64() * 13.7 // irrational-ish: forces raw encoding
			}
		}
		out = append(out, WindowData{Window: c + 3, Tuples: b})
	}
	return out
}

func encodeImage(t *testing.T, seq int, windows []WindowData, blockTuples int) []byte {
	t.Helper()
	var buf bytes.Buffer
	st, err := Encode(&buf, seq, windows, blockTuples)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if int64(buf.Len()) != st.Bytes {
		t.Fatalf("EncodeStats.Bytes = %d, wrote %d", st.Bytes, buf.Len())
	}
	return buf.Bytes()
}

// TestRoundTrip proves the core invariant: WindowTuples reproduces every
// window bit-for-bit in original append order, regardless of block size.
func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	windows := genWindows(r, 5, 777)
	for _, blockTuples := range []int{0, 1, 64, 100000} {
		img := encodeImage(t, 42, windows, blockTuples)
		rd, err := OpenBytes(img)
		if err != nil {
			t.Fatalf("OpenBytes(block=%d): %v", blockTuples, err)
		}
		if rd.Seq() != 42 {
			t.Fatalf("Seq = %d, want 42", rd.Seq())
		}
		if rd.Tuples() != 5*777 {
			t.Fatalf("Tuples = %d, want %d", rd.Tuples(), 5*777)
		}
		for _, wd := range windows {
			got, err := rd.WindowTuples(wd.Window)
			if err != nil {
				t.Fatalf("WindowTuples(%d): %v", wd.Window, err)
			}
			if len(got) != len(wd.Tuples) {
				t.Fatalf("window %d: %d tuples, want %d", wd.Window, len(got), len(wd.Tuples))
			}
			for i := range got {
				if !bitEqual(got[i], wd.Tuples[i]) {
					t.Fatalf("window %d tuple %d = %+v, want %+v (block=%d)", wd.Window, i, got[i], wd.Tuples[i], blockTuples)
				}
			}
		}
		rd.Close()
	}
}

func bitEqual(a, b tuple.Raw) bool {
	return math.Float64bits(a.T) == math.Float64bits(b.T) &&
		math.Float64bits(a.X) == math.Float64bits(b.X) &&
		math.Float64bits(a.Y) == math.Float64bits(b.Y) &&
		math.Float64bits(a.S) == math.Float64bits(b.S)
}

// TestFixedPointEdgeValues hits values that must defeat the fixed-point
// encoder (negative zero, subnormals, giant magnitudes) and still
// round-trip exactly through the raw fallback.
func TestFixedPointEdgeValues(t *testing.T) {
	b := tuple.Batch{
		{T: 0, X: math.Copysign(0, -1), Y: 5e-324, S: 1e300},
		{T: 1, X: 0.1, Y: -2.5, S: math.Pi},
		{T: 2, X: 1e17, Y: -1e17, S: 123.456},
	}
	img := encodeImage(t, 1, []WindowData{{Window: 0, Tuples: b}}, 0)
	rd, err := OpenBytes(img)
	if err != nil {
		t.Fatalf("OpenBytes: %v", err)
	}
	defer rd.Close()
	got, err := rd.WindowTuples(0)
	if err != nil {
		t.Fatalf("WindowTuples: %v", err)
	}
	for i := range got {
		if !bitEqual(got[i], b[i]) {
			t.Fatalf("tuple %d = %+v (bits %x), want %+v (bits %x)", i, got[i], math.Float64bits(got[i].X), b[i], math.Float64bits(b[i].X))
		}
	}
}

// TestZoneMapPruning checks that a region scan skips blocks whose zone
// maps exclude the region, and that the survivors yield exactly the
// in-region tuples.
func TestZoneMapPruning(t *testing.T) {
	// Two spatial clusters far apart, so blocks are spatially pure.
	var b tuple.Batch
	for i := 0; i < 4000; i++ {
		x, y := float64(i%50), float64((i/50)%40)
		if i%2 == 1 {
			x += 100000
		}
		b = append(b, tuple.Raw{T: float64(i), X: x, Y: y, S: 1})
	}
	img := encodeImage(t, 7, []WindowData{{Window: 1, Tuples: b}}, 256)
	rd, err := OpenBytes(img)
	if err != nil {
		t.Fatalf("OpenBytes: %v", err)
	}
	defer rd.Close()

	want := 0
	for _, r := range b {
		if r.X <= 60 {
			want++
		}
	}
	got := 0
	scanned, pruned, err := rd.ScanWindowRegion(1, -10, -10, 60, 60, func(r tuple.Raw) {
		if r.X > 60 {
			t.Fatalf("tuple outside region: %+v", r)
		}
		got++
	})
	if err != nil {
		t.Fatalf("ScanWindowRegion: %v", err)
	}
	if got != want {
		t.Fatalf("region yielded %d tuples, want %d", got, want)
	}
	if pruned == 0 {
		t.Fatalf("no blocks pruned (scanned %d); far cluster should be zone-mapped out", scanned)
	}
	st := rd.Stats()
	if st.BlocksPruned != int64(pruned) || st.BlocksScanned != int64(scanned) {
		t.Fatalf("stats %+v disagree with scan result (%d scanned, %d pruned)", st, scanned, pruned)
	}
}

// TestWindowZone checks the directory-only zone union matches a full scan.
func TestWindowZone(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	windows := genWindows(r, 3, 500)
	img := encodeImage(t, 3, windows, 128)
	rd, err := OpenBytes(img)
	if err != nil {
		t.Fatalf("OpenBytes: %v", err)
	}
	defer rd.Close()
	for _, wd := range windows {
		z, ok := rd.WindowZone(wd.Window)
		if !ok {
			t.Fatalf("window %d missing", wd.Window)
		}
		minX, maxX := wd.Tuples[0].X, wd.Tuples[0].X
		minY, maxY := wd.Tuples[0].Y, wd.Tuples[0].Y
		for _, tp := range wd.Tuples {
			minX, maxX = min(minX, tp.X), max(maxX, tp.X)
			minY, maxY = min(minY, tp.Y), max(maxY, tp.Y)
		}
		if z.MinX != minX || z.MaxX != maxX || z.MinY != minY || z.MaxY != maxY {
			t.Fatalf("window %d zone [%v %v %v %v], want [%v %v %v %v]",
				wd.Window, z.MinX, z.MaxX, z.MinY, z.MaxY, minX, maxX, minY, maxY)
		}
		if z.Count != len(wd.Tuples) {
			t.Fatalf("window %d zone count %d, want %d", wd.Window, z.Count, len(wd.Tuples))
		}
	}
	if _, ok := rd.WindowZone(999); ok {
		t.Fatal("WindowZone(999) reported a missing window present")
	}
}

// TestCorruption flips bytes across the image and requires every
// corruption to surface as an error (open-time or scan-time), never as
// silently wrong tuples.
func TestCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	windows := genWindows(r, 2, 300)
	img := encodeImage(t, 5, windows, 64)
	orig := append([]byte(nil), img...)

	for _, pos := range []int{0, 5, headerSize + 3, len(img) / 2, len(img) - trailerSize + 2, len(img) - 3} {
		copy(img, orig)
		img[pos] ^= 0x5a
		if err := Verify(img); err == nil {
			t.Fatalf("corruption at byte %d went undetected", pos)
		}
	}
	// Truncations.
	for _, n := range []int{0, headerSize, len(img) - 1, len(img) - trailerSize} {
		if err := Verify(orig[:n]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
	copy(img, orig)
	if err := Verify(img); err != nil {
		t.Fatalf("pristine image failed verify: %v", err)
	}
}

// TestOpenFileSources exercises both access paths against the same file
// and requires identical answers and correctly attributed read counters.
func TestOpenFileSources(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	windows := genWindows(r, 2, 400)
	img := encodeImage(t, 9, windows, 128)
	path := filepath.Join(t.TempDir(), "colblock-000009.emc")
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}

	for _, disable := range []bool{false, true} {
		rd, err := OpenFile(path, Options{DisableMmap: disable})
		if err != nil {
			t.Fatalf("OpenFile(disableMmap=%v): %v", disable, err)
		}
		for _, wd := range windows {
			got, err := rd.WindowTuples(wd.Window)
			if err != nil {
				t.Fatalf("WindowTuples: %v", err)
			}
			for i := range got {
				if !bitEqual(got[i], wd.Tuples[i]) {
					t.Fatalf("disableMmap=%v: window %d tuple %d mismatch", disable, wd.Window, i)
				}
			}
		}
		st := rd.Stats()
		if disable && (st.ReadAtReads == 0 || st.MmapReads != 0) {
			t.Fatalf("DisableMmap stats %+v: want only ReadAt reads", st)
		}
		if st.BytesRead == 0 {
			t.Fatalf("stats %+v: no bytes accounted", st)
		}
		if err := rd.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := rd.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	}
}

// TestEmptyFile checks a sidecar with zero windows is valid and empty.
func TestEmptyFile(t *testing.T) {
	img := encodeImage(t, 2, nil, 0)
	rd, err := OpenBytes(img)
	if err != nil {
		t.Fatalf("OpenBytes: %v", err)
	}
	defer rd.Close()
	if rd.Tuples() != 0 || rd.Blocks() != 0 || len(rd.Windows()) != 0 {
		t.Fatalf("empty sidecar reports tuples=%d blocks=%d windows=%v", rd.Tuples(), rd.Blocks(), rd.Windows())
	}
	if got, err := rd.WindowTuples(0); err != nil || got != nil {
		t.Fatalf("WindowTuples on empty = %v, %v", got, err)
	}
}
