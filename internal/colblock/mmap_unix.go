//go:build unix

package colblock

import (
	"errors"
	"os"
	"syscall"
)

// mapFile memory-maps f read-only. The sidecar is immutable and replaced
// atomically by rename, so a mapping never observes a partial write; a
// mapping of a since-deleted sidecar stays valid until unmapped, which is
// what lets the store keep serving lazy windows across compactions.
func mapFile(f *os.File, size int64) (Source, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, errors.New("colblock: file size not mappable")
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return &mmapSource{data: data}, nil
}

type mmapSource struct {
	data []byte
}

func (s *mmapSource) ReadSpan(off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off+n > int64(len(s.data)) {
		return nil, ErrCorrupt
	}
	return s.data[off : off+n], nil
}

func (s *mmapSource) Size() int64  { return int64(len(s.data)) }
func (s *mmapSource) Mapped() bool { return true }

func (s *mmapSource) Close() error {
	data := s.data
	s.data = nil
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
