package cache

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/regress"
)

func coverValid(from, until float64) *core.Cover {
	m, err := regress.NewModel(regress.Constant, []float64{400})
	if err != nil {
		panic(err)
	}
	return &core.Cover{
		ValidFrom:  from,
		ValidUntil: until,
		Regions:    []core.RegionModel{{Centroid: geo.Point{}, Model: m}},
	}
}

func TestEmptyCacheMisses(t *testing.T) {
	c := New()
	if _, ok := c.Lookup(10); ok {
		t.Error("empty cache should miss")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Errorf("stats = %+v", st)
	}
	if c.Peek() != nil {
		t.Error("Peek on empty cache should be nil")
	}
}

func TestHitWithinValidity(t *testing.T) {
	c := New()
	cv := coverValid(100, 200)
	c.Store(cv)
	got, ok := c.Lookup(150)
	if !ok || got != cv {
		t.Errorf("Lookup(150) = %v,%v", got, ok)
	}
	// The t_l ≤ t_n boundary is inclusive.
	if _, ok := c.Lookup(200); !ok {
		t.Error("t_l == t_n should hit")
	}
	if _, ok := c.Lookup(201); ok {
		t.Error("t_l > t_n should miss")
	}
	if _, ok := c.Lookup(99); ok {
		t.Error("before ValidFrom should miss")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Refreshes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStoreReplaces(t *testing.T) {
	c := New()
	c.Store(coverValid(0, 100))
	cv2 := coverValid(100, 200)
	c.Store(cv2)
	got, ok := c.Lookup(150)
	if !ok || got != cv2 {
		t.Error("second Store should win")
	}
	if _, ok := c.Lookup(50); ok {
		t.Error("old validity should be gone")
	}
}

func TestInvalidate(t *testing.T) {
	c := New()
	c.Store(coverValid(0, 100))
	c.Invalidate()
	if _, ok := c.Lookup(50); ok {
		t.Error("invalidated cache should miss")
	}
	if c.Peek() != nil {
		t.Error("Peek after Invalidate should be nil")
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("zero stats hit rate should be 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if got := s.HitRate(); got != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New()
	cv := coverValid(0, 1e9)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if i%4 == 0 {
					c.Store(cv)
				} else {
					c.Lookup(float64(j))
				}
				c.Peek()
			}
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	if st.Refreshes != 400 {
		t.Errorf("Refreshes = %d, want 400", st.Refreshes)
	}
	if st.Hits+st.Misses != 1200 {
		t.Errorf("lookups = %d, want 1200", st.Hits+st.Misses)
	}
}
