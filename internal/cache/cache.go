// Package cache implements the smartphone-side model cache of §2.3: the
// client stores the (t_n, µ, M) triple received from the server and
// answers pollution queries locally while the cover is valid (t_l ≤ t_n),
// contacting the server only to refresh an invalid cover. This is the
// mechanism behind the ~two-orders-of-magnitude bandwidth savings of
// Figure 7(b).
package cache

import (
	"sync"

	"repro/internal/core"
)

// Stats counts cache outcomes.
type Stats struct {
	// Hits are queries answered locally from a valid cached cover.
	Hits int64
	// Misses are queries that required fetching a cover (cold start or
	// expiry t_l > t_n).
	Misses int64
	// Refreshes counts covers stored.
	Refreshes int64
}

// HitRate returns Hits / (Hits + Misses), or 0 when no lookups happened.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache holds at most one model cover — the current one, exactly as the
// paper's client does. It is safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	cover *core.Cover
	stats Stats
}

// New returns an empty cache.
func New() *Cache { return &Cache{} }

// Lookup returns the cached cover if it is valid at query time t. The
// validity test is the paper's t_l ≤ t_n check (plus the lower bound,
// which matters when a client replays history).
func (c *Cache) Lookup(t float64) (*core.Cover, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cover != nil && c.cover.ValidAt(t) {
		c.stats.Hits++
		return c.cover, true
	}
	c.stats.Misses++
	return nil, false
}

// Peek returns the cached cover (even if expired) without touching stats.
func (c *Cache) Peek() *core.Cover {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cover
}

// Store replaces the cached cover with cv.
func (c *Cache) Store(cv *core.Cover) {
	c.mu.Lock()
	c.cover = cv
	c.stats.Refreshes++
	c.mu.Unlock()
}

// Invalidate drops the cached cover.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	c.cover = nil
	c.mu.Unlock()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
