package subs

// Subscription lifecycle under -race: exact-overlap delta pushes,
// zero re-evaluation for non-overlapping invalidations (asserted via
// registry stats), slow-consumer overflow converting to a resync, and
// clean drains on unsubscribe and registry close.

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/query"
	"repro/internal/tuple"
)

const testWindowLen = 100.0

// testEval is a controllable evaluator: every point answers
// base + T + X, so bumping base changes every re-evaluated point (a
// delta then carries exactly the re-evaluated set).
type testEval struct {
	base  atomic.Int64
	calls atomic.Int64
}

func (e *testEval) eval(_ context.Context, _ tuple.Pollutant, reqs []query.Request) ([]query.BatchResult, error) {
	e.calls.Add(1)
	res := make([]query.BatchResult, len(reqs))
	for i, q := range reqs {
		res[i] = query.BatchResult{Value: float64(e.base.Load()) + q.T + q.X}
	}
	return res, nil
}

func testWinOf(tuple.Pollutant) (float64, error) { return testWindowLen, nil }

func recvEvent(t *testing.T, h Handle) Event {
	t.Helper()
	select {
	case ev, ok := <-h.Events():
		if !ok {
			t.Fatal("event channel closed unexpectedly")
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a push event")
	}
	return Event{}
}

// TestSubscribeLifecycle walks the full local lifecycle: initial
// resync, an invalidation overlapping half the points pushing a delta
// of exactly those points, a non-overlapping invalidation evaluating
// nothing, and a clean unsubscribe.
func TestSubscribeLifecycle(t *testing.T) {
	ev := &testEval{}
	r := NewRegistry(Config{}, ev.eval, testWinOf)
	defer r.Close()

	// Points 0,1 in window 0; points 2,3 in window 1.
	pts := []query.Request{
		{T: 10, X: 1, Y: 1}, {T: 90, X: 2, Y: 2},
		{T: 110, X: 3, Y: 3}, {T: 190, X: 4, Y: 4},
	}
	s, err := r.Subscribe(context.Background(), tuple.CO2, pts)
	if err != nil {
		t.Fatal(err)
	}

	first := recvEvent(t, s)
	if !first.Resync || first.Seq != 1 || len(first.Points) != len(pts) {
		t.Fatalf("initial event = %+v, want seq-1 resync with %d points", first, len(pts))
	}
	for i, p := range first.Points {
		want := pts[i].T + pts[i].X
		if p.Index != i || p.Value != want || p.Err != "" {
			t.Fatalf("initial point %d = %+v, want value %v", i, p, want)
		}
	}

	// Invalidate window 0: only points 0 and 1 re-evaluate and push.
	ev.base.Store(1000)
	evalsBefore := ev.calls.Load()
	r.Invalidated(tuple.CO2, 0)
	r.Wait()
	delta := recvEvent(t, s)
	if delta.Resync {
		t.Fatalf("delta event = %+v, want a non-resync delta", delta)
	}
	got := map[int]float64{}
	for _, p := range delta.Points {
		got[p.Index] = p.Value
	}
	if len(got) != 2 || got[0] != 1000+10+1 || got[1] != 1000+90+2 {
		t.Fatalf("delta points = %+v, want exactly window-0 points {0, 1}", delta.Points)
	}
	if calls := ev.calls.Load() - evalsBefore; calls != 1 {
		t.Fatalf("evaluator ran %d times for one invalidation, want 1", calls)
	}

	// A non-overlapping invalidation costs no evaluation and no event.
	st := r.Stats()
	r.Invalidated(tuple.CO2, 7)
	r.Wait()
	after := r.Stats()
	if after.ReEvals != st.ReEvals || after.PointReEvals != st.PointReEvals {
		t.Fatalf("non-overlapping invalidation re-evaluated: %+v -> %+v", st, after)
	}
	if after.Avoided != st.Avoided+1 {
		t.Fatalf("Avoided = %d, want %d", after.Avoided, st.Avoided+1)
	}
	select {
	case e := <-s.Events():
		t.Fatalf("unexpected event %+v after non-overlapping invalidation", e)
	default:
	}

	if !r.Unsubscribe(s.ID()) {
		t.Fatal("Unsubscribe reported the subscription missing")
	}
	if _, ok := <-s.Events(); ok {
		t.Fatal("event channel still open after unsubscribe")
	}
	if r.Unsubscribe(s.ID()) {
		t.Fatal("second Unsubscribe reported success")
	}
	if st := r.Stats(); st.Active != 0 || st.Closed != 1 {
		t.Fatalf("Stats after unsubscribe = %+v", st)
	}
}

// TestSlowConsumerResync fills a depth-1 queue without consuming: the
// oldest event is dropped and the next delivery arrives as a full
// resync, so the consumer never observes a silent gap.
func TestSlowConsumerResync(t *testing.T) {
	ev := &testEval{}
	r := NewRegistry(Config{QueueDepth: 1}, ev.eval, testWinOf)
	defer r.Close()

	s, err := r.Subscribe(context.Background(), tuple.CO2,
		[]query.Request{{T: 10, X: 1, Y: 1}, {T: 20, X: 2, Y: 2}})
	if err != nil {
		t.Fatal(err)
	}

	// The initial resync occupies the single queue slot; two further
	// pushes overflow it.
	for round := int64(1); round <= 2; round++ {
		ev.base.Store(round * 1000)
		r.Invalidated(tuple.CO2, 0)
		r.Wait()
	}

	got := recvEvent(t, s)
	if !got.Resync {
		t.Fatalf("after overflow got %+v, want a resync", got)
	}
	if len(got.Points) != 2 {
		t.Fatalf("resync carries %d points, want the full vector of 2", len(got.Points))
	}
	for i, p := range got.Points {
		want := 2000 + s.Points()[i].T + s.Points()[i].X
		if p.Value != want {
			t.Fatalf("resync point %d = %v, want the newest value %v", i, p.Value, want)
		}
	}
	if st := r.Stats(); st.Dropped == 0 || st.Resyncs < 2 {
		t.Fatalf("Stats = %+v, want dropped events and overflow resyncs counted", st)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for range s.Events() { // drains (at most the queued remainder), then closes
	}
}

// TestRegistryClose closes live subscriptions' channels and survives
// double close.
func TestRegistryClose(t *testing.T) {
	ev := &testEval{}
	r := NewRegistry(Config{}, ev.eval, testWinOf)
	a, err := r.Subscribe(context.Background(), tuple.CO2, []query.Request{{T: 10, X: 1, Y: 1}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Subscribe(context.Background(), tuple.CO, []query.Request{{T: 10, X: 1, Y: 1}})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // idempotent
	for range a.Events() {
	}
	for range b.Events() {
	}
	if _, err := r.Subscribe(context.Background(), tuple.CO2, []query.Request{{T: 10, X: 1, Y: 1}}); err == nil {
		t.Fatal("Subscribe after Close should fail")
	}
}

// TestSubscribeValidation rejects empty and oversized point sets,
// invalid points, and subscriptions beyond the registry bound.
func TestSubscribeValidation(t *testing.T) {
	ev := &testEval{}
	r := NewRegistry(Config{MaxSubs: 1, MaxPoints: 2}, ev.eval, testWinOf)
	defer r.Close()
	ctx := context.Background()

	if _, err := r.Subscribe(ctx, tuple.CO2, nil); err == nil {
		t.Fatal("empty point set accepted")
	}
	if _, err := r.Subscribe(ctx, tuple.CO2, make([]query.Request, 3)); err == nil {
		t.Fatal("oversized point set accepted")
	}
	if _, err := r.Subscribe(ctx, tuple.CO2, []query.Request{{T: math.NaN(), X: 1, Y: 1}}); err == nil {
		t.Fatal("NaN point accepted")
	}
	s, err := r.Subscribe(ctx, tuple.CO2, []query.Request{{T: 10, X: 1, Y: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := r.Subscribe(ctx, tuple.CO2, []query.Request{{T: 10, X: 1, Y: 1}}); !errors.Is(err, ErrTooManySubs) {
		t.Fatalf("beyond MaxSubs: err = %v, want ErrTooManySubs", err)
	}
}

// TestConcurrentInvalidations hammers the hook from several goroutines
// while a consumer drains — the -race exercise for the hook/worker/feed
// locking.
func TestConcurrentInvalidations(t *testing.T) {
	ev := &testEval{}
	r := NewRegistry(Config{QueueDepth: 4}, ev.eval, testWinOf)
	defer r.Close()

	s, err := r.Subscribe(context.Background(), tuple.CO2,
		[]query.Request{{T: 10, X: 1, Y: 1}, {T: 110, X: 2, Y: 2}})
	if err != nil {
		t.Fatal(err)
	}
	var consumed sync.WaitGroup
	consumed.Add(1)
	go func() {
		defer consumed.Done()
		for range s.Events() {
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ev.base.Add(1)
				r.Invalidated(tuple.CO2, (g+i)%3) // windows 0,1 overlap; 2 does not
			}
		}()
	}
	wg.Wait()
	r.Wait()
	st := r.Stats()
	if st.Matches == 0 || st.ReEvals == 0 {
		t.Fatalf("Stats = %+v, want matched invalidations and re-evaluations", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	consumed.Wait()
}
