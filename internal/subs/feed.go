// Package subs implements server-push continuous-query subscriptions:
// long-lived registrations of a point set (typically a commuter route)
// that re-evaluate incrementally when an overlapping model cover is
// invalidated and push deltas — changed points only, with sequence
// numbers — to a bounded per-subscription queue. The read-side push
// machinery stays physically separate from the ingest path: the ingest
// sink only marks windows dirty through the maintainer's invalidation
// hook; evaluation happens on the registry's own workers.
package subs

import (
	"errors"
	"sync"
)

// ErrClosed is returned by operations on a closed subscription or
// registry.
var ErrClosed = errors.New("subs: closed")

// PendingErr marks a point whose value has not been pushed yet (a
// cluster-merged subscription before the owner's first push arrives).
const PendingErr = "subs: value pending"

// PointValue is one point of a push event: the index into the
// subscribed point set plus either a value or an evaluation error.
type PointValue struct {
	Index int     `json:"i"`
	Value float64 `json:"value,omitempty"`
	Err   string  `json:"error,omitempty"`
}

// Event is one push. A delta carries only the points whose value (or
// error) changed since the last push. A resync carries every point and
// tells the consumer to discard cached state: it is sent as the initial
// snapshot, after a slow-consumer overflow dropped an event, and on
// explicit Snapshot calls. Err, when set, is a subscription-level
// condition (for example a dead shard owner) — point values outside the
// event stay valid but may go stale.
type Event struct {
	Seq    uint64       `json:"seq"`
	Resync bool         `json:"resync,omitempty"`
	Err    string       `json:"error,omitempty"`
	Points []PointValue `json:"points,omitempty"`
}

// Handle is the consumer side of a subscription, implemented both by
// the registry's local Subscription and by cluster-merged routed
// subscriptions.
type Handle interface {
	// ID is the server-assigned subscription ID.
	ID() uint64
	// Events is the push stream. It is closed by Close (and by registry
	// shutdown); a nil error close means a clean end of stream.
	Events() <-chan Event
	// Seq is the sequence number of the newest event produced so far.
	Seq() uint64
	// Snapshot returns the full current value vector as a resync event
	// carrying the current sequence number. It does not advance the
	// sequence, so a snapshot is idempotent and interleaves safely with
	// the event stream (skip queued events with Seq <= the snapshot's).
	Snapshot() Event
	// Close tears the subscription down and closes Events. It returns
	// ErrClosed if the subscription was already closed.
	Close() error
}

// pointState is the last pushed state of one point.
type pointState struct {
	val   float64
	err   string
	known bool
}

// feedCounters are per-feed push statistics, accumulated into the
// registry totals when the feed closes.
type feedCounters struct {
	Pushes      int64 // events enqueued (deltas, resyncs, errors)
	DeltaPoints int64 // point values carried by delta events
	Dropped     int64 // events dropped on slow consumers
	Resyncs     int64 // resync events enqueued
}

// Feed is a bounded push-event queue: the shared consumer-facing half
// of every subscription flavor. Producers offer value updates; when the
// consumer falls behind and the queue is full, the oldest queued event
// is dropped and the newest becomes a full resync so the consumer can
// never observe a silent gap.
type Feed struct {
	id      uint64
	ch      chan Event
	onClose func()

	mu     sync.Mutex
	last   []pointState
	seq    uint64
	closed bool
	ctr    feedCounters
}

// NewFeed builds a feed over points point slots with a queue depth of
// depth events (clamped to at least 1). onClose, if non-nil, runs once
// when the feed is closed, after the event channel closes.
func NewFeed(id uint64, points, depth int, onClose func()) *Feed {
	if depth < 1 {
		depth = 1
	}
	return &Feed{
		id:      id,
		ch:      make(chan Event, depth),
		onClose: onClose,
		last:    make([]pointState, points),
	}
}

// ID implements Handle.
func (f *Feed) ID() uint64 { return f.id }

// Events implements Handle.
func (f *Feed) Events() <-chan Event { return f.ch }

// Seq implements Handle.
func (f *Feed) Seq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// Len reports the number of point slots.
func (f *Feed) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.last)
}

// Snapshot implements Handle.
func (f *Feed) Snapshot() Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Event{Seq: f.seq, Resync: true, Points: f.snapshotLocked()}
}

func (f *Feed) snapshotLocked() []PointValue {
	pts := make([]PointValue, len(f.last))
	for i, st := range f.last {
		pts[i] = PointValue{Index: i, Value: st.val, Err: st.err}
		if !st.known {
			pts[i] = PointValue{Index: i, Err: PendingErr}
		}
	}
	return pts
}

// Prime seeds the full value vector and enqueues the initial resync
// event (sequence 1). It must be called once, before Apply.
func (f *Feed) Prime(points []PointValue) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	for _, p := range points {
		f.storeLocked(p)
	}
	f.seq++
	f.ctr.Resyncs++
	f.offerLocked(Event{Seq: f.seq, Resync: true, Points: f.snapshotLocked()})
}

// Apply updates the value vector with points and enqueues a delta event
// carrying only the entries whose value or error actually changed. An
// update where nothing changed produces no event.
func (f *Feed) Apply(points []PointValue) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	changed := points[:0:0]
	for _, p := range points {
		if f.storeLocked(p) {
			changed = append(changed, p)
		}
	}
	if len(changed) == 0 {
		return
	}
	f.seq++
	f.ctr.DeltaPoints += int64(len(changed))
	f.offerLocked(Event{Seq: f.seq, Points: changed})
}

// Fail enqueues a subscription-level error event (for example, a shard
// owner became unreachable). The feed stays open: other producers may
// still push values.
func (f *Feed) Fail(msg string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.seq++
	f.offerLocked(Event{Seq: f.seq, Err: msg})
}

// storeLocked records p and reports whether it changed the slot.
func (f *Feed) storeLocked(p PointValue) bool {
	if p.Index < 0 || p.Index >= len(f.last) {
		return false
	}
	st := &f.last[p.Index]
	if st.known && st.val == p.Value && st.err == p.Err {
		return false
	}
	*st = pointState{val: p.Value, err: p.Err, known: true}
	return true
}

// offerLocked enqueues ev, dropping the oldest queued event when the
// consumer is behind; the event sent after a drop is converted into a
// full resync so the consumer never misses state.
func (f *Feed) offerLocked(ev Event) {
	f.ctr.Pushes++
	select {
	case f.ch <- ev:
		return
	default:
	}
	// Queue full: drop the oldest, then send a full resync in place of
	// ev (the slot we freed makes this send non-blocking — the feed
	// mutex serializes producers and the consumer only drains).
	select {
	case <-f.ch:
		f.ctr.Dropped++
	default:
	}
	f.ctr.Resyncs++
	//lockcheck:allow audited drop-oldest: the slot freed above makes this send non-blocking
	f.ch <- Event{Seq: ev.Seq, Resync: true, Err: ev.Err, Points: f.snapshotLocked()}
}

// Close implements Handle.
func (f *Feed) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	f.closed = true
	close(f.ch)
	f.mu.Unlock()
	if f.onClose != nil {
		f.onClose()
	}
	return nil
}

// counters snapshots the feed's push statistics.
func (f *Feed) counters() feedCounters {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ctr
}
