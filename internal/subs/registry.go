package subs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/query"
	"repro/internal/tuple"
)

// ErrTooManySubs is returned when the registry's subscription bound is
// reached.
var ErrTooManySubs = errors.New("subs: too many subscriptions")

// Evaluator answers a batch of point queries for one pollutant. The
// engine's cover-backed batch path satisfies it; evaluating through the
// cover means a re-evaluation triggered by an invalidation implicitly
// joins (or performs) the rebuild of the dropped cover.
type Evaluator func(ctx context.Context, pol tuple.Pollutant, reqs []query.Request) ([]query.BatchResult, error)

// WindowFunc resolves the window length (seconds) for a pollutant, so
// the registry can bind each subscribed point to the window index its
// cover lives under. It returns an error for unserved pollutants.
type WindowFunc func(pol tuple.Pollutant) (float64, error)

// Config bounds the registry.
type Config struct {
	// QueueDepth is the per-subscription push-queue capacity in events.
	// When a slow consumer lets the queue fill, the oldest event is
	// dropped and the next delivery becomes a full resync. Default 16.
	QueueDepth int
	// Workers is the number of re-evaluation workers. Default 2.
	Workers int
	// MaxSubs bounds live subscriptions. Default 1024.
	MaxSubs int
	// MaxPoints bounds the point set of one subscription. Default 2048,
	// capped at 65535 (push frames index points with 16 bits).
	MaxPoints int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxSubs <= 0 {
		c.MaxSubs = 1024
	}
	if c.MaxPoints <= 0 {
		c.MaxPoints = 2048
	}
	if c.MaxPoints > math.MaxUint16 {
		c.MaxPoints = math.MaxUint16
	}
	return c
}

// Stats are the registry's lifetime counters. They are the evidence the
// acceptance tests and the closed-loop benchmark lean on: ReEvals and
// PointReEvals must stay flat across ingests that overlap no
// subscription, and Avoided counts the naive re-evaluations (every
// invalidation x every live subscription) that the window index made
// unnecessary.
type Stats struct {
	Active        int   `json:"active"`
	Subscribed    int64 `json:"subscribed"`
	Closed        int64 `json:"closed"`
	Invalidations int64 `json:"invalidations"`
	Matches       int64 `json:"matches"`
	Avoided       int64 `json:"avoided"`
	ReEvals       int64 `json:"reEvals"`
	PointReEvals  int64 `json:"pointReEvals"`
	Pushes        int64 `json:"pushes"`
	DeltaPoints   int64 `json:"deltaPoints"`
	Dropped       int64 `json:"dropped"`
	Resyncs       int64 `json:"resyncs"`
}

// winKey addresses one (pollutant, window) slot of the overlap index.
type winKey struct {
	pol tuple.Pollutant
	c   int
}

// Subscription is a live local subscription: the cached evaluation plan
// (the point set with each point bound to its window index) plus the
// push feed holding the last-pushed value vector. It implements Handle.
type Subscription struct {
	reg     *Registry
	pol     tuple.Pollutant
	points  []query.Request
	windows []int // plan: windows[i] is the window index of points[i]
	feed    *Feed

	// Guarded by reg.mu (shared with the invalidation hook, which must
	// never block the ingest path on per-subscription locks).
	dirty  map[int]struct{}
	queued bool
}

// ID implements Handle.
func (s *Subscription) ID() uint64 { return s.feed.ID() }

// Events implements Handle.
func (s *Subscription) Events() <-chan Event { return s.feed.Events() }

// Seq implements Handle.
func (s *Subscription) Seq() uint64 { return s.feed.Seq() }

// Snapshot implements Handle.
func (s *Subscription) Snapshot() Event { return s.feed.Snapshot() }

// Close implements Handle.
func (s *Subscription) Close() error { return s.feed.Close() }

// Pollutant returns the subscribed pollutant.
func (s *Subscription) Pollutant() tuple.Pollutant { return s.pol }

// Points returns the subscribed point set (not a copy; treat as
// read-only).
func (s *Subscription) Points() []query.Request { return s.points }

// Registry owns every local subscription of one engine. It hooks the
// maintainers' invalidation stream: an invalidated (pollutant, window)
// is looked up in the overlap index, matching subscriptions are marked
// dirty and queued, and worker goroutines re-evaluate only the dirty
// points before pushing deltas. Invalidations overlapping no
// subscription cost one map lookup and no evaluation.
type Registry struct {
	cfg    Config
	eval   Evaluator
	winOf  WindowFunc
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	work     *sync.Cond // signaled when queue gains work or on close
	quiet    *sync.Cond // signaled when queue drains and workers idle
	subs     map[uint64]*Subscription
	byWindow map[winKey]map[*Subscription]struct{}
	queue    []*Subscription
	inflight int
	nextID   uint64
	closed   bool
	wg       sync.WaitGroup

	// Lifetime counters (guarded by mu). done accumulates the feed
	// counters of closed subscriptions.
	subscribed, closedCount         int64
	invalidations, matches, avoided int64
	reEvals, pointReEvals           int64
	done                            feedCounters
}

// NewRegistry builds a registry and starts its workers. eval answers
// point batches; winOf binds points to window indexes.
func NewRegistry(cfg Config, eval Evaluator, winOf WindowFunc) *Registry {
	//ctxcheck:allow the registry owns its workers' lifetime; Close cancels this context
	ctx, cancel := context.WithCancel(context.Background())
	r := &Registry{
		cfg:      cfg.withDefaults(),
		eval:     eval,
		winOf:    winOf,
		ctx:      ctx,
		cancel:   cancel,
		subs:     make(map[uint64]*Subscription),
		byWindow: make(map[winKey]map[*Subscription]struct{}),
	}
	r.work = sync.NewCond(&r.mu)
	r.quiet = sync.NewCond(&r.mu)
	for i := 0; i < r.cfg.Workers; i++ {
		r.wg.Add(1)
		go r.worker()
	}
	return r
}

// Subscribe registers a point set for pol, evaluates the initial value
// vector, and returns the subscription with its first event — a full
// resync, sequence 1 — already queued.
func (r *Registry) Subscribe(ctx context.Context, pol tuple.Pollutant, points []query.Request) (*Subscription, error) {
	if len(points) == 0 {
		return nil, errors.New("subs: empty point set")
	}
	if len(points) > r.cfg.MaxPoints {
		return nil, fmt.Errorf("subs: %d points exceeds the %d-point bound", len(points), r.cfg.MaxPoints)
	}
	wlen, err := r.winOf(pol)
	if err != nil {
		return nil, err
	}
	reqs := make([]query.Request, len(points))
	windows := make([]int, len(points))
	for i, p := range points {
		p.Pollutant = pol
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("subs: point %d: %w", i, err)
		}
		reqs[i] = p
		windows[i] = tuple.WindowIndex(p.T, wlen)
	}
	initial, err := r.eval(ctx, pol, reqs)
	if err != nil {
		return nil, err
	}

	s := &Subscription{reg: r, pol: pol, points: reqs, windows: windows, dirty: make(map[int]struct{})}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if len(r.subs) >= r.cfg.MaxSubs {
		r.mu.Unlock()
		return nil, ErrTooManySubs
	}
	r.nextID++
	id := r.nextID
	s.feed = NewFeed(id, len(reqs), r.cfg.QueueDepth, func() { r.remove(s) })
	r.subs[id] = s
	for _, c := range windows {
		k := winKey{pol, c}
		set := r.byWindow[k]
		if set == nil {
			set = make(map[*Subscription]struct{})
			r.byWindow[k] = set
		}
		set[s] = struct{}{}
	}
	r.subscribed++
	r.mu.Unlock()

	s.feed.Prime(resultPoints(nil, initial))
	return s, nil
}

// Unsubscribe closes the subscription with the given ID, reporting
// whether it existed.
func (r *Registry) Unsubscribe(id uint64) bool {
	r.mu.Lock()
	s := r.subs[id]
	r.mu.Unlock()
	if s == nil {
		return false
	}
	return s.Close() == nil
}

// Get returns the live subscription with the given ID, or nil.
func (r *Registry) Get(id uint64) *Subscription {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.subs[id]
}

// remove drops s from the index (idempotent; runs from Feed.Close).
func (r *Registry) remove(s *Subscription) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.subs[s.ID()]; !ok {
		return
	}
	delete(r.subs, s.ID())
	for _, c := range s.windows {
		k := winKey{s.pol, c}
		if set := r.byWindow[k]; set != nil {
			delete(set, s)
			if len(set) == 0 {
				delete(r.byWindow, k)
			}
		}
	}
	ctr := s.feed.counters()
	r.done.Pushes += ctr.Pushes
	r.done.DeltaPoints += ctr.DeltaPoints
	r.done.Dropped += ctr.Dropped
	r.done.Resyncs += ctr.Resyncs
	r.closedCount++
}

// Invalidated is the maintainer hook: window c of pol was dropped by an
// ingest (or eviction). It only touches the overlap index and the work
// queue — never an evaluation — so it is safe to call from the ingest
// sink.
func (r *Registry) Invalidated(pol tuple.Pollutant, c int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.invalidations++
	set := r.byWindow[winKey{pol, c}]
	r.avoided += int64(len(r.subs) - len(set))
	for s := range set {
		r.matches++
		s.dirty[c] = struct{}{}
		if !s.queued {
			s.queued = true
			r.queue = append(r.queue, s)
			r.work.Signal()
		}
	}
}

// worker drains the dirty-subscription queue: swap out the dirty
// window set, re-evaluate only the points bound to those windows, and
// push the delta.
func (r *Registry) worker() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		for len(r.queue) == 0 && !r.closed {
			r.work.Wait()
		}
		if len(r.queue) == 0 && r.closed {
			r.mu.Unlock()
			return
		}
		s := r.queue[0]
		r.queue = r.queue[1:]
		s.queued = false
		dirty := s.dirty
		s.dirty = make(map[int]struct{})
		r.inflight++
		r.mu.Unlock()

		r.reevaluate(s, dirty)

		r.mu.Lock()
		r.inflight--
		if len(r.queue) == 0 && r.inflight == 0 {
			r.quiet.Broadcast()
		}
		r.mu.Unlock()
	}
}

// reevaluate runs the dirty points of s through the evaluator and
// applies the result to the feed (which filters unchanged points).
func (r *Registry) reevaluate(s *Subscription, dirty map[int]struct{}) {
	var idxs []int
	for i, c := range s.windows {
		if _, ok := dirty[c]; ok {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return
	}
	reqs := make([]query.Request, len(idxs))
	for j, i := range idxs {
		reqs[j] = s.points[i]
	}
	res, err := r.eval(r.ctx, s.pol, reqs)
	r.mu.Lock()
	r.reEvals++
	r.pointReEvals += int64(len(idxs))
	r.mu.Unlock()
	if err != nil {
		pts := make([]PointValue, len(idxs))
		for j, i := range idxs {
			pts[j] = PointValue{Index: i, Err: err.Error()}
		}
		s.feed.Apply(pts)
		return
	}
	s.feed.Apply(resultPoints(idxs, res))
}

// resultPoints converts batch results into point values. idxs maps
// result positions back to subscription point indexes (nil: identity).
func resultPoints(idxs []int, res []query.BatchResult) []PointValue {
	pts := make([]PointValue, len(res))
	for j, br := range res {
		i := j
		if idxs != nil {
			i = idxs[j]
		}
		pts[j] = PointValue{Index: i, Value: br.Value}
		if br.Err != nil {
			pts[j] = PointValue{Index: i, Err: br.Err.Error()}
		}
	}
	return pts
}

// Wait blocks until every queued re-evaluation has been applied. Tests
// and the closed-loop benchmark use it to quiesce between ingest
// rounds.
func (r *Registry) Wait() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for (len(r.queue) > 0 || r.inflight > 0) && !r.closed {
		r.quiet.Wait()
	}
}

// Stats snapshots the lifetime counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	st := Stats{
		Active:        len(r.subs),
		Subscribed:    r.subscribed,
		Closed:        r.closedCount,
		Invalidations: r.invalidations,
		Matches:       r.matches,
		Avoided:       r.avoided,
		ReEvals:       r.reEvals,
		PointReEvals:  r.pointReEvals,
		Pushes:        r.done.Pushes,
		DeltaPoints:   r.done.DeltaPoints,
		Dropped:       r.done.Dropped,
		Resyncs:       r.done.Resyncs,
	}
	live := make([]*Subscription, 0, len(r.subs))
	for _, s := range r.subs {
		live = append(live, s)
	}
	r.mu.Unlock()
	for _, s := range live {
		ctr := s.feed.counters()
		st.Pushes += ctr.Pushes
		st.DeltaPoints += ctr.DeltaPoints
		st.Dropped += ctr.Dropped
		st.Resyncs += ctr.Resyncs
	}
	return st
}

// Close tears the registry down: stops the workers, cancels in-flight
// evaluations, and closes every live subscription's event channel.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.queue = nil
	r.work.Broadcast()
	r.quiet.Broadcast()
	live := make([]*Subscription, 0, len(r.subs))
	for _, s := range r.subs {
		live = append(live, s)
	}
	r.mu.Unlock()
	r.cancel()
	r.wg.Wait()
	for _, s := range live {
		_ = s.Close()
	}
}
