package subs

import (
	"repro/internal/query"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// PushFromEvent converts a push event into its wire frame for
// subscription id.
func PushFromEvent(id uint64, ev Event) wire.Push {
	p := wire.Push{ID: id, Seq: ev.Seq, Resync: ev.Resync, Err: ev.Err}
	if len(ev.Points) > 0 {
		p.Points = make([]wire.PushPoint, len(ev.Points))
		for i, pt := range ev.Points {
			p.Points[i] = wire.PushPoint{Index: uint16(pt.Index), Value: pt.Value, Err: pt.Err}
		}
	}
	return p
}

// EventFromPush converts a received wire push back into an event.
func EventFromPush(p wire.Push) Event {
	ev := Event{Seq: p.Seq, Resync: p.Resync, Err: p.Err}
	if len(p.Points) > 0 {
		ev.Points = make([]PointValue, len(p.Points))
		for i, pt := range p.Points {
			ev.Points[i] = PointValue{Index: int(pt.Index), Value: pt.Value, Err: pt.Err}
		}
	}
	return ev
}

// RequestFromWire converts a wire subscribe request into the point set
// the registry takes.
func RequestFromWire(m wire.SubscribeRequest) []query.Request {
	pts := make([]query.Request, len(m.Points))
	for i, p := range m.Points {
		pts[i] = query.Request{T: p.T, X: p.X, Y: p.Y, Pollutant: m.Pollutant}
	}
	return pts
}

// WireFromRequests converts a point set into the wire subscribe
// request a router (or client) sends to a shard owner.
func WireFromRequests(pol tuple.Pollutant, pts []query.Request) wire.SubscribeRequest {
	m := wire.SubscribeRequest{Pollutant: pol, Points: make([]wire.SubPoint, len(pts))}
	for i, p := range pts {
		m.Points[i] = wire.SubPoint{T: p.T, X: p.X, Y: p.Y}
	}
	return m
}
