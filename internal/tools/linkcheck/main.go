// Command linkcheck verifies the relative links of markdown files: every
// `[text](target)` whose target is not an absolute URL or a pure
// fragment must resolve to an existing file (or directory) relative to
// the file containing it. CI runs it over README.md and docs/ so the
// documentation tree cannot silently rot.
//
// Usage:
//
//	go run ./internal/tools/linkcheck README.md docs
//
// Arguments are markdown files or directories (scanned recursively for
// *.md). Exits non-zero listing every broken link.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links. Reference-style links and
// autolinks are rare in this repo; inline links are the contract.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck <file-or-dir> ...")
		os.Exit(2)
	}
	var files []string
	for _, arg := range os.Args[1:] {
		info, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err == nil && !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return err
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
	}

	broken := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if !relative(target) {
					continue
				}
				// Drop a #fragment; the file is what must exist.
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
				if _, err := os.Stat(resolved); err != nil {
					fmt.Fprintf(os.Stderr, "%s:%d: broken link %q (%s)\n", file, i+1, m[1], resolved)
					broken++
				}
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

// relative reports whether a link target is a repo-relative path (as
// opposed to an absolute URL, a mailto, or a pure fragment).
func relative(target string) bool {
	if strings.HasPrefix(target, "#") {
		return false
	}
	if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
		return false
	}
	return true
}
