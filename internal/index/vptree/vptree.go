// Package vptree implements a vantage-point tree over point data — the
// second metric-space indexing baseline from the paper (§2.2; the original
// demo used a Python VP-tree). A VP-tree is a binary tree: each node picks
// a vantage point and a median distance threshold; points nearer than the
// threshold go to the inside subtree, the rest to the outside subtree.
// Radius queries prune subtrees with the triangle inequality.
//
// Like the historical Python implementation, the tree is built once over a
// window of tuples and is immutable afterwards; windows are rebuilt as the
// stream advances, so mutability buys nothing.
package vptree

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/geo"
)

// Item is the opaque payload stored with each indexed point.
type Item int64

// node is one VP-tree node. Each node owns exactly one point (its vantage
// point); the deliberately pointer-heavy binary structure mirrors the
// classic implementation whose memory footprint the paper measures in
// Figure 7(a).
type node struct {
	pt        geo.Point
	item      Item
	threshold float64 // median distance from pt to the points below it
	inside    *node   // points with dist(pt, ·) < threshold
	outside   *node   // points with dist(pt, ·) ≥ threshold
}

// Tree is an immutable vantage-point tree.
type Tree struct {
	root *node
	size int
}

// Build constructs a VP-tree over pts. pts and items must have equal
// length. The builder picks vantage points pseudo-randomly, seeded for
// reproducibility.
func Build(pts []geo.Point, items []Item) (*Tree, error) {
	if len(pts) != len(items) {
		return nil, fmt.Errorf("vptree: %d points vs %d items", len(pts), len(items))
	}
	recs := make([]rec, len(pts))
	for i := range pts {
		recs[i] = rec{pt: pts[i], item: items[i]}
	}
	rng := rand.New(rand.NewSource(0x5EED))
	return &Tree{root: build(recs, rng), size: len(pts)}, nil
}

type rec struct {
	pt   geo.Point
	item Item
	dist float64 // scratch: distance to the current vantage point
}

func build(recs []rec, rng *rand.Rand) *node {
	if len(recs) == 0 {
		return nil
	}
	// Choose a random vantage point and move it to the front.
	vi := rng.Intn(len(recs))
	recs[0], recs[vi] = recs[vi], recs[0]
	vp := recs[0]
	rest := recs[1:]
	if len(rest) == 0 {
		return &node{pt: vp.pt, item: vp.item}
	}
	for i := range rest {
		rest[i].dist = rest[i].pt.Dist(vp.pt)
	}
	// Median split. After quickselect, ties with the median may sit on
	// either side, so re-partition strictly: dist < threshold goes inside.
	// With heavy duplication the inside set may be empty, but the outside
	// set always shrinks (the vantage point was removed), so recursion
	// terminates.
	mid := len(rest) / 2
	selectNth(rest, mid)
	threshold := rest[mid].dist
	i := 0
	for j := range rest {
		if rest[j].dist < threshold {
			rest[i], rest[j] = rest[j], rest[i]
			i++
		}
	}
	return &node{
		pt:        vp.pt,
		item:      vp.item,
		threshold: threshold,
		inside:    build(rest[:i], rng),
		outside:   build(rest[i:], rng),
	}
}

// selectNth partially sorts recs so recs[n] holds the n-th smallest dist
// (quickselect).
func selectNth(recs []rec, n int) {
	lo, hi := 0, len(recs)-1
	for lo < hi {
		p := partition(recs, lo, hi)
		switch {
		case p == n:
			return
		case p < n:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
}

func partition(recs []rec, lo, hi int) int {
	// Median-of-three pivot to avoid quadratic behaviour on sorted input.
	mid := (lo + hi) / 2
	if recs[mid].dist < recs[lo].dist {
		recs[mid], recs[lo] = recs[lo], recs[mid]
	}
	if recs[hi].dist < recs[lo].dist {
		recs[hi], recs[lo] = recs[lo], recs[hi]
	}
	if recs[hi].dist < recs[mid].dist {
		recs[hi], recs[mid] = recs[mid], recs[hi]
	}
	pivot := recs[mid].dist
	recs[mid], recs[hi-1] = recs[hi-1], recs[mid]
	i := lo
	for j := lo; j < hi-1; j++ {
		if recs[j].dist < pivot {
			recs[i], recs[j] = recs[j], recs[i]
			i++
		}
	}
	recs[i], recs[hi-1] = recs[hi-1], recs[i]
	return i
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// SearchRadius visits every entry within radius meters of center.
// Returning false from visit stops the search early.
func (t *Tree) SearchRadius(center geo.Point, radius float64, visit func(pt geo.Point, item Item) bool) {
	if t.root == nil || radius < 0 {
		return
	}
	searchRadius(t.root, center, radius, visit)
}

func searchRadius(n *node, center geo.Point, radius float64, visit func(geo.Point, Item) bool) bool {
	if n == nil {
		return true
	}
	d := n.pt.Dist(center)
	if d <= radius {
		if !visit(n.pt, n.item) {
			return false
		}
	}
	// Triangle-inequality pruning: the inside ball holds points with
	// dist(vp, ·) < threshold, so it can only contain query matches when
	// d - radius < threshold; symmetrically for the outside shell.
	if d-radius < n.threshold {
		if !searchRadius(n.inside, center, radius, visit) {
			return false
		}
	}
	if d+radius >= n.threshold {
		if !searchRadius(n.outside, center, radius, visit) {
			return false
		}
	}
	return true
}

// Neighbor is a kNN result.
type Neighbor struct {
	Pt   geo.Point
	Item Item
	Dist float64
}

// Nearest returns the k entries closest to center in ascending distance
// order (fewer if the tree is smaller than k).
func (t *Tree) Nearest(center geo.Point, k int) []Neighbor {
	if t.root == nil || k <= 0 {
		return nil
	}
	var best []Neighbor
	tau := math.Inf(1)
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		d := n.pt.Dist(center)
		if d < tau || len(best) < k {
			best = append(best, Neighbor{n.pt, n.item, d})
			sort.Slice(best, func(i, j int) bool { return best[i].Dist < best[j].Dist })
			if len(best) > k {
				best = best[:k]
			}
			if len(best) == k {
				tau = best[k-1].Dist
			}
		}
		// Search the more promising side first.
		if d < n.threshold {
			walk(n.inside)
			if d+tau >= n.threshold {
				walk(n.outside)
			}
		} else {
			walk(n.outside)
			if d-tau < n.threshold {
				walk(n.inside)
			}
		}
	}
	walk(t.root)
	return best
}

// Depth returns the height of the tree (0 for an empty tree).
func (t *Tree) Depth() int {
	var depth func(n *node) int
	depth = func(n *node) int {
		if n == nil {
			return 0
		}
		di, do := depth(n.inside), depth(n.outside)
		if do > di {
			di = do
		}
		return 1 + di
	}
	return depth(t.root)
}

// CheckInvariants verifies the VP-tree partitioning invariant for every
// node: all inside descendants are strictly nearer than the threshold and
// all outside descendants at least as far.
func (t *Tree) CheckInvariants() error {
	count := 0
	var check func(n *node) error
	check = func(n *node) error {
		if n == nil {
			return nil
		}
		count++
		var verify func(sub *node, inside bool) error
		verify = func(sub *node, inside bool) error {
			if sub == nil {
				return nil
			}
			d := sub.pt.Dist(n.pt)
			if inside && d >= n.threshold {
				return fmt.Errorf("vptree: inside point at dist %v ≥ threshold %v", d, n.threshold)
			}
			if !inside && d < n.threshold {
				return fmt.Errorf("vptree: outside point at dist %v < threshold %v", d, n.threshold)
			}
			if err := verify(sub.inside, inside); err != nil {
				return err
			}
			return verify(sub.outside, inside)
		}
		if err := verify(n.inside, true); err != nil {
			return err
		}
		if err := verify(n.outside, false); err != nil {
			return err
		}
		if err := check(n.inside); err != nil {
			return err
		}
		return check(n.outside)
	}
	if err := check(t.root); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("vptree: size %d but %d nodes reachable", t.size, count)
	}
	return nil
}
