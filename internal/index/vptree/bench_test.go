package vptree

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
)

func BenchmarkSearchRadius5000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geo.Point, 5000)
	items := make([]Item, 5000)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
		items[i] = Item(i)
	}
	t, err := Build(pts, items)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]geo.Point, 1024)
	for i := range queries {
		queries[i] = geo.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		t.SearchRadius(queries[i%len(queries)], 1000, func(geo.Point, Item) bool {
			count++
			return true
		})
	}
}

func BenchmarkBuild5000(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]geo.Point, 5000)
	items := make([]Item, 5000)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
		items[i] = Item(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(pts, items); err != nil {
			b.Fatal(err)
		}
	}
}
