package vptree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

func randomPoints(rng *rand.Rand, n int) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
	}
	return pts
}

func seqItems(n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item(i)
	}
	return items
}

func buildTree(t *testing.T, pts []geo.Point) *Tree {
	t.Helper()
	tr, err := Build(pts, seqItems(len(pts)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]geo.Point{{X: 1}}, nil); err == nil {
		t.Error("expected length-mismatch error")
	}
	tr, err := Build(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Depth() != 0 {
		t.Errorf("empty tree Len=%d Depth=%d", tr.Len(), tr.Depth())
	}
	tr.SearchRadius(geo.Point{}, 100, func(geo.Point, Item) bool {
		t.Error("empty tree must not visit")
		return true
	})
	if nn := tr.Nearest(geo.Point{}, 3); nn != nil {
		t.Error("empty Nearest should be nil")
	}
}

func TestSinglePoint(t *testing.T) {
	tr := buildTree(t, []geo.Point{{X: 5, Y: 5}})
	if tr.Len() != 1 || tr.Depth() != 1 {
		t.Errorf("Len=%d Depth=%d", tr.Len(), tr.Depth())
	}
	found := 0
	tr.SearchRadius(geo.Point{X: 5, Y: 5}, 0, func(p geo.Point, it Item) bool {
		found++
		return true
	})
	if found != 1 {
		t.Errorf("found %d, want 1", found)
	}
}

func TestSearchRadiusMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 3000)
	tr := buildTree(t, pts)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 60; trial++ {
		center := geo.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
		radius := rng.Float64() * 2500
		want := map[Item]bool{}
		r2 := radius * radius
		for i, p := range pts {
			if p.Dist2(center) <= r2 {
				want[Item(i)] = true
			}
		}
		got := map[Item]bool{}
		tr.SearchRadius(center, radius, func(p geo.Point, it Item) bool {
			got[it] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
		for it := range want {
			if !got[it] {
				t.Fatalf("trial %d: missing %d", trial, it)
			}
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	pts := randomPoints(rand.New(rand.NewSource(2)), 200)
	tr := buildTree(t, pts)
	count := 0
	tr.SearchRadius(geo.Point{X: 5000, Y: 5000}, 1e9, func(p geo.Point, it Item) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("visited %d, want 5", count)
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(rng, 1500)
	tr := buildTree(t, pts)
	for trial := 0; trial < 30; trial++ {
		q := geo.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
		k := 1 + rng.Intn(12)
		nn := tr.Nearest(q, k)
		if len(nn) != k {
			t.Fatalf("got %d, want %d", len(nn), k)
		}
		ds := make([]float64, len(pts))
		for i, p := range pts {
			ds[i] = p.Dist(q)
		}
		sort.Float64s(ds)
		for i := 0; i < k; i++ {
			if diff := nn[i].Dist - ds[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d: neighbor %d dist %v, want %v", trial, i, nn[i].Dist, ds[i])
			}
		}
	}
}

func TestNearestKLargerThanTree(t *testing.T) {
	pts := randomPoints(rand.New(rand.NewSource(4)), 5)
	tr := buildTree(t, pts)
	nn := tr.Nearest(geo.Point{}, 50)
	if len(nn) != 5 {
		t.Errorf("got %d, want all 5", len(nn))
	}
	if !sort.SliceIsSorted(nn, func(i, j int) bool { return nn[i].Dist < nn[j].Dist }) {
		t.Error("not sorted")
	}
}

func TestDuplicatePoints(t *testing.T) {
	p := geo.Point{X: 3, Y: 3}
	pts := make([]geo.Point, 40)
	for i := range pts {
		pts[i] = p
	}
	tr := buildTree(t, pts)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	count := 0
	tr.SearchRadius(p, 0, func(q geo.Point, it Item) bool {
		count++
		return true
	})
	if count != 40 {
		t.Errorf("found %d duplicates, want 40", count)
	}
}

func TestDepthIsLogarithmicOnRandomData(t *testing.T) {
	pts := randomPoints(rand.New(rand.NewSource(5)), 4096)
	tr := buildTree(t, pts)
	// Median splits give depth ~log2(n)=12; allow slack for duplicates on
	// the boundary.
	if d := tr.Depth(); d < 12 || d > 30 {
		t.Errorf("depth = %d, want ~12..30", d)
	}
}

func TestInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomPoints(rng, 1+rng.Intn(400))
		tr, err := Build(pts, seqItems(len(pts)))
		if err != nil {
			return false
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRadiusZeroFindsExactPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := randomPoints(rng, 500)
	tr := buildTree(t, pts)
	for trial := 0; trial < 20; trial++ {
		i := rng.Intn(len(pts))
		found := false
		tr.SearchRadius(pts[i], 0, func(p geo.Point, it Item) bool {
			if it == Item(i) {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("exact point %d not found at radius 0", i)
		}
	}
}

func TestNegativeRadiusFindsNothing(t *testing.T) {
	tr := buildTree(t, randomPoints(rand.New(rand.NewSource(7)), 50))
	tr.SearchRadius(geo.Point{}, -1, func(geo.Point, Item) bool {
		t.Error("negative radius must not visit")
		return true
	})
}
