package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

func randomPoints(rng *rand.Rand, n int) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
	}
	return pts
}

// bruteRadius returns the item set within radius of center, by brute force.
func bruteRadius(pts []geo.Point, center geo.Point, radius float64) map[Item]bool {
	out := map[Item]bool{}
	r2 := radius * radius
	for i, p := range pts {
		if p.Dist2(center) <= r2 {
			out[Item(i)] = true
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(3); err == nil {
		t.Error("expected error for maxEntries < 4")
	}
	tr, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Errorf("new tree Len = %d", tr.Len())
	}
	if _, ok := tr.Bounds(); ok {
		t.Error("empty tree should have no bounds")
	}
}

func TestInsertAndSearchSmall(t *testing.T) {
	tr, _ := New(4)
	pts := []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 10}, {X: 10, Y: 10}, {X: 5, Y: 5}}
	for i, p := range pts {
		tr.Insert(p, Item(i))
	}
	if tr.Len() != 5 {
		t.Fatalf("Len = %d, want 5", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var got []Item
	tr.SearchRadius(geo.Point{X: 5, Y: 5}, 7.1, func(p geo.Point, it Item) bool {
		got = append(got, it)
		return true
	})
	if len(got) != 5 {
		t.Errorf("radius 7.1 found %d, want 5 (corner dist ≈ 7.07)", len(got))
	}
	got = nil
	tr.SearchRadius(geo.Point{X: 5, Y: 5}, 1, func(p geo.Point, it Item) bool {
		got = append(got, it)
		return true
	})
	if len(got) != 1 || got[0] != 4 {
		t.Errorf("radius 1 found %v, want [4]", got)
	}
}

func TestInsertManyMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 2000)
	tr, _ := New(DefaultMaxEntries)
	for i, p := range pts {
		tr.Insert(p, Item(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		center := geo.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
		radius := rng.Float64() * 2000
		want := bruteRadius(pts, center, radius)
		got := map[Item]bool{}
		tr.SearchRadius(center, radius, func(p geo.Point, it Item) bool {
			got[it] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d items, want %d", trial, len(got), len(want))
		}
		for it := range want {
			if !got[it] {
				t.Fatalf("trial %d: missing item %d", trial, it)
			}
		}
	}
}

func TestBulkMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randomPoints(rng, 3000)
	items := make([]Item, len(pts))
	for i := range items {
		items[i] = Item(i)
	}
	tr, err := Bulk(pts, items, DefaultMaxEntries)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(pts) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(pts))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		center := geo.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
		radius := 100 + rng.Float64()*3000
		want := bruteRadius(pts, center, radius)
		got := map[Item]bool{}
		tr.SearchRadius(center, radius, func(p geo.Point, it Item) bool {
			got[it] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d items, want %d", trial, len(got), len(want))
		}
	}
}

func TestBulkErrorsAndEmpty(t *testing.T) {
	if _, err := Bulk([]geo.Point{{X: 1}}, nil, 8); err == nil {
		t.Error("expected length-mismatch error")
	}
	tr, err := Bulk(nil, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Errorf("empty bulk Len = %d", tr.Len())
	}
	tr.SearchRadius(geo.Point{}, 100, func(geo.Point, Item) bool {
		t.Error("empty tree must not visit")
		return true
	})
}

func TestSearchRect(t *testing.T) {
	tr, _ := New(4)
	for i := 0; i < 100; i++ {
		tr.Insert(geo.Point{X: float64(i), Y: float64(i)}, Item(i))
	}
	var got []Item
	tr.SearchRect(geo.Rect{Min: geo.Point{X: 10, Y: 10}, Max: geo.Point{X: 20, Y: 20}},
		func(p geo.Point, it Item) bool {
			got = append(got, it)
			return true
		})
	if len(got) != 11 {
		t.Errorf("rect search found %d, want 11 (10..20 inclusive)", len(got))
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr, _ := New(4)
	for i := 0; i < 100; i++ {
		tr.Insert(geo.Point{X: float64(i % 10), Y: float64(i / 10)}, Item(i))
	}
	count := 0
	tr.SearchRadius(geo.Point{X: 5, Y: 5}, 100, func(p geo.Point, it Item) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Errorf("early stop visited %d, want 7", count)
	}
	count = 0
	tr.SearchRect(geo.Rect{Min: geo.Point{}, Max: geo.Point{X: 100, Y: 100}}, func(p geo.Point, it Item) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("rect early stop visited %d, want 3", count)
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(rng, 500)
	tr, _ := New(8)
	for i, p := range pts {
		tr.Insert(p, Item(i))
	}
	// Delete every third point.
	deleted := map[Item]bool{}
	for i := 0; i < len(pts); i += 3 {
		if !tr.Delete(pts[i], Item(i)) {
			t.Fatalf("Delete(%d) returned false", i)
		}
		deleted[Item(i)] = true
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	wantLen := len(pts) - len(deleted)
	if tr.Len() != wantLen {
		t.Fatalf("Len = %d, want %d", tr.Len(), wantLen)
	}
	// Deleted items must be gone; survivors must be findable.
	got := map[Item]bool{}
	tr.SearchRadius(geo.Point{X: 5000, Y: 5000}, 1e9, func(p geo.Point, it Item) bool {
		got[it] = true
		return true
	})
	if len(got) != wantLen {
		t.Fatalf("full scan found %d, want %d", len(got), wantLen)
	}
	for it := range deleted {
		if got[it] {
			t.Fatalf("deleted item %d still present", it)
		}
	}
	// Deleting a missing entry returns false.
	if tr.Delete(geo.Point{X: -1, Y: -1}, 9999) {
		t.Error("Delete of absent entry returned true")
	}
}

func TestDeleteAll(t *testing.T) {
	tr, _ := New(4)
	pts := randomPoints(rand.New(rand.NewSource(4)), 200)
	for i, p := range pts {
		tr.Insert(p, Item(i))
	}
	for i, p := range pts {
		if !tr.Delete(p, Item(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after deleting all", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Tree remains usable.
	tr.Insert(geo.Point{X: 1, Y: 1}, 7)
	found := false
	tr.SearchRadius(geo.Point{X: 1, Y: 1}, 1, func(p geo.Point, it Item) bool {
		found = it == 7
		return true
	})
	if !found {
		t.Error("reinserted item not found")
	}
}

func TestNearest(t *testing.T) {
	tr, _ := New(8)
	for i := 0; i < 100; i++ {
		tr.Insert(geo.Point{X: float64(i * 10), Y: 0}, Item(i))
	}
	nn := tr.Nearest(geo.Point{X: 42, Y: 0}, 3)
	if len(nn) != 3 {
		t.Fatalf("got %d neighbors, want 3", len(nn))
	}
	if nn[0].Item != 4 { // x=40 is closest to 42
		t.Errorf("nearest = %d, want 4", nn[0].Item)
	}
	if nn[1].Item != 5 || nn[2].Item != 3 {
		t.Errorf("order = %d,%d want 5,3", nn[1].Item, nn[2].Item)
	}
	if !sort.SliceIsSorted(nn, func(i, j int) bool { return nn[i].Dist < nn[j].Dist }) {
		t.Error("neighbors not sorted by distance")
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 1000)
	tr, _ := New(DefaultMaxEntries)
	for i, p := range pts {
		tr.Insert(p, Item(i))
	}
	for trial := 0; trial < 20; trial++ {
		q := geo.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
		k := 1 + rng.Intn(10)
		nn := tr.Nearest(q, k)
		if len(nn) != k {
			t.Fatalf("got %d, want %d", len(nn), k)
		}
		// Brute force k-th distance.
		ds := make([]float64, len(pts))
		for i, p := range pts {
			ds[i] = p.Dist(q)
		}
		sort.Float64s(ds)
		for i := 0; i < k; i++ {
			if diff := nn[i].Dist - ds[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d: neighbor %d dist %v, want %v", trial, i, nn[i].Dist, ds[i])
			}
		}
	}
}

func TestNearestEdgeCases(t *testing.T) {
	tr, _ := New(4)
	if nn := tr.Nearest(geo.Point{}, 5); nn != nil {
		t.Error("empty tree should return nil")
	}
	tr.Insert(geo.Point{X: 1}, 1)
	if nn := tr.Nearest(geo.Point{}, 0); nn != nil {
		t.Error("k=0 should return nil")
	}
	nn := tr.Nearest(geo.Point{}, 10)
	if len(nn) != 1 {
		t.Errorf("k > size should return all %d", len(nn))
	}
}

func TestDuplicatePoints(t *testing.T) {
	tr, _ := New(4)
	p := geo.Point{X: 5, Y: 5}
	for i := 0; i < 50; i++ {
		tr.Insert(p, Item(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	count := 0
	tr.SearchRadius(p, 0, func(q geo.Point, it Item) bool {
		count++
		return true
	})
	if count != 50 {
		t.Errorf("found %d duplicates, want 50", count)
	}
	if !tr.Delete(p, 25) {
		t.Error("failed to delete one duplicate")
	}
	if tr.Len() != 49 {
		t.Errorf("Len = %d, want 49", tr.Len())
	}
}

func TestInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(500)
		pts := randomPoints(rng, n)
		tr, _ := New(4 + rng.Intn(12))
		for i, p := range pts {
			tr.Insert(p, Item(i))
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		// Random deletions.
		for i := 0; i < n/2; i++ {
			tr.Delete(pts[i], Item(i))
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDepthGrowsLogarithmically(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr, _ := New(8)
	for i, p := range randomPoints(rng, 5000) {
		tr.Insert(p, Item(i))
	}
	if d := tr.Depth(); d < 3 || d > 10 {
		t.Errorf("depth = %d for 5000 points at fanout 8; expected 3..10", d)
	}
}
