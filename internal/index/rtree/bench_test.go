package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
)

func benchTree(b *testing.B, n int) (*Tree, []geo.Point) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	pts := make([]geo.Point, n)
	items := make([]Item, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
		items[i] = Item(i)
	}
	t, err := Bulk(pts, items, DefaultMaxEntries)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]geo.Point, 1024)
	for i := range queries {
		queries[i] = geo.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
	}
	return t, queries
}

func BenchmarkSearchRadius5000(b *testing.B) {
	t, qs := benchTree(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		t.SearchRadius(qs[i%len(qs)], 1000, func(geo.Point, Item) bool {
			count++
			return true
		})
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	t, err := New(DefaultMaxEntries)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(geo.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}, Item(i))
	}
}

func BenchmarkBulkLoad5000(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]geo.Point, 5000)
	items := make([]Item, 5000)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
		items[i] = Item(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Bulk(pts, items, DefaultMaxEntries); err != nil {
			b.Fatal(err)
		}
	}
}
