// Package rtree implements an in-memory R-tree over point data, the
// classic Guttman design with quadratic split. It is one of the two metric
// space indexing baselines the paper evaluates against the model cover
// (§2.2 "Metric Space Indexing"; the original demo used the Python
// `pyrtree` package).
//
// The tree indexes tuple positions and stores an opaque integer item per
// entry (the tuple's offset in its window), supporting insertion, deletion,
// rectangular range search, radius search, and k-nearest-neighbor search,
// plus a bulk Sort-Tile-Recursive loader for building an index over a full
// window at once.
package rtree

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
)

// DefaultMaxEntries is the default node fan-out M.
const DefaultMaxEntries = 16

// Item is the opaque payload stored with each indexed point.
type Item int64

// entry is a leaf-level (point, item) pair.
type entry struct {
	pt   geo.Point
	item Item
}

// node is an R-tree node. Leaves hold entries; internal nodes hold children.
type node struct {
	rect     geo.Rect
	leaf     bool
	entries  []entry // leaf only
	children []*node // internal only
}

// Tree is an R-tree over points. The zero value is not usable; call New
// or Bulk.
type Tree struct {
	root       *node
	size       int
	maxEntries int
	minEntries int
}

// New returns an empty tree with the given maximum node fan-out. maxEntries
// must be at least 4; the minimum fill is max/2 as in Guttman's paper.
func New(maxEntries int) (*Tree, error) {
	if maxEntries < 4 {
		return nil, fmt.Errorf("rtree: maxEntries = %d, want ≥ 4", maxEntries)
	}
	return &Tree{
		root:       &node{leaf: true},
		maxEntries: maxEntries,
		minEntries: maxEntries / 2,
	}, nil
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// Bounds returns the bounding box of all indexed points. ok is false for an
// empty tree.
func (t *Tree) Bounds() (geo.Rect, bool) {
	if t.size == 0 {
		return geo.Rect{}, false
	}
	return t.root.rect, true
}

// Insert adds a point with its item to the tree.
func (t *Tree) Insert(pt geo.Point, item Item) {
	leaf := t.chooseLeaf(t.root, pt)
	leaf.entries = append(leaf.entries, entry{pt, item})
	t.size++
	t.adjustUpward(leaf, pt)
}

// chooseLeaf descends from n to the leaf whose rectangle needs the least
// enlargement to include pt, breaking ties by smaller area.
func (t *Tree) chooseLeaf(n *node, pt geo.Point) *node {
	path := t.pathToLeaf(n, pt)
	return path[len(path)-1]
}

// pathToLeaf returns the root-to-leaf path chosen for pt.
func (t *Tree) pathToLeaf(n *node, pt geo.Point) []*node {
	path := []*node{n}
	for !n.leaf {
		var best *node
		bestEnlarge := math.Inf(1)
		bestArea := math.Inf(1)
		for _, c := range n.children {
			area := c.rect.Area()
			enlarged := c.rect.ExpandToPoint(pt).Area() - area
			if enlarged < bestEnlarge || (enlarged == bestEnlarge && area < bestArea) {
				best, bestEnlarge, bestArea = c, enlarged, area
			}
		}
		n = best
		path = append(path, n)
	}
	return path
}

// adjustUpward grows rectangles on the path to the inserted point and
// splits overflowing nodes bottom-up.
func (t *Tree) adjustUpward(leaf *node, pt geo.Point) {
	// Recompute the insertion path (parent pointers are not stored; the
	// tree is shallow, so a fresh descent is cheap and keeps nodes lean,
	// which matters for the paper's memory experiment).
	path := t.pathToLeaf(t.root, pt)
	// The descent may not end at the exact leaf if rectangles tie, so force
	// the final element. In practice chooseLeaf and pathToLeaf agree because
	// both are deterministic over identical state.
	path[len(path)-1] = leaf
	for _, n := range path {
		if n.leaf && len(n.entries) > 0 {
			n.rect = rectOfEntries(n.entries)
		} else if !n.leaf {
			n.rect = n.rect.ExpandToPoint(pt)
		}
	}
	// Split bottom-up.
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if n.overflow(t.maxEntries) {
			left, right := t.split(n)
			if i == 0 {
				// Root split: grow the tree.
				t.root = &node{
					leaf:     false,
					children: []*node{left, right},
					rect:     left.rect.Union(right.rect),
				}
			} else {
				parent := path[i-1]
				replaceChild(parent, n, left, right)
				parent.rect = rectOfChildren(parent.children)
			}
		}
	}
	// Tighten rectangles along the path (after splits the stored path may
	// reference stale nodes, so recompute from the root).
	tighten(t.root)
}

func (n *node) overflow(max int) bool {
	if n.leaf {
		return len(n.entries) > max
	}
	return len(n.children) > max
}

func replaceChild(parent, old, a, b *node) {
	for i, c := range parent.children {
		if c == old {
			parent.children[i] = a
			parent.children = append(parent.children, b)
			return
		}
	}
	// Not found: should not happen; append both defensively.
	parent.children = append(parent.children, a, b)
}

// tighten recomputes rectangles bottom-up. It is O(n) but only runs after
// a split-containing insertion; for bulk construction use Bulk.
func tighten(n *node) geo.Rect {
	if n.leaf {
		if len(n.entries) > 0 {
			n.rect = rectOfEntries(n.entries)
		}
		return n.rect
	}
	r := tighten(n.children[0])
	for _, c := range n.children[1:] {
		r = r.Union(tighten(c))
	}
	n.rect = r
	return r
}

func rectOfEntries(es []entry) geo.Rect {
	r := geo.Rect{Min: es[0].pt, Max: es[0].pt}
	for _, e := range es[1:] {
		r = r.ExpandToPoint(e.pt)
	}
	return r
}

func rectOfChildren(cs []*node) geo.Rect {
	r := cs[0].rect
	for _, c := range cs[1:] {
		r = r.Union(c.rect)
	}
	return r
}

// split partitions an overflowing node with Guttman's quadratic split.
func (t *Tree) split(n *node) (*node, *node) {
	if n.leaf {
		return t.splitLeaf(n)
	}
	return t.splitInternal(n)
}

func (t *Tree) splitLeaf(n *node) (*node, *node) {
	es := n.entries
	// Pick seeds: the pair wasting the most area.
	i1, i2 := quadraticSeeds(len(es), func(i, j int) float64 {
		r := geo.Rect{Min: es[i].pt, Max: es[i].pt}.ExpandToPoint(es[j].pt)
		return r.Area()
	})
	left := &node{leaf: true, entries: []entry{es[i1]}, rect: geo.Rect{Min: es[i1].pt, Max: es[i1].pt}}
	right := &node{leaf: true, entries: []entry{es[i2]}, rect: geo.Rect{Min: es[i2].pt, Max: es[i2].pt}}
	for k, e := range es {
		if k == i1 || k == i2 {
			continue
		}
		assignEntry(left, right, e, t.minEntries, len(es)-k)
	}
	return left, right
}

func (t *Tree) splitInternal(n *node) (*node, *node) {
	cs := n.children
	i1, i2 := quadraticSeeds(len(cs), func(i, j int) float64 {
		return cs[i].rect.Union(cs[j].rect).Area() - cs[i].rect.Area() - cs[j].rect.Area()
	})
	left := &node{children: []*node{cs[i1]}, rect: cs[i1].rect}
	right := &node{children: []*node{cs[i2]}, rect: cs[i2].rect}
	for k, c := range cs {
		if k == i1 || k == i2 {
			continue
		}
		assignChild(left, right, c, t.minEntries, len(cs)-k)
	}
	return left, right
}

// quadraticSeeds returns the index pair maximizing the waste function.
func quadraticSeeds(n int, waste func(i, j int) float64) (int, int) {
	bi, bj := 0, 1
	best := math.Inf(-1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if w := waste(i, j); w > best {
				best, bi, bj = w, i, j
			}
		}
	}
	return bi, bj
}

func assignEntry(left, right *node, e entry, minFill, remaining int) {
	// Force assignment if one side must take everything left to reach the
	// minimum fill.
	if len(left.entries)+remaining <= minFill {
		left.entries = append(left.entries, e)
		left.rect = left.rect.ExpandToPoint(e.pt)
		return
	}
	if len(right.entries)+remaining <= minFill {
		right.entries = append(right.entries, e)
		right.rect = right.rect.ExpandToPoint(e.pt)
		return
	}
	dl := left.rect.ExpandToPoint(e.pt).Area() - left.rect.Area()
	dr := right.rect.ExpandToPoint(e.pt).Area() - right.rect.Area()
	if dl < dr || (dl == dr && len(left.entries) <= len(right.entries)) {
		left.entries = append(left.entries, e)
		left.rect = left.rect.ExpandToPoint(e.pt)
	} else {
		right.entries = append(right.entries, e)
		right.rect = right.rect.ExpandToPoint(e.pt)
	}
}

func assignChild(left, right *node, c *node, minFill, remaining int) {
	if len(left.children)+remaining <= minFill {
		left.children = append(left.children, c)
		left.rect = left.rect.Union(c.rect)
		return
	}
	if len(right.children)+remaining <= minFill {
		right.children = append(right.children, c)
		right.rect = right.rect.Union(c.rect)
		return
	}
	dl := left.rect.Union(c.rect).Area() - left.rect.Area()
	dr := right.rect.Union(c.rect).Area() - right.rect.Area()
	if dl < dr || (dl == dr && len(left.children) <= len(right.children)) {
		left.children = append(left.children, c)
		left.rect = left.rect.Union(c.rect)
	} else {
		right.children = append(right.children, c)
		right.rect = right.rect.Union(c.rect)
	}
}

// Delete removes one entry matching (pt, item). It reports whether an entry
// was removed. Underflowing nodes are handled by re-inserting orphaned
// entries (Guttman's CondenseTree simplified for point data).
func (t *Tree) Delete(pt geo.Point, item Item) bool {
	leafPath := findLeaf(t.root, nil, pt, item)
	if leafPath == nil {
		return false
	}
	leaf := leafPath[len(leafPath)-1]
	for i, e := range leaf.entries {
		if e.pt == pt && e.item == item {
			leaf.entries = append(leaf.entries[:i], leaf.entries[i+1:]...)
			break
		}
	}
	t.size--

	// Condense: collect orphans from underflowing nodes bottom-up.
	var orphans []entry
	for i := len(leafPath) - 1; i >= 1; i-- {
		n := leafPath[i]
		parent := leafPath[i-1]
		under := (n.leaf && len(n.entries) < t.minEntries) ||
			(!n.leaf && len(n.children) < t.minEntries)
		if under {
			removeChild(parent, n)
			collectEntries(n, &orphans)
		}
	}
	tighten(t.root)
	// Shrink the root if it lost all but one child.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if !t.root.leaf && len(t.root.children) == 0 {
		t.root = &node{leaf: true}
	}
	// Re-insert orphans without double counting.
	for _, e := range orphans {
		t.size--
		t.Insert(e.pt, e.item)
	}
	return true
}

func removeChild(parent, child *node) {
	for i, c := range parent.children {
		if c == child {
			parent.children = append(parent.children[:i], parent.children[i+1:]...)
			return
		}
	}
}

func collectEntries(n *node, out *[]entry) {
	if n.leaf {
		*out = append(*out, n.entries...)
		return
	}
	for _, c := range n.children {
		collectEntries(c, out)
	}
}

// findLeaf returns the root-to-leaf path to a leaf containing (pt, item),
// or nil if absent.
func findLeaf(n *node, path []*node, pt geo.Point, item Item) []*node {
	path = append(path, n)
	if n.leaf {
		for _, e := range n.entries {
			if e.pt == pt && e.item == item {
				return path
			}
		}
		return nil
	}
	for _, c := range n.children {
		if c.rect.Contains(pt) {
			if found := findLeaf(c, path, pt, item); found != nil {
				return found
			}
		}
	}
	return nil
}

// SearchRect visits every entry whose point lies in r. Returning false from
// visit stops the search early.
func (t *Tree) SearchRect(r geo.Rect, visit func(pt geo.Point, item Item) bool) {
	if t.size == 0 {
		return
	}
	searchRect(t.root, r, visit)
}

func searchRect(n *node, r geo.Rect, visit func(geo.Point, Item) bool) bool {
	if !n.rect.Intersects(r) {
		return true
	}
	if n.leaf {
		for _, e := range n.entries {
			if r.Contains(e.pt) {
				if !visit(e.pt, e.item) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !searchRect(c, r, visit) {
			return false
		}
	}
	return true
}

// SearchRadius visits every entry within radius meters of center. This is
// the query the paper's indexed method issues: find the raw tuples within
// r of the query position (§2.2).
func (t *Tree) SearchRadius(center geo.Point, radius float64, visit func(pt geo.Point, item Item) bool) {
	if t.size == 0 || radius < 0 {
		return
	}
	r2 := radius * radius
	box := geo.CircleRect(center, radius)
	searchRadius(t.root, center, radius, r2, box, visit)
}

func searchRadius(n *node, center geo.Point, radius, r2 float64, box geo.Rect, visit func(geo.Point, Item) bool) bool {
	if !n.rect.Intersects(box) || n.rect.DistToPoint(center) > radius {
		return true
	}
	if n.leaf {
		for _, e := range n.entries {
			if e.pt.Dist2(center) <= r2 {
				if !visit(e.pt, e.item) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !searchRadius(c, center, radius, r2, box, visit) {
			return false
		}
	}
	return true
}

// Neighbor is a kNN result.
type Neighbor struct {
	Pt   geo.Point
	Item Item
	Dist float64
}

// Nearest returns the k entries closest to center, ordered by ascending
// distance. Fewer are returned if the tree holds fewer than k entries.
func (t *Tree) Nearest(center geo.Point, k int) []Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	// Best-first branch-and-bound with a simple sorted result set: k is
	// small in all our workloads.
	var best []Neighbor
	worst := func() float64 {
		if len(best) < k {
			return math.Inf(1)
		}
		return best[len(best)-1].Dist
	}
	var walk func(n *node)
	walk = func(n *node) {
		if n.rect.DistToPoint(center) > worst() {
			return
		}
		if n.leaf {
			for _, e := range n.entries {
				d := e.pt.Dist(center)
				if d >= worst() {
					continue
				}
				best = append(best, Neighbor{e.pt, e.item, d})
				sort.Slice(best, func(i, j int) bool { return best[i].Dist < best[j].Dist })
				if len(best) > k {
					best = best[:k]
				}
			}
			return
		}
		// Visit children closest-first for better pruning.
		order := make([]*node, len(n.children))
		copy(order, n.children)
		sort.Slice(order, func(i, j int) bool {
			return order[i].rect.DistToPoint(center) < order[j].rect.DistToPoint(center)
		})
		for _, c := range order {
			walk(c)
		}
	}
	walk(t.root)
	return best
}

// Bulk builds a tree over the given points and items using the
// Sort-Tile-Recursive (STR) packing algorithm, producing a tree with near
// 100% node utilization. pts and items must have equal length.
func Bulk(pts []geo.Point, items []Item, maxEntries int) (*Tree, error) {
	if len(pts) != len(items) {
		return nil, fmt.Errorf("rtree: %d points vs %d items", len(pts), len(items))
	}
	t, err := New(maxEntries)
	if err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return t, nil
	}
	es := make([]entry, len(pts))
	for i := range pts {
		es[i] = entry{pts[i], items[i]}
	}
	leaves := strPack(es, maxEntries)
	level := leaves
	for len(level) > 1 {
		level = strPackNodes(level, maxEntries)
	}
	t.root = level[0]
	t.size = len(pts)
	return t, nil
}

// strPack tiles entries into leaves of up to max entries each.
func strPack(es []entry, max int) []*node {
	n := len(es)
	numLeaves := (n + max - 1) / max
	s := int(math.Ceil(math.Sqrt(float64(numLeaves)))) // vertical slices
	sort.Slice(es, func(i, j int) bool { return es[i].pt.X < es[j].pt.X })
	sliceSize := s * max
	var leaves []*node
	for start := 0; start < n; start += sliceSize {
		end := start + sliceSize
		if end > n {
			end = n
		}
		slice := es[start:end]
		sort.Slice(slice, func(i, j int) bool { return slice[i].pt.Y < slice[j].pt.Y })
		for ls := 0; ls < len(slice); ls += max {
			le := ls + max
			if le > len(slice) {
				le = len(slice)
			}
			leafEntries := make([]entry, le-ls)
			copy(leafEntries, slice[ls:le])
			leaves = append(leaves, &node{
				leaf:    true,
				entries: leafEntries,
				rect:    rectOfEntries(leafEntries),
			})
		}
	}
	return leaves
}

// strPackNodes tiles child nodes into parents of up to max children each.
func strPackNodes(children []*node, max int) []*node {
	n := len(children)
	numParents := (n + max - 1) / max
	s := int(math.Ceil(math.Sqrt(float64(numParents))))
	sort.Slice(children, func(i, j int) bool {
		return children[i].rect.Center().X < children[j].rect.Center().X
	})
	sliceSize := s * max
	var parents []*node
	for start := 0; start < n; start += sliceSize {
		end := start + sliceSize
		if end > n {
			end = n
		}
		slice := children[start:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].rect.Center().Y < slice[j].rect.Center().Y
		})
		for ls := 0; ls < len(slice); ls += max {
			le := ls + max
			if le > len(slice) {
				le = len(slice)
			}
			kids := make([]*node, le-ls)
			copy(kids, slice[ls:le])
			parents = append(parents, &node{
				children: kids,
				rect:     rectOfChildren(kids),
			})
		}
	}
	return parents
}

// Depth returns the height of the tree (1 for a single leaf).
func (t *Tree) Depth() int {
	d := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		d++
	}
	return d
}

// CheckInvariants verifies structural invariants; it is used by tests and
// returns a descriptive error on the first violation found.
func (t *Tree) CheckInvariants() error {
	count, err := checkNode(t.root, t.maxEntries, true)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: size %d but %d entries reachable", t.size, count)
	}
	return nil
}

func checkNode(n *node, max int, isRoot bool) (int, error) {
	if n.leaf {
		if len(n.entries) > max {
			return 0, fmt.Errorf("rtree: leaf with %d > %d entries", len(n.entries), max)
		}
		for _, e := range n.entries {
			if !n.rect.Contains(e.pt) {
				return 0, errors.New("rtree: leaf rect does not contain entry")
			}
		}
		return len(n.entries), nil
	}
	if len(n.children) == 0 {
		return 0, errors.New("rtree: internal node with no children")
	}
	if len(n.children) > max {
		return 0, fmt.Errorf("rtree: internal node with %d > %d children", len(n.children), max)
	}
	total := 0
	for _, c := range n.children {
		if !n.rect.Intersects(c.rect) || n.rect.Union(c.rect) != n.rect {
			return 0, errors.New("rtree: child rect escapes parent rect")
		}
		sub, err := checkNode(c, max, false)
		if err != nil {
			return 0, err
		}
		total += sub
	}
	return total, nil
}
