// Package geo provides the geographic primitives used throughout
// EnviroMeter: WGS84 coordinates, a local metric projection suitable for
// city-scale regions (the paper's region R is the city of Lausanne),
// great-circle distances, bounding boxes, and polylines used to model bus
// routes.
//
// All query processing in the paper operates on planar positions (x_i, y_i)
// with metric radii (r = 1 km), so sensor positions are projected once at
// ingestion time into a local equirectangular frame and all downstream code
// works with Point values in meters.
package geo

import (
	"errors"
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by the haversine formula.
const EarthRadiusMeters = 6371008.8

// LatLon is a WGS84 coordinate in degrees.
type LatLon struct {
	Lat float64 // degrees, positive north
	Lon float64 // degrees, positive east
}

// Lausanne is the reference origin of the paper's deployment region: the
// OpenSense buses operate in Lausanne, Switzerland.
var Lausanne = LatLon{Lat: 46.5197, Lon: 6.6323}

// Valid reports whether the coordinate lies in the WGS84 domain.
func (c LatLon) Valid() bool {
	return c.Lat >= -90 && c.Lat <= 90 && c.Lon >= -180 && c.Lon <= 180 &&
		!math.IsNaN(c.Lat) && !math.IsNaN(c.Lon)
}

func (c LatLon) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", c.Lat, c.Lon)
}

// HaversineMeters returns the great-circle distance between two coordinates.
func HaversineMeters(a, b LatLon) float64 {
	const degToRad = math.Pi / 180
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(h)))
}

// Point is a position in the local projected frame, in meters.
type Point struct {
	X float64 // meters east of the projection origin
	Y float64 // meters north of the projection origin
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Dist returns the Euclidean distance between p and q in meters.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root on hot paths (clustering, index traversal).
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

func (p Point) String() string {
	return fmt.Sprintf("(%.1fm, %.1fm)", p.X, p.Y)
}

// Projection converts between WGS84 coordinates and the local metric frame.
// It is an equirectangular projection around a fixed origin, accurate to
// well under 0.1% over a city-scale region (tens of kilometers), which is
// ample for the paper's 1 km query radii.
type Projection struct {
	origin       LatLon
	metersPerLat float64
	metersPerLon float64
}

// NewProjection returns a projection centered at origin.
func NewProjection(origin LatLon) (*Projection, error) {
	if !origin.Valid() {
		return nil, fmt.Errorf("geo: invalid projection origin %v", origin)
	}
	if math.Abs(origin.Lat) > 85 {
		return nil, errors.New("geo: equirectangular projection unusable near the poles")
	}
	const degToRad = math.Pi / 180
	return &Projection{
		origin:       origin,
		metersPerLat: EarthRadiusMeters * degToRad,
		metersPerLon: EarthRadiusMeters * degToRad * math.Cos(origin.Lat*degToRad),
	}, nil
}

// MustProjection is like NewProjection but panics on error. It is intended
// for package-level defaults with known-good origins.
func MustProjection(origin LatLon) *Projection {
	p, err := NewProjection(origin)
	if err != nil {
		panic(err)
	}
	return p
}

// Origin returns the projection origin.
func (pr *Projection) Origin() LatLon { return pr.origin }

// ToPoint projects a WGS84 coordinate into the local metric frame.
func (pr *Projection) ToPoint(c LatLon) Point {
	return Point{
		X: (c.Lon - pr.origin.Lon) * pr.metersPerLon,
		Y: (c.Lat - pr.origin.Lat) * pr.metersPerLat,
	}
}

// ToLatLon unprojects a local point back to WGS84.
func (pr *Projection) ToLatLon(p Point) LatLon {
	return LatLon{
		Lat: pr.origin.Lat + p.Y/pr.metersPerLat,
		Lon: pr.origin.Lon + p.X/pr.metersPerLon,
	}
}

// Rect is an axis-aligned bounding box in the local frame. Min is the
// lower-left corner, Max the upper-right. A Rect with Min==Max is a point;
// Rects are closed on all sides.
type Rect struct {
	Min, Max Point
}

// RectFromPoints returns the tightest Rect enclosing pts. It returns an
// error for an empty slice.
func RectFromPoints(pts []Point) (Rect, error) {
	if len(pts) == 0 {
		return Rect{}, errors.New("geo: RectFromPoints on empty slice")
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r = r.ExpandToPoint(p)
	}
	return r, nil
}

// Valid reports whether Min <= Max on both axes.
func (r Rect) Valid() bool {
	return r.Min.X <= r.Max.X && r.Min.Y <= r.Max.Y
}

// Contains reports whether p lies inside the (closed) rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Union returns the smallest Rect containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// ExpandToPoint returns r grown just enough to contain p.
func (r Rect) ExpandToPoint(p Point) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, p.X), math.Min(r.Min.Y, p.Y)},
		Max: Point{math.Max(r.Max.X, p.X), math.Max(r.Max.Y, p.Y)},
	}
}

// Inflate returns r grown by d meters on every side. Negative d shrinks.
func (r Rect) Inflate(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// Area returns the rectangle's area in square meters.
func (r Rect) Area() float64 {
	if !r.Valid() {
		return 0
	}
	return (r.Max.X - r.Min.X) * (r.Max.Y - r.Min.Y)
}

// Perimeter returns half the rectangle's perimeter (the classic R-tree
// "margin" metric).
func (r Rect) Perimeter() float64 {
	if !r.Valid() {
		return 0
	}
	return (r.Max.X - r.Min.X) + (r.Max.Y - r.Min.Y)
}

// Center returns the rectangle's center.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// DistToPoint returns the minimum distance from p to the rectangle
// (0 if p is inside). Used to prune index subtrees during radius search.
func (r Rect) DistToPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// CircleRect returns the bounding box of a circle with the given center and
// radius in meters.
func CircleRect(center Point, radius float64) Rect {
	return Rect{
		Min: Point{center.X - radius, center.Y - radius},
		Max: Point{center.X + radius, center.Y + radius},
	}
}
