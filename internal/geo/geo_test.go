package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestLatLonValid(t *testing.T) {
	tests := []struct {
		name string
		c    LatLon
		want bool
	}{
		{"lausanne", Lausanne, true},
		{"origin", LatLon{0, 0}, true},
		{"north pole", LatLon{90, 0}, true},
		{"lat too big", LatLon{90.01, 0}, false},
		{"lat too small", LatLon{-90.01, 0}, false},
		{"lon too big", LatLon{0, 180.5}, false},
		{"lon too small", LatLon{0, -180.5}, false},
		{"nan lat", LatLon{math.NaN(), 0}, false},
		{"nan lon", LatLon{0, math.NaN()}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.c.Valid(); got != tt.want {
				t.Errorf("Valid(%v) = %v, want %v", tt.c, got, tt.want)
			}
		})
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	// Lausanne to Geneva is roughly 50 km.
	geneva := LatLon{46.2044, 6.1432}
	d := HaversineMeters(Lausanne, geneva)
	if d < 45000 || d > 55000 {
		t.Errorf("Lausanne-Geneva = %.0f m, want ~50 km", d)
	}
	// Symmetry.
	if d2 := HaversineMeters(geneva, Lausanne); !almostEqual(d, d2, 1e-6) {
		t.Errorf("haversine not symmetric: %v vs %v", d, d2)
	}
	// Identity.
	if d := HaversineMeters(Lausanne, Lausanne); d != 0 {
		t.Errorf("distance to self = %v, want 0", d)
	}
}

func TestHaversineOneDegreeLat(t *testing.T) {
	a := LatLon{46, 6}
	b := LatLon{47, 6}
	d := HaversineMeters(a, b)
	// One degree of latitude is ~111.2 km.
	if !almostEqual(d, 111195, 100) {
		t.Errorf("one degree latitude = %.0f m, want ~111195 m", d)
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	pr := MustProjection(Lausanne)
	coords := []LatLon{
		Lausanne,
		{46.53, 6.60},
		{46.50, 6.70},
		{46.55, 6.58},
	}
	for _, c := range coords {
		back := pr.ToLatLon(pr.ToPoint(c))
		if !almostEqual(back.Lat, c.Lat, 1e-9) || !almostEqual(back.Lon, c.Lon, 1e-9) {
			t.Errorf("round trip %v -> %v", c, back)
		}
	}
}

func TestProjectionDistanceAccuracy(t *testing.T) {
	// Projected Euclidean distance should agree with haversine to within
	// 0.5% over city scale (< 15 km).
	pr := MustProjection(Lausanne)
	pairs := [][2]LatLon{
		{{46.52, 6.63}, {46.54, 6.66}},
		{{46.50, 6.58}, {46.55, 6.70}},
		{{46.515, 6.625}, {46.52, 6.64}},
	}
	for _, pair := range pairs {
		hd := HaversineMeters(pair[0], pair[1])
		ed := pr.ToPoint(pair[0]).Dist(pr.ToPoint(pair[1]))
		if math.Abs(hd-ed)/hd > 0.005 {
			t.Errorf("distance mismatch %v: haversine %.1f vs projected %.1f", pair, hd, ed)
		}
	}
}

func TestNewProjectionErrors(t *testing.T) {
	if _, err := NewProjection(LatLon{91, 0}); err == nil {
		t.Error("expected error for invalid origin")
	}
	if _, err := NewProjection(LatLon{89, 0}); err == nil {
		t.Error("expected error near pole")
	}
	if _, err := NewProjection(Lausanne); err != nil {
		t.Errorf("unexpected error for Lausanne: %v", err)
	}
}

func TestMustProjectionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustProjection did not panic on invalid origin")
		}
	}()
	MustProjection(LatLon{123, 0})
}

func TestPointArithmetic(t *testing.T) {
	p := Point{3, 4}
	q := Point{1, 2}
	if got := p.Add(q); got != (Point{4, 6}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{2, 2}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dist(Point{0, 0}); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := p.Dist2(Point{0, 0}); got != 25 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
}

func TestDist2ConsistentWithDist(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		// Constrain to a sane numeric range to avoid overflow artifacts.
		a := Point{math.Mod(ax, 1e6), math.Mod(ay, 1e6)}
		b := Point{math.Mod(bx, 1e6), math.Mod(by, 1e6)}
		d := a.Dist(b)
		return almostEqual(d*d, a.Dist2(b), 1e-3*(1+a.Dist2(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectFromPoints(t *testing.T) {
	pts := []Point{{1, 5}, {-2, 3}, {4, -1}}
	r, err := RectFromPoints(pts)
	if err != nil {
		t.Fatal(err)
	}
	want := Rect{Min: Point{-2, -1}, Max: Point{4, 5}}
	if r != want {
		t.Errorf("RectFromPoints = %v, want %v", r, want)
	}
	if _, err := RectFromPoints(nil); err == nil {
		t.Error("expected error for empty slice")
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{Min: Point{0, 0}, Max: Point{10, 10}}
	tests := []struct {
		p    Point
		want bool
	}{
		{Point{5, 5}, true},
		{Point{0, 0}, true},   // boundary is inside
		{Point{10, 10}, true}, // boundary is inside
		{Point{10.001, 5}, false},
		{Point{-0.001, 5}, false},
		{Point{5, 11}, false},
	}
	for _, tt := range tests {
		if got := r.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestRectIntersectsUnion(t *testing.T) {
	a := Rect{Min: Point{0, 0}, Max: Point{4, 4}}
	b := Rect{Min: Point{3, 3}, Max: Point{6, 6}}
	c := Rect{Min: Point{5, 5}, Max: Point{7, 7}}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("a and b should intersect")
	}
	if a.Intersects(c) {
		t.Error("a and c should not intersect")
	}
	// Touching edges count as intersecting (closed rects).
	d := Rect{Min: Point{4, 0}, Max: Point{8, 4}}
	if !a.Intersects(d) {
		t.Error("touching rects should intersect")
	}
	u := a.Union(b)
	want := Rect{Min: Point{0, 0}, Max: Point{6, 6}}
	if u != want {
		t.Errorf("Union = %v, want %v", u, want)
	}
}

func TestRectMetrics(t *testing.T) {
	r := Rect{Min: Point{0, 0}, Max: Point{3, 4}}
	if got := r.Area(); got != 12 {
		t.Errorf("Area = %v, want 12", got)
	}
	if got := r.Perimeter(); got != 7 {
		t.Errorf("Perimeter = %v, want 7", got)
	}
	if got := r.Center(); got != (Point{1.5, 2}) {
		t.Errorf("Center = %v", got)
	}
	bad := Rect{Min: Point{1, 1}, Max: Point{0, 0}}
	if bad.Valid() {
		t.Error("inverted rect should be invalid")
	}
	if bad.Area() != 0 || bad.Perimeter() != 0 {
		t.Error("invalid rect should have zero area/perimeter")
	}
}

func TestRectDistToPoint(t *testing.T) {
	r := Rect{Min: Point{0, 0}, Max: Point{10, 10}}
	tests := []struct {
		p    Point
		want float64
	}{
		{Point{5, 5}, 0},   // inside
		{Point{15, 5}, 5},  // right
		{Point{5, -3}, 3},  // below
		{Point{13, 14}, 5}, // corner: 3-4-5 triangle
		{Point{0, 0}, 0},   // on boundary
		{Point{-6, 10}, 6}, // left, level with top
	}
	for _, tt := range tests {
		if got := r.DistToPoint(tt.p); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("DistToPoint(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestRectInflate(t *testing.T) {
	r := Rect{Min: Point{0, 0}, Max: Point{2, 2}}
	got := r.Inflate(1)
	want := Rect{Min: Point{-1, -1}, Max: Point{3, 3}}
	if got != want {
		t.Errorf("Inflate = %v, want %v", got, want)
	}
}

func TestCircleRect(t *testing.T) {
	r := CircleRect(Point{1, 2}, 3)
	want := Rect{Min: Point{-2, -1}, Max: Point{4, 5}}
	if r != want {
		t.Errorf("CircleRect = %v, want %v", r, want)
	}
}

func TestRectUnionProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		a := Rect{Min: Point{math.Min(ax, bx), math.Min(ay, by)}, Max: Point{math.Max(ax, bx), math.Max(ay, by)}}
		b := Rect{Min: Point{math.Min(cx, dx), math.Min(cy, dy)}, Max: Point{math.Max(cx, dx), math.Max(cy, dy)}}
		u := a.Union(b)
		// Union contains the corners of both rects.
		return u.Contains(a.Min) && u.Contains(a.Max) && u.Contains(b.Min) && u.Contains(b.Max) &&
			u.Area() >= a.Area() && u.Area() >= b.Area()
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPolylineBasics(t *testing.T) {
	pl, err := NewPolyline([]Point{{0, 0}, {3, 0}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.Length(); got != 7 {
		t.Errorf("Length = %v, want 7", got)
	}
	tests := []struct {
		d    float64
		want Point
	}{
		{-1, Point{0, 0}}, // clamp low
		{0, Point{0, 0}},
		{1.5, Point{1.5, 0}},
		{3, Point{3, 0}},  // vertex
		{5, Point{3, 2}},  // second segment
		{7, Point{3, 4}},  // end
		{99, Point{3, 4}}, // clamp high
	}
	for _, tt := range tests {
		got := pl.At(tt.d)
		if !almostEqual(got.X, tt.want.X, 1e-9) || !almostEqual(got.Y, tt.want.Y, 1e-9) {
			t.Errorf("At(%v) = %v, want %v", tt.d, got, tt.want)
		}
	}
}

func TestPolylineErrors(t *testing.T) {
	if _, err := NewPolyline([]Point{{0, 0}}); err == nil {
		t.Error("expected error for single point")
	}
	if _, err := NewPolyline([]Point{{0, 0}, {0, 0}}); err == nil {
		t.Error("expected error for duplicate consecutive points")
	}
}

func TestPolylineAtLoop(t *testing.T) {
	pl, err := NewPolyline([]Point{{0, 0}, {10, 0}})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		d    float64
		want Point
	}{
		{0, Point{0, 0}},
		{5, Point{5, 0}},
		{10, Point{10, 0}},
		{15, Point{5, 0}}, // coming back
		{20, Point{0, 0}}, // full cycle
		{25, Point{5, 0}}, // second lap
		{-5, Point{5, 0}}, // negative wraps
	}
	for _, tt := range tests {
		got := pl.AtLoop(tt.d)
		if !almostEqual(got.X, tt.want.X, 1e-9) || !almostEqual(got.Y, tt.want.Y, 1e-9) {
			t.Errorf("AtLoop(%v) = %v, want %v", tt.d, got, tt.want)
		}
	}
}

func TestPolylineAtLoopStaysOnRoute(t *testing.T) {
	pl, err := NewPolyline([]Point{{0, 0}, {100, 0}, {100, 50}})
	if err != nil {
		t.Fatal(err)
	}
	f := func(d float64) bool {
		d = math.Mod(d, 1e7)
		p := pl.AtLoop(d)
		return pl.NearestDist(p) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPolylineBounds(t *testing.T) {
	pl, err := NewPolyline([]Point{{0, 0}, {10, 5}, {-3, 8}})
	if err != nil {
		t.Fatal(err)
	}
	want := Rect{Min: Point{-3, 0}, Max: Point{10, 8}}
	if got := pl.Bounds(); got != want {
		t.Errorf("Bounds = %v, want %v", got, want)
	}
}

func TestPolylineNearestDist(t *testing.T) {
	pl, err := NewPolyline([]Point{{0, 0}, {10, 0}})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		p    Point
		want float64
	}{
		{Point{5, 3}, 3},   // above segment interior
		{Point{-4, 3}, 5},  // before start: 3-4-5
		{Point{14, -3}, 5}, // past end
		{Point{7, 0}, 0},   // on segment
	}
	for _, tt := range tests {
		if got := pl.NearestDist(tt.p); !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("NearestDist(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPolylinePointsIsCopy(t *testing.T) {
	orig := []Point{{0, 0}, {1, 1}}
	pl, err := NewPolyline(orig)
	if err != nil {
		t.Fatal(err)
	}
	got := pl.Points()
	got[0] = Point{99, 99}
	if pl.Points()[0] != (Point{0, 0}) {
		t.Error("Points() must return a copy")
	}
	orig[1] = Point{55, 55}
	if pl.Points()[1] != (Point{1, 1}) {
		t.Error("NewPolyline must copy its input")
	}
}
