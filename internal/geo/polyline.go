package geo

import (
	"errors"
	"fmt"
	"math"
)

// Polyline is an ordered sequence of points in the local frame. Bus routes
// (the mobility substrate of the OpenSense deployment) are modeled as
// polylines that vehicles traverse at constant speed, looping back and
// forth between the endpoints.
type Polyline struct {
	pts    []Point
	cumLen []float64 // cumLen[i] = distance from pts[0] to pts[i]
}

// NewPolyline builds a polyline from at least two points. Consecutive
// duplicate points are rejected because they produce degenerate segments.
func NewPolyline(pts []Point) (*Polyline, error) {
	if len(pts) < 2 {
		return nil, errors.New("geo: polyline needs at least two points")
	}
	cum := make([]float64, len(pts))
	for i := 1; i < len(pts); i++ {
		d := pts[i].Dist(pts[i-1])
		if d == 0 {
			return nil, fmt.Errorf("geo: polyline has duplicate consecutive point at index %d", i)
		}
		cum[i] = cum[i-1] + d
	}
	cp := make([]Point, len(pts))
	copy(cp, pts)
	return &Polyline{pts: cp, cumLen: cum}, nil
}

// Length returns the total length of the polyline in meters.
func (pl *Polyline) Length() float64 { return pl.cumLen[len(pl.cumLen)-1] }

// Points returns a copy of the polyline's vertices.
func (pl *Polyline) Points() []Point {
	cp := make([]Point, len(pl.pts))
	copy(cp, pl.pts)
	return cp
}

// At returns the point at arc-length distance d from the start. Distances
// below 0 clamp to the start; distances beyond Length clamp to the end.
func (pl *Polyline) At(d float64) Point {
	if d <= 0 {
		return pl.pts[0]
	}
	total := pl.Length()
	if d >= total {
		return pl.pts[len(pl.pts)-1]
	}
	// Binary search for the segment containing d.
	lo, hi := 0, len(pl.cumLen)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if pl.cumLen[mid] <= d {
			lo = mid
		} else {
			hi = mid
		}
	}
	segLen := pl.cumLen[hi] - pl.cumLen[lo]
	f := (d - pl.cumLen[lo]) / segLen
	a, b := pl.pts[lo], pl.pts[hi]
	return Point{a.X + f*(b.X-a.X), a.Y + f*(b.Y-a.Y)}
}

// AtLoop returns the point at distance d along an endless back-and-forth
// traversal of the polyline (start → end → start → ...). This models a bus
// shuttling along its route.
func (pl *Polyline) AtLoop(d float64) Point {
	total := pl.Length()
	if total == 0 {
		return pl.pts[0]
	}
	d = math.Mod(d, 2*total)
	if d < 0 {
		d += 2 * total
	}
	if d > total {
		d = 2*total - d
	}
	return pl.At(d)
}

// Bounds returns the bounding box of the polyline.
func (pl *Polyline) Bounds() Rect {
	r, _ := RectFromPoints(pl.pts) // never errors: len >= 2 by construction
	return r
}

// NearestDist returns the distance from p to the nearest point on the
// polyline (considering segment interiors, not only vertices).
func (pl *Polyline) NearestDist(p Point) float64 {
	best := math.Inf(1)
	for i := 1; i < len(pl.pts); i++ {
		d := distPointSegment(p, pl.pts[i-1], pl.pts[i])
		if d < best {
			best = d
		}
	}
	return best
}

// distPointSegment returns the distance from p to segment ab.
func distPointSegment(p, a, b Point) float64 {
	ab := b.Sub(a)
	ap := p.Sub(a)
	den := ab.X*ab.X + ab.Y*ab.Y
	if den == 0 {
		return p.Dist(a)
	}
	t := (ap.X*ab.X + ap.Y*ab.Y) / den
	t = math.Max(0, math.Min(1, t))
	proj := Point{a.X + t*ab.X, a.Y + t*ab.Y}
	return p.Dist(proj)
}
