package geo

// Edge-case coverage for polylines: clamping, vertex-exact arc
// lengths, the binary search at segment boundaries, looping traversal
// beyond one full period, and nearest-distance projection onto segment
// interiors vs. endpoints.

import (
	"math"
	"testing"
)

// zigzag is a three-segment polyline with unequal segment lengths, so
// arc-length bookkeeping mistakes show up as position errors.
func zigzag(t *testing.T) *Polyline {
	t.Helper()
	pl, err := NewPolyline([]Point{{0, 0}, {100, 0}, {100, 50}, {300, 50}})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestPolylineAtClamps(t *testing.T) {
	pl := zigzag(t)
	if got := pl.At(-25); got != (Point{0, 0}) {
		t.Errorf("At(-25) = %v, want the start", got)
	}
	if got := pl.At(pl.Length() + 1000); got != (Point{300, 50}) {
		t.Errorf("At(beyond) = %v, want the end", got)
	}
	if got := pl.At(0); got != (Point{0, 0}) {
		t.Errorf("At(0) = %v, want the start", got)
	}
	if got := pl.At(pl.Length()); got != (Point{300, 50}) {
		t.Errorf("At(Length) = %v, want the end", got)
	}
}

func TestPolylineAtVertices(t *testing.T) {
	pl := zigzag(t)
	// Arc lengths of the vertices: 0, 100, 150, 350.
	if pl.Length() != 350 {
		t.Fatalf("Length = %v, want 350", pl.Length())
	}
	cases := []struct {
		d    float64
		want Point
	}{
		{100, Point{100, 0}},  // exactly the first interior vertex
		{150, Point{100, 50}}, // exactly the second
		{50, Point{50, 0}},    // segment 1 interior
		{125, Point{100, 25}}, // segment 2 interior
		{250, Point{200, 50}}, // segment 3 interior
	}
	for _, c := range cases {
		if got := pl.At(c.d); math.Abs(got.X-c.want.X) > 1e-9 || math.Abs(got.Y-c.want.Y) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestPolylineSingleSegment(t *testing.T) {
	pl, err := NewPolyline([]Point{{0, 0}, {10, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.At(5); got != (Point{5, 0}) {
		t.Errorf("At(5) = %v", got)
	}
	if got := pl.AtLoop(15); got != (Point{5, 0}) { // 10 out, 5 back
		t.Errorf("AtLoop(15) = %v, want (5,0)", got)
	}
}

func TestPolylineAtLoopNegativeAndBeyondPeriod(t *testing.T) {
	pl := zigzag(t)
	total := pl.Length()
	// The loop has period 2*total; any distance is equivalent mod it.
	for _, d := range []float64{37, 200, total - 1} {
		fwd := pl.AtLoop(d)
		if got := pl.AtLoop(d + 2*total); got != fwd {
			t.Errorf("AtLoop(%v + period) = %v, want %v", d, got, fwd)
		}
		if got := pl.AtLoop(d - 2*total); got != fwd {
			t.Errorf("AtLoop(%v - period) = %v, want %v", d, got, fwd)
		}
		// A negative distance runs the loop backwards from the start,
		// which by symmetry equals the forward position at -d reflected:
		// AtLoop(-d) == AtLoop(2*total - d) == At(d) mirrored — check the
		// modular identity instead of a closed form.
		if got, want := pl.AtLoop(-d), pl.AtLoop(2*total-d); got != want {
			t.Errorf("AtLoop(-%v) = %v, want %v", d, got, want)
		}
	}
	// Exactly at the far end the walk reverses.
	if got := pl.AtLoop(total); got != (Point{300, 50}) {
		t.Errorf("AtLoop(total) = %v, want the far end", got)
	}
	if got := pl.AtLoop(total + 10); got != pl.At(total-10) {
		t.Errorf("AtLoop(total+10) = %v, want %v (walking back)", got, pl.At(total-10))
	}
}

func TestPolylineNearestDistSegmentInterior(t *testing.T) {
	pl := zigzag(t)
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{50, 30}, 30},   // projects onto segment 1 interior
		{Point{120, 25}, 20},  // nearest is segment 2 (x=100)
		{Point{200, 80}, 30},  // projects onto segment 3 interior
		{Point{-40, -30}, 50}, // before the start: distance to the first vertex
		{Point{340, 80}, 50},  // past the end: distance to the last vertex
		{Point{100, 25}, 0},   // on the polyline
	}
	for _, c := range cases {
		if got := pl.NearestDist(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("NearestDist(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNewPolylineRejectsDuplicates(t *testing.T) {
	if _, err := NewPolyline([]Point{{0, 0}, {0, 0}, {1, 1}}); err == nil {
		t.Error("leading duplicate accepted")
	}
	if _, err := NewPolyline([]Point{{0, 0}, {1, 1}, {1, 1}}); err == nil {
		t.Error("trailing duplicate accepted")
	}
	// Revisiting an earlier point non-consecutively is legitimate (a
	// route may cross itself).
	if _, err := NewPolyline([]Point{{0, 0}, {1, 0}, {0, 0}}); err != nil {
		t.Errorf("self-crossing route rejected: %v", err)
	}
}

func TestPolylineCollinearVertices(t *testing.T) {
	// Collinear interior vertices are harmless: positions and distances
	// behave as if the segment were one piece.
	pl, err := NewPolyline([]Point{{0, 0}, {10, 0}, {20, 0}, {30, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.At(15); got != (Point{15, 0}) {
		t.Errorf("At(15) = %v", got)
	}
	if got := pl.NearestDist(Point{25, 7}); math.Abs(got-7) > 1e-9 {
		t.Errorf("NearestDist = %v, want 7", got)
	}
}
