package cluster

// Property tests for successor-list replica placement: determinism
// across independently-built rings, the distinct-owner-first shape,
// the growth invariant (adding a node inserts it into replica sets but
// never reorders surviving members — the replication analogue of PR 5's
// shard-stability property), and peer-set consistency.

import (
	"testing"

	"repro/internal/tuple"
)

var allPollutants = []tuple.Pollutant{tuple.CO2, tuple.CO, tuple.PM}

func replicatedDesc(nodes, replicas int) Desc {
	d := testDesc(nodes)
	d.Replicas = replicas
	return d
}

func TestReplicasValidation(t *testing.T) {
	if _, err := NewRing(replicatedDesc(3, -1)); err == nil {
		t.Error("negative replicas accepted")
	}
	if _, err := NewRing(replicatedDesc(3, 4)); err == nil {
		t.Error("more replicas than nodes accepted")
	}
	for _, r := range []int{0, 1} {
		ring, err := NewRing(replicatedDesc(3, r))
		if err != nil {
			t.Fatalf("replicas=%d rejected: %v", r, err)
		}
		if ring.Replicas() != 1 {
			t.Errorf("replicas=%d normalized to %d, want 1", r, ring.Replicas())
		}
	}
}

func TestReplicasForShape(t *testing.T) {
	ring, err := NewRing(replicatedDesc(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range allPollutants {
		for c := 0; c < ring.Cells(); c++ {
			k := ShardKey{Pollutant: pol, Cell: c}
			reps := ring.ReplicasFor(k)
			if len(reps) != 3 {
				t.Fatalf("shard %v: %d replicas, want 3", k, len(reps))
			}
			if reps[0] != ring.OwnerKey(k) {
				t.Fatalf("shard %v: first replica %d is not the owner %d", k, reps[0], ring.OwnerKey(k))
			}
			seen := make(map[int]bool)
			for _, n := range reps {
				if n < 0 || n >= ring.Nodes() {
					t.Fatalf("shard %v: replica %d outside ring", k, n)
				}
				if seen[n] {
					t.Fatalf("shard %v: duplicate replica %d in %v", k, n, reps)
				}
				seen[n] = true
			}
		}
	}
}

func TestReplicasForDeterministicAcrossParties(t *testing.T) {
	a, err := NewRing(replicatedDesc(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RingFromWire(a.Wire())
	if err != nil {
		t.Fatal(err)
	}
	if b.Replicas() != 2 {
		t.Fatalf("replication factor lost over the wire: %d", b.Replicas())
	}
	for _, pol := range allPollutants {
		for c := 0; c < a.Cells(); c++ {
			k := ShardKey{Pollutant: pol, Cell: c}
			ra, rb := a.ReplicasFor(k), b.ReplicasFor(k)
			if len(ra) != len(rb) {
				t.Fatalf("shard %v: replica sets diverge: %v vs %v", k, ra, rb)
			}
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("shard %v: replica sets diverge: %v vs %v", k, ra, rb)
				}
			}
		}
	}
}

// TestReplicasForGrowthInvariant is the successor-placement analogue of
// TestRingStabilityOnGrowth: growing the cluster by one node may insert
// the new node into a shard's replica list, but the surviving members
// keep their relative order — filtering the new node out of the new list
// yields a prefix-consistent subsequence of the old list.
func TestReplicasForGrowthInvariant(t *testing.T) {
	small, err := NewRing(replicatedDesc(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewRing(replicatedDesc(5, 3))
	if err != nil {
		t.Fatal(err)
	}
	const newNode = 4
	changed := 0
	for _, pol := range allPollutants {
		for c := 0; c < small.Cells(); c++ {
			k := ShardKey{Pollutant: pol, Cell: c}
			oldReps, newReps := small.ReplicasFor(k), big.ReplicasFor(k)
			survivors := newReps[:0:0]
			for _, n := range newReps {
				if n != newNode {
					survivors = append(survivors, n)
				}
			}
			if len(survivors) < len(newReps) {
				changed++
			}
			// Survivors must be the old list's prefix of the same length:
			// the new node only displaces the tail, never reorders.
			for i, n := range survivors {
				if oldReps[i] != n {
					t.Fatalf("shard %v: growth reordered survivors: old %v, new %v", k, oldReps, newReps)
				}
			}
		}
	}
	if changed == 0 {
		t.Error("no replica set picked up the new node (suspicious placement)")
	}
}

func TestReplicaPeersConsistent(t *testing.T) {
	ring, err := NewRing(replicatedDesc(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range allPollutants {
		for n := 0; n < ring.Nodes(); n++ {
			peers := make(map[int]bool)
			for _, p := range ring.ReplicaPeers(n, pol) {
				if p == n {
					t.Fatalf("node %d is its own replica peer", n)
				}
				peers[p] = true
			}
			// Every non-owner replica of every shard n owns must be a peer,
			// and every peer must back at least one such shard.
			backed := make(map[int]bool)
			for c := 0; c < ring.Cells(); c++ {
				k := ShardKey{Pollutant: pol, Cell: c}
				reps := ring.ReplicasFor(k)
				if reps[0] != n {
					continue
				}
				for _, p := range reps[1:] {
					backed[p] = true
					if !peers[p] {
						t.Fatalf("node %d shard %v replica %d missing from ReplicaPeers %v", n, k, p, ring.ReplicaPeers(n, pol))
					}
				}
			}
			for p := range peers {
				if !backed[p] {
					t.Fatalf("node %d peer %d backs no owned shard", n, p)
				}
			}
		}
	}
	// Unreplicated rings have no peers.
	solo, err := NewRing(replicatedDesc(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if peers := solo.ReplicaPeers(0, tuple.CO2); len(peers) != 0 {
		t.Fatalf("unreplicated ring has peers %v", peers)
	}
}
