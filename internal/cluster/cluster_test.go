package cluster_test

// Integration tests for the sharded serving layer: a 3-node cluster of
// real engines wired together over simulated cellular links (netsim).
// The acceptance properties: a query routed to a non-owner node returns
// exactly the owner's answer, heatmaps scatter-gather across all
// shards, ingest through any node lands every tuple on its owner, and
// killing one node fails only that node's shards. Runs under -race.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/heatmap"
	"repro/internal/kmeans"
	"repro/internal/netsim"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/tuple"
	"repro/internal/wire"
)

const (
	windowLen = 3600.0
	queryT    = 1800.0
)

var clusterRegion = geo.Rect{Min: geo.Point{X: -2000, Y: -2000}, Max: geo.Point{X: 2000, Y: 2000}}

// fieldVal is the deterministic scalar field the test data samples, so
// every node's answer is predictable from position alone.
func fieldVal(x, y float64) float64 { return 400 + 0.01*x + 0.02*y }

// makeData lays a lattice of tuples over the region inside window 0.
func makeData() tuple.Batch {
	var b tuple.Batch
	i := 0
	for x := -1900.0; x <= 1900; x += 200 {
		for y := -1900.0; y <= 1900; y += 200 {
			t := 100 + float64(i%330)*10 // spread through the window
			b = append(b, tuple.Raw{T: t, X: x, Y: y, S: fieldVal(x, y)})
			i++
		}
	}
	return b
}

// fixture is a 3-node cluster in one process: engines, routing nodes,
// and netsim links standing in for the data-center network.
type fixture struct {
	ring    *cluster.Ring
	engines []*server.Engine
	nodes   []*cluster.Node
	link    *netsim.Link
	dead    []atomic.Bool

	streamsMu sync.Mutex
	streams   map[int][]*fakeStream // target node -> open push streams
}

// nodeTransport carries frames to fixture node `to` over the shared
// simulated link, with a kill switch per target. Frames are really
// encoded and decoded, so the new cluster messages cross the binary
// codec end to end.
type nodeTransport struct {
	f  *fixture
	to int
}

func (t *nodeTransport) Exchange(req wire.Message) (wire.Message, error) {
	if t.f.dead[t.to].Load() {
		return nil, fmt.Errorf("node %d is down", t.to)
	}
	reqB, err := wire.Binary.Encode(req)
	if err != nil {
		return nil, err
	}
	decoded, err := wire.Binary.Decode(reqB)
	if err != nil {
		return nil, err
	}
	resp := t.f.nodes[t.to].HandleMessage(decoded)
	respB, err := wire.Binary.Encode(resp)
	if err != nil {
		return nil, err
	}
	if _, err := t.f.link.Exchange(len(reqB), len(respB)); err != nil {
		return nil, err
	}
	return wire.Binary.Decode(respB)
}

func newEngine(t *testing.T) *server.Engine {
	t.Helper()
	st := store.MustOpenMemory(windowLen)
	e, err := server.NewMultiEngine(map[tuple.Pollutant]*store.Store{tuple.CO2: st},
		core.Config{Cluster: kmeans.Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	cells, err := cluster.Cells(clusterRegion, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := cluster.NewRing(cluster.Desc{
		Nodes: []string{"node-0:8081", "node-1:8081", "node-2:8081"},
		Cells: cells,
	})
	if err != nil {
		t.Fatal(err)
	}
	link, err := netsim.NewLink(netsim.ThreeG())
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{ring: ring, link: link, dead: make([]atomic.Bool, 3), streams: make(map[int][]*fakeStream)}
	for i := 0; i < 3; i++ {
		f.engines = append(f.engines, newEngine(t))
	}
	for i := 0; i < 3; i++ {
		transports := make([]cluster.Transport, 3)
		for j := 0; j < 3; j++ {
			if j != i {
				transports[j] = &nodeTransport{f: f, to: j}
			}
		}
		node, err := cluster.NewNode(cluster.NodeConfig{
			Ring:       ring,
			Self:       i,
			Local:      f.engines[i],
			Transports: transports,
			Default:    tuple.CO2,
			Streams:    f.openStream,
			SubQueue:   8,
		})
		if err != nil {
			t.Fatal(err)
		}
		f.nodes = append(f.nodes, node)
	}
	return f
}

// load ingests the lattice through node 0's router, which must split it
// across shard owners.
func (f *fixture) load(t *testing.T, data tuple.Batch) {
	t.Helper()
	resp := f.nodes[0].HandleMessage(wire.IngestRequest{Pollutant: tuple.CO2, Tuples: data})
	ir, ok := resp.(wire.IngestResponse)
	if !ok {
		t.Fatalf("ingest through router failed: %#v", resp)
	}
	if int(ir.Ingested) != len(data) {
		t.Fatalf("ingested %d of %d tuples", ir.Ingested, len(data))
	}
}

func TestClusterRoutedIngestShards(t *testing.T) {
	f := newFixture(t)
	data := makeData()
	f.load(t, data)

	total := 0
	for i, e := range f.engines {
		n := e.Store().Len()
		if n == 0 {
			t.Errorf("node %d holds no tuples — sharding collapsed", i)
		}
		total += n
	}
	if total != len(data) {
		t.Fatalf("cluster holds %d tuples, ingested %d (duplicates or loss)", total, len(data))
	}
	// Every tuple must live exactly on its owner.
	for i, e := range f.engines {
		want := 0
		for _, r := range data {
			if f.ring.Owner(tuple.CO2, r.Pos()) == i {
				want++
			}
		}
		if got := e.Store().Len(); got != want {
			t.Errorf("node %d holds %d tuples, owns %d", i, got, want)
		}
	}
}

// sampleRequests picks lattice positions spread across all shards.
func sampleRequests(data tuple.Batch) []query.Request {
	var reqs []query.Request
	for i := 0; i < len(data); i += 17 {
		reqs = append(reqs, query.Request{T: queryT, X: data[i].X, Y: data[i].Y, Pollutant: tuple.CO2})
	}
	return reqs
}

func TestClusterNonOwnerQueryEqualsOwner(t *testing.T) {
	f := newFixture(t)
	data := makeData()
	f.load(t, data)
	ctx := context.Background()

	for _, req := range sampleRequests(data) {
		owner := f.ring.Owner(tuple.CO2, geo.Point{X: req.X, Y: req.Y})
		want, err := f.engines[owner].Query(ctx, req)
		if err != nil {
			t.Fatalf("owner %d query at (%v,%v): %v", owner, req.X, req.Y, err)
		}
		for n, node := range f.nodes {
			resp := node.HandleMessage(wire.QueryRequest{T: req.T, X: req.X, Y: req.Y, Pollutant: req.Pollutant})
			qr, ok := resp.(wire.QueryResponse)
			if !ok {
				t.Fatalf("node %d at (%v,%v): %#v", n, req.X, req.Y, resp)
			}
			if qr.Value != want {
				t.Fatalf("node %d answers %v at (%v,%v); owner %d answers %v",
					n, qr.Value, req.X, req.Y, owner, want)
			}
		}
	}
	// Forwarding actually happened (the samples span several shards).
	forwarded := int64(0)
	for _, node := range f.nodes {
		forwarded += node.Stats().Forwarded
	}
	if forwarded == 0 {
		t.Error("no request was forwarded — samples all landed on their handling node?")
	}
	if f.link.Stats().Exchanges == 0 {
		t.Error("netsim link saw no exchanges")
	}
}

func TestClusterBatchSplitsAndMatches(t *testing.T) {
	f := newFixture(t)
	data := makeData()
	f.load(t, data)
	ctx := context.Background()

	reqs := sampleRequests(data)
	// Through the Go convenience surface of a non-owner-for-most node.
	results, err := f.nodes[2].QueryBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(reqs) {
		t.Fatalf("%d results for %d requests", len(results), len(reqs))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("batch item %d: %v", i, res.Err)
		}
		owner := f.ring.Owner(tuple.CO2, geo.Point{X: reqs[i].X, Y: reqs[i].Y})
		want, err := f.engines[owner].Query(ctx, reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != want {
			t.Fatalf("batch item %d: %v, owner answers %v", i, res.Value, want)
		}
	}
	// A batch with one bad item fails only that item.
	bad := append([]query.Request{}, reqs[0])
	bad = append(bad, query.Request{T: 99 * windowLen, X: 0, Y: 0, Pollutant: tuple.CO2})
	results, err = f.nodes[1].QueryBatch(ctx, bad)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Errorf("good item rejected: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("out-of-window item accepted")
	}
}

func TestClusterHeatmapScatterGathers(t *testing.T) {
	f := newFixture(t)
	data := makeData()
	f.load(t, data)
	ctx := context.Background()

	grids := make([]*heatmap.Grid, 3)
	for n, node := range f.nodes {
		g, err := node.Heatmap(ctx, tuple.CO2, queryT, 24, 24)
		if err != nil {
			t.Fatalf("node %d heatmap: %v", n, err)
		}
		for _, v := range g.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("node %d heatmap holds non-finite values", n)
			}
		}
		grids[n] = g
	}
	// Scatter-gather is deterministic: every node assembles the same map.
	if !reflect.DeepEqual(grids[0], grids[1]) || !reflect.DeepEqual(grids[1], grids[2]) {
		t.Fatal("nodes assembled different cluster heatmaps")
	}
	// The merged region must span every shard's data, i.e. (at least)
	// the union of the per-engine rasters.
	region := grids[0].Region
	for i, e := range f.engines {
		own, err := e.Heatmap(ctx, tuple.CO2, queryT, 8, 8)
		if err != nil {
			t.Fatalf("engine %d local heatmap: %v", i, err)
		}
		if !region.Contains(own.Region.Center()) {
			t.Errorf("merged heatmap region %v misses node %d's data at %v", region, i, own.Region.Center())
		}
	}
	// Every node scattered (peers saw forwarded-in traffic).
	for n, node := range f.nodes {
		if node.Stats().ForwardedIn == 0 {
			t.Errorf("node %d never received a scattered request", n)
		}
	}
}

func TestClusterModelMerge(t *testing.T) {
	f := newFixture(t)
	data := makeData()
	f.load(t, data)
	ctx := context.Background()

	mr, err := f.nodes[0].Model(ctx, tuple.CO2, queryT)
	if err != nil {
		t.Fatal(err)
	}
	wantRegions := 0
	for i, e := range f.engines {
		cv, err := e.CoverAt(ctx, tuple.CO2, queryT)
		if err != nil {
			t.Fatalf("engine %d cover: %v", i, err)
		}
		wantRegions += cv.Size()
	}
	if len(mr.Centroids) != wantRegions {
		t.Fatalf("merged cover has %d regions, shards hold %d", len(mr.Centroids), wantRegions)
	}
	// The merged cover is a usable client-side model cache.
	cv, err := wire.CoverFromModelResponse(mr)
	if err != nil {
		t.Fatal(err)
	}
	v, err := cv.Interpolate(queryT, 500, 500)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("merged cover interpolates to %v", v)
	}
}

func TestClusterNodeLossFailsOnlyItsShards(t *testing.T) {
	f := newFixture(t)
	data := makeData()
	f.load(t, data)
	ctx := context.Background()

	const victim = 2
	f.dead[victim].Store(true)

	lost, kept := 0, 0
	for _, req := range sampleRequests(data) {
		owner := f.ring.Owner(tuple.CO2, geo.Point{X: req.X, Y: req.Y})
		for n := 0; n < 2; n++ { // query through the survivors
			resp := f.nodes[n].HandleMessage(wire.QueryRequest{T: req.T, X: req.X, Y: req.Y, Pollutant: req.Pollutant})
			switch r := resp.(type) {
			case wire.QueryResponse:
				if owner == victim {
					t.Fatalf("node %d answered a dead node's shard at (%v,%v)", n, req.X, req.Y)
				}
				want, err := f.engines[owner].Query(ctx, req)
				if err != nil || r.Value != want {
					t.Fatalf("node %d: %v (want %v, err %v)", n, r.Value, want, err)
				}
				kept++
			case wire.ErrorResponse:
				if owner != victim {
					t.Fatalf("node %d failed a live shard at (%v,%v): %s", n, req.X, req.Y, r.Msg)
				}
				if !strings.Contains(r.Msg, "unreachable") {
					t.Fatalf("unexpected error for dead shard: %s", r.Msg)
				}
				lost++
			default:
				t.Fatalf("unexpected response %T", resp)
			}
		}
	}
	if lost == 0 {
		t.Error("no sample hit the dead node's shards — broaden the samples")
	}
	if kept == 0 {
		t.Error("no sample answered — the outage spread past the dead node")
	}
	// Cross-shard operations survive on the remaining nodes.
	g, err := f.nodes[0].Heatmap(ctx, tuple.CO2, queryT, 16, 16)
	if err != nil {
		t.Fatalf("heatmap after node loss: %v", err)
	}
	if len(g.Values) != 256 {
		t.Fatalf("heatmap after node loss has %d cells", len(g.Values))
	}
}

// TestClusterPartialIngestNotRetryable locks the duplicate-prevention
// contract: an ingest where some owners applied and one was down maps
// to ErrPartialIngest (never the retryable ErrSaturated), while an
// ingest where nothing applied keeps a retryable error.
func TestClusterPartialIngestNotRetryable(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	data := makeData()
	f.dead[2].Store(true)

	err := f.nodes[0].Ingest(ctx, tuple.CO2, data)
	if err == nil {
		t.Fatal("ingest spanning a dead node succeeded")
	}
	if !errors.Is(err, cluster.ErrPartialIngest) {
		t.Fatalf("partial ingest maps to %v, want ErrPartialIngest", err)
	}
	// The surviving owners applied their slices exactly once.
	applied := f.engines[0].Store().Len() + f.engines[1].Store().Len()
	want := 0
	for _, r := range data {
		if f.ring.Owner(tuple.CO2, r.Pos()) != 2 {
			want++
		}
	}
	if applied != want {
		t.Fatalf("survivors hold %d tuples, want %d", applied, want)
	}

	// An upload owned entirely by the dead node applies nowhere: the
	// error stays a retryable unreachable, not a partial ingest.
	var deadOnly tuple.Batch
	for _, r := range data {
		if f.ring.Owner(tuple.CO2, r.Pos()) == 2 {
			deadOnly = append(deadOnly, r)
		}
	}
	if len(deadOnly) == 0 {
		t.Fatal("no tuples owned by the dead node")
	}
	err = f.nodes[0].Ingest(ctx, tuple.CO2, deadOnly)
	if err == nil {
		t.Fatal("dead-owner ingest succeeded")
	}
	if errors.Is(err, cluster.ErrPartialIngest) {
		t.Fatalf("all-failed ingest wrongly marked partial: %v", err)
	}
	if !errors.Is(err, cluster.ErrNodeUnreachable) {
		t.Fatalf("all-failed ingest maps to %v, want ErrNodeUnreachable", err)
	}
}

// TestShardedClientTalksToOwners verifies the client-side shard map: a
// sharded transport fetches the ring once and then reaches owners
// directly — against nodes with no forwarding links at all.
func TestShardedClientTalksToOwners(t *testing.T) {
	f := newFixture(t)
	data := makeData()
	f.load(t, data)
	ctx := context.Background()

	// Isolated nodes: no peer transports, so a misrouted request gets a
	// NotOwner bounce instead of silent forwarding.
	iso := make([]*cluster.Node, 3)
	for i := 0; i < 3; i++ {
		n, err := cluster.NewNode(cluster.NodeConfig{
			Ring: f.ring, Self: i, Local: f.engines[i], Default: tuple.CO2,
		})
		if err != nil {
			t.Fatal(err)
		}
		iso[i] = n
	}
	handlerByAddr := func(addr string) (cluster.Handler, bool) {
		for i := 0; i < f.ring.Nodes(); i++ {
			if f.ring.Addr(i) == addr {
				return iso[i], true
			}
		}
		return nil, false
	}
	dial := func(addr string) (client.Transport, error) {
		h, ok := handlerByAddr(addr)
		if !ok {
			return nil, fmt.Errorf("unknown address %q", addr)
		}
		return &handlerTransport{h: h, link: f.link}, nil
	}
	seed := &handlerTransport{h: iso[0], link: f.link}
	sc := client.NewSharded(seed, dial)

	reqs := sampleRequests(data)
	for _, req := range reqs {
		resp, err := sc.Exchange(wire.QueryRequest{T: req.T, X: req.X, Y: req.Y, Pollutant: req.Pollutant})
		if err != nil {
			t.Fatal(err)
		}
		qr, ok := resp.(wire.QueryResponse)
		if !ok {
			t.Fatalf("unexpected response %#v", resp)
		}
		owner := f.ring.Owner(tuple.CO2, geo.Point{X: req.X, Y: req.Y})
		want, err := f.engines[owner].Query(ctx, req)
		if err != nil || qr.Value != want {
			t.Fatalf("sharded client got %v, owner answers %v (err %v)", qr.Value, want, err)
		}
	}
	st := sc.Stats()
	if st.Direct != int64(len(reqs)) {
		t.Errorf("direct exchanges %d, want %d (every query straight to its owner)", st.Direct, len(reqs))
	}
	if st.Bounced != 0 {
		t.Errorf("fresh ring bounced %d times", st.Bounced)
	}
	if st.Refreshes != 1 {
		t.Errorf("ring fetched %d times, want 1", st.Refreshes)
	}
}

// TestShardedClientRetryOnWrongOwner serves the client a stale ring
// whose node addresses are rotated: every query lands on the wrong
// node, gets a NotOwner bounce naming the true owner, and the client
// must retry there successfully.
func TestShardedClientRetryOnWrongOwner(t *testing.T) {
	f := newFixture(t)
	data := makeData()
	f.load(t, data)
	ctx := context.Background()

	iso := make([]*cluster.Node, 3)
	for i := 0; i < 3; i++ {
		n, err := cluster.NewNode(cluster.NodeConfig{
			Ring: f.ring, Self: i, Local: f.engines[i], Default: tuple.CO2,
		})
		if err != nil {
			t.Fatal(err)
		}
		iso[i] = n
	}
	// The stale ring maps every shard to the *next* node's address.
	desc := f.ring.Desc()
	rotated := make([]string, len(desc.Nodes))
	for i := range desc.Nodes {
		rotated[i] = desc.Nodes[(i+1)%len(desc.Nodes)]
	}
	staleRing, err := cluster.NewRing(cluster.Desc{Nodes: rotated, Cells: desc.Cells, VNodes: desc.VNodes})
	if err != nil {
		t.Fatal(err)
	}
	byAddr := func(addr string) cluster.Handler {
		for i := 0; i < f.ring.Nodes(); i++ {
			if f.ring.Addr(i) == addr {
				return iso[i]
			}
		}
		return nil
	}
	dial := func(addr string) (client.Transport, error) {
		h := byAddr(addr)
		if h == nil {
			return nil, fmt.Errorf("unknown address %q", addr)
		}
		return &handlerTransport{h: h, link: f.link}, nil
	}
	sc := client.NewSharded(&staleSeed{ring: staleRing}, dial)

	for _, req := range sampleRequests(data) {
		resp, err := sc.Exchange(wire.QueryRequest{T: req.T, X: req.X, Y: req.Y, Pollutant: req.Pollutant})
		if err != nil {
			t.Fatal(err)
		}
		qr, ok := resp.(wire.QueryResponse)
		if !ok {
			t.Fatalf("unexpected response %#v", resp)
		}
		owner := f.ring.Owner(tuple.CO2, geo.Point{X: req.X, Y: req.Y})
		want, qerr := f.engines[owner].Query(ctx, req)
		if qerr != nil || qr.Value != want {
			t.Fatalf("after bounce got %v, owner answers %v (err %v)", qr.Value, want, qerr)
		}
	}
	if sc.Stats().Bounced == 0 {
		t.Error("stale ring produced no bounces — the retry path went untested")
	}
}

// handlerTransport invokes a handler in-process with full encode/decode
// round trips charged to a netsim link.
type handlerTransport struct {
	h    cluster.Handler
	link *netsim.Link
}

func (t *handlerTransport) Exchange(req wire.Message) (wire.Message, error) {
	reqB, err := wire.Binary.Encode(req)
	if err != nil {
		return nil, err
	}
	decoded, err := wire.Binary.Decode(reqB)
	if err != nil {
		return nil, err
	}
	resp := t.h.HandleMessage(decoded)
	respB, err := wire.Binary.Encode(resp)
	if err != nil {
		return nil, err
	}
	if _, err := t.link.Exchange(len(reqB), len(respB)); err != nil {
		return nil, err
	}
	return wire.Binary.Decode(respB)
}

// staleSeed answers ring requests with an outdated ring and nothing
// else — a bootstrap node that fell behind a reconfiguration.
type staleSeed struct {
	ring *cluster.Ring
}

func (s *staleSeed) Exchange(req wire.Message) (wire.Message, error) {
	if _, ok := req.(wire.RingRequest); ok {
		return s.ring.Wire(), nil
	}
	return wire.ErrorResponse{Msg: "stale seed answers only ring requests"}, nil
}
