package cluster_test

// Epoch-versioned membership tests: live join under write load, drain
// with shard handoff, dead-primary promotion, and a deterministic
// rebalance fault-injection matrix that kills a party (or abandons the
// coordinator) at every handoff phase boundary via HandoffHook — one
// fault per run. The oracles throughout: no acked tuple is lost, no
// shard is served by two primaries at the same epoch, and queries
// answer byte-equal before and after a rebalance. Data-presence checks
// use the naive radius processor — its answer is determined by a
// shard's own tuples alone, so it is byte-equal wherever the tuples
// moved — while routed cover queries check routing consistency. The
// whole file runs under -race.

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// memFixture is a growable replicated cluster over simulated links:
// unlike the static fixture, nodes join and leave, so transports
// resolve targets by address through a dialer, every node gets a kill
// switch, and fault hooks are settable after a node is built.
type memFixture struct {
	link *netsim.Link

	mu      sync.Mutex
	engines []*server.Engine
	nodes   []*cluster.Node
	addrs   []string
	dead    []*atomic.Bool
	hooks   []func(string)
}

// memTransport carries frames to the fixture node at index `to`
// through the full binary codec, honoring the kill switch.
type memTransport struct {
	f  *memFixture
	to int
}

func (t *memTransport) Exchange(req wire.Message) (wire.Message, error) {
	t.f.mu.Lock()
	var node *cluster.Node
	var deadFlag *atomic.Bool
	if t.to < len(t.f.nodes) {
		node, deadFlag = t.f.nodes[t.to], t.f.dead[t.to]
	}
	t.f.mu.Unlock()
	if node == nil {
		return nil, fmt.Errorf("node %d is not running", t.to)
	}
	if deadFlag.Load() {
		return nil, fmt.Errorf("node %d is down", t.to)
	}
	reqB, err := wire.Binary.Encode(req)
	if err != nil {
		return nil, err
	}
	decoded, err := wire.Binary.Decode(reqB)
	if err != nil {
		return nil, err
	}
	resp := node.HandleMessage(decoded)
	respB, err := wire.Binary.Encode(resp)
	if err != nil {
		return nil, err
	}
	if deadFlag.Load() {
		// Killed mid-exchange: the answer never makes it back.
		return nil, fmt.Errorf("node %d is down", t.to)
	}
	if _, err := t.f.link.Exchange(len(reqB), len(respB)); err != nil {
		return nil, err
	}
	return wire.Binary.Decode(respB)
}

// dialer resolves wire addresses to fixture transports, including
// addresses of nodes that join after a peer booted.
func (f *memFixture) dialer() cluster.Dialer {
	return func(addr string) (cluster.Transport, error) {
		f.mu.Lock()
		defer f.mu.Unlock()
		for i, a := range f.addrs {
			if a == addr {
				return &memTransport{f: f, to: i}, nil
			}
		}
		return nil, fmt.Errorf("no node at %s", addr)
	}
}

// setHook installs (or clears) node i's handoff fault hook.
func (f *memFixture) setHook(i int, h func(string)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hooks[i] = h
}

func (f *memFixture) firePhase(i int, phase string) {
	f.mu.Lock()
	var h func(string)
	if i < len(f.hooks) {
		h = f.hooks[i]
	}
	f.mu.Unlock()
	if h != nil {
		h(phase)
	}
}

// addNode registers an engine+node pair as fixture index `self`,
// serving ring. The node's HandoffHook dispatches to the settable
// fixture hook so faults can be armed per test, per node.
func (f *memFixture) addNode(t *testing.T, ring *cluster.Ring, self int) *cluster.Node {
	t.Helper()
	engine := newEngine(t)
	transports := make([]cluster.Transport, ring.Nodes())
	for j := range transports {
		if j != self {
			transports[j] = &memTransport{f: f, to: j}
		}
	}
	node, err := cluster.NewNode(cluster.NodeConfig{
		Ring:        ring,
		Self:        self,
		Local:       engine,
		Transports:  transports,
		Dial:        f.dialer(),
		Default:     tuple.CO2,
		HandoffHook: func(phase string) { f.firePhase(self, phase) },
		Replication: cluster.ReplicationConfig{NewMirror: newMirrorEngine},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	f.mu.Lock()
	f.engines = append(f.engines, engine)
	f.nodes = append(f.nodes, node)
	f.dead = append(f.dead, &atomic.Bool{})
	f.hooks = append(f.hooks, nil)
	f.mu.Unlock()
	return node
}

// memBaseEpoch is the fixture's starting epoch. It is deliberately
// nonzero: epoch-0 frames are the legacy (epoch-agnostic) wire format
// and are exempt from the fence, so a cluster that has never seen a
// transition cannot heal a half-committed one through stale-frame
// rejection. Starting at 1 models any cluster with a transition in its
// history — the case the fault matrix is about.
const memBaseEpoch = 1

// newMemFixture builds an n-node replicated membership fixture.
func newMemFixture(t *testing.T, n, replicas int) *memFixture {
	t.Helper()
	cells, err := cluster.Cells(clusterRegion, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%d:8081", i)
	}
	ring, err := cluster.NewRing(cluster.Desc{Nodes: addrs, Cells: cells, Replicas: replicas, Epoch: memBaseEpoch})
	if err != nil {
		t.Fatal(err)
	}
	link, err := netsim.NewLink(netsim.ThreeG())
	if err != nil {
		t.Fatal(err)
	}
	f := &memFixture{link: link, addrs: addrs}
	for i := 0; i < n; i++ {
		f.addNode(t, ring, i)
	}
	return f
}

// addJoiner announces a new member through node `seed`, builds its
// node on the pending ring, and returns it — the caller runs
// CompleteJoin (and may arm a fault hook first).
func (f *memFixture) addJoiner(t *testing.T, seed int) *cluster.Node {
	t.Helper()
	f.mu.Lock()
	id := len(f.addrs)
	addr := fmt.Sprintf("node-%d:8081", id)
	f.addrs = append(f.addrs, addr)
	f.mu.Unlock()
	before := f.currentRing().Epoch()
	pending, err := cluster.JoinCluster(&memTransport{f: f, to: seed}, addr)
	if err != nil {
		t.Fatal(err)
	}
	if pending.Nodes()-1 != id || pending.Epoch() != before+1 {
		t.Fatalf("pending ring: %d nodes epoch %d, want joiner as node %d at epoch %d",
			pending.Nodes(), pending.Epoch(), id, before+1)
	}
	return f.addNode(t, pending, id)
}

func (f *memFixture) kill(i int)   { f.deadFlag(i).Store(true) }
func (f *memFixture) revive(i int) { f.deadFlag(i).Store(false) }

func (f *memFixture) deadFlag(i int) *atomic.Bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead[i]
}

func (f *memFixture) node(i int) *cluster.Node {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nodes[i]
}

func (f *memFixture) engine(i int) *server.Engine {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.engines[i]
}

// liveIDs returns the IDs of every fixture node not currently killed.
func (f *memFixture) liveIDs() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	var ids []int
	for i := range f.nodes {
		if !f.dead[i].Load() {
			ids = append(ids, i)
		}
	}
	return ids
}

// currentRing returns the highest-epoch ring any live node serves —
// the cluster's real shape once transitions settle.
func (f *memFixture) currentRing() *cluster.Ring {
	var best *cluster.Ring
	for _, i := range f.liveIDs() {
		if r := f.node(i).Ring(); best == nil || r.Epoch() > best.Epoch() {
			best = r
		}
	}
	return best
}

// --- deterministic test data -----------------------------------------

// memLattice lays tuples on a 400 m lattice shifted `off` meters from
// the -1900 base on both axes, with values from the deterministic
// field and times inside the query window. Distinct offsets (0, 100,
// 200) keep independent tuple populations >= 100√2 m apart, so a 60 m
// radius query centered on a tuple sees exactly its own population.
func memLattice(off float64) tuple.Batch {
	var b tuple.Batch
	i := 0
	for x := -1900 + off; x <= 1900; x += 400 {
		for y := -1900 + off; y <= 1900; y += 400 {
			tm := 100 + float64(i%160)*10
			b = append(b, tuple.Raw{T: tm, X: x, Y: y, S: fieldVal(x, y)})
			i++
		}
	}
	return b
}

// loadVia routes a batch through node `via` and requires every tuple
// to be acked.
func (f *memFixture) loadVia(t *testing.T, via int, data tuple.Batch) {
	t.Helper()
	resp := f.node(via).HandleMessage(wire.IngestRequest{Pollutant: tuple.CO2, Tuples: data})
	ir, ok := resp.(wire.IngestResponse)
	if !ok {
		t.Fatalf("routed ingest failed: %#v", resp)
	}
	if int(ir.Ingested) != len(data) {
		t.Fatalf("acked %d of %d tuples", ir.Ingested, len(data))
	}
}

// naiveAt asks node `owner`'s engine directly for the raw-window
// average at p with a 60 m radius: present tuples at p (all carrying
// the same field value) answer exactly that value; a missing shard
// answers an error or a foreign value.
func (f *memFixture) naiveAt(owner int, p geo.Point) (float64, error) {
	return f.engine(owner).QueryOpts(context.Background(),
		query.Request{T: queryT, X: p.X, Y: p.Y, Pollutant: tuple.CO2},
		query.Options{Kind: query.KindNaive, Radius: 60})
}

// checkPresence verifies the no-lost-acked-tuple oracle: every
// position answers its exact field value from the engine of the node
// that owns it under the cluster's current ring. Byte-equal by
// construction — these are the same float64s the writer committed.
func (f *memFixture) checkPresence(t *testing.T, positions []geo.Point) {
	t.Helper()
	ring := f.currentRing()
	for _, p := range positions {
		owner := ring.Owner(tuple.CO2, p)
		if !ring.IsLive(owner) {
			t.Errorf("position %v owned by non-live node %d", p, owner)
			continue
		}
		got, err := f.naiveAt(owner, p)
		if err != nil {
			t.Errorf("acked tuple at %v lost: owner %d holds no data there (%v)", p, owner, err)
			continue
		}
		if want := fieldVal(p.X, p.Y); got != want {
			t.Errorf("acked tuple at %v corrupted on owner %d: got %v want %v", p, owner, got, want)
		}
	}
}

// checkRoutedConsistency verifies that a cover query routed through
// `via` answers byte-equal to the current owner's own engine — after
// the rebalance, routing lands on the node that really holds the shard.
func (f *memFixture) checkRoutedConsistency(t *testing.T, via int, positions []geo.Point) {
	t.Helper()
	ring := f.currentRing()
	ctx := context.Background()
	for _, p := range positions {
		owner := ring.Owner(tuple.CO2, p)
		want, err := f.engine(owner).Query(ctx, query.Request{T: queryT, X: p.X, Y: p.Y, Pollutant: tuple.CO2})
		if err != nil {
			t.Fatalf("owner %d cover query at %v: %v", owner, p, err)
		}
		resp := f.node(via).HandleMessage(wire.QueryRequest{T: queryT, X: p.X, Y: p.Y, Pollutant: tuple.CO2})
		qr, ok := resp.(wire.QueryResponse)
		if !ok {
			t.Fatalf("routed query via %d at %v: %#v", via, p, resp)
		}
		if qr.Value != want {
			t.Errorf("routed query via %d at %v: %v, owner %d answers %v", via, p, qr.Value, owner, want)
		}
	}
}

// checkSinglePrimary verifies the dual-primary oracle mid-transition:
// any two live nodes serving the SAME epoch must serve the identical
// ring — ownership is a pure function of the ring, so ring agreement
// is agreement on every shard's single primary. Nodes on different
// epochs are kept apart by the frame-epoch fence instead.
func (f *memFixture) checkSinglePrimary(t *testing.T) {
	t.Helper()
	byEpoch := map[uint64]wire.RingResponse{}
	who := map[uint64]int{}
	for _, i := range f.liveIDs() {
		w := f.node(i).Ring().Wire()
		if prev, ok := byEpoch[w.Epoch]; ok {
			if !reflect.DeepEqual(prev, w) {
				t.Fatalf("nodes %d and %d serve different rings at the same epoch %d:\n%#v\n%#v",
					who[w.Epoch], i, w.Epoch, prev, w)
			}
			continue
		}
		byEpoch[w.Epoch] = w
		who[w.Epoch] = i
	}
}

// positionsOf projects a batch onto its positions.
func positionsOf(b tuple.Batch) []geo.Point {
	out := make([]geo.Point, len(b))
	for i, r := range b {
		out[i] = r.Pos()
	}
	return out
}

// waitMirrors blocks until every sampled position's replicas answer
// byte-equal to its owner's engine — the replication streams have
// drained, so killing a primary afterwards loses nothing.
func (f *memFixture) waitMirrors(t *testing.T, positions []geo.Point) {
	t.Helper()
	ctx := context.Background()
	ring := f.currentRing()
	deadline := time.Now().Add(30 * time.Second)
	for {
		lag := ""
	check:
		for _, p := range positions {
			k := cluster.ShardKey{Pollutant: tuple.CO2, Cell: ring.CellOf(p)}
			reps := ring.ReplicasFor(k)
			want, err := f.engine(reps[0]).Query(ctx, query.Request{T: queryT, X: p.X, Y: p.Y, Pollutant: tuple.CO2})
			if err != nil {
				t.Fatalf("owner %d query: %v", reps[0], err)
			}
			for _, rep := range reps[1:] {
				tr := &memTransport{f: f, to: rep}
				resp, err := tr.Exchange(wire.ReplicaRead{Origin: uint16(reps[0]),
					Inner: wire.QueryRequest{T: queryT, X: p.X, Y: p.Y, Pollutant: tuple.CO2}})
				if err != nil {
					t.Fatal(err)
				}
				if er, isErr := resp.(wire.ErrorResponse); isErr && strings.HasPrefix(er.Msg, "replica:") {
					lag = fmt.Sprintf("replica %d of %d: %s", rep, reps[0], er.Msg)
					break check
				}
				if qr, isQ := resp.(wire.QueryResponse); !isQ || qr.Value != want {
					lag = fmt.Sprintf("replica %d of %d answers %#v, owner %v", rep, reps[0], resp, want)
					break check
				}
			}
		}
		if lag == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("mirrors never converged: %s", lag)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// --- live transitions -------------------------------------------------

// TestJoinUnderWriteLoad is the live-rebalance acceptance demo: a
// 3-node replicated cluster joins a 4th node while a writer commits
// tuples and a reader queries — zero query errors, zero lost acked
// tuples, and the joiner ends up owning (and serving) real shards at
// epoch 1 on every node.
func TestJoinUnderWriteLoad(t *testing.T) {
	f := newMemFixture(t, 3, 2)
	base := memLattice(0)
	f.loadVia(t, 0, base)

	var (
		wg         sync.WaitGroup
		stop       = make(chan struct{}) //bounded: close-only signal channel
		writerUp   = make(chan struct{}) //bounded: close-only signal channel
		readerUp   = make(chan struct{}) //bounded: close-only signal channel
		ackedMu    sync.Mutex
		acked      []geo.Point
		queryErrs  atomic.Int64
		queryTotal atomic.Int64
	)
	// Background writer: single-tuple acked commits on the 100 m-offset
	// band, rotating the entry node. Only acked tuples join the oracle.
	writerPool := memLattice(100)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tp := writerPool[i%len(writerPool)]
			resp := f.node(i % 3).HandleMessage(wire.IngestRequest{Pollutant: tuple.CO2, Tuples: tuple.Batch{tp}})
			if ir, ok := resp.(wire.IngestResponse); ok && ir.Ingested == 1 {
				ackedMu.Lock()
				acked = append(acked, tp.Pos())
				ackedMu.Unlock()
			}
			if i == 0 {
				close(writerUp)
			}
			time.Sleep(time.Millisecond) // yield: a spinning loop starves the join on one CPU
		}
	}()
	// Background reader: routed cover queries; any non-answer is an
	// availability failure.
	samples := positionsOf(base)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p := samples[i%len(samples)]
			queryTotal.Add(1)
			resp := f.node(i % 3).HandleMessage(wire.QueryRequest{T: queryT, X: p.X, Y: p.Y, Pollutant: tuple.CO2})
			if _, ok := resp.(wire.QueryResponse); !ok {
				queryErrs.Add(1)
				t.Errorf("query during join answered %#v", resp)
			}
			if i == 0 {
				close(readerUp)
			}
			time.Sleep(time.Millisecond) // yield: a spinning loop starves the join on one CPU
		}
	}()
	// On a single-CPU box the spinning writer can starve the reader (or
	// vice versa) for the whole join window; gate the join on both loops
	// having completed an iteration so "the load ran" is deterministic.
	<-writerUp
	<-readerUp

	joiner := f.addJoiner(t, 0)
	if err := joiner.CompleteJoin(context.Background()); err != nil {
		t.Fatalf("join: %v", err)
	}
	// Keep the load running a moment on the committed topology too.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := queryErrs.Load(); n != 0 {
		t.Fatalf("%d of %d queries errored during the live join", n, queryTotal.Load())
	}
	if queryTotal.Load() == 0 {
		t.Fatal("reader never ran")
	}
	for _, i := range f.liveIDs() {
		if e := f.node(i).Ring().Epoch(); e != memBaseEpoch+1 {
			t.Fatalf("node %d at epoch %d after the join, want %d", i, e, memBaseEpoch+1)
		}
	}
	ring := f.currentRing()
	if cells := ring.OwnedCells(3, tuple.CO2); len(cells) == 0 {
		t.Fatal("joiner owns no shards")
	}
	f.checkPresence(t, positionsOf(base))
	ackedMu.Lock()
	got := append([]geo.Point(nil), acked...)
	ackedMu.Unlock()
	if len(got) == 0 {
		t.Fatal("writer acked nothing — the load never ran")
	}
	f.checkPresence(t, got)
	f.checkRoutedConsistency(t, 0, positionsOf(base))
	f.checkRoutedConsistency(t, 3, positionsOf(base)[:8])
}

// TestDrainHandsOffShards: an operator drain moves the drained node's
// shards to the survivors before the epoch commits — afterwards every
// acked tuple answers from a survivor, routing through any survivor
// works, and the drained node is fenced out of the membership.
func TestDrainHandsOffShards(t *testing.T) {
	f := newMemFixture(t, 3, 2)
	base := memLattice(0)
	f.loadVia(t, 1, base)

	const drained = 2
	if err := f.node(drained).Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ring := f.currentRing()
	if ring.Epoch() != memBaseEpoch+1 || ring.IsLive(drained) {
		t.Fatalf("epoch %d, drained live %v — want epoch %d with node %d tombstoned",
			ring.Epoch(), ring.IsLive(drained), memBaseEpoch+1, drained)
	}
	for _, i := range []int{0, 1} {
		if e := f.node(i).Ring().Epoch(); e != memBaseEpoch+1 {
			t.Fatalf("survivor %d at epoch %d, want %d", i, e, memBaseEpoch+1)
		}
	}
	f.checkPresence(t, positionsOf(base))
	f.checkRoutedConsistency(t, 0, positionsOf(base))
	// Writes routed through a survivor land on the new owners.
	extra := memLattice(100)
	f.loadVia(t, 0, extra)
	f.checkPresence(t, positionsOf(extra))
	f.checkSinglePrimary(t)
}

// TestPromoteReplicaAfterPrimaryDeath: kill a primary outright; a
// surviving replica tombstones it at the next epoch, recovers the dead
// node's shards from the mirrors, and writes resume — within exactly
// one epoch bump.
func TestPromoteReplicaAfterPrimaryDeath(t *testing.T) {
	f := newMemFixture(t, 3, 2)
	base := memLattice(0)
	f.loadVia(t, 0, base)
	f.waitMirrors(t, positionsOf(base))

	const dead = 1
	f.kill(dead)
	if err := f.node(2).Promote(context.Background(), dead); err != nil {
		t.Fatalf("promote: %v", err)
	}
	ring := f.currentRing()
	if ring.Epoch() != memBaseEpoch+1 {
		t.Fatalf("promotion took the cluster to epoch %d, want exactly one bump from %d", ring.Epoch(), memBaseEpoch)
	}
	if ring.IsLive(dead) {
		t.Fatal("dead primary still a live member")
	}
	// The mirrors held everything the dead primary had streamed: no
	// acked tuple is lost, and writes to the re-homed shards resume.
	f.checkPresence(t, positionsOf(base))
	f.checkRoutedConsistency(t, 0, positionsOf(base))
	extra := memLattice(100)
	f.loadVia(t, 2, extra)
	f.checkPresence(t, positionsOf(extra))
	f.checkSinglePrimary(t)
}

// --- deterministic rebalance fault injection --------------------------

// faultAbort is the sentinel a fault hook panics with to simulate the
// coordinator dying at an exact phase boundary.
type faultAbort struct{ phase string }

// phaseFault arms a one-shot fault at a phase boundary: kill fixture
// node `kill` (-1 for none), then optionally abandon the coordinator
// by panicking. CompareAndSwap guarantees exactly one fault per run
// even when the phase label fires again during recovery.
type phaseFault struct {
	phase string
	kill  int
	abort bool
	fired atomic.Bool
}

func (pf *phaseFault) hook(f *memFixture) func(string) {
	return func(phase string) {
		if phase != pf.phase || !pf.fired.CompareAndSwap(false, true) {
			return
		}
		if pf.kill >= 0 {
			f.kill(pf.kill)
		}
		if pf.abort {
			panic(faultAbort{phase: phase})
		}
	}
}

// runAborting runs one coordinator step, turning a faultAbort panic
// into a normal "the coordinator died here" outcome.
func runAborting(fn func() error) (err error, aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(faultAbort); ok {
				aborted = true
				return
			}
			panic(r)
		}
	}()
	return fn(), false
}

// healTraffic drives single-tuple writes through every live node until
// all of them serve the same ring — the epoch fence plus
// refresh-and-retry propagating a half-committed transition that has
// no coordinator left to finish it. The tuples ride the 200 m-offset
// band so they never perturb the other bands' presence oracles; only
// acked ones join the oracle set.
func (f *memFixture) healTraffic(t *testing.T) []geo.Point {
	t.Helper()
	pool := memLattice(200)
	var acked []geo.Point
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; ; i++ {
		live := f.liveIDs()
		converged := true
		first := f.node(live[0]).Ring().Wire()
		for _, n := range live[1:] {
			if !reflect.DeepEqual(f.node(n).Ring().Wire(), first) {
				converged = false
				break
			}
		}
		if converged {
			return acked
		}
		if time.Now().After(deadline) {
			for _, n := range live {
				t.Logf("node %d at epoch %d", n, f.node(n).Ring().Epoch())
			}
			t.Fatal("cluster never converged on one ring through fence-driven healing")
		}
		tp := pool[i%len(pool)]
		via := live[i%len(live)]
		resp := f.node(via).HandleMessage(wire.IngestRequest{Pollutant: tuple.CO2, Tuples: tuple.Batch{tp}})
		if ir, ok := resp.(wire.IngestResponse); ok && ir.Ingested == 1 {
			acked = append(acked, tp.Pos())
		}
	}
}

// TestRebalanceFaultMatrix kills a transfer source, a broadcast
// receiver, or the coordinator itself at every phase boundary of every
// transition — exactly one fault per run — and requires the cluster
// to come back: by coordinator retry where the protocol is retryable,
// by fence-driven healing (plus operator re-promotion) where the
// coordinator is gone past the point of no return. After recovery: no
// acked tuple lost, one ring on every live node, queries byte-equal.
func TestRebalanceFaultMatrix(t *testing.T) {
	type scenario struct {
		kind  string // join | drain | promote
		phase string
		fault string // kill-source | kill-receiver | abort
	}
	var scenarios []scenario
	for _, ph := range []string{"join:pending", "join:bootstrapped", "join:committing", "join:committed"} {
		scenarios = append(scenarios,
			scenario{"join", ph, "kill-source"},
			scenario{"join", ph, "abort"},
		)
	}
	for _, ph := range []string{"drain:pending", "drain:prepared", "drain:fenced"} {
		scenarios = append(scenarios,
			scenario{"drain", ph, "kill-receiver"},
			scenario{"drain", ph, "abort"},
		)
	}
	for _, ph := range []string{"promote:adopted", "promote:recovered"} {
		scenarios = append(scenarios, scenario{"promote", ph, "abort"})
	}

	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.kind+"/"+sc.phase+"/"+sc.fault, func(t *testing.T) {
			f := newMemFixture(t, 3, 2)
			base := memLattice(0)
			f.loadVia(t, 0, base)
			oracle := positionsOf(base)
			ctx := context.Background()

			pf := &phaseFault{phase: sc.phase, kill: -1, abort: sc.fault == "abort"}
			const drainer, promoter, victim = 2, 2, 1
			var attempt func() error
			postFence := false
			switch sc.kind {
			case "join":
				old := f.currentRing()
				if sc.fault == "kill-source" {
					// A dead transfer source is survivable only because its
					// replica mirrors the stream; let the mirrors drain
					// before the joiner enters the ring.
					f.waitMirrors(t, oracle)
				}
				joiner := f.addJoiner(t, 0)
				next := joiner.Ring()
				if sc.fault == "kill-source" {
					// The kill target: whichever old member owns the first
					// shard the joiner gains — it serves the bootstrap pull,
					// which must fall over to the shard's mirror.
					for c := 0; c < next.Cells() && pf.kill < 0; c++ {
						k := cluster.ShardKey{Pollutant: tuple.CO2, Cell: c}
						if next.OwnerKey(k) == 3 && old.OwnerKey(k) != 3 {
							pf.kill = old.OwnerKey(k)
						}
					}
					if pf.kill < 0 {
						t.Skip("joiner gains no shards (placement fluke)")
					}
				}
				f.setHook(3, pf.hook(f))
				attempt = func() error { return joiner.CompleteJoin(ctx) }
			case "drain":
				if sc.fault == "kill-receiver" {
					pf.kill = victim
				}
				f.setHook(drainer, pf.hook(f))
				attempt = func() error { return f.node(drainer).Drain(ctx) }
				// Past the self-fence the drainer cannot re-run Drain (it is
				// no longer a live member of its own ring); recovery is
				// fence-driven healing. A receiver killed at drain:prepared
				// also leaves the drain to fail at commit, after the fence.
				postFence = sc.phase == "drain:fenced" ||
					(sc.phase == "drain:prepared" && sc.fault == "kill-receiver")
			case "promote":
				f.waitMirrors(t, oracle)
				f.kill(victim)
				f.setHook(promoter, pf.hook(f))
				attempt = func() error { return f.node(promoter).Promote(ctx, victim) }
			}

			err, aborted := runAborting(attempt)
			t.Logf("first attempt: err=%v aborted=%v", err, aborted)
			// The dangerous window: whatever the fault left behind, no two
			// same-epoch live nodes may disagree on the ring.
			f.checkSinglePrimary(t)

			// Recovery. Revive the transiently killed party first.
			if pf.kill >= 0 {
				f.revive(pf.kill)
			}
			deadline := time.Now().Add(30 * time.Second)
			switch sc.kind {
			case "join":
				// CompleteJoin is retryable at every abort point: pull
				// progress is deduplicated and the commit broadcast accepts
				// already-committed acks.
				for err != nil || aborted {
					if time.Now().After(deadline) {
						t.Fatalf("join never recovered: %v", err)
					}
					err, aborted = runAborting(attempt)
				}
			case "drain":
				// Retryable only before the self-fence; past it, recovery is
				// the fence-driven healing below.
				for (err != nil || aborted) && !postFence {
					if time.Now().After(deadline) {
						t.Fatalf("drain never recovered: %v", err)
					}
					err, aborted = runAborting(attempt)
					if err != nil && strings.Contains(err.Error(), "not a live member") {
						postFence = true
					}
				}
			case "promote":
				// The operator re-issues the promotion on every surviving
				// replica: the already-tombstoned path re-runs the recovery
				// pull, so each survivor replays its own mirror of the dead
				// primary even though the abandoned coordinator never told
				// it to.
				for _, n := range f.liveIDs() {
					for {
						if time.Now().After(deadline) {
							t.Fatal("promotion never recovered")
						}
						if e := f.node(n).Promote(ctx, victim); e == nil {
							break
						}
					}
				}
			}
			healed := f.healTraffic(t)

			ring := f.currentRing()
			if ring.Epoch() <= memBaseEpoch {
				t.Fatal("transition recovered but the epoch never moved")
			}
			f.checkPresence(t, oracle)
			f.checkPresence(t, healed)
			f.checkRoutedConsistency(t, 0, oracle)
			f.checkSinglePrimary(t)
		})
	}
}
