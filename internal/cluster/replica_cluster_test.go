package cluster_test

// Replication tests: the 3-node netsim cluster from cluster_test.go
// with Replicas: 2 — every shard's owner streams its committed ingests
// to the next ring successor, which holds a full mirror and answers the
// owner's shards when it dies. The acceptance properties: replica
// answers are byte-equal to the owner's, killing one node yields ZERO
// errors on the query path (reads fail over), killing a shard's whole
// replica set degrades scatter-gather to a marked partial result
// instead of an all-or-nothing 502, a severed replication stream heals
// through pull catch-up, routed subscriptions re-home their dead leg at
// a replica, and the sharded client fails over and hedges. Runs under
// -race.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/kmeans"
	"repro/internal/netsim"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/subs"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// newMirrorEngine is the test mirror factory: the same engine
// configuration as newEngine (window, k-means seed), so a mirror that
// replayed the primary's commits answers byte-equal.
func newMirrorEngine() cluster.Handler {
	st := store.MustOpenMemory(windowLen)
	e, err := server.NewMultiEngine(map[tuple.Pollutant]*store.Store{tuple.CO2: st},
		core.Config{Cluster: kmeans.Config{Seed: 7}})
	if err != nil {
		panic(err)
	}
	return e
}

// newReplicatedFixture is newFixture with Replicas: 2 and a replication
// config on every node. Nodes are Closed on cleanup (stopping the
// stream workers and the mirror engines they hold).
func newReplicatedFixture(t *testing.T) *fixture {
	t.Helper()
	cells, err := cluster.Cells(clusterRegion, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := cluster.NewRing(cluster.Desc{
		Nodes:    []string{"node-0:8081", "node-1:8081", "node-2:8081"},
		Cells:    cells,
		Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	link, err := netsim.NewLink(netsim.ThreeG())
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{ring: ring, link: link, dead: make([]atomic.Bool, 3), streams: make(map[int][]*fakeStream)}
	for i := 0; i < 3; i++ {
		f.engines = append(f.engines, newEngine(t))
	}
	for i := 0; i < 3; i++ {
		transports := make([]cluster.Transport, 3)
		for j := 0; j < 3; j++ {
			if j != i {
				transports[j] = &nodeTransport{f: f, to: j}
			}
		}
		node, err := cluster.NewNode(cluster.NodeConfig{
			Ring:        ring,
			Self:        i,
			Local:       f.engines[i],
			Transports:  transports,
			Default:     tuple.CO2,
			Streams:     f.openStream,
			SubQueue:    8,
			Replication: cluster.ReplicationConfig{NewMirror: newMirrorEngine},
		})
		if err != nil {
			t.Fatal(err)
		}
		f.nodes = append(f.nodes, node)
		t.Cleanup(func() { node.Close() })
	}
	return f
}

// replicaRead asks node rep for origin's answer to req from its mirror,
// over the wire codec (a "replica:"-prefixed error is a miss).
func (f *fixture) replicaRead(t *testing.T, rep, origin int, req wire.Message) (wire.Message, bool) {
	t.Helper()
	tr := &nodeTransport{f: f, to: rep}
	resp, err := tr.Exchange(wire.ReplicaRead{Origin: uint16(origin), Inner: req})
	if err != nil {
		return nil, false
	}
	if er, isErr := resp.(wire.ErrorResponse); isErr && strings.HasPrefix(er.Msg, "replica:") {
		return resp, false
	}
	return resp, true
}

// waitConverged polls until every sample's replicas answer exactly the
// owner engine's value — the replication streams (and any catch-up
// pulls) have drained.
func waitConverged(t *testing.T, f *fixture, reqs []query.Request) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(30 * time.Second)
	for {
		lag := ""
	check:
		for _, req := range reqs {
			pt := geo.Point{X: req.X, Y: req.Y}
			owner := f.ring.Owner(tuple.CO2, pt)
			want, err := f.engines[owner].Query(ctx, req)
			if err != nil {
				t.Fatalf("owner %d query: %v", owner, err)
			}
			k := cluster.ShardKey{Pollutant: tuple.CO2, Cell: f.ring.CellOf(pt)}
			for _, rep := range f.ring.ReplicasFor(k)[1:] {
				resp, ok := f.replicaRead(t, rep, owner, wire.QueryRequest{T: req.T, X: req.X, Y: req.Y, Pollutant: req.Pollutant})
				if !ok {
					lag = fmt.Sprintf("replica %d has no usable mirror of %d yet: %#v", rep, owner, resp)
					break check
				}
				qr, isQ := resp.(wire.QueryResponse)
				if !isQ || qr.Value != want {
					lag = fmt.Sprintf("replica %d of %d answers %#v, owner answers %v", rep, owner, resp, want)
					break check
				}
			}
		}
		if lag == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never converged: %s", lag)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestReplicaStreamsBuildMirrors: a routed ingest reaches every shard
// owner AND its replica, and the mirrors answer byte-equal to the
// owner's engine.
func TestReplicaStreamsBuildMirrors(t *testing.T) {
	f := newReplicatedFixture(t)
	data := makeData()
	f.load(t, data)
	waitConverged(t, f, sampleRequests(data))

	streamed, applied, mirrors := int64(0), int64(0), 0
	for i, n := range f.nodes {
		rs, ok := n.ReplicationStats()
		if !ok {
			t.Fatalf("node %d reports no replication stats on a replicated ring", i)
		}
		streamed += rs.Streamed
		applied += rs.Applied
		mirrors += rs.Mirrors
	}
	if streamed == 0 {
		t.Error("no ingest frame was streamed to a replica")
	}
	if applied == 0 {
		t.Error("no streamed frame was applied to a mirror")
	}
	if mirrors == 0 {
		t.Error("no node holds a mirror")
	}
}

// TestReplicaFailoverZeroQueryErrors is the headline acceptance: with
// Replicas: 2, killing one node produces ZERO errors on the query path
// — every sample owned by the dead node answers from a replica,
// byte-equal to the answer the owner gave before dying.
func TestReplicaFailoverZeroQueryErrors(t *testing.T) {
	f := newReplicatedFixture(t)
	data := makeData()
	f.load(t, data)
	samples := sampleRequests(data)
	waitConverged(t, f, samples)
	ctx := context.Background()

	// Record the owners' answers (and the full heatmap) before the kill.
	want := make([]float64, len(samples))
	for i, req := range samples {
		owner := f.ring.Owner(tuple.CO2, geo.Point{X: req.X, Y: req.Y})
		v, err := f.engines[owner].Query(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	preGrid, err := f.nodes[0].Heatmap(ctx, tuple.CO2, queryT, 16, 16)
	if err != nil {
		t.Fatalf("pre-kill heatmap: %v", err)
	}

	const victim = 2
	f.kill(victim)

	victimShards := 0
	for i, req := range samples {
		owner := f.ring.Owner(tuple.CO2, geo.Point{X: req.X, Y: req.Y})
		if owner == victim {
			victimShards++
		}
		for n := 0; n < 2; n++ { // query through the survivors
			resp := f.nodes[n].HandleMessage(wire.QueryRequest{T: req.T, X: req.X, Y: req.Y, Pollutant: req.Pollutant})
			qr, ok := resp.(wire.QueryResponse)
			if !ok {
				t.Fatalf("node %d errored on (%v,%v) owned by %d: %#v", n, req.X, req.Y, owner, resp)
			}
			if qr.Value != want[i] {
				t.Fatalf("node %d answers %v at (%v,%v), owner %d answered %v before dying",
					n, qr.Value, req.X, req.Y, owner, want[i])
			}
		}
	}
	if victimShards == 0 {
		t.Fatal("no sample hit the dead node's shards — broaden the samples")
	}
	failedOver := int64(0)
	for n := 0; n < 2; n++ {
		failedOver += f.nodes[n].Stats().FailedOver
	}
	if failedOver == 0 {
		t.Error("no request failed over — the dead node's shards answered without replicas?")
	}

	// Scatter-gather heals too: the post-kill heatmap is byte-equal to
	// the pre-kill one (mirrors replayed the exact commit stream), with
	// no partial marker.
	postGrid, err := f.nodes[0].Heatmap(ctx, tuple.CO2, queryT, 16, 16)
	if err != nil {
		t.Fatalf("post-kill heatmap: %v", err)
	}
	if !reflect.DeepEqual(preGrid, postGrid) {
		t.Fatal("post-kill heatmap differs from pre-kill — replica shards are not byte-equal")
	}
	if _, err := f.nodes[0].Model(ctx, tuple.CO2, queryT); err != nil {
		t.Fatalf("post-kill model: %v", err)
	}
}

// TestReplicaBatchFailover: a batch spanning the dead node's shards
// answers every item (no per-item unreachable errors).
func TestReplicaBatchFailover(t *testing.T) {
	f := newReplicatedFixture(t)
	data := makeData()
	f.load(t, data)
	samples := sampleRequests(data)
	waitConverged(t, f, samples)
	ctx := context.Background()

	want := make([]float64, len(samples))
	for i, req := range samples {
		owner := f.ring.Owner(tuple.CO2, geo.Point{X: req.X, Y: req.Y})
		v, err := f.engines[owner].Query(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	const victim = 1
	f.kill(victim)

	results, err := f.nodes[0].QueryBatch(ctx, samples)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("batch item %d failed after node loss: %v", i, res.Err)
		}
		if res.Value != want[i] {
			t.Fatalf("batch item %d answers %v, owner answered %v", i, res.Value, want[i])
		}
	}
}

// TestReplicaPartialResultWhenReplicaSetDead: killing a shard's owner
// AND its only replica degrades scatter-gather to a partial result —
// the grid still comes back, marked with the dead node and a stale
// shard count — instead of the all-or-nothing 502.
func TestReplicaPartialResultWhenReplicaSetDead(t *testing.T) {
	f := newReplicatedFixture(t)
	data := makeData()
	f.load(t, data)
	waitConverged(t, f, sampleRequests(data))
	ctx := context.Background()

	// Pick a victim shard and kill its entire replica set: with R=2 and
	// 3 nodes that is the owner plus one peer, leaving one survivor.
	const victim = 0
	cells := f.ring.OwnedCells(victim, tuple.CO2)
	if len(cells) == 0 {
		t.Fatal("victim owns no shards")
	}
	reps := f.ring.ReplicasFor(cluster.ShardKey{Pollutant: tuple.CO2, Cell: cells[0]})
	if len(reps) != 2 || reps[0] != victim {
		t.Fatalf("unexpected replica set %v", reps)
	}
	peer := reps[1]
	survivor := 3 - victim - peer
	f.kill(victim)
	f.kill(peer)

	g, err := f.nodes[survivor].Heatmap(ctx, tuple.CO2, queryT, 16, 16)
	if err == nil {
		t.Fatal("heatmap with a whole replica set dead returned no partial marker")
	}
	if !errors.Is(err, cluster.ErrPartialResult) {
		t.Fatalf("heatmap error is %v, want ErrPartialResult", err)
	}
	var pe *cluster.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not unwrap to *PartialError", err)
	}
	if len(pe.Dead) == 0 || pe.StaleShards == 0 {
		t.Fatalf("partial marker is empty: %+v", pe.Partial)
	}
	if g == nil || len(g.Values) == 0 {
		t.Fatal("partial heatmap carried no grid — availability lost with the marker")
	}
	if _, err := f.nodes[survivor].Model(ctx, tuple.CO2, queryT); !errors.Is(err, cluster.ErrPartialResult) {
		t.Fatalf("model error is %v, want ErrPartialResult", err)
	}

	// A point query on the dead replica set still fails loudly — partial
	// results are a scatter-gather contract, not a silent wrong answer.
	deadCellPt := func() geo.Point {
		for _, r := range data {
			p := r.Pos()
			k := cluster.ShardKey{Pollutant: tuple.CO2, Cell: f.ring.CellOf(p)}
			rr := f.ring.ReplicasFor(k)
			if rr[0] == victim && rr[1] == peer {
				return p
			}
		}
		t.Fatal("no lattice point on the dead replica set")
		return geo.Point{}
	}()
	resp := f.nodes[survivor].HandleMessage(wire.QueryRequest{T: queryT, X: deadCellPt.X, Y: deadCellPt.Y, Pollutant: tuple.CO2})
	er, isErr := resp.(wire.ErrorResponse)
	if !isErr {
		t.Fatalf("dead-replica-set query answered: %#v", resp)
	}
	if !strings.Contains(er.Msg, "unreachable") {
		t.Fatalf("dead-replica-set query error %q does not say unreachable", er.Msg)
	}
}

// TestReplicaCatchupHealsSeveredStream: a replica that missed streamed
// frames while down detects the sequence gap on the next frame and
// pulls checkpoint-or-suffix catch-up from the primary until byte-equal
// again — including surviving a crashed catch-up pull (primary dead
// mid-pull).
func TestReplicaCatchupHealsSeveredStream(t *testing.T) {
	f := newReplicatedFixture(t)
	data := makeData()
	third := len(data) / 3

	f.load(t, data[:third])
	samples := sampleRequests(data[:third])
	waitConverged(t, f, samples)

	// Sever: node 2 drops off the network; frames streamed to it are
	// lost (the primaries' bounded queues drain into a dead transport).
	// Writes never fail over (primary-commits design), so the outage
	// load carries only the live nodes' shards.
	f.dead[2].Store(true)
	var wave2 tuple.Batch
	for _, r := range data[third : 2*third] {
		if f.ring.Owner(tuple.CO2, r.Pos()) != 2 {
			wave2 = append(wave2, r)
		}
	}
	f.load(t, wave2)

	// Crash injection on the catch-up path: wake node 2 up, then feed it
	// a forged frame far ahead of its mirror state while its origin is
	// dead — the gap NAK schedules a pull that must fail cleanly, not
	// wedge the node.
	f.dead[2].Store(false)
	origin := -1
	for _, n := range []int{0, 1} {
		for _, p := range f.ring.ReplicaPeers(n, tuple.CO2) {
			if p == 2 {
				origin = n
			}
		}
	}
	if origin < 0 {
		t.Skip("node 2 backs no primary — ring layout changed")
	}
	f.dead[origin].Store(true)
	forged := wire.ReplicaIngest{Origin: uint16(origin), Pollutant: tuple.CO2, Seq: 1 << 40,
		Tuples: tuple.Batch{{T: 100, X: 0, Y: 0, S: 1}}}
	resp := f.nodes[2].HandleMessage(forged)
	if er, isErr := resp.(wire.ErrorResponse); !isErr || !strings.Contains(er.Msg, "replica:") {
		t.Fatalf("forged gap frame was not NAKed: %#v", resp)
	}
	// The failed pull must not poison the mirror: revive the origin and
	// stream the rest; gap detection pulls the real suffix.
	f.dead[origin].Store(false)
	f.load(t, data[2*third:])

	samples = sampleRequests(data)
	waitConverged(t, f, samples)

	gaps, catchups := int64(0), int64(0)
	for _, n := range f.nodes {
		if rs, ok := n.ReplicationStats(); ok {
			gaps += rs.Gaps
			catchups += rs.Catchups
		}
	}
	if gaps == 0 {
		t.Error("no sequence gap was detected — the severed stream went unnoticed")
	}
	if catchups == 0 {
		t.Error("no catch-up pull ran — convergence happened without healing?")
	}

	// And the healed mirrors actually serve: kill a primary, every one
	// of its samples answers byte-equal through a survivor.
	ctx := context.Background()
	want := make([]float64, len(samples))
	for i, req := range samples {
		owner := f.ring.Owner(tuple.CO2, geo.Point{X: req.X, Y: req.Y})
		v, err := f.engines[owner].Query(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	f.kill(origin)
	survivors := []int{0, 1, 2}
	for i, req := range samples {
		for _, n := range survivors {
			if n == origin {
				continue
			}
			resp := f.nodes[n].HandleMessage(wire.QueryRequest{T: req.T, X: req.X, Y: req.Y, Pollutant: req.Pollutant})
			qr, ok := resp.(wire.QueryResponse)
			if !ok {
				t.Fatalf("node %d errored at (%v,%v): %#v", n, req.X, req.Y, resp)
			}
			if qr.Value != want[i] {
				t.Fatalf("node %d answers %v at (%v,%v), owner answered %v", n, qr.Value, req.X, req.Y, want[i])
			}
		}
	}
}

// TestReplicaSubscriptionRehome: killing the owner of a routed
// subscription leg re-homes that leg at the owner's replica instead of
// failing the feed. The heal is silent — the mirror's resync is
// byte-equal to the last pushed values, so the delta filter suppresses
// it — and the re-homed leg proves itself live by delivering deltas
// again once the revived owner streams new commits to its mirror.
func TestReplicaSubscriptionRehome(t *testing.T) {
	f := newReplicatedFixture(t)
	data := makeData()
	f.load(t, data)
	waitConverged(t, f, sampleRequests(data))
	ctx := context.Background()

	pts, owners := routeAcrossShards(t, f, data)
	h, err := f.nodes[0].Subscribe(ctx, tuple.CO2, pts)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Drain the prime events; record every point's primed value.
	values := make(map[int]float64)
	for len(values) < len(pts) {
		ev := recvSub(t, h)
		if ev.Err != "" {
			t.Fatalf("subscription error during priming: %s", ev.Err)
		}
		for _, p := range ev.Points {
			values[p.Index] = p.Value
		}
	}

	// Kill a remote owner: the leg must swap to a replica mirror with
	// no terminal unreachable event on the feed.
	victim := -1
	for _, o := range owners {
		if o != 0 {
			victim = o
			break
		}
	}
	if victim < 0 {
		t.Fatal("route has no remote leg")
	}
	f.kill(victim)
	deadline := time.Now().Add(15 * time.Second)
	for f.nodes[0].Stats().Rehomed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leg never re-homed after killing its owner")
		}
		select {
		case ev, ok := <-h.Events():
			if ok && strings.Contains(ev.Err, "unreachable") {
				t.Fatalf("leg died instead of re-homing: %s", ev.Err)
			}
		case <-time.After(20 * time.Millisecond):
		}
	}

	// The re-homed leg is live: when the owner returns and commits new
	// data, the replication stream updates the mirror, whose
	// invalidation re-pushes the leg's points through the merged feed.
	f.dead[victim].Store(false)
	var bumped tuple.Batch
	for _, r := range data {
		if f.ring.Owner(tuple.CO2, r.Pos()) == victim {
			bumped = append(bumped, tuple.Raw{T: r.T, X: r.X, Y: r.Y, S: r.S + 170})
		}
	}
	if len(bumped) == 0 {
		t.Fatal("victim owns no lattice tuples")
	}
	if err := f.nodes[0].Ingest(ctx, tuple.CO2, bumped); err != nil {
		t.Fatalf("post-revival ingest: %v", err)
	}

	updated := make(map[int]bool)
	wantUpdated := 0
	for _, o := range owners {
		if o == victim {
			wantUpdated++
		}
	}
	evDeadline := time.After(20 * time.Second)
	for len(updated) < wantUpdated {
		var ev subs.Event
		select {
		case e, ok := <-h.Events():
			if !ok {
				t.Fatal("feed closed while waiting for re-homed deltas")
			}
			ev = e
		case <-evDeadline:
			t.Fatalf("re-homed leg delivered %d of %d updated points", len(updated), wantUpdated)
		}
		if ev.Err != "" {
			if strings.Contains(ev.Err, "unreachable") {
				t.Fatalf("feed failed after re-home: %s", ev.Err)
			}
			continue
		}
		for _, p := range ev.Points {
			if owners[p.Index] != victim {
				t.Fatalf("delta carried point %d (owner %d) after a victim-only ingest", p.Index, owners[p.Index])
			}
			if p.Err != "" {
				t.Fatalf("re-homed point %d failed: %s", p.Index, p.Err)
			}
			if p.Value == values[p.Index] {
				t.Fatalf("re-homed point %d pushed the pre-bump value %v", p.Index, p.Value)
			}
			updated[p.Index] = true
		}
	}
}

// TestShardedClientFailsOverToReplica: satellite 1 — a dial/exchange
// error at the shard owner is treated like a bounce: the client
// refreshes the ring and answers from a replica instead of erroring.
func TestShardedClientFailsOverToReplica(t *testing.T) {
	f := newReplicatedFixture(t)
	data := makeData()
	f.load(t, data)
	samples := sampleRequests(data)
	waitConverged(t, f, samples)
	ctx := context.Background()

	dial := func(addr string) (client.Transport, error) {
		for i := 0; i < f.ring.Nodes(); i++ {
			if f.ring.Addr(i) == addr {
				return &nodeTransport{f: f, to: i}, nil
			}
		}
		return nil, fmt.Errorf("unknown address %q", addr)
	}
	sc := client.NewSharded(&nodeTransport{f: f, to: 0}, dial)

	want := make([]float64, len(samples))
	for i, req := range samples {
		owner := f.ring.Owner(tuple.CO2, geo.Point{X: req.X, Y: req.Y})
		v, err := f.engines[owner].Query(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	// Warm the ring before the kill, then drop a non-seed node.
	if _, err := sc.Exchange(wire.QueryRequest{T: samples[0].T, X: samples[0].X, Y: samples[0].Y, Pollutant: tuple.CO2}); err != nil {
		t.Fatal(err)
	}
	const victim = 1
	f.kill(victim)

	victimHits := 0
	for i, req := range samples {
		owner := f.ring.Owner(tuple.CO2, geo.Point{X: req.X, Y: req.Y})
		if owner == victim {
			victimHits++
		}
		resp, err := sc.Exchange(wire.QueryRequest{T: req.T, X: req.X, Y: req.Y, Pollutant: req.Pollutant})
		if err != nil {
			t.Fatalf("query owned by %d failed after killing %d: %v", owner, victim, err)
		}
		qr, ok := resp.(wire.QueryResponse)
		if !ok {
			t.Fatalf("unexpected response %#v", resp)
		}
		if qr.Value != want[i] {
			t.Fatalf("failover answer %v at (%v,%v), owner answered %v", qr.Value, req.X, req.Y, want[i])
		}
	}
	if victimHits == 0 {
		t.Fatal("no sample owned by the victim")
	}
	if sc.Stats().Failovers == 0 {
		t.Error("no exchange counted as failed over")
	}
}

// TestShardedClientHedgedReads: a slow primary is raced by a hedge
// probe at the replica after the p99-derived delay; the probe's
// byte-equal answer wins.
func TestShardedClientHedgedReads(t *testing.T) {
	f := newReplicatedFixture(t)
	data := makeData()
	f.load(t, data)
	samples := sampleRequests(data)
	waitConverged(t, f, samples)
	ctx := context.Background()

	const slowNode = 0
	const slowBy = 30 * time.Millisecond
	dial := func(addr string) (client.Transport, error) {
		for i := 0; i < f.ring.Nodes(); i++ {
			if f.ring.Addr(i) == addr {
				var tr client.Transport = &nodeTransport{f: f, to: i}
				if i == slowNode {
					tr = &slowTransport{inner: tr, delay: slowBy}
				}
				return tr, nil
			}
		}
		return nil, fmt.Errorf("unknown address %q", addr)
	}
	sc := client.NewSharded(&nodeTransport{f: f, to: 1}, dial)
	sc.SetHedging(true)

	hedgedSomething := false
	for i, req := range samples {
		owner := f.ring.Owner(tuple.CO2, geo.Point{X: req.X, Y: req.Y})
		want, err := f.engines[owner].Query(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := sc.Exchange(wire.QueryRequest{T: req.T, X: req.X, Y: req.Y, Pollutant: req.Pollutant})
		if err != nil {
			t.Fatalf("hedged query %d: %v", i, err)
		}
		qr, ok := resp.(wire.QueryResponse)
		if !ok {
			t.Fatalf("unexpected response %#v", resp)
		}
		if qr.Value != want {
			t.Fatalf("hedged answer %v at (%v,%v), owner answers %v", qr.Value, req.X, req.Y, want)
		}
		if owner == slowNode {
			hedgedSomething = true
		}
	}
	if !hedgedSomething {
		t.Fatal("no sample owned by the slow node")
	}
	st := sc.Stats()
	if st.Hedged == 0 {
		t.Error("no hedge probe launched against a 30ms primary with a 2ms hedge delay")
	}
	if st.HedgeWins == 0 {
		t.Error("no hedge probe won against a 30ms primary")
	}
}

// slowTransport injects fixed latency in front of a transport — the
// "slow primary" of the hedging acceptance test.
type slowTransport struct {
	inner client.Transport
	delay time.Duration
}

func (s *slowTransport) Exchange(req wire.Message) (wire.Message, error) {
	time.Sleep(s.delay)
	return s.inner.Exchange(req)
}
