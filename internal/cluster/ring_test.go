package cluster

// Unit tests for the shard map and the consistent-hash ring: cell
// determinism, placement determinism across independently-built rings,
// ownership balance, and the consistent-hashing stability property
// (growing the cluster only moves shards onto the new node).

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/tuple"
	"repro/internal/wire"
)

var testRegion = geo.Rect{Min: geo.Point{X: -2000, Y: -2000}, Max: geo.Point{X: 2000, Y: 2000}}

func TestCellsDeterministic(t *testing.T) {
	a, err := Cells(testRegion, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cells(testRegion, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 8 {
		t.Fatalf("got %d cells, want 8", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
	for i := range a {
		if !testRegion.Contains(a[i]) {
			t.Errorf("cell %d centroid %v outside region", i, a[i])
		}
	}
}

func TestCellsValidation(t *testing.T) {
	if _, err := Cells(testRegion, 0, 1); err == nil {
		t.Error("0 cells accepted")
	}
	if _, err := Cells(geo.Rect{Min: geo.Point{X: 1}, Max: geo.Point{X: 0}}, 4, 1); err == nil {
		t.Error("invalid region accepted")
	}
	// A degenerate (point) region still partitions.
	cells, err := Cells(geo.Rect{}, 4, 1)
	if err != nil || len(cells) != 4 {
		t.Errorf("degenerate region: cells=%d err=%v", len(cells), err)
	}
}

func testDesc(nodes int) Desc {
	cells, err := Cells(testRegion, 16, 1)
	if err != nil {
		panic(err)
	}
	addrs := make([]string, nodes)
	for i := range addrs {
		addrs[i] = "node-" + string(rune('a'+i))
	}
	return Desc{Nodes: addrs, Cells: cells}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(Desc{Cells: []geo.Point{{}}}); err == nil {
		t.Error("ring without nodes accepted")
	}
	if _, err := NewRing(Desc{Nodes: []string{"a"}}); err == nil {
		t.Error("ring without cells accepted")
	}
	if _, err := NewRing(Desc{Nodes: []string{"a"}, Cells: []geo.Point{{}}, VNodes: -1}); err == nil {
		t.Error("negative vnodes accepted")
	}
}

func TestRingDeterministicAcrossParties(t *testing.T) {
	desc := testDesc(3)
	a, err := NewRing(desc)
	if err != nil {
		t.Fatal(err)
	}
	// A second party reconstructs the ring from the wire exchange.
	b, err := RingFromWire(a.Wire())
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []tuple.Pollutant{tuple.CO2, tuple.CO, tuple.PM} {
		for c := 0; c < a.Cells(); c++ {
			k := ShardKey{Pollutant: pol, Cell: c}
			if a.OwnerKey(k) != b.OwnerKey(k) {
				t.Fatalf("shard %v: owners diverge (%d vs %d)", k, a.OwnerKey(k), b.OwnerKey(k))
			}
		}
	}
	if a.Desc().VNodes != DefaultVNodes {
		t.Errorf("default vnodes not applied: %d", a.Desc().VNodes)
	}
}

func TestRingBalance(t *testing.T) {
	r, err := NewRing(testDesc(3))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, r.Nodes())
	for _, pol := range []tuple.Pollutant{tuple.CO2, tuple.CO, tuple.PM} {
		for c := 0; c < r.Cells(); c++ {
			counts[r.OwnerKey(ShardKey{Pollutant: pol, Cell: c})]++
		}
	}
	total := 0
	for n, c := range counts {
		if c == 0 {
			t.Errorf("node %d owns no shards", n)
		}
		total += c
		if got := len(r.OwnedCells(n, tuple.CO2)) + len(r.OwnedCells(n, tuple.CO)) + len(r.OwnedCells(n, tuple.PM)); got != c {
			t.Errorf("node %d: OwnedCells reports %d shards, direct count %d", n, got, c)
		}
	}
	if total != 3*r.Cells() {
		t.Fatalf("shards double- or un-owned: %d of %d", total, 3*r.Cells())
	}
}

// TestRingStabilityOnGrowth is the consistent-hashing property the ring
// exists for: adding a node moves shards only onto the new node, never
// between surviving nodes.
func TestRingStabilityOnGrowth(t *testing.T) {
	small, err := NewRing(testDesc(3))
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewRing(testDesc(4))
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, pol := range []tuple.Pollutant{tuple.CO2, tuple.CO, tuple.PM} {
		for c := 0; c < small.Cells(); c++ {
			k := ShardKey{Pollutant: pol, Cell: c}
			before, after := small.OwnerKey(k), big.OwnerKey(k)
			if before != after {
				moved++
				if after != 3 {
					t.Fatalf("shard %v moved node %d -> %d instead of onto the new node", k, before, after)
				}
			}
		}
	}
	if moved == 0 {
		t.Error("no shard moved onto the new node (suspicious placement)")
	}
}

func TestOwnerMatchesCellAssignment(t *testing.T) {
	r, err := NewRing(testDesc(3))
	if err != nil {
		t.Fatal(err)
	}
	p := geo.Point{X: 731, Y: -1204}
	cell := r.CellOf(p)
	if got, want := r.Owner(tuple.CO2, p), r.OwnerKey(ShardKey{Pollutant: tuple.CO2, Cell: cell}); got != want {
		t.Fatalf("Owner %d != OwnerKey %d for cell %d", got, want, cell)
	}
	// Different pollutants at the same position may land on different
	// nodes — the pollutant is part of the shard key. Just verify both
	// resolve inside the ring.
	for _, pol := range []tuple.Pollutant{tuple.CO2, tuple.CO, tuple.PM} {
		if o := r.Owner(pol, p); o < 0 || o >= r.Nodes() {
			t.Fatalf("owner %d outside ring", o)
		}
	}
}

func TestNodeConfigValidation(t *testing.T) {
	r, err := NewRing(testDesc(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNode(NodeConfig{Self: 0}); err == nil {
		t.Error("node without ring accepted")
	}
	if _, err := NewNode(NodeConfig{Ring: r, Self: 5}); err == nil {
		t.Error("node ID outside ring accepted")
	}
	if _, err := NewNode(NodeConfig{Ring: r, Self: 0, Local: nil}); err == nil {
		t.Error("member node without local handler accepted")
	}
	if _, err := NewNode(NodeConfig{Ring: r, Self: 0, Local: stubHandler{}, Transports: make([]Transport, 1)}); err == nil {
		t.Error("transport/node count mismatch accepted")
	}
	if _, err := NewNode(NodeConfig{Ring: r, Self: -1, Local: stubHandler{}}); err == nil {
		t.Error("router with local handler accepted")
	}
	if _, err := NewNode(NodeConfig{Ring: r, Self: -1}); err != nil {
		t.Errorf("pure router rejected: %v", err)
	}
}

type stubHandler struct{}

func (stubHandler) HandleMessage(m wire.Message) wire.Message {
	return wire.ErrorResponse{Msg: "stub"}
}
