package cluster_test

// Routed-subscription tests: a subscription opened at one node spans
// every shard owner over in-process push streams (frames crossing the
// binary codec), merged deltas stay owner-local on targeted ingests,
// and killing an owner yields an error event naming it while the other
// legs keep updating.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/query"
	"repro/internal/subs"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// fakeStream is an in-process cluster.PushStream: the server half is
// the target node's HandleStream, every frame crosses the binary codec,
// and the fixture kill switch can sever it like a dropped TCP
// connection.
type fakeStream struct {
	ack  wire.Message
	ch   chan wire.Message
	dead *atomic.Bool

	mu      sync.Mutex
	err     error
	stop    func()
	stopped bool
}

func (s *fakeStream) Ack() wire.Message      { return s.ack }
func (s *fakeStream) C() <-chan wire.Message { return s.ch }

func (s *fakeStream) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *fakeStream) Close() error {
	s.sever(nil)
	return nil
}

// sever tears the server half down once, recording the failure reason
// (nil for a clean client-side close).
func (s *fakeStream) sever(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	stop, stopped := s.stop, s.stopped
	s.stopped = true
	s.mu.Unlock()
	if !stopped && stop != nil {
		stop()
	}
}

// openStream is the fixture's StreamOpener: it resolves the address to
// a node, refuses dead targets, and bridges HandleStream's emit loop
// onto a frame channel.
func (f *fixture) openStream(addr string, req wire.Message) (cluster.PushStream, error) {
	to := -1
	for i := 0; i < f.ring.Nodes(); i++ {
		if f.ring.Addr(i) == addr {
			to = i
			break
		}
	}
	if to < 0 {
		return nil, fmt.Errorf("unknown address %q", addr)
	}
	if f.dead[to].Load() {
		return nil, fmt.Errorf("node %d is down", to)
	}
	reqB, err := wire.Binary.Encode(req)
	if err != nil {
		return nil, err
	}
	decoded, err := wire.Binary.Decode(reqB)
	if err != nil {
		return nil, err
	}
	ack, run, stop, ok := f.nodes[to].HandleStream(decoded)
	if !ok {
		return nil, fmt.Errorf("node %d does not stream %T", to, decoded)
	}
	ackB, err := wire.Binary.Encode(ack)
	if err != nil {
		return nil, err
	}
	if ack, err = wire.Binary.Decode(ackB); err != nil {
		return nil, err
	}
	if er, isErr := ack.(wire.ErrorResponse); isErr {
		stop()
		return nil, errors.New(er.Msg)
	}
	s := &fakeStream{ack: ack, ch: make(chan wire.Message, 64), dead: &f.dead[to], stop: stop}
	f.streamsMu.Lock()
	f.streams[to] = append(f.streams[to], s)
	f.streamsMu.Unlock()
	go func() {
		run(func(m wire.Message) error {
			if s.dead.Load() {
				return fmt.Errorf("node %d is down", to)
			}
			b, err := wire.Binary.Encode(m)
			if err != nil {
				return err
			}
			d, err := wire.Binary.Decode(b)
			if err != nil {
				return err
			}
			s.ch <- d
			return nil
		})
		close(s.ch)
	}()
	return s, nil
}

// kill drops a node: new requests fail and its open push streams sever,
// as a crashed process's connections would.
func (f *fixture) kill(to int) {
	f.dead[to].Store(true)
	f.streamsMu.Lock()
	open := f.streams[to]
	f.streams[to] = nil
	f.streamsMu.Unlock()
	for _, s := range open {
		s.sever(fmt.Errorf("node %d is down", to))
	}
}

// routeAcrossShards picks two lattice positions per shard owner so the
// subscription provably spans every node.
func routeAcrossShards(t *testing.T, f *fixture, data tuple.Batch) (pts []query.Request, owners []int) {
	t.Helper()
	per := make(map[int]int)
	for _, r := range data {
		o := f.ring.Owner(tuple.CO2, r.Pos())
		if per[o] >= 2 {
			continue
		}
		per[o]++
		pts = append(pts, query.Request{T: queryT, X: r.X, Y: r.Y, Pollutant: tuple.CO2})
		owners = append(owners, o)
		if len(pts) == 2*f.ring.Nodes() {
			break
		}
	}
	if len(pts) != 2*f.ring.Nodes() {
		t.Fatalf("lattice does not cover every shard: got %d route points", len(pts))
	}
	return pts, owners
}

func recvSub(t *testing.T, h subs.Handle) subs.Event {
	t.Helper()
	select {
	case ev, ok := <-h.Events():
		if !ok {
			t.Fatal("subscription channel closed early")
		}
		return ev
	case <-time.After(15 * time.Second):
		t.Fatal("timed out waiting for a subscription event")
	}
	return subs.Event{}
}

// drainQuiet collects further events until the feed stays quiet for a
// little while, so multi-leg pushes are all observed.
func drainQuiet(h subs.Handle) []subs.Event {
	var evs []subs.Event
	for {
		select {
		case ev, ok := <-h.Events():
			if !ok {
				return evs
			}
			evs = append(evs, ev)
		case <-time.After(500 * time.Millisecond):
			return evs
		}
	}
}

func TestClusterRoutedSubscription(t *testing.T) {
	f := newFixture(t)
	data := makeData()
	f.load(t, data)
	ctx := context.Background()

	pts, owners := routeAcrossShards(t, f, data)
	h, err := f.nodes[0].Subscribe(ctx, tuple.CO2, pts)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Every leg primes with its slice of the route; collect until the
	// merged feed has covered all points, then check each value against
	// the owner engine's direct answer.
	values := make(map[int]float64)
	for len(values) < len(pts) {
		ev := recvSub(t, h)
		if ev.Err != "" {
			t.Fatalf("subscription error during priming: %s", ev.Err)
		}
		for _, p := range ev.Points {
			if p.Err != "" {
				t.Fatalf("point %d failed: %s", p.Index, p.Err)
			}
			values[p.Index] = p.Value
		}
	}
	for i, req := range pts {
		want, err := f.engines[owners[i]].Query(ctx, req)
		if err != nil {
			t.Fatalf("owner %d query: %v", owners[i], err)
		}
		if values[i] != want {
			t.Fatalf("point %d pushed %v, owner %d answers %v", i, values[i], owners[i], want)
		}
	}

	// A targeted ingest owned entirely by node 1 must re-evaluate and
	// push only node 1's route points: the other owners saw no
	// invalidation, so their legs stay silent.
	ingestOwnedBy := func(owner int, bump float64) {
		var b tuple.Batch
		for _, r := range data {
			if f.ring.Owner(tuple.CO2, r.Pos()) == owner {
				b = append(b, tuple.Raw{T: r.T, X: r.X, Y: r.Y, S: r.S + bump})
			}
		}
		if len(b) == 0 {
			t.Fatalf("no lattice tuples owned by node %d", owner)
		}
		if err := f.nodes[0].Ingest(ctx, tuple.CO2, b); err != nil {
			t.Fatalf("targeted ingest for node %d: %v", owner, err)
		}
	}
	ingestOwnedBy(1, 120)
	evs := append([]subs.Event{recvSub(t, h)}, drainQuiet(h)...)
	touched := make(map[int]bool)
	for _, ev := range evs {
		if ev.Err != "" {
			t.Fatalf("unexpected subscription error: %s", ev.Err)
		}
		for _, p := range ev.Points {
			if owners[p.Index] != 1 {
				t.Fatalf("delta carried point %d (owner %d) after a node-1-only ingest", p.Index, owners[p.Index])
			}
			touched[p.Index] = true
		}
	}
	if len(touched) == 0 {
		t.Fatal("node-1 ingest produced no delta")
	}

	// Killing an owner severs its leg: the feed reports exactly which
	// node died and how many points may be stale, instead of going
	// silently stale.
	const victim = 2
	f.kill(victim)
	deadline := time.After(15 * time.Second)
	for {
		var ev subs.Event
		select {
		case ev = <-h.Events():
		case <-deadline:
			t.Fatal("no error event after killing owner 2")
		}
		if ev.Err == "" {
			continue // stray delta from before the kill
		}
		if want := fmt.Sprintf("owner node %d", victim); !strings.Contains(ev.Err, want) || !strings.Contains(ev.Err, "unreachable") {
			t.Fatalf("error event %q does not name the dead owner", ev.Err)
		}
		break
	}

	// The surviving local leg keeps updating.
	ingestOwnedBy(0, 240)
	for {
		ev := recvSub(t, h)
		if ev.Err != "" {
			continue
		}
		if len(ev.Points) == 0 {
			continue
		}
		for _, p := range ev.Points {
			if owners[p.Index] != 0 {
				t.Fatalf("post-kill delta carried point %d (owner %d)", p.Index, owners[p.Index])
			}
		}
		break
	}

	// Clean teardown closes the merged channel and the remote legs.
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := <-h.Events(); !ok {
			break
		}
	}
}

// TestClusterSubscribeDeadOwnerFailsFast locks the fail-fast contract:
// subscribing a route with a point owned by a dead node errors at
// subscribe time rather than returning a silently partial feed.
func TestClusterSubscribeDeadOwnerFailsFast(t *testing.T) {
	f := newFixture(t)
	data := makeData()
	f.load(t, data)

	pts, owners := routeAcrossShards(t, f, data)
	f.kill(1)
	_, err := f.nodes[0].Subscribe(context.Background(), tuple.CO2, pts)
	if err == nil {
		t.Fatal("subscribe spanning a dead owner succeeded")
	}
	if !errors.Is(err, cluster.ErrNodeUnreachable) {
		t.Fatalf("dead-owner subscribe maps to %v, want ErrNodeUnreachable", err)
	}

	// A route owned entirely by live nodes still subscribes.
	var live []query.Request
	for i, p := range pts {
		if owners[i] != 1 {
			live = append(live, p)
		}
	}
	h, err := f.nodes[0].Subscribe(context.Background(), tuple.CO2, live)
	if err != nil {
		t.Fatalf("live-owner subscribe failed: %v", err)
	}
	_ = h.Close()
}
