// Package cluster implements the sharded multi-node serving layer: a
// deterministic geo-cell partition of the deployment region (Cells,
// k-means over a uniform lattice), a consistent-hash ring mapping
// (pollutant, geo-cell) shard keys onto engine nodes (Ring), and the
// Node router that answers owned shards from its local engine, forwards
// single-shard wire requests to their owners, and scatter-gathers the
// cross-shard ones (heatmaps, model covers). A Node with no local
// engine (Self = -1) is a pure query router.
//
// Placement is configuration-deterministic: every party that holds the
// same Desc — node addresses, cell centroids, virtual-node multiplier —
// computes identical shard owners, so the ring travels as one
// wire.RingResponse and never needs consensus.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/geo"
	"repro/internal/kmeans"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// DefaultVNodes is the virtual-node multiplier used when a Desc does not
// set one: each physical node owns this many points on the hash ring, so
// shard keys spread evenly even for small clusters.
const DefaultVNodes = 64

// ShardKey identifies one shard: a (pollutant, geo-cell) pair. Every raw
// tuple and every positional query maps to exactly one shard, and the
// ring maps every shard to exactly one owner node.
type ShardKey struct {
	Pollutant tuple.Pollutant
	Cell      int
}

// Desc is the serializable cluster description every party must agree
// on: the node addresses (index = node ID), the geo-cell centroids
// partitioning the region, and the virtual-node multiplier. Two parties
// holding equal Descs compute identical shard placements — the property
// the ring-exchange protocol distributes.
type Desc struct {
	// Nodes are the wire-protocol addresses of the cluster nodes; a
	// node's index in this slice is its stable node ID. An empty
	// address is a tombstone: the slot of a drained or dead node, kept
	// so surviving IDs — and therefore their ring positions — never
	// shift. Tombstoned nodes own nothing and hold no replicas.
	Nodes []string
	// Cells are the geo-cell centroids; a point belongs to the nearest
	// centroid (the same nearest-centroid rule Ad-KMN covers use).
	Cells []geo.Point
	// VNodes is the virtual-node multiplier (0 = DefaultVNodes).
	VNodes int
	// Replicas is the replication factor R: each shard lives on its
	// owner plus the next R-1 distinct nodes clockwise on the ring
	// (successor placement). 0 and 1 both mean unreplicated.
	Replicas int
	// Epoch is the membership epoch: 0 for a fixed boot-time ring,
	// incremented by every join, drain, or promotion. Parties holding
	// different epochs hold different membership and must reconcile
	// before routing to each other.
	Epoch uint64
}

// Cells builds a deterministic geo-cell partition of region: a uniform
// lattice of sample points clustered with the package's k-means++ into n
// cell centroids. The same (region, n, seed) always yields the same
// cells, so every node and client derives an identical shard map from
// configuration alone.
func Cells(region geo.Rect, n int, seed int64) ([]geo.Point, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: %d cells, want >= 1", n)
	}
	if !region.Valid() {
		return nil, fmt.Errorf("cluster: invalid cell region %v", region)
	}
	// Degenerate (zero-area) regions still need distinct lattice points
	// for k-means to seed from; inflate like the heatmap path does.
	if region.Area() == 0 {
		region = region.Inflate(100)
	}
	// A lattice with ~8x oversampling keeps k-means centroids spread over
	// the whole region rather than collapsing onto a few sample points.
	side := 1
	for side*side < 8*n {
		side++
	}
	pts := make([]geo.Point, 0, side*side)
	dx := (region.Max.X - region.Min.X) / float64(side)
	dy := (region.Max.Y - region.Min.Y) / float64(side)
	for j := 0; j < side; j++ {
		for i := 0; i < side; i++ {
			pts = append(pts, geo.Point{
				X: region.Min.X + (float64(i)+0.5)*dx,
				Y: region.Min.Y + (float64(j)+0.5)*dy,
			})
		}
	}
	res, err := kmeans.Run(pts, n, kmeans.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	return res.Centroids, nil
}

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	node int
}

// Ring is a consistent-hash ring mapping shard keys onto nodes. It is
// immutable after construction and safe for concurrent use.
type Ring struct {
	desc   Desc
	live   int
	points []ringPoint
}

// NewRing builds the ring for a cluster description.
func NewRing(desc Desc) (*Ring, error) {
	if len(desc.Nodes) == 0 {
		return nil, errors.New("cluster: ring needs at least one node")
	}
	live := 0
	for _, addr := range desc.Nodes {
		if addr != "" {
			live++
		}
	}
	if live == 0 {
		return nil, errors.New("cluster: ring needs at least one live node")
	}
	if len(desc.Cells) == 0 {
		return nil, errors.New("cluster: ring needs at least one cell")
	}
	if desc.VNodes == 0 {
		desc.VNodes = DefaultVNodes
	}
	if desc.VNodes < 1 {
		return nil, fmt.Errorf("cluster: %d virtual nodes, want >= 1", desc.VNodes)
	}
	if desc.Replicas < 0 {
		return nil, fmt.Errorf("cluster: %d replicas, want >= 0", desc.Replicas)
	}
	if desc.Replicas > live {
		return nil, fmt.Errorf("cluster: %d replicas for %d live nodes", desc.Replicas, live)
	}
	if desc.Replicas == 0 {
		desc.Replicas = 1
	}
	r := &Ring{desc: desc, live: live, points: make([]ringPoint, 0, live*desc.VNodes)}
	for n := range desc.Nodes {
		if desc.Nodes[n] == "" {
			// Tombstoned: the slot keeps its ID but places no virtual
			// nodes, so its former shards fall to their ring successors
			// while every survivor's placement is untouched.
			continue
		}
		for v := 0; v < desc.VNodes; v++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(n, v), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Colliding virtual nodes order by node ID so every party breaks
		// the tie identically.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// RingFromWire reconstructs a ring from a received ring-exchange frame.
func RingFromWire(resp wire.RingResponse) (*Ring, error) {
	return NewRing(Desc{
		Nodes: resp.Nodes, Cells: resp.Cells,
		VNodes: int(resp.VNodes), Replicas: int(resp.Replicas),
		Epoch: resp.Epoch,
	})
}

// Wire returns the ring-exchange frame describing this ring. An
// unreplicated ring (R = 1) omits the replica field and an epoch-0 ring
// omits the epoch field, so a pre-membership ring's frame is
// byte-identical to the pre-replication layout.
func (r *Ring) Wire() wire.RingResponse {
	w := wire.RingResponse{
		Nodes: r.desc.Nodes, Cells: r.desc.Cells,
		VNodes: uint16(r.desc.VNodes), Epoch: r.desc.Epoch,
	}
	if r.desc.Replicas > 1 {
		w.Replicas = uint16(r.desc.Replicas)
	}
	return w
}

// Desc returns the cluster description the ring was built from (with
// defaults applied).
func (r *Ring) Desc() Desc { return r.desc }

// Nodes returns the number of node slots, tombstones included (node IDs
// range over [0, Nodes())).
func (r *Ring) Nodes() int { return len(r.desc.Nodes) }

// Live returns the number of live (non-tombstoned) nodes.
func (r *Ring) Live() int { return r.live }

// IsLive reports whether node n is a live member (in range and not
// tombstoned).
func (r *Ring) IsLive(n int) bool {
	return n >= 0 && n < len(r.desc.Nodes) && r.desc.Nodes[n] != ""
}

// Epoch returns the ring's membership epoch.
func (r *Ring) Epoch() uint64 { return r.desc.Epoch }

// Cells returns the number of geo cells.
func (r *Ring) Cells() int { return len(r.desc.Cells) }

// Addr returns the wire address of node n.
func (r *Ring) Addr(n int) string {
	if n < 0 || n >= len(r.desc.Nodes) {
		return ""
	}
	return r.desc.Nodes[n]
}

// CellOf assigns a position to its geo cell: the nearest cell centroid,
// by the same rule model covers use to pick a region model.
func (r *Ring) CellOf(p geo.Point) int { return kmeans.Nearest(r.desc.Cells, p) }

// OwnerKey returns the node owning a shard key.
func (r *Ring) OwnerKey(k ShardKey) int {
	h := keyHash(k)
	// First ring point clockwise of the key's hash, wrapping at the top.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Owner returns the node owning pollutant pol at position p.
func (r *Ring) Owner(pol tuple.Pollutant, p geo.Point) int {
	return r.OwnerKey(ShardKey{Pollutant: pol, Cell: r.CellOf(p)})
}

// Replicas returns the effective replication factor R (>= 1).
func (r *Ring) Replicas() int { return r.desc.Replicas }

// ReplicasFor returns the R nodes holding a shard key: the owner first,
// then the next R-1 distinct nodes clockwise on the ring (successor
// placement). Successors inherit the ring's growth stability: adding a
// node inserts it into some replica sets but never reorders the
// surviving members relative to each other.
func (r *Ring) ReplicasFor(k ShardKey) []int {
	R := r.desc.Replicas
	out := make([]int, 0, R)
	h := keyHash(k)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for step := 0; step < len(r.points) && len(out) < R; step++ {
		n := r.points[(i+step)%len(r.points)].node
		dup := false
		for _, m := range out {
			if m == n {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, n)
		}
	}
	return out
}

// ReplicaPeers lists the nodes (ascending, excluding n itself) that hold
// a replica of any shard of pollutant pol owned by node n — the peers a
// primary streams its commits to. With R = 1 it is always empty.
func (r *Ring) ReplicaPeers(n int, pol tuple.Pollutant) []int {
	if r.desc.Replicas <= 1 {
		return nil
	}
	seen := make(map[int]bool)
	for c := range r.desc.Cells {
		k := ShardKey{Pollutant: pol, Cell: c}
		reps := r.ReplicasFor(k)
		if len(reps) == 0 || reps[0] != n {
			continue
		}
		for _, p := range reps[1:] {
			if p != n {
				seen[p] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// OwnedCells lists the cells of pollutant pol owned by node n, in
// ascending cell order — the per-shard breakdown /v1/cluster reports.
func (r *Ring) OwnedCells(n int, pol tuple.Pollutant) []int {
	var out []int
	for c := range r.desc.Cells {
		if r.OwnerKey(ShardKey{Pollutant: pol, Cell: c}) == n {
			out = append(out, c)
		}
	}
	return out
}

// JoinDesc returns the next-epoch description with addr appended as a
// new node (ID = Nodes()). Because placement hashes node indexes, every
// surviving shard either stays put or moves onto the new node — never
// between survivors.
func (r *Ring) JoinDesc(addr string) (Desc, error) {
	if addr == "" {
		return Desc{}, errors.New("cluster: join needs a node address")
	}
	for n, a := range r.desc.Nodes {
		if a == addr {
			return Desc{}, fmt.Errorf("cluster: %s is already node %d", addr, n)
		}
	}
	d := r.desc
	d.Nodes = append(append([]string(nil), r.desc.Nodes...), addr)
	d.Epoch++
	return d, nil
}

// TombstoneDesc returns the next-epoch description with node n
// tombstoned — the ring shape of both a drain and a dead-primary
// promotion. The slot keeps its ID so no survivor's placement shifts;
// n's shards fall to their ring successors (its replicas, when R > 1).
// If removing n leaves fewer live nodes than the replication factor, R
// is clamped down: availability over a replica count the membership can
// no longer satisfy.
func (r *Ring) TombstoneDesc(n int) (Desc, error) {
	if !r.IsLive(n) {
		return Desc{}, fmt.Errorf("cluster: node %d is not a live member", n)
	}
	if r.live == 1 {
		return Desc{}, errors.New("cluster: cannot remove the last live node")
	}
	d := r.desc
	d.Nodes = append([]string(nil), r.desc.Nodes...)
	d.Nodes[n] = ""
	if d.Replicas > r.live-1 {
		d.Replicas = r.live - 1
	}
	d.Epoch++
	return d, nil
}

// vnodeHash positions virtual node v of node n on the circle. Placement
// hashes the node *index*, not its address, so re-addressing a node
// (new port, new host) never migrates shards.
func vnodeHash(n, v int) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	putU64(buf[:8], uint64(n))
	putU64(buf[8:], uint64(v))
	h.Write(buf[:])
	return mix64(h.Sum64())
}

// keyHash positions a shard key on the circle.
func keyHash(k ShardKey) uint64 {
	h := fnv.New64a()
	var buf [9]byte
	buf[0] = byte(k.Pollutant)
	putU64(buf[1:], uint64(k.Cell))
	h.Write(buf[:])
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV-1a alone avalanches poorly on
// short, low-entropy inputs (sequential node/cell indexes padded with
// zero bytes) — badly enough that a 3-node ring can hand every shard to
// one node; the finalizer restores uniform placement.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
