// R-way shard replication: the primary-commits-then-streams write path,
// the pull-based catch-up protocol (a replica that detects a sequence
// gap asks "I have seq N" and receives checkpoint-or-suffix chunks),
// and the mirror read path that answers a dead owner's shards.
//
// Replication granularity is (origin node, pollutant): a replica holds
// a full mirror of every pollutant stream it backs for a primary,
// built by replaying the primary's committed ingests in commit order —
// which is what makes a synced mirror's query answers byte-equal to
// the primary's. Placement is Ring.ReplicasFor (successor lists), so
// any node in a shard's replica set backs the full (owner, pollutant)
// mirror covering that shard.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/proto"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// ErrPartialResult marks a scatter-gathered answer assembled without
// some shards' data: their owner is down and no replica could answer.
// The result is still returned alongside the error (availability over
// completeness); errors.As against *PartialError recovers which nodes
// are dead and how many shards are stale. Only replicated clusters
// (ring Replicas > 1) report partials — unreplicated rings keep the
// pre-replication contract.
var ErrPartialResult = errors.New("cluster: partial result; unreachable owners have no live replica")

// Partial describes the scope of a partial scatter-gather result.
type Partial struct {
	// Dead lists node IDs that neither answered nor had a live replica.
	Dead []int
	// StaleShards counts the shards of the request's pollutant owned by
	// the dead nodes: their data is missing from the result.
	StaleShards int
}

// PartialError attaches a Partial to an error chain. errors.Is(err,
// ErrPartialResult) detects it; errors.As recovers the detail.
type PartialError struct{ Partial }

// Error implements error.
func (e *PartialError) Error() string {
	return fmt.Sprintf("%s: node(s) %v down, %d shards stale", ErrPartialResult.Error(), e.Dead, e.StaleShards)
}

// Unwrap links the sentinel into the chain.
func (e *PartialError) Unwrap() error { return ErrPartialResult }

// Replication tunables.
const (
	// defaultReplQueue bounds each peer stream worker's frame queue. An
	// overflowing queue drops frames rather than stalling the commit
	// path; the replica detects the sequence gap and heals via catch-up.
	defaultReplQueue = 256
	// defaultLogRetain caps each pollutant's replication log (tuples).
	// A replica behind the log start takes a snapshot reset; the cap
	// should comfortably cover the engines' retention window so resets
	// stay rare.
	defaultLogRetain = 1 << 17
	// maxPullRounds bounds one catch-up session (4+ full logs at the
	// default sizes); a replica that cannot converge in that many
	// chunks re-enters catch-up on the next gapped stream frame.
	maxPullRounds = 256
)

// maxCatchupChunk bounds one catch-up chunk so the response fits a
// proto frame (a ReplicaCatchupResponse is 14 + 32*tuples bytes).
var maxCatchupChunk = (proto.MaxFrameBytes - 64) / 32

// ReplicationConfig configures a node's replication role.
type ReplicationConfig struct {
	// NewMirror creates one empty mirror engine. The cluster package
	// treats mirrors as opaque Handlers (the facade passes a factory
	// producing server engines configured identically to the local one,
	// which is what makes mirror answers byte-equal). Required when the
	// ring's replication factor exceeds 1 and the node owns shards.
	NewMirror func() Handler
	// LogRetain caps the per-pollutant replication log in tuples
	// (0 = defaultLogRetain).
	LogRetain int
	// QueueDepth bounds each peer stream worker's queue in frames
	// (0 = defaultReplQueue).
	QueueDepth int
}

// ReplicationStats counts a node's replication activity.
type ReplicationStats struct {
	// Streamed counts frames handed to peer stream workers.
	Streamed int64
	// StreamDrops counts frames dropped on a full worker queue.
	StreamDrops int64
	// StreamErrors counts failed peer exchanges (stream and catch-up).
	StreamErrors int64
	// GapNaks counts streamed frames a replica refused out of order.
	GapNaks int64
	// Applied counts stream frames applied to local mirrors.
	Applied int64
	// Gaps counts sequence gaps detected on local mirrors.
	Gaps int64
	// Catchups counts catch-up sessions started.
	Catchups int64
	// Snapshots counts mirror resets taken during catch-up.
	Snapshots int64
	// MirrorReads counts reads answered from local mirrors.
	MirrorReads int64
	// Mirrors is the number of (origin, pollutant) mirrors held.
	Mirrors int
}

// mirrorKey identifies one mirror: the primary it mirrors and the
// pollutant stream.
type mirrorKey struct {
	origin int
	pol    tuple.Pollutant
}

// mirror is one (origin, pollutant) mirror: the handler holding the
// replayed state and the replication sequence it has applied. The
// mirror also keeps its own copy of the stream's log tail (sequence
// space [logStart, have), pruned like a primary log): it is what lets
// this replica serve a ShardTransfer for a dead origin during
// promotion, and replay its mirror into its own primary state when it
// is the one promoting.
type mirror struct {
	mu       sync.Mutex
	h        Handler
	have     uint64
	pulling  bool
	logStart uint64
	log      []tuple.Raw
}

// appendLogLocked extends the mirror's log tail with just-applied
// tuples, pruned to the retention cap. Caller holds m.mu; the caller
// has already advanced have, so logStart + len(log) == have holds on
// return.
func (m *mirror) appendLogLocked(tuples []tuple.Raw, retain int) {
	m.log = append(m.log, tuples...)
	if over := len(m.log) - retain; over > 0 {
		m.logStart += uint64(over)
		m.log = append(m.log[:0:0], m.log[over:]...)
	}
}

// replLog is one pollutant's replication log on a primary: the
// committed tuples from sequence start, pruned to the retention cap.
type replLog struct {
	mu     sync.Mutex
	start  uint64
	tuples []tuple.Raw
}

// replicator holds a node's replication state: the primary-side logs
// and peer stream workers, and the replica-side mirrors.
type replicator struct {
	n         *Node
	newMirror func() Handler
	retain    int
	queue     int

	logMu sync.Mutex
	logs  map[tuple.Pollutant]*replLog

	peerMu sync.Mutex
	peers  map[int]chan wire.ReplicaIngest
	wg     sync.WaitGroup
	closed atomic.Bool

	mirMu   sync.Mutex
	mirrors map[mirrorKey]*mirror

	streamed, drops, streamErrs, gapNaks atomic.Int64
	applied, gaps, catchups, snapshots   atomic.Int64
	reads                                atomic.Int64
}

func newReplicator(n *Node, cfg ReplicationConfig) *replicator {
	r := &replicator{
		n:         n,
		newMirror: cfg.NewMirror,
		retain:    cfg.LogRetain,
		queue:     cfg.QueueDepth,
		logs:      make(map[tuple.Pollutant]*replLog),
		peers:     make(map[int]chan wire.ReplicaIngest),
		mirrors:   make(map[mirrorKey]*mirror),
	}
	if r.retain <= 0 {
		r.retain = defaultLogRetain
	}
	if r.queue <= 0 {
		r.queue = defaultReplQueue
	}
	return r
}

func (r *replicator) stats() ReplicationStats {
	r.mirMu.Lock()
	mirrors := len(r.mirrors)
	r.mirMu.Unlock()
	return ReplicationStats{
		Streamed:     r.streamed.Load(),
		StreamDrops:  r.drops.Load(),
		StreamErrors: r.streamErrs.Load(),
		GapNaks:      r.gapNaks.Load(),
		Applied:      r.applied.Load(),
		Gaps:         r.gaps.Load(),
		Catchups:     r.catchups.Load(),
		Snapshots:    r.snapshots.Load(),
		MirrorReads:  r.reads.Load(),
		Mirrors:      mirrors,
	}
}

func (r *replicator) log(pol tuple.Pollutant) *replLog {
	r.logMu.Lock()
	defer r.logMu.Unlock()
	lg, ok := r.logs[pol]
	if !ok {
		lg = &replLog{}
		r.logs[pol] = lg
	}
	return lg
}

// close stops the peer stream workers, waits for in-flight catch-up
// sessions to notice the shutdown, and releases any resources the
// mirror handlers hold (the facade's mirror factory builds full
// engines, whose pipelines need an explicit Close).
func (r *replicator) close() {
	r.peerMu.Lock()
	if !r.closed.Load() {
		r.closed.Store(true)
		for _, q := range r.peers {
			close(q)
		}
	}
	r.peerMu.Unlock()
	r.wg.Wait()
	r.mirMu.Lock()
	mirrors := r.mirrors
	r.mirrors = make(map[mirrorKey]*mirror)
	r.mirMu.Unlock()
	for _, m := range mirrors {
		m.mu.Lock()
		if c, ok := m.h.(io.Closer); ok {
			c.Close()
		}
		m.mu.Unlock()
	}
}

// --- primary side -----------------------------------------------------

// localIngest applies an ingest to the local engine and, on success,
// appends it to the replication log and streams it to this node's
// replica peers. The log lock spans the engine apply so the log's
// sequence order is exactly the engine's commit order — the property
// that makes replica replay converge to byte-equal answers.
func (n *Node) localIngest(ctx context.Context, m wire.IngestRequest) wire.Message {
	r := n.repl
	if r == nil || len(m.Tuples) == 0 {
		return n.localHandle(ctx, m)
	}
	lg := r.log(m.Pollutant)
	lg.mu.Lock()
	defer lg.mu.Unlock()
	resp := n.localHandle(ctx, m)
	if _, ok := resp.(wire.IngestResponse); !ok {
		return resp
	}
	seq := lg.start + uint64(len(lg.tuples))
	lg.tuples = append(lg.tuples, m.Tuples...)
	if over := len(lg.tuples) - r.retain; over > 0 {
		lg.start += uint64(over)
		lg.tuples = append(lg.tuples[:0:0], lg.tuples[over:]...)
	}
	r.fanout(m.Pollutant, seq, m.Tuples)
	return resp
}

// fanout enqueues one committed slice to every replica peer's stream
// worker. Enqueue never blocks: a full queue drops the frame and the
// replica heals through catch-up.
func (r *replicator) fanout(pol tuple.Pollutant, seq uint64, tuples []tuple.Raw) {
	frame := wire.ReplicaIngest{Origin: uint16(r.n.self), Pollutant: pol, Seq: seq, Tuples: tuples}
	for _, peer := range r.n.Ring().ReplicaPeers(r.n.self, pol) {
		q := r.peerQueue(peer)
		if q == nil {
			continue // shutting down
		}
		select {
		case q <- frame:
			r.streamed.Add(1)
		default:
			r.drops.Add(1)
		}
	}
}

// peerQueue returns (starting its worker on first use) the stream
// queue to one replica peer.
func (r *replicator) peerQueue(peer int) chan wire.ReplicaIngest {
	r.peerMu.Lock()
	defer r.peerMu.Unlock()
	if r.closed.Load() {
		return nil
	}
	q, ok := r.peers[peer]
	if !ok {
		q = make(chan wire.ReplicaIngest, r.queue) //bounded: replication queue depth (ReplicationConfig.QueueDepth, default defaultReplQueue)
		r.peers[peer] = q
		r.wg.Add(1)
		go r.streamTo(peer, q)
	}
	return q
}

// streamTo ships one peer's queued frames in order. Failures only
// count: the peer detects the resulting gap and pulls a catch-up.
func (r *replicator) streamTo(peer int, q chan wire.ReplicaIngest) {
	defer r.wg.Done()
	for f := range q {
		t := r.n.transport(peer)
		if t == nil {
			r.streamErrs.Add(1)
			continue
		}
		resp, err := t.Exchange(f)
		if err != nil {
			r.streamErrs.Add(1)
			continue
		}
		if _, ok := resp.(wire.IngestResponse); !ok {
			r.gapNaks.Add(1)
		}
	}
}

// handleCatchup answers a replica's "I have seq N": a suffix chunk
// when the log still covers N, a snapshot reset (stream from the log
// start after dropping mirror state) when the replica is behind the
// log or has diverged past it.
func (n *Node) handleCatchup(m wire.ReplicaCatchupRequest) wire.Message {
	r := n.repl
	if r == nil {
		return wire.ErrorResponse{Msg: "replica: node does not replicate"}
	}
	lg := r.log(m.Pollutant)
	lg.mu.Lock()
	defer lg.mu.Unlock()
	next := lg.start + uint64(len(lg.tuples))
	resp := wire.ReplicaCatchupResponse{}
	var idx int
	switch {
	case m.Have == next:
		return wire.ReplicaCatchupResponse{From: next, Done: true}
	case m.Have > next || m.Have < lg.start:
		// Behind the log (pruned past it) or ahead of it (this primary
		// restarted): the suffix no longer reconstructs the replica's
		// state, so reset it and replay the full retained log.
		resp.Snapshot = true
		resp.From = lg.start
		idx = 0
	default:
		resp.From = m.Have
		idx = int(m.Have - lg.start)
	}
	end := idx + maxCatchupChunk
	if end > len(lg.tuples) {
		end = len(lg.tuples)
	}
	resp.Tuples = append([]tuple.Raw(nil), lg.tuples[idx:end]...)
	resp.Done = end == len(lg.tuples)
	return resp
}

// --- replica side -----------------------------------------------------

// getMirror returns (creating on first use) the mirror of one
// (origin, pollutant) stream.
func (r *replicator) getMirror(origin int, pol tuple.Pollutant) *mirror {
	k := mirrorKey{origin: origin, pol: pol}
	r.mirMu.Lock()
	m, ok := r.mirrors[k]
	r.mirMu.Unlock()
	if ok {
		return m
	}
	// The factory may build a whole engine; keep it outside the lock and
	// resolve creation races by discarding the loser.
	h := r.newMirror()
	r.mirMu.Lock()
	m, ok = r.mirrors[k]
	if !ok {
		m = &mirror{h: h}
		r.mirrors[k] = m
	}
	r.mirMu.Unlock()
	if ok {
		if c, isCloser := h.(io.Closer); isCloser {
			c.Close()
		}
	}
	return m
}

// lookupMirror returns an existing mirror or nil; the read path never
// creates empty mirrors.
func (r *replicator) lookupMirror(origin int, pol tuple.Pollutant) *mirror {
	r.mirMu.Lock()
	defer r.mirMu.Unlock()
	return r.mirrors[mirrorKey{origin: origin, pol: pol}]
}

// handler returns the mirror's current handler (it swaps on snapshot
// resets).
func (m *mirror) handler() Handler {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.h
}

// handleReplicaIngest applies one streamed slice to the mirror of its
// origin. Frames must continue the applied sequence: overlaps apply
// their unseen suffix, duplicates ack as no-ops, and a gap refuses the
// frame and starts a catch-up pull instead of applying out of order.
func (n *Node) handleReplicaIngest(m wire.ReplicaIngest) wire.Message {
	r := n.repl
	if r == nil {
		return wire.ErrorResponse{Msg: "replica: node does not replicate"}
	}
	origin := int(m.Origin)
	if origin == n.self || origin >= n.Ring().Nodes() {
		return wire.ErrorResponse{Msg: fmt.Sprintf("replica: bad origin node %d", m.Origin)}
	}
	mir := r.getMirror(origin, m.Pollutant)
	mir.mu.Lock()
	defer mir.mu.Unlock()
	end := m.Seq + uint64(len(m.Tuples))
	switch {
	case end <= mir.have:
		return wire.IngestResponse{Ingested: 0} // duplicate delivery
	case m.Seq > mir.have:
		r.gaps.Add(1)
		r.schedulePullLocked(origin, m.Pollutant, mir)
		return wire.ErrorResponse{Msg: fmt.Sprintf("replica: sequence gap (have %d, got %d)", mir.have, m.Seq)}
	}
	tuples := m.Tuples[mir.have-m.Seq:]
	resp := mir.h.HandleMessage(wire.IngestRequest{Pollutant: m.Pollutant, Tuples: tuples})
	if _, ok := resp.(wire.IngestResponse); !ok {
		if er, isErr := resp.(wire.ErrorResponse); isErr {
			return wire.ErrorResponse{Msg: "replica: mirror apply: " + er.Msg}
		}
		return wire.ErrorResponse{Msg: fmt.Sprintf("replica: mirror apply: unexpected %T", resp)}
	}
	mir.have = end
	mir.appendLogLocked(tuples, r.retain)
	r.applied.Add(1)
	return wire.IngestResponse{Ingested: uint32(len(tuples))}
}

// schedulePullLocked starts (once) a catch-up session for a mirror.
// Caller holds mir.mu.
func (r *replicator) schedulePullLocked(origin int, pol tuple.Pollutant, mir *mirror) {
	if mir.pulling || r.closed.Load() {
		return
	}
	mir.pulling = true
	r.wg.Add(1)
	go r.pull(origin, pol, mir)
}

// pull runs one catch-up session: repeated "I have seq N" exchanges
// against the origin, applying suffix chunks (or a snapshot reset)
// until the origin reports Done.
func (r *replicator) pull(origin int, pol tuple.Pollutant, mir *mirror) {
	defer r.wg.Done()
	defer func() {
		mir.mu.Lock()
		mir.pulling = false
		mir.mu.Unlock()
	}()
	r.catchups.Add(1)
	for i := 0; i < maxPullRounds; i++ {
		if r.closed.Load() {
			return
		}
		t := r.n.transport(origin)
		if t == nil {
			return
		}
		mir.mu.Lock()
		have := mir.have
		mir.mu.Unlock()
		resp, err := t.Exchange(wire.ReplicaCatchupRequest{Pollutant: pol, Have: have})
		if err != nil {
			r.streamErrs.Add(1)
			return
		}
		cr, ok := resp.(wire.ReplicaCatchupResponse)
		if !ok {
			return
		}
		// A snapshot reset swaps in a fresh mirror engine; build it (the
		// factory may be slow) before taking the mirror lock, and close
		// the replaced handler after releasing it.
		var fresh, old Handler
		if cr.Snapshot {
			fresh = r.newMirror()
		}
		mir.mu.Lock()
		if cr.Snapshot {
			old = mir.h
			mir.h = fresh
			mir.have = cr.From
			mir.logStart = cr.From
			mir.log = nil
			r.snapshots.Add(1)
		}
		done := r.applyChunkLocked(mir, pol, cr)
		mir.mu.Unlock()
		if c, isCloser := old.(io.Closer); isCloser {
			c.Close()
		}
		if done {
			return
		}
	}
}

// applyChunkLocked applies one catch-up chunk to a mirror; it reports
// whether the session is over (converged, or the chunk did not line up
// and the session aborts). Caller holds mir.mu.
func (r *replicator) applyChunkLocked(mir *mirror, pol tuple.Pollutant, cr wire.ReplicaCatchupResponse) bool {
	end := cr.From + uint64(len(cr.Tuples))
	if cr.From > mir.have {
		return true // chunk does not line up (log moved); next gap retries
	}
	if end > mir.have {
		tuples := cr.Tuples[mir.have-cr.From:]
		resp := mir.h.HandleMessage(wire.IngestRequest{Pollutant: pol, Tuples: tuples})
		if _, ok := resp.(wire.IngestResponse); !ok {
			return true // mirror refused (e.g. saturated); next gap retries
		}
		mir.have = end
		mir.appendLogLocked(tuples, r.retain)
	}
	return cr.Done
}

// handleReplicaRead answers a read from the mirror of the named origin
// — the failover path for a dead primary's shards. Batch items split
// across per-pollutant mirrors; everything else resolves one mirror.
func (n *Node) handleReplicaRead(m wire.ReplicaRead) wire.Message {
	r := n.repl
	if r == nil {
		return wire.ErrorResponse{Msg: "replica: node does not replicate"}
	}
	origin := int(m.Origin)
	switch inner := m.Inner.(type) {
	case wire.QueryRequest:
		return r.mirrorAnswer(origin, n.pollutant(inner.Pollutant, inner.Legacy), inner)
	case wire.HeatmapRequest:
		return r.mirrorAnswer(origin, inner.Pollutant, inner)
	case wire.ModelRequest:
		return r.mirrorAnswer(origin, n.pollutant(inner.Pollutant, inner.Legacy), inner)
	case wire.BatchQueryRequest:
		out := make([]wire.BatchQueryItem, len(inner.Items))
		groups := make(map[tuple.Pollutant][]int)
		for i, it := range inner.Items {
			pol := n.pollutant(it.Pollutant, it.Legacy)
			groups[pol] = append(groups[pol], i)
		}
		for pol, idxs := range groups {
			sub := wire.BatchQueryRequest{Items: make([]wire.QueryRequest, len(idxs))}
			for j, i := range idxs {
				sub.Items[j] = inner.Items[i]
			}
			resp := r.mirrorAnswer(origin, pol, sub)
			switch rr := resp.(type) {
			case wire.BatchQueryResponse:
				if len(rr.Items) != len(idxs) {
					for _, i := range idxs {
						out[i] = wire.BatchQueryItem{Err: fmt.Sprintf("replica: mirror answered %d of %d items", len(rr.Items), len(idxs))}
					}
					continue
				}
				for j, i := range idxs {
					out[i] = rr.Items[j]
				}
			case wire.ErrorResponse:
				for _, i := range idxs {
					out[i] = wire.BatchQueryItem{Err: rr.Msg}
				}
			default:
				for _, i := range idxs {
					out[i] = wire.BatchQueryItem{Err: fmt.Sprintf("replica: unexpected mirror response %T", resp)}
				}
			}
		}
		return wire.BatchQueryResponse{Items: out}
	default:
		return wire.ErrorResponse{Msg: fmt.Sprintf("replica: unsupported read %T", m.Inner)}
	}
}

// mirrorAnswer answers one request from an existing mirror.
func (r *replicator) mirrorAnswer(origin int, pol tuple.Pollutant, m wire.Message) wire.Message {
	mir := r.lookupMirror(origin, pol)
	if mir == nil {
		return wire.ErrorResponse{Msg: fmt.Sprintf("replica: no mirror of node %d", origin)}
	}
	r.reads.Add(1)
	return mir.handler().HandleMessage(m)
}

// --- failover read path ----------------------------------------------

// isReplicaMiss reports whether a response means "this replica cannot
// answer for that origin" (no mirror, not replicating) as opposed to a
// genuine data answer or data error. Mirror-side misses are prefixed
// "replica:" by construction.
func isReplicaMiss(m wire.Message) bool {
	er, ok := m.(wire.ErrorResponse)
	return ok && strings.HasPrefix(er.Msg, "replica:")
}

// readAtReplica tries to answer m — a read for a shard owned by the
// unreachable node origin — at replica node rep (this node's own
// mirror, or a peer over the wire).
func (n *Node) readAtReplica(rep, origin int, m wire.Message) (wire.Message, bool) {
	var resp wire.Message
	if rep == n.self {
		if n.repl == nil {
			return nil, false
		}
		resp = n.handleReplicaRead(wire.ReplicaRead{Origin: uint16(origin), Inner: m})
	} else {
		t := n.transport(rep)
		if t == nil {
			return nil, false
		}
		var err error
		resp, err = t.Exchange(wire.ReplicaRead{Origin: uint16(origin), Inner: m})
		if err != nil {
			n.nErrors.Add(1)
			return nil, false
		}
	}
	if resp == nil || isReplicaMiss(resp) {
		return nil, false
	}
	return resp, true
}
