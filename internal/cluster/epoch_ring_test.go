package cluster

// Property tests for epoch-versioned membership transitions: epochs
// are strictly monotonic across any transition chain and survive the
// wire; a join moves shards only ONTO the new node; a drain/promotion
// tombstone moves only the removed node's shards, and moves each of
// them to its first surviving former replica (the successor property
// zero-copy promotion rests on); replica sets on transitioned rings
// stay distinct, owner-first, and free of tombstoned members.

import "testing"

// advance applies one transition to a ring and returns the next ring.
func advance(t *testing.T, r *Ring, d Desc, err error) *Ring {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	next, err := NewRing(d)
	if err != nil {
		t.Fatal(err)
	}
	return next
}

func TestEpochStrictMonotonicity(t *testing.T) {
	ring, err := NewRing(replicatedDesc(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if ring.Epoch() != 0 {
		t.Fatalf("fresh ring at epoch %d, want 0", ring.Epoch())
	}
	// Any interleaving of joins and tombstones bumps the epoch by
	// exactly one per transition, with no resets.
	prev := ring
	for i, step := range []string{"join", "tombstone", "join", "tombstone", "join"} {
		var next *Ring
		switch step {
		case "join":
			d, err := prev.JoinDesc(string(rune('a'+i)) + ":1")
			next = advance(t, prev, d, err)
		case "tombstone":
			// Remove the newest live node so earlier slots stay stable.
			victim := -1
			for n := prev.Nodes() - 1; n >= 0; n-- {
				if prev.IsLive(n) {
					victim = n
					break
				}
			}
			d, err := prev.TombstoneDesc(victim)
			next = advance(t, prev, d, err)
		}
		if next.Epoch() != prev.Epoch()+1 {
			t.Fatalf("step %d (%s): epoch %d after %d, want +1", i, step, next.Epoch(), prev.Epoch())
		}
		// The epoch must survive the wire exchange both peers and
		// clients rebuild rings from.
		back, err := RingFromWire(next.Wire())
		if err != nil {
			t.Fatal(err)
		}
		if back.Epoch() != next.Epoch() {
			t.Fatalf("step %d: epoch %d lost over the wire (got %d)", i, next.Epoch(), back.Epoch())
		}
		prev = next
	}
}

func TestJoinMovesShardsOnlyOntoJoiner(t *testing.T) {
	old, err := NewRing(replicatedDesc(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	d, err := old.JoinDesc("joiner:1")
	next := advance(t, old, d, err)
	joiner := next.Nodes() - 1
	if next.Addr(joiner) != "joiner:1" || !next.IsLive(joiner) {
		t.Fatalf("joiner not last live member: addr %q live %v", next.Addr(joiner), next.IsLive(joiner))
	}
	moved := 0
	for _, pol := range allPollutants {
		for c := 0; c < old.Cells(); c++ {
			k := ShardKey{Pollutant: pol, Cell: c}
			was, is := old.OwnerKey(k), next.OwnerKey(k)
			if was != is {
				moved++
				if is != joiner {
					t.Fatalf("shard %v moved %d -> %d, but only the joiner %d may gain shards", k, was, is, joiner)
				}
			}
		}
	}
	if moved == 0 {
		t.Error("join moved no shards onto the new node (suspicious placement)")
	}
}

func TestDrainMovesOnlyDrainedShards(t *testing.T) {
	old, err := NewRing(replicatedDesc(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	const drained = 1
	d, err := old.TombstoneDesc(drained)
	next := advance(t, old, d, err)
	if next.IsLive(drained) {
		t.Fatal("drained node still live")
	}
	if next.Live() != old.Live()-1 || next.Nodes() != old.Nodes() {
		t.Fatalf("live %d->%d nodes %d->%d; a tombstone keeps the slot", old.Live(), next.Live(), old.Nodes(), next.Nodes())
	}
	for _, pol := range allPollutants {
		for c := 0; c < old.Cells(); c++ {
			k := ShardKey{Pollutant: pol, Cell: c}
			was, is := old.OwnerKey(k), next.OwnerKey(k)
			if was == drained {
				if is == drained {
					t.Fatalf("shard %v still owned by the drained node", k)
				}
				// The shard must fall to its first surviving former
				// replica: that node already mirrors it, so promotion
				// after a dead primary copies nothing.
				reps := old.ReplicasFor(k)
				if len(reps) > 1 && is != reps[1] {
					t.Fatalf("shard %v fell to %d, want former first replica %d (of %v)", k, is, reps[1], reps)
				}
			} else if was != is {
				t.Fatalf("shard %v moved %d -> %d though neither is the drained node %d", k, was, is, drained)
			}
		}
	}
}

func TestTombstonedReplicaSetsDistinctOwnerFirst(t *testing.T) {
	old, err := NewRing(replicatedDesc(5, 3))
	if err != nil {
		t.Fatal(err)
	}
	const dead = 2
	d, err := old.TombstoneDesc(dead)
	next := advance(t, old, d, err)
	for _, pol := range allPollutants {
		for c := 0; c < next.Cells(); c++ {
			k := ShardKey{Pollutant: pol, Cell: c}
			reps := next.ReplicasFor(k)
			if len(reps) != next.Replicas() {
				t.Fatalf("shard %v: %d replicas, want %d", k, len(reps), next.Replicas())
			}
			if reps[0] != next.OwnerKey(k) {
				t.Fatalf("shard %v: first replica %d is not the owner %d", k, reps[0], next.OwnerKey(k))
			}
			seen := make(map[int]bool)
			for _, n := range reps {
				if n == dead {
					t.Fatalf("shard %v: tombstoned node %d still in replica set %v", k, dead, reps)
				}
				if !next.IsLive(n) || seen[n] {
					t.Fatalf("shard %v: replica set %v not distinct live members", k, reps)
				}
				seen[n] = true
			}
		}
	}
}

func TestTombstoneClampsReplicas(t *testing.T) {
	// 3 live nodes at R=3: removing one leaves 2, so R must clamp to 2
	// instead of making every NewRing fail.
	old, err := NewRing(replicatedDesc(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	d, err := old.TombstoneDesc(0)
	next := advance(t, old, d, err)
	if next.Replicas() != 2 {
		t.Fatalf("replicas %d after removing one of three, want clamp to 2", next.Replicas())
	}
	// Draining down to a single live node is allowed (R clamps to 1);
	// removing the last one is not.
	d2, err := next.TombstoneDesc(1)
	last := advance(t, next, d2, err)
	if last.Replicas() != 1 || last.Live() != 1 {
		t.Fatalf("live %d replicas %d, want 1/1", last.Live(), last.Replicas())
	}
	if _, err := last.TombstoneDesc(2); err == nil {
		t.Fatal("removing the last live node accepted")
	}
}

func TestJoinDescValidation(t *testing.T) {
	ring, err := NewRing(testDesc(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ring.JoinDesc(""); err == nil {
		t.Error("empty join address accepted")
	}
	if _, err := ring.JoinDesc(ring.Addr(1)); err == nil {
		t.Error("duplicate join address accepted")
	}
	// Rejoining after a drain uses a fresh slot, not the tombstoned one:
	// placement hashes node indexes, so resurrecting an ID would
	// silently re-home shards.
	d, err := ring.TombstoneDesc(2)
	next := advance(t, ring, d, err)
	d2, err := next.JoinDesc(ring.Addr(2))
	back := advance(t, next, d2, err)
	if back.Nodes() != 4 || back.Addr(3) != ring.Addr(2) || back.IsLive(2) {
		t.Fatalf("rejoin reused the tombstoned slot: nodes %d, slot2 live %v", back.Nodes(), back.IsLive(2))
	}
	for _, pol := range allPollutants {
		for c := 0; c < next.Cells(); c++ {
			k := ShardKey{Pollutant: pol, Cell: c}
			if was, is := next.OwnerKey(k), back.OwnerKey(k); was != is && is != 3 {
				t.Fatalf("rejoin moved shard %v %d -> %d (only slot 3 may gain)", k, was, is)
			}
		}
	}
}
