package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/geo"
	"repro/internal/query"
	"repro/internal/subs"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// PushStream is the consumer side of one remote push stream
// (proto.Stream over TCP in production, in-process fakes in the netsim
// tests): the subscribe ack, the pushed frames, and the failure reason
// once the frame channel closes.
type PushStream interface {
	Ack() wire.Message
	C() <-chan wire.Message
	Err() error
	Close() error
}

// StreamOpener opens a push stream to a peer node's wire address by
// sending req as the stream-opening frame (proto.DialStream adapted, in
// production).
type StreamOpener func(addr string, req wire.Message) (PushStream, error)

// LocalSubscriber is the subscription surface of the local engine
// (server.Engine implements it); the node type-asserts it so the
// cluster package does not import the server.
type LocalSubscriber interface {
	Subscribe(ctx context.Context, pol tuple.Pollutant, pts []query.Request) (subs.Handle, error)
}

// subLeg is one owner's slice of a routed subscription: the point
// indexes (into the merged point set) the owner serves, and either a
// local handle or a remote stream. On a replicated ring the source can
// be swapped — re-homed to a replica's mirror — when the owner dies,
// so handle/stream are guarded by mu.
type subLeg struct {
	owner  int
	pol    tuple.Pollutant
	idxs   []int
	subset []query.Request // the leg's points, in leg-local index order

	mu     sync.Mutex
	handle subs.Handle // local leg (owner == self, or a local mirror)
	stream PushStream  // remote leg
}

// sources snapshots the leg's current event sources.
func (l *subLeg) sources() (subs.Handle, PushStream) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.handle, l.stream
}

// closeSources closes the leg's current event sources.
func (l *subLeg) closeSources() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.handle != nil {
		_ = l.handle.Close()
	}
	if l.stream != nil {
		_ = l.stream.Close()
	}
}

// Subscribe opens a routed subscription: the point set is grouped by
// shard owner, the node subscribes at each owner (locally for shards it
// owns, over a push stream for the rest), and the per-owner pushes are
// merged — indexes remapped into the caller's point order, sequence
// numbers reassigned — onto one bounded feed. Subscribe fails fast if
// any owner is unreachable; after that, an owner dying emits an error
// event on the feed (naming the owner, its points possibly stale)
// rather than going silently stale, while the other owners' points keep
// updating.
func (n *Node) Subscribe(ctx context.Context, pol tuple.Pollutant, pts []query.Request) (subs.Handle, error) {
	if len(pts) == 0 {
		return nil, errors.New("cluster: empty point set")
	}
	ring := n.Ring()
	groups := make(map[int][]int) // owner -> merged point indexes
	for i, p := range pts {
		owner := ring.Owner(pol, geo.Point{X: p.X, Y: p.Y})
		groups[owner] = append(groups[owner], i)
	}

	var legs []*subLeg
	abort := func() {
		for _, l := range legs {
			l.closeSources()
		}
	}
	for owner, idxs := range groups {
		subset := make([]query.Request, len(idxs))
		for j, i := range idxs {
			subset[j] = pts[i]
			subset[j].Pollutant = pol
		}
		l := &subLeg{owner: owner, pol: pol, idxs: idxs, subset: subset}
		if owner == n.self {
			ls, ok := n.local.(LocalSubscriber)
			if !ok {
				abort()
				return nil, errors.New("cluster: local handler does not support subscriptions")
			}
			h, err := ls.Subscribe(ctx, pol, subset)
			if err != nil {
				abort()
				return nil, err
			}
			n.nLocal.Add(1)
			l.handle = h
		} else {
			if n.streams == nil {
				abort()
				return nil, fmt.Errorf("cluster: no stream opener configured; cannot subscribe at node %d", owner)
			}
			// Forwarded, like every routed request: the owner answers from
			// its local registry and never re-routes, so disagreeing rings
			// cannot chain subscription hops.
			st, err := n.streams(ring.Addr(owner), wire.Forwarded{Inner: subs.WireFromRequests(pol, subset)})
			if err != nil {
				n.nErrors.Add(1)
				abort()
				return nil, fmt.Errorf("%w: node %d (%s): %v", ErrNodeUnreachable, owner, ring.Addr(owner), err)
			}
			n.nForwarded.Add(1)
			l.stream = st
		}
		legs = append(legs, l)
	}

	// closing marks an intentional teardown so the leg forwarders can
	// tell "merged subscription closed" from "owner died".
	var closing atomic.Bool
	feed := subs.NewFeed(n.nextSubID.Add(1), len(pts), n.subQueue, func() {
		closing.Store(true)
		for _, l := range legs {
			l.closeSources()
		}
	})
	for _, l := range legs {
		go n.runLeg(ctx, feed, l, &closing)
	}
	return feed, nil
}

// runLeg forwards one owner's pushes onto the merged feed, remapping
// owner-local point indexes to merged indexes. When the leg's source
// ends without the merged subscription closing, the owner died: on a
// replicated ring the leg re-homes to a replica's mirror (whose resync
// event refreshes the points) and keeps going; only when no replica
// accepts the leg does an error event name the owner and its possibly
// stale points.
func (n *Node) runLeg(ctx context.Context, feed *subs.Feed, l *subLeg, closing *atomic.Bool) {
	apply := func(ev subs.Event) {
		if ev.Err != "" {
			feed.Fail(fmt.Sprintf("cluster: node %d: %s", l.owner, ev.Err))
		}
		if len(ev.Points) == 0 {
			return
		}
		pts := make([]subs.PointValue, 0, len(ev.Points))
		for _, p := range ev.Points {
			if p.Index < 0 || p.Index >= len(l.idxs) {
				continue
			}
			pts = append(pts, subs.PointValue{Index: l.idxs[p.Index], Value: p.Value, Err: p.Err})
		}
		feed.Apply(pts)
	}
	for {
		handle, stream := l.sources()
		if handle != nil {
			for ev := range handle.Events() {
				apply(ev)
			}
		} else if stream != nil {
			for m := range stream.C() {
				p, ok := m.(wire.Push)
				if !ok {
					continue // stray non-push frame; ignore
				}
				apply(subs.EventFromPush(p))
			}
		}
		if closing.Load() {
			return
		}
		if n.rehomeLeg(ctx, l, closing) {
			continue
		}
		n.nErrors.Add(1)
		reason := "subscription stream ended"
		if stream != nil {
			if err := stream.Err(); err != nil {
				reason = err.Error()
			}
		}
		ring := n.Ring()
		addr := ""
		if l.owner >= 0 && l.owner < ring.Nodes() {
			addr = ring.Addr(l.owner)
		}
		feed.Fail(fmt.Sprintf("cluster: owner node %d (%s) unreachable: %s; its %d route points may be stale",
			l.owner, addr, reason, len(l.idxs)))
		return
	}
}

// rehomeLeg re-subscribes a dead owner's leg at the first replica that
// accepts it: this node's own mirror when it backs the owner, or a
// peer replica over a ReplicaRead-opened push stream. The mirror's
// subscription registry emits its resync event on subscribe, so the
// leg's points refresh as soon as the swap lands.
func (n *Node) rehomeLeg(ctx context.Context, l *subLeg, closing *atomic.Bool) bool {
	swap := func(h subs.Handle, st PushStream) bool {
		l.mu.Lock()
		defer l.mu.Unlock()
		if closing.Load() {
			// The feed closed while we were re-subscribing: the close
			// callback already ran, so this new source is ours to drop.
			if h != nil {
				_ = h.Close()
			}
			if st != nil {
				_ = st.Close()
			}
			return false
		}
		l.handle, l.stream = h, st
		return true
	}
	ring := n.Ring()
	for _, rep := range ring.ReplicaPeers(l.owner, l.pol) {
		if rep == n.self {
			if n.repl == nil {
				continue
			}
			mir := n.repl.lookupMirror(l.owner, l.pol)
			if mir == nil {
				continue
			}
			ls, ok := mir.handler().(LocalSubscriber)
			if !ok {
				continue
			}
			h, err := ls.Subscribe(ctx, l.pol, l.subset)
			if err != nil {
				continue
			}
			if !swap(h, nil) {
				return false
			}
			n.nRehomed.Add(1)
			return true
		}
		if n.streams == nil {
			continue
		}
		st, err := n.streams(ring.Addr(rep), wire.ReplicaRead{
			Origin: uint16(l.owner),
			Inner:  subs.WireFromRequests(l.pol, l.subset),
		})
		if err != nil {
			n.nErrors.Add(1)
			continue
		}
		if _, isAck := st.Ack().(wire.SubscribeAck); !isAck {
			_ = st.Close() // replica holds no mirror (or refused); try the next
			continue
		}
		if !swap(nil, st) {
			return false
		}
		n.nRehomed.Add(1)
		return true
	}
	return false
}

// HandleStream implements proto.Streamer for a cluster node: a bare
// SubscribeRequest opens a routed (merged) subscription, so one edge
// connection to any node pushes for a route spanning every shard; a
// Forwarded subscribe — sent by a peer that already resolved this node
// as the owner — subscribes the local registry directly.
func (n *Node) HandleStream(req wire.Message) (ack wire.Message, run func(emit func(wire.Message) error), stop func(), ok bool) {
	//ctxcheck:allow legacy ctx-less Streamer entry; the serve loop prefers HandleStreamCtx
	return n.HandleStreamCtx(context.Background(), req)
}

// HandleStreamCtx is HandleStream with a caller-supplied context
// (proto.CtxStreamer): subscriptions opened for a connection are
// cancelled when the serving process shuts down.
func (n *Node) HandleStreamCtx(ctx context.Context, req wire.Message) (ack wire.Message, run func(emit func(wire.Message) error), stop func(), ok bool) {
	var (
		h   subs.Handle
		err error
		cnt int
	)
	switch m := req.(type) {
	case wire.SubscribeRequest:
		cnt = len(m.Points)
		h, err = n.Subscribe(ctx, n.pollutant(m.Pollutant, false), subs.RequestFromWire(m))
	case wire.Forwarded:
		inner, isSub := m.Inner.(wire.SubscribeRequest)
		if !isSub {
			return nil, nil, nil, false
		}
		ls, isLS := n.local.(LocalSubscriber)
		if !isLS {
			return wire.ErrorResponse{Msg: "cluster: node holds no subscription registry"}, func(func(wire.Message) error) {}, func() {}, true
		}
		n.nFwdIn.Add(1)
		cnt = len(inner.Points)
		h, err = ls.Subscribe(ctx, n.pollutant(inner.Pollutant, false), subs.RequestFromWire(inner))
	case wire.ReplicaRead:
		// A peer re-homing a dead owner's subscription leg onto this
		// node's mirror of that owner.
		inner, isSub := m.Inner.(wire.SubscribeRequest)
		if !isSub {
			return nil, nil, nil, false
		}
		noop := func(func(wire.Message) error) {}
		if n.repl == nil {
			return wire.ErrorResponse{Msg: "replica: node does not replicate"}, noop, func() {}, true
		}
		pol := n.pollutant(inner.Pollutant, false)
		mir := n.repl.lookupMirror(int(m.Origin), pol)
		if mir == nil {
			return wire.ErrorResponse{Msg: fmt.Sprintf("replica: no mirror of node %d", m.Origin)}, noop, func() {}, true
		}
		ls, isLS := mir.handler().(LocalSubscriber)
		if !isLS {
			return wire.ErrorResponse{Msg: "replica: mirror holds no subscription registry"}, noop, func() {}, true
		}
		n.nFwdIn.Add(1)
		cnt = len(inner.Points)
		h, err = ls.Subscribe(ctx, pol, subs.RequestFromWire(inner))
	default:
		return nil, nil, nil, false
	}
	if err != nil {
		return wire.ErrorResponse{Msg: err.Error()}, func(func(wire.Message) error) {}, func() {}, true
	}
	run = func(emit func(wire.Message) error) {
		for ev := range h.Events() {
			if emit(subs.PushFromEvent(h.ID(), ev)) != nil {
				return
			}
		}
	}
	stop = func() { _ = h.Close() }
	return wire.SubscribeAck{ID: h.ID(), Points: uint16(cnt)}, run, stop, true
}
