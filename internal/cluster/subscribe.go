package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/geo"
	"repro/internal/query"
	"repro/internal/subs"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// PushStream is the consumer side of one remote push stream
// (proto.Stream over TCP in production, in-process fakes in the netsim
// tests): the subscribe ack, the pushed frames, and the failure reason
// once the frame channel closes.
type PushStream interface {
	Ack() wire.Message
	C() <-chan wire.Message
	Err() error
	Close() error
}

// StreamOpener opens a push stream to a peer node's wire address by
// sending req as the stream-opening frame (proto.DialStream adapted, in
// production).
type StreamOpener func(addr string, req wire.Message) (PushStream, error)

// LocalSubscriber is the subscription surface of the local engine
// (server.Engine implements it); the node type-asserts it so the
// cluster package does not import the server.
type LocalSubscriber interface {
	Subscribe(ctx context.Context, pol tuple.Pollutant, pts []query.Request) (subs.Handle, error)
}

// subLeg is one owner's slice of a routed subscription: the point
// indexes (into the merged point set) the owner serves, and either a
// local handle or a remote stream.
type subLeg struct {
	owner  int
	idxs   []int
	handle subs.Handle // local leg (owner == self)
	stream PushStream  // remote leg
}

// Subscribe opens a routed subscription: the point set is grouped by
// shard owner, the node subscribes at each owner (locally for shards it
// owns, over a push stream for the rest), and the per-owner pushes are
// merged — indexes remapped into the caller's point order, sequence
// numbers reassigned — onto one bounded feed. Subscribe fails fast if
// any owner is unreachable; after that, an owner dying emits an error
// event on the feed (naming the owner, its points possibly stale)
// rather than going silently stale, while the other owners' points keep
// updating.
func (n *Node) Subscribe(ctx context.Context, pol tuple.Pollutant, pts []query.Request) (subs.Handle, error) {
	if len(pts) == 0 {
		return nil, errors.New("cluster: empty point set")
	}
	groups := make(map[int][]int) // owner -> merged point indexes
	for i, p := range pts {
		owner := n.ring.Owner(pol, geo.Point{X: p.X, Y: p.Y})
		groups[owner] = append(groups[owner], i)
	}

	var legs []*subLeg
	abort := func() {
		for _, l := range legs {
			if l.handle != nil {
				_ = l.handle.Close()
			}
			if l.stream != nil {
				_ = l.stream.Close()
			}
		}
	}
	for owner, idxs := range groups {
		subset := make([]query.Request, len(idxs))
		for j, i := range idxs {
			subset[j] = pts[i]
			subset[j].Pollutant = pol
		}
		l := &subLeg{owner: owner, idxs: idxs}
		if owner == n.self {
			ls, ok := n.local.(LocalSubscriber)
			if !ok {
				abort()
				return nil, errors.New("cluster: local handler does not support subscriptions")
			}
			h, err := ls.Subscribe(ctx, pol, subset)
			if err != nil {
				abort()
				return nil, err
			}
			n.nLocal.Add(1)
			l.handle = h
		} else {
			if n.streams == nil {
				abort()
				return nil, fmt.Errorf("cluster: no stream opener configured; cannot subscribe at node %d", owner)
			}
			// Forwarded, like every routed request: the owner answers from
			// its local registry and never re-routes, so disagreeing rings
			// cannot chain subscription hops.
			st, err := n.streams(n.ring.Addr(owner), wire.Forwarded{Inner: subs.WireFromRequests(pol, subset)})
			if err != nil {
				n.nErrors.Add(1)
				abort()
				return nil, fmt.Errorf("%w: node %d (%s): %v", ErrNodeUnreachable, owner, n.ring.Addr(owner), err)
			}
			n.nForwarded.Add(1)
			l.stream = st
		}
		legs = append(legs, l)
	}

	// closing marks an intentional teardown so the leg forwarders can
	// tell "merged subscription closed" from "owner died".
	var closing atomic.Bool
	feed := subs.NewFeed(n.nextSubID.Add(1), len(pts), n.subQueue, func() {
		closing.Store(true)
		for _, l := range legs {
			if l.handle != nil {
				_ = l.handle.Close()
			}
			if l.stream != nil {
				_ = l.stream.Close()
			}
		}
	})
	for _, l := range legs {
		go n.runLeg(feed, l, &closing)
	}
	return feed, nil
}

// runLeg forwards one owner's pushes onto the merged feed, remapping
// owner-local point indexes to merged indexes. When the leg ends
// without the merged subscription closing, the owner died: an error
// event is pushed instead of leaving the leg's points silently stale.
func (n *Node) runLeg(feed *subs.Feed, l *subLeg, closing *atomic.Bool) {
	apply := func(ev subs.Event) {
		if ev.Err != "" {
			feed.Fail(fmt.Sprintf("cluster: node %d: %s", l.owner, ev.Err))
		}
		if len(ev.Points) == 0 {
			return
		}
		pts := make([]subs.PointValue, 0, len(ev.Points))
		for _, p := range ev.Points {
			if p.Index < 0 || p.Index >= len(l.idxs) {
				continue
			}
			pts = append(pts, subs.PointValue{Index: l.idxs[p.Index], Value: p.Value, Err: p.Err})
		}
		feed.Apply(pts)
	}
	if l.handle != nil {
		for ev := range l.handle.Events() {
			apply(ev)
		}
	} else {
		for m := range l.stream.C() {
			p, ok := m.(wire.Push)
			if !ok {
				continue // stray non-push frame; ignore
			}
			apply(subs.EventFromPush(p))
		}
	}
	if closing.Load() {
		return
	}
	n.nErrors.Add(1)
	reason := "subscription stream ended"
	if l.stream != nil {
		if err := l.stream.Err(); err != nil {
			reason = err.Error()
		}
	}
	addr := ""
	if l.owner >= 0 && l.owner < n.ring.Nodes() {
		addr = n.ring.Addr(l.owner)
	}
	feed.Fail(fmt.Sprintf("cluster: owner node %d (%s) unreachable: %s; its %d route points may be stale",
		l.owner, addr, reason, len(l.idxs)))
}

// HandleStream implements proto.Streamer for a cluster node: a bare
// SubscribeRequest opens a routed (merged) subscription, so one edge
// connection to any node pushes for a route spanning every shard; a
// Forwarded subscribe — sent by a peer that already resolved this node
// as the owner — subscribes the local registry directly.
func (n *Node) HandleStream(req wire.Message) (ack wire.Message, run func(emit func(wire.Message) error), stop func(), ok bool) {
	//ctxcheck:allow legacy ctx-less Streamer entry; the serve loop prefers HandleStreamCtx
	return n.HandleStreamCtx(context.Background(), req)
}

// HandleStreamCtx is HandleStream with a caller-supplied context
// (proto.CtxStreamer): subscriptions opened for a connection are
// cancelled when the serving process shuts down.
func (n *Node) HandleStreamCtx(ctx context.Context, req wire.Message) (ack wire.Message, run func(emit func(wire.Message) error), stop func(), ok bool) {
	var (
		h   subs.Handle
		err error
		cnt int
	)
	switch m := req.(type) {
	case wire.SubscribeRequest:
		cnt = len(m.Points)
		h, err = n.Subscribe(ctx, n.pollutant(m.Pollutant, false), subs.RequestFromWire(m))
	case wire.Forwarded:
		inner, isSub := m.Inner.(wire.SubscribeRequest)
		if !isSub {
			return nil, nil, nil, false
		}
		ls, isLS := n.local.(LocalSubscriber)
		if !isLS {
			return wire.ErrorResponse{Msg: "cluster: node holds no subscription registry"}, func(func(wire.Message) error) {}, func() {}, true
		}
		n.nFwdIn.Add(1)
		cnt = len(inner.Points)
		h, err = ls.Subscribe(ctx, n.pollutant(inner.Pollutant, false), subs.RequestFromWire(inner))
	default:
		return nil, nil, nil, false
	}
	if err != nil {
		return wire.ErrorResponse{Msg: err.Error()}, func(func(wire.Message) error) {}, func() {}, true
	}
	run = func(emit func(wire.Message) error) {
		for ev := range h.Events() {
			if emit(subs.PushFromEvent(h.ID(), ev)) != nil {
				return
			}
		}
	}
	stop = func() { _ = h.Close() }
	return wire.SubscribeAck{ID: h.ID(), Points: uint16(cnt)}, run, stop, true
}
