package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/geo"
	"repro/internal/heatmap"
	"repro/internal/ingest"
	"repro/internal/proto"
	"repro/internal/query"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// Wire-frame budgets. Forwarded requests and their responses must fit
// one proto frame; exceeding it would fail the peer exchange and make
// an outage out of an oversized request. Rasters are rejected up
// front; ingest slices are chunked transparently.
var (
	// maxHeatmapCells bounds a scatter-gathered raster: a
	// HeatmapResponse is 45 + 8*cells bytes.
	maxHeatmapCells = (proto.MaxFrameBytes - 64) / 8
	// maxIngestChunk bounds one forwarded ingest frame: an
	// IngestRequest is 6 + 32*tuples bytes.
	maxIngestChunk = (proto.MaxFrameBytes - 64) / 32
)

// ErrNodeUnreachable marks a routed request that failed because the
// shard's owner could not be reached — the cluster's partial-outage
// error, distinct from "your request is bad" (the HTTP layer maps it
// to 502). Matched with errors.Is on the Go convenience surface.
var ErrNodeUnreachable = errors.New("cluster: owner node unreachable")

// ErrPartialIngest marks a cluster ingest where some shard owners
// applied their slices and at least one did not. It is NOT safe to
// retry the whole upload (the applied slices would duplicate), so it
// deliberately does not map onto the retryable ErrSaturated even when
// saturation caused the failing slice; the HTTP layer answers 500
// without Retry-After. An ingest where NO slice applied stays
// retryable and keeps its original error (e.g. 429 when saturated).
var ErrPartialIngest = errors.New("cluster: partial ingest; retrying would duplicate applied slices")

// ErrTooLarge marks a request that cannot cross the cluster because
// its response would exceed the wire frame budget (e.g. an oversized
// scatter-gathered heatmap). The HTTP layer maps it to 400.
var ErrTooLarge = errors.New("cluster: request exceeds the wire frame budget")

// ErrStaleEpoch marks a request that was fenced because it was routed
// under a ring epoch older than the receiving node's, and one ring
// refresh did not resolve the disagreement. It is safe to retry: the
// fence rejects before any state changes. The HTTP layer maps it to
// 503 (the cluster is mid-transition).
var ErrStaleEpoch = errors.New("cluster: routed under a stale ring epoch")

// Handler answers protocol requests (implemented by server.Engine and by
// Node itself, so nodes compose behind routers).
type Handler interface {
	HandleMessage(req wire.Message) wire.Message
}

// CtxHandler is the context-aware variant of Handler. A Local handler
// that implements it (server.Engine does) keeps the caller's
// cancellation and deadlines on locally-answered requests; peers
// reached over the wire carry no context either way.
type CtxHandler interface {
	HandleMessageCtx(ctx context.Context, req wire.Message) wire.Message
}

// Transport carries protocol messages to one peer node (implemented by
// proto.Client over TCP and by the netsim link transport in tests).
type Transport interface {
	Exchange(req wire.Message) (wire.Message, error)
}

// NodeConfig configures a cluster node or router.
type NodeConfig struct {
	// Ring is the cluster's shard ring (required). The node adopts
	// newer-epoch rings pushed by membership transitions; Ring is only
	// the starting version.
	Ring *Ring
	// Self is this process's node ID — the index of its address in the
	// ring — or -1 for a dedicated router that owns no shards.
	Self int
	// Local answers requests for shards Self owns (nil for a router).
	Local Handler
	// Transports connect to peer nodes, indexed by node ID. The Self
	// entry is ignored; a nil entry makes the node bounce that peer's
	// shards with NotOwnerResponse instead of forwarding.
	Transports []Transport
	// Dial opens transports to nodes that join after boot (nil: the
	// node cannot reach post-boot members and bounces their shards).
	Dial Dialer
	// Default resolves legacy (untagged) frames to a pollutant for
	// shard placement; it must match the engines' default pollutant.
	Default tuple.Pollutant
	// Pollutants lists every pollutant the local engine serves — the
	// streams membership handoffs must move. Empty defaults to
	// [Default].
	Pollutants []tuple.Pollutant
	// Streams opens push streams to peer nodes for routed subscriptions
	// (nil: Subscribe fails for shards this node does not own).
	Streams StreamOpener
	// SubQueue is the event-queue depth of merged (routed)
	// subscriptions; 0 uses the subs package default.
	SubQueue int
	// Replication configures the node's replication role. NewMirror is
	// required when the ring's replication factor exceeds 1 and this
	// node owns shards; data nodes on unreplicated rings still keep
	// replication logs (they feed membership handoffs) but never build
	// mirrors.
	Replication ReplicationConfig
	// HandoffHook, if set, is called at every membership phase boundary
	// with a label like "join:bootstrapped" or "drain:fenced". The
	// rebalance fault-injection suite uses it to kill a party at an
	// exact boundary; production leaves it nil.
	HandoffHook func(phase string)
}

// Stats counts a node's routing activity.
type Stats struct {
	// Local counts requests answered by the local engine.
	Local int64
	// Forwarded counts requests forwarded to an owner node.
	Forwarded int64
	// ForwardedIn counts pre-routed requests received from a peer.
	ForwardedIn int64
	// Scatters counts scatter-gather fan-outs (heatmaps, model merges).
	Scatters int64
	// NotOwner counts requests bounced with NotOwnerResponse.
	NotOwner int64
	// Errors counts transport failures talking to peers.
	Errors int64
	// FailedOver counts reads answered by a replica after the shard's
	// owner was unreachable.
	FailedOver int64
	// Rehomed counts subscription legs re-subscribed at a replica after
	// their owner died.
	Rehomed int64
	// EpochMismatches counts routed frames this node fenced because they
	// carried a ring epoch older than its own.
	EpochMismatches int64
}

// Node is one member of a sharded EnviroMeter cluster: it answers
// requests for the shards it owns from its local engine, forwards
// single-shard requests to their owners, and scatter-gathers the
// cross-shard ones (heatmaps, model covers). With Self = -1 and no
// local engine it degenerates into a pure query router. Node implements
// the same HandleMessage contract as the engine, so proto.Serve,
// client transports, and the HTTP API compose with it unchanged. It is
// safe for concurrent use.
type Node struct {
	ring     atomic.Pointer[Ring]
	self     int
	local    Handler
	def      tuple.Pollutant
	pols     []tuple.Pollutant
	streams  StreamOpener
	subQueue int
	repl     *replicator
	dial     Dialer
	hook     func(phase string)

	// tmu guards the transport table, which grows when newer rings add
	// members. Indexes are stable: a slot is never removed, only
	// appended, so node IDs index it for the node's whole life.
	tmu        sync.RWMutex
	transports []Transport

	// memMu serializes membership transitions this node coordinates or
	// participates in (join bootstrap, drain prepare, promotion), and
	// guards pulled — per-stream handoff progress that must survive the
	// prepare→commit boundary so the commit-time final pull resumes
	// instead of re-applying.
	memMu  sync.Mutex
	pulled map[transferKey]uint64

	nextSubID atomic.Uint64

	nLocal     atomic.Int64
	nForwarded atomic.Int64
	nFwdIn     atomic.Int64
	nScatters  atomic.Int64
	nNotOwner  atomic.Int64
	nErrors    atomic.Int64
	nFailover  atomic.Int64
	nRehomed   atomic.Int64
	nEpochRej  atomic.Int64
}

// NewNode builds a cluster node.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Ring == nil {
		return nil, errors.New("cluster: node needs a ring")
	}
	if cfg.Self >= cfg.Ring.Nodes() {
		return nil, fmt.Errorf("cluster: node ID %d outside %d-node ring", cfg.Self, cfg.Ring.Nodes())
	}
	if cfg.Self >= 0 && cfg.Local == nil {
		return nil, fmt.Errorf("cluster: node %d has no local handler", cfg.Self)
	}
	if cfg.Self < 0 && cfg.Local != nil {
		return nil, errors.New("cluster: router (Self = -1) cannot own a local handler")
	}
	if len(cfg.Transports) > 0 && len(cfg.Transports) != cfg.Ring.Nodes() {
		return nil, fmt.Errorf("cluster: %d transports for %d nodes", len(cfg.Transports), cfg.Ring.Nodes())
	}
	transports := cfg.Transports
	if transports == nil {
		transports = make([]Transport, cfg.Ring.Nodes())
	}
	pols := cfg.Pollutants
	if len(pols) == 0 {
		pols = []tuple.Pollutant{cfg.Default}
	}
	n := &Node{
		self:       cfg.Self,
		local:      cfg.Local,
		transports: transports,
		def:        cfg.Default,
		pols:       pols,
		streams:    cfg.Streams,
		subQueue:   cfg.SubQueue,
		dial:       cfg.Dial,
		hook:       cfg.HandoffHook,
		pulled:     make(map[transferKey]uint64),
	}
	n.ring.Store(cfg.Ring)
	if cfg.Self >= 0 {
		// Data nodes always run the replicator: even on an unreplicated
		// ring its per-shard logs are what membership handoffs stream.
		// Mirrors — and therefore the factory — are only needed when the
		// ring actually replicates.
		if cfg.Ring.Replicas() > 1 && cfg.Replication.NewMirror == nil {
			return nil, errors.New("cluster: replicated ring needs a mirror factory (ReplicationConfig.NewMirror)")
		}
		n.repl = newReplicator(n, cfg.Replication)
	}
	return n, nil
}

// Close stops the node's background replication work (peer stream
// workers, in-flight catch-up sessions). Routed subscriptions close
// with their feeds; transports belong to the caller.
func (n *Node) Close() error {
	if n.repl != nil {
		n.repl.close()
	}
	return nil
}

// ReplicationStats returns the node's replication counters; ok is
// false on nodes that do not replicate (unreplicated ring, router) —
// the handoff-only replicator a data node runs on an unreplicated ring
// does not count.
func (n *Node) ReplicationStats() (ReplicationStats, bool) {
	if n.repl == nil || n.Ring().Replicas() <= 1 {
		return ReplicationStats{}, false
	}
	return n.repl.stats(), true
}

// Ring returns the node's current shard ring. The ring is immutable;
// membership transitions swap in whole new versions, so callers that
// need a consistent view across several lookups snapshot it once.
func (n *Node) Ring() *Ring { return n.ring.Load() }

// transport returns the transport to node i (nil when out of range,
// self, or the peer is unreachable by construction).
func (n *Node) transport(i int) Transport {
	n.tmu.RLock()
	defer n.tmu.RUnlock()
	if i < 0 || i >= len(n.transports) {
		return nil
	}
	return n.transports[i]
}

// adoptRing installs r when its epoch exceeds the current ring's,
// growing the transport table to cover members r added. It keeps the
// transports of slots r tombstoned — a draining node must stay
// reachable for the commit-time final pull. Returns whether r was
// installed.
func (n *Node) adoptRing(r *Ring) bool {
	for {
		cur := n.ring.Load()
		if r.Epoch() <= cur.Epoch() {
			return false
		}
		if n.ring.CompareAndSwap(cur, r) {
			break
		}
	}
	n.tmu.Lock()
	defer n.tmu.Unlock()
	for len(n.transports) < r.Nodes() {
		i := len(n.transports)
		var t Transport
		if i != n.self && r.IsLive(i) && n.dial != nil {
			// Lazy: no connection is opened here, so holding tmu is safe.
			t = NewLazyTransport(r.Addr(i), n.dial)
		}
		n.transports = append(n.transports, t)
	}
	return true
}

// Self returns the node's ID (-1 for a router).
func (n *Node) Self() int { return n.self }

// Stats returns a snapshot of the routing counters.
func (n *Node) Stats() Stats {
	return Stats{
		Local:           n.nLocal.Load(),
		Forwarded:       n.nForwarded.Load(),
		ForwardedIn:     n.nFwdIn.Load(),
		Scatters:        n.nScatters.Load(),
		NotOwner:        n.nNotOwner.Load(),
		Errors:          n.nErrors.Load(),
		FailedOver:      n.nFailover.Load(),
		Rehomed:         n.nRehomed.Load(),
		EpochMismatches: n.nEpochRej.Load(),
	}
}

// pollutant resolves a frame's pollutant tag for shard placement.
func (n *Node) pollutant(p tuple.Pollutant, legacy bool) tuple.Pollutant {
	if legacy {
		return n.def
	}
	return p
}

// HandleMessage implements the wire protocol with cluster routing:
// ring exchanges answer from the local ring, owned shards answer from
// the local engine, foreign shards forward to (or name) their owner,
// and cross-shard requests scatter-gather.
func (n *Node) HandleMessage(req wire.Message) wire.Message {
	//ctxcheck:allow legacy ctx-less Handler entry; the serve loop prefers HandleMessageCtx
	return n.HandleMessageCtx(context.Background(), req)
}

// HandleMessageCtx is HandleMessage with a caller-supplied context
// (proto.CtxHandler), so scatter-gather fan-outs and forwarded
// exchanges unwind when the serving process shuts down.
func (n *Node) HandleMessageCtx(ctx context.Context, req wire.Message) wire.Message {
	return n.handle(ctx, req)
}

// localHandle answers a request from the local engine, preserving the
// caller's context when the handler supports it.
func (n *Node) localHandle(ctx context.Context, req wire.Message) wire.Message {
	if ch, ok := n.local.(CtxHandler); ok {
		return ch.HandleMessageCtx(ctx, req)
	}
	return n.local.HandleMessage(req)
}

func (n *Node) handle(ctx context.Context, req wire.Message) wire.Message {
	switch m := req.(type) {
	case wire.RingRequest:
		return n.Ring().Wire()
	case wire.Forwarded:
		// Pre-routed by a peer: answer locally, never re-forward, so a
		// stale peer ring cannot create a forwarding loop.
		if n.local == nil {
			return wire.ErrorResponse{Msg: "cluster: router holds no shards"}
		}
		// Epoch fence: a frame routed under an older ring than ours may
		// name the wrong owner — reject it so the sender refreshes and
		// re-routes. A frame from a NEWER ring is served: the newer
		// placement chose this node, we just have not adopted it yet.
		// Epoch 0 is a legacy (or deliberately epoch-agnostic) frame.
		if own := n.Ring().Epoch(); m.Epoch != 0 && m.Epoch < own {
			n.nEpochRej.Add(1)
			return epochMismatch(m.Epoch, own)
		}
		n.nFwdIn.Add(1)
		if ing, ok := m.Inner.(wire.IngestRequest); ok {
			// A forwarded ingest is this primary's commit point: apply
			// locally and stream the slice to the shard's replicas.
			return n.localIngest(ctx, ing)
		}
		return n.localHandle(ctx, m.Inner)
	case wire.QueryRequest:
		ring := n.Ring()
		pol := n.pollutant(m.Pollutant, m.Legacy)
		k := ShardKey{Pollutant: pol, Cell: ring.CellOf(geo.Point{X: m.X, Y: m.Y})}
		return n.routeShard(ctx, ring, k, m, true)
	case wire.ModelRequest:
		resp, _ := n.scatterModel(ctx, m)
		return resp
	case wire.BatchQueryRequest:
		return n.routeBatch(ctx, m)
	case wire.IngestRequest:
		return n.routeIngest(ctx, m)
	case wire.HeatmapRequest:
		resp, _ := n.scatterHeatmap(ctx, m)
		return resp
	case wire.ReplicaIngest:
		return n.handleReplicaIngest(m)
	case wire.ReplicaCatchupRequest:
		return n.handleCatchup(m)
	case wire.ReplicaRead:
		return n.handleReplicaRead(m)
	case wire.JoinRequest:
		return n.handleJoin(m)
	case wire.RingUpdate:
		return n.handleRingUpdate(ctx, m)
	case wire.ShardTransfer:
		return n.handleShardTransfer(m)
	case wire.Promote:
		return n.handlePromote(ctx, m)
	case wire.SubscribeRequest:
		// Plain exchanges cannot carry pushes; the streaming path routes
		// subscribe frames through HandleStream instead.
		return wire.ErrorResponse{Msg: "cluster: subscriptions require a streaming transport"}
	case wire.UnsubscribeRequest:
		// Subscription IDs are node-local (a routed subscription dies
		// with its stream), so unsubscribe never forwards.
		if n.local == nil {
			return wire.ErrorResponse{Msg: "cluster: router holds no subscriptions"}
		}
		return n.localHandle(ctx, m)
	default:
		return wire.ErrorResponse{Msg: fmt.Sprintf("cluster: unsupported request type %T", req)}
	}
}

// routeOwner sends a single-shard request to its owner under ring: the
// local engine, a peer transport, or — unreachable — a
// NotOwnerResponse naming it. down is true exactly when the owner's
// transport failed — the one failure replicas can heal. An engine
// error is an authoritative answer and never fails over. Forwarded
// frames carry ring's epoch so a peer on a different ring version
// fences the disagreement instead of serving the wrong shard.
func (n *Node) routeOwner(ctx context.Context, ring *Ring, owner int, m wire.Message) (resp wire.Message, down bool) {
	if owner == n.self {
		n.nLocal.Add(1)
		if ing, ok := m.(wire.IngestRequest); ok {
			// A locally-owned ingest commits here: apply and stream the
			// slice to the shard's replicas.
			return n.localIngest(ctx, ing), false
		}
		return n.localHandle(ctx, m), false
	}
	if t := n.transport(owner); t != nil {
		n.nForwarded.Add(1)
		resp, err := t.Exchange(wire.Forwarded{Inner: m, Epoch: ring.Epoch()})
		if err != nil {
			n.nErrors.Add(1)
			return wire.ErrorResponse{Msg: fmt.Sprintf("cluster: node %d (%s) unreachable: %v", owner, ring.Addr(owner), err)}, true
		}
		return resp, false
	}
	n.nNotOwner.Add(1)
	return wire.NotOwnerResponse{Owner: uint16(owner), Addr: ring.Addr(owner)}, false
}

// refreshRingFrom pulls peer's current ring — after peer fenced a
// frame with an epoch mismatch — and adopts it if newer. Returns the
// node's refreshed ring when it now carries a newer epoch than old
// (re-routing under it can change the outcome), nil otherwise.
func (n *Node) refreshRingFrom(peer int, old *Ring) *Ring {
	t := n.transport(peer)
	if t == nil {
		return nil
	}
	resp, err := t.Exchange(wire.RingRequest{})
	if err != nil {
		n.nErrors.Add(1)
		return nil
	}
	rr, ok := resp.(wire.RingResponse)
	if !ok {
		return nil
	}
	r, err := RingFromWire(rr)
	if err != nil {
		return nil
	}
	n.adoptRing(r)
	if cur := n.Ring(); cur.Epoch() > old.Epoch() {
		return cur
	}
	return nil
}

// routeShard routes a single-shard read to its owner, retrying at the
// shard's replicas when the owner is unreachable instead of answering
// 502. Only reads fail over — writes commit at the primary by design —
// and when no replica answers either, the owner's original error
// stands. An epoch-mismatch fence triggers one ring refresh and one
// re-route under the refreshed ring (refresh guards the recursion:
// retrying without a newer ring cannot change the outcome).
func (n *Node) routeShard(ctx context.Context, ring *Ring, k ShardKey, m wire.Message, retry bool) wire.Message {
	reps := ring.ReplicasFor(k)
	resp, down := n.routeOwner(ctx, ring, reps[0], m)
	if retry && isEpochMismatch(resp) {
		if fresh := n.refreshRingFrom(reps[0], ring); fresh != nil {
			return n.routeShard(ctx, fresh, k, m, false)
		}
	}
	if !down || ring.Replicas() <= 1 {
		return resp
	}
	for _, rep := range reps[1:] {
		if ans, ok := n.readAtReplica(rep, reps[0], m); ok {
			n.nFailover.Add(1)
			return ans
		}
	}
	return resp
}

// routeBatch splits a batch by shard owner, answers/forwards every
// sub-batch concurrently, and reassembles the responses in request
// order. A failed sub-batch fails only its own items.
func (n *Node) routeBatch(ctx context.Context, m wire.BatchQueryRequest) wire.Message {
	if len(m.Items) == 0 {
		return wire.ErrorResponse{Msg: "empty query batch"}
	}
	all := make([]int, len(m.Items))
	for i := range all {
		all[i] = i
	}
	out := make([]wire.BatchQueryItem, len(m.Items))
	n.batchInto(ctx, n.Ring(), m, all, out, true)
	return wire.BatchQueryResponse{Items: out}
}

// batchInto answers the m.Items named by idxs into out, grouped by
// shard owner under ring. retry allows each fenced sub-batch one
// re-split under a refreshed ring (an epoch mismatch rejects the whole
// sub-batch, so re-splitting repeats no item).
func (n *Node) batchInto(ctx context.Context, ring *Ring, m wire.BatchQueryRequest, idxs []int, out []wire.BatchQueryItem, retry bool) {
	groups := make(map[int][]int) // owner -> original indexes
	for _, i := range idxs {
		it := m.Items[i]
		pol := n.pollutant(it.Pollutant, it.Legacy)
		owner := ring.Owner(pol, geo.Point{X: it.X, Y: it.Y})
		groups[owner] = append(groups[owner], i)
	}
	var wg sync.WaitGroup
	for owner, idxs := range groups {
		wg.Add(1)
		go func(owner int, idxs []int) {
			defer wg.Done()
			sub := wire.BatchQueryRequest{Items: make([]wire.QueryRequest, len(idxs))}
			for j, i := range idxs {
				sub.Items[j] = m.Items[i]
			}
			resp, ownerDown := n.routeOwner(ctx, ring, owner, sub)
			fill := func(errMsg string) {
				for _, i := range idxs {
					out[i] = wire.BatchQueryItem{Err: errMsg}
				}
			}
			switch r := resp.(type) {
			case wire.BatchQueryResponse:
				if len(r.Items) != len(idxs) {
					fill(fmt.Sprintf("cluster: node %d answered %d of %d items", owner, len(r.Items), len(idxs)))
					return
				}
				for j, i := range idxs {
					out[i] = r.Items[j]
				}
			case wire.ErrorResponse:
				if retry && isEpochMismatch(resp) {
					if fresh := n.refreshRingFrom(owner, ring); fresh != nil {
						n.batchInto(ctx, fresh, m, idxs, out, false)
						return
					}
				}
				if ownerDown && ring.Replicas() > 1 {
					n.batchFailover(ring, owner, m, idxs, out, r.Msg)
					return
				}
				fill(r.Msg)
			case wire.NotOwnerResponse:
				fill(notOwnerMsg(r))
			default:
				fill(fmt.Sprintf("cluster: unexpected response %T", resp))
			}
		}(owner, idxs)
	}
	wg.Wait()
}

// batchFailover re-answers a dead owner's sub-batch at its replicas:
// items regroup by their shard's first reachable replica and each
// group crosses as one replica-read sub-batch. Items with no live
// replica keep the owner's unreachable error.
func (n *Node) batchFailover(ring *Ring, owner int, m wire.BatchQueryRequest, idxs []int, out []wire.BatchQueryItem, errMsg string) {
	regroup := make(map[int][]int) // replica -> original item indexes
	for _, i := range idxs {
		it := m.Items[i]
		pol := n.pollutant(it.Pollutant, it.Legacy)
		k := ShardKey{Pollutant: pol, Cell: ring.CellOf(geo.Point{X: it.X, Y: it.Y})}
		rep := -1
		for _, r := range ring.ReplicasFor(k)[1:] {
			if (r == n.self && n.repl != nil) || (r != n.self && n.transport(r) != nil) {
				rep = r
				break
			}
		}
		regroup[rep] = append(regroup[rep], i)
	}
	for rep, sub := range regroup {
		fail := func() {
			for _, i := range sub {
				out[i] = wire.BatchQueryItem{Err: errMsg}
			}
		}
		if rep < 0 {
			fail()
			continue
		}
		req := wire.BatchQueryRequest{Items: make([]wire.QueryRequest, len(sub))}
		for j, i := range sub {
			req.Items[j] = m.Items[i]
		}
		resp, ok := n.readAtReplica(rep, owner, req)
		br, isBatch := resp.(wire.BatchQueryResponse)
		if !ok || !isBatch || len(br.Items) != len(sub) {
			fail()
			continue
		}
		n.nFailover.Add(1)
		for j, i := range sub {
			out[i] = br.Items[j]
		}
	}
}

// routeIngest splits an upload by shard owner and applies every slice
// on its owner concurrently. The ingest acknowledges only if every
// slice applied; a partial failure names the slices lost.
func (n *Node) routeIngest(ctx context.Context, m wire.IngestRequest) wire.Message {
	if len(m.Tuples) == 0 {
		return wire.ErrorResponse{Msg: ingest.ErrInvalidBatch.Error() + ": empty upload"}
	}
	var (
		mu    sync.Mutex
		total uint32
		errs  []string
	)
	n.ingestInto(ctx, n.Ring(), m.Pollutant, m.Tuples, &mu, &total, &errs, true)
	switch {
	case len(errs) == 0:
		return wire.IngestResponse{Ingested: total}
	case total == 0:
		// Nothing applied anywhere: the whole upload is safe to retry,
		// so surface the slice errors as-is (a saturated owner keeps its
		// ErrSaturated text and the HTTP layer's 429 + Retry-After).
		return wire.ErrorResponse{Msg: fmt.Sprintf("cluster: ingest failed (0/%d applied): %s",
			len(m.Tuples), strings.Join(errs, "; "))}
	default:
		// Some owners committed their slices: a blind retry would
		// duplicate them. The partial-ingest marker suppresses the
		// retryable-error mapping (see mapWireError).
		return wire.ErrorResponse{Msg: fmt.Sprintf("%s (%d/%d applied): %s",
			ErrPartialIngest.Error(), total, len(m.Tuples), strings.Join(errs, "; "))}
	}
}

// ingestInto splits tuples by shard owner under ring and applies every
// slice on its owner concurrently, accumulating applied counts and
// slice errors under mu. retry allows each fenced chunk one re-split
// of the slice's unapplied remainder under a refreshed ring — the
// fence rejected the whole chunk without applying it, so the re-split
// duplicates nothing.
func (n *Node) ingestInto(ctx context.Context, ring *Ring, pol tuple.Pollutant, tuples []tuple.Raw, mu *sync.Mutex, total *uint32, errs *[]string, retry bool) {
	groups := make(map[int][]tuple.Raw)
	for _, r := range tuples {
		owner := ring.Owner(pol, r.Pos())
		groups[owner] = append(groups[owner], r)
	}
	var wg sync.WaitGroup
	for owner, slice := range groups {
		wg.Add(1)
		go func(owner int, slice []tuple.Raw) {
			defer wg.Done()
			// Chunk the slice so every forwarded frame fits the wire;
			// stop at the first failed chunk (the rest would only widen
			// the partial window).
			for start := 0; start < len(slice); start += maxIngestChunk {
				end := start + maxIngestChunk
				if end > len(slice) {
					end = len(slice)
				}
				chunk := slice[start:end]
				resp, _ := n.routeOwner(ctx, ring, owner, wire.IngestRequest{Pollutant: pol, Tuples: chunk})
				if retry && isEpochMismatch(resp) {
					if fresh := n.refreshRingFrom(owner, ring); fresh != nil {
						n.ingestInto(ctx, fresh, pol, slice[start:], mu, total, errs, false)
						return
					}
				}
				mu.Lock()
				failed := true
				switch r := resp.(type) {
				case wire.IngestResponse:
					*total += r.Ingested
					failed = false
				case wire.NotOwnerResponse:
					*errs = append(*errs, fmt.Sprintf("%d tuples: %s", len(slice)-start, notOwnerMsg(r)))
				case wire.ErrorResponse:
					*errs = append(*errs, fmt.Sprintf("%d tuples: %s", len(slice)-start, r.Msg))
				default:
					*errs = append(*errs, fmt.Sprintf("%d tuples: unexpected response %T", len(slice)-start, resp))
				}
				mu.Unlock()
				if failed {
					return
				}
			}
		}(owner, slice)
	}
	wg.Wait()
}

// scatterModel gathers every node's model cover for the window and
// merges them into one response: the union of all region models, valid
// over the intersection of the nodes' validity windows. Nearest-centroid
// evaluation of the merged cover reproduces single-node semantics,
// because every region model still wins exactly at its own shard's
// positions. Nodes that fail (down, or no data for their shards in this
// window) are skipped; the merge fails only when no node answers. On a
// replicated ring, dead nodes' covers come from their replicas; when a
// dead node has no live replica the merge proceeds without its shards
// and the returned Partial names it (nil when the answer is complete).
func (n *Node) scatterModel(ctx context.Context, m wire.ModelRequest) (wire.Message, *Partial) {
	n.nScatters.Add(1)
	ring := n.Ring()
	resps, nodeDown, firstErr := n.scatter(ctx, ring, m)
	part := n.scatterFailover(ring, resps, nodeDown, m.Pollutant, m)
	var merged wire.ModelResponse
	var got bool
	for _, resp := range resps {
		mr, ok := resp.(wire.ModelResponse)
		if !ok {
			continue
		}
		if !got {
			merged, got = mr, true
			continue
		}
		if mr.Features != merged.Features {
			return wire.ErrorResponse{Msg: fmt.Sprintf("cluster: mixed model features %q vs %q", merged.Features, mr.Features)}, nil
		}
		merged.ValidFrom = maxF(merged.ValidFrom, mr.ValidFrom)
		merged.ValidUntil = minF(merged.ValidUntil, mr.ValidUntil)
		merged.ValueLo = minF(merged.ValueLo, mr.ValueLo)
		merged.ValueHi = maxF(merged.ValueHi, mr.ValueHi)
		merged.Centroids = append(merged.Centroids, mr.Centroids...)
		merged.Coefs = append(merged.Coefs, mr.Coefs...)
	}
	if !got {
		return firstErr, nil
	}
	return merged, part
}

// scatterHeatmap rasterizes the whole cluster: every node renders its
// own shard's view, and the merge assembles the union region by
// sampling, for each output pixel, the grid of the node that owns the
// pixel's shard — so every shard's data is drawn by its owner and dead
// nodes only blank their own shards (pixels of lost shards fall back to
// the nearest surviving grid).
// On a replicated ring, dead nodes' grids come from their replicas;
// unhealed legs blank their shards and the returned Partial names them
// (nil when the raster is complete).
func (n *Node) scatterHeatmap(ctx context.Context, m wire.HeatmapRequest) (wire.Message, *Partial) {
	n.nScatters.Add(1)
	if m.Cols < 1 || m.Rows < 1 {
		return wire.ErrorResponse{Msg: fmt.Sprintf("heatmap: grid %dx%d, want >= 1x1", m.Cols, m.Rows)}, nil
	}
	if int(m.Cols)*int(m.Rows) > maxHeatmapCells {
		// A larger raster could not cross back from the peers in one
		// frame; reject loudly instead of silently rendering foreign
		// shards from fallback grids.
		return wire.ErrorResponse{Msg: fmt.Sprintf("heatmap: grid %dx%d exceeds the cluster frame budget (%d cells)",
			m.Cols, m.Rows, maxHeatmapCells)}, nil
	}
	ring := n.Ring()
	resps, nodeDown, firstErr := n.scatter(ctx, ring, m)
	part := n.scatterFailover(ring, resps, nodeDown, m.Pollutant, m)
	byNode := make([]*wire.HeatmapResponse, ring.Nodes())
	var any bool
	union := geo.Rect{}
	for i, resp := range resps {
		hr, ok := resp.(wire.HeatmapResponse)
		if !ok {
			continue
		}
		byNode[i] = &hr
		if !any {
			union, any = hr.Region, true
		} else {
			union = union.Union(hr.Region)
		}
	}
	if !any {
		return firstErr, nil
	}
	if m.HasRegion {
		union = m.Region
	}
	out := wire.HeatmapResponse{
		Region: union, Cols: m.Cols, Rows: m.Rows, T: m.T,
		Values: make([]float64, int(m.Cols)*int(m.Rows)),
	}
	dx := (union.Max.X - union.Min.X) / float64(m.Cols)
	dy := (union.Max.Y - union.Min.Y) / float64(m.Rows)
	for j := 0; j < int(m.Rows); j++ {
		y := union.Min.Y + (float64(j)+0.5)*dy
		for i := 0; i < int(m.Cols); i++ {
			p := geo.Point{X: union.Min.X + (float64(i)+0.5)*dx, Y: y}
			src := byNode[ring.Owner(m.Pollutant, p)]
			if src == nil {
				src = nearestGrid(byNode, p)
			}
			out.Values[j*int(m.Cols)+i] = sampleGrid(src, p)
		}
	}
	return out, part
}

// scatter fans a request out to every live node (the local engine
// included) and returns the per-node responses, a per-node owner-down
// flag (set on transport failure or a missing transport), and the
// first error response, to report when nothing succeeds. Tombstoned
// slots are skipped — they own no shards. Scatter legs are sent
// epoch-agnostic (Epoch 0): the merge samples by ownership, so a peer
// one epoch away answering from its own view is at worst briefly
// stale, and fencing every leg would fail whole rasters during each
// transition for no correctness gain.
func (n *Node) scatter(ctx context.Context, ring *Ring, m wire.Message) ([]wire.Message, []bool, wire.ErrorResponse) {
	resps := make([]wire.Message, ring.Nodes())
	nodeDown := make([]bool, ring.Nodes())
	var wg sync.WaitGroup
	for i := 0; i < ring.Nodes(); i++ {
		if !ring.IsLive(i) {
			continue
		}
		if i != n.self && n.transport(i) == nil {
			nodeDown[i] = true
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == n.self {
				n.nLocal.Add(1)
				resps[i] = n.localHandle(ctx, m)
				return
			}
			n.nForwarded.Add(1)
			resp, err := n.transport(i).Exchange(wire.Forwarded{Inner: m})
			if err != nil {
				n.nErrors.Add(1)
				nodeDown[i] = true
				resp = wire.ErrorResponse{Msg: fmt.Sprintf("cluster: node %d (%s) unreachable: %v", i, ring.Addr(i), err)}
			}
			resps[i] = resp
		}(i)
	}
	wg.Wait()
	firstErr := wire.ErrorResponse{Msg: "cluster: no node answered"}
	for _, r := range resps {
		if er, ok := r.(wire.ErrorResponse); ok {
			firstErr = er
			break
		}
	}
	return resps, nodeDown, firstErr
}

// scatterFailover re-asks a scatter's dead legs at their replicas,
// patching healed answers into resps in place. Legs with no live
// replica are recorded in the returned Partial — nil when every leg
// answered or the ring is unreplicated, so unreplicated clusters keep
// the all-or-nothing v1.2 contract byte for byte.
func (n *Node) scatterFailover(ring *Ring, resps []wire.Message, nodeDown []bool, pol tuple.Pollutant, m wire.Message) *Partial {
	if ring.Replicas() <= 1 {
		return nil
	}
	var part *Partial
	for i := range resps {
		if !nodeDown[i] {
			continue
		}
		owned := len(ring.OwnedCells(i, pol))
		if owned == 0 {
			// The dead node holds no shard of this pollutant; its leg
			// contributes nothing and its loss is not partial.
			continue
		}
		healed := false
		for _, rep := range ring.ReplicaPeers(i, pol) {
			if ans, ok := n.readAtReplica(rep, i, m); ok {
				resps[i] = ans
				n.nFailover.Add(1)
				healed = true
				break
			}
		}
		if !healed {
			if part == nil {
				part = &Partial{}
			}
			part.Dead = append(part.Dead, i)
			part.StaleShards += owned
		}
	}
	return part
}

// nearestGrid picks the available response whose region is closest to p.
func nearestGrid(byNode []*wire.HeatmapResponse, p geo.Point) *wire.HeatmapResponse {
	var best *wire.HeatmapResponse
	bestD := 0.0
	for _, hr := range byNode {
		if hr == nil {
			continue
		}
		d := hr.Region.DistToPoint(p)
		if best == nil || d < bestD {
			best, bestD = hr, d
		}
	}
	return best
}

// sampleGrid reads the grid cell containing p, clamping positions
// outside the grid's region to its edge cells.
func sampleGrid(hr *wire.HeatmapResponse, p geo.Point) float64 {
	fx := (p.X - hr.Region.Min.X) / (hr.Region.Max.X - hr.Region.Min.X)
	fy := (p.Y - hr.Region.Min.Y) / (hr.Region.Max.Y - hr.Region.Min.Y)
	i := clampIdx(int(fx*float64(hr.Cols)), int(hr.Cols))
	j := clampIdx(int(fy*float64(hr.Rows)), int(hr.Rows))
	return hr.Values[j*int(hr.Cols)+i]
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

func notOwnerMsg(r wire.NotOwnerResponse) string {
	return fmt.Sprintf("cluster: not owner of shard (owner node %d %s)", r.Owner, r.Addr)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// --- Go-level convenience surface ------------------------------------
//
// The facade and the HTTP API route through these instead of building
// wire frames by hand. Responses crossing the cluster lose their typed
// errors (only the message travels); mapWireError restores the v1
// taxonomy for the sentinels embedded in the text, so errors.Is keeps
// working on routed calls.

// mapWireError turns an error message that crossed the wire back into
// the v1 error taxonomy where it embeds a known sentinel. The
// partial-ingest marker is checked first: its message embeds the slice
// errors (possibly including retryable sentinels like ErrSaturated),
// and a partial ingest must never look retryable.
func mapWireError(msg string) error {
	if strings.Contains(msg, "partial ingest") {
		return fmt.Errorf("%w: %s", ErrPartialIngest, msg)
	}
	if strings.Contains(msg, "frame budget") {
		return fmt.Errorf("%w: %s", ErrTooLarge, msg)
	}
	if strings.Contains(msg, epochMismatchMarker) {
		return fmt.Errorf("%w: %s", ErrStaleEpoch, msg)
	}
	for _, sentinel := range []error{
		query.ErrOutOfWindow,
		query.ErrNoCover,
		query.ErrUnknownPollutant,
		ingest.ErrSaturated,
		ingest.ErrInvalidBatch,
	} {
		if strings.Contains(msg, sentinel.Error()) {
			return fmt.Errorf("%w (routed): %s", sentinel, msg)
		}
	}
	if strings.Contains(msg, "unreachable") {
		return fmt.Errorf("%w: %s", ErrNodeUnreachable, msg)
	}
	return errors.New(msg)
}

// Query answers one request through the cluster: locally when this node
// owns the shard, forwarded otherwise.
func (n *Node) Query(ctx context.Context, req query.Request) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	resp := n.handle(ctx, wire.QueryRequest{T: req.T, X: req.X, Y: req.Y, Pollutant: req.Pollutant})
	switch r := resp.(type) {
	case wire.QueryResponse:
		return r.Value, nil
	case wire.ErrorResponse:
		return 0, mapWireError(r.Msg)
	case wire.NotOwnerResponse:
		return 0, errors.New(notOwnerMsg(r))
	default:
		return 0, fmt.Errorf("cluster: unexpected response %T", resp)
	}
}

// QueryBatch answers a batch through the cluster with per-item results,
// splitting it across shard owners.
func (n *Node) QueryBatch(ctx context.Context, reqs []query.Request) ([]query.BatchResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(reqs) == 0 {
		return nil, errors.New("cluster: empty query batch")
	}
	m := wire.BatchQueryRequest{Items: make([]wire.QueryRequest, len(reqs))}
	for i, req := range reqs {
		m.Items[i] = wire.QueryRequest{T: req.T, X: req.X, Y: req.Y, Pollutant: req.Pollutant}
	}
	resp := n.handle(ctx, m)
	switch r := resp.(type) {
	case wire.BatchQueryResponse:
		out := make([]query.BatchResult, len(r.Items))
		for i, it := range r.Items {
			if it.Err != "" {
				out[i] = query.BatchResult{Err: mapWireError(it.Err)}
			} else {
				out[i] = query.BatchResult{Value: it.Value}
			}
		}
		return out, nil
	case wire.ErrorResponse:
		return nil, mapWireError(r.Msg)
	default:
		return nil, fmt.Errorf("cluster: unexpected response %T", resp)
	}
}

// Ingest applies an upload through the cluster, splitting it across
// shard owners.
func (n *Node) Ingest(ctx context.Context, pol tuple.Pollutant, b tuple.Batch) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	resp := n.handle(ctx, wire.IngestRequest{Pollutant: pol, Tuples: b})
	switch r := resp.(type) {
	case wire.IngestResponse:
		return nil
	case wire.ErrorResponse:
		return mapWireError(r.Msg)
	case wire.NotOwnerResponse:
		return errors.New(notOwnerMsg(r))
	default:
		return fmt.Errorf("cluster: unexpected response %T", resp)
	}
}

// Heatmap rasterizes the whole cluster's view of pollutant p at time t.
// On a replicated ring the grid may come back alongside a *PartialError
// (errors.Is(err, ErrPartialResult)) when a dead node had no live
// replica: the grid is still usable, minus the named node's shards.
func (n *Node) Heatmap(ctx context.Context, p tuple.Pollutant, t float64, cols, rows int) (*heatmap.Grid, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cols < 1 || cols > int(^uint16(0)) || rows < 1 || rows > int(^uint16(0)) {
		return nil, fmt.Errorf("cluster: heatmap grid %dx%d out of range", cols, rows)
	}
	resp, part := n.scatterHeatmap(ctx, wire.HeatmapRequest{T: t, Pollutant: p, Cols: uint16(cols), Rows: uint16(rows)})
	switch r := resp.(type) {
	case wire.HeatmapResponse:
		if part != nil {
			return r.Grid(), &PartialError{Partial: *part}
		}
		return r.Grid(), nil
	case wire.ErrorResponse:
		return nil, mapWireError(r.Msg)
	default:
		return nil, fmt.Errorf("cluster: unexpected response %T", resp)
	}
}

// Model returns the cluster-merged model cover of pollutant p at time t.
// Like Heatmap, a replicated ring may return both a usable cover and a
// *PartialError naming dead nodes whose shards are missing from it.
func (n *Node) Model(ctx context.Context, p tuple.Pollutant, t float64) (wire.ModelResponse, error) {
	if err := ctx.Err(); err != nil {
		return wire.ModelResponse{}, err
	}
	resp, part := n.scatterModel(ctx, wire.ModelRequest{T: t, Pollutant: p})
	switch r := resp.(type) {
	case wire.ModelResponse:
		if part != nil {
			return r, &PartialError{Partial: *part}
		}
		return r, nil
	case wire.ErrorResponse:
		return wire.ModelResponse{}, mapWireError(r.Msg)
	default:
		return wire.ModelResponse{}, fmt.Errorf("cluster: unexpected response %T", resp)
	}
}
