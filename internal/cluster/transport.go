package cluster

import (
	"sync"

	"repro/internal/wire"
)

// Dialer opens a transport to a peer node's wire address (proto.Dial
// adapted, in production).
type Dialer func(addr string) (Transport, error)

// lazyTransport dials its peer on first use and redials after a failed
// exchange, so a node that starts before its peers (or outlives a peer
// restart) converges without operator action.
type lazyTransport struct {
	addr string
	dial Dialer

	mu sync.Mutex
	t  Transport
}

// NewLazyTransport returns a Transport that connects to addr on first
// Exchange and reconnects after transport failures.
func NewLazyTransport(addr string, dial Dialer) Transport {
	return &lazyTransport{addr: addr, dial: dial}
}

// Exchange implements Transport. A failed exchange drops the cached
// connection so the next call redials; the failure itself is returned
// to the caller, which routes or reports it (no transparent retry — a
// forwarded ingest must not be applied twice). Dialing and the
// exchange itself happen OUTSIDE the mutex: a dead peer must cost each
// concurrent caller one dial timeout, not a serialized queue of them,
// and concurrent exchanges rely on the underlying transport's own
// serialization (proto.Client is safe for concurrent use).
func (lt *lazyTransport) Exchange(req wire.Message) (wire.Message, error) {
	lt.mu.Lock()
	t := lt.t
	lt.mu.Unlock()
	if t == nil {
		nt, err := lt.dial(lt.addr)
		if err != nil {
			return nil, err
		}
		lt.mu.Lock()
		if lt.t == nil {
			lt.t = nt
			t = nt
		} else {
			// A concurrent caller won the dial race; keep theirs.
			t = lt.t
		}
		lt.mu.Unlock()
		if t != nt {
			closeTransport(nt)
		}
	}
	resp, err := t.Exchange(req)
	if err != nil {
		lt.mu.Lock()
		if lt.t == t {
			lt.t = nil
		}
		lt.mu.Unlock()
		closeTransport(t)
		return nil, err
	}
	return resp, nil
}

// closeTransport closes a transport if it supports closing.
func closeTransport(t Transport) {
	if c, ok := t.(interface{ Close() error }); ok {
		_ = c.Close()
	}
}

// LazyTransports builds one lazy transport per ring node, with nil at
// self — the Transports slice NodeConfig expects.
func LazyTransports(r *Ring, self int, dial Dialer) []Transport {
	out := make([]Transport, r.Nodes())
	for i := range out {
		if i == self {
			continue
		}
		out[i] = NewLazyTransport(r.Addr(i), dial)
	}
	return out
}
