// Epoch-versioned live membership: node join, operator drain, and
// dead-primary promotion, each an epoch bump of the shard ring pushed
// to the members while they serve traffic.
//
// The safety story is a fence plus a pull. Every routed frame carries
// the epoch of the ring that routed it; a receiver on a newer epoch
// rejects the frame (epochMismatch) before touching state, the sender
// refreshes its ring from the rejecting peer, and re-routes once. Data
// moves by pulling replication logs (ShardTransfer, answered with the
// same checkpoint-or-suffix chunks as replica catch-up): a gaining
// node pulls a shard's stream before the epoch commits, and pulls the
// tail again after, so ingest that lands mid-transition is covered by
// the old owner's log rather than lost. Pull progress is sequence
// positions in the origin's stream, shared across sources, so resuming
// a pull — or pulling the same stream from a second source — never
// re-applies a tuple.
//
// Transition shapes (phase labels are what HandoffHook sees):
//
//	join:     the joiner asks any member for the next-epoch ring
//	          (JoinRequest), builds its node on it, bootstraps the
//	          shards it gains from their current owners [join:pending →
//	          join:bootstrapped], broadcasts the commit [join:committing
//	          → join:committed], and final-pulls the tail [join:done].
//	drain:    the drainer broadcasts the tombstoned ring as a prepare —
//	          each receiver synchronously pulls the shards it gains
//	          from the drainer and a failed prepare aborts with the
//	          ring unchanged [drain:pending → drain:prepared] — then
//	          fences itself by adopting the new epoch [drain:fenced]
//	          and broadcasts the commit [drain:committed].
//	promote:  a survivor told that a primary died (Promote) tombstones
//	          it at the next epoch [promote:adopted], recovers the
//	          shards it gains from the dead node's replicas and its own
//	          mirror [promote:recovered], and broadcasts the commit
//	          [promote:committed].
//	update:   the receiver side of a broadcast: a prepare bootstraps
//	          gained shards before acking [update:prepared]; a commit
//	          installs the ring, then best-effort pulls the tail
//	          [update:committed].
//
// What membership cannot recover: a stream's history older than the
// replication-log retention cap moves as a snapshot of the retained
// log (the same contract replica catch-up has), and a killed primary
// takes with it any acked tuples it had not yet streamed to a replica
// — promotion recovers everything the surviving replicas hold.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/tuple"
	"repro/internal/wire"
)

// epochMismatchMarker is the substring that identifies an epoch fence
// rejection after the error crosses the wire as plain text.
const epochMismatchMarker = "cluster: epoch mismatch"

// epochMismatch is the fence rejection for a frame routed under an
// older ring than the receiver's.
func epochMismatch(frame, own uint64) wire.ErrorResponse {
	return wire.ErrorResponse{Msg: fmt.Sprintf("%s: frame routed at epoch %d, node at epoch %d", epochMismatchMarker, frame, own)}
}

// isEpochMismatch reports whether a response is a peer's epoch fence.
func isEpochMismatch(resp wire.Message) bool {
	er, ok := resp.(wire.ErrorResponse)
	return ok && strings.Contains(er.Msg, epochMismatchMarker)
}

// transferKey identifies one handoff pull: the stream's origin node
// and pollutant. Progress under a key is a sequence position in that
// origin's replication stream, whichever source served it.
type transferKey struct {
	origin int
	pol    tuple.Pollutant
}

// firePhase reports a membership phase boundary to the fault-injection
// hook, when one is installed.
func (n *Node) firePhase(phase string) {
	if n.hook != nil {
		n.hook(phase)
	}
}

// JoinCluster announces addr to a seed member and returns the pending
// next-epoch ring that includes it as the highest node ID. Nothing is
// installed anywhere yet: the caller builds its Node on the pending
// ring and calls CompleteJoin to bootstrap and commit.
func JoinCluster(seed Transport, addr string) (*Ring, error) {
	resp, err := seed.Exchange(wire.JoinRequest{Addr: addr})
	if err != nil {
		return nil, fmt.Errorf("cluster: join announce: %w", err)
	}
	switch r := resp.(type) {
	case wire.RingResponse:
		ring, err := RingFromWire(r)
		if err != nil {
			return nil, fmt.Errorf("cluster: join announce: %w", err)
		}
		if ring.Addr(ring.Nodes()-1) != addr {
			return nil, fmt.Errorf("cluster: seed answered a ring not ending in %s", addr)
		}
		return ring, nil
	case wire.ErrorResponse:
		return nil, errors.New(r.Msg)
	default:
		return nil, fmt.Errorf("cluster: unexpected join response %T", resp)
	}
}

// handleJoin computes — without installing — the next-epoch ring with
// the announcing node appended, and returns it. The joiner owns the
// rest of the transition.
func (n *Node) handleJoin(m wire.JoinRequest) wire.Message {
	d, err := n.Ring().JoinDesc(m.Addr)
	if err != nil {
		return wire.ErrorResponse{Msg: err.Error()}
	}
	pending, err := NewRing(d)
	if err != nil {
		return wire.ErrorResponse{Msg: err.Error()}
	}
	return pending.Wire()
}

// CompleteJoin runs the joiner's side of a join: the node must have
// been built on the pending ring returned by JoinCluster, with Self =
// the new (highest) node ID. It bootstraps the shards the node gains
// by pulling their current owners' replication logs, broadcasts the
// commit to the old members, and pulls the tail that landed during the
// bootstrap. On return the node is a serving member at the new epoch.
func (n *Node) CompleteJoin(ctx context.Context) error {
	pending := n.Ring()
	if pending.Epoch() == 0 {
		return errors.New("cluster: join needs an epoch-bearing ring (from JoinCluster)")
	}
	if n.self != pending.Nodes()-1 {
		return fmt.Errorf("cluster: joiner must be the pending ring's last node, is %d of %d", n.self, pending.Nodes())
	}
	od := pending.Desc()
	od.Nodes = append([]string(nil), od.Nodes[:len(od.Nodes)-1]...)
	od.Epoch--
	old, err := NewRing(od)
	if err != nil {
		return fmt.Errorf("cluster: join: reconstructing the pre-join ring: %w", err)
	}
	n.firePhase("join:pending")
	if err := n.acquireShards(ctx, old, pending, true); err != nil {
		return fmt.Errorf("cluster: join bootstrap: %w", err)
	}
	n.firePhase("join:bootstrapped")
	n.firePhase("join:committing")
	if err := n.broadcastRing(old, pending, true); err != nil {
		return fmt.Errorf("cluster: join commit: %w", err)
	}
	n.firePhase("join:committed")
	// The old owners kept committing while we bootstrapped; now that
	// they route new writes to us, pull the remaining tail. Best-effort:
	// a failed tail pull self-heals through replica catch-up, and the
	// epoch is already committed.
	_ = n.acquireShards(ctx, old, pending, false)
	n.firePhase("join:done")
	return nil
}

// Drain runs the leaving node's side of an operator drain: prepare
// (every surviving member pulls the shards it gains from this node and
// acks; any failure aborts with the cluster's ring unchanged), fence
// (this node adopts the tombstoned ring, so late writes bounce to the
// new owners), commit (survivors install the new epoch and pull the
// tail). On return the node serves nothing and can shut down.
func (n *Node) Drain(ctx context.Context) error {
	if n.self < 0 {
		return errors.New("cluster: a router has nothing to drain")
	}
	old := n.Ring()
	d, err := old.TombstoneDesc(n.self)
	if err != nil {
		return err
	}
	pending, err := NewRing(d)
	if err != nil {
		return err
	}
	n.firePhase("drain:pending")
	if err := n.broadcastRing(old, pending, false); err != nil {
		return fmt.Errorf("cluster: drain prepare: %w", err)
	}
	n.firePhase("drain:prepared")
	// Fence before commit: once a survivor serves the new epoch, this
	// node must already be refusing old-epoch writes, or a tuple could
	// commit here after its shard's new owner finished pulling.
	n.adoptRing(pending)
	n.firePhase("drain:fenced")
	if err := n.broadcastRing(old, pending, true); err != nil {
		return fmt.Errorf("cluster: drain commit: %w", err)
	}
	n.firePhase("drain:committed")
	return nil
}

// handleRingUpdate is the receiver side of a membership broadcast.
// Prepare: synchronously bootstrap the shards this node gains under
// the pushed ring, without installing it — a failed pull fails the
// prepare, and the coordinator aborts. Commit: install the ring (the
// fence starts here), then best-effort pull the tail. Either way the
// response is the ring this node currently serves, so a coordinator
// racing another transition finds out.
func (n *Node) handleRingUpdate(ctx context.Context, m wire.RingUpdate) wire.Message {
	r, err := RingFromWire(m.Ring)
	if err != nil {
		return wire.ErrorResponse{Msg: fmt.Sprintf("cluster: ring update: %v", err)}
	}
	cur := n.Ring()
	if r.Epoch() <= cur.Epoch() {
		// Stale push (we moved past it): answer with what we serve.
		return cur.Wire()
	}
	if !m.Commit {
		if err := n.acquireShards(ctx, cur, r, true); err != nil {
			return wire.ErrorResponse{Msg: fmt.Sprintf("cluster: prepare bootstrap: %v", err)}
		}
		n.firePhase("update:prepared")
		return n.Ring().Wire()
	}
	n.adoptRing(r)
	n.firePhase("update:committed")
	// Tail pull after the fence is up. Best-effort: anything missed
	// heals through replica catch-up, and for a promotion the origin is
	// dead anyway.
	_ = n.acquireShards(ctx, cur, r, false)
	return n.Ring().Wire()
}

// Promote handles a dead primary: tombstone it at the next epoch,
// recover the shards this node gains from the dead node's surviving
// replicas (its own mirror included), and broadcast the commit so the
// other survivors re-place the rest. Any survivor may run it — by
// convention the dead node's lowest-ID surviving replica — and
// concurrent promotions of the same death collapse onto whichever
// epoch bump lands first.
func (n *Node) Promote(ctx context.Context, dead int) error {
	resp := n.handlePromote(ctx, wire.Promote{Node: uint16(dead), Epoch: n.Ring().Epoch()})
	if er, ok := resp.(wire.ErrorResponse); ok {
		return errors.New(er.Msg)
	}
	return nil
}

// handlePromote is the wire entry of Promote, for the case where the
// death was observed by a node that is not the replica that should
// take over (a router, or a client-facing member).
func (n *Node) handlePromote(ctx context.Context, m wire.Promote) wire.Message {
	cur := n.Ring()
	dead := int(m.Node)
	if dead == n.self {
		return wire.ErrorResponse{Msg: "cluster: node asked to promote over itself"}
	}
	if dead < cur.Nodes() && !cur.IsLive(dead) {
		// The node is already tombstoned — this promotion happened, but
		// its coordinator may have died between installing the ring and
		// recovering the shards it gained, leaving their tuples stranded
		// in the mirrors. Re-run the best-effort recovery pull so a
		// retried promotion converges instead of erroring (idempotent:
		// per-stream pull progress makes a drained replay a no-op), and
		// answer the ring this node serves.
		n.recoverTombstoned(ctx, cur, dead)
		return cur.Wire()
	}
	if m.Epoch < cur.Epoch() {
		// We already moved past the observed epoch — the promotion (or
		// another transition) has happened; answer with the ring we serve.
		return cur.Wire()
	}
	if m.Epoch > cur.Epoch() {
		return wire.ErrorResponse{Msg: fmt.Sprintf("cluster: promote at epoch %d, node at epoch %d — refresh and retry", m.Epoch, cur.Epoch())}
	}
	if cur.Replicas() <= 1 {
		return wire.ErrorResponse{Msg: "cluster: cannot promote on an unreplicated ring"}
	}
	d, err := cur.TombstoneDesc(dead)
	if err != nil {
		return wire.ErrorResponse{Msg: err.Error()}
	}
	next, err := NewRing(d)
	if err != nil {
		return wire.ErrorResponse{Msg: err.Error()}
	}
	if !n.adoptRing(next) {
		// Lost a race with another transition at the same epoch; whoever
		// won owns the cluster's next shape.
		return n.Ring().Wire()
	}
	n.firePhase("promote:adopted")
	// Recover what the survivors hold. Best-effort by nature: the dead
	// primary's unstreamed tail died with it.
	_ = n.acquireShards(ctx, cur, next, false)
	n.firePhase("promote:recovered")
	_ = n.broadcastRing(cur, next, true)
	n.firePhase("promote:committed")
	return n.Ring().Wire()
}

// recoverTombstoned re-pulls the streams behind the shards this node
// gained when `dead` was tombstoned out of cur. Placement hashes node
// indexes, never addresses, so resurrecting the dead slot with a
// placeholder address reconstructs the pre-tombstone ownership exactly;
// with the origin unreachable the pull falls to this node's own mirror
// of it and the dead node's other surviving replicas.
func (n *Node) recoverTombstoned(ctx context.Context, cur *Ring, dead int) {
	d := cur.Desc()
	d.Nodes = append([]string(nil), d.Nodes...)
	d.Nodes[dead] = "\x00tombstoned"
	if d.Epoch > 0 {
		d.Epoch--
	}
	old, err := NewRing(d)
	if err != nil {
		return
	}
	_ = n.acquireShards(ctx, old, cur, false)
}

// broadcastRing pushes pending to every live member of old except this
// node, as a prepare or a commit, and verifies the acks. An ack
// carrying a different same-epoch membership or a newer epoch means a
// concurrent transition won; the peer's ring is adopted and the
// broadcast reports failure so the coordinator can abort or retry.
func (n *Node) broadcastRing(old, pending *Ring, commit bool) error {
	frame := wire.RingUpdate{Ring: pending.Wire(), Commit: commit}
	var errs []string
	for i := 0; i < old.Nodes(); i++ {
		if i == n.self || !old.IsLive(i) {
			continue
		}
		t := n.transport(i)
		if t == nil {
			errs = append(errs, fmt.Sprintf("node %d: no transport", i))
			continue
		}
		resp, err := t.Exchange(frame)
		if err != nil {
			errs = append(errs, fmt.Sprintf("node %d: %v", i, err))
			continue
		}
		switch r := resp.(type) {
		case wire.RingResponse:
			ack, err := RingFromWire(r)
			if err != nil {
				errs = append(errs, fmt.Sprintf("node %d: bad ring ack: %v", i, err))
				continue
			}
			if ack.Epoch() > pending.Epoch() ||
				(ack.Epoch() == pending.Epoch() && !sameMembers(ack, pending)) {
				n.adoptRing(ack)
				errs = append(errs, fmt.Sprintf("node %d: concurrent membership change (peer at epoch %d)", i, ack.Epoch()))
			}
		case wire.ErrorResponse:
			errs = append(errs, fmt.Sprintf("node %d: %s", i, r.Msg))
		default:
			errs = append(errs, fmt.Sprintf("node %d: unexpected response %T", i, resp))
		}
	}
	if len(errs) > 0 {
		kind := "prepare"
		if commit {
			kind = "commit"
		}
		return fmt.Errorf("cluster: ring %s (epoch %d): %s", kind, pending.Epoch(), strings.Join(errs, "; "))
	}
	return nil
}

// sameMembers reports whether two rings agree on the full member list
// (addresses and tombstones, slot by slot).
func sameMembers(a, b *Ring) bool {
	if a.Nodes() != b.Nodes() {
		return false
	}
	for i := 0; i < a.Nodes(); i++ {
		if a.Addr(i) != b.Addr(i) {
			return false
		}
	}
	return true
}

// --- handoff pulls ----------------------------------------------------

// acquireShards pulls, for every pollutant this node serves, the
// streams behind the shards it owns under next but not under old. With
// strict set any stream that could not be pulled fails the call (the
// prepare/bootstrap contract); otherwise the best recoverable state
// wins (tail pulls, promotions).
func (n *Node) acquireShards(ctx context.Context, old, next *Ring, strict bool) error {
	if n.self < 0 || n.repl == nil {
		return nil
	}
	for _, pol := range n.pols {
		origins := make(map[int]bool)
		for c := 0; c < next.Cells(); c++ {
			k := ShardKey{Pollutant: pol, Cell: c}
			if next.OwnerKey(k) != n.self {
				continue
			}
			if o := old.OwnerKey(k); o != n.self {
				origins[o] = true
			}
		}
		ids := make([]int, 0, len(origins))
		for o := range origins {
			ids = append(ids, o)
		}
		sort.Ints(ids)
		for _, origin := range ids {
			if err := n.pullStream(ctx, old, next, origin, pol); err != nil && strict {
				return err
			}
		}
	}
	return nil
}

// pullStream pulls origin's replication log of pol and applies the
// tuples whose shards this node gains (old owner != self, next owner
// == self). Sources are tried in order: the origin itself, then — for
// a dead origin — this node's own mirror of it and the origin's other
// replicas under old, all serving the same sequence space, so partial
// progress at one source resumes at the next. A local mirror replay
// never ends the chain (the mirror may trail a peer's); a completed
// wire pull does.
func (n *Node) pullStream(ctx context.Context, old, next *Ring, origin int, pol tuple.Pollutant) error {
	sources := append([]int{origin}, old.ReplicaPeers(origin, pol)...)
	var lastErr error
	ok := false
	for _, src := range sources {
		if src == n.self {
			if err := n.replayMirror(ctx, old, next, origin, pol); err != nil {
				lastErr = err
			} else {
				ok = true
			}
			continue
		}
		if err := n.pullFrom(ctx, src, origin, pol, old, next); err != nil {
			lastErr = err
			continue
		}
		ok = true
		break
	}
	if ok {
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("no source")
	}
	return fmt.Errorf("cluster: pulling node %d's %v stream: %w", origin, pol, lastErr)
}

// pullFrom runs one chunked ShardTransfer session against src for
// origin's stream of pol, applying gained tuples through the local
// commit path (so they hit this node's own replication log and fan out
// to its replicas).
func (n *Node) pullFrom(ctx context.Context, src, origin int, pol tuple.Pollutant, old, next *Ring) error {
	t := n.transport(src)
	if t == nil {
		return fmt.Errorf("cluster: no transport to node %d", src)
	}
	key := transferKey{origin: origin, pol: pol}
	for round := 0; round < maxPullRounds; round++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		n.memMu.Lock()
		have := n.pulled[key]
		n.memMu.Unlock()
		resp, err := t.Exchange(wire.ShardTransfer{Origin: uint16(origin), Pollutant: pol, Have: have})
		if err != nil {
			return err
		}
		cr, ok := resp.(wire.ReplicaCatchupResponse)
		if !ok {
			if er, isErr := resp.(wire.ErrorResponse); isErr {
				return errors.New(er.Msg)
			}
			return fmt.Errorf("cluster: unexpected transfer response %T", resp)
		}
		if _, err := n.applyTransfer(ctx, key, pol, old, next, cr.From, cr.Tuples); err != nil {
			return err
		}
		if cr.Done {
			return nil
		}
	}
	return fmt.Errorf("cluster: transfer of node %d's %v stream did not converge in %d rounds", origin, pol, maxPullRounds)
}

// replayMirror applies this node's own mirror log of origin's stream —
// the promotion path, where the origin cannot be asked.
func (n *Node) replayMirror(ctx context.Context, old, next *Ring, origin int, pol tuple.Pollutant) error {
	r := n.repl
	if r == nil {
		return errors.New("cluster: node holds no mirrors")
	}
	mir := r.lookupMirror(origin, pol)
	if mir == nil {
		return fmt.Errorf("cluster: no local mirror of node %d", origin)
	}
	mir.mu.Lock()
	from := mir.logStart
	tuples := append([]tuple.Raw(nil), mir.log...)
	mir.mu.Unlock()
	key := transferKey{origin: origin, pol: pol}
	_, err := n.applyTransfer(ctx, key, pol, old, next, from, tuples)
	return err
}

// applyTransfer applies one transfer chunk — origin-stream tuples
// covering sequence [from, from+len) — skipping what progress already
// covers, filtering to the shards this node gains, and committing
// through localIngest. It advances the shared progress marker and
// reports whether anything beyond the previous progress was seen. A
// chunk starting past the progress marker means the source pruned the
// gap away; the marker jumps forward (the retained-state contract).
func (n *Node) applyTransfer(ctx context.Context, key transferKey, pol tuple.Pollutant, old, next *Ring, from uint64, tuples []tuple.Raw) (bool, error) {
	n.memMu.Lock()
	have := n.pulled[key]
	n.memMu.Unlock()
	if from > have {
		have = from
	}
	end := from + uint64(len(tuples))
	advanced := false
	if end > have {
		fresh := tuples[have-from:]
		gained := make([]tuple.Raw, 0, len(fresh))
		for _, tp := range fresh {
			k := ShardKey{Pollutant: pol, Cell: next.CellOf(tp.Pos())}
			if next.OwnerKey(k) == n.self && old.OwnerKey(k) != n.self {
				gained = append(gained, tp)
			}
		}
		if len(gained) > 0 {
			resp := n.localIngest(ctx, wire.IngestRequest{Pollutant: pol, Tuples: gained})
			if _, ok := resp.(wire.IngestResponse); !ok {
				if er, isErr := resp.(wire.ErrorResponse); isErr {
					return false, fmt.Errorf("cluster: applying transferred tuples: %s", er.Msg)
				}
				return false, fmt.Errorf("cluster: applying transferred tuples: unexpected %T", resp)
			}
		}
		have = end
		advanced = true
	}
	n.memMu.Lock()
	if have > n.pulled[key] {
		n.pulled[key] = have
	}
	n.memMu.Unlock()
	return advanced, nil
}

// handleShardTransfer answers a handoff pull: chunks of this node's
// own replication log when Origin is this node (exactly replica
// catch-up), or of its mirror log of Origin otherwise (the
// dead-primary case, served from the mirror tail the replica kept).
func (n *Node) handleShardTransfer(m wire.ShardTransfer) wire.Message {
	r := n.repl
	if r == nil {
		return wire.ErrorResponse{Msg: "cluster: node keeps no replication logs"}
	}
	origin := int(m.Origin)
	if origin == n.self {
		return n.handleCatchup(wire.ReplicaCatchupRequest{Pollutant: m.Pollutant, Have: m.Have})
	}
	mir := r.lookupMirror(origin, m.Pollutant)
	if mir == nil {
		return wire.ErrorResponse{Msg: fmt.Sprintf("cluster: no mirror log of node %d", origin)}
	}
	mir.mu.Lock()
	defer mir.mu.Unlock()
	next := mir.logStart + uint64(len(mir.log))
	resp := wire.ReplicaCatchupResponse{}
	var idx int
	switch {
	case m.Have == next:
		return wire.ReplicaCatchupResponse{From: next, Done: true}
	case m.Have > next || m.Have < mir.logStart:
		resp.Snapshot = true
		resp.From = mir.logStart
		idx = 0
	default:
		resp.From = m.Have
		idx = int(m.Have - mir.logStart)
	}
	end := idx + maxCatchupChunk
	if end > len(mir.log) {
		end = len(mir.log)
	}
	resp.Tuples = append([]tuple.Raw(nil), mir.log[idx:end]...)
	resp.Done = end == len(mir.log)
	return resp
}
