package tuple

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"strconv"
	"strings"
)

// Binary format
//
// Tuples are persisted and shipped in a compact little-endian binary frame:
//
//	magic   uint32  'E''M''T''1'
//	count   uint32  number of tuples
//	tuples  count × (t, x, y, s) float64
//	crc     uint32  CRC-32 (IEEE) of the tuple payload
//
// The frame is self-delimiting and integrity-checked, which the store's
// segment files rely on for crash recovery.

const (
	binaryMagic  = 0x454d5431 // "EMT1"
	tupleWireLen = 32         // four float64 fields
)

// ErrCorrupt is returned when a binary frame fails its integrity checks.
var ErrCorrupt = errors.New("tuple: corrupt binary frame")

// EncodedSize returns the exact number of bytes WriteBinary produces for n
// tuples.
func EncodedSize(n int) int { return 4 + 4 + n*tupleWireLen + 4 }

// WriteBinary writes the batch as one binary frame.
func WriteBinary(w io.Writer, b Batch) error {
	buf := make([]byte, EncodedSize(len(b)))
	binary.LittleEndian.PutUint32(buf[0:], binaryMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(b)))
	off := 8
	for _, r := range b {
		binary.LittleEndian.PutUint64(buf[off+0:], math.Float64bits(r.T))
		binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(r.X))
		binary.LittleEndian.PutUint64(buf[off+16:], math.Float64bits(r.Y))
		binary.LittleEndian.PutUint64(buf[off+24:], math.Float64bits(r.S))
		off += tupleWireLen
	}
	crc := crc32.ChecksumIEEE(buf[8:off])
	binary.LittleEndian.PutUint32(buf[off:], crc)
	_, err := w.Write(buf)
	return err
}

// ReadBinary reads one binary frame. It returns io.EOF when the reader is
// exhausted at a frame boundary, and ErrCorrupt (possibly wrapped) for
// malformed or truncated frames.
func ReadBinary(r io.Reader) (Batch, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: truncated header: %v", ErrCorrupt, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	count := binary.LittleEndian.Uint32(hdr[4:])
	const maxFrameTuples = 64 << 20 / tupleWireLen // refuse absurd frames (>64 MiB)
	if count > maxFrameTuples {
		return nil, fmt.Errorf("%w: frame claims %d tuples", ErrCorrupt, count)
	}
	payload := make([]byte, int(count)*tupleWireLen+4)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload: %v", ErrCorrupt, err)
	}
	body := payload[:len(payload)-4]
	wantCRC := binary.LittleEndian.Uint32(payload[len(payload)-4:])
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	b := make(Batch, count)
	for i := range b {
		off := i * tupleWireLen
		b[i] = Raw{
			T: math.Float64frombits(binary.LittleEndian.Uint64(body[off+0:])),
			X: math.Float64frombits(binary.LittleEndian.Uint64(body[off+8:])),
			Y: math.Float64frombits(binary.LittleEndian.Uint64(body[off+16:])),
			S: math.Float64frombits(binary.LittleEndian.Uint64(body[off+24:])),
		}
	}
	return b, nil
}

// ContainsFrame reports whether an intact binary frame parses at any
// byte offset within data. The store's recovery uses it to distinguish a
// torn tail (nothing valid follows the corruption — the write
// discipline's legitimate leftover) from real mid-stream damage, where
// intact acknowledged frames would otherwise be silently dropped.
func ContainsFrame(data []byte) bool {
	var magic [4]byte
	binary.LittleEndian.PutUint32(magic[:], binaryMagic)
	for off := 0; ; off++ {
		i := bytes.Index(data[off:], magic[:])
		if i < 0 {
			return false
		}
		off += i
		if _, err := ReadBinary(bytes.NewReader(data[off:])); err == nil {
			return true
		}
	}
}

// CSV format
//
// The CSV codec mirrors the flat files produced by the OpenSense ingestion
// pipeline: a header line "t,x,y,s" followed by one tuple per line.

// csvHeader is the expected first line of a tuple CSV stream.
const csvHeader = "t,x,y,s"

// WriteCSV writes the batch in CSV form, including the header line.
func WriteCSV(w io.Writer, b Batch) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(csvHeader + "\n"); err != nil {
		return err
	}
	for _, r := range b {
		line := strconv.FormatFloat(r.T, 'g', -1, 64) + "," +
			strconv.FormatFloat(r.X, 'g', -1, 64) + "," +
			strconv.FormatFloat(r.Y, 'g', -1, 64) + "," +
			strconv.FormatFloat(r.S, 'g', -1, 64) + "\n"
		if _, err := bw.WriteString(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV reads a CSV stream produced by WriteCSV (or hand-authored with
// the same header).
func ReadCSV(r io.Reader) (Batch, error) {
	var b Batch
	_, err := StreamCSV(r, 0, func(chunk Batch) error {
		b = append(b, chunk...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return b, nil
}

// DefaultCSVChunk is the batch size StreamCSV emits when the caller does
// not choose one: large enough to amortize per-batch costs, small enough
// that an arbitrarily long stream never materializes in memory.
const DefaultCSVChunk = 4096

// StreamCSV incrementally parses a tuple CSV stream, invoking emit with
// successive batches of at most chunk tuples (chunk <= 0 uses
// DefaultCSVChunk). It returns the total tuple count. Unlike ReadCSV, the
// whole stream is never held in memory, so it is the codec behind
// streaming ingestion of month-scale deployment files. An emit error
// aborts the scan and is returned unwrapped.
func StreamCSV(r io.Reader, chunk int, emit func(Batch) error) (int, error) {
	if chunk <= 0 {
		chunk = DefaultCSVChunk
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return 0, err
		}
		return 0, errors.New("tuple: empty CSV stream")
	}
	if got := strings.TrimSpace(sc.Text()); got != csvHeader {
		return 0, fmt.Errorf("tuple: unexpected CSV header %q, want %q", got, csvHeader)
	}
	var (
		b     Batch
		total int
	)
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			return total, fmt.Errorf("tuple: line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		var vals [4]float64
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return total, fmt.Errorf("tuple: line %d field %d: %v", lineNo, i+1, err)
			}
			vals[i] = v
		}
		b = append(b, Raw{T: vals[0], X: vals[1], Y: vals[2], S: vals[3]})
		if len(b) >= chunk {
			if err := emit(b); err != nil {
				return total, err
			}
			total += len(b)
			// Fresh backing array: emit may retain the batch it received.
			b = make(Batch, 0, chunk)
		}
	}
	if err := sc.Err(); err != nil {
		return total, err
	}
	if len(b) > 0 {
		if err := emit(b); err != nil {
			return total, err
		}
		total += len(b)
	}
	return total, nil
}
