// Package tuple defines the raw sensor tuple — the unit of data produced by
// the community-driven sensor network — together with batch utilities and
// the codecs used to persist and ship tuples.
//
// Following the paper (§2.1), a raw tuple is b_i = (t_i, x_i, y_i, s_i)
// where s_i is the sensed value and (x_i, y_i) the position, in the local
// metric frame, at time t_i. Time is measured in seconds since the start of
// the deployment epoch; the paper's windows W_c = [cH, (c+1)H) are defined
// over this axis.
package tuple

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/geo"
)

// Pollutant identifies the sensed phenomenon. The OpenSense buses carry
// several sensors; the paper's evaluation focuses on CO2.
type Pollutant uint8

const (
	// CO2 is carbon dioxide, measured in parts per million (ppm).
	CO2 Pollutant = iota
	// CO is carbon monoxide, in ppm.
	CO
	// PM is suspended particulate matter, in µg/m³.
	PM
	numPollutants
)

// String returns the conventional abbreviation for the pollutant.
func (p Pollutant) String() string {
	switch p {
	case CO2:
		return "CO2"
	case CO:
		return "CO"
	case PM:
		return "PM"
	default:
		return fmt.Sprintf("Pollutant(%d)", uint8(p))
	}
}

// Valid reports whether p is a known pollutant.
func (p Pollutant) Valid() bool { return p < numPollutants }

// ParsePollutant resolves a pollutant from its conventional abbreviation,
// case-insensitively ("co2", "CO", "pm"). It is the single parser behind
// the HTTP pollutant parameter and the CLI flags.
func ParsePollutant(s string) (Pollutant, error) {
	switch {
	case strings.EqualFold(s, "CO2"):
		return CO2, nil
	case strings.EqualFold(s, "CO"):
		return CO, nil
	case strings.EqualFold(s, "PM"):
		return PM, nil
	default:
		return 0, fmt.Errorf("tuple: unknown pollutant %q (want CO2, CO, or PM)", s)
	}
}

// ParsePollutantList resolves a comma-separated pollutant list ("CO2,pm"),
// skipping empty entries. It errors when no pollutant remains — the
// shared parser behind the CLI -pollutants flags.
func ParsePollutantList(s string) ([]Pollutant, error) {
	var out []Pollutant
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		p, err := ParsePollutant(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tuple: no pollutants in %q", s)
	}
	return out, nil
}

// NormalRange returns the span of values considered "normal" for the
// pollutant in the environment. The paper defines the approximation error
// of a model as the average percentage error *compared to the normal range
// of s_i in the environment (pollutant specific)*; this is that range.
//
// For CO2 the range spans clean outdoor air (~350 ppm) to the OSHA 8-hour
// TWA limit (5000 ppm).
func (p Pollutant) NormalRange() (lo, hi float64) {
	switch p {
	case CO2:
		return 350, 5000
	case CO:
		return 0, 50
	case PM:
		return 0, 500
	default:
		return 0, 1
	}
}

// Unit returns the measurement unit of the pollutant.
func (p Pollutant) Unit() string {
	switch p {
	case CO2, CO:
		return "ppm"
	case PM:
		return "µg/m³"
	default:
		return ""
	}
}

// Raw is one raw sensor tuple b_i = (t_i, x_i, y_i, s_i).
type Raw struct {
	T float64 // seconds since deployment epoch
	X float64 // meters east (local frame)
	Y float64 // meters north (local frame)
	S float64 // sensed value, in the pollutant's unit
}

// Pos returns the tuple's position in the local frame.
func (r Raw) Pos() geo.Point { return geo.Point{X: r.X, Y: r.Y} }

// Validate checks the tuple for NaN/Inf fields and a non-negative time.
func (r Raw) Validate() error {
	for _, f := range [...]struct {
		name string
		v    float64
	}{{"t", r.T}, {"x", r.X}, {"y", r.Y}, {"s", r.S}} {
		if math.IsNaN(f.v) {
			return fmt.Errorf("tuple: field %s is NaN", f.name)
		}
		if math.IsInf(f.v, 0) {
			return fmt.Errorf("tuple: field %s is infinite", f.name)
		}
	}
	if r.T < 0 {
		return errors.New("tuple: negative timestamp")
	}
	return nil
}

func (r Raw) String() string {
	return fmt.Sprintf("b(t=%.0f x=%.1f y=%.1f s=%.2f)", r.T, r.X, r.Y, r.S)
}

// Batch is an ordered collection of raw tuples.
type Batch []Raw

// Validate validates every tuple, reporting the index of the first bad one.
func (b Batch) Validate() error {
	for i, r := range b {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("tuple %d: %w", i, err)
		}
	}
	return nil
}

// SortByTime sorts the batch by timestamp (stable, ascending).
func (b Batch) SortByTime() {
	sort.SliceStable(b, func(i, j int) bool { return b[i].T < b[j].T })
}

// SortedByTime reports whether timestamps are non-decreasing.
func (b Batch) SortedByTime() bool {
	return sort.SliceIsSorted(b, func(i, j int) bool { return b[i].T < b[j].T })
}

// TimeSpan returns the minimum and maximum timestamps. ok is false for an
// empty batch.
func (b Batch) TimeSpan() (min, max float64, ok bool) {
	if len(b) == 0 {
		return 0, 0, false
	}
	min, max = b[0].T, b[0].T
	for _, r := range b[1:] {
		if r.T < min {
			min = r.T
		}
		if r.T > max {
			max = r.T
		}
	}
	return min, max, true
}

// Bounds returns the spatial bounding box of the batch. ok is false for an
// empty batch.
func (b Batch) Bounds() (geo.Rect, bool) {
	if len(b) == 0 {
		return geo.Rect{}, false
	}
	r := geo.Rect{Min: b[0].Pos(), Max: b[0].Pos()}
	for _, t := range b[1:] {
		r = r.ExpandToPoint(t.Pos())
	}
	return r, true
}

// Positions extracts the positions of all tuples, in order.
func (b Batch) Positions() []geo.Point {
	pts := make([]geo.Point, len(b))
	for i, r := range b {
		pts[i] = r.Pos()
	}
	return pts
}

// Values extracts the sensed values of all tuples, in order.
func (b Batch) Values() []float64 {
	vs := make([]float64, len(b))
	for i, r := range b {
		vs[i] = r.S
	}
	return vs
}

// MeanValue returns the arithmetic mean of the sensed values. ok is false
// for an empty batch.
func (b Batch) MeanValue() (mean float64, ok bool) {
	if len(b) == 0 {
		return 0, false
	}
	var sum float64
	for _, r := range b {
		sum += r.S
	}
	return sum / float64(len(b)), true
}

// Clone returns a deep copy of the batch.
func (b Batch) Clone() Batch {
	cp := make(Batch, len(b))
	copy(cp, b)
	return cp
}

// FilterRadius returns the tuples whose position lies within radius meters
// of center. This is the primitive behind the paper's naive query method.
func (b Batch) FilterRadius(center geo.Point, radius float64) Batch {
	r2 := radius * radius
	var out Batch
	for _, t := range b {
		if t.Pos().Dist2(center) <= r2 {
			out = append(out, t)
		}
	}
	return out
}

// WindowIndex returns c such that t lies in W_c = [cH, (c+1)H). H must be
// positive.
func WindowIndex(t, h float64) int {
	return int(math.Floor(t / h))
}

// WindowBounds returns the [start, end) time bounds of window W_c.
func WindowBounds(c int, h float64) (start, end float64) {
	return float64(c) * h, float64(c+1) * h
}
