package tuple

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

func TestPollutantStringAndUnit(t *testing.T) {
	tests := []struct {
		p    Pollutant
		s    string
		unit string
	}{
		{CO2, "CO2", "ppm"},
		{CO, "CO", "ppm"},
		{PM, "PM", "µg/m³"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.s {
			t.Errorf("String(%d) = %q, want %q", tt.p, got, tt.s)
		}
		if got := tt.p.Unit(); got != tt.unit {
			t.Errorf("Unit(%d) = %q, want %q", tt.p, got, tt.unit)
		}
		if !tt.p.Valid() {
			t.Errorf("%v should be valid", tt.p)
		}
	}
	bad := Pollutant(99)
	if bad.Valid() {
		t.Error("Pollutant(99) should be invalid")
	}
	if bad.String() != "Pollutant(99)" {
		t.Errorf("bad String = %q", bad.String())
	}
}

func TestPollutantNormalRange(t *testing.T) {
	for _, p := range []Pollutant{CO2, CO, PM} {
		lo, hi := p.NormalRange()
		if lo >= hi {
			t.Errorf("%v: normal range [%v,%v] inverted", p, lo, hi)
		}
	}
	lo, hi := CO2.NormalRange()
	if lo != 350 || hi != 5000 {
		t.Errorf("CO2 range = [%v,%v], want [350,5000]", lo, hi)
	}
}

func TestRawValidate(t *testing.T) {
	tests := []struct {
		name string
		r    Raw
		ok   bool
	}{
		{"good", Raw{T: 1, X: 2, Y: 3, S: 4}, true},
		{"zero", Raw{}, true},
		{"nan t", Raw{T: math.NaN()}, false},
		{"nan s", Raw{S: math.NaN()}, false},
		{"inf x", Raw{X: math.Inf(1)}, false},
		{"neg inf y", Raw{Y: math.Inf(-1)}, false},
		{"negative time", Raw{T: -1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.r.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestBatchValidateReportsIndex(t *testing.T) {
	b := Batch{{T: 1}, {T: math.NaN()}}
	err := b.Validate()
	if err == nil {
		t.Fatal("expected error")
	}
	if got := err.Error(); got == "" || got[:7] != "tuple 1" {
		t.Errorf("error should name tuple 1, got %q", got)
	}
}

func TestBatchSortAndSpan(t *testing.T) {
	b := Batch{{T: 5}, {T: 1}, {T: 3}}
	if b.SortedByTime() {
		t.Error("batch should not be sorted yet")
	}
	b.SortByTime()
	if !b.SortedByTime() {
		t.Error("batch should be sorted")
	}
	min, max, ok := b.TimeSpan()
	if !ok || min != 1 || max != 5 {
		t.Errorf("TimeSpan = (%v,%v,%v), want (1,5,true)", min, max, ok)
	}
	var empty Batch
	if _, _, ok := empty.TimeSpan(); ok {
		t.Error("empty TimeSpan should report ok=false")
	}
}

func TestBatchBoundsAndExtracts(t *testing.T) {
	b := Batch{
		{T: 0, X: 1, Y: 2, S: 10},
		{T: 1, X: -3, Y: 5, S: 20},
		{T: 2, X: 2, Y: 0, S: 30},
	}
	r, ok := b.Bounds()
	if !ok {
		t.Fatal("Bounds ok=false")
	}
	want := geo.Rect{Min: geo.Point{X: -3, Y: 0}, Max: geo.Point{X: 2, Y: 5}}
	if r != want {
		t.Errorf("Bounds = %v, want %v", r, want)
	}
	if got := b.Positions(); len(got) != 3 || got[1] != (geo.Point{X: -3, Y: 5}) {
		t.Errorf("Positions = %v", got)
	}
	if got := b.Values(); len(got) != 3 || got[2] != 30 {
		t.Errorf("Values = %v", got)
	}
	mean, ok := b.MeanValue()
	if !ok || mean != 20 {
		t.Errorf("MeanValue = (%v,%v), want (20,true)", mean, ok)
	}
	var empty Batch
	if _, ok := empty.Bounds(); ok {
		t.Error("empty Bounds should report ok=false")
	}
	if _, ok := empty.MeanValue(); ok {
		t.Error("empty MeanValue should report ok=false")
	}
}

func TestBatchClone(t *testing.T) {
	b := Batch{{T: 1, S: 2}}
	c := b.Clone()
	c[0].S = 99
	if b[0].S != 2 {
		t.Error("Clone must deep-copy")
	}
}

func TestFilterRadius(t *testing.T) {
	b := Batch{
		{X: 0, Y: 0, S: 1},
		{X: 3, Y: 4, S: 2},  // dist 5
		{X: 10, Y: 0, S: 3}, // dist 10
	}
	got := b.FilterRadius(geo.Point{}, 5)
	if len(got) != 2 {
		t.Fatalf("FilterRadius(5) returned %d tuples, want 2 (boundary inclusive)", len(got))
	}
	got = b.FilterRadius(geo.Point{}, 4.99)
	if len(got) != 1 {
		t.Fatalf("FilterRadius(4.99) returned %d tuples, want 1", len(got))
	}
	got = b.FilterRadius(geo.Point{X: 100, Y: 100}, 1)
	if len(got) != 0 {
		t.Fatalf("far FilterRadius returned %d tuples, want 0", len(got))
	}
}

func TestWindowIndexAndBounds(t *testing.T) {
	tests := []struct {
		t, h float64
		want int
	}{
		{0, 100, 0},
		{99.999, 100, 0},
		{100, 100, 1},
		{250, 100, 2},
	}
	for _, tt := range tests {
		if got := WindowIndex(tt.t, tt.h); got != tt.want {
			t.Errorf("WindowIndex(%v,%v) = %d, want %d", tt.t, tt.h, got, tt.want)
		}
	}
	start, end := WindowBounds(3, 50)
	if start != 150 || end != 200 {
		t.Errorf("WindowBounds(3,50) = (%v,%v), want (150,200)", start, end)
	}
}

func TestWindowIndexConsistentWithBounds(t *testing.T) {
	f := func(tv, hv float64) bool {
		tt := math.Abs(math.Mod(tv, 1e9))
		h := 1 + math.Abs(math.Mod(hv, 1e5))
		c := WindowIndex(tt, h)
		start, end := WindowBounds(c, h)
		return tt >= start-1e-6 && tt < end+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
