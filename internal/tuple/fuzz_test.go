package tuple

import (
	"bytes"
	"math"
	"testing"
)

// frameBytes encodes b as one binary frame, for seeding.
func frameBytes(t interface{ Fatal(...any) }, b Batch) []byte {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzTupleFrameDecode hardens the segment/checkpoint frame decoder:
// arbitrary bytes must never panic, must fail (or succeed) the same way
// on every read, and an accepted frame must round-trip through the
// encoder to a byte-identical frame. The seed corpus is the codec
// round-trip suite's shapes plus truncations and corruptions of them.
func FuzzTupleFrameDecode(f *testing.F) {
	seeds := []Batch{
		{},
		{{T: 1, X: 2, Y: 3, S: 4}},
		{{T: 0.5, X: -10, Y: 1e9, S: 421.5}, {T: 3600, X: 0, Y: 0, S: 0}},
		{{T: math.MaxFloat64, X: math.SmallestNonzeroFloat64, Y: -1, S: math.Inf(1)}},
		{{T: math.NaN(), X: math.NaN(), Y: 0, S: -0.0}},
	}
	for _, b := range seeds {
		enc := frameBytes(f, b)
		f.Add(enc)
		if len(enc) > 4 {
			f.Add(enc[:len(enc)-3])             // torn tail
			f.Add(append([]byte{0x00}, enc...)) // shifted
			flipped := bytes.Clone(enc)
			flipped[len(flipped)/2] ^= 0xFF // checksum mismatch
			f.Add(flipped)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x45, 0x4d, 0x54, 0x31, 0xFF, 0xFF, 0xFF, 0x7F}) // absurd count
	f.Fuzz(func(t *testing.T, data []byte) {
		b1, err1 := ReadBinary(bytes.NewReader(data))
		b2, err2 := ReadBinary(bytes.NewReader(data))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("unstable outcome: %v vs %v", err1, err2)
		}
		if err1 != nil {
			if err1.Error() != err2.Error() {
				t.Fatalf("unstable error: %q vs %q", err1, err2)
			}
		} else {
			if len(b1) != len(b2) {
				t.Fatalf("unstable decode: %d vs %d tuples", len(b1), len(b2))
			}
			enc1 := frameBytes(t, b1)
			b3, err := ReadBinary(bytes.NewReader(enc1))
			if err != nil {
				t.Fatalf("re-decode of re-encoded frame: %v", err)
			}
			if !bytes.Equal(enc1, frameBytes(t, b3)) {
				t.Fatal("encode/decode round trip not a fixed point")
			}
		}
		// The torn-tail probe must hold up to arbitrary bytes too.
		_ = ContainsFrame(data)
	})
}
