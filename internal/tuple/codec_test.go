package tuple

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randomBatch(rng *rand.Rand, n int) Batch {
	b := make(Batch, n)
	for i := range b {
		b[i] = Raw{
			T: rng.Float64() * 1e6,
			X: (rng.Float64() - 0.5) * 1e4,
			Y: (rng.Float64() - 0.5) * 1e4,
			S: 350 + rng.Float64()*1000,
		}
	}
	return b
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 100, 1000} {
		b := randomBatch(rng, n)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, b); err != nil {
			t.Fatalf("n=%d: write: %v", n, err)
		}
		if buf.Len() != EncodedSize(n) {
			t.Errorf("n=%d: encoded %d bytes, want %d", n, buf.Len(), EncodedSize(n))
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("n=%d: read: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: got %d tuples", n, len(got))
		}
		for i := range got {
			if got[i] != b[i] {
				t.Fatalf("n=%d: tuple %d differs: %v vs %v", n, i, got[i], b[i])
			}
		}
	}
}

func TestBinaryMultipleFrames(t *testing.T) {
	var buf bytes.Buffer
	a := Batch{{T: 1, S: 10}}
	b := Batch{{T: 2, S: 20}, {T: 3, S: 30}}
	if err := WriteBinary(&buf, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&buf, b); err != nil {
		t.Fatal(err)
	}
	got1, err := ReadBinary(&buf)
	if err != nil || len(got1) != 1 {
		t.Fatalf("frame 1: %v len=%d", err, len(got1))
	}
	got2, err := ReadBinary(&buf)
	if err != nil || len(got2) != 2 {
		t.Fatalf("frame 2: %v len=%d", err, len(got2))
	}
	if _, err := ReadBinary(&buf); !errors.Is(err, io.EOF) {
		t.Errorf("want io.EOF at stream end, got %v", err)
	}
}

func TestBinaryCorruption(t *testing.T) {
	b := randomBatch(rand.New(rand.NewSource(2)), 10)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("flipped payload byte", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[20] ^= 0xFF
		if _, err := ReadBinary(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("want ErrCorrupt, got %v", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xFF
		if _, err := ReadBinary(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("want ErrCorrupt, got %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := ReadBinary(bytes.NewReader(good[:len(good)-5])); !errors.Is(err, ErrCorrupt) {
			t.Errorf("want ErrCorrupt, got %v", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		if _, err := ReadBinary(bytes.NewReader(good[:4])); !errors.Is(err, ErrCorrupt) {
			t.Errorf("want ErrCorrupt, got %v", err)
		}
	})
	t.Run("absurd count", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[4], bad[5], bad[6], bad[7] = 0xFF, 0xFF, 0xFF, 0x7F
		if _, err := ReadBinary(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("want ErrCorrupt, got %v", err)
		}
	})
}

func TestBinarySpecialFloats(t *testing.T) {
	b := Batch{{T: 0, X: math.MaxFloat64, Y: -math.MaxFloat64, S: math.SmallestNonzeroFloat64}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != b[0] {
		t.Errorf("special floats not preserved: %v vs %v", got[0], b[0])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	b := randomBatch(rand.New(rand.NewSource(3)), 50)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(b) {
		t.Fatalf("got %d tuples, want %d", len(got), len(b))
	}
	for i := range got {
		if got[i] != b[i] {
			t.Fatalf("tuple %d differs: %v vs %v", i, got[i], b[i])
		}
	}
}

func TestCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "a,b,c,d\n1,2,3,4\n"},
		{"short row", "t,x,y,s\n1,2,3\n"},
		{"long row", "t,x,y,s\n1,2,3,4,5\n"},
		{"non numeric", "t,x,y,s\n1,2,zzz,4\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.in)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestCSVSkipsBlankLines(t *testing.T) {
	in := "t,x,y,s\n1,2,3,4\n\n5,6,7,8\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d tuples, want 2", len(got))
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(ts, xs, ys, ss []float64) bool {
		n := len(ts)
		for _, o := range [][]float64{xs, ys, ss} {
			if len(o) < n {
				n = len(o)
			}
		}
		b := make(Batch, n)
		for i := 0; i < n; i++ {
			// Replace NaN with 0: NaN != NaN breaks equality checking, and
			// validation rejects NaN anyway.
			clean := func(v float64) float64 {
				if math.IsNaN(v) {
					return 0
				}
				return v
			}
			b[i] = Raw{T: clean(ts[i]), X: clean(xs[i]), Y: clean(ys[i]), S: clean(ss[i])}
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, b); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
