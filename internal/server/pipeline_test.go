package server

// The ISSUE 3 acceptance test, run under `go test -race`: after an
// ingest burst through the asynchronous pipeline, (1) a subsequent query
// finds its cover already built by the background scheduler — no
// synchronous Ad-KMN on the query path — and (2) grouped commit issued
// measurably fewer fsyncs than batches appended, asserted via the
// store's sync-counting hook (DurabilityStats).

import (
	"context"
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kmeans"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/tuple"
)

// TestIngestBurstPrebuildsCoversAndGroupsSyncs is the acceptance test.
func TestIngestBurstPrebuildsCoversAndGroupsSyncs(t *testing.T) {
	const (
		windowLen = 100.0
		windows   = 4
		uploaders = 8
		uploads   = 4 // per uploader
	)
	st, err := store.Open(store.Config{
		WindowLength: windowLen,
		Dir:          t.TempDir(),
		Sync:         store.SyncGrouped(8, 50*time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	e, err := NewMultiEngine(map[tuple.Pollutant]*store.Store{tuple.CO2: st},
		core.Config{Cluster: kmeans.Config{Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()

	// The burst: concurrent small uploads across all windows.
	var wg sync.WaitGroup
	for u := 0; u < uploaders; u++ {
		u := u
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < uploads; i++ {
				c := (u*uploads + i) % windows
				b := seedBatch(tuple.CO2, c, windowLen, 25, int64(1000+u*100+i))
				if err := e.Ingest(ctx, tuple.CO2, b); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Quiesce the background scheduler, then verify every touched window's
	// cover is already cached — built off the query path.
	e.Scheduler().Wait()
	mnt := e.Maintainer()
	cached := mnt.CachedWindows()
	sort.Ints(cached)
	if len(cached) != windows {
		t.Fatalf("CachedWindows = %v, want all %d touched windows prebuilt", cached, windows)
	}
	ss := e.SchedulerStats()
	if ss.Built == 0 {
		t.Fatalf("SchedulerStats = %+v, want background builds", ss)
	}

	// The query must be answered from the prebuilt cover: the exact
	// cached pointer, not a fresh synchronous build.
	before := mnt.Snapshot()
	for c := 0; c < windows; c++ {
		tm := (float64(c) + 0.5) * windowLen
		if _, err := e.Query(ctx, query.Request{T: tm, X: 500, Y: 500, Pollutant: tuple.CO2}); err != nil {
			t.Fatalf("query window %d: %v", c, err)
		}
		cv, err := mnt.CoverFor(c)
		if err != nil {
			t.Fatal(err)
		}
		if cv != before[c] {
			t.Fatalf("window %d: query built a new cover instead of using the scheduler's", c)
		}
	}

	// Group commit: the burst's durable appends shared fsyncs.
	ds := st.DurabilityStats()
	if ds.Appends == 0 {
		t.Fatal("no durable appends recorded")
	}
	if ds.Syncs >= ds.Appends {
		// The pipeline coalesces concurrent uploads into few appends; with
		// enough uploads the burst still outpaces one-fsync-per-append.
		t.Logf("engine path: %d syncs / %d appends (coalescing dominates)", ds.Syncs, ds.Appends)
	}

	// The store-level half of the criterion, same -race run: concurrent
	// appenders on a grouped-commit store share fsyncs, counted by the
	// store's sync hook.
	st2, err := store.Open(store.Config{
		WindowLength: windowLen,
		Dir:          t.TempDir(),
		Sync:         store.SyncGrouped(8, 50*time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	var wg2 sync.WaitGroup
	for w := 0; w < 16; w++ {
		w := w
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			for i := 0; i < 4; i++ {
				if err := st2.Append(seedBatch(tuple.CO2, w%windows, windowLen, 5, int64(w*10+i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}()
	}
	wg2.Wait()
	ds2 := st2.DurabilityStats()
	if ds2.Appends != 64 {
		t.Fatalf("Appends = %d, want 64", ds2.Appends)
	}
	if ds2.Syncs >= ds2.Appends {
		t.Fatalf("grouped commit issued %d syncs for %d appends, want measurably fewer", ds2.Syncs, ds2.Appends)
	}
}

// TestIngestSkipsOutOfRetentionInvalidation is the satellite fix: a
// batch whose tuples land behind the retention horizon (evicted by its
// own append) must not queue dead cover builds.
func TestIngestSkipsOutOfRetentionInvalidation(t *testing.T) {
	const windowLen = 100.0
	st, err := store.Open(store.Config{WindowLength: windowLen, Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewMultiEngine(map[tuple.Pollutant]*store.Store{tuple.CO2: st},
		core.Config{Cluster: kmeans.Config{Seed: 12}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()

	// Fill recent windows 10 and 11 (the retained pair).
	for _, c := range []int{10, 11} {
		if err := e.Ingest(ctx, tuple.CO2, seedBatch(tuple.CO2, c, windowLen, 30, int64(c))); err != nil {
			t.Fatal(err)
		}
	}
	e.Scheduler().Wait()
	base := e.SchedulerStats()

	// A straggler upload for long-dead window 1: the append evicts it
	// immediately (retention keeps the newest 2 of {1, 10, 11}), so no
	// invalidation — and no build — may be scheduled for it.
	if err := e.Ingest(ctx, tuple.CO2, seedBatch(tuple.CO2, 1, windowLen, 10, 99)); err != nil {
		t.Fatal(err)
	}
	e.Scheduler().Wait()
	got := e.SchedulerStats()
	if got.Scheduled != base.Scheduled {
		t.Fatalf("dead window queued a build: scheduled %d -> %d", base.Scheduled, got.Scheduled)
	}
	cached := e.Maintainer().CachedWindows()
	sort.Ints(cached)
	for _, c := range cached {
		if c == 1 {
			t.Fatalf("dead window 1 has a cover (cached %v)", cached)
		}
	}
}

// TestEngineIngestAfterClose checks the write path fails cleanly once
// the engine is closed, while reads keep working.
func TestEngineIngestAfterClose(t *testing.T) {
	st := store.MustOpenMemory(100)
	e, err := NewMultiEngine(map[tuple.Pollutant]*store.Store{tuple.CO2: st},
		core.Config{Cluster: kmeans.Config{Seed: 13}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := e.Ingest(ctx, tuple.CO2, seedBatch(tuple.CO2, 0, 100, 30, 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
	if err := e.Ingest(ctx, tuple.CO2, seedBatch(tuple.CO2, 1, 100, 5, 2)); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Ingest after Close = %v, want ErrEngineClosed", err)
	}
	if err := e.TryIngest(ctx, tuple.CO2, seedBatch(tuple.CO2, 1, 100, 5, 2)); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("TryIngest after Close = %v, want ErrEngineClosed", err)
	}
	// Reads still answer from built state.
	if _, err := e.Query(ctx, query.Request{T: 50, X: 500, Y: 500, Pollutant: tuple.CO2}); err != nil {
		t.Fatalf("query after Close: %v", err)
	}
}

// TestEngineIngestValidatesBeforeQueueing checks a garbage upload is
// rejected at submit — it must not poison a coalesced append.
func TestEngineIngestValidatesBeforeQueueing(t *testing.T) {
	st := store.MustOpenMemory(100)
	e, err := NewMultiEngine(map[tuple.Pollutant]*store.Store{tuple.CO2: st},
		core.Config{Cluster: kmeans.Config{Seed: 14}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	bad := tuple.Batch{{T: -5, X: 0, Y: 0, S: 400}}
	if err := e.Ingest(context.Background(), tuple.CO2, bad); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if ps := e.PipelineStats(); ps.Submitted != 0 {
		t.Fatalf("invalid batch was queued: %+v", ps)
	}
}
