package server

// Concurrency stress for the v1 engine: parallel Ingest / Query /
// QueryBatch / Heatmap across two pollutants on one Engine, run under
// `go test -race`. Rolling ingest through retention-bounded stores also
// checks the maintainers' cover caches never outgrow the retention
// horizon — the ISSUE's north-star scenario of sustained ingest plus
// heavy concurrent query traffic.

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/kmeans"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/tuple"
)

func TestEngineConcurrentStress(t *testing.T) {
	const (
		windowLen = 100.0
		retain    = 4
		windows   = 12
		writers   = 2 // one per pollutant
		readers   = 6
	)
	mkStore := func() *store.Store {
		st, err := store.Open(store.Config{WindowLength: windowLen, Retain: retain})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	stores := map[tuple.Pollutant]*store.Store{
		tuple.CO2: mkStore(),
		tuple.PM:  mkStore(),
	}
	e, err := NewMultiEngine(stores, core.Config{Cluster: kmeans.Config{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pols := []tuple.Pollutant{tuple.CO2, tuple.PM}

	// Seed the first window so readers have something to hit immediately.
	for _, pol := range pols {
		if err := e.Ingest(ctx, pol, seedBatch(pol, 0, windowLen, 40, 1)); err != nil {
			t.Fatal(err)
		}
	}

	var wg, writerWG sync.WaitGroup
	stop := make(chan struct{})

	// Writers: rolling ingest, window after window, with occasional late
	// tuples into older windows to exercise Invalidate against in-flight
	// builds. Readers run until every writer has finished its stream.
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		writerWG.Add(1)
		go func(pol tuple.Pollutant, seed int64) {
			defer wg.Done()
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for c := 1; c < windows; c++ {
				if err := e.Ingest(ctx, pol, seedBatch(pol, c, windowLen, 40, seed+int64(c))); err != nil {
					t.Errorf("ingest %v window %d: %v", pol, c, err)
					return
				}
				// Late data for a window that may already be modeled.
				late := c - 1 - rng.Intn(2)
				if late >= 0 {
					b := seedBatch(pol, late, windowLen, 3, seed-int64(c))
					if err := e.Ingest(ctx, pol, b); err != nil {
						t.Errorf("late ingest %v window %d: %v", pol, late, err)
						return
					}
				}
			}
		}(pols[wi], int64(wi+1))
	}
	go func() {
		writerWG.Wait()
		close(stop)
	}()

	// Readers: point queries, mixed-pollutant batches, and heatmaps over
	// random retained times. Out-of-window errors are expected while the
	// writers race ahead of the readers; anything else is a failure.
	for ri := 0; ri < readers; ri++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				tm := rng.Float64() * windowLen * windows
				pol := pols[rng.Intn(len(pols))]
				switch rng.Intn(3) {
				case 0:
					_, err := e.Query(ctx, query.Request{T: tm, X: rng.Float64() * 1000, Y: rng.Float64() * 1000, Pollutant: pol})
					if err != nil && !expectedStressErr(err) {
						t.Errorf("query: %v", err)
						return
					}
				case 1:
					reqs := make([]query.Request, 16)
					for i := range reqs {
						reqs[i] = query.Request{
							T: rng.Float64() * windowLen * windows,
							X: rng.Float64() * 1000, Y: rng.Float64() * 1000,
							Pollutant: pols[i%len(pols)],
						}
					}
					rs, err := e.QueryBatch(ctx, reqs)
					if err != nil {
						t.Errorf("batch: %v", err)
						return
					}
					for _, r := range rs {
						if r.Err != nil && !expectedStressErr(r.Err) {
							t.Errorf("batch item: %v", r.Err)
							return
						}
					}
				case 2:
					_, err := e.Heatmap(ctx, pol, tm, 8, 8)
					if err != nil && !expectedStressErr(err) {
						t.Errorf("heatmap: %v", err)
						return
					}
				}
			}
		}(int64(100 + ri))
	}
	wg.Wait()

	// After the dust settles, the cover caches must respect the stores'
	// retention bound, and retained windows must still answer.
	for _, pol := range pols {
		mnt, err := e.MaintainerFor(pol)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(mnt.CachedWindows()); got > retain {
			t.Errorf("%v: %d cached covers, want <= %d", pol, got, retain)
		}
		st, _ := e.StoreFor(pol)
		for _, c := range st.WindowIndexes() {
			if _, err := mnt.CoverFor(c); err != nil {
				t.Errorf("%v: retained window %d unanswerable: %v", pol, c, err)
			}
		}
	}
}

// seedBatch generates one window's worth of tuples for pol.
func seedBatch(pol tuple.Pollutant, c int, h float64, n int, seed int64) tuple.Batch {
	rng := rand.New(rand.NewSource(seed))
	base := 420.0
	if pol == tuple.PM {
		base = 20
	}
	b := make(tuple.Batch, n)
	for i := range b {
		b[i] = tuple.Raw{
			T: float64(c)*h + rng.Float64()*h,
			X: rng.Float64() * 1000,
			Y: rng.Float64() * 1000,
			S: base + rng.Float64()*50,
		}
	}
	return b
}

// expectedStressErr reports whether err is a benign consequence of
// querying random times while ingest races ahead: the window may be
// empty, already evicted, or (transiently mid-invalidation) coverless.
func expectedStressErr(err error) bool {
	return errors.Is(err, query.ErrOutOfWindow) || errors.Is(err, query.ErrNoCover)
}
