package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/cluster"
	"repro/internal/heatmap"
	"repro/internal/query"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// ErrNotRoutable is returned for request features that cannot cross the
// cluster — today, the radius/processor query options, which evaluate
// raw windows only the shard owner holds. The HTTP layer maps it to 400.
var ErrNotRoutable = errors.New("server: request options are not routable; send it to the shard owner")

// NewClusterAPI builds the HTTP API for one member of a sharded
// cluster: query, batch, ingest, model, and heatmap endpoints route
// through the node (answering owned shards locally and the rest via the
// ring), and GET /v1/cluster serves the shard ring, the per-shard
// ownership table, and the routing counters.
func NewClusterAPI(engine *Engine, node *cluster.Node) *API {
	a := NewAPI(engine)
	a.node = node
	a.mux.HandleFunc("/v1/cluster", a.handleCluster)
	a.mux.HandleFunc("/v1/cluster/join", a.handleClusterJoin)
	a.mux.HandleFunc("/v1/cluster/drain", a.handleClusterDrain)
	return a
}

// Node returns the cluster node the API routes through (nil when the
// deployment is single-node).
func (a *API) Node() *cluster.Node { return a.node }

// RoutableOptions reports whether o can cross the cluster: only the
// model-cover path travels (Concurrency is applied wherever the batch
// executes, so it never blocks routing). The facade and the HTTP layer
// share this predicate so every surface routes — or refuses — the same
// requests.
func RoutableOptions(o query.Options) bool {
	return (o.Kind == "" || o.Kind == query.KindCover) && o.Radius == 0
}

// queryValue answers one point query, routing through the cluster node
// when one is configured. Non-default processor options only work on
// shards this node owns: the raw window lives with the owner.
func (a *API) queryValue(ctx context.Context, req query.Request, o query.Options) (float64, error) {
	if a.node == nil || a.ownsShard(req.Pollutant, req.X, req.Y) {
		return a.engine.QueryOpts(ctx, req, o)
	}
	if !RoutableOptions(o) {
		return 0, fmt.Errorf("%w: processor=%v radius=%v", ErrNotRoutable, o.Kind, o.Radius)
	}
	return a.node.Query(ctx, req)
}

// queryBatch answers a batch, routing slices to shard owners when
// clustered.
func (a *API) queryBatch(ctx context.Context, reqs []query.Request, o query.Options) ([]query.BatchResult, error) {
	if a.node == nil {
		return a.engine.QueryBatchOpts(ctx, reqs, o)
	}
	if !RoutableOptions(o) {
		if a.ownsBatch(reqs) {
			return a.engine.QueryBatchOpts(ctx, reqs, o)
		}
		return nil, fmt.Errorf("%w: processor=%v radius=%v", ErrNotRoutable, o.Kind, o.Radius)
	}
	return a.node.QueryBatch(ctx, reqs)
}

// heatmapGrid rasterizes a heatmap, scatter-gathering across the
// cluster when one is configured.
func (a *API) heatmapGrid(ctx context.Context, pol tuple.Pollutant, t float64, cols, rows int) (*heatmap.Grid, error) {
	if a.node == nil {
		return a.engine.Heatmap(ctx, pol, t, cols, rows)
	}
	return a.node.Heatmap(ctx, pol, t, cols, rows)
}

// modelResponse returns the (possibly cluster-merged) model cover.
func (a *API) modelResponse(ctx context.Context, pol tuple.Pollutant, t float64) (wire.ModelResponse, error) {
	if a.node == nil {
		cv, err := a.engine.CoverAt(ctx, pol, t)
		if err != nil {
			return wire.ModelResponse{}, err
		}
		return wire.ModelResponseFromCover(cv)
	}
	return a.node.Model(ctx, pol, t)
}

// ingestBatch applies an upload, splitting it across shard owners when
// clustered. Both paths shed saturation (ErrSaturated) instead of
// blocking the HTTP connection.
func (a *API) ingestBatch(ctx context.Context, pol tuple.Pollutant, b tuple.Batch) error {
	if a.node == nil {
		return a.engine.TryIngest(ctx, pol, b)
	}
	return a.node.Ingest(ctx, pol, b)
}

// ownsShard reports whether this node owns pollutant pol at (x, y).
func (a *API) ownsShard(pol tuple.Pollutant, x, y float64) bool {
	ring := a.node.Ring()
	return ring.Owner(pol, pointOf(x, y)) == a.node.Self()
}

// ownsBatch reports whether every request of a batch lands on this node.
func (a *API) ownsBatch(reqs []query.Request) bool {
	for _, r := range reqs {
		if !a.ownsShard(r.Pollutant, r.X, r.Y) {
			return false
		}
	}
	return true
}

// clusterShards is the per-shard ownership table: pollutant -> node ID
// (as a string key, JSON objects key by string) -> owned cells.
type clusterShards map[string]map[string][]int

// clusterStatsJSON mirrors cluster.Stats on the wire.
type clusterStatsJSON struct {
	Local           int64 `json:"local"`
	Forwarded       int64 `json:"forwarded"`
	ForwardedIn     int64 `json:"forwardedIn"`
	Scatters        int64 `json:"scatters"`
	NotOwner        int64 `json:"notOwner"`
	Errors          int64 `json:"errors"`
	FailedOver      int64 `json:"failedOver"`
	Rehomed         int64 `json:"rehomed"`
	EpochMismatches int64 `json:"epochMismatches"`
}

// replicationStatsJSON mirrors cluster.ReplicationStats on the wire.
type replicationStatsJSON struct {
	Streamed     int64 `json:"streamed"`
	StreamDrops  int64 `json:"streamDrops"`
	StreamErrors int64 `json:"streamErrors"`
	GapNaks      int64 `json:"gapNaks"`
	Applied      int64 `json:"applied"`
	Gaps         int64 `json:"gaps"`
	Catchups     int64 `json:"catchups"`
	Snapshots    int64 `json:"snapshots"`
	MirrorReads  int64 `json:"mirrorReads"`
	Mirrors      int   `json:"mirrors"`
}

// clusterResponse is the GET /v1/cluster document. Ring is exactly the
// wire ring-exchange payload, so an HTTP client rebuilds the same
// cluster.Ring a TCP client gets from a RingRequest. Replication is
// present only on nodes of a replicated ring.
type clusterResponse struct {
	Self        int                   `json:"self"`
	Epoch       uint64                `json:"epoch"`
	Ring        wire.RingResponse     `json:"ring"`
	Shards      clusterShards         `json:"shards"`
	Routing     clusterStatsJSON      `json:"routing"`
	Replication *replicationStatsJSON `json:"replication,omitempty"`
}

// handleCluster serves GET /v1/cluster.
func (a *API) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	ring := a.node.Ring()
	shards := make(clusterShards, len(a.engine.Pollutants()))
	for _, pol := range a.engine.Pollutants() {
		perNode := make(map[string][]int, ring.Nodes())
		for n := 0; n < ring.Nodes(); n++ {
			if cells := ring.OwnedCells(n, pol); len(cells) > 0 {
				perNode[fmt.Sprint(n)] = cells
			}
		}
		shards[pol.String()] = perNode
	}
	st := a.node.Stats()
	resp := clusterResponse{
		Self:   a.node.Self(),
		Epoch:  ring.Epoch(),
		Ring:   ring.Wire(),
		Shards: shards,
		Routing: clusterStatsJSON{
			Local: st.Local, Forwarded: st.Forwarded, ForwardedIn: st.ForwardedIn,
			Scatters: st.Scatters, NotOwner: st.NotOwner, Errors: st.Errors,
			FailedOver: st.FailedOver, Rehomed: st.Rehomed,
			EpochMismatches: st.EpochMismatches,
		},
	}
	if rs, ok := a.node.ReplicationStats(); ok {
		resp.Replication = &replicationStatsJSON{
			Streamed: rs.Streamed, StreamDrops: rs.StreamDrops, StreamErrors: rs.StreamErrors,
			GapNaks: rs.GapNaks, Applied: rs.Applied, Gaps: rs.Gaps, Catchups: rs.Catchups,
			Snapshots: rs.Snapshots, MirrorReads: rs.MirrorReads, Mirrors: rs.Mirrors,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleClusterJoin serves POST /v1/cluster/join {"addr": "host:port"}
// — the HTTP form of the wire JoinRequest announce. It returns the
// pending next-epoch ring that includes addr as its last member; the
// membership does not change until the joiner bootstraps its shards
// and broadcasts the commit (Platform.CompleteJoin on the joiner).
func (a *API) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	var body struct {
		Addr string `json:"addr"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode join body: %w", err))
		return
	}
	if body.Addr == "" {
		writeError(w, http.StatusBadRequest, errors.New("join body needs addr"))
		return
	}
	switch resp := a.node.HandleMessage(wire.JoinRequest{Addr: body.Addr}).(type) {
	case wire.RingResponse:
		writeJSON(w, http.StatusOK, resp)
	case wire.ErrorResponse:
		writeError(w, http.StatusConflict, errors.New(resp.Msg))
	default:
		writeError(w, http.StatusInternalServerError, fmt.Errorf("unexpected join reply %T", resp))
	}
}

// handleClusterDrain serves POST /v1/cluster/drain: it removes this
// node from the cluster — peers bootstrap its shards from the retained
// replication streams before the new epoch commits — and reports the
// committed epoch. The process keeps serving (reads and the final
// handoff pulls) until the operator stops it.
func (a *API) handleClusterDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	if err := a.node.Drain(r.Context()); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"drained": true,
		"epoch":   a.node.Ring().Epoch(),
	})
}
