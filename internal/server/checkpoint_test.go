package server

// Tests for the engine-level checkpoint plumbing: the manual trigger,
// the periodic trigger, aggregated stats, restart recovery, and the
// /v1/stats checkpoint section.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kmeans"
	"repro/internal/store"
	"repro/internal/tuple"
)

func durableStores(t *testing.T, root string) map[tuple.Pollutant]*store.Store {
	t.Helper()
	out := make(map[tuple.Pollutant]*store.Store)
	for _, pol := range []tuple.Pollutant{tuple.CO2, tuple.PM} {
		st, err := store.Open(store.Config{
			WindowLength: 600,
			Dir:          filepath.Join(root, pol.String()),
		})
		if err != nil {
			t.Fatal(err)
		}
		out[pol] = st
	}
	return out
}

func ingestBoth(t *testing.T, e *Engine) {
	t.Helper()
	ctx := context.Background()
	var b tuple.Batch
	for i := 0; i < 120; i++ {
		b = append(b, tuple.Raw{T: float64(i * 10), X: float64(i % 40), Y: float64(i % 30), S: 420})
	}
	for _, pol := range []tuple.Pollutant{tuple.CO2, tuple.PM} {
		if err := e.Ingest(ctx, pol, b); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEngineCheckpointRestartAndStats(t *testing.T) {
	root := t.TempDir()
	stores := durableStores(t, root)
	e, err := NewMultiEngine(stores, core.Config{Cluster: kmeans.Config{Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	ingestBoth(t, e)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	cs := e.CheckpointStats()
	if cs.Checkpoints != 2 || cs.Failures != 0 {
		t.Fatalf("CheckpointStats = %+v, want 2 checkpoints across shards", cs)
	}
	if cs.LastTuples != 240 {
		t.Errorf("LastTuples = %d, want 240 summed", cs.LastTuples)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	for _, st := range stores {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Restart: both shards must recover from their checkpoints, replay
	// nothing, and warm-prime their covers in the background.
	stores2 := durableStores(t, root)
	e2, err := NewMultiEngine(stores2, core.Config{Cluster: kmeans.Config{Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		e2.Close()
		for _, st := range stores2 {
			st.Close()
		}
	}()
	cs = e2.CheckpointStats()
	if cs.RecoveredShards != 2 {
		t.Fatalf("RecoveredShards = %d, want 2", cs.RecoveredShards)
	}
	// Each shard's suffix is just the empty segment the checkpoint
	// rotated in: no tuples re-read.
	if cs.SegmentsReplayed > 2 || cs.TuplesReplayed != 0 {
		t.Errorf("restart replayed %d segments / %d tuples, want ≤2 empty suffixes / 0", cs.SegmentsReplayed, cs.TuplesReplayed)
	}
	if cs.TuplesFromCheckpoint != 240 {
		t.Errorf("TuplesFromCheckpoint = %d, want 240", cs.TuplesFromCheckpoint)
	}
	e2.WarmPrime()
	e2.Scheduler().Wait()
	for _, pol := range []tuple.Pollutant{tuple.CO2, tuple.PM} {
		mnt, err := e2.MaintainerFor(pol)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(mnt.CachedWindows()); got == 0 {
			t.Errorf("%v: no covers prebuilt after WarmPrime", pol)
		}
	}

	// The stats endpoint must expose the checkpoint section.
	srv := httptest.NewServer(NewAPI(e2))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Checkpoint struct {
			Checkpoints          int64 `json:"checkpoints"`
			RecoveredShards      int   `json:"recoveredShards"`
			TuplesFromCheckpoint int   `json:"tuplesFromCheckpoint"`
		} `json:"checkpoint"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Checkpoint.RecoveredShards != 2 || body.Checkpoint.TuplesFromCheckpoint != 240 {
		t.Errorf("/v1/stats checkpoint section = %+v", body.Checkpoint)
	}
}

func TestEnginePeriodicCheckpoint(t *testing.T) {
	root := t.TempDir()
	stores := durableStores(t, root)
	e, err := NewMultiEngineOpts(stores, core.Config{Cluster: kmeans.Config{Seed: 9}}, Options{
		Checkpoint: CheckpointConfig{Interval: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ingestBoth(t, e)
	deadline := time.Now().Add(10 * time.Second)
	for e.CheckpointStats().Checkpoints < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("periodic checkpoint never fired: %+v", e.CheckpointStats())
		}
		time.Sleep(time.Millisecond)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	after := e.CheckpointStats().Checkpoints
	// The ticker must stop with the engine.
	time.Sleep(20 * time.Millisecond)
	if got := e.CheckpointStats().Checkpoints; got != after {
		t.Errorf("checkpoints kept running after Close: %d -> %d", after, got)
	}
	for _, st := range stores {
		st.Close()
	}
}
