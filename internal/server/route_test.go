package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestHTTPRouteSummary(t *testing.T) {
	api := NewAPI(newTestEngine(t))
	srv := httptest.NewServer(api)
	defer srv.Close()

	body := []byte(`{"fixes":[
		{"t":100,"x":100,"y":100},
		{"t":160,"x":400,"y":200},
		{"t":220,"x":800,"y":400},
		{"t":280,"x":1200,"y":700}
	]}`)
	resp, err := http.Post(srv.URL+"/v1/route/summary", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var sum struct {
		Points []struct {
			Value float64 `json:"value"`
			Band  string  `json:"band"`
		} `json:"points"`
		Average  float64 `json:"average"`
		Band     string  `json:"band"`
		Advice   string  `json:"advice"`
		Worst    int     `json:"worst"`
		LengthM  float64 `json:"lengthMeters"`
		Duration float64 `json:"durationSeconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if len(sum.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(sum.Points))
	}
	// The test field grows with x+y, so the last point is worst.
	if sum.Worst != 3 {
		t.Errorf("worst = %d, want 3", sum.Worst)
	}
	if sum.Duration != 180 {
		t.Errorf("duration = %v, want 180", sum.Duration)
	}
	if sum.LengthM < 1000 || sum.Band == "" || sum.Advice == "" {
		t.Errorf("summary incomplete: %+v", sum)
	}
	for i, pt := range sum.Points {
		if pt.Band == "" || pt.Value <= 0 {
			t.Errorf("point %d incomplete: %+v", i, pt)
		}
	}
}

func TestHTTPRouteSummaryErrors(t *testing.T) {
	api := NewAPI(newTestEngine(t))
	srv := httptest.NewServer(api)
	defer srv.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"not json", "zzz", http.StatusBadRequest},
		{"too few fixes", `{"fixes":[{"t":1,"x":0,"y":0}]}`, http.StatusBadRequest},
		{"empty window", `{"fixes":[{"t":1e12,"x":0,"y":0},{"t":1e12,"x":100,"y":0}]}`, http.StatusBadRequest},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			resp, err := http.Post(srv.URL+"/v1/route/summary", "application/json",
				bytes.NewReader([]byte(tt.body)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tt.want {
				t.Errorf("status = %d, want %d", resp.StatusCode, tt.want)
			}
		})
	}
	// Wrong method.
	resp, err := http.Get(srv.URL + "/v1/route/summary")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d", resp.StatusCode)
	}
}
