// Package server implements the EnviroMeter server: the query-processing
// engine that answers protocol messages (used both by the simulated
// cellular transport and the HTTP API), and the HTTP/JSON interface that
// replaces the demo's web UI.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/geo"
	"repro/internal/heatmap"
	"repro/internal/ingest"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/subs"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// ErrEngineClosed is returned by writes against a closed engine — the
// HTTP layer maps it to 503.
var ErrEngineClosed = errors.New("server: engine closed")

// CheckpointConfig tunes the durability checkpoints of the engine's
// stores. The zero value disables automatic checkpoints; Checkpoint can
// always be called manually.
type CheckpointConfig struct {
	// Interval between automatic checkpoints of every shard's store.
	// A positive interval also makes the facade checkpoint at Close.
	// 0 disables the periodic trigger.
	Interval time.Duration
	// KeepSegments is forwarded by the facade into each store's
	// configuration: how many checkpoint-covered segment files each
	// compaction spares as a raw-history safety margin.
	KeepSegments int
}

// Options tunes the engine's asynchronous machinery: the ingest
// pipeline queues, the background cover-maintenance scheduler, and the
// checkpoint trigger. The zero value uses the packages' defaults.
type Options struct {
	// Pipeline configures the per-pollutant ingest queues (depth,
	// coalescing bound, overflow policy).
	Pipeline ingest.PipelineConfig
	// Scheduler configures the background cover builder; Workers < 0
	// disables it, leaving every cover build on the query path.
	Scheduler core.SchedulerConfig
	// Checkpoint configures periodic store checkpoints (the engine only
	// uses Interval; KeepSegments is applied where the stores are
	// opened).
	Checkpoint CheckpointConfig
	// Subs bounds the push-subscription registry (per-subscription queue
	// depth, re-evaluation workers, subscription and point caps).
	Subs subs.Config
}

// CheckpointStats aggregates checkpoint and recovery activity across
// every pollutant shard's store.
type CheckpointStats struct {
	// Checkpoints, Failures, LastWindows and LastTuples sum the shards'
	// store.CheckpointStats.
	Checkpoints int64
	Failures    int64
	// SegmentsDeleted is every segment file reclaimed, by checkpoint
	// compaction and by recovery at Open — the store keeps the two
	// apart; the aggregate reports total disk reclaimed.
	SegmentsDeleted int64
	LastWindows     int64
	LastTuples      int64
	// RecoveredShards counts shards whose last Open restored state from
	// a checkpoint rather than full log replay.
	RecoveredShards int
	// SegmentsReplayed, TuplesReplayed and TuplesFromCheckpoint sum the
	// shards' store.RecoveryStats.
	SegmentsReplayed     int
	TuplesReplayed       int
	TuplesFromCheckpoint int
}

// shard is one pollutant's slice of the engine: its raw-tuple store and
// its model-cover maintainer. Covers of different pollutants never mix.
type shard struct {
	st         *store.Store
	maintainer *core.Maintainer
}

// Engine answers the v1 query API over one store-and-maintainer shard per
// monitored pollutant. It serves the wire protocol (query tuples with
// interpolated values, model requests with the full (t_n, µ, M) payload)
// and is safe for concurrent use; the shard set is fixed at construction.
//
// Writes flow through an asynchronous pipeline: Ingest enqueues onto the
// pollutant's bounded queue and blocks until the (possibly coalesced)
// store append covering the upload completes — with a durable store,
// until its commit group is durable. Each applied append invalidates the
// touched windows, which the background scheduler drains into prioritized
// cover rebuilds, so the query path finds covers already built instead of
// paying Ad-KMN on first touch.
type Engine struct {
	shards map[tuple.Pollutant]*shard
	def    tuple.Pollutant

	pipeline *ingest.Pipeline
	sched    *core.Scheduler // nil when disabled
	registry *subs.Registry
	unwatch  []func()
	closed   atomic.Bool

	// ckStop ends the periodic checkpoint goroutine (nil when no
	// Interval was configured); ckWG waits for it on Close.
	ckStop chan struct{}
	ckWG   sync.WaitGroup

	// ckMu/ckActive single-flight Checkpoint: a manual call that lands
	// while the periodic ticker (or another manual call) is mid-flight
	// joins the in-flight pass instead of queueing a redundant one behind
	// it — every caller still returns only after a full pass that began
	// at or after their call.
	ckMu     sync.Mutex
	ckActive *ckFlight

	// ingestTestGate, when set (by tests in this package, before any
	// ingest), runs inside the pipeline sink — the hook tests use to hold
	// the ingest worker and saturate the queue deterministically.
	ingestTestGate func(p tuple.Pollutant)
}

// NewEngine creates a single-pollutant engine over st with the given
// Ad-KMN configuration; the monitored pollutant is cfg.Pollutant (CO2 by
// default). Unlike NewMultiEngine it tolerates an out-of-range
// cfg.Pollutant, matching the pre-v1 constructor's leniency.
func NewEngine(st *store.Store, cfg core.Config) *Engine {
	e := &Engine{
		shards: map[tuple.Pollutant]*shard{
			cfg.Pollutant: {st: st, maintainer: core.NewMaintainer(st, cfg)},
		},
		def: cfg.Pollutant,
	}
	e.startAsync(Options{})
	return e
}

// NewMultiEngine creates an engine with one shard per pollutant and the
// default pipeline/scheduler options; see NewMultiEngineOpts.
func NewMultiEngine(stores map[tuple.Pollutant]*store.Store, cfg core.Config) (*Engine, error) {
	return NewMultiEngineOpts(stores, cfg, Options{})
}

// NewMultiEngineOpts creates an engine with one shard per pollutant.
// Each shard's maintainer runs Ad-KMN with cfg, its Pollutant field
// rebound to the shard's key. The default pollutant (used by legacy wire
// frames and parameterless HTTP calls) is cfg.Pollutant when monitored,
// otherwise the smallest monitored key. opts tunes the ingest pipeline
// and the cover-maintenance scheduler.
func NewMultiEngineOpts(stores map[tuple.Pollutant]*store.Store, cfg core.Config, opts Options) (*Engine, error) {
	if len(stores) == 0 {
		return nil, errors.New("server: no pollutant stores")
	}
	e := &Engine{shards: make(map[tuple.Pollutant]*shard, len(stores))}
	for pol, st := range stores {
		if !pol.Valid() {
			return nil, fmt.Errorf("%w: %v", query.ErrUnknownPollutant, pol)
		}
		if st == nil {
			return nil, fmt.Errorf("server: nil store for pollutant %v", pol)
		}
		shardCfg := cfg
		shardCfg.Pollutant = pol
		e.shards[pol] = &shard{st: st, maintainer: core.NewMaintainer(st, shardCfg)}
	}
	if _, ok := e.shards[cfg.Pollutant]; ok {
		e.def = cfg.Pollutant
	} else {
		e.def = e.Pollutants()[0]
	}
	e.startAsync(opts)
	return e, nil
}

// startAsync wires the write path: the ingest pipeline draining into
// ingestSink, and the scheduler watching every shard's invalidations.
func (e *Engine) startAsync(opts Options) {
	e.sched = core.NewScheduler(opts.Scheduler)
	if e.sched != nil {
		for _, sh := range e.shards {
			e.unwatch = append(e.unwatch, e.sched.Watch(sh.maintainer))
		}
	}
	// The subscription registry rides the same invalidation stream the
	// scheduler drains: each dropped (pollutant, window) is offered to
	// the overlap index, and only subscriptions bound to that window
	// re-evaluate. The hook itself never evaluates, so the ingest sink
	// stays decoupled from the push machinery.
	e.registry = subs.NewRegistry(opts.Subs, e.subsEvaluate, e.subsWindowLen)
	for pol, sh := range e.shards {
		pol := pol
		e.unwatch = append(e.unwatch, sh.maintainer.OnInvalidate(func(c int) {
			e.registry.Invalidated(pol, c)
		}))
	}
	// NewPipeline only fails on a nil sink.
	e.pipeline, _ = ingest.NewPipeline(e.ingestSink, opts.Pipeline)
	if opts.Checkpoint.Interval > 0 {
		e.ckStop = make(chan struct{}) //bounded: stop latch; closed by Close, never sent on
		e.ckWG.Add(1)
		go func() {
			defer e.ckWG.Done()
			t := time.NewTicker(opts.Checkpoint.Interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					// A failed periodic checkpoint is already counted in
					// the store's Failures; the next tick retries.
					_ = e.Checkpoint()
				case <-e.ckStop:
					return
				}
			}
		}()
	}
}

// ckFlight is one in-flight engine checkpoint pass: joiners wait on
// done and share err.
type ckFlight struct {
	done chan struct{}
	err  error
}

// Checkpoint persists every shard's retained windows and compacts their
// segment logs (see store.Checkpoint). Shard failures are joined; each
// shard checkpoints independently, so one failing disk does not stop
// the others. Concurrent calls — the periodic ticker overlapping a
// manual trigger, or two manual triggers — are single-flighted: late
// arrivals join the running pass and return its error instead of
// stacking redundant checkpoint work behind it.
//
//ctxcheck:allow the only wait is for a concurrent checkpoint pass, which always closes done
func (e *Engine) Checkpoint() error {
	e.ckMu.Lock()
	if f := e.ckActive; f != nil {
		e.ckMu.Unlock()
		<-f.done
		return f.err
	}
	f := &ckFlight{done: make(chan struct{})} //bounded: signal-only completion latch; closed once, nothing sends
	e.ckActive = f
	e.ckMu.Unlock()
	var errs []error
	for _, pol := range e.Pollutants() {
		if err := e.shards[pol].st.Checkpoint(); err != nil {
			errs = append(errs, fmt.Errorf("server: checkpoint %v: %w", pol, err))
		}
	}
	f.err = errors.Join(errs...)
	e.ckMu.Lock()
	e.ckActive = nil
	e.ckMu.Unlock()
	close(f.done)
	return f.err
}

// CheckpointStats aggregates the shards' checkpoint and recovery
// counters.
func (e *Engine) CheckpointStats() CheckpointStats {
	var out CheckpointStats
	for _, sh := range e.shards {
		cs := sh.st.CheckpointStats()
		out.Checkpoints += cs.Checkpoints
		out.Failures += cs.Failures
		out.SegmentsDeleted += cs.SegmentsDeleted
		out.LastWindows += cs.LastWindows
		out.LastTuples += cs.LastTuples
		rs := sh.st.RecoveryStats()
		if rs.FromCheckpoint {
			out.RecoveredShards++
			out.TuplesFromCheckpoint += rs.CheckpointTuples
		}
		out.SegmentsReplayed += rs.SegmentsReplayed
		out.TuplesReplayed += rs.TuplesReplayed
		out.SegmentsDeleted += int64(rs.SegmentsDeleted)
	}
	return out
}

// ColumnarStats aggregates the shards' columnar scan-path counters
// (sidecar writes, lazy recoveries, zone-map prunes, mmap vs pread
// reads, row-replay fallbacks).
func (e *Engine) ColumnarStats() store.ColumnarStats {
	var out store.ColumnarStats
	for _, sh := range e.shards {
		out.Add(sh.st.ColumnarStats())
	}
	return out
}

// WarmPrime queues background cover builds for every retained window
// that has no cover yet, across all shards — the post-restart step that
// turns replayed raw windows back into query-ready covers without
// putting Ad-KMN on the first query's path. A no-op when the scheduler
// is disabled.
func (e *Engine) WarmPrime() {
	if e.sched == nil {
		return
	}
	for _, pol := range e.Pollutants() {
		e.sched.WarmPrime(e.shards[pol].maintainer)
	}
}

// Close shuts the write path down: the pipeline stops accepting uploads
// and drains what it holds (every queued upload is still applied and
// acknowledged), the scheduler finishes in-flight builds and discards
// the rest, and the maintainers detach from their stores' eviction
// hooks. The read path (queries over already-built state) keeps working.
func (e *Engine) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	if e.ckStop != nil {
		close(e.ckStop)
		e.ckWG.Wait()
	}
	err := e.pipeline.Close()
	for _, u := range e.unwatch {
		u()
	}
	e.registry.Close()
	e.sched.Close()
	for _, sh := range e.shards {
		sh.maintainer.Close()
	}
	return err
}

// Scheduler exposes the background build scheduler (nil when disabled) —
// tests and benchmarks use it to await quiescence.
func (e *Engine) Scheduler() *core.Scheduler { return e.sched }

// PipelineStats returns the ingest pipeline counters.
func (e *Engine) PipelineStats() ingest.PipelineStats { return e.pipeline.Stats() }

// SchedulerStats returns the cover-maintenance scheduler counters (zero
// when the scheduler is disabled).
func (e *Engine) SchedulerStats() core.SchedulerStats { return e.sched.Stats() }

// Pollutants lists the monitored pollutants in stable (ascending) order.
func (e *Engine) Pollutants() []tuple.Pollutant {
	out := make([]tuple.Pollutant, 0, len(e.shards))
	for p := range e.shards {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Default returns the pollutant legacy (untagged) requests resolve to.
func (e *Engine) Default() tuple.Pollutant { return e.def }

// Serves reports whether the engine monitors pollutant p.
func (e *Engine) Serves(p tuple.Pollutant) bool {
	_, ok := e.shards[p]
	return ok
}

// shardFor resolves the shard serving p, or ErrUnknownPollutant.
func (e *Engine) shardFor(p tuple.Pollutant) (*shard, error) {
	sh, ok := e.shards[p]
	if !ok {
		return nil, fmt.Errorf("%w: %v not monitored", query.ErrUnknownPollutant, p)
	}
	return sh, nil
}

// Store returns the default pollutant's tuple store.
func (e *Engine) Store() *store.Store { return e.shards[e.def].st }

// StoreFor returns the tuple store of pollutant p.
func (e *Engine) StoreFor(p tuple.Pollutant) (*store.Store, error) {
	sh, err := e.shardFor(p)
	if err != nil {
		return nil, err
	}
	return sh.st, nil
}

// Maintainer returns the default pollutant's cover maintainer.
func (e *Engine) Maintainer() *core.Maintainer { return e.shards[e.def].maintainer }

// MaintainerFor returns the cover maintainer of pollutant p.
func (e *Engine) MaintainerFor(p tuple.Pollutant) (*core.Maintainer, error) {
	sh, err := e.shardFor(p)
	if err != nil {
		return nil, err
	}
	return sh.maintainer, nil
}

// coverAt resolves the cover serving stream time t on shard sh, mapping
// failures onto the v1 error taxonomy: a window with no retained data is
// ErrOutOfWindow, a window whose cover cannot be built is ErrNoCover.
func (sh *shard) coverAt(ctx context.Context, t float64) (*core.Cover, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if t < 0 {
		return nil, fmt.Errorf("%w: negative time %v", query.ErrOutOfWindow, t)
	}
	cv, err := sh.maintainer.CoverAt(t)
	if err != nil {
		c := tuple.WindowIndex(t, sh.st.WindowLength())
		if sh.st.WindowLen(c) == 0 {
			return nil, fmt.Errorf("%w: t=%v (window %d holds no data)", query.ErrOutOfWindow, t, c)
		}
		return nil, fmt.Errorf("%w: %v", query.ErrNoCover, err)
	}
	return cv, nil
}

// Query answers one v1 request from the pollutant's model cover.
func (e *Engine) Query(ctx context.Context, req query.Request) (float64, error) {
	return e.QueryOpts(ctx, req, query.Options{})
}

// QueryOpts answers one v1 request with explicit processor options —
// model cover by default, or any of the paper's radius-based methods.
func (e *Engine) QueryOpts(ctx context.Context, req query.Request, o query.Options) (float64, error) {
	return e.queryOpts(ctx, req, o, nil)
}

// procKey identifies a reusable radius processor: one per pollutant and
// window within a batch (the options are fixed across a batch).
type procKey struct {
	pol tuple.Pollutant
	win int
}

// procCache shares radius-based processors across the workers of one
// batch, so an R-tree or VP-tree is bulk-loaded once per (pollutant,
// window) instead of once per request. Two workers hitting the same cold
// key build once (per-entry sync.Once); workers on different windows
// build concurrently.
type procCache struct {
	mu sync.Mutex
	m  map[procKey]*procEntry
}

type procEntry struct {
	once sync.Once
	p    query.Processor
	err  error
}

func newProcCache() *procCache { return &procCache{m: make(map[procKey]*procEntry)} }

func (pc *procCache) get(key procKey, build func() (query.Processor, error)) (query.Processor, error) {
	pc.mu.Lock()
	ent, ok := pc.m[key]
	if !ok {
		ent = &procEntry{}
		pc.m[key] = ent
	}
	pc.mu.Unlock()
	ent.once.Do(func() { ent.p, ent.err = build() })
	if ent.p == nil && ent.err == nil {
		// A build that panicked marks the Once done without filling the
		// entry; surface that instead of handing out a nil processor.
		return nil, errors.New("server: processor build did not complete")
	}
	return ent.p, ent.err
}

// queryOpts answers one request. A non-nil procs cache shares processors
// across the requests (and workers) of a batch.
func (e *Engine) queryOpts(ctx context.Context, req query.Request, o query.Options, procs *procCache) (float64, error) {
	if err := req.Validate(); err != nil {
		return 0, err
	}
	sh, err := e.shardFor(req.Pollutant)
	if err != nil {
		return 0, err
	}
	o = o.WithDefaults()
	if o.Kind == query.KindCover {
		cv, err := sh.coverAt(ctx, req.T)
		if err != nil {
			return 0, err
		}
		return cv.Interpolate(req.T, req.X, req.Y)
	}
	// Radius-based methods run over the raw window; a missing window is
	// out-of-range for them exactly as it is for the cover path. The
	// window is only cloned inside the build closure, so a batch copies
	// and sorts it once per (pollutant, window), not once per request.
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	c := tuple.WindowIndex(req.T, sh.st.WindowLength())
	if sh.st.WindowLen(c) == 0 {
		return 0, fmt.Errorf("%w: t=%v (window %d holds no data)", query.ErrOutOfWindow, req.T, c)
	}
	build := func() (query.Processor, error) {
		w := sh.st.Window(c)
		if len(w) == 0 { // evicted between the check and the build
			return nil, fmt.Errorf("%w: t=%v (window %d holds no data)", query.ErrOutOfWindow, req.T, c)
		}
		return query.BuildProcessor(o, w, nil)
	}
	var p query.Processor
	if procs != nil {
		p, err = procs.get(procKey{pol: req.Pollutant, win: c}, build)
	} else {
		p, err = build()
	}
	if err != nil {
		return 0, err
	}
	return p.Interpolate(req.Q())
}

// QueryBatch answers a batch of v1 requests (requests may mix
// pollutants) with per-index results: one BatchResult per request, in
// order, each carrying its own value or error. The call-level error is
// reserved for an empty batch and for context cancellation.
func (e *Engine) QueryBatch(ctx context.Context, reqs []query.Request) ([]query.BatchResult, error) {
	return e.QueryBatchOpts(ctx, reqs, query.Options{})
}

// batchWorkers resolves the worker count for a batch of n requests:
// the requested concurrency (0 = GOMAXPROCS), never more than the batch
// size, and clamped to a small multiple of GOMAXPROCS — batch items are
// CPU-bound, so the clamp costs nothing while stopping a client-supplied
// ?concurrency= from dictating the server's goroutine count.
func batchWorkers(requested, n int) int {
	procs := runtime.GOMAXPROCS(0)
	w := requested
	if w <= 0 {
		w = procs
	}
	if max := 4 * procs; w > max {
		w = max
	}
	if w > n {
		w = n
	}
	return w
}

// QueryBatchOpts is QueryBatch with explicit processor options.
//
// The batch executes on a bounded worker pool (Options.Concurrency
// workers; 0 picks GOMAXPROCS, 1 is the sequential baseline). A bad
// request no longer rejects the whole batch: its slot carries the error
// and every other request is still answered. Radius-based processors
// (and their spatial indexes) are built once per (pollutant, window)
// touched by the batch, not once per request. Cancelling ctx drains the
// pool promptly — workers stop picking up new requests, remaining slots
// are marked with the context error, and the call returns it.
func (e *Engine) QueryBatchOpts(ctx context.Context, reqs []query.Request, o query.Options) ([]query.BatchResult, error) {
	if len(reqs) == 0 {
		return nil, errors.New("server: empty query batch")
	}
	workers := batchWorkers(o.Concurrency, len(reqs))
	results := make([]query.BatchResult, len(reqs))
	procs := newProcCache()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				if err := ctx.Err(); err != nil {
					results[i] = query.BatchResult{Err: err}
					continue // drain: mark remaining slots without querying
				}
				results[i] = e.batchItem(ctx, reqs[i], o, procs)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return results, fmt.Errorf("server: query batch: %w", err)
	}
	return results, nil
}

// batchItem answers one batch slot, containing panics: before the pool,
// a processor panic was confined to its HTTP request by net/http's
// per-connection recover; on a bare worker goroutine it would kill the
// whole process, so it becomes that item's error instead.
func (e *Engine) batchItem(ctx context.Context, req query.Request, o query.Options, procs *procCache) (res query.BatchResult) {
	defer func() {
		if r := recover(); r != nil {
			res = query.BatchResult{Err: fmt.Errorf("server: batch item panic: %v", r)}
		}
	}()
	v, err := e.queryOpts(ctx, req, o, procs)
	return query.BatchResult{Value: v, Err: err}
}

// CoverAt returns pollutant p's model cover valid at stream time t.
func (e *Engine) CoverAt(ctx context.Context, p tuple.Pollutant, t float64) (*core.Cover, error) {
	sh, err := e.shardFor(p)
	if err != nil {
		return nil, err
	}
	return sh.coverAt(ctx, t)
}

// Ingest submits a batch of raw tuples for pollutant p through the
// asynchronous pipeline and blocks until the append covering it
// completes (with a durable store, until the batch's commit group is
// durable). A full queue follows the pipeline's overflow policy —
// blocking by default. Applied windows are invalidated and queued for a
// background cover rebuild.
func (e *Engine) Ingest(ctx context.Context, p tuple.Pollutant, b tuple.Batch) error {
	return e.ingest(ctx, p, b, false)
}

// TryIngest is Ingest that never waits for queue space: a saturated
// pollutant queue fails fast with ingest.ErrSaturated. The HTTP ingest
// edge uses it to shed load as 429s.
func (e *Engine) TryIngest(ctx context.Context, p tuple.Pollutant, b tuple.Batch) error {
	return e.ingest(ctx, p, b, true)
}

func (e *Engine) ingest(ctx context.Context, p tuple.Pollutant, b tuple.Batch, try bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if e.closed.Load() {
		return ErrEngineClosed
	}
	if _, err := e.shardFor(p); err != nil {
		return err
	}
	var err error
	if try {
		err = e.pipeline.TrySubmit(ctx, p, b)
	} else {
		err = e.pipeline.Submit(ctx, p, b)
	}
	if errors.Is(err, ingest.ErrPipelineClosed) {
		// An Ingest that raced Close past the closed check: present the
		// engine-level sentinel so callers match one closed error.
		return ErrEngineClosed
	}
	return err
}

// ingestSink applies one (possibly coalesced) upload group: the durable
// store append, then invalidation of the touched windows — which feeds
// the scheduler's background rebuild queue. Windows the batch touched
// that are already behind the retention horizon (the append itself
// evicted them) are NOT invalidated: the maintainer's eviction hook has
// dropped their covers and scheduling a rebuild would be dead work.
func (e *Engine) ingestSink(p tuple.Pollutant, b tuple.Batch) error {
	sh := e.shards[p] // pollutant validated before submit
	if e.ingestTestGate != nil {
		e.ingestTestGate(p)
	}
	err := sh.st.Append(b)
	// Invalidate even when Append errors: a sync failure still applies
	// the batch to the in-memory windows (only its durability is in
	// doubt), and skipping invalidation would serve covers that exclude
	// visible data forever. For a failure that applied nothing, the
	// WindowLen check below skips empty windows and a spurious rebuild
	// of an unchanged window is merely wasted background work.
	touched := map[int]bool{}
	for _, r := range b {
		touched[tuple.WindowIndex(r.T, sh.st.WindowLength())] = true
	}
	for c := range touched {
		if sh.st.WindowLen(c) == 0 {
			continue // evicted or out of retention: never queue dead builds
		}
		sh.maintainer.Invalidate(c)
	}
	return err
}

// Heatmap rasterizes pollutant p's cover at time t over the data's
// bounding region.
func (e *Engine) Heatmap(ctx context.Context, p tuple.Pollutant, t float64, cols, rows int) (*heatmap.Grid, error) {
	return e.heatmap(ctx, p, t, cols, rows, nil)
}

// HeatmapRegion rasterizes pollutant p's cover at time t over an
// explicit region — the form a cluster router requests so every shard
// renders a comparable extent.
func (e *Engine) HeatmapRegion(ctx context.Context, p tuple.Pollutant, t float64, cols, rows int, region geo.Rect) (*heatmap.Grid, error) {
	return e.heatmap(ctx, p, t, cols, rows, &region)
}

func (e *Engine) heatmap(ctx context.Context, p tuple.Pollutant, t float64, cols, rows int, region *geo.Rect) (*heatmap.Grid, error) {
	sh, err := e.shardFor(p)
	if err != nil {
		return nil, err
	}
	cv, err := sh.coverAt(ctx, t)
	if err != nil {
		return nil, err
	}
	if region != nil {
		return heatmap.FromCover(cv, *region, cols, rows, t)
	}
	// WindowBounds answers from the columnar zone maps when the window is
	// a lazy checkpointed base, so an implicit-bounds heatmap after a
	// restart does not force a full window materialization.
	c := tuple.WindowIndex(t, sh.st.WindowLength())
	bounds, ok := sh.st.WindowBounds(c)
	if !ok {
		return nil, fmt.Errorf("%w: no data in window", query.ErrOutOfWindow)
	}
	// A corridor of bus samples can be degenerate in one axis; inflate so
	// the raster region always has area.
	bounds = bounds.Inflate(100)
	return heatmap.FromCover(cv, bounds, cols, rows, t)
}

// HandleMessage implements the request/response protocol over any
// transport: it maps a request message to its response message, routing
// by the message's pollutant tag (legacy untagged frames decode as CO2).
// Server failures become ErrorResponse rather than Go errors, since they
// must travel back over the link.
func (e *Engine) HandleMessage(req wire.Message) wire.Message {
	//ctxcheck:allow legacy ctx-less Handler entry; the serve loop prefers HandleMessageCtx
	return e.HandleMessageCtx(context.Background(), req)
}

// HandleMessageCtx is HandleMessage with a caller-supplied context, so
// in-process callers (the cluster node answering its own shards on
// behalf of an HTTP request) keep cancellation and deadlines; wire
// transports, which carry no context, use HandleMessage.
func (e *Engine) HandleMessageCtx(ctx context.Context, req wire.Message) wire.Message {
	switch m := req.(type) {
	case wire.QueryRequest:
		v, err := e.Query(ctx, query.Request{T: m.T, X: m.X, Y: m.Y, Pollutant: e.wirePollutant(m.Pollutant, m.Legacy)})
		if err != nil {
			return wire.ErrorResponse{Msg: err.Error()}
		}
		return wire.QueryResponse{Value: v}
	case wire.BatchQueryRequest:
		if len(m.Items) == 0 {
			return wire.ErrorResponse{Msg: "empty query batch"}
		}
		reqs := make([]query.Request, len(m.Items))
		for i, it := range m.Items {
			reqs[i] = query.Request{T: it.T, X: it.X, Y: it.Y,
				Pollutant: e.wirePollutant(it.Pollutant, it.Legacy)}
		}
		rs, err := e.QueryBatch(ctx, reqs)
		if err != nil {
			return wire.ErrorResponse{Msg: err.Error()}
		}
		resp := wire.BatchQueryResponse{Items: make([]wire.BatchQueryItem, len(rs))}
		for i, r := range rs {
			if r.Err != nil {
				resp.Items[i] = wire.BatchQueryItem{Err: r.Err.Error()}
			} else {
				resp.Items[i] = wire.BatchQueryItem{Value: r.Value}
			}
		}
		return resp
	case wire.ModelRequest:
		cv, err := e.CoverAt(ctx, e.wirePollutant(m.Pollutant, m.Legacy), m.T)
		if err != nil {
			return wire.ErrorResponse{Msg: err.Error()}
		}
		resp, err := wire.ModelResponseFromCover(cv)
		if err != nil {
			return wire.ErrorResponse{Msg: err.Error()}
		}
		return resp
	case wire.IngestRequest:
		// The v1.2 wire upload: what a sensing bus (or a cluster router
		// forwarding each owner its slice) submits over TCP. The same
		// backpressure as HTTP ingest: a saturated queue fails fast and
		// the error names ErrSaturated so clients can back off.
		if err := e.TryIngest(ctx, m.Pollutant, m.Tuples); err != nil {
			return wire.ErrorResponse{Msg: err.Error()}
		}
		return wire.IngestResponse{Ingested: uint32(len(m.Tuples))}
	case wire.HeatmapRequest:
		cols, rows := int(m.Cols), int(m.Rows)
		var (
			grid *heatmap.Grid
			err  error
		)
		if m.HasRegion {
			grid, err = e.HeatmapRegion(ctx, m.Pollutant, m.T, cols, rows, m.Region)
		} else {
			grid, err = e.Heatmap(ctx, m.Pollutant, m.T, cols, rows)
		}
		if err != nil {
			return wire.ErrorResponse{Msg: err.Error()}
		}
		resp, err := wire.HeatmapResponseFromGrid(grid)
		if err != nil {
			return wire.ErrorResponse{Msg: err.Error()}
		}
		return resp
	case wire.RingRequest:
		// A bare engine is a single-node deployment; cluster nodes wrap
		// the engine and answer from their ring before reaching here.
		return wire.ErrorResponse{Msg: "server: not clustered"}
	case wire.SubscribeRequest:
		// Reaching here means the transport performed a plain exchange;
		// push delivery needs a proto stream (or the SSE endpoint), which
		// routes subscribe frames through HandleStream instead.
		return wire.ErrorResponse{Msg: "server: subscriptions require a streaming transport (proto stream or GET /v1/subscribe)"}
	case wire.UnsubscribeRequest:
		return wire.UnsubscribeResponse{Removed: e.registry.Unsubscribe(m.ID)}
	default:
		return wire.ErrorResponse{Msg: fmt.Sprintf("unsupported request type %T", req)}
	}
}

// wirePollutant resolves a wire-frame pollutant tag. Legacy (pre-v1)
// frames carry no tag and route to the engine's default pollutant, so a
// fleet of deployed untagged clients keeps working against any server.
// Tagged v1 frames are routed literally — including explicit CO2 on a
// server without a CO2 shard — so mistagged requests fail loudly with
// ErrUnknownPollutant rather than silently answering from another
// pollutant's models.
func (e *Engine) wirePollutant(p tuple.Pollutant, legacy bool) tuple.Pollutant {
	if legacy {
		return e.def
	}
	return p
}

// Classify returns the display band for a CO2 value, exposed here so both
// the HTTP layer and clients share one classification.
func Classify(ppm float64) eval.CO2Band { return eval.ClassifyCO2(ppm) }

// ClassifyFor returns the display band for a value of pollutant p.
func ClassifyFor(p tuple.Pollutant, v float64) eval.CO2Band {
	return eval.ClassifyPollutant(p, v)
}
