// Package server implements the EnviroMeter server: the query-processing
// engine that answers protocol messages (used both by the simulated
// cellular transport and the HTTP API), and the HTTP/JSON interface that
// replaces the demo's web UI.
package server

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/heatmap"
	"repro/internal/store"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// Engine binds a tuple store to a model-cover maintainer and answers the
// wire protocol: query tuples with interpolated values (Query 1) and model
// requests with the full (t_n, µ, M) payload.
type Engine struct {
	st         *store.Store
	maintainer *core.Maintainer
}

// NewEngine creates an engine over st with the given Ad-KMN configuration.
func NewEngine(st *store.Store, cfg core.Config) *Engine {
	return &Engine{st: st, maintainer: core.NewMaintainer(st, cfg)}
}

// Store returns the underlying tuple store (for ingestion endpoints).
func (e *Engine) Store() *store.Store { return e.st }

// Maintainer returns the cover maintainer (for diagnostics).
func (e *Engine) Maintainer() *core.Maintainer { return e.maintainer }

// PointQuery interpolates the sensor value at (x, y) at stream time t
// using the model cover of t's window — the server side of Query 1.
func (e *Engine) PointQuery(t, x, y float64) (float64, error) {
	cv, err := e.maintainer.CoverAt(t)
	if err != nil {
		return 0, err
	}
	return cv.Interpolate(t, x, y)
}

// CoverAt returns the model cover valid at stream time t.
func (e *Engine) CoverAt(t float64) (*core.Cover, error) {
	return e.maintainer.CoverAt(t)
}

// Ingest appends a batch of raw tuples, invalidating any cached cover
// whose window received late data.
func (e *Engine) Ingest(b tuple.Batch) error {
	if err := e.st.Append(b); err != nil {
		return err
	}
	touched := map[int]bool{}
	for _, r := range b {
		touched[tuple.WindowIndex(r.T, e.st.WindowLength())] = true
	}
	for c := range touched {
		e.maintainer.Invalidate(c)
	}
	return nil
}

// Heatmap rasterizes the cover at time t over the data's bounding region.
func (e *Engine) Heatmap(t float64, cols, rows int) (*heatmap.Grid, error) {
	cv, err := e.maintainer.CoverAt(t)
	if err != nil {
		return nil, err
	}
	w, _ := e.st.WindowAt(t)
	region, ok := w.Bounds()
	if !ok {
		return nil, errors.New("server: no data in window")
	}
	// A corridor of bus samples can be degenerate in one axis; inflate so
	// the raster region always has area.
	region = region.Inflate(100)
	return heatmap.FromCover(cv, region, cols, rows, t)
}

// HandleMessage implements the request/response protocol over any
// transport: it maps a request message to its response message. Server
// failures become ErrorResponse rather than Go errors, since they must
// travel back over the link.
func (e *Engine) HandleMessage(req wire.Message) wire.Message {
	switch m := req.(type) {
	case wire.QueryRequest:
		v, err := e.PointQuery(m.T, m.X, m.Y)
		if err != nil {
			return wire.ErrorResponse{Msg: err.Error()}
		}
		return wire.QueryResponse{Value: v}
	case wire.ModelRequest:
		cv, err := e.maintainer.CoverAt(m.T)
		if err != nil {
			return wire.ErrorResponse{Msg: err.Error()}
		}
		resp, err := wire.ModelResponseFromCover(cv)
		if err != nil {
			return wire.ErrorResponse{Msg: err.Error()}
		}
		return resp
	default:
		return wire.ErrorResponse{Msg: fmt.Sprintf("unsupported request type %T", req)}
	}
}

// Classify returns the display band for a CO2 value, exposed here so both
// the HTTP layer and clients share one classification.
func Classify(ppm float64) eval.CO2Band { return eval.ClassifyCO2(ppm) }
