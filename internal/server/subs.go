package server

import (
	"context"

	"repro/internal/query"
	"repro/internal/subs"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// subsEvaluate is the registry's evaluator: the engine's cover-backed
// batch path. A re-evaluation triggered by an invalidation therefore
// joins (or performs) the rebuild of the dropped cover — the value
// pushed is always post-rebuild.
func (e *Engine) subsEvaluate(ctx context.Context, _ tuple.Pollutant, reqs []query.Request) ([]query.BatchResult, error) {
	return e.QueryBatchOpts(ctx, reqs, query.Options{})
}

// subsWindowLen binds subscription points to window indexes.
func (e *Engine) subsWindowLen(pol tuple.Pollutant) (float64, error) {
	st, err := e.StoreFor(pol)
	if err != nil {
		return 0, err
	}
	return st.WindowLength(), nil
}

// Subscribe registers a push subscription over pts for pollutant pol.
// The returned handle's first event is a full resync (sequence 1) with
// the initial value vector; afterwards the subscription re-evaluates
// only when an ingest invalidates a window some point is bound to, and
// pushes deltas of the changed points.
func (e *Engine) Subscribe(ctx context.Context, pol tuple.Pollutant, pts []query.Request) (subs.Handle, error) {
	if e.closed.Load() {
		return nil, ErrEngineClosed
	}
	if !e.Serves(pol) {
		return nil, query.ErrUnknownPollutant
	}
	return e.registry.Subscribe(ctx, pol, pts)
}

// Subscriptions exposes the push-subscription registry (stats, explicit
// unsubscribe, test quiescence).
func (e *Engine) Subscriptions() *subs.Registry { return e.registry }

// HandleStream implements proto.Streamer: a SubscribeRequest (bare, or
// wrapped in Forwarded by a cluster router that already resolved the
// owner) opens a push stream. Other messages fall back to the
// request/response path.
func (e *Engine) HandleStream(req wire.Message) (ack wire.Message, run func(emit func(wire.Message) error), stop func(), ok bool) {
	//ctxcheck:allow legacy ctx-less Streamer entry; the serve loop prefers HandleStreamCtx
	return e.HandleStreamCtx(context.Background(), req)
}

// HandleStreamCtx is HandleStream with a caller-supplied context
// (proto.CtxStreamer): the serve loop passes its server-lifetime
// context so subscriptions unwind on shutdown.
func (e *Engine) HandleStreamCtx(ctx context.Context, req wire.Message) (ack wire.Message, run func(emit func(wire.Message) error), stop func(), ok bool) {
	m, isSub := req.(wire.SubscribeRequest)
	if !isSub {
		if fw, isFw := req.(wire.Forwarded); isFw {
			m, isSub = fw.Inner.(wire.SubscribeRequest)
		}
	}
	if !isSub {
		return nil, nil, nil, false
	}
	noop := func(func(wire.Message) error) {}
	h, err := e.Subscribe(ctx, e.wirePollutant(m.Pollutant, false), subs.RequestFromWire(m))
	if err != nil {
		return wire.ErrorResponse{Msg: err.Error()}, noop, func() {}, true
	}
	run = func(emit func(wire.Message) error) {
		for ev := range h.Events() {
			if emit(subs.PushFromEvent(h.ID(), ev)) != nil {
				return
			}
		}
	}
	stop = func() { _ = h.Close() }
	return wire.SubscribeAck{ID: h.ID(), Points: uint16(len(m.Points))}, run, stop, true
}
