package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/geo"
	"repro/internal/heatmap"
	"repro/internal/route"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// API wraps an Engine with the HTTP/JSON interface of the EnviroMeter web
// application (§3): point queries, continuous route queries, model-cover
// downloads for smartphone clients, heatmaps, and ingestion.
type API struct {
	engine *Engine
	mux    *http.ServeMux
}

// NewAPI builds the HTTP API around engine.
func NewAPI(engine *Engine) *API {
	a := &API{engine: engine, mux: http.NewServeMux()}
	a.mux.HandleFunc("/v1/query/point", a.handlePointQuery)
	a.mux.HandleFunc("/v1/query/continuous", a.handleContinuous)
	a.mux.HandleFunc("/v1/models", a.handleModels)
	a.mux.HandleFunc("/v1/heatmap", a.handleHeatmap)
	a.mux.HandleFunc("/v1/heatmap.png", a.handleHeatmapPNG)
	a.mux.HandleFunc("/v1/route/summary", a.handleRouteSummary)
	a.mux.HandleFunc("/v1/ingest", a.handleIngest)
	a.mux.HandleFunc("/v1/stats", a.handleStats)
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	a.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func queryFloat(r *http.Request, name string) (float64, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

func queryInt(r *http.Request, name string, def int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

// pointResponse is the single point query answer shown by the web UI: the
// interpolated ppm plus the OSHA band and advice text.
type pointResponse struct {
	Value  float64 `json:"value"`
	Unit   string  `json:"unit"`
	Band   string  `json:"band"`
	Advice string  `json:"advice"`
}

// handlePointQuery serves GET /v1/query/point?t=&x=&y= — the "single point
// query mode" of the web interface.
func (a *API) handlePointQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	var t, x, y float64
	var err error
	if t, err = queryFloat(r, "t"); err == nil {
		if x, err = queryFloat(r, "x"); err == nil {
			y, err = queryFloat(r, "y")
		}
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v, err := a.engine.PointQuery(t, x, y)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	band := Classify(v)
	writeJSON(w, http.StatusOK, pointResponse{
		Value:  v,
		Unit:   tuple.CO2.Unit(),
		Band:   band.String(),
		Advice: band.Advice(),
	})
}

// continuousRequest is the recorded route: the sequence of query tuples.
type continuousRequest struct {
	Points []wire.QueryRequest `json:"points"`
}

// continuousResponse mirrors the app's route view: one value per point,
// the route average, and its band.
type continuousResponse struct {
	Values  []pointResponse `json:"values"`
	Average float64         `json:"average"`
	Band    string          `json:"band"`
	Advice  string          `json:"advice"`
}

// handleContinuous serves POST /v1/query/continuous — the "continuous
// query mode" where users select the points of a route and the app shows
// per-point values and the route average (§3).
func (a *API) handleContinuous(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	var req continuousRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %v", err))
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty route"))
		return
	}
	resp := continuousResponse{Values: make([]pointResponse, 0, len(req.Points))}
	var sum float64
	for _, p := range req.Points {
		v, err := a.engine.PointQuery(p.T, p.X, p.Y)
		if err != nil {
			writeError(w, http.StatusNotFound, fmt.Errorf("point (%v,%v): %v", p.X, p.Y, err))
			return
		}
		band := Classify(v)
		resp.Values = append(resp.Values, pointResponse{
			Value: v, Unit: tuple.CO2.Unit(), Band: band.String(), Advice: band.Advice(),
		})
		sum += v
	}
	resp.Average = sum / float64(len(req.Points))
	avgBand := Classify(resp.Average)
	resp.Band = avgBand.String()
	resp.Advice = avgBand.Advice()
	writeJSON(w, http.StatusOK, resp)
}

// handleModels serves GET /v1/models?t= — the model request e_l of the
// model-cache protocol, returning (t_n, µ, M) as JSON.
func (a *API) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	t, err := queryFloat(r, "t")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cv, err := a.engine.CoverAt(t)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	resp, err := wire.ModelResponseFromCover(cv)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// heatmapResponse carries the raster and the centroid markers.
type heatmapResponse struct {
	Grid    *heatmap.Grid            `json:"grid"`
	Markers []heatmap.CentroidMarker `json:"markers"`
}

// handleHeatmap serves GET /v1/heatmap?t=&cols=&rows= — the web UI's
// heatmap visualization data.
func (a *API) handleHeatmap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	t, err := queryFloat(r, "t")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cols, err := queryInt(r, "cols", 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rows, err := queryInt(r, "rows", 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	grid, err := a.engine.Heatmap(t, cols, rows)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	cv, err := a.engine.CoverAt(t)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	markers, err := heatmap.Markers(cv, t)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, heatmapResponse{Grid: grid, Markers: markers})
}

// handleHeatmapPNG serves GET /v1/heatmap.png?t=&cols=&rows= — the
// rendered image.
func (a *API) handleHeatmapPNG(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	t, err := queryFloat(r, "t")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cols, err := queryInt(r, "cols", 256)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rows, err := queryInt(r, "rows", 256)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	grid, err := a.engine.Heatmap(t, cols, rows)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "image/png")
	// Headers are already written; a mid-stream encode failure cannot be
	// reported to the client.
	_ = grid.WritePNG(w)
}

// routeSummaryRequest is a recorded route uploaded for review: the
// Android app's "view recorded route" flow, server side.
type routeSummaryRequest struct {
	Fixes []struct {
		T float64 `json:"t"`
		X float64 `json:"x"`
		Y float64 `json:"y"`
	} `json:"fixes"`
}

// routeSummaryResponse mirrors the app's recorded-route screen.
type routeSummaryResponse struct {
	Points []struct {
		T     float64 `json:"t"`
		X     float64 `json:"x"`
		Y     float64 `json:"y"`
		Value float64 `json:"value"`
		Band  string  `json:"band"`
	} `json:"points"`
	Average  float64 `json:"average"`
	Band     string  `json:"band"`
	Advice   string  `json:"advice"`
	Worst    int     `json:"worst"`
	LengthM  float64 `json:"lengthMeters"`
	Duration float64 `json:"durationSeconds"`
}

// handleRouteSummary serves POST /v1/route/summary.
func (a *API) handleRouteSummary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	var req routeSummaryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %v", err))
		return
	}
	rec := route.NewRecorder(route.RecorderConfig{})
	for _, f := range req.Fixes {
		rec.Add(route.Fix{T: f.T, Pos: geo.Point{X: f.X, Y: f.Y}})
	}
	rt, err := rec.Finish()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sum, err := route.Summarize(rt, a.engine.PointQuery)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	resp := routeSummaryResponse{
		Average:  sum.Average,
		Band:     sum.Band.String(),
		Advice:   sum.Advice,
		Worst:    sum.Worst,
		LengthM:  rt.Length(),
		Duration: rt.Duration(),
	}
	for _, pt := range sum.Points {
		resp.Points = append(resp.Points, struct {
			T     float64 `json:"t"`
			X     float64 `json:"x"`
			Y     float64 `json:"y"`
			Value float64 `json:"value"`
			Band  string  `json:"band"`
		}{pt.Fix.T, pt.Fix.Pos.X, pt.Fix.Pos.Y, pt.Value, pt.Band.String()})
	}
	writeJSON(w, http.StatusOK, resp)
}

// ingestRequest is a batch of raw tuples from the sensing pipeline.
type ingestRequest struct {
	Tuples []tuple.Raw `json:"tuples"`
}

// handleIngest serves POST /v1/ingest.
func (a *API) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %v", err))
		return
	}
	if err := a.engine.Ingest(req.Tuples); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"ingested": len(req.Tuples)})
}

// statsResponse summarizes server state.
type statsResponse struct {
	Tuples       int     `json:"tuples"`
	Windows      int     `json:"windows"`
	WindowLength float64 `json:"windowLength"`
	MaxTime      float64 `json:"maxTime"`
	CachedCovers int     `json:"cachedCovers"`
}

// handleStats serves GET /v1/stats.
func (a *API) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	st := a.engine.Store()
	writeJSON(w, http.StatusOK, statsResponse{
		Tuples:       st.Len(),
		Windows:      len(st.WindowIndexes()),
		WindowLength: st.WindowLength(),
		MaxTime:      st.MaxTime(),
		CachedCovers: len(a.engine.Maintainer().CachedWindows()),
	})
}
