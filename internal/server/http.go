package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/heatmap"
	"repro/internal/ingest"
	"repro/internal/query"
	"repro/internal/route"
	"repro/internal/subs"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// pointOf builds a local-frame point from request coordinates.
func pointOf(x, y float64) geo.Point { return geo.Point{X: x, Y: y} }

// API wraps an Engine with the versioned HTTP/JSON interface of the
// EnviroMeter web application (§3). The v1 surface is pollutant-aware:
// every query endpoint takes an optional ?pollutant= parameter (default:
// the engine's default pollutant) and the canonical entry point is
// GET /v1/query. Request contexts are plumbed into the engine, so a
// client that disconnects cancels its query.
//
// In a sharded deployment (NewClusterAPI) the API additionally routes:
// owned shards answer from the local engine, foreign shards forward
// through the cluster node, heatmaps and model covers scatter-gather,
// and GET /v1/cluster serves the shard ring.
type API struct {
	engine *Engine
	node   *cluster.Node // nil when single-node
	mux    *http.ServeMux
	sse    *subBroker // resume tokens for /v1/subscribe
}

// NewAPI builds the HTTP API around engine.
func NewAPI(engine *Engine) *API {
	a := &API{engine: engine, mux: http.NewServeMux(), sse: newSubBroker(sseResumeTTL)}
	a.mux.HandleFunc("/v1/query", a.handlePointQuery)
	a.mux.HandleFunc("/v1/query/point", a.handlePointQuery) // legacy alias
	a.mux.HandleFunc("/v1/query/batch", a.handleBatch)
	a.mux.HandleFunc("/v1/query/continuous", a.handleContinuous)
	a.mux.HandleFunc("/v1/subscribe", a.handleSubscribe)
	a.mux.HandleFunc("/v1/models", a.handleModels)
	a.mux.HandleFunc("/v1/heatmap", a.handleHeatmap)
	a.mux.HandleFunc("/v1/heatmap.png", a.handleHeatmapPNG)
	a.mux.HandleFunc("/v1/route/summary", a.handleRouteSummary)
	a.mux.HandleFunc("/v1/ingest", a.handleIngest)
	a.mux.HandleFunc("/v1/stats", a.handleStats)
	a.mux.HandleFunc("/v1/pollutants", a.handlePollutants)
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	a.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// asPartial recovers a partial-result marker (replicated cluster, dead
// owner, no live replica) from an error chain. A partial answer is
// still usable: the caller answers 200 with the partial scope marked
// instead of failing the whole request.
func asPartial(err error) (*cluster.PartialError, bool) {
	var pe *cluster.PartialError
	if err != nil && errors.As(err, &pe) {
		return pe, true
	}
	return nil, false
}

// partialHeaders marks a 200 response as partial: which nodes are dead
// and how many of the pollutant's shards their absence leaves stale.
func partialHeaders(w http.ResponseWriter, pe *cluster.PartialError) {
	dead := make([]string, len(pe.Dead))
	for i, n := range pe.Dead {
		dead[i] = strconv.Itoa(n)
	}
	w.Header().Set("X-Envirometer-Partial-Dead", strings.Join(dead, ","))
	w.Header().Set("X-Envirometer-Stale-Shards", strconv.Itoa(pe.StaleShards))
}

// partialJSON mirrors cluster.Partial in response bodies.
type partialJSON struct {
	Dead        []int `json:"dead"`
	StaleShards int   `json:"staleShards"`
}

// writeEngineError maps the v1 error taxonomy onto HTTP statuses.
func writeEngineError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, query.ErrUnknownPollutant), errors.Is(err, ErrNotRoutable),
		errors.Is(err, cluster.ErrTooLarge):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, query.ErrOutOfWindow), errors.Is(err, query.ErrNoCover):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, cluster.ErrNodeUnreachable):
		// A shard's owner is down: the request was fine, the cluster is
		// degraded. 502 so clients and balancers can tell the two apart.
		writeError(w, http.StatusBadGateway, err)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusNotFound, err)
	}
}

func queryFloat(r *http.Request, name string) (float64, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	// ParseFloat accepts "NaN" and "Inf"; reject them here so a malformed
	// coordinate is a 400, not a confusing downstream 404.
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("parameter %q: want a finite number", name)
	}
	return v, nil
}

func queryInt(r *http.Request, name string, def int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

// queryPollutant resolves the optional ?pollutant= parameter, defaulting
// to the engine's default pollutant.
func (a *API) queryPollutant(r *http.Request) (tuple.Pollutant, error) {
	s := r.URL.Query().Get("pollutant")
	if s == "" {
		return a.engine.Default(), nil
	}
	p, err := tuple.ParsePollutant(s)
	if err != nil {
		return 0, fmt.Errorf("%w: %q", query.ErrUnknownPollutant, s)
	}
	return p, nil
}

// queryOptions resolves the optional ?processor= and ?radius= parameters.
func queryOptions(r *http.Request) (query.Options, error) {
	var o query.Options
	if s := r.URL.Query().Get("processor"); s != "" {
		k, err := query.ParseKind(s)
		if err != nil {
			return o, err
		}
		o.Kind = k
	}
	if s := r.URL.Query().Get("radius"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			return o, fmt.Errorf("parameter %q: want a positive number", "radius")
		}
		o.Radius = v
		// A bare radius means "average the raw tuples around me" — mirror
		// the facade's WithRadius and switch to the naive method instead
		// of silently ignoring the parameter on the cover path.
		if o.Kind == "" || o.Kind == query.KindCover {
			o.Kind = query.KindNaive
		}
	}
	if s := r.URL.Query().Get("concurrency"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			return o, fmt.Errorf("parameter %q: want a non-negative integer", "concurrency")
		}
		o.Concurrency = v
	}
	return o, nil
}

// pointResponse is the single point query answer shown by the web UI: the
// interpolated value plus the pollutant, its unit, and the band/advice.
type pointResponse struct {
	Value     float64 `json:"value"`
	Pollutant string  `json:"pollutant"`
	Unit      string  `json:"unit"`
	Band      string  `json:"band"`
	Advice    string  `json:"advice"`
}

func pointResponseFor(p tuple.Pollutant, v float64) pointResponse {
	band := ClassifyFor(p, v)
	return pointResponse{
		Value:     v,
		Pollutant: p.String(),
		Unit:      p.Unit(),
		Band:      band.String(),
		Advice:    band.Advice(),
	}
}

// handlePointQuery serves GET /v1/query?t=&x=&y=&pollutant=&processor=&radius=
// (and its legacy alias /v1/query/point) — the single point query mode.
func (a *API) handlePointQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	var t, x, y float64
	var err error
	if t, err = queryFloat(r, "t"); err == nil {
		if x, err = queryFloat(r, "x"); err == nil {
			y, err = queryFloat(r, "y")
		}
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pol, err := a.queryPollutant(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts, err := queryOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v, err := a.queryValue(r.Context(), query.Request{T: t, X: x, Y: y, Pollutant: pol}, opts)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, pointResponseFor(pol, v))
}

// batchRequest is a POST /v1/query/batch body: heterogeneous requests,
// each naming its own pollutant ("CO2", "CO", "PM"; empty = default).
type batchRequest struct {
	Requests []struct {
		T         float64 `json:"t"`
		X         float64 `json:"x"`
		Y         float64 `json:"y"`
		Pollutant string  `json:"pollutant"`
	} `json:"requests"`
}

// batchItemResponse is one request's answer within a batch: a point
// response, or that request's error with the other fields zeroed.
type batchItemResponse struct {
	pointResponse
	Error string `json:"error,omitempty"`
}

// batchResponse carries one answer per request, in order, plus the count
// of requests that failed.
type batchResponse struct {
	Values []batchItemResponse `json:"values"`
	Errors int                 `json:"errors"`
}

// handleBatch serves POST /v1/query/batch?processor=&radius=&concurrency=
// — the batch entry point of the v1 API, honoring the same processor
// options as /v1/query. Requests execute concurrently on the server and
// each item succeeds or fails on its own: a request outside the retained
// windows reports an "error" in its slot without rejecting the batch.
func (a *API) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	opts, err := queryOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var br batchRequest
	if err := json.NewDecoder(r.Body).Decode(&br); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %v", err))
		return
	}
	if len(br.Requests) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	// Untagged requests inherit the route pollutant (?pollutant=, falling
	// back to the engine default) so Observatory-style /PM/v1/query/batch
	// URLs answer for PM like every other endpoint.
	routePol, err := a.queryPollutant(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	reqs := make([]query.Request, len(br.Requests))
	for i, in := range br.Requests {
		pol := routePol
		if in.Pollutant != "" {
			var err error
			if pol, err = tuple.ParsePollutant(in.Pollutant); err != nil {
				writeError(w, http.StatusBadRequest,
					fmt.Errorf("request %d: %w: %q", i, query.ErrUnknownPollutant, in.Pollutant))
				return
			}
		}
		reqs[i] = query.Request{T: in.T, X: in.X, Y: in.Y, Pollutant: pol}
	}
	rs, err := a.queryBatch(r.Context(), reqs, opts)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	resp := batchResponse{Values: make([]batchItemResponse, len(rs))}
	for i, res := range rs {
		if res.Err != nil {
			resp.Values[i] = batchItemResponse{Error: res.Err.Error()}
			resp.Errors++
			continue
		}
		resp.Values[i] = batchItemResponse{pointResponse: pointResponseFor(reqs[i].Pollutant, res.Value)}
	}
	writeJSON(w, http.StatusOK, resp)
}

// continuousRequest is the recorded route: the sequence of query tuples.
// A continuous query names one pollutant for the whole route (the
// ?pollutant= parameter); the points deliberately have no per-point
// pollutant field — mixed-pollutant workloads use /v1/query/batch.
type continuousRequest struct {
	Points []struct {
		T float64 `json:"t"`
		X float64 `json:"x"`
		Y float64 `json:"y"`
	} `json:"points"`
}

// continuousResponse mirrors the app's route view: one value per point,
// the route average, and its band.
type continuousResponse struct {
	Values  []pointResponse `json:"values"`
	Average float64         `json:"average"`
	Band    string          `json:"band"`
	Advice  string          `json:"advice"`
}

// handleContinuous serves POST /v1/query/continuous?pollutant= — the
// "continuous query mode" where users select the points of a route and
// the app shows per-point values and the route average (§3).
func (a *API) handleContinuous(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	pol, err := a.queryPollutant(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req continuousRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %v", err))
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty route"))
		return
	}
	// One batch instead of a per-point loop: on a clustered node this
	// costs one forwarded sub-batch per owner, not one hop per point.
	reqs := make([]query.Request, len(req.Points))
	for i, p := range req.Points {
		reqs[i] = query.Request{T: p.T, X: p.X, Y: p.Y, Pollutant: pol}
	}
	// Single-node routes carry an ETag over the route's cover
	// generations: a repeated poll whose covers were not invalidated
	// since answers 304 with no evaluation at all. The tag is computed
	// before evaluating, so a concurrent invalidation can only cost an
	// extra 200 — never a stale 304.
	var etag string
	if a.node == nil {
		if etag, err = a.continuousETag(pol, reqs); err == nil {
			if match := r.Header.Get("If-None-Match"); match != "" && match == etag {
				w.Header().Set("ETag", etag)
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
	}
	rs, err := a.queryBatch(r.Context(), reqs, query.Options{})
	if err != nil {
		writeEngineError(w, err)
		return
	}
	resp := continuousResponse{Values: make([]pointResponse, 0, len(rs))}
	var sum float64
	for i, res := range rs {
		if res.Err != nil {
			// The continuous mode is all-or-nothing (unlike /v1/query/batch):
			// the first failing point rejects the route, as before.
			writeEngineError(w, fmt.Errorf("point (%v,%v): %w", reqs[i].X, reqs[i].Y, res.Err))
			return
		}
		resp.Values = append(resp.Values, pointResponseFor(pol, res.Value))
		sum += res.Value
	}
	resp.Average = sum / float64(len(req.Points))
	avgBand := ClassifyFor(pol, resp.Average)
	resp.Band = avgBand.String()
	resp.Advice = avgBand.Advice()
	if etag != "" {
		w.Header().Set("ETag", etag)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleModels serves GET /v1/models?t=&pollutant= — the model request
// e_l of the model-cache protocol, returning (t_n, µ, M) as JSON.
func (a *API) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	t, err := queryFloat(r, "t")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pol, err := a.queryPollutant(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := a.modelResponse(r.Context(), pol, t)
	if pe, ok := asPartial(err); ok {
		// Dead node without a live replica: the merged cover is still
		// valid over the surviving shards, so serve it marked partial
		// instead of the pre-replication all-or-nothing 502.
		partialHeaders(w, pe)
	} else if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// heatmapResponse carries the raster and the centroid markers. Partial
// is set when a dead node's shards are missing from the raster (see
// partialJSON).
type heatmapResponse struct {
	Grid    *heatmap.Grid            `json:"grid"`
	Markers []heatmap.CentroidMarker `json:"markers"`
	Partial *partialJSON             `json:"partial,omitempty"`
}

// handleHeatmap serves GET /v1/heatmap?t=&cols=&rows=&pollutant= — the
// web UI's heatmap visualization data.
func (a *API) handleHeatmap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	t, cols, rows, pol, err := a.heatmapParams(r, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	grid, err := a.heatmapGrid(r.Context(), pol, t, cols, rows)
	pe, isPartial := asPartial(err)
	if err != nil && !isPartial {
		writeEngineError(w, err)
		return
	}
	// Markers come from the model cover: directly from the local engine
	// on a single node, merged across shards (a second scatter) when
	// clustered, so every shard's centroids appear on the map.
	var cv *core.Cover
	if a.node == nil {
		cv, err = a.engine.CoverAt(r.Context(), pol, t)
		if err != nil {
			writeEngineError(w, err)
			return
		}
	} else {
		mr, err := a.modelResponse(r.Context(), pol, t)
		if mp, ok := asPartial(err); ok {
			if pe == nil {
				pe = mp
			}
		} else if err != nil {
			writeEngineError(w, err)
			return
		}
		if cv, err = wire.CoverFromModelResponse(mr); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	markers, err := heatmap.Markers(cv, t)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := heatmapResponse{Grid: grid, Markers: markers}
	if pe != nil {
		partialHeaders(w, pe)
		resp.Partial = &partialJSON{Dead: pe.Dead, StaleShards: pe.StaleShards}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHeatmapPNG serves GET /v1/heatmap.png?t=&cols=&rows=&pollutant= —
// the rendered image.
func (a *API) handleHeatmapPNG(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	t, cols, rows, pol, err := a.heatmapParams(r, 256)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	grid, err := a.heatmapGrid(r.Context(), pol, t, cols, rows)
	if pe, ok := asPartial(err); ok {
		partialHeaders(w, pe)
	} else if err != nil {
		writeEngineError(w, err)
		return
	}
	w.Header().Set("Content-Type", "image/png")
	// Headers are already written; a mid-stream encode failure cannot be
	// reported to the client.
	_ = grid.WritePNG(w)
}

// heatmapParams parses the shared heatmap parameter set.
func (a *API) heatmapParams(r *http.Request, defSize int) (t float64, cols, rows int, pol tuple.Pollutant, err error) {
	if t, err = queryFloat(r, "t"); err != nil {
		return
	}
	if cols, err = queryInt(r, "cols", defSize); err != nil {
		return
	}
	if rows, err = queryInt(r, "rows", defSize); err != nil {
		return
	}
	pol, err = a.queryPollutant(r)
	return
}

// routeSummaryRequest is a recorded route uploaded for review: the
// Android app's "view recorded route" flow, server side.
type routeSummaryRequest struct {
	Fixes []struct {
		T float64 `json:"t"`
		X float64 `json:"x"`
		Y float64 `json:"y"`
	} `json:"fixes"`
}

// routeSummaryResponse mirrors the app's recorded-route screen.
type routeSummaryResponse struct {
	Points []struct {
		T     float64 `json:"t"`
		X     float64 `json:"x"`
		Y     float64 `json:"y"`
		Value float64 `json:"value"`
		Band  string  `json:"band"`
	} `json:"points"`
	Average  float64 `json:"average"`
	Band     string  `json:"band"`
	Advice   string  `json:"advice"`
	Worst    int     `json:"worst"`
	LengthM  float64 `json:"lengthMeters"`
	Duration float64 `json:"durationSeconds"`
}

// handleRouteSummary serves POST /v1/route/summary?pollutant=.
func (a *API) handleRouteSummary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	pol, err := a.queryPollutant(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req routeSummaryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %v", err))
		return
	}
	rec := route.NewRecorder(route.RecorderConfig{})
	for _, f := range req.Fixes {
		rec.Add(route.Fix{T: f.T, Pos: geo.Point{X: f.X, Y: f.Y}})
	}
	rt, err := rec.Finish()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Prefetch every fix's value in one batch (one hop per shard owner
	// when clustered); Summarize then consumes the results in fix order.
	fixes := rt.Fixes()
	reqs := make([]query.Request, len(fixes))
	for i, f := range fixes {
		reqs[i] = query.Request{T: f.T, X: f.Pos.X, Y: f.Pos.Y, Pollutant: pol}
	}
	rs, err := a.queryBatch(r.Context(), reqs, query.Options{})
	if err != nil {
		writeEngineError(w, err)
		return
	}
	next := 0
	sum, err := route.Summarize(rt, func(t, x, y float64) (float64, error) {
		res := rs[next]
		next++
		return res.Value, res.Err
	})
	if err != nil {
		writeEngineError(w, err)
		return
	}
	resp := routeSummaryResponse{
		Average:  sum.Average,
		Band:     sum.Band.String(),
		Advice:   sum.Advice,
		Worst:    sum.Worst,
		LengthM:  rt.Length(),
		Duration: rt.Duration(),
	}
	for _, pt := range sum.Points {
		resp.Points = append(resp.Points, struct {
			T     float64 `json:"t"`
			X     float64 `json:"x"`
			Y     float64 `json:"y"`
			Value float64 `json:"value"`
			Band  string  `json:"band"`
		}{pt.Fix.T, pt.Fix.Pos.X, pt.Fix.Pos.Y, pt.Value, pt.Band.String()})
	}
	writeJSON(w, http.StatusOK, resp)
}

// ingestRequest is a batch of raw tuples from the sensing pipeline.
type ingestRequest struct {
	Tuples    []tuple.Raw `json:"tuples"`
	Pollutant string      `json:"pollutant"`
}

// handleIngest serves POST /v1/ingest; the pollutant comes from the
// ?pollutant= parameter or the body's "pollutant" field.
func (a *API) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %v", err))
		return
	}
	pol, err := a.queryPollutant(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if r.URL.Query().Get("pollutant") == "" && req.Pollutant != "" {
		if pol, err = tuple.ParsePollutant(req.Pollutant); err != nil {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("%w: %q", query.ErrUnknownPollutant, req.Pollutant))
			return
		}
	}
	// No handler-side Validate: the pipeline runs the identical check on
	// submit and ErrInvalidBatch maps to a 400 below. TryIngest, not
	// Ingest: an overloaded server sheds uploads as 429s instead of
	// holding connections open against a full queue. A sink failure
	// surfacing through the ack (disk full, fsync error) is the server's
	// fault, not the client's: 500, never 400.
	if err := a.ingestBatch(r.Context(), pol, req.Tuples); err != nil {
		switch {
		case errors.Is(err, ingest.ErrSaturated):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrEngineClosed), errors.Is(err, ingest.ErrPipelineClosed):
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, query.ErrUnknownPollutant):
			writeEngineError(w, err)
		case errors.Is(err, ingest.ErrInvalidBatch):
			writeError(w, http.StatusBadRequest, err)
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			writeEngineError(w, err) // 503 / 504
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"ingested": len(req.Tuples)})
}

// pollutantStats summarizes one shard.
type pollutantStats struct {
	Tuples       int     `json:"tuples"`
	Windows      int     `json:"windows"`
	MaxTime      float64 `json:"maxTime"`
	CachedCovers int     `json:"cachedCovers"`
}

// ingestStatsJSON mirrors ingest.PipelineStats on the wire.
type ingestStatsJSON struct {
	Submitted int64 `json:"submitted"`
	Tuples    int64 `json:"tuples"`
	Appends   int64 `json:"appends"`
	Coalesced int64 `json:"coalesced"`
	Rejected  int64 `json:"rejected"`
	Errors    int64 `json:"errors"`
	Queued    int64 `json:"queued"`
}

// maintenanceStatsJSON mirrors core.SchedulerStats on the wire.
type maintenanceStatsJSON struct {
	Scheduled int64 `json:"scheduled"`
	Built     int64 `json:"built"`
	Skipped   int64 `json:"skipped"`
	Failed    int64 `json:"failed"`
	Dropped   int64 `json:"dropped"`
	QueueLen  int   `json:"queueLen"`
	Inflight  int   `json:"inflight"`
}

// checkpointStatsJSON mirrors the engine's aggregated CheckpointStats
// on the wire: checkpoint/compaction activity plus what the last Open
// recovered from.
type checkpointStatsJSON struct {
	Checkpoints          int64 `json:"checkpoints"`
	Failures             int64 `json:"failures"`
	SegmentsDeleted      int64 `json:"segmentsDeleted"`
	LastWindows          int64 `json:"lastWindows"`
	LastTuples           int64 `json:"lastTuples"`
	RecoveredShards      int   `json:"recoveredShards"`
	SegmentsReplayed     int   `json:"segmentsReplayed"`
	TuplesReplayed       int   `json:"tuplesReplayed"`
	TuplesFromCheckpoint int   `json:"tuplesFromCheckpoint"`
}

// columnarStatsJSON mirrors the engine's aggregated ColumnarStats on
// the wire: the columnar checkpoint sidecar write/scan counters.
type columnarStatsJSON struct {
	Enabled             bool  `json:"enabled"`
	SidecarsWritten     int64 `json:"sidecarsWritten"`
	BlocksWritten       int64 `json:"blocksWritten"`
	WriteFailures       int64 `json:"writeFailures"`
	LazyWindows         int64 `json:"lazyWindows"`
	Materializations    int64 `json:"materializations"`
	MaterializeFailures int64 `json:"materializeFailures"`
	FallbackReplays     int64 `json:"fallbackReplays"`
	BlocksScanned       int64 `json:"blocksScanned"`
	BlocksPruned        int64 `json:"blocksPruned"`
	MmapReads           int64 `json:"mmapReads"`
	ReadAtReads         int64 `json:"readAtReads"`
	BytesRead           int64 `json:"bytesRead"`
}

// statsResponse summarizes server state. The top-level fields describe
// the default pollutant (legacy shape); PerPollutant breaks all shards
// out, Ingest/Maintenance describe the write pipeline and the
// background cover scheduler, and Checkpoint the durability
// checkpoints and last recovery.
type statsResponse struct {
	Tuples       int                       `json:"tuples"`
	Windows      int                       `json:"windows"`
	WindowLength float64                   `json:"windowLength"`
	MaxTime      float64                   `json:"maxTime"`
	CachedCovers int                       `json:"cachedCovers"`
	Default      string                    `json:"defaultPollutant"`
	PerPollutant map[string]pollutantStats `json:"perPollutant"`
	Ingest       ingestStatsJSON           `json:"ingest"`
	Maintenance  maintenanceStatsJSON      `json:"maintenance"`
	Checkpoint   checkpointStatsJSON       `json:"checkpoint"`
	// Columnar carries the columnar checkpoint-sidecar counters: blocks
	// written and scanned, zone-map prunes, mmap vs pread reads, lazy
	// recoveries and row fallback replays.
	Columnar columnarStatsJSON `json:"columnar"`
	// Cluster carries the routing counters when this server is a member
	// of a sharded cluster (see /v1/cluster for the full ring).
	Cluster *clusterStatsJSON `json:"cluster,omitempty"`
	// Subscriptions carries the push-subscription registry counters
	// (active subs, invalidation matches, re-evals avoided, push/drop
	// totals).
	Subscriptions subs.Stats `json:"subscriptions"`
}

// handleStats serves GET /v1/stats.
func (a *API) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	// The top-level legacy fields describe the requested pollutant
	// (?pollutant=, default: the engine default), so Observatory-style
	// routed URLs like /PM/v1/stats report that pollutant's shard.
	top, err := a.queryPollutant(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !a.engine.Serves(top) {
		writeEngineError(w, fmt.Errorf("%w: %v not monitored", query.ErrUnknownPollutant, top))
		return
	}
	ps := a.engine.PipelineStats()
	ss := a.engine.SchedulerStats()
	cs := a.engine.CheckpointStats()
	cols := a.engine.ColumnarStats()
	var clusterSec *clusterStatsJSON
	if a.node != nil {
		st := a.node.Stats()
		clusterSec = &clusterStatsJSON{
			Local: st.Local, Forwarded: st.Forwarded, ForwardedIn: st.ForwardedIn,
			Scatters: st.Scatters, NotOwner: st.NotOwner, Errors: st.Errors,
		}
	}
	resp := statsResponse{
		Cluster:       clusterSec,
		Subscriptions: a.engine.Subscriptions().Stats(),
		Default:       a.engine.Default().String(),
		PerPollutant:  make(map[string]pollutantStats, len(a.engine.Pollutants())),
		Ingest: ingestStatsJSON{
			Submitted: ps.Submitted, Tuples: ps.Tuples, Appends: ps.Appends,
			Coalesced: ps.Coalesced, Rejected: ps.Rejected, Errors: ps.Errors,
			Queued: ps.Queued,
		},
		Maintenance: maintenanceStatsJSON{
			Scheduled: ss.Scheduled, Built: ss.Built, Skipped: ss.Skipped,
			Failed: ss.Failed, Dropped: ss.Dropped, QueueLen: ss.QueueLen,
			Inflight: ss.Inflight,
		},
		Checkpoint: checkpointStatsJSON{
			Checkpoints: cs.Checkpoints, Failures: cs.Failures,
			SegmentsDeleted: cs.SegmentsDeleted,
			LastWindows:     cs.LastWindows, LastTuples: cs.LastTuples,
			RecoveredShards:  cs.RecoveredShards,
			SegmentsReplayed: cs.SegmentsReplayed, TuplesReplayed: cs.TuplesReplayed,
			TuplesFromCheckpoint: cs.TuplesFromCheckpoint,
		},
		Columnar: columnarStatsJSON{
			Enabled:         cols.Enabled,
			SidecarsWritten: cols.SidecarsWritten, BlocksWritten: cols.BlocksWritten,
			WriteFailures: cols.WriteFailures,
			LazyWindows:   cols.LazyWindows, Materializations: cols.Materializations,
			MaterializeFailures: cols.MaterializeFailures,
			FallbackReplays:     cols.FallbackReplays,
			BlocksScanned:       cols.BlocksScanned, BlocksPruned: cols.BlocksPruned,
			MmapReads: cols.MmapReads, ReadAtReads: cols.ReadAtReads,
			BytesRead: cols.BytesRead,
		},
	}
	for _, pol := range a.engine.Pollutants() {
		st, _ := a.engine.StoreFor(pol)
		mnt, _ := a.engine.MaintainerFor(pol)
		ps := pollutantStats{
			Tuples:       st.Len(),
			Windows:      len(st.WindowIndexes()),
			MaxTime:      st.MaxTime(),
			CachedCovers: len(mnt.CachedWindows()),
		}
		resp.PerPollutant[pol.String()] = ps
		if pol == top {
			resp.Tuples = ps.Tuples
			resp.Windows = ps.Windows
			resp.WindowLength = st.WindowLength()
			resp.MaxTime = ps.MaxTime
			resp.CachedCovers = ps.CachedCovers
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePollutants serves GET /v1/pollutants — pollutant discovery for
// clients that render a selector.
func (a *API) handlePollutants(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	names := make([]string, 0, len(a.engine.Pollutants()))
	for _, p := range a.engine.Pollutants() {
		names = append(names, p.String())
	}
	writeJSON(w, http.StatusOK, map[string][]string{"pollutants": names})
}
