package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestEndpointMethodDiscipline sweeps wrong HTTP methods across all
// endpoints.
func TestEndpointMethodDiscipline(t *testing.T) {
	api := NewAPI(newTestEngine(t))
	srv := httptest.NewServer(api)
	defer srv.Close()

	cases := []struct {
		method, path string
	}{
		{http.MethodPost, "/v1/models?t=1"},
		{http.MethodPost, "/v1/heatmap?t=1"},
		{http.MethodPost, "/v1/heatmap.png?t=1"},
		{http.MethodGet, "/v1/ingest"},
		{http.MethodPost, "/v1/stats"},
		{http.MethodPut, "/v1/query/continuous"},
	}
	for _, tt := range cases {
		req, err := http.NewRequest(tt.method, srv.URL+tt.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tt.method, tt.path, resp.StatusCode)
		}
	}
}

// TestEndpointParameterErrors sweeps missing/invalid parameters.
func TestEndpointParameterErrors(t *testing.T) {
	api := NewAPI(newTestEngine(t))
	srv := httptest.NewServer(api)
	defer srv.Close()

	cases := []string{
		"/v1/models",                     // missing t
		"/v1/models?t=zzz",               // bad t
		"/v1/heatmap",                    // missing t
		"/v1/heatmap?t=100&cols=abc",     // bad cols
		"/v1/heatmap?t=100&rows=abc",     // bad rows
		"/v1/heatmap.png",                // missing t
		"/v1/heatmap.png?t=100&cols=abc", // bad cols
		"/v1/heatmap.png?t=100&rows=x",   // bad rows
	}
	for _, path := range cases {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

// TestEndpointEmptyWindowErrors sweeps queries into windows with no data.
func TestEndpointEmptyWindowErrors(t *testing.T) {
	api := NewAPI(newTestEngine(t))
	srv := httptest.NewServer(api)
	defer srv.Close()

	cases := []string{
		"/v1/models?t=999999999",
		"/v1/heatmap?t=999999999",
		"/v1/heatmap.png?t=999999999",
	}
	for _, path := range cases {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestIngestBadBody covers malformed ingestion payloads.
func TestIngestBadBody(t *testing.T) {
	api := NewAPI(newTestEngine(t))
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/ingest", "application/json",
		strings.NewReader("this is not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body: status %d", resp.StatusCode)
	}
}

// TestContinuousQueryOutsideData covers the not-found path of the
// continuous endpoint.
func TestContinuousQueryOutsideData(t *testing.T) {
	api := NewAPI(newTestEngine(t))
	srv := httptest.NewServer(api)
	defer srv.Close()

	body := `{"points":[{"t":999999999,"x":0,"y":0}]}`
	resp, err := http.Post(srv.URL+"/v1/query/continuous", "application/json",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

// TestHeatmapDefaults covers the default cols/rows path.
func TestHeatmapDefaults(t *testing.T) {
	api := NewAPI(newTestEngine(t))
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/heatmap?t=300")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
