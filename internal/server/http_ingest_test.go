package server

// Satellite coverage for POST /v1/ingest error paths: malformed body,
// unknown pollutant, saturated queue -> 429, and engine-closed -> 503.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/kmeans"
	"repro/internal/store"
	"repro/internal/tuple"
)

func newIngestAPI(t *testing.T, opts Options) (*Engine, *httptest.Server) {
	t.Helper()
	st := store.MustOpenMemory(100)
	e, err := NewMultiEngineOpts(map[tuple.Pollutant]*store.Store{tuple.CO2: st},
		core.Config{Cluster: kmeans.Config{Seed: 21}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewAPI(e))
	t.Cleanup(srv.Close)
	t.Cleanup(func() { e.Close() })
	return e, srv
}

func postIngest(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestHTTPIngestMalformedBody(t *testing.T) {
	_, srv := newIngestAPI(t, Options{})
	for _, body := range []string{
		"{not json",
		`{"tuples": "nope"}`,
		`{"tuples": [{"t": "NaN"}]}`,
	} {
		if resp := postIngest(t, srv.URL, body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
	}
	// Invalid tuple values decode but fail validation: still a 400.
	if resp := postIngest(t, srv.URL, `{"tuples": [{"t": -1, "x": 0, "y": 0, "s": 400}]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid tuple: status = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPIngestUnknownPollutant(t *testing.T) {
	_, srv := newIngestAPI(t, Options{}) // serves CO2 only
	// Unparseable pollutant name, in the query and in the body.
	if resp := postIngest(t, srv.URL+"/v1/ingest?pollutant=plutonium", `{"tuples": []}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad ?pollutant=: status = %d, want 400", resp.StatusCode)
	}
	if resp := postIngest(t, srv.URL, `{"pollutant": "plutonium", "tuples": []}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body pollutant: status = %d, want 400", resp.StatusCode)
	}
	// Valid but unmonitored pollutant.
	resp := postIngest(t, srv.URL, `{"pollutant": "PM", "tuples": [{"t": 1, "x": 0, "y": 0, "s": 20}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unmonitored pollutant: status = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPIngestSaturatedQueueReturns429(t *testing.T) {
	e, srv := newIngestAPI(t, Options{Pipeline: ingest.PipelineConfig{QueueDepth: 1}})
	gateEntered := make(chan struct{}, 8)
	release := make(chan struct{})
	e.ingestTestGate = func(tuple.Pollutant) {
		gateEntered <- struct{}{}
		<-release
	}

	tuples := `{"tuples": [{"t": 1, "x": 0, "y": 0, "s": 400}]}`
	// First upload occupies the worker inside the gated sink.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := postIngest(t, srv.URL, tuples)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("occupying upload: status = %d", resp.StatusCode)
		}
	}()
	<-gateEntered
	// Second fills the depth-1 queue (its ack arrives after release).
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := postIngest(t, srv.URL, tuples)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("queued upload: status = %d", resp.StatusCode)
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for e.PipelineStats().Queued < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %+v", e.PipelineStats())
		}
		time.Sleep(time.Millisecond)
	}

	// Third must be shed with 429 + Retry-After.
	resp := postIngest(t, srv.URL, tuples)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated ingest: status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["error"] == "" {
		t.Errorf("429 body = %v, %v; want an error field", body, err)
	}
	close(release) // let the occupying and queued appends finish
	wg.Wait()
}

func TestHTTPIngestClosedEngineReturns503(t *testing.T) {
	e, srv := newIngestAPI(t, Options{})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	resp := postIngest(t, srv.URL, `{"tuples": [{"t": 1, "x": 0, "y": 0, "s": 400}]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest on closed engine: status = %d, want 503", resp.StatusCode)
	}
}

// TestHTTPIngestSuccessReportsCount pins the happy path alongside the
// error paths: the response carries the accepted tuple count and the
// data is queryable afterwards.
func TestHTTPIngestSuccessReportsCount(t *testing.T) {
	_, srv := newIngestAPI(t, Options{})
	var sb strings.Builder
	sb.WriteString(`{"tuples": [`)
	for i := 0; i < 30; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"t": %d, "x": %d, "y": %d, "s": 420}`, i*3, i*10%500, i*7%500)
	}
	sb.WriteString(`]}`)
	resp, err := http.Post(srv.URL+"/v1/ingest", "application/json", bytes.NewReader([]byte(sb.String())))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["ingested"] != 30 {
		t.Fatalf("ingested = %d, want 30", out["ingested"])
	}
}
