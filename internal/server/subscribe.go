package server

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/query"
	"repro/internal/subs"
	"repro/internal/tuple"
)

// sseResumeTTL is how long a subscription outlives a dropped SSE
// connection waiting for a Last-Event-ID resume before it is closed.
const sseResumeTTL = 60 * time.Second

// subEntry is one SSE-attached subscription in the broker.
type subEntry struct {
	tok      string
	h        subs.Handle
	attached bool
	timer    *time.Timer // pending expiry while detached
}

// subBroker maps resume tokens to live subscription handles so an SSE
// client that reconnects with Last-Event-ID reattaches to the same
// subscription (and its buffered events) instead of re-subscribing.
type subBroker struct {
	ttl time.Duration

	mu      sync.Mutex
	entries map[string]*subEntry
}

func newSubBroker(ttl time.Duration) *subBroker {
	return &subBroker{ttl: ttl, entries: make(map[string]*subEntry)}
}

// create registers h under a fresh token, attached.
func (b *subBroker) create(h subs.Handle) *subEntry {
	var raw [8]byte
	_, _ = rand.Read(raw[:])
	e := &subEntry{tok: hex.EncodeToString(raw[:]), h: h, attached: true}
	b.mu.Lock()
	b.entries[e.tok] = e
	b.mu.Unlock()
	return e
}

// errAttached rejects a second concurrent consumer of one subscription.
var errAttached = errors.New("server: subscription already has an attached consumer")

// attach reattaches a resuming client. It returns (nil, nil) for an
// unknown or expired token — the caller starts a fresh subscription.
func (b *subBroker) attach(tok string) (*subEntry, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[tok]
	if e == nil {
		return nil, nil
	}
	if e.attached {
		return nil, errAttached
	}
	if e.timer != nil {
		e.timer.Stop()
		e.timer = nil
	}
	e.attached = true
	return e, nil
}

// release detaches a consumer, arming the expiry that closes the
// subscription if no resume arrives within the TTL.
func (b *subBroker) release(e *subEntry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !e.attached {
		return
	}
	e.attached = false
	e.timer = time.AfterFunc(b.ttl, func() { b.expire(e) })
}

func (b *subBroker) expire(e *subEntry) {
	b.mu.Lock()
	if cur := b.entries[e.tok]; cur != e || e.attached {
		b.mu.Unlock()
		return
	}
	delete(b.entries, e.tok)
	b.mu.Unlock()
	_ = e.h.Close()
}

// remove drops e immediately (its handle is already closed).
func (b *subBroker) remove(e *subEntry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.entries[e.tok] == e {
		delete(b.entries, e.tok)
	}
}

// subscribeHandle opens a subscription through the cluster node when
// one is configured (merged pushes from every shard owner), else the
// local engine.
func (a *API) subscribeHandle(ctx context.Context, pol tuple.Pollutant, pts []query.Request) (subs.Handle, error) {
	if a.node == nil {
		return a.engine.Subscribe(ctx, pol, pts)
	}
	return a.node.Subscribe(ctx, pol, pts)
}

// parseRoutePoints parses the ?points= parameter: "t,x,y" triples
// separated by semicolons (URL-escape them: %3B — Go's HTTP server
// rejects raw semicolons in query strings) or whitespace.
func parseRoutePoints(s string) ([]query.Request, error) {
	if s == "" {
		return nil, errors.New("missing query parameter \"points\" (t,x,y;t,x,y;...)")
	}
	parts := strings.FieldsFunc(s, func(r rune) bool {
		return r == ';' || r == ' ' || r == '\t' || r == '\n'
	})
	pts := make([]query.Request, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("point %q: want t,x,y", part)
		}
		var vals [3]float64
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("point %q: want finite numbers", part)
			}
			vals[i] = v
		}
		pts = append(pts, query.Request{T: vals[0], X: vals[1], Y: vals[2]})
	}
	if len(pts) == 0 {
		return nil, errors.New("empty route")
	}
	return pts, nil
}

// parseEventID splits an SSE event ID "<token>.<seq>".
func parseEventID(id string) (tok string, seq uint64, ok bool) {
	i := strings.LastIndexByte(id, '.')
	if i <= 0 {
		return "", 0, false
	}
	seq, err := strconv.ParseUint(id[i+1:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return id[:i], seq, true
}

// handleSubscribe serves GET /v1/subscribe?pollutant=&points=t,x,y;...
// as a Server-Sent-Events stream. Every event carries id "<token>.<seq>";
// a client reconnecting with Last-Event-ID (or ?lastEventId=) within the
// resume TTL reattaches to the same server-side subscription: if pushes
// were produced meanwhile it first receives a full "resync" event, so a
// resumed stream can never silently miss a delta. Unknown or expired
// tokens fall back to a fresh subscription (the points parameter is
// required either way, matching EventSource's reconnect-same-URL
// behaviour). Event types: "push" (delta), "resync" (full vector —
// initial state, overflow recovery, resume), "error"
// (subscription-level, e.g. a dead shard owner).
func (a *API) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, errors.New("response writer cannot stream"))
		return
	}
	pol, err := a.queryPollutant(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	lastID := r.Header.Get("Last-Event-ID")
	if lastID == "" {
		lastID = r.URL.Query().Get("lastEventId")
	}
	var (
		entry   *subEntry
		skipTo  uint64 // drop queued events at or below this sequence
		resumed bool
	)
	if lastID != "" {
		if tok, seq, ok := parseEventID(lastID); ok {
			e, err := a.sse.attach(tok)
			if err != nil {
				writeError(w, http.StatusConflict, err)
				return
			}
			if e != nil {
				entry, skipTo, resumed = e, seq, true
			}
		}
	}
	if entry == nil {
		pts, err := parseRoutePoints(r.URL.Query().Get("points"))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		h, err := a.subscribeHandle(r.Context(), pol, pts)
		if err != nil {
			writeEngineError(w, err)
			return
		}
		entry = a.sse.create(h)
	}
	h := entry.h
	defer a.sse.release(entry)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	send := func(ev subs.Event) bool {
		kind := "push"
		switch {
		case ev.Resync:
			kind = "resync"
		case ev.Err != "":
			kind = "error"
		}
		body, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %s.%d\nevent: %s\ndata: %s\n\n", entry.tok, ev.Seq, kind, body); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	// A resumed client that missed pushes gets the full vector first;
	// queued events it already saw (or that the snapshot covers) are
	// skipped below.
	if resumed && h.Seq() != skipTo {
		snap := h.Snapshot()
		skipTo = snap.Seq
		if !send(snap) {
			return
		}
	}

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case ev, ok := <-h.Events():
			if !ok {
				// Closed server-side (unsubscribe or shutdown): the token
				// is dead, remove it so a resume starts fresh.
				a.sse.remove(entry)
				return
			}
			if ev.Seq <= skipTo {
				continue
			}
			if !send(ev) {
				return
			}
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// continuousETag hashes a continuous-query route — its points and, per
// distinct route window, the window's cover generation — into an entity
// tag. Computed BEFORE evaluation, so a concurrent invalidation can only
// make a later If-None-Match miss (an extra 200), never serve a stale
// 304. Single-node only: a routed batch would need the foreign shards'
// generations.
func (a *API) continuousETag(pol tuple.Pollutant, reqs []query.Request) (string, error) {
	st, err := a.engine.StoreFor(pol)
	if err != nil {
		return "", err
	}
	mnt, err := a.engine.MaintainerFor(pol)
	if err != nil {
		return "", err
	}
	hsh := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, _ = hsh.Write(buf[:])
	}
	put(uint64(pol))
	put(uint64(len(reqs)))
	seen := make(map[int]struct{})
	for _, q := range reqs {
		put(math.Float64bits(q.T))
		put(math.Float64bits(q.X))
		put(math.Float64bits(q.Y))
		c := tuple.WindowIndex(q.T, st.WindowLength())
		if _, ok := seen[c]; !ok {
			seen[c] = struct{}{}
			put(uint64(c))
			put(mnt.Generation(c))
		}
	}
	return fmt.Sprintf("\"cq-%016x\"", hsh.Sum64()), nil
}
