package server

// Engine-level columnar tests: the checkpoint singleflight that
// serializes the periodic ticker against manual triggers, and the
// cross-path equivalence property — Query, CoverAt and Heatmap must be
// byte-identical whether a recovered shard scans columnar blocks or
// replays row frames.

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kmeans"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/tuple"
)

func columnarStores(t *testing.T, root string, enabled bool) map[tuple.Pollutant]*store.Store {
	t.Helper()
	out := make(map[tuple.Pollutant]*store.Store)
	for _, pol := range []tuple.Pollutant{tuple.CO2, tuple.PM} {
		st, err := store.Open(store.Config{
			WindowLength: 600,
			Dir:          filepath.Join(root, pol.String()),
			Columnar:     store.ColumnarConfig{Enabled: enabled},
		})
		if err != nil {
			t.Fatal(err)
		}
		out[pol] = st
	}
	return out
}

// copyTree duplicates the per-pollutant store directories so two
// engines can recover the same on-disk state independently.
func copyTree(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	pols, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pols {
		if !p.IsDir() {
			continue
		}
		sub := filepath.Join(dst, p.Name())
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		files, err := os.ReadDir(filepath.Join(src, p.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			if f.IsDir() {
				continue
			}
			data, err := os.ReadFile(filepath.Join(src, p.Name(), f.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(sub, f.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	return dst
}

// TestEngineColumnarEquivalence is the satellite property test at the
// API layer: after a checkpointed restart, an engine whose shards scan
// columnar blocks and one replaying row frames must return bit-equal
// answers for cover queries, cover payloads, and both heatmap forms.
func TestEngineColumnarEquivalence(t *testing.T) {
	root := t.TempDir()
	stores := columnarStores(t, root, true)
	e, err := NewMultiEngine(stores, core.Config{Cluster: kmeans.Config{Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))
	for _, pol := range []tuple.Pollutant{tuple.CO2, tuple.PM} {
		var b tuple.Batch
		for c := 0; c < 3; c++ {
			for i := 0; i < 200; i++ {
				x, y := rng.Float64()*2000, rng.Float64()*1500
				b = append(b, tuple.Raw{
					T: float64(c)*600 + rng.Float64()*600,
					X: x, Y: y,
					S: 400 + 0.04*x + 0.03*y + rng.NormFloat64(),
				})
			}
		}
		if err := e.Ingest(ctx, pol, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	for _, st := range stores {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}

	rootCol, rootRow := copyTree(t, root), copyTree(t, root)
	storesCol := columnarStores(t, rootCol, true)
	storesRow := columnarStores(t, rootRow, false)
	cfg := core.Config{Cluster: kmeans.Config{Seed: 11}}
	ec, err := NewMultiEngine(storesCol, cfg)
	if err != nil {
		t.Fatal(err)
	}
	er, err := NewMultiEngine(storesRow, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ec.Close()
		er.Close()
		for _, st := range storesCol {
			st.Close()
		}
		for _, st := range storesRow {
			st.Close()
		}
	}()

	cs := ec.ColumnarStats()
	if !cs.Enabled || cs.LazyWindows == 0 {
		t.Fatalf("columnar engine stats %+v: want lazily recovered windows", cs)
	}
	if rs := er.ColumnarStats(); rs.Enabled {
		t.Fatalf("row engine stats %+v: columnar must be off", rs)
	}

	for _, pol := range []tuple.Pollutant{tuple.CO2, tuple.PM} {
		for i := 0; i < 60; i++ {
			req := query.Request{
				T:         rng.Float64() * 1800,
				X:         rng.Float64() * 2000,
				Y:         rng.Float64() * 1500,
				Pollutant: pol,
			}
			vc, errC := ec.Query(ctx, req)
			vr, errR := er.Query(ctx, req)
			if (errC == nil) != (errR == nil) {
				t.Fatalf("%v query %+v: errors diverge: %v vs %v", pol, req, errC, errR)
			}
			if errC == nil && math.Float64bits(vc) != math.Float64bits(vr) {
				t.Fatalf("%v query %+v: %v vs %v", pol, req, vc, vr)
			}
		}
		for c := 0; c < 3; c++ {
			tt := float64(c)*600 + 300
			cvc, errC := ec.CoverAt(ctx, pol, tt)
			cvr, errR := er.CoverAt(ctx, pol, tt)
			if (errC == nil) != (errR == nil) {
				t.Fatalf("%v cover t=%v: errors diverge: %v vs %v", pol, tt, errC, errR)
			}
			if errC != nil {
				continue
			}
			if cvc.Size() != cvr.Size() {
				t.Fatalf("%v cover t=%v: size %d vs %d", pol, tt, cvc.Size(), cvr.Size())
			}
			gc, errC := ec.Heatmap(ctx, pol, tt, 16, 12)
			gr, errR := er.Heatmap(ctx, pol, tt, 16, 12)
			if errC != nil || errR != nil {
				t.Fatalf("%v heatmap t=%v: %v / %v", pol, tt, errC, errR)
			}
			if gc.Region != gr.Region {
				t.Fatalf("%v heatmap t=%v: region %+v vs %+v", pol, tt, gc.Region, gr.Region)
			}
			for i := range gc.Values {
				if math.Float64bits(gc.Values[i]) != math.Float64bits(gr.Values[i]) {
					t.Fatalf("%v heatmap t=%v cell %d: %v vs %v", pol, tt, i, gc.Values[i], gr.Values[i])
				}
			}
			region := gc.Region.Inflate(-50)
			rc, errC := ec.HeatmapRegion(ctx, pol, tt, 8, 8, region)
			rr, errR := er.HeatmapRegion(ctx, pol, tt, 8, 8, region)
			if errC != nil || errR != nil {
				t.Fatalf("%v heatmap region t=%v: %v / %v", pol, tt, errC, errR)
			}
			for i := range rc.Values {
				if math.Float64bits(rc.Values[i]) != math.Float64bits(rr.Values[i]) {
					t.Fatalf("%v heatmap region t=%v cell %d differs", pol, tt, i)
				}
			}
		}
	}
	cs = ec.ColumnarStats()
	if cs.BlocksScanned == 0 || cs.Materializations == 0 {
		t.Fatalf("columnar engine stats %+v: queries did not touch the block path", cs)
	}

	// The stats endpoint must expose the columnar section.
	srv := httptest.NewServer(NewAPI(ec))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Columnar struct {
			Enabled          bool  `json:"enabled"`
			SidecarsWritten  int64 `json:"sidecarsWritten"`
			LazyWindows      int64 `json:"lazyWindows"`
			Materializations int64 `json:"materializations"`
			BlocksScanned    int64 `json:"blocksScanned"`
			BytesRead        int64 `json:"bytesRead"`
		} `json:"columnar"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !body.Columnar.Enabled || body.Columnar.BlocksScanned == 0 ||
		body.Columnar.Materializations == 0 || body.Columnar.BytesRead == 0 {
		t.Errorf("/v1/stats columnar section = %+v", body.Columnar)
	}
}

// TestEngineCheckpointSingleflight drives the periodic ticker against
// concurrent manual Checkpoint calls and concurrent ingest: the
// regression shape for the ticker/manual race. All calls must succeed,
// and late arrivals must join the in-flight pass rather than stack.
func TestEngineCheckpointSingleflight(t *testing.T) {
	root := t.TempDir()
	stores := columnarStores(t, root, true)
	e, err := NewMultiEngineOpts(stores, core.Config{Cluster: kmeans.Config{Seed: 3}}, Options{
		Checkpoint: CheckpointConfig{Interval: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	errCh := make(chan error, 16) //bounded: one slot per goroutine below
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				b := tuple.Batch{{T: float64(g*100 + i), X: float64(i), Y: float64(g), S: 410}}
				if err := e.Ingest(ctx, tuple.CO2, b); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if err := e.Checkpoint(); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("concurrent checkpoint/ingest: %v", err)
	}
	cs := e.CheckpointStats()
	if cs.Failures != 0 {
		t.Fatalf("CheckpointStats %+v: failures under concurrency", cs)
	}
	if cs.Checkpoints == 0 {
		t.Fatal("no checkpoints completed")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	for _, st := range stores {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
