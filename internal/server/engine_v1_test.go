package server

// Tests for the multi-pollutant v1 engine: shard isolation, error
// taxonomy, batch cancellation, processor options, and pollutant routing
// through HandleMessage.

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/kmeans"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// newMultiEngine builds an engine with distinct linear fields for CO2
// and PM so cross-shard leaks are detectable by magnitude.
func newMultiEngine(t *testing.T) *Engine {
	t.Helper()
	mk := func(base, slope float64) *store.Store {
		st := store.MustOpenMemory(600)
		rng := rand.New(rand.NewSource(5))
		var b tuple.Batch
		for i := 0; i < 400; i++ {
			x, y := rng.Float64()*2000, rng.Float64()*2000
			b = append(b, tuple.Raw{T: rng.Float64() * 600, X: x, Y: y, S: base + slope*x})
		}
		if err := st.Append(b); err != nil {
			t.Fatal(err)
		}
		return st
	}
	e, err := NewMultiEngine(map[tuple.Pollutant]*store.Store{
		tuple.CO2: mk(420, 0.05),
		tuple.PM:  mk(20, 0.005),
	}, core.Config{Cluster: kmeans.Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestMultiEngineShardIsolation(t *testing.T) {
	e := newMultiEngine(t)
	ctx := context.Background()
	co2, err := e.Query(ctx, query.Request{T: 300, X: 1000, Y: 1000, Pollutant: tuple.CO2})
	if err != nil {
		t.Fatal(err)
	}
	pm, err := e.Query(ctx, query.Request{T: 300, X: 1000, Y: 1000, Pollutant: tuple.PM})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(co2-470) > 30 {
		t.Errorf("CO2 = %v, want ~470", co2)
	}
	if math.Abs(pm-25) > 10 {
		t.Errorf("PM = %v, want ~25", pm)
	}
	if got := e.Pollutants(); len(got) != 2 || got[0] != tuple.CO2 || got[1] != tuple.PM {
		t.Errorf("Pollutants = %v", got)
	}
	if !e.Serves(tuple.PM) || e.Serves(tuple.CO) {
		t.Error("Serves misreports the shard set")
	}
}

func TestEngineErrorTaxonomy(t *testing.T) {
	e := newMultiEngine(t)
	ctx := context.Background()
	if _, err := e.Query(ctx, query.Request{T: 300, Pollutant: tuple.CO}); !errors.Is(err, query.ErrUnknownPollutant) {
		t.Errorf("unmonitored pollutant: %v", err)
	}
	if _, err := e.Query(ctx, query.Request{T: 1e9}); !errors.Is(err, query.ErrOutOfWindow) {
		t.Errorf("empty window: %v", err)
	}
	if _, err := e.Query(ctx, query.Request{T: -3}); !errors.Is(err, query.ErrOutOfWindow) {
		t.Errorf("negative time: %v", err)
	}
	if _, err := e.CoverAt(ctx, tuple.CO, 300); !errors.Is(err, query.ErrUnknownPollutant) {
		t.Errorf("CoverAt unmonitored: %v", err)
	}
	if err := e.Ingest(ctx, tuple.CO, tuple.Batch{{T: 1, S: 1}}); !errors.Is(err, query.ErrUnknownPollutant) {
		t.Errorf("Ingest unmonitored: %v", err)
	}
	if _, err := e.Heatmap(ctx, tuple.CO, 300, 8, 8); !errors.Is(err, query.ErrUnknownPollutant) {
		t.Errorf("Heatmap unmonitored: %v", err)
	}
}

func TestEngineBatchCancellation(t *testing.T) {
	e := newMultiEngine(t)
	reqs := make([]query.Request, 32)
	for i := range reqs {
		reqs[i] = query.Request{T: 300, X: float64(i * 10), Y: 500}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.QueryBatch(ctx, reqs); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch: %v", err)
	}
	vs, err := e.QueryBatch(context.Background(), reqs)
	if err != nil || len(vs) != len(reqs) {
		t.Fatalf("live batch: %d values, err %v", len(vs), err)
	}
	if _, err := e.QueryBatch(context.Background(), nil); err == nil {
		t.Error("empty batch should error")
	}
}

func TestEngineProcessorOptions(t *testing.T) {
	e := newMultiEngine(t)
	ctx := context.Background()
	req := query.Request{T: 300, X: 1000, Y: 1000}
	naive, err := e.QueryOpts(ctx, req, query.Options{Kind: query.KindNaive, Radius: 500})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := e.QueryOpts(ctx, req, query.Options{Kind: query.KindRTree, Radius: 500})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(naive-rt) > 1e-9 {
		t.Errorf("naive %v vs rtree %v", naive, rt)
	}
	// Radius methods out of data range follow the taxonomy too.
	if _, err := e.QueryOpts(ctx, query.Request{T: 1e9}, query.Options{Kind: query.KindNaive}); !errors.Is(err, query.ErrOutOfWindow) {
		t.Errorf("naive empty window: %v", err)
	}
}

func TestHandleMessageLegacyFallbackOnNonCO2Server(t *testing.T) {
	// A PM-only server must keep answering untagged (legacy) frames,
	// which decode as CO2: the CO2 tag falls back to the default shard.
	st := store.MustOpenMemory(600)
	var b tuple.Batch
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		b = append(b, tuple.Raw{T: rng.Float64() * 600, X: x, Y: y, S: 30})
	}
	if err := st.Append(b); err != nil {
		t.Fatal(err)
	}
	e, err := NewMultiEngine(map[tuple.Pollutant]*store.Store{tuple.PM: st},
		core.Config{Pollutant: tuple.PM, Cluster: kmeans.Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Legacy frame (decoded as CO2 + Legacy flag) answers from the
	// default (PM) shard.
	resp := e.HandleMessage(wire.QueryRequest{T: 300, X: 500, Y: 500, Pollutant: tuple.CO2, Legacy: true})
	qr, ok := resp.(wire.QueryResponse)
	if !ok {
		t.Fatalf("legacy frame on PM server: got %T (%v)", resp, resp)
	}
	if math.Abs(qr.Value-30) > 5 {
		t.Errorf("legacy fallback value = %v, want ~30", qr.Value)
	}
	// Explicitly tagged v1 frames fail loudly — including CO2, which this
	// server does not monitor: no silent cross-pollutant answers.
	if _, ok := e.HandleMessage(wire.QueryRequest{T: 300, Pollutant: tuple.CO}).(wire.ErrorResponse); !ok {
		t.Error("tagged CO frame should yield ErrorResponse")
	}
	if _, ok := e.HandleMessage(wire.QueryRequest{T: 300, Pollutant: tuple.CO2}).(wire.ErrorResponse); !ok {
		t.Error("tagged CO2 frame on a PM-only server should yield ErrorResponse")
	}
	// Legacy model requests fall back the same way.
	if _, ok := e.HandleMessage(wire.ModelRequest{T: 300, Pollutant: tuple.CO2, Legacy: true}).(wire.ModelResponse); !ok {
		t.Error("legacy model request on PM server should be served")
	}
}

func TestHandleMessageRoutesPollutant(t *testing.T) {
	e := newMultiEngine(t)
	co2 := e.HandleMessage(wire.QueryRequest{T: 300, X: 1000, Y: 1000, Pollutant: tuple.CO2})
	pm := e.HandleMessage(wire.QueryRequest{T: 300, X: 1000, Y: 1000, Pollutant: tuple.PM})
	v1, ok1 := co2.(wire.QueryResponse)
	v2, ok2 := pm.(wire.QueryResponse)
	if !ok1 || !ok2 {
		t.Fatalf("responses %T / %T", co2, pm)
	}
	if v1.Value <= v2.Value {
		t.Errorf("pollutant routing collapsed: co2=%v pm=%v", v1.Value, v2.Value)
	}
	// Model requests carry the tag through to the response.
	mr := e.HandleMessage(wire.ModelRequest{T: 300, Pollutant: tuple.PM})
	m, ok := mr.(wire.ModelResponse)
	if !ok {
		t.Fatalf("model response %T", mr)
	}
	if tuple.Pollutant(m.Pollutant) != tuple.PM {
		t.Errorf("model pollutant = %d, want PM", m.Pollutant)
	}
	// Unmonitored pollutants come back as protocol errors.
	if _, ok := e.HandleMessage(wire.QueryRequest{T: 300, Pollutant: tuple.CO}).(wire.ErrorResponse); !ok {
		t.Error("unmonitored pollutant should yield ErrorResponse")
	}
}

func TestEngineBatchPerItemErrors(t *testing.T) {
	e := newMultiEngine(t)
	reqs := []query.Request{
		{T: 300, X: 1000, Y: 1000, Pollutant: tuple.CO2}, // answerable
		{T: 1e9, X: 0, Y: 0, Pollutant: tuple.CO2},       // beyond the data
		{T: 300, X: 1000, Y: 1000, Pollutant: tuple.CO},  // not monitored
		{T: 300, X: 900, Y: 900, Pollutant: tuple.PM},    // answerable
	}
	rs, err := e.QueryBatch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("call-level error: %v", err)
	}
	if len(rs) != len(reqs) {
		t.Fatalf("got %d results, want %d", len(rs), len(reqs))
	}
	if rs[0].Err != nil || rs[3].Err != nil {
		t.Errorf("good items errored: %v, %v", rs[0].Err, rs[3].Err)
	}
	if !errors.Is(rs[1].Err, query.ErrOutOfWindow) {
		t.Errorf("item 1: got %v, want ErrOutOfWindow", rs[1].Err)
	}
	if !errors.Is(rs[2].Err, query.ErrUnknownPollutant) {
		t.Errorf("item 2: got %v, want ErrUnknownPollutant", rs[2].Err)
	}
	if math.Abs(rs[0].Value-470) > 30 {
		t.Errorf("item 0 = %v, want ~470", rs[0].Value)
	}
}

func TestEngineBatchConcurrencyAgreement(t *testing.T) {
	// The sequential baseline (Concurrency 1) and the parallel pool must
	// produce identical answers, for every processor kind.
	e := newMultiEngine(t)
	rng := rand.New(rand.NewSource(11))
	reqs := make([]query.Request, 200)
	for i := range reqs {
		pol := tuple.CO2
		if i%2 == 1 {
			pol = tuple.PM
		}
		reqs[i] = query.Request{
			T: rng.Float64() * 600, X: rng.Float64() * 2000, Y: rng.Float64() * 2000,
			Pollutant: pol,
		}
	}
	for _, kind := range []query.Kind{query.KindCover, query.KindNaive, query.KindRTree, query.KindVPTree} {
		seq, err := e.QueryBatchOpts(context.Background(), reqs, query.Options{Kind: kind, Concurrency: 1})
		if err != nil {
			t.Fatalf("%s sequential: %v", kind, err)
		}
		par, err := e.QueryBatchOpts(context.Background(), reqs, query.Options{Kind: kind, Concurrency: 8})
		if err != nil {
			t.Fatalf("%s parallel: %v", kind, err)
		}
		for i := range reqs {
			if (seq[i].Err == nil) != (par[i].Err == nil) {
				t.Fatalf("%s item %d: sequential err %v, parallel err %v", kind, i, seq[i].Err, par[i].Err)
			}
			if seq[i].Err == nil && seq[i].Value != par[i].Value {
				t.Fatalf("%s item %d: sequential %v != parallel %v", kind, i, seq[i].Value, par[i].Value)
			}
		}
	}
}

func TestHandleMessageBatch(t *testing.T) {
	e := newMultiEngine(t)
	resp := e.HandleMessage(wire.BatchQueryRequest{Items: []wire.QueryRequest{
		{T: 300, X: 1000, Y: 1000, Pollutant: tuple.CO2},
		{T: 1e9, X: 0, Y: 0, Pollutant: tuple.CO2},
		{T: 300, X: 1000, Y: 1000, Pollutant: tuple.PM},
	}})
	br, ok := resp.(wire.BatchQueryResponse)
	if !ok {
		t.Fatalf("got %T: %+v", resp, resp)
	}
	if len(br.Items) != 3 {
		t.Fatalf("items = %d, want 3", len(br.Items))
	}
	if br.Items[0].Err != "" || br.Items[2].Err != "" {
		t.Errorf("good items errored: %+v", br.Items)
	}
	if br.Items[1].Err == "" {
		t.Error("out-of-window item must carry its error")
	}
	if math.Abs(br.Items[0].Value-470) > 30 || math.Abs(br.Items[2].Value-25) > 10 {
		t.Errorf("batch values leaked across shards: %+v", br.Items)
	}
	// An empty batch is a protocol-level error response.
	if _, ok := e.HandleMessage(wire.BatchQueryRequest{}).(wire.ErrorResponse); !ok {
		t.Error("empty batch should answer with ErrorResponse")
	}
}

func TestBatchWorkersClamp(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if got := batchWorkers(0, 1000); got != min(procs, 1000) {
		t.Errorf("default workers = %d, want %d", got, min(procs, 1000))
	}
	if got := batchWorkers(1, 1000); got != 1 {
		t.Errorf("sequential workers = %d, want 1", got)
	}
	if got := batchWorkers(1<<20, 1<<20); got != 4*procs {
		t.Errorf("hostile concurrency clamped to %d, want %d", got, 4*procs)
	}
	if got := batchWorkers(8, 3); got > 3 {
		t.Errorf("workers = %d exceed batch size 3", got)
	}
}
