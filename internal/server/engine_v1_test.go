package server

// Tests for the multi-pollutant v1 engine: shard isolation, error
// taxonomy, batch cancellation, processor options, and pollutant routing
// through HandleMessage.

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// newMultiEngine builds an engine with distinct linear fields for CO2
// and PM so cross-shard leaks are detectable by magnitude.
func newMultiEngine(t *testing.T) *Engine {
	t.Helper()
	mk := func(base, slope float64) *store.Store {
		st := store.MustOpenMemory(600)
		rng := rand.New(rand.NewSource(5))
		var b tuple.Batch
		for i := 0; i < 400; i++ {
			x, y := rng.Float64()*2000, rng.Float64()*2000
			b = append(b, tuple.Raw{T: rng.Float64() * 600, X: x, Y: y, S: base + slope*x})
		}
		if err := st.Append(b); err != nil {
			t.Fatal(err)
		}
		return st
	}
	e, err := NewMultiEngine(map[tuple.Pollutant]*store.Store{
		tuple.CO2: mk(420, 0.05),
		tuple.PM:  mk(20, 0.005),
	}, core.Config{Cluster: cluster.Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestMultiEngineShardIsolation(t *testing.T) {
	e := newMultiEngine(t)
	ctx := context.Background()
	co2, err := e.Query(ctx, query.Request{T: 300, X: 1000, Y: 1000, Pollutant: tuple.CO2})
	if err != nil {
		t.Fatal(err)
	}
	pm, err := e.Query(ctx, query.Request{T: 300, X: 1000, Y: 1000, Pollutant: tuple.PM})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(co2-470) > 30 {
		t.Errorf("CO2 = %v, want ~470", co2)
	}
	if math.Abs(pm-25) > 10 {
		t.Errorf("PM = %v, want ~25", pm)
	}
	if got := e.Pollutants(); len(got) != 2 || got[0] != tuple.CO2 || got[1] != tuple.PM {
		t.Errorf("Pollutants = %v", got)
	}
	if !e.Serves(tuple.PM) || e.Serves(tuple.CO) {
		t.Error("Serves misreports the shard set")
	}
}

func TestEngineErrorTaxonomy(t *testing.T) {
	e := newMultiEngine(t)
	ctx := context.Background()
	if _, err := e.Query(ctx, query.Request{T: 300, Pollutant: tuple.CO}); !errors.Is(err, query.ErrUnknownPollutant) {
		t.Errorf("unmonitored pollutant: %v", err)
	}
	if _, err := e.Query(ctx, query.Request{T: 1e9}); !errors.Is(err, query.ErrOutOfWindow) {
		t.Errorf("empty window: %v", err)
	}
	if _, err := e.Query(ctx, query.Request{T: -3}); !errors.Is(err, query.ErrOutOfWindow) {
		t.Errorf("negative time: %v", err)
	}
	if _, err := e.CoverAt(ctx, tuple.CO, 300); !errors.Is(err, query.ErrUnknownPollutant) {
		t.Errorf("CoverAt unmonitored: %v", err)
	}
	if err := e.Ingest(ctx, tuple.CO, tuple.Batch{{T: 1, S: 1}}); !errors.Is(err, query.ErrUnknownPollutant) {
		t.Errorf("Ingest unmonitored: %v", err)
	}
	if _, err := e.Heatmap(ctx, tuple.CO, 300, 8, 8); !errors.Is(err, query.ErrUnknownPollutant) {
		t.Errorf("Heatmap unmonitored: %v", err)
	}
}

func TestEngineBatchCancellation(t *testing.T) {
	e := newMultiEngine(t)
	reqs := make([]query.Request, 32)
	for i := range reqs {
		reqs[i] = query.Request{T: 300, X: float64(i * 10), Y: 500}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.QueryBatch(ctx, reqs); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch: %v", err)
	}
	vs, err := e.QueryBatch(context.Background(), reqs)
	if err != nil || len(vs) != len(reqs) {
		t.Fatalf("live batch: %d values, err %v", len(vs), err)
	}
	if _, err := e.QueryBatch(context.Background(), nil); err == nil {
		t.Error("empty batch should error")
	}
}

func TestEngineProcessorOptions(t *testing.T) {
	e := newMultiEngine(t)
	ctx := context.Background()
	req := query.Request{T: 300, X: 1000, Y: 1000}
	naive, err := e.QueryOpts(ctx, req, query.Options{Kind: query.KindNaive, Radius: 500})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := e.QueryOpts(ctx, req, query.Options{Kind: query.KindRTree, Radius: 500})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(naive-rt) > 1e-9 {
		t.Errorf("naive %v vs rtree %v", naive, rt)
	}
	// Radius methods out of data range follow the taxonomy too.
	if _, err := e.QueryOpts(ctx, query.Request{T: 1e9}, query.Options{Kind: query.KindNaive}); !errors.Is(err, query.ErrOutOfWindow) {
		t.Errorf("naive empty window: %v", err)
	}
}

func TestHandleMessageLegacyFallbackOnNonCO2Server(t *testing.T) {
	// A PM-only server must keep answering untagged (legacy) frames,
	// which decode as CO2: the CO2 tag falls back to the default shard.
	st := store.MustOpenMemory(600)
	var b tuple.Batch
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		b = append(b, tuple.Raw{T: rng.Float64() * 600, X: x, Y: y, S: 30})
	}
	if err := st.Append(b); err != nil {
		t.Fatal(err)
	}
	e, err := NewMultiEngine(map[tuple.Pollutant]*store.Store{tuple.PM: st},
		core.Config{Pollutant: tuple.PM, Cluster: cluster.Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Legacy frame (decoded as CO2 + Legacy flag) answers from the
	// default (PM) shard.
	resp := e.HandleMessage(wire.QueryRequest{T: 300, X: 500, Y: 500, Pollutant: tuple.CO2, Legacy: true})
	qr, ok := resp.(wire.QueryResponse)
	if !ok {
		t.Fatalf("legacy frame on PM server: got %T (%v)", resp, resp)
	}
	if math.Abs(qr.Value-30) > 5 {
		t.Errorf("legacy fallback value = %v, want ~30", qr.Value)
	}
	// Explicitly tagged v1 frames fail loudly — including CO2, which this
	// server does not monitor: no silent cross-pollutant answers.
	if _, ok := e.HandleMessage(wire.QueryRequest{T: 300, Pollutant: tuple.CO}).(wire.ErrorResponse); !ok {
		t.Error("tagged CO frame should yield ErrorResponse")
	}
	if _, ok := e.HandleMessage(wire.QueryRequest{T: 300, Pollutant: tuple.CO2}).(wire.ErrorResponse); !ok {
		t.Error("tagged CO2 frame on a PM-only server should yield ErrorResponse")
	}
	// Legacy model requests fall back the same way.
	if _, ok := e.HandleMessage(wire.ModelRequest{T: 300, Pollutant: tuple.CO2, Legacy: true}).(wire.ModelResponse); !ok {
		t.Error("legacy model request on PM server should be served")
	}
}

func TestHandleMessageRoutesPollutant(t *testing.T) {
	e := newMultiEngine(t)
	co2 := e.HandleMessage(wire.QueryRequest{T: 300, X: 1000, Y: 1000, Pollutant: tuple.CO2})
	pm := e.HandleMessage(wire.QueryRequest{T: 300, X: 1000, Y: 1000, Pollutant: tuple.PM})
	v1, ok1 := co2.(wire.QueryResponse)
	v2, ok2 := pm.(wire.QueryResponse)
	if !ok1 || !ok2 {
		t.Fatalf("responses %T / %T", co2, pm)
	}
	if v1.Value <= v2.Value {
		t.Errorf("pollutant routing collapsed: co2=%v pm=%v", v1.Value, v2.Value)
	}
	// Model requests carry the tag through to the response.
	mr := e.HandleMessage(wire.ModelRequest{T: 300, Pollutant: tuple.PM})
	m, ok := mr.(wire.ModelResponse)
	if !ok {
		t.Fatalf("model response %T", mr)
	}
	if tuple.Pollutant(m.Pollutant) != tuple.PM {
		t.Errorf("model pollutant = %d, want PM", m.Pollutant)
	}
	// Unmonitored pollutants come back as protocol errors.
	if _, ok := e.HandleMessage(wire.QueryRequest{T: 300, Pollutant: tuple.CO}).(wire.ErrorResponse); !ok {
		t.Error("unmonitored pollutant should yield ErrorResponse")
	}
}
