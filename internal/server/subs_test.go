package server

// The ISSUE 6 acceptance tests: a 20-point route subscription receives
// a delta containing only the points whose covers an ingest
// invalidated, with zero server-side re-evaluation for non-overlapping
// ingests (asserted via registry stats); the SSE endpoint streams
// pushes and resumes via Last-Event-ID; and /v1/query/continuous
// answers 304 via the cover-generation ETag until an invalidation.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/query"
	"repro/internal/subs"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// routePoints builds the 20-point commuter route: 10 points in window 0
// (t=300) and 10 in window 1 (t=900) of the 600-second test store.
func routePoints() []query.Request {
	pts := make([]query.Request, 20)
	for i := range pts {
		tm := 300.0
		if i >= 10 {
			tm = 900.0
		}
		pts[i] = query.Request{T: tm, X: 100 + 90*float64(i), Y: 200 + 80*float64(i)}
	}
	return pts
}

// ingestWindow pushes a batch of fresh tuples into window c with a
// value field shifted far from the seeded one, so re-fit models move.
func ingestWindow(t *testing.T, e *Engine, c int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var b tuple.Batch
	for i := 0; i < 200; i++ {
		x, y := rng.Float64()*2000, rng.Float64()*2000
		b = append(b, tuple.Raw{
			T: float64(c)*600 + rng.Float64()*600,
			X: x, Y: y,
			S: 1000 + 0.3*x - 0.1*y,
		})
	}
	if err := e.Ingest(context.Background(), tuple.CO2, b); err != nil {
		t.Fatal(err)
	}
}

func recvPush(t *testing.T, h subs.Handle) subs.Event {
	t.Helper()
	select {
	case ev, ok := <-h.Events():
		if !ok {
			t.Fatal("event channel closed unexpectedly")
		}
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a push")
	}
	return subs.Event{}
}

// waitStats polls the registry stats until cond holds (invalidations
// arrive from the asynchronous ingest pipeline).
func waitStats(t *testing.T, e *Engine, cond func(subs.Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if cond(e.Subscriptions().Stats()) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats condition not reached; stats = %+v", e.Subscriptions().Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSubscriptionPushesExactDeltas is the acceptance test.
func TestSubscriptionPushesExactDeltas(t *testing.T) {
	e := newTestEngine(t)
	defer e.Close()
	ctx := context.Background()

	h, err := e.Subscribe(ctx, tuple.CO2, routePoints())
	if err != nil {
		t.Fatal(err)
	}
	first := recvPush(t, h)
	if !first.Resync || first.Seq != 1 || len(first.Points) != 20 {
		t.Fatalf("initial event = seq %d resync=%v with %d points, want seq-1 resync with 20",
			first.Seq, first.Resync, len(first.Points))
	}
	for _, p := range first.Points {
		if p.Err != "" {
			t.Fatalf("initial point %d failed: %s", p.Index, p.Err)
		}
	}

	// Ingest into window 1 only: the delta must name only the 10 points
	// bound to window 1 (indexes 10..19), re-evaluated incrementally.
	ingestWindow(t, e, 1, 77)
	delta := recvPush(t, h)
	if delta.Resync {
		t.Fatalf("got a resync, want a delta: %+v", delta)
	}
	if len(delta.Points) == 0 {
		t.Fatal("empty delta")
	}
	for _, p := range delta.Points {
		if p.Index < 10 || p.Index >= 20 {
			t.Fatalf("delta touched point %d, outside the invalidated window-1 set [10,20)", p.Index)
		}
	}
	st := e.Subscriptions().Stats()
	if st.ReEvals != 1 || st.PointReEvals != 10 {
		t.Fatalf("stats after overlap = %+v, want exactly 1 re-eval of the 10 window-1 points", st)
	}

	// Ingest into window 3 — no subscribed point lives there: the
	// registry must not re-evaluate anything.
	ingestWindow(t, e, 3, 78)
	waitStats(t, e, func(s subs.Stats) bool { return s.Invalidations > st.Invalidations })
	e.Subscriptions().Wait()
	after := e.Subscriptions().Stats()
	if after.ReEvals != st.ReEvals || after.PointReEvals != st.PointReEvals {
		t.Fatalf("non-overlapping ingest re-evaluated: %+v -> %+v", st, after)
	}
	select {
	case ev := <-h.Events():
		t.Fatalf("unexpected event after non-overlapping ingest: %+v", ev)
	default:
	}

	// Wire-level unsubscribe closes the stream.
	resp := e.HandleMessage(wire.UnsubscribeRequest{ID: h.ID()})
	if ur, ok := resp.(wire.UnsubscribeResponse); !ok || !ur.Removed {
		t.Fatalf("unsubscribe response = %#v, want Removed", resp)
	}
	if _, open := <-h.Events(); open {
		t.Fatal("event channel still open after unsubscribe")
	}
	// And a bare SubscribeRequest over request/response is refused: push
	// needs a streaming transport.
	if _, ok := e.HandleMessage(wire.SubscribeRequest{Pollutant: tuple.CO2,
		Points: []wire.SubPoint{{T: 300, X: 1, Y: 2}}}).(wire.ErrorResponse); !ok {
		t.Fatal("bare SubscribeRequest over Exchange was not refused")
	}
}

// sseEvent is one parsed SSE event.
type sseEvent struct {
	id, kind string
	data     subs.Event
}

// readSSE parses the next event off an SSE stream, skipping heartbeats.
func readSSE(t *testing.T, br *bufio.Reader) sseEvent {
	t.Helper()
	var ev sseEvent
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("timed out reading SSE event")
		}
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("read SSE: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "id: "):
			ev.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			ev.kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev.data); err != nil {
				t.Fatalf("bad SSE data: %v", err)
			}
		case line == "":
			if ev.kind != "" {
				return ev
			}
			// heartbeat or comment terminator: keep reading
		}
	}
}

// TestSSESubscribeAndResume drives GET /v1/subscribe end to end: the
// initial resync, a delta after an overlapping ingest, and a
// Last-Event-ID resume that recovers a push missed while detached.
func TestSSESubscribeAndResume(t *testing.T) {
	e := newTestEngine(t)
	defer e.Close()
	a := NewAPI(e)
	ts := httptest.NewServer(a)
	defer ts.Close()

	u := ts.URL + "/v1/subscribe?points=300,500,500%3B900,600,600"
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	initial := readSSE(t, br)
	if initial.kind != "resync" || initial.data.Seq != 1 || len(initial.data.Points) != 2 {
		t.Fatalf("initial SSE event = %+v", initial)
	}

	ingestWindow(t, e, 1, 80)
	delta := readSSE(t, br)
	if delta.kind != "push" {
		t.Fatalf("after ingest got %q event, want push", delta.kind)
	}
	for _, p := range delta.data.Points {
		if p.Index != 1 {
			t.Fatalf("delta touched point %d, want only the window-1 point 1", p.Index)
		}
	}

	// Detach, miss a push, resume: the server must reattach the same
	// subscription and open with a full resync at the newest sequence.
	lastID := delta.id
	resp.Body.Close()
	st := e.Subscriptions().Stats()
	ingestWindow(t, e, 1, 81)
	waitStats(t, e, func(s subs.Stats) bool { return s.ReEvals > st.ReEvals })
	e.Subscriptions().Wait()

	req, _ := http.NewRequest(http.MethodGet, u, nil)
	req.Header.Set("Last-Event-ID", lastID)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resume status = %s", resp2.Status)
	}
	resumed := readSSE(t, bufio.NewReader(resp2.Body))
	if resumed.kind != "resync" {
		t.Fatalf("resume opened with %q, want resync", resumed.kind)
	}
	if resumed.data.Seq <= delta.data.Seq {
		t.Fatalf("resume seq %d did not advance past %d", resumed.data.Seq, delta.data.Seq)
	}
	if len(resumed.data.Points) != 2 {
		t.Fatalf("resume resync carries %d points, want the full vector of 2", len(resumed.data.Points))
	}

	// One active server-side subscription despite two connections: the
	// resume reattached rather than re-subscribed.
	if st := e.Subscriptions().Stats(); st.Subscribed != 1 {
		t.Fatalf("Subscribed = %d, want 1 (resume must reattach)", st.Subscribed)
	}

	// Parameter validation.
	if r, err := http.Get(ts.URL + "/v1/subscribe"); err != nil {
		t.Fatal(err)
	} else {
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("missing points: status = %s", r.Status)
		}
	}
	if r, err := http.Post(ts.URL+"/v1/subscribe", "text/plain", nil); err != nil {
		t.Fatal(err)
	} else {
		r.Body.Close()
		if r.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST: status = %s", r.Status)
		}
	}
}

// TestContinuousETag locks the conditional-request satellite: repeated
// polls of an unchanged route answer 304 off the cover generations, and
// an invalidation switches back to 200 with a fresh tag.
func TestContinuousETag(t *testing.T) {
	e := newTestEngine(t)
	defer e.Close()
	a := NewAPI(e)

	body := `{"points":[{"t":300,"x":500,"y":500},{"t":900,"x":600,"y":600}]}`
	do := func(ifNoneMatch string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/query/continuous", bytes.NewBufferString(body))
		if ifNoneMatch != "" {
			req.Header.Set("If-None-Match", ifNoneMatch)
		}
		w := httptest.NewRecorder()
		a.ServeHTTP(w, req)
		return w
	}

	w1 := do("")
	if w1.Code != http.StatusOK {
		t.Fatalf("first poll: %d %s", w1.Code, w1.Body)
	}
	etag := w1.Header().Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"cq-`) {
		t.Fatalf("ETag = %q", etag)
	}

	w2 := do(etag)
	if w2.Code != http.StatusNotModified {
		t.Fatalf("unchanged poll: %d, want 304", w2.Code)
	}
	if w2.Header().Get("ETag") != etag || w2.Body.Len() != 0 {
		t.Fatalf("304 carries ETag %q and %d body bytes", w2.Header().Get("ETag"), w2.Body.Len())
	}

	// Invalidate one route window: the tag changes, the poll evaluates.
	mnt, err := e.MaintainerFor(tuple.CO2)
	if err != nil {
		t.Fatal(err)
	}
	mnt.Invalidate(0)
	w3 := do(etag)
	if w3.Code != http.StatusOK {
		t.Fatalf("post-invalidation poll: %d, want 200", w3.Code)
	}
	if w3.Header().Get("ETag") == etag {
		t.Fatal("ETag unchanged across an invalidation")
	}
	var cr continuousResponse
	if err := json.Unmarshal(w3.Body.Bytes(), &cr); err != nil || len(cr.Values) != 2 {
		t.Fatalf("post-invalidation body: %v %s", err, w3.Body)
	}

	// Stats expose the registry section.
	sreq := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	sw := httptest.NewRecorder()
	a.ServeHTTP(sw, sreq)
	if sw.Code != http.StatusOK || !bytes.Contains(sw.Body.Bytes(), []byte(`"subscriptions"`)) {
		t.Fatalf("stats: %d %s", sw.Code, sw.Body)
	}
}
