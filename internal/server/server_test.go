package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"image/png"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/kmeans"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// newTestEngine builds an engine over a small two-window dataset with a
// known linear field s = 420 + 0.05x + 0.02y.
func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	st := store.MustOpenMemory(600)
	rng := rand.New(rand.NewSource(1))
	var b tuple.Batch
	for c := 0; c < 2; c++ {
		for i := 0; i < 300; i++ {
			x, y := rng.Float64()*2000, rng.Float64()*2000
			b = append(b, tuple.Raw{
				T: float64(c)*600 + rng.Float64()*600,
				X: x, Y: y,
				S: 420 + 0.05*x + 0.02*y,
			})
		}
	}
	if err := st.Append(b); err != nil {
		t.Fatal(err)
	}
	return NewEngine(st, core.Config{Cluster: kmeans.Config{Seed: 7}})
}

func TestEnginePointQuery(t *testing.T) {
	e := newTestEngine(t)
	v, err := e.Query(context.Background(), query.Request{T: 300, X: 1000, Y: 1000})
	if err != nil {
		t.Fatal(err)
	}
	want := 420 + 0.05*1000 + 0.02*1000
	if math.Abs(v-want) > 20 {
		t.Errorf("Query = %v, want ~%v", v, want)
	}
	if _, err := e.Query(context.Background(), query.Request{T: 1e9}); err == nil {
		t.Error("query in empty window should error")
	}
}

func TestEngineHandleMessage(t *testing.T) {
	e := newTestEngine(t)
	resp := e.HandleMessage(wire.QueryRequest{T: 300, X: 500, Y: 500})
	qr, ok := resp.(wire.QueryResponse)
	if !ok {
		t.Fatalf("got %T, want QueryResponse", resp)
	}
	want := 420 + 0.05*500 + 0.02*500
	if math.Abs(qr.Value-want) > 20 {
		t.Errorf("value = %v, want ~%v", qr.Value, want)
	}

	resp = e.HandleMessage(wire.ModelRequest{T: 300})
	mr, ok := resp.(wire.ModelResponse)
	if !ok {
		t.Fatalf("got %T, want ModelResponse", resp)
	}
	if mr.ValidUntil != 600 {
		t.Errorf("t_n = %v, want 600", mr.ValidUntil)
	}
	if len(mr.Centroids) == 0 {
		t.Error("model response has no centroids")
	}

	resp = e.HandleMessage(wire.QueryRequest{T: 1e9})
	if _, ok := resp.(wire.ErrorResponse); !ok {
		t.Errorf("empty window should yield ErrorResponse, got %T", resp)
	}
	resp = e.HandleMessage(wire.QueryResponse{})
	if _, ok := resp.(wire.ErrorResponse); !ok {
		t.Errorf("unsupported request should yield ErrorResponse, got %T", resp)
	}
}

func TestEngineIngestInvalidatesCover(t *testing.T) {
	e := newTestEngine(t)
	before, err := e.CoverAt(context.Background(), tuple.CO2, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Late data for window 0 must invalidate its cover.
	late := tuple.Batch{{T: 50, X: 1, Y: 1, S: 500}}
	if err := e.Ingest(context.Background(), tuple.CO2, late); err != nil {
		t.Fatal(err)
	}
	after, err := e.CoverAt(context.Background(), tuple.CO2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Error("cover not rebuilt after late ingest")
	}
}

func TestHTTPPointQuery(t *testing.T) {
	api := NewAPI(newTestEngine(t))
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/query/point?t=300&x=1000&y=1000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var pr struct {
		Value  float64 `json:"value"`
		Unit   string  `json:"unit"`
		Band   string  `json:"band"`
		Advice string  `json:"advice"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Unit != "ppm" || pr.Band == "" || pr.Advice == "" {
		t.Errorf("response incomplete: %+v", pr)
	}
	want := 420 + 0.05*1000 + 0.02*1000
	if math.Abs(pr.Value-want) > 20 {
		t.Errorf("value = %v, want ~%v", pr.Value, want)
	}
}

func TestHTTPPointQueryErrors(t *testing.T) {
	api := NewAPI(newTestEngine(t))
	srv := httptest.NewServer(api)
	defer srv.Close()

	cases := []struct {
		url  string
		want int
	}{
		{"/v1/query/point", http.StatusBadRequest},                   // missing params
		{"/v1/query/point?t=abc&x=1&y=1", http.StatusBadRequest},     // bad float
		{"/v1/query/point?t=999999999&x=1&y=1", http.StatusNotFound}, // empty window
	}
	for _, tt := range cases {
		resp, err := http.Get(srv.URL + tt.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tt.want {
			t.Errorf("%s: status %d, want %d", tt.url, resp.StatusCode, tt.want)
		}
	}
	// Wrong method.
	resp, err := http.Post(srv.URL+"/v1/query/point", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST point query: status %d", resp.StatusCode)
	}
}

func TestHTTPContinuous(t *testing.T) {
	api := NewAPI(newTestEngine(t))
	srv := httptest.NewServer(api)
	defer srv.Close()

	body, err := json.Marshal(map[string]interface{}{
		"points": []map[string]float64{
			{"t": 100, "x": 200, "y": 200},
			{"t": 200, "x": 800, "y": 800},
			{"t": 300, "x": 1500, "y": 1500},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/query/continuous", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var cr struct {
		Values  []struct{ Value float64 } `json:"values"`
		Average float64                   `json:"average"`
		Band    string                    `json:"band"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Values) != 3 {
		t.Fatalf("values = %d, want 3", len(cr.Values))
	}
	wantAvg := (cr.Values[0].Value + cr.Values[1].Value + cr.Values[2].Value) / 3
	if math.Abs(cr.Average-wantAvg) > 1e-9 {
		t.Errorf("average = %v, want %v", cr.Average, wantAvg)
	}
	if cr.Band == "" {
		t.Error("route band missing")
	}

	// Empty route is a bad request.
	resp2, err := http.Post(srv.URL+"/v1/query/continuous", "application/json",
		bytes.NewReader([]byte(`{"points":[]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("empty route: status %d", resp2.StatusCode)
	}
}

func TestHTTPModels(t *testing.T) {
	api := NewAPI(newTestEngine(t))
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/models?t=300")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var mr wire.ModelResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.ValidUntil != 600 || len(mr.Centroids) == 0 || len(mr.Centroids) != len(mr.Coefs) {
		t.Errorf("model response malformed: %+v", mr)
	}
	// The response reconstructs into a working cover.
	cv, err := wire.CoverFromModelResponse(mr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cv.Interpolate(300, 500, 500); err != nil {
		t.Errorf("reconstructed cover: %v", err)
	}
}

func TestHTTPHeatmap(t *testing.T) {
	api := NewAPI(newTestEngine(t))
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/heatmap?t=300&cols=16&rows=16")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var hr struct {
		Grid struct {
			Cols   int       `json:"Cols"`
			Rows   int       `json:"Rows"`
			Values []float64 `json:"Values"`
		} `json:"grid"`
		Markers []struct {
			Band string `json:"band"`
		} `json:"markers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Grid.Cols != 16 || hr.Grid.Rows != 16 || len(hr.Grid.Values) != 256 {
		t.Errorf("grid malformed: cols=%d rows=%d values=%d",
			hr.Grid.Cols, hr.Grid.Rows, len(hr.Grid.Values))
	}
	if len(hr.Markers) == 0 {
		t.Error("no centroid markers")
	}

	// PNG variant decodes as an image.
	resp2, err := http.Get(srv.URL + "/v1/heatmap.png?t=300&cols=32&rows=32")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("png status = %d", resp2.StatusCode)
	}
	if ct := resp2.Header.Get("Content-Type"); ct != "image/png" {
		t.Errorf("content type = %q", ct)
	}
	img, err := png.Decode(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 32 {
		t.Errorf("png width = %d", img.Bounds().Dx())
	}
}

func TestHTTPIngestAndStats(t *testing.T) {
	api := NewAPI(newTestEngine(t))
	srv := httptest.NewServer(api)
	defer srv.Close()

	before := fetchStats(t, srv.URL)
	body := []byte(`{"tuples":[{"T":1250,"X":10,"Y":10,"S":500}]}`)
	resp, err := http.Post(srv.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	after := fetchStats(t, srv.URL)
	if after.Tuples != before.Tuples+1 {
		t.Errorf("tuples %d -> %d, want +1", before.Tuples, after.Tuples)
	}

	// Invalid tuple rejected.
	resp2, err := http.Post(srv.URL+"/v1/ingest", "application/json",
		bytes.NewReader([]byte(`{"tuples":[{"T":-5,"X":0,"Y":0,"S":0}]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid tuple: status %d", resp2.StatusCode)
	}
}

type statsR struct {
	Tuples       int     `json:"tuples"`
	Windows      int     `json:"windows"`
	WindowLength float64 `json:"windowLength"`
}

func fetchStats(t *testing.T, base string) statsR {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var s statsR
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestHTTPStatsShape(t *testing.T) {
	api := NewAPI(newTestEngine(t))
	srv := httptest.NewServer(api)
	defer srv.Close()
	s := fetchStats(t, srv.URL)
	if s.Tuples != 600 || s.Windows != 2 || s.WindowLength != 600 {
		t.Errorf("stats = %+v", s)
	}
}

func TestClassifyReexport(t *testing.T) {
	if Classify(400).String() != "fresh" {
		t.Error("Classify mismatch")
	}
	_ = fmt.Sprintf // keep fmt for future use in this test file
}
