package memsize

import "testing"

func TestArrayOfSlices(t *testing.T) {
	var v [2][]float64
	v[0] = make([]float64, 4)
	v[1] = make([]float64, 6)
	got := Of(v)
	// Two inline headers (counted by the array's own size: 48) plus the
	// two backing arrays.
	want := int64(48 + 32 + 48)
	if got != want {
		t.Errorf("Of = %d, want %d", got, want)
	}
}

func TestMapWithStringKeysAndSliceValues(t *testing.T) {
	m := map[string][]int64{
		"alpha": make([]int64, 10),
		"beta":  make([]int64, 20),
	}
	got := Of(m)
	// At least: key bytes (9) + slice backing (240). Entry accounting adds
	// headers and bucket slack on top.
	if got < 249 {
		t.Errorf("Of = %d, want ≥ 249", got)
	}
}

func TestChanAndFuncAreOpaque(t *testing.T) {
	type holder struct {
		C chan int
		F func()
	}
	h := holder{C: make(chan int, 100), F: func() {}}
	got := Of(h)
	// Headers only: the runtime objects behind them are not walked.
	if got != 16 {
		t.Errorf("Of = %d, want 16 (two pointers)", got)
	}
}

func TestNilInterfaceField(t *testing.T) {
	type holder struct {
		V interface{}
	}
	if got := Of(holder{}); got != 16 {
		t.Errorf("Of = %d, want 16", got)
	}
}

func TestNilMapAndSliceFields(t *testing.T) {
	type holder struct {
		M map[int]int
		S []int
	}
	got := Of(holder{})
	want := int64(8 + 24) // map header + slice header, nothing behind them
	if got != want {
		t.Errorf("Of = %d, want %d", got, want)
	}
}

func TestPointerToStructWithMap(t *testing.T) {
	type inner struct {
		M map[int64]int64
	}
	v := &inner{M: map[int64]int64{1: 2, 3: 4}}
	got := Of(v)
	// Pointer (8) + struct (8, the map header) + ~2 entries.
	if got < 16+32 {
		t.Errorf("Of = %d, too small", got)
	}
}

func TestDeepNesting(t *testing.T) {
	// A linked list of 1000 nodes must be fully walked.
	type nodeT struct {
		Next *nodeT
		Val  [3]float64
	}
	var head *nodeT
	for i := 0; i < 1000; i++ {
		head = &nodeT{Next: head}
	}
	got := Of(head)
	want := int64(8 + 1000*32) // head pointer + 1000 × (ptr + 24B array)
	if got != want {
		t.Errorf("Of = %d, want %d", got, want)
	}
}

func TestStringInsideSlice(t *testing.T) {
	v := []string{"ab", "cdef"}
	got := Of(v)
	want := int64(24 + 2*16 + 6) // slice header + 2 string headers + bytes
	if got != want {
		t.Errorf("Of = %d, want %d", got, want)
	}
}
