package memsize

import (
	"testing"
)

func TestFlatValues(t *testing.T) {
	tests := []struct {
		name string
		v    interface{}
		want int64
	}{
		{"int64", int64(5), 8},
		{"float64", 3.14, 8},
		{"bool", true, 1},
		{"struct of floats", struct{ A, B, C float64 }{}, 24},
		{"array", [4]int64{}, 32},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Of(tt.v); got != tt.want {
				t.Errorf("Of(%v) = %d, want %d", tt.v, got, tt.want)
			}
		})
	}
}

func TestNil(t *testing.T) {
	if got := Of(nil); got != 0 {
		t.Errorf("Of(nil) = %d, want 0", got)
	}
	var p *int
	// A nil pointer still has its own 8-byte header.
	if got := Of(p); got != PointerSize {
		t.Errorf("Of(nil *int) = %d, want %d", got, PointerSize)
	}
}

func TestSliceCountsCapacity(t *testing.T) {
	s := make([]float64, 10, 100)
	got := Of(s)
	// Header (24) + backing array 100*8.
	want := int64(24 + 800)
	if got != want {
		t.Errorf("Of(slice) = %d, want %d", got, want)
	}
}

func TestSliceOfPointers(t *testing.T) {
	a, b := new(float64), new(float64)
	s := []*float64{a, b, a} // a shared twice: counted once
	got := Of(s)
	// Header 24 + 3 pointer slots + 2 distinct float64s.
	want := int64(24 + 3*PointerSize + 16)
	if got != want {
		t.Errorf("Of = %d, want %d", got, want)
	}
}

func TestStructWithSlice(t *testing.T) {
	type inner struct {
		Vals []float64
	}
	v := inner{Vals: make([]float64, 5)}
	got := Of(v)
	want := int64(24 + 40) // header inline in struct, + 5 floats
	if got != want {
		t.Errorf("Of = %d, want %d", got, want)
	}
}

func TestPointerCycle(t *testing.T) {
	type nodeT struct {
		Next *nodeT
		Val  int64
	}
	a := &nodeT{Val: 1}
	b := &nodeT{Val: 2}
	a.Next = b
	b.Next = a
	got := Of(a)
	// Pointer header 8 + two 16-byte nodes, cycle terminated.
	want := int64(8 + 32)
	if got != want {
		t.Errorf("Of(cycle) = %d, want %d", got, want)
	}
}

func TestString(t *testing.T) {
	s := "hello world"
	got := Of(s)
	want := int64(16 + len(s)) // header + bytes
	if got != want {
		t.Errorf("Of(string) = %d, want %d", got, want)
	}
}

func TestInterfaceField(t *testing.T) {
	type holder struct {
		V interface{}
	}
	h := holder{V: int64(7)}
	got := Of(h)
	// iface header 16 + boxed int64 8.
	want := int64(16 + 8)
	if got != want {
		t.Errorf("Of = %d, want %d", got, want)
	}
}

func TestMapApproximation(t *testing.T) {
	m := map[int64]float64{}
	for i := int64(0); i < 100; i++ {
		m[i] = float64(i)
	}
	got := Of(m)
	// At minimum the entries themselves: 100 * 16 bytes.
	if got < 1600 {
		t.Errorf("Of(map) = %d, want ≥ 1600", got)
	}
	// And not absurdly more than 4x that.
	if got > 6400+8 {
		t.Errorf("Of(map) = %d, implausibly large", got)
	}
}

func TestTreeLikeStructure(t *testing.T) {
	// A binary tree of 2^d - 1 pointer-linked nodes must grow linearly in
	// node count — the property the Fig 7a experiment relies on.
	type nodeT struct {
		L, R *nodeT
		Val  float64
	}
	var build func(d int) *nodeT
	build = func(d int) *nodeT {
		if d == 0 {
			return nil
		}
		return &nodeT{L: build(d - 1), R: build(d - 1)}
	}
	size7 := Of(build(7)) // 127 nodes
	size8 := Of(build(8)) // 255 nodes
	ratio := float64(size8) / float64(size7)
	if ratio < 1.9 || ratio > 2.2 {
		t.Errorf("doubling nodes scaled size by %.2f, want ~2.0", ratio)
	}
}

func TestSharedBackingArrayCountedOnce(t *testing.T) {
	base := make([]float64, 100)
	type two struct {
		A, B []float64
	}
	v := two{A: base, B: base}
	got := Of(v)
	want := int64(48 + 800) // two headers + one shared array
	if got != want {
		t.Errorf("Of = %d, want %d", got, want)
	}
}
