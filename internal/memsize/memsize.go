// Package memsize estimates the deep memory footprint of Go values by
// walking the object graph with reflection. It plays the role of the
// Pympler library in the paper's memory experiment (Figure 7a), which
// compares the bytes retained by (a) the raw points of the naive method,
// (b) the R-tree and VP-tree index structures, and (c) the model cover.
//
// The estimate counts the value itself plus everything reachable through
// pointers, slices, maps, strings, and interfaces. Shared objects are
// counted once (pointer-identity de-duplication), matching what a heap
// profiler would attribute to the structure.
package memsize

import (
	"reflect"
	"unsafe"
)

// Of returns the estimated deep size of v in bytes. Nil values size to 0.
func Of(v interface{}) int64 {
	if v == nil {
		return 0
	}
	w := walker{seen: make(map[uintptr]bool)}
	rv := reflect.ValueOf(v)
	// The top-level interface header itself is not counted; we measure the
	// value it refers to, mirroring Pympler's asizeof semantics.
	return w.size(rv)
}

type walker struct {
	seen map[uintptr]bool
}

// size returns the deep size of rv, including rv's own storage.
func (w *walker) size(rv reflect.Value) int64 {
	if !rv.IsValid() {
		return 0
	}
	return int64(rv.Type().Size()) + w.indirect(rv)
}

// indirect returns the size of memory reachable from rv but not stored
// inline in it.
func (w *walker) indirect(rv reflect.Value) int64 {
	switch rv.Kind() {
	case reflect.Ptr:
		if rv.IsNil() || !w.mark(rv.Pointer()) {
			return 0
		}
		return w.size(rv.Elem())

	case reflect.Slice:
		if rv.IsNil() || !w.mark(rv.Pointer()) {
			return 0
		}
		// The backing array is Cap elements, of which Len are live and
		// walked; the spare capacity is still retained memory.
		elem := rv.Type().Elem()
		total := int64(rv.Cap()) * int64(elem.Size())
		if hasIndirection(elem) {
			for i := 0; i < rv.Len(); i++ {
				total += w.indirect(rv.Index(i))
			}
		}
		return total

	case reflect.Array:
		var total int64
		if hasIndirection(rv.Type().Elem()) {
			for i := 0; i < rv.Len(); i++ {
				total += w.indirect(rv.Index(i))
			}
		}
		return total

	case reflect.Struct:
		var total int64
		for i := 0; i < rv.NumField(); i++ {
			f := rv.Field(i)
			if hasIndirection(f.Type()) {
				total += w.indirect(f)
			}
		}
		return total

	case reflect.Map:
		if rv.IsNil() || !w.mark(rv.Pointer()) {
			return 0
		}
		// Approximate bucket overhead: Go maps use ~(key+value+1) bytes per
		// slot with buckets sized to the next power of two plus overflow
		// slack; a flat per-entry accounting is adequate for comparisons.
		kt, vt := rv.Type().Key(), rv.Type().Elem()
		perEntry := int64(kt.Size()) + int64(vt.Size()) + 1
		total := int64(float64(rv.Len())*1.3) * perEntry
		iter := rv.MapRange()
		for iter.Next() {
			if hasIndirection(kt) {
				total += w.indirect(iter.Key())
			}
			if hasIndirection(vt) {
				total += w.indirect(iter.Value())
			}
		}
		return total

	case reflect.String:
		// String headers are counted by Size(); the bytes are external.
		return int64(rv.Len())

	case reflect.Interface:
		if rv.IsNil() {
			return 0
		}
		return w.size(rv.Elem())

	case reflect.Chan, reflect.Func, reflect.UnsafePointer:
		// Opaque runtime objects: count the header only.
		return 0

	default:
		return 0
	}
}

// mark records a pointer and reports whether it was new.
func (w *walker) mark(p uintptr) bool {
	if p == 0 || w.seen[p] {
		return false
	}
	w.seen[p] = true
	return true
}

// hasIndirection reports whether values of type t can reference memory
// outside their inline storage. Walking is skipped for flat types, which
// keeps sizing large float slices O(1).
func hasIndirection(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Ptr, reflect.Slice, reflect.Map, reflect.String,
		reflect.Interface, reflect.Chan, reflect.Func, reflect.UnsafePointer:
		return true
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if hasIndirection(t.Field(i).Type) {
				return true
			}
		}
		return false
	case reflect.Array:
		return hasIndirection(t.Elem())
	default:
		return false
	}
}

// PointerSize is the platform pointer width in bytes, exported for tests
// that reason about expected sizes.
const PointerSize = int64(unsafe.Sizeof(uintptr(0)))
