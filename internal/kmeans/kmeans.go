// Package kmeans implements the k-means machinery underlying the paper's
// Ad-KMN algorithm (§2.1): k-means++ seeding, Lloyd iterations, nearest-
// centroid assignment, and incremental centroid addition (Ad-KMN grows the
// centroid set by "introducing an additional cluster centroid" in regions
// whose model error exceeds the threshold and then re-estimating all
// centroids). The same nearest-centroid primitive underlies both the
// model-cover lookup (internal/core) and the geo-cell shard map of the
// serving cluster (internal/cluster), so it lives below both.
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geo"
)

// Config controls a k-means run.
type Config struct {
	// MaxIterations bounds the Lloyd iterations (default 50).
	MaxIterations int
	// Tolerance stops iteration when no centroid moves more than this many
	// meters (default 0.5 m).
	Tolerance float64
	// Seed makes runs deterministic; the same seed yields the same
	// clustering for the same input.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MaxIterations <= 0 {
		c.MaxIterations = 50
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 0.5
	}
	return c
}

// Result is the outcome of a k-means run.
type Result struct {
	// Centroids are the final cluster centers µ_1..µ_k.
	Centroids []geo.Point
	// Assign maps each input point index to its centroid index.
	Assign []int
	// Sizes counts points per cluster.
	Sizes []int
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
	// Inertia is the sum of squared point-to-centroid distances.
	Inertia float64
}

// Run clusters pts into k clusters using k-means++ seeding followed by
// Lloyd iterations. It requires 1 ≤ k ≤ len(pts).
func Run(pts []geo.Point, k int, cfg Config) (*Result, error) {
	if err := validate(pts, k); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	centroids := seedPlusPlus(pts, k, rng)
	return lloyd(pts, centroids, cfg)
}

// Refine runs Lloyd iterations starting from the provided centroids. This
// is the Ad-KMN "re-estimate all the centroids" step: after new centroids
// are injected at high-error positions, the full set is refined together.
// Empty clusters are re-seeded at the point farthest from its centroid, so
// the result always has exactly len(start) non-empty clusters when
// len(pts) ≥ len(start).
func Refine(pts []geo.Point, start []geo.Point, cfg Config) (*Result, error) {
	if err := validate(pts, len(start)); err != nil {
		return nil, err
	}
	centroids := make([]geo.Point, len(start))
	copy(centroids, start)
	return lloyd(pts, centroids, cfg.withDefaults())
}

func validate(pts []geo.Point, k int) error {
	if len(pts) == 0 {
		return errors.New("cluster: no points")
	}
	if k < 1 {
		return fmt.Errorf("cluster: k = %d, want ≥ 1", k)
	}
	if k > len(pts) {
		return fmt.Errorf("cluster: k = %d exceeds point count %d", k, len(pts))
	}
	return nil
}

// seedPlusPlus picks k initial centroids with the k-means++ strategy:
// the first uniformly, each subsequent one with probability proportional
// to its squared distance from the nearest chosen centroid.
func seedPlusPlus(pts []geo.Point, k int, rng *rand.Rand) []geo.Point {
	centroids := make([]geo.Point, 0, k)
	centroids = append(centroids, pts[rng.Intn(len(pts))])
	d2 := make([]float64, len(pts))
	for i, p := range pts {
		d2[i] = p.Dist2(centroids[0])
	}
	for len(centroids) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var next geo.Point
		if total <= 0 {
			// All points coincide with existing centroids; any point works.
			next = pts[rng.Intn(len(pts))]
		} else {
			target := rng.Float64() * total
			idx := len(pts) - 1
			var acc float64
			for i, d := range d2 {
				acc += d
				if acc >= target {
					idx = i
					break
				}
			}
			next = pts[idx]
		}
		centroids = append(centroids, next)
		for i, p := range pts {
			if d := p.Dist2(next); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

// lloyd iterates assignment and centroid-update steps until convergence.
func lloyd(pts []geo.Point, centroids []geo.Point, cfg Config) (*Result, error) {
	k := len(centroids)
	assign := make([]int, len(pts))
	sizes := make([]int, k)
	sumX := make([]float64, k)
	sumY := make([]float64, k)

	var iter int
	for iter = 0; iter < cfg.MaxIterations; iter++ {
		// Assignment step.
		for i := range sizes {
			sizes[i], sumX[i], sumY[i] = 0, 0, 0
		}
		for i, p := range pts {
			assign[i] = Nearest(centroids, p)
			c := assign[i]
			sizes[c]++
			sumX[c] += p.X
			sumY[c] += p.Y
		}
		// Update step.
		maxMove := 0.0
		for c := 0; c < k; c++ {
			var next geo.Point
			if sizes[c] == 0 {
				// Re-seed an empty cluster at the globally worst-served
				// point to keep exactly k active clusters.
				next = farthestPoint(pts, centroids, assign)
			} else {
				next = geo.Point{X: sumX[c] / float64(sizes[c]), Y: sumY[c] / float64(sizes[c])}
			}
			if move := next.Dist(centroids[c]); move > maxMove {
				maxMove = move
			}
			centroids[c] = next
		}
		if maxMove <= cfg.Tolerance {
			iter++
			break
		}
	}

	// Final assignment with the converged centroids.
	for i := range sizes {
		sizes[i] = 0
	}
	var inertia float64
	for i, p := range pts {
		assign[i] = Nearest(centroids, p)
		sizes[assign[i]]++
		inertia += p.Dist2(centroids[assign[i]])
	}
	return &Result{
		Centroids:  centroids,
		Assign:     assign,
		Sizes:      sizes,
		Iterations: iter,
		Inertia:    inertia,
	}, nil
}

// farthestPoint returns the point with the largest distance to its
// currently assigned centroid.
func farthestPoint(pts []geo.Point, centroids []geo.Point, assign []int) geo.Point {
	best := pts[0]
	bestD := -1.0
	for i, p := range pts {
		d := p.Dist2(centroids[assign[i]])
		if d > bestD {
			bestD, best = d, p
		}
	}
	return best
}

// Nearest returns the index of the centroid closest to p. It is the
// primitive both the server-side model-cover lookup and the smartphone
// model-cache use to pick M* (§2.2, §2.3). centroids must be non-empty.
func Nearest(centroids []geo.Point, p geo.Point) int {
	best := 0
	bestD := centroids[0].Dist2(p)
	for i := 1; i < len(centroids); i++ {
		if d := centroids[i].Dist2(p); d < bestD {
			bestD, best = d, i
		}
	}
	return best
}

// Inertia computes the sum of squared distances from each point to its
// nearest centroid — the k-means objective.
func Inertia(pts []geo.Point, centroids []geo.Point) float64 {
	if len(centroids) == 0 {
		return math.Inf(1)
	}
	var total float64
	for _, p := range pts {
		total += p.Dist2(centroids[Nearest(centroids, p)])
	}
	return total
}
