package kmeans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

// blob generates n points around center with the given spread.
func blob(rng *rand.Rand, center geo.Point, spread float64, n int) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{
			X: center.X + rng.NormFloat64()*spread,
			Y: center.Y + rng.NormFloat64()*spread,
		}
	}
	return pts
}

func TestRunSeparatesObviousClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	centers := []geo.Point{{X: 0, Y: 0}, {X: 1000, Y: 0}, {X: 500, Y: 1000}}
	var pts []geo.Point
	for _, c := range centers {
		pts = append(pts, blob(rng, c, 20, 100)...)
	}
	res, err := Run(pts, 3, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("got %d centroids", len(res.Centroids))
	}
	// Each true center should have a centroid within 50 m.
	for _, c := range centers {
		found := false
		for _, got := range res.Centroids {
			if got.Dist(c) < 50 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no centroid near true center %v: %v", c, res.Centroids)
		}
	}
	// All 300 points assigned, sizes sum correctly.
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(pts) {
		t.Errorf("sizes sum to %d, want %d", total, len(pts))
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := blob(rng, geo.Point{}, 100, 200)
	a, err := Run(pts, 5, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(pts, 5, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Centroids {
		if a.Centroids[i] != b.Centroids[i] {
			t.Fatalf("centroid %d differs across identical runs", i)
		}
	}
}

func TestRunErrors(t *testing.T) {
	pts := []geo.Point{{X: 1}, {X: 2}}
	if _, err := Run(nil, 1, Config{}); err == nil {
		t.Error("expected error for no points")
	}
	if _, err := Run(pts, 0, Config{}); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := Run(pts, 3, Config{}); err == nil {
		t.Error("expected error for k > n")
	}
}

func TestRunKEqualsN(t *testing.T) {
	pts := []geo.Point{{X: 0}, {X: 100}, {X: 200}}
	res, err := Run(pts, 3, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-9 {
		t.Errorf("k=n should give zero inertia, got %v", res.Inertia)
	}
}

func TestRunK1IsCentroidOfMass(t *testing.T) {
	pts := []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 5, Y: 9}}
	res, err := Run(pts, 1, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := geo.Point{X: 5, Y: 3}
	if res.Centroids[0].Dist(want) > 1e-6 {
		t.Errorf("centroid = %v, want %v", res.Centroids[0], want)
	}
}

func TestRefineKeepsClusterCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := append(blob(rng, geo.Point{}, 30, 100), blob(rng, geo.Point{X: 2000}, 30, 100)...)
	// Deliberately bad starts: both in the first blob plus one far away
	// that will start empty.
	start := []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 10}, {X: -99999, Y: -99999}}
	res, err := Refine(pts, start, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("got %d centroids, want 3", len(res.Centroids))
	}
	for i, s := range res.Sizes {
		if s == 0 {
			t.Errorf("cluster %d ended empty; empty clusters must be re-seeded", i)
		}
	}
}

func TestRefineDoesNotMutateStart(t *testing.T) {
	pts := []geo.Point{{X: 0}, {X: 100}, {X: 200}, {X: 300}}
	start := []geo.Point{{X: 0}, {X: 300}}
	res, err := Refine(pts, start, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if start[0] != (geo.Point{X: 0}) || start[1] != (geo.Point{X: 300}) {
		t.Error("Refine mutated its start slice")
	}
	_ = res
}

func TestRefineImprovesInertia(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := append(blob(rng, geo.Point{}, 50, 150), blob(rng, geo.Point{X: 3000, Y: 3000}, 50, 150)...)
	start := []geo.Point{{X: 500, Y: 500}, {X: 600, Y: 600}}
	before := Inertia(pts, start)
	res, err := Refine(pts, start, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia >= before {
		t.Errorf("refine did not improve inertia: %v -> %v", before, res.Inertia)
	}
}

func TestNearest(t *testing.T) {
	cs := []geo.Point{{X: 0}, {X: 100}, {X: 200}}
	tests := []struct {
		p    geo.Point
		want int
	}{
		{geo.Point{X: -5}, 0},
		{geo.Point{X: 49}, 0},
		{geo.Point{X: 51}, 1},
		{geo.Point{X: 170}, 2},
	}
	for _, tt := range tests {
		if got := Nearest(cs, tt.p); got != tt.want {
			t.Errorf("Nearest(%v) = %d, want %d", tt.p, got, tt.want)
		}
	}
}

func TestAssignmentsAreNearest(t *testing.T) {
	// Invariant: after Run, every point is assigned to its nearest centroid.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(100)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		}
		k := 1 + rng.Intn(6)
		res, err := Run(pts, k, Config{Seed: seed})
		if err != nil {
			return false
		}
		for i, p := range pts {
			if res.Assign[i] != Nearest(res.Centroids, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := make([]geo.Point, 300)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 5000, Y: rng.Float64() * 5000}
	}
	prev := math.Inf(1)
	for k := 1; k <= 16; k *= 2 {
		res, err := Run(pts, k, Config{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		// Allow small non-monotonicity from local minima, but the trend
		// must be decisively downward.
		if res.Inertia > prev*1.05 {
			t.Errorf("k=%d: inertia %v much worse than k/2's %v", k, res.Inertia, prev)
		}
		prev = res.Inertia
	}
}

func TestInertiaEmptyCentroids(t *testing.T) {
	if got := Inertia([]geo.Point{{X: 1}}, nil); !math.IsInf(got, 1) {
		t.Errorf("Inertia with no centroids = %v, want +Inf", got)
	}
}

func TestRunAllPointsIdentical(t *testing.T) {
	pts := make([]geo.Point, 20)
	for i := range pts {
		pts[i] = geo.Point{X: 7, Y: 7}
	}
	res, err := Run(pts, 3, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Errorf("identical points: inertia = %v, want 0", res.Inertia)
	}
}
