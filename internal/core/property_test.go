package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/tuple"
)

// randomWindow builds a random but valid window from a seed.
func randomWindow(seed int64, n int) tuple.Batch {
	rng := rand.New(rand.NewSource(seed))
	w := make(tuple.Batch, n)
	for i := range w {
		w[i] = tuple.Raw{
			T: rng.Float64() * 1000,
			X: rng.Float64() * 3000,
			Y: rng.Float64() * 3000,
			S: 400 + rng.Float64()*600,
		}
	}
	return w
}

// TestCoverInvariants checks, across random windows and configurations,
// the structural invariants every Ad-KMN cover must satisfy.
func TestCoverInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(300)
		w := randomWindow(seed, n)
		cfg := Config{
			InitialK:        1 + rng.Intn(4),
			MaxK:            2 + rng.Intn(30),
			ErrThreshold:    0.005 + rng.Float64()*0.1,
			MinRegionTuples: 2 + rng.Intn(20),
			Cluster:         clusterSeed(seed),
		}
		cv, err := BuildCover(w, 0, 2000, cfg)
		if err != nil {
			return false
		}
		// 1. Cover size within [1, min(MaxK, n)].
		maxK := cfg.MaxK
		if maxK > n {
			maxK = n
		}
		if cv.Size() < 1 || cv.Size() > maxK {
			return false
		}
		// 2. Region tuple counts sum to n.
		total := 0
		for _, r := range cv.Regions {
			if r.N <= 0 || r.Model == nil {
				return false
			}
			total += r.N
		}
		if total != n {
			return false
		}
		// 3. Validity matches the window bounds.
		if cv.ValidFrom != 0 || cv.ValidUntil != 2000 {
			return false
		}
		// 4. Interpolations are clamped to the announced range.
		for trial := 0; trial < 20; trial++ {
			v, err := cv.Interpolate(rng.Float64()*2000, rng.Float64()*5000-1000, rng.Float64()*5000-1000)
			if err != nil {
				return false
			}
			if v < cv.ValueLo-1e-9 || v > cv.ValueHi+1e-9 {
				return false
			}
		}
		// 5. NearestRegion is a true argmin over centroids.
		for trial := 0; trial < 20; trial++ {
			p := geo.Point{X: rng.Float64() * 4000, Y: rng.Float64() * 4000}
			got := cv.NearestRegion(p)
			best, bestD := 0, cv.Regions[0].Centroid.Dist2(p)
			for i, r := range cv.Regions {
				if d := r.Centroid.Dist2(p); d < bestD {
					best, bestD = i, d
				}
			}
			if cv.Regions[got].Centroid.Dist2(p) != cv.Regions[best].Centroid.Dist2(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestCoverDeterminism: the same window and config always produce the
// same cover — required for the reproducibility of every experiment.
func TestCoverDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		w := randomWindow(seed, 200)
		cfg := Config{Cluster: clusterSeed(seed)}
		a, err1 := BuildCover(w, 0, 2000, cfg)
		b, err2 := BuildCover(w, 0, 2000, cfg)
		if err1 != nil || err2 != nil {
			return false
		}
		if a.Size() != b.Size() || a.Rounds != b.Rounds {
			return false
		}
		for i := range a.Regions {
			if a.Regions[i].Centroid != b.Regions[i].Centroid {
				return false
			}
			ca, cb := a.Regions[i].Model.Coef(), b.Regions[i].Model.Coef()
			for j := range ca {
				if ca[j] != cb[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestTighterThresholdNeverFewerModels: decreasing τn (holding everything
// else fixed) cannot shrink the cover — adaptation is monotone in the
// threshold.
func TestTighterThresholdNeverFewerModels(t *testing.T) {
	f := func(seed int64) bool {
		w := randomWindow(seed, 300)
		loose, err := BuildCover(w, 0, 2000, Config{
			ErrThreshold: 0.10, MinRegionTuples: 4, Cluster: clusterSeed(seed)})
		if err != nil {
			return false
		}
		tight, err := BuildCover(w, 0, 2000, Config{
			ErrThreshold: 0.01, MinRegionTuples: 4, Cluster: clusterSeed(seed)})
		if err != nil {
			return false
		}
		return tight.Size() >= loose.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
