// Package core implements the paper's primary contribution: the adaptive
// multi-model abstraction ("model cover") over geo-temporally skewed
// community-sensed data, built by the Ad-KMN algorithm (§2.1), and the
// model-based interpolation used to answer continuous value queries (§2.2).
//
// A model cover is a set of models M = {M_1, ..., M_O} with cluster
// centroids µ = (µ_1, ..., µ_O); model M_j is responsible for sub-region
// R_j, defined implicitly as the Voronoi cell of µ_j. A cover is estimated
// from one window of raw tuples W_c = [cH, (c+1)H) and is valid until the
// window closes at t_n = (c+1)H — the validity time shipped to model-cache
// clients (§2.3).
package core

import (
	"errors"
	"fmt"

	"repro/internal/geo"
	"repro/internal/kmeans"
	"repro/internal/regress"
	"repro/internal/tuple"
)

// RegionModel is one (centroid, model) pair of a cover: the model M_j
// responsible for sub-region R_j around centroid µ_j.
type RegionModel struct {
	// Centroid is µ_j.
	Centroid geo.Point
	// Model is the fitted (or wire-reconstructed) regression model M_j.
	Model *regress.Model
	// ApproxError is the region's approximation error: the mean absolute
	// prediction error over the region's tuples as a fraction of the
	// pollutant's normal range. Zero on wire-reconstructed covers.
	ApproxError float64
	// N is the number of tuples the model was fitted on (0 when
	// reconstructed from the wire).
	N int
}

// Cover is a model cover: the multi-model abstraction over a region R.
type Cover struct {
	// Pollutant identifies what the models predict.
	Pollutant tuple.Pollutant
	// WindowIndex is c, the index of the window the cover was built from.
	WindowIndex int
	// ValidFrom and ValidUntil bound the cover's validity in stream time;
	// ValidUntil is the t_n sent to model-cache clients.
	ValidFrom, ValidUntil float64
	// Regions holds the (µ_j, M_j) pairs.
	Regions []RegionModel
	// ValueLo and ValueHi clamp interpolated values to the phenomenon's
	// observed range (with margin). Model extrapolation a few hundred
	// meters off the sensed corridors must not produce physically absurd
	// concentrations. Both zero disables clamping (e.g. unit covers built
	// by hand).
	ValueLo, ValueHi float64
	// Rounds is the number of Ad-KMN split rounds performed (diagnostics).
	Rounds int
}

// ErrEmptyCover is returned when interpolating with a cover that has no
// regions.
var ErrEmptyCover = errors.New("core: empty model cover")

// Centroids returns µ as a slice, in region order.
func (cv *Cover) Centroids() []geo.Point {
	out := make([]geo.Point, len(cv.Regions))
	for i, r := range cv.Regions {
		out[i] = r.Centroid
	}
	return out
}

// Size returns O, the number of models in the cover.
func (cv *Cover) Size() int { return len(cv.Regions) }

// ValidAt reports whether the cover may serve a query issued at stream
// time t (the model-cache check t_l ≤ t_n).
func (cv *Cover) ValidAt(t float64) bool {
	return t >= cv.ValidFrom && t <= cv.ValidUntil
}

// NearestRegion returns the index of the region whose centroid µ* is
// nearest to p. It returns -1 for an empty cover.
func (cv *Cover) NearestRegion(p geo.Point) int {
	if len(cv.Regions) == 0 {
		return -1
	}
	best, bestD := 0, cv.Regions[0].Centroid.Dist2(p)
	for i := 1; i < len(cv.Regions); i++ {
		if d := cv.Regions[i].Centroid.Dist2(p); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Interpolate answers Query 1 for the query tuple q_l = (t, x, y): find
// the centroid µ* nearest to (x, y) and evaluate its model M*.
func (cv *Cover) Interpolate(t, x, y float64) (float64, error) {
	idx := cv.NearestRegion(geo.Point{X: x, Y: y})
	if idx < 0 {
		return 0, ErrEmptyCover
	}
	v := cv.Regions[idx].Model.Predict(t, x, y)
	if cv.ValueLo < cv.ValueHi {
		if v < cv.ValueLo {
			v = cv.ValueLo
		} else if v > cv.ValueHi {
			v = cv.ValueHi
		}
	}
	return v, nil
}

// MaxApproxError returns the largest per-region approximation error.
func (cv *Cover) MaxApproxError() float64 {
	var max float64
	for _, r := range cv.Regions {
		if r.ApproxError > max {
			max = r.ApproxError
		}
	}
	return max
}

// MeanApproxError returns the tuple-weighted mean approximation error.
func (cv *Cover) MeanApproxError() float64 {
	var sum float64
	var n int
	for _, r := range cv.Regions {
		sum += r.ApproxError * float64(r.N)
		n += r.N
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Config parameterizes Ad-KMN.
type Config struct {
	// InitialK is the number of centroids before any adaptive split
	// (default 2, matching the paper's walkthrough in Figure 2).
	InitialK int
	// MaxK caps the number of centroids; adaptation stops when reached
	// (default 64). The cap bounds cover size — and therefore the
	// model-cache payload — on pathological windows.
	MaxK int
	// ErrThreshold is τn, the per-region approximation error threshold as
	// a fraction of the pollutant's normal range (default 0.02, the
	// paper's evaluation setting of 2%).
	ErrThreshold float64
	// Features selects the per-region model family (default linear on
	// x, y, t, the paper's "linear regression models").
	Features regress.Features
	// Pollutant identifies what the models predict (default CO2, the
	// paper's evaluation pollutant).
	Pollutant tuple.Pollutant
	// NormalSpan overrides the span used to normalize approximation
	// errors ("the normal range of s_i in the environment", §2.1). When
	// zero, the span defaults to the observed value range of the window —
	// the range of the phenomenon in the environment — falling back to
	// the pollutant's nominal range for degenerate (constant) windows.
	NormalSpan float64
	// MaxRounds bounds adaptive split rounds (default 32).
	MaxRounds int
	// MinRegionTuples is the smallest region Ad-KMN will split further
	// (default 16). Splitting below this chases sensor noise: a region
	// whose regression already uses only a handful of observations cannot
	// be improved by subdividing it.
	MinRegionTuples int
	// Cluster configures the underlying k-means runs.
	Cluster kmeans.Config
}

func (c Config) withDefaults() Config {
	if c.InitialK <= 0 {
		c.InitialK = 2
	}
	if c.MaxK <= 0 {
		c.MaxK = 64
	}
	if c.ErrThreshold <= 0 {
		c.ErrThreshold = 0.02
	}
	if c.Features == nil {
		c.Features = regress.LinearXYT
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 32
	}
	if c.MinRegionTuples <= 0 {
		c.MinRegionTuples = 16
	}
	return c
}

// BuildCover runs Ad-KMN over the window W_c and returns the resulting
// model cover. w must contain the raw tuples of window c for window
// length h (callers normally obtain it from the store); it must be
// non-empty.
//
// The algorithm follows §2.1: start from InitialK centroids computed with
// standard k-means over the tuple positions; partition tuples by nearest
// centroid; fit one regression model per region and compute its
// approximation error against the pollutant's normal range. While some
// region exceeds τn (and the centroid budget allows), introduce one new
// centroid at that region's worst-error position — "equivalent to
// splitting the region" — then re-estimate all centroids and refit.
func BuildCover(w tuple.Batch, c int, h float64, cfg Config) (*Cover, error) {
	cfg = cfg.withDefaults()
	if len(w) == 0 {
		return nil, errors.New("core: cannot build a cover over an empty window")
	}
	if h <= 0 {
		return nil, fmt.Errorf("core: window length %v, want > 0", h)
	}
	pts := w.Positions()

	// MaxK caps the cover size from the start: the initial k must respect
	// it too, and neither may exceed the tuple count.
	maxCentroids := cfg.MaxK
	if maxCentroids > len(pts) {
		maxCentroids = len(pts)
	}
	k := cfg.InitialK
	if k > maxCentroids {
		k = maxCentroids
	}
	res, err := kmeans.Run(pts, k, cfg.Cluster)
	if err != nil {
		return nil, fmt.Errorf("core: initial clustering: %w", err)
	}

	normalSpan := normalSpanFor(w, cfg)

	var (
		regions []RegionModel
		rounds  int
	)
	maxK := maxCentroids
	for rounds = 0; ; rounds++ {
		regions, err = fitRegions(w, res, cfg, normalSpan)
		if err != nil {
			return nil, err
		}
		if rounds >= cfg.MaxRounds || len(res.Centroids) >= maxK {
			break
		}
		// Collect one split point per offending region: the worst-error
		// tuple position in that region (Figure 2's "positions with worst
		// error" become the injected centroids).
		newCentroids := splitCandidates(w, res, regions, cfg, maxK)
		if len(newCentroids) == 0 {
			break // every region meets τn
		}
		seed := append(append([]geo.Point{}, res.Centroids...), newCentroids...)
		res, err = kmeans.Refine(pts, seed, cfg.Cluster)
		if err != nil {
			return nil, fmt.Errorf("core: refine after split: %w", err)
		}
	}

	start, end := tuple.WindowBounds(c, h)
	lo, hi := clampRange(w)
	return &Cover{
		Pollutant:   cfg.Pollutant,
		WindowIndex: c,
		ValidFrom:   start,
		ValidUntil:  end,
		Regions:     regions,
		Rounds:      rounds,
		ValueLo:     lo,
		ValueHi:     hi,
	}, nil
}

// clampRange returns the window's observed value range widened by 10% on
// each side.
func clampRange(w tuple.Batch) (lo, hi float64) {
	for i, r := range w {
		if i == 0 || r.S < lo {
			lo = r.S
		}
		if i == 0 || r.S > hi {
			hi = r.S
		}
	}
	margin := 0.1 * (hi - lo)
	return lo - margin, hi + margin
}

// normalSpanFor resolves the error-normalization span per Config rules.
func normalSpanFor(w tuple.Batch, cfg Config) float64 {
	if cfg.NormalSpan > 0 {
		return cfg.NormalSpan
	}
	var min, max float64
	for i, r := range w {
		if i == 0 || r.S < min {
			min = r.S
		}
		if i == 0 || r.S > max {
			max = r.S
		}
	}
	if span := max - min; span > 0 {
		return span
	}
	lo, hi := cfg.Pollutant.NormalRange()
	return hi - lo
}

// fitRegions fits one model per cluster and computes approximation errors.
// Clusters with fewer than 2·dim observations get a mean-only model in the
// same feature family: a full regression on a handful of points
// extrapolates wildly outside its cluster.
func fitRegions(w tuple.Batch, res *kmeans.Result, cfg Config, normalSpan float64) ([]RegionModel, error) {
	f := cfg.Features
	k := len(res.Centroids)
	// Gather per-region observation arrays.
	type obs struct{ ts, xs, ys, ss []float64 }
	byRegion := make([]obs, k)
	for i, r := range w {
		a := res.Assign[i]
		byRegion[a].ts = append(byRegion[a].ts, r.T)
		byRegion[a].xs = append(byRegion[a].xs, r.X)
		byRegion[a].ys = append(byRegion[a].ys, r.Y)
		byRegion[a].ss = append(byRegion[a].ss, r.S)
	}
	regions := make([]RegionModel, 0, k)
	for j := 0; j < k; j++ {
		o := byRegion[j]
		if len(o.ss) == 0 {
			// Lloyd re-seeds empty clusters, so this only occurs when two
			// centroids coincide; such a region contributes nothing and is
			// dropped from the cover.
			continue
		}
		var m *regress.Model
		var err error
		if len(o.ss) < 2*f.Dim() {
			m, err = regress.MeanModel(f, o.ss)
		} else {
			m, err = regress.Fit(f, o.ts, o.xs, o.ys, o.ss)
		}
		if err != nil {
			return nil, fmt.Errorf("core: fit region %d: %w", j, err)
		}
		var absErr float64
		for i := range o.ss {
			d := m.Predict(o.ts[i], o.xs[i], o.ys[i]) - o.ss[i]
			if d < 0 {
				d = -d
			}
			absErr += d
		}
		regions = append(regions, RegionModel{
			Centroid:    res.Centroids[j],
			Model:       m,
			ApproxError: absErr / float64(len(o.ss)) / normalSpan,
			N:           len(o.ss),
		})
	}
	if len(regions) == 0 {
		return nil, errors.New("core: all regions empty")
	}
	return regions, nil
}

// splitCandidates returns new centroid positions for regions whose
// approximation error exceeds τn, capped so the total stays within maxK.
// Regions below MinRegionTuples are never split: their residual error is
// noise, not structure.
func splitCandidates(w tuple.Batch, res *kmeans.Result, regions []RegionModel, cfg Config, maxK int) []geo.Point {
	tau := cfg.ErrThreshold
	budget := maxK - len(res.Centroids)
	if budget <= 0 {
		return nil
	}
	// Map from centroid to region (regions may have dropped empty
	// clusters, so match by centroid value).
	regionOf := make(map[geo.Point]*RegionModel, len(regions))
	for i := range regions {
		regionOf[regions[i].Centroid] = &regions[i]
	}
	// For each offending cluster, find its worst-error tuple position.
	type worst struct {
		pos geo.Point
		err float64
		bad bool
	}
	worstByCluster := make([]worst, len(res.Centroids))
	for i, r := range w {
		a := res.Assign[i]
		reg, ok := regionOf[res.Centroids[a]]
		if !ok || reg.ApproxError <= tau || reg.N < cfg.MinRegionTuples {
			continue
		}
		d := reg.Model.Predict(r.T, r.X, r.Y) - r.S
		if d < 0 {
			d = -d
		}
		if !worstByCluster[a].bad || d > worstByCluster[a].err {
			worstByCluster[a] = worst{pos: r.Pos(), err: d, bad: true}
		}
	}
	var out []geo.Point
	for a := range worstByCluster {
		if !worstByCluster[a].bad {
			continue
		}
		// Do not inject a centroid that coincides with the existing one:
		// it would create a duplicate cluster with no splitting effect.
		if worstByCluster[a].pos == res.Centroids[a] {
			continue
		}
		out = append(out, worstByCluster[a].pos)
		if len(out) >= budget {
			break
		}
	}
	return out
}
