package core

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/kmeans"
	"repro/internal/store"
	"repro/internal/tuple"
)

func clusterSeed(seed int64) kmeans.Config { return kmeans.Config{Seed: seed} }

func fillStore(t *testing.T, h float64, windows int, perWindow int) *store.Store {
	t.Helper()
	st := store.MustOpenMemory(h)
	rng := rand.New(rand.NewSource(42))
	for c := 0; c < windows; c++ {
		b := make(tuple.Batch, perWindow)
		start := float64(c) * h
		for i := range b {
			b[i] = tuple.Raw{
				T: start + rng.Float64()*h,
				X: rng.Float64() * 2000,
				Y: rng.Float64() * 2000,
				S: 400 + rng.Float64()*100,
			}
		}
		if err := st.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestMaintainerBuildsAndCaches(t *testing.T) {
	st := fillStore(t, 100, 3, 50)
	m := NewMaintainer(st, Config{Cluster: clusterSeed(1)})
	cv1, err := m.CoverFor(1)
	if err != nil {
		t.Fatal(err)
	}
	if cv1.WindowIndex != 1 {
		t.Errorf("WindowIndex = %d, want 1", cv1.WindowIndex)
	}
	cv1b, err := m.CoverFor(1)
	if err != nil {
		t.Fatal(err)
	}
	if cv1 != cv1b {
		t.Error("second CoverFor should return the cached pointer")
	}
	if got := m.CachedWindows(); len(got) != 1 || got[0] != 1 {
		t.Errorf("CachedWindows = %v", got)
	}
}

func TestMaintainerCoverAt(t *testing.T) {
	st := fillStore(t, 100, 3, 50)
	m := NewMaintainer(st, Config{Cluster: clusterSeed(2)})
	cv, err := m.CoverAt(250)
	if err != nil {
		t.Fatal(err)
	}
	if cv.WindowIndex != 2 {
		t.Errorf("WindowIndex = %d, want 2", cv.WindowIndex)
	}
	if !cv.ValidAt(250) {
		t.Error("cover must be valid at its query time")
	}
	if _, err := m.CoverAt(-5); err == nil {
		t.Error("expected error for negative time")
	}
}

func TestMaintainerEmptyWindow(t *testing.T) {
	st := fillStore(t, 100, 2, 10)
	m := NewMaintainer(st, Config{Cluster: clusterSeed(3)})
	if _, err := m.CoverFor(99); err == nil {
		t.Error("expected error for empty window")
	}
	// Errors are not cached: a later fill must succeed.
	b := tuple.Batch{{T: 9950, X: 1, Y: 1, S: 400}}
	if err := st.Append(b); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CoverFor(99); err != nil {
		t.Errorf("cover after late fill: %v", err)
	}
}

func TestMaintainerInvalidate(t *testing.T) {
	st := fillStore(t, 100, 1, 30)
	m := NewMaintainer(st, Config{Cluster: clusterSeed(4)})
	cv1, err := m.CoverFor(0)
	if err != nil {
		t.Fatal(err)
	}
	m.Invalidate(0)
	cv2, err := m.CoverFor(0)
	if err != nil {
		t.Fatal(err)
	}
	if cv1 == cv2 {
		t.Error("Invalidate should force a rebuild")
	}
}

func TestMaintainerConcurrentSingleBuild(t *testing.T) {
	st := fillStore(t, 100, 1, 2000)
	m := NewMaintainer(st, Config{Cluster: clusterSeed(5)})
	const goroutines = 16
	covers := make([]*Cover, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cv, err := m.CoverFor(0)
			if err != nil {
				t.Error(err)
				return
			}
			covers[g] = cv
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if covers[g] != covers[0] {
			t.Fatal("concurrent CoverFor returned different covers; build must be deduplicated")
		}
	}
}

// TestMaintainerInvalidateDuringBuild is the stale-cover race regression
// test: an Invalidate (late data) that lands while a build is in flight
// must not be clobbered when the build completes. The build hook pauses
// the first build after it has read the window, an ingest-plus-invalidate
// happens in that gap, and the post-invalidation cover must be rebuilt
// from the window including the late data.
func TestMaintainerInvalidateDuringBuild(t *testing.T) {
	st := fillStore(t, 100, 1, 30)
	m := NewMaintainer(st, Config{Cluster: clusterSeed(6)})
	entered := make(chan struct{})
	release := make(chan struct{})
	var first atomic.Bool
	m.testBuildHook = func(c int) {
		if first.CompareAndSwap(false, true) {
			close(entered)
			<-release
		}
	}

	type result struct {
		cv  *Cover
		err error
	}
	done := make(chan result)
	go func() {
		cv, err := m.CoverFor(0)
		done <- result{cv, err}
	}()
	<-entered

	// Late data arrives for window 0 while its build holds the old
	// snapshot; the engine would Append then Invalidate.
	late := tuple.Batch{{T: 50, X: 1, Y: 1, S: 999}}
	if err := st.Append(late); err != nil {
		t.Fatal(err)
	}
	m.Invalidate(0)
	close(release)
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}

	// The stale build must not have been re-cached.
	if got := m.CachedWindows(); len(got) != 0 {
		t.Fatalf("stale build was cached: CachedWindows = %v", got)
	}
	cv2, err := m.CoverFor(0)
	if err != nil {
		t.Fatal(err)
	}
	if cv2 == r.cv {
		t.Fatal("post-invalidation CoverFor returned the stale cover")
	}
	// The rebuilt cover must reflect the late tuple: it was built from 31
	// tuples, the stale one from 30.
	if cv3, err := m.CoverFor(0); err != nil || cv3 != cv2 {
		t.Fatalf("rebuilt cover not cached: %v %v", cv3, err)
	}
}

// TestMaintainerEvictionBound drives rolling ingest through a
// retention-bounded store and checks the cover cache never outgrows the
// retention horizon — the Figure 1 server under sustained ingest.
func TestMaintainerEvictionBound(t *testing.T) {
	const retain = 3
	st, err := store.Open(store.Config{WindowLength: 100, Retain: retain})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMaintainer(st, Config{Cluster: clusterSeed(7)})
	rng := rand.New(rand.NewSource(7))
	for c := 0; c < 20; c++ {
		b := make(tuple.Batch, 30)
		for i := range b {
			b[i] = tuple.Raw{
				T: float64(c)*100 + rng.Float64()*100,
				X: rng.Float64() * 2000,
				Y: rng.Float64() * 2000,
				S: 400 + rng.Float64()*100,
			}
		}
		if err := st.Append(b); err != nil {
			t.Fatal(err)
		}
		if _, err := m.CoverFor(c); err != nil {
			t.Fatalf("window %d: %v", c, err)
		}
		if got := len(m.CachedWindows()); got > retain {
			t.Fatalf("after window %d: %d cached covers, want <= %d", c, got, retain)
		}
	}
	// Only retained windows may remain cached.
	retained := map[int]bool{}
	for _, c := range st.WindowIndexes() {
		retained[c] = true
	}
	for _, c := range m.CachedWindows() {
		if !retained[c] {
			t.Errorf("cover cached for evicted window %d", c)
		}
	}
}

// TestMaintainerPrimeRespectsRetain checks a warm restart cannot
// resurrect covers past the retention horizon.
func TestMaintainerPrimeRespectsRetain(t *testing.T) {
	st := fillStore(t, 100, 3, 50)
	src := NewMaintainer(st, Config{Cluster: clusterSeed(8)})
	covers := map[int]*Cover{}
	for c := 0; c < 3; c++ {
		cv, err := src.CoverFor(c)
		if err != nil {
			t.Fatal(err)
		}
		covers[c] = cv
	}

	bounded, err := store.Open(store.Config{WindowLength: 100, Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMaintainer(bounded, Config{Cluster: clusterSeed(8)})
	m.Prime(covers)
	got := m.CachedWindows()
	sort.Ints(got)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("primed windows = %v, want the newest 2 ([1 2])", got)
	}

	// A store whose data has moved past the snapshot drops ALL primed
	// covers behind its horizon, however few they are: with retained
	// windows around index 50 and Retain 2, covers 0..2 are long evicted.
	ahead, err := store.Open(store.Config{WindowLength: 100, Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ahead.Append(tuple.Batch{{T: 5050, X: 1, Y: 1, S: 400}}); err != nil {
		t.Fatal(err)
	}
	m2 := NewMaintainer(ahead, Config{Cluster: clusterSeed(8)})
	m2.Prime(covers)
	if got := m2.CachedWindows(); len(got) != 0 {
		t.Errorf("stale primed windows survived past the horizon: %v", got)
	}

	// Sparse histories: eviction is count-based over actual indexes, so
	// a retained old window (index 0, with a gap to 50) keeps its primed
	// cover — only covers older than the oldest retained window drop.
	sparse, err := store.Open(store.Config{WindowLength: 100, Retain: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sparse.Append(tuple.Batch{{T: 50, X: 1, Y: 1, S: 400}, {T: 5050, X: 1, Y: 1, S: 400}}); err != nil {
		t.Fatal(err)
	}
	m3 := NewMaintainer(sparse, Config{Cluster: clusterSeed(8)})
	m3.Prime(covers) // windows 0,1,2: all >= oldest retained (0)
	got3 := m3.CachedWindows()
	sort.Ints(got3)
	if len(got3) != 3 {
		t.Errorf("sparse store dropped retained-range covers: %v", got3)
	}
}

// TestMaintainerEvictsPrimedCoversBehindHorizon: primed covers for
// windows the store never held must still fall out of the cache once the
// retention horizon passes them — store eviction only reports windows it
// actually held.
func TestMaintainerEvictsPrimedCoversBehindHorizon(t *testing.T) {
	donor := NewMaintainer(fillStore(t, 100, 2, 40), Config{Cluster: clusterSeed(9)})
	covers := map[int]*Cover{}
	for c := 0; c < 2; c++ {
		cv, err := donor.CoverFor(c)
		if err != nil {
			t.Fatal(err)
		}
		covers[c] = cv
	}

	const retain = 2
	st, err := store.Open(store.Config{WindowLength: 100, Retain: retain})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMaintainer(st, Config{Cluster: clusterSeed(9)})
	m.Prime(covers) // windows 0,1 — never held by st
	rng := rand.New(rand.NewSource(9))
	for c := 5; c < 10; c++ {
		b := make(tuple.Batch, 20)
		for i := range b {
			b[i] = tuple.Raw{T: float64(c)*100 + rng.Float64()*100, X: rng.Float64() * 500, Y: rng.Float64() * 500, S: 420}
		}
		if err := st.Append(b); err != nil {
			t.Fatal(err)
		}
		if _, err := m.CoverFor(c); err != nil {
			t.Fatal(err)
		}
	}
	got := m.CachedWindows()
	sort.Ints(got)
	if len(got) > retain {
		t.Errorf("cached covers %v exceed Retain %d", got, retain)
	}
	for _, c := range got {
		if c < 5 {
			t.Errorf("primed cover for window %d survived past the retention horizon", c)
		}
	}
}
