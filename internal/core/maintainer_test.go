package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/store"
	"repro/internal/tuple"
)

func clusterSeed(seed int64) cluster.Config { return cluster.Config{Seed: seed} }

func fillStore(t *testing.T, h float64, windows int, perWindow int) *store.Store {
	t.Helper()
	st := store.MustOpenMemory(h)
	rng := rand.New(rand.NewSource(42))
	for c := 0; c < windows; c++ {
		b := make(tuple.Batch, perWindow)
		start := float64(c) * h
		for i := range b {
			b[i] = tuple.Raw{
				T: start + rng.Float64()*h,
				X: rng.Float64() * 2000,
				Y: rng.Float64() * 2000,
				S: 400 + rng.Float64()*100,
			}
		}
		if err := st.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestMaintainerBuildsAndCaches(t *testing.T) {
	st := fillStore(t, 100, 3, 50)
	m := NewMaintainer(st, Config{Cluster: clusterSeed(1)})
	cv1, err := m.CoverFor(1)
	if err != nil {
		t.Fatal(err)
	}
	if cv1.WindowIndex != 1 {
		t.Errorf("WindowIndex = %d, want 1", cv1.WindowIndex)
	}
	cv1b, err := m.CoverFor(1)
	if err != nil {
		t.Fatal(err)
	}
	if cv1 != cv1b {
		t.Error("second CoverFor should return the cached pointer")
	}
	if got := m.CachedWindows(); len(got) != 1 || got[0] != 1 {
		t.Errorf("CachedWindows = %v", got)
	}
}

func TestMaintainerCoverAt(t *testing.T) {
	st := fillStore(t, 100, 3, 50)
	m := NewMaintainer(st, Config{Cluster: clusterSeed(2)})
	cv, err := m.CoverAt(250)
	if err != nil {
		t.Fatal(err)
	}
	if cv.WindowIndex != 2 {
		t.Errorf("WindowIndex = %d, want 2", cv.WindowIndex)
	}
	if !cv.ValidAt(250) {
		t.Error("cover must be valid at its query time")
	}
	if _, err := m.CoverAt(-5); err == nil {
		t.Error("expected error for negative time")
	}
}

func TestMaintainerEmptyWindow(t *testing.T) {
	st := fillStore(t, 100, 2, 10)
	m := NewMaintainer(st, Config{Cluster: clusterSeed(3)})
	if _, err := m.CoverFor(99); err == nil {
		t.Error("expected error for empty window")
	}
	// Errors are not cached: a later fill must succeed.
	b := tuple.Batch{{T: 9950, X: 1, Y: 1, S: 400}}
	if err := st.Append(b); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CoverFor(99); err != nil {
		t.Errorf("cover after late fill: %v", err)
	}
}

func TestMaintainerInvalidate(t *testing.T) {
	st := fillStore(t, 100, 1, 30)
	m := NewMaintainer(st, Config{Cluster: clusterSeed(4)})
	cv1, err := m.CoverFor(0)
	if err != nil {
		t.Fatal(err)
	}
	m.Invalidate(0)
	cv2, err := m.CoverFor(0)
	if err != nil {
		t.Fatal(err)
	}
	if cv1 == cv2 {
		t.Error("Invalidate should force a rebuild")
	}
}

func TestMaintainerConcurrentSingleBuild(t *testing.T) {
	st := fillStore(t, 100, 1, 2000)
	m := NewMaintainer(st, Config{Cluster: clusterSeed(5)})
	const goroutines = 16
	covers := make([]*Cover, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cv, err := m.CoverFor(0)
			if err != nil {
				t.Error(err)
				return
			}
			covers[g] = cv
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if covers[g] != covers[0] {
			t.Fatal("concurrent CoverFor returned different covers; build must be deduplicated")
		}
	}
}
