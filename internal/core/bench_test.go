package core

import (
	"math/rand"
	"testing"

	"repro/internal/tuple"
)

func benchWindow(n int) tuple.Batch {
	rng := rand.New(rand.NewSource(1))
	w := make(tuple.Batch, n)
	for i := range w {
		x, y := rng.Float64()*4000, rng.Float64()*4000
		w[i] = tuple.Raw{T: rng.Float64() * 3600, X: x, Y: y,
			S: 420 + 0.05*x + rng.NormFloat64()*12}
	}
	return w
}

func BenchmarkBuildCover1000(b *testing.B) {
	w := benchWindow(1000)
	cfg := Config{Cluster: clusterSeed(1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildCover(w, 0, 3600, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpolate(b *testing.B) {
	w := benchWindow(1000)
	cv, err := BuildCover(w, 0, 3600, Config{Cluster: clusterSeed(1)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := float64(i % 1000)
		if _, err := cv.Interpolate(f, f*4, f*3); err != nil {
			b.Fatal(err)
		}
	}
}
