package core

import (
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/tuple"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSchedulerBuildsInvalidatedWindows checks the basic loop: an
// invalidation queues a background build and the cover lands in the
// cache without any query.
func TestSchedulerBuildsInvalidatedWindows(t *testing.T) {
	st := fillStore(t, 100, 3, 50)
	m := NewMaintainer(st, Config{Cluster: clusterSeed(1)})
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Close()
	defer s.Watch(m)()

	for c := 0; c < 3; c++ {
		m.Invalidate(c)
	}
	s.Wait()
	got := m.CachedWindows()
	sort.Ints(got)
	if len(got) != 3 {
		t.Fatalf("CachedWindows = %v, want windows 0..2 prebuilt", got)
	}
	stats := s.Stats()
	if stats.Built != 3 || stats.Scheduled != 3 {
		t.Fatalf("Stats = %+v, want 3 scheduled and built", stats)
	}
}

// TestSchedulerPrefersRecentWindows gates the maintainer's build path
// and checks queued windows are built newest-first.
func TestSchedulerPrefersRecentWindows(t *testing.T) {
	st := fillStore(t, 100, 5, 40)
	m := NewMaintainer(st, Config{Cluster: clusterSeed(2)})
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Close()
	defer s.Watch(m)()

	var mu sync.Mutex
	var order []int
	release := make(chan struct{})
	entered := make(chan int, 8)
	m.testBuildHook = func(c int) {
		mu.Lock()
		order = append(order, c)
		mu.Unlock()
		entered <- c
		<-release
	}

	m.Invalidate(0) // worker picks this up and blocks in the build
	<-entered
	// Now queue the rest while the worker is busy; priority decides.
	for _, c := range []int{1, 3, 2, 4} {
		m.Invalidate(c)
	}
	waitFor(t, "queue to fill", func() bool { return s.Stats().QueueLen == 4 })
	close(release)
	s.Wait()

	mu.Lock()
	defer mu.Unlock()
	want := []int{0, 4, 3, 2, 1}
	if len(order) != len(want) {
		t.Fatalf("build order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("build order = %v, want %v (newest first)", order, want)
		}
	}
}

// TestSchedulerDedupsPendingWindows re-invalidates a queued window and
// checks it is admitted once.
func TestSchedulerDedupsPendingWindows(t *testing.T) {
	st := fillStore(t, 100, 2, 40)
	m := NewMaintainer(st, Config{Cluster: clusterSeed(3)})
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Close()
	defer s.Watch(m)()

	entered := make(chan int, 4)
	release := make(chan struct{})
	m.testBuildHook = func(c int) {
		entered <- c
		<-release
	}
	m.Invalidate(0)
	<-entered // worker busy on window 0
	for i := 0; i < 5; i++ {
		m.Invalidate(1)
	}
	waitFor(t, "window 1 to queue", func() bool { return s.Stats().QueueLen == 1 })
	if got := s.Stats().Scheduled; got != 2 {
		t.Fatalf("Scheduled = %d, want 2 (duplicates absorbed)", got)
	}
	close(release)
	s.Wait()
}

// TestSchedulerSkipsEvictedWindows checks a build whose window vanished
// (retention) is skipped, not failed.
func TestSchedulerSkipsEvictedWindows(t *testing.T) {
	st := fillStore(t, 100, 3, 40)
	m := NewMaintainer(st, Config{Cluster: clusterSeed(4)})
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Close()

	// Window 9 holds no data: scheduling it directly models the race
	// where eviction lands between Invalidate and the worker.
	s.Schedule(m, 9)
	s.Wait()
	stats := s.Stats()
	if stats.Skipped != 1 || stats.Failed != 0 || stats.Built != 0 {
		t.Fatalf("Stats = %+v, want exactly one skip", stats)
	}
}

// TestSchedulerOverflowDropsOldest fills MaxQueue and checks a newer
// window displaces the oldest pending build, while an older one is
// refused.
func TestSchedulerOverflowDropsOldest(t *testing.T) {
	st := fillStore(t, 100, 8, 30)
	m := NewMaintainer(st, Config{Cluster: clusterSeed(5)})
	s := NewScheduler(SchedulerConfig{Workers: 1, MaxQueue: 2})
	defer s.Close()

	entered := make(chan int, 8)
	release := make(chan struct{})
	m.testBuildHook = func(c int) {
		entered <- c
		<-release
	}
	s.Schedule(m, 5) // occupies the worker
	<-entered
	s.Schedule(m, 2)
	s.Schedule(m, 3) // queue now [2 3], full
	s.Schedule(m, 1) // older than everything pending: refused
	s.Schedule(m, 4) // newer: displaces 2
	st5 := s.Stats()
	if st5.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2 (one refusal + one displacement)", st5.Dropped)
	}
	if st5.QueueLen != 2 {
		t.Fatalf("QueueLen = %d, want 2", st5.QueueLen)
	}
	close(release)
	s.Wait()
	got := m.CachedWindows()
	sort.Ints(got)
	for _, c := range got {
		if c == 1 || c == 2 {
			t.Fatalf("dropped window %d was built anyway (cached %v)", c, got)
		}
	}
}

// TestSchedulerNilIsInert checks the disabled configuration: a nil
// scheduler absorbs every call.
func TestSchedulerNilIsInert(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: -1})
	if s != nil {
		t.Fatal("Workers < 0 should disable the scheduler")
	}
	st := store.MustOpenMemory(100)
	m := NewMaintainer(st, Config{Cluster: clusterSeed(6)})
	unwatch := s.Watch(m)
	s.Schedule(m, 1)
	s.Wait()
	if got := s.Stats(); got != (SchedulerStats{}) {
		t.Fatalf("nil scheduler stats = %+v", got)
	}
	unwatch()
	s.Close()
	if err := st.Append(tuple.Batch{{T: 10, X: 1, Y: 1, S: 400}}); err != nil {
		t.Fatal(err)
	}
	m.Invalidate(0) // hook fan-out with a nil scheduler must not panic
}

// TestSchedulerStaleRebuildConverges interleaves an invalidation into a
// background build: the stale result must not be cached, and the re-queued
// build must converge to a cover of the latest data.
func TestSchedulerStaleRebuildConverges(t *testing.T) {
	st := fillStore(t, 100, 1, 40)
	m := NewMaintainer(st, Config{Cluster: clusterSeed(7)})
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Close()
	defer s.Watch(m)()

	entered := make(chan int, 4)
	release := make(chan struct{}, 4)
	var gate sync.Mutex
	gated := true
	m.testBuildHook = func(c int) {
		gate.Lock()
		g := gated
		gate.Unlock()
		if g {
			entered <- c
			<-release
		}
	}

	m.Invalidate(0)
	<-entered // background build of window 0 in flight
	// New data lands mid-build: the engine would append + invalidate.
	if err := st.Append(tuple.Batch{{T: 50, X: 1, Y: 1, S: 999}}); err != nil {
		t.Fatal(err)
	}
	gate.Lock()
	gated = false // let the rebuild run ungated
	gate.Unlock()
	m.Invalidate(0)       // stales the in-flight build, re-queues
	release <- struct{}{} // finish the stale build
	s.Wait()

	// The converged cover must exist and include the late tuple's window
	// data (41 tuples built, not 40): CoverFor returns the cached pointer
	// without rebuilding.
	cv, err := m.CoverFor(0)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, r := range cv.Regions {
		n += r.N
	}
	if n != 41 {
		t.Fatalf("converged cover built from %d tuples, want 41 (stale build cached?)", n)
	}
}
