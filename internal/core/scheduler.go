package core

import (
	"container/heap"
	"sync"
)

// SchedulerConfig tunes a Scheduler. The zero value is usable.
type SchedulerConfig struct {
	// Workers bounds concurrent background cover builds. 0 = 2; < 0
	// disables the scheduler entirely (NewScheduler returns nil and every
	// build stays on the query path).
	Workers int
	// MaxQueue bounds pending builds. When full, admitting a more recent
	// window drops the oldest pending one — the query path still builds
	// dropped windows synchronously on demand. 0 = 128.
	MaxQueue int
}

// SchedulerStats counts what the scheduler has processed.
type SchedulerStats struct {
	// Scheduled is the number of build requests admitted to the queue
	// (deduplicated: re-invalidating an already-queued window does not
	// count again).
	Scheduled int64
	// Built is the number of covers built successfully in the background.
	Built int64
	// Skipped counts builds abandoned because the window was empty or
	// evicted by the time a worker reached it.
	Skipped int64
	// Failed counts background builds that errored.
	Failed int64
	// Dropped counts pending builds displaced by queue overflow.
	Dropped int64
	// QueueLen is the current number of pending builds.
	QueueLen int
	// Inflight is the number of builds running right now.
	Inflight int
}

// buildKey identifies one pending build: a window of one maintainer
// (one scheduler serves every pollutant shard of an engine).
type buildKey struct {
	m *Maintainer
	c int
}

// buildHeap is a max-heap on window index: the most recent stream-time
// window — the one fresh ingest (and therefore fresh queries) is hitting
// — builds first.
type buildHeap []buildKey

func (h buildHeap) Len() int            { return len(h) }
func (h buildHeap) Less(i, j int) bool  { return h[i].c > h[j].c }
func (h buildHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *buildHeap) Push(x interface{}) { *h = append(*h, x.(buildKey)) }
func (h *buildHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Scheduler drains maintainer invalidations into a bounded priority
// build queue worked by background goroutines, so covers are rebuilt off
// the query path: after an ingest burst the hottest (most recent)
// windows are modeled before anyone asks. A query that races a pending
// build simply joins it (or builds synchronously) through the
// maintainer's ordinary CoverFor path — the scheduler is an accelerator,
// never a correctness dependency. If a window is invalidated again while
// its background build runs, the maintainer marks that build stale (it
// is not cached) and the new invalidation re-queues the window, so the
// scheduler converges to a cover of the latest data.
type Scheduler struct {
	cfg SchedulerConfig

	mu       sync.Mutex
	cond     *sync.Cond
	pending  map[buildKey]bool
	queue    buildHeap
	inflight int
	closed   bool
	wg       sync.WaitGroup

	scheduled int64
	built     int64
	skipped   int64
	failed    int64
	dropped   int64
}

// NewScheduler starts a scheduler with cfg.Workers background builders.
// A cfg.Workers < 0 returns nil: every method of a nil *Scheduler is
// safe and turns the scheduler into a no-op, so callers thread one
// handle regardless of configuration.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	if cfg.Workers < 0 {
		return nil
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 128
	}
	s := &Scheduler{cfg: cfg, pending: make(map[buildKey]bool)}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Watch subscribes the scheduler to m's invalidations: every
// invalidated (or first-touched) window is queued for a background
// rebuild. The returned function unsubscribes.
func (s *Scheduler) Watch(m *Maintainer) (unwatch func()) {
	if s == nil {
		return func() {}
	}
	return m.OnInvalidate(func(c int) { s.Schedule(m, c) })
}

// Schedule queues a background build of window c on maintainer m.
// Duplicates of an already-pending build are absorbed. When the queue is
// full, the oldest pending window is dropped if c is more recent —
// otherwise the request itself is dropped (the query path covers it).
func (s *Scheduler) Schedule(m *Maintainer, c int) {
	if s == nil {
		return
	}
	key := buildKey{m: m, c: c}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.pending[key] {
		return
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		oldest := s.oldestLocked()
		if oldest < 0 || s.queue[oldest].c >= c {
			s.dropped++
			return
		}
		dropped := s.queue[oldest]
		heap.Remove(&s.queue, oldest)
		delete(s.pending, dropped)
		s.dropped++
	}
	s.pending[key] = true
	heap.Push(&s.queue, key)
	s.scheduled++
	// Broadcast, not Signal: the one awoken waiter could be a Wait()er,
	// which would go straight back to sleep while every worker slept on.
	s.cond.Broadcast()
}

// WarmPrime queues a background build for every retained window of m
// that has no cover yet, returning how many were queued. After a
// restart this turns recovery into a warm start: the windows the
// snapshot did not cover (or that were replayed from the segment
// suffix) are modeled off the query path before anyone asks, most
// recent first — the same priority fresh ingest gets. A nil scheduler
// primes nothing.
func (s *Scheduler) WarmPrime(m *Maintainer) int {
	if s == nil || m == nil {
		return 0
	}
	missing := m.MissingCovers()
	for _, c := range missing {
		s.Schedule(m, c)
	}
	return len(missing)
}

// oldestLocked returns the index of the lowest-priority (oldest window)
// pending build, or -1 on an empty queue. Caller holds mu.
func (s *Scheduler) oldestLocked() int {
	if len(s.queue) == 0 {
		return -1
	}
	// The max-heap keeps its minimum somewhere in the leaf half; a linear
	// scan is fine at MaxQueue scale.
	oldest := 0
	for i := 1; i < len(s.queue); i++ {
		if s.queue[i].c < s.queue[oldest].c {
			oldest = i
		}
	}
	return oldest
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		key := heap.Pop(&s.queue).(buildKey)
		delete(s.pending, key)
		s.inflight++
		s.mu.Unlock()

		s.build(key)

		s.mu.Lock()
		s.inflight--
		if len(s.queue) == 0 && s.inflight == 0 {
			s.cond.Broadcast() // wake Wait()ers
		}
		s.mu.Unlock()
	}
}

// build performs one background cover build, classifying the outcome.
func (s *Scheduler) build(key buildKey) {
	// An empty window means it was evicted (or never held data) after
	// scheduling: building would just manufacture an error.
	if key.m.st.WindowLen(key.c) == 0 {
		s.mu.Lock()
		s.skipped++
		s.mu.Unlock()
		return
	}
	_, err := key.m.CoverFor(key.c)
	s.mu.Lock()
	if err != nil {
		s.failed++
	} else {
		s.built++
	}
	s.mu.Unlock()
}

// Wait blocks until the scheduler is idle: no pending and no in-flight
// builds. Builds scheduled while waiting extend the wait. A nil or
// closed scheduler is idle.
func (s *Scheduler) Wait() {
	if s == nil {
		return
	}
	s.mu.Lock()
	for (len(s.queue) > 0 || s.inflight > 0) && !s.closed {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Stats returns a snapshot of the scheduler counters.
func (s *Scheduler) Stats() SchedulerStats {
	if s == nil {
		return SchedulerStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return SchedulerStats{
		Scheduled: s.scheduled,
		Built:     s.built,
		Skipped:   s.skipped,
		Failed:    s.failed,
		Dropped:   s.dropped,
		QueueLen:  len(s.queue),
		Inflight:  s.inflight,
	}
}

// Close discards pending builds, stops the workers, and waits for any
// in-flight builds to finish. Safe to call twice and on nil.
func (s *Scheduler) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.queue = nil
	s.pending = make(map[buildKey]bool)
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}
