package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/regress"
	"repro/internal/tuple"
)

// twoZoneWindow builds a window with two spatially separated zones whose
// CO2 fields follow different linear surfaces, so a 2-region linear cover
// can be near exact.
func twoZoneWindow(rng *rand.Rand, n int) tuple.Batch {
	w := make(tuple.Batch, 0, n)
	for i := 0; i < n; i++ {
		t := rng.Float64() * 1000
		if i%2 == 0 {
			x := rng.Float64() * 1000
			y := rng.Float64() * 1000
			w = append(w, tuple.Raw{T: t, X: x, Y: y, S: 420 + 0.05*x + 0.02*y})
		} else {
			x := 8000 + rng.Float64()*1000
			y := 8000 + rng.Float64()*1000
			w = append(w, tuple.Raw{T: t, X: x, Y: y, S: 900 - 0.03*(x-8000) + 0.01*(y-8000)})
		}
	}
	return w
}

// bumpyWindow builds a window with a sharp local CO2 hotspot that a
// 2-region linear cover cannot capture, forcing Ad-KMN to split.
func bumpyWindow(rng *rand.Rand, n int) tuple.Batch {
	w := make(tuple.Batch, 0, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 4000
		y := rng.Float64() * 4000
		// Hotspot at (1000, 1000) with 300 m scale and +1500 ppm peak.
		dx, dy := x-1000, y-1000
		s := 420 + 1500*math.Exp(-(dx*dx+dy*dy)/(2*300*300))
		w = append(w, tuple.Raw{T: rng.Float64() * 1000, X: x, Y: y, S: s})
	}
	return w
}

func TestBuildCoverValidation(t *testing.T) {
	if _, err := BuildCover(nil, 0, 100, Config{}); err == nil {
		t.Error("expected error for empty window")
	}
	w := tuple.Batch{{T: 1, S: 400}}
	if _, err := BuildCover(w, 0, 0, Config{}); err == nil {
		t.Error("expected error for zero window length")
	}
}

func TestBuildCoverSinglePoint(t *testing.T) {
	w := tuple.Batch{{T: 50, X: 10, Y: 20, S: 480}}
	cv, err := BuildCover(w, 0, 100, Config{Cluster: clusterSeed(1)})
	if err != nil {
		t.Fatal(err)
	}
	if cv.Size() != 1 {
		t.Fatalf("Size = %d, want 1", cv.Size())
	}
	got, err := cv.Interpolate(50, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-480) > 1 {
		t.Errorf("Interpolate = %v, want ~480", got)
	}
}

func TestBuildCoverTwoZones(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := twoZoneWindow(rng, 400)
	cv, err := BuildCover(w, 0, 1000, Config{Cluster: clusterSeed(2)})
	if err != nil {
		t.Fatal(err)
	}
	// Piecewise-linear data: two regions suffice, adaptation shouldn't
	// blow the cover up.
	if cv.Size() < 2 || cv.Size() > 8 {
		t.Errorf("Size = %d, want small (2..8)", cv.Size())
	}
	if cv.MaxApproxError() > 0.02 {
		t.Errorf("MaxApproxError = %v, want ≤ τn = 0.02", cv.MaxApproxError())
	}
	// Interpolation accuracy in both zones.
	tests := []struct {
		x, y, want float64
	}{
		{500, 500, 420 + 0.05*500 + 0.02*500},
		{8500, 8500, 900 - 0.03*500 + 0.01*500},
	}
	for _, tt := range tests {
		got, err := cv.Interpolate(500, tt.x, tt.y)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 25 {
			t.Errorf("Interpolate(%v,%v) = %v, want ~%v", tt.x, tt.y, got, tt.want)
		}
	}
}

func TestAdKMNSplitsOnHotspot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := bumpyWindow(rng, 800)
	fixed, err := BuildFixedKCover(w, 0, 1000, 2, Config{Cluster: clusterSeed(4)})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := BuildCover(w, 0, 1000, Config{Cluster: clusterSeed(4)})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Size() <= fixed.Size() {
		t.Errorf("Ad-KMN should split beyond the initial k: adaptive=%d fixed=%d",
			adaptive.Size(), fixed.Size())
	}
	if adaptive.Rounds == 0 {
		t.Error("Ad-KMN performed no split rounds on hotspot data")
	}
	if adaptive.MeanApproxError() >= fixed.MeanApproxError() {
		t.Errorf("adaptive error %v should beat fixed-k error %v",
			adaptive.MeanApproxError(), fixed.MeanApproxError())
	}
}

func TestAdKMNRespectsMaxK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := bumpyWindow(rng, 600)
	cfg := Config{MaxK: 5, ErrThreshold: 1e-9, Cluster: clusterSeed(6)}
	cv, err := BuildCover(w, 0, 1000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cv.Size() > 5 {
		t.Errorf("Size = %d exceeds MaxK = 5", cv.Size())
	}
}

func TestAdKMNStopsWhenThresholdMet(t *testing.T) {
	// Perfectly linear, well-conditioned data (time and y decorrelated
	// from x): the initial 2 regions already satisfy τn, so no rounds
	// should run.
	w := make(tuple.Batch, 100)
	for i := range w {
		x := float64(i * 10)
		w[i] = tuple.Raw{
			T: float64((i * 37) % 97),
			X: x,
			Y: float64((i * 13) % 50),
			S: 400 + 0.01*x,
		}
	}
	cv, err := BuildCover(w, 0, 1000, Config{Cluster: clusterSeed(7)})
	if err != nil {
		t.Fatal(err)
	}
	if cv.Rounds != 0 {
		t.Errorf("Rounds = %d, want 0 for data the initial fit captures", cv.Rounds)
	}
	if cv.Size() != 2 {
		t.Errorf("Size = %d, want the initial 2", cv.Size())
	}
}

func TestCoverValidity(t *testing.T) {
	w := tuple.Batch{{T: 250, X: 1, Y: 1, S: 400}}
	cv, err := BuildCover(w, 2, 100, Config{Cluster: clusterSeed(8)})
	if err != nil {
		t.Fatal(err)
	}
	if cv.ValidFrom != 200 || cv.ValidUntil != 300 {
		t.Errorf("validity = [%v,%v], want [200,300]", cv.ValidFrom, cv.ValidUntil)
	}
	if !cv.ValidAt(250) || !cv.ValidAt(200) || !cv.ValidAt(300) {
		t.Error("cover should be valid inside its window")
	}
	if cv.ValidAt(199.9) || cv.ValidAt(300.1) {
		t.Error("cover should be invalid outside its window")
	}
}

func TestNearestRegionAndEmptyCover(t *testing.T) {
	var empty Cover
	if empty.NearestRegion(geo.Point{}) != -1 {
		t.Error("empty cover NearestRegion should be -1")
	}
	if _, err := empty.Interpolate(0, 0, 0); !errors.Is(err, ErrEmptyCover) {
		t.Errorf("want ErrEmptyCover, got %v", err)
	}

	m1, _ := regress.NewModel(regress.Constant, []float64{100})
	m2, _ := regress.NewModel(regress.Constant, []float64{200})
	cv := Cover{Regions: []RegionModel{
		{Centroid: geo.Point{X: 0}, Model: m1},
		{Centroid: geo.Point{X: 1000}, Model: m2},
	}}
	if got := cv.NearestRegion(geo.Point{X: 100}); got != 0 {
		t.Errorf("NearestRegion = %d, want 0", got)
	}
	if got := cv.NearestRegion(geo.Point{X: 900}); got != 1 {
		t.Errorf("NearestRegion = %d, want 1", got)
	}
	v, err := cv.Interpolate(0, 900, 0)
	if err != nil || v != 200 {
		t.Errorf("Interpolate = %v,%v want 200,nil", v, err)
	}
}

func TestCentroidsOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w := twoZoneWindow(rng, 200)
	cv, err := BuildCover(w, 0, 1000, Config{Cluster: clusterSeed(10)})
	if err != nil {
		t.Fatal(err)
	}
	cs := cv.Centroids()
	if len(cs) != cv.Size() {
		t.Fatalf("Centroids len = %d, want %d", len(cs), cv.Size())
	}
	for i, r := range cv.Regions {
		if cs[i] != r.Centroid {
			t.Errorf("centroid %d mismatch", i)
		}
	}
}

func TestErrorNormalizationSpans(t *testing.T) {
	w := make(tuple.Batch, 50)
	rng := rand.New(rand.NewSource(11))
	for i := range w {
		w[i] = tuple.Raw{T: float64(i), X: rng.Float64() * 100, Y: rng.Float64() * 100,
			S: 10 + rng.NormFloat64()*5}
	}
	// The same absolute error is a smaller fraction of a wider span.
	wide, err := BuildCover(w, 0, 1000, Config{
		NormalSpan: 5000, InitialK: 1, MaxK: 1, Cluster: clusterSeed(12)})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := BuildCover(w, 0, 1000, Config{
		NormalSpan: 50, InitialK: 1, MaxK: 1, Cluster: clusterSeed(12)})
	if err != nil {
		t.Fatal(err)
	}
	if wide.MeanApproxError() >= narrow.MeanApproxError() {
		t.Errorf("wide-span error %v should be below narrow-span %v",
			wide.MeanApproxError(), narrow.MeanApproxError())
	}
	if got := 100 * wide.MeanApproxError() / narrow.MeanApproxError(); math.Abs(got-1) > 1e-9 {
		t.Errorf("span ratio not linear: %v", got)
	}
}

func TestDefaultNormalSpanIsObservedRange(t *testing.T) {
	// Two windows with the same shape but different value spread: with the
	// default (observed-range) normalization, their error fractions match.
	mk := func(scale float64) tuple.Batch {
		w := make(tuple.Batch, 60)
		rng := rand.New(rand.NewSource(13))
		for i := range w {
			w[i] = tuple.Raw{T: float64(i), X: rng.Float64() * 100, Y: rng.Float64() * 100,
				S: 400 + scale*rng.NormFloat64()}
		}
		return w
	}
	a, err := BuildCover(mk(5), 0, 1000, Config{InitialK: 1, MaxK: 1, Cluster: clusterSeed(14)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildCover(mk(50), 0, 1000, Config{InitialK: 1, MaxK: 1, Cluster: clusterSeed(14)})
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.MeanApproxError(), b.MeanApproxError()
	if math.Abs(ra-rb)/rb > 1e-9 {
		t.Errorf("scale-invariant normalization violated: %v vs %v", ra, rb)
	}
	// A constant window falls back to the pollutant range rather than
	// dividing by zero.
	flat := make(tuple.Batch, 10)
	for i := range flat {
		flat[i] = tuple.Raw{T: float64(i), X: float64(i), Y: 0, S: 500}
	}
	cv, err := BuildCover(flat, 0, 1000, Config{InitialK: 1, MaxK: 1, Cluster: clusterSeed(15)})
	if err != nil {
		t.Fatal(err)
	}
	if cv.MeanApproxError() > 1e-6 {
		t.Errorf("constant window error = %v, want ≈0", cv.MeanApproxError())
	}
}

func TestBuildGridCover(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	w := twoZoneWindow(rng, 300)
	cv, err := BuildGridCover(w, 0, 1000, 4, Config{Cluster: clusterSeed(14)})
	if err != nil {
		t.Fatal(err)
	}
	// Two-zone data occupies 2 of 16 cells; empty cells are dropped.
	if cv.Size() < 2 || cv.Size() > 16 {
		t.Errorf("grid cover Size = %d", cv.Size())
	}
	v, err := cv.Interpolate(500, 500, 500)
	if err != nil {
		t.Fatal(err)
	}
	want := 420 + 0.05*500 + 0.02*500
	if math.Abs(v-want) > 50 {
		t.Errorf("grid Interpolate = %v, want ~%v", v, want)
	}
	if _, err := BuildGridCover(w, 0, 1000, 0, Config{}); err == nil {
		t.Error("expected error for cells=0")
	}
	if _, err := BuildGridCover(nil, 0, 1000, 4, Config{}); err == nil {
		t.Error("expected error for empty window")
	}
}

func TestBuildFixedKCoverValidation(t *testing.T) {
	w := tuple.Batch{{T: 1, X: 1, Y: 1, S: 400}}
	if _, err := BuildFixedKCover(w, 0, 100, 0, Config{}); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := BuildFixedKCover(nil, 0, 100, 2, Config{}); err == nil {
		t.Error("expected error for empty window")
	}
	// k > n clamps to n.
	cv, err := BuildFixedKCover(w, 0, 100, 10, Config{Cluster: clusterSeed(15)})
	if err != nil {
		t.Fatal(err)
	}
	if cv.Size() != 1 {
		t.Errorf("Size = %d, want 1", cv.Size())
	}
}

func TestAdaptiveBeatsGridAtEqualBudget(t *testing.T) {
	// The DESIGN.md ablation: on skewed hotspot data, Ad-KMN at its chosen
	// size should have lower error than a grid with at least as many
	// models.
	rng := rand.New(rand.NewSource(16))
	w := bumpyWindow(rng, 1000)
	ad, err := BuildCover(w, 0, 1000, Config{MaxK: 16, Cluster: clusterSeed(17)})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := BuildGridCover(w, 0, 1000, 4, Config{Cluster: clusterSeed(17)}) // 16 cells
	if err != nil {
		t.Fatal(err)
	}
	if ad.MeanApproxError() >= grid.MeanApproxError() {
		t.Errorf("Ad-KMN error %v should beat grid error %v (sizes %d vs %d)",
			ad.MeanApproxError(), grid.MeanApproxError(), ad.Size(), grid.Size())
	}
}
