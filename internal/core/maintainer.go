package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/store"
)

// Maintainer keeps model covers for the windows of a store, building each
// window's cover at most once and serving cached covers afterwards. It is
// the component at the center of Figure 1: raw tuples flow into the
// database, and the adaptive modeling layer maintains the `model_cover`
// abstraction the query processor reads.
//
// Maintainer is safe for concurrent use; concurrent requests for the same
// window build the cover once.
//
// # Cover lifecycle
//
// Each cached cover carries a per-window generation. Invalidate (late
// tuples) and store eviction (retention) advance the window's generation,
// which both drops the cached cover and marks any in-flight build for
// that window stale: when the stale build completes, its result is
// returned to the callers that were already waiting on it (their request
// predates the new data) but is NOT re-cached, so the next CoverFor sees
// the post-invalidation window. This closes the race where a build that
// started before an Invalidate would clobber the invalidation on
// completion.
//
// The maintainer registers itself with the store's eviction hook, so its
// cover cache is bounded by the store's retention horizon: when the store
// evicts windows, their covers (and any in-flight builds) are discarded
// too, keeping the cached-cover count ≤ the store's Retain bound under
// rolling ingest.
type Maintainer struct {
	st  *store.Store
	cfg Config

	unhook func() // detaches the store eviction hook

	mu       sync.Mutex
	covers   map[int]*Cover
	building map[int]*buildState

	// gens counts, per window, how many times the window's cover has
	// been dropped (invalidation or eviction). It only ever grows — at
	// 8 bytes per window ever touched that is negligible next to the
	// window data itself — so a (window, generation) pair identifies one
	// cover lifetime for the whole process lifetime. The HTTP layer
	// hashes generations into the ETag of continuous-query responses.
	gens map[int]uint64

	// invalHooks run after Invalidate drops a window, outside the
	// maintainer lock, in registration order. The scheduler subscribes
	// here to queue background rebuilds. Eviction does NOT fire these:
	// an evicted window is behind the retention horizon and rebuilding
	// it would be dead work.
	invalHooks map[int]func(c int)
	nextHookID int

	// testBuildHook, when set (by tests in this package), runs after the
	// window's tuples are read but before the built cover is installed —
	// the interleaving point of the stale-cover race.
	testBuildHook func(c int)
}

// buildState tracks one in-flight cover build. stale is guarded by the
// maintainer's mutex; cover and err are written once before done closes.
type buildState struct {
	done  chan struct{}
	stale bool
	cover *Cover
	err   error
}

// NewMaintainer returns a maintainer over st with the given Ad-KMN
// configuration, subscribed to st's window eviction so its cover cache
// never outgrows the store's retention horizon.
func NewMaintainer(st *store.Store, cfg Config) *Maintainer {
	m := &Maintainer{
		st:       st,
		cfg:      cfg,
		covers:   make(map[int]*Cover),
		building: make(map[int]*buildState),
		gens:     make(map[int]uint64),
	}
	m.unhook = st.OnEvict(m.dropWindows)
	return m
}

// Close detaches the maintainer from its store's eviction hook, so a
// discarded maintainer over a long-lived store is not kept alive (and
// invoked) by the store forever. The maintainer stays usable afterwards,
// but its cache is no longer trimmed by store eviction.
func (m *Maintainer) Close() { m.unhook() }

// CoverFor returns the model cover for window c, building it on first use.
//
//ctxcheck:allow the only wait is for a concurrent build of the same cover, which always closes done
func (m *Maintainer) CoverFor(c int) (*Cover, error) {
	m.mu.Lock()
	if cv, ok := m.covers[c]; ok {
		m.mu.Unlock()
		return cv, nil
	}
	if bs, ok := m.building[c]; ok {
		m.mu.Unlock()
		<-bs.done
		return bs.cover, bs.err
	}
	bs := &buildState{done: make(chan struct{})} //bounded: signal-only; the builder closes it, nothing sends
	m.building[c] = bs
	m.mu.Unlock()

	w := m.st.Window(c)
	if m.testBuildHook != nil {
		m.testBuildHook(c)
	}
	var cv *Cover
	var err error
	if len(w) == 0 {
		err = fmt.Errorf("core: window %d is empty", c)
	} else {
		cv, err = BuildCover(w, c, m.st.WindowLength(), m.cfg)
	}
	bs.cover, bs.err = cv, err

	m.mu.Lock()
	if err == nil && !bs.stale {
		m.covers[c] = cv
	}
	if m.building[c] == bs {
		delete(m.building, c)
	}
	m.mu.Unlock()
	close(bs.done)
	return cv, err
}

// CoverAt returns the cover for the window containing stream time t.
func (m *Maintainer) CoverAt(t float64) (*Cover, error) {
	if t < 0 {
		return nil, fmt.Errorf("core: negative query time %v", t)
	}
	_, c := m.st.WindowAt(t)
	return m.CoverFor(c)
}

// Invalidate drops the cached cover for window c (e.g. after late tuples
// arrive for a window that was already modeled). An in-flight build for c
// is marked stale: its result still answers the callers already waiting
// on it, but it is not cached, so later CoverFor calls rebuild from the
// post-invalidation window. Invalidation hooks registered with
// OnInvalidate run afterwards, outside the maintainer lock.
func (m *Maintainer) Invalidate(c int) {
	m.mu.Lock()
	m.dropLocked(c)
	var hooks []func(c int)
	if len(m.invalHooks) > 0 {
		ids := make([]int, 0, len(m.invalHooks))
		for id := range m.invalHooks {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		hooks = make([]func(c int), len(ids))
		for i, id := range ids {
			hooks[i] = m.invalHooks[id]
		}
	}
	m.mu.Unlock()
	for _, fn := range hooks {
		fn(c)
	}
}

// OnInvalidate registers fn to run after every Invalidate(c), outside
// the maintainer lock. It fires for first-touch windows too (the engine
// invalidates every window an ingest batch lands in), so a subscriber
// sees every window whose cover is missing or outdated — the feed the
// background build scheduler drains. The returned function unregisters
// the hook.
func (m *Maintainer) OnInvalidate(fn func(c int)) (unregister func()) {
	m.mu.Lock()
	if m.invalHooks == nil {
		m.invalHooks = make(map[int]func(c int))
	}
	id := m.nextHookID
	m.nextHookID++
	m.invalHooks[id] = fn
	m.mu.Unlock()
	return func() {
		m.mu.Lock()
		delete(m.invalHooks, id)
		m.mu.Unlock()
	}
}

// dropWindows is the store eviction hook. Every cover at or below the
// newest evicted index is dropped, not just the exact evicted set: the
// store only reports windows it actually held, but the cache may hold
// primed covers for windows the store never saw, and those are equally
// behind the retention horizon once newer windows are evicted.
func (m *Maintainer) dropWindows(evicted []int) {
	horizon := evicted[len(evicted)-1] // ascending order
	m.mu.Lock()
	for c := range m.covers {
		if c <= horizon {
			m.dropLocked(c)
		}
	}
	for c, bs := range m.building {
		if c <= horizon {
			m.gens[c]++
			bs.stale = true
			delete(m.building, c)
		}
	}
	m.mu.Unlock()
}

// dropLocked removes window c's cover and stales its in-flight build.
// Caller holds m.mu. Removing the build from the map (rather than only
// flagging it) lets a CoverFor that arrives after the invalidation start
// a fresh build immediately instead of joining the stale one.
func (m *Maintainer) dropLocked(c int) {
	m.gens[c]++
	delete(m.covers, c)
	if bs, ok := m.building[c]; ok {
		bs.stale = true
		delete(m.building, c)
	}
}

// Generation returns how many times window c's cover has been dropped.
// A changed generation means any previously served value for c may be
// stale; an equal generation means the cover (built or not) is the same
// lifetime. Windows never invalidated report 0.
func (m *Maintainer) Generation(c int) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gens[c]
}

// Snapshot returns the currently cached covers keyed by window index, for
// persistence.
func (m *Maintainer) Snapshot() map[int]*Cover {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int]*Cover, len(m.covers))
	for c, cv := range m.covers {
		out[c] = cv
	}
	return out
}

// Prime seeds the cache with previously persisted covers (warm restart).
// Existing entries for the same windows are replaced. When the store
// bounds retention, covers older than its oldest retained window are
// dropped and at most the newest Retain survive, so a warm restart never
// resurrects covers past the horizon nor holds more than Retain. A store
// with an unbounded Retain keeps everything.
func (m *Maintainer) Prime(covers map[int]*Cover) {
	retained := m.st.WindowIndexes() // ascending
	m.mu.Lock()
	defer m.mu.Unlock()
	for c, cv := range covers {
		if cv != nil && cv.Size() > 0 {
			m.covers[c] = cv
		}
	}
	r := m.st.Retain()
	if r == 0 {
		return
	}
	// Anything older than the store's oldest retained window is what a
	// running store would already have evicted — stale regardless of how
	// few covers were primed. (Eviction is count-based over the actual
	// indexes, so this holds for sparse window histories too.)
	if len(retained) > 0 {
		for c := range m.covers {
			if c < retained[0] {
				delete(m.covers, c)
			}
		}
	}
	if len(m.covers) <= r {
		return
	}
	idxs := make([]int, 0, len(m.covers))
	for c := range m.covers {
		idxs = append(idxs, c)
	}
	sort.Ints(idxs)
	for _, c := range idxs[:len(idxs)-r] {
		delete(m.covers, c)
	}
}

// MissingCovers returns the indexes of retained store windows that have
// neither a cached cover nor a build in flight, in ascending order —
// the windows a restarted server would pay an on-demand Ad-KMN build
// for on first query. The scheduler's WarmPrime feeds on it.
func (m *Maintainer) MissingCovers() []int {
	idxs := m.st.WindowIndexes() // ascending
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, 0, len(idxs))
	for _, c := range idxs {
		if _, ok := m.covers[c]; ok {
			continue
		}
		if _, ok := m.building[c]; ok {
			continue
		}
		out = append(out, c)
	}
	return out
}

// CachedWindows returns the indexes of windows with cached covers.
func (m *Maintainer) CachedWindows() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, 0, len(m.covers))
	for c := range m.covers {
		out = append(out, c)
	}
	return out
}
