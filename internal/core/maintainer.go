package core

import (
	"fmt"
	"sync"

	"repro/internal/store"
)

// Maintainer keeps model covers for the windows of a store, building each
// window's cover at most once and serving cached covers afterwards. It is
// the component at the center of Figure 1: raw tuples flow into the
// database, and the adaptive modeling layer maintains the `model_cover`
// abstraction the query processor reads.
//
// Maintainer is safe for concurrent use; concurrent requests for the same
// window build the cover once.
type Maintainer struct {
	st  *store.Store
	cfg Config

	mu       sync.Mutex
	covers   map[int]*Cover
	building map[int]*buildState
}

type buildState struct {
	done  chan struct{}
	cover *Cover
	err   error
}

// NewMaintainer returns a maintainer over st with the given Ad-KMN
// configuration.
func NewMaintainer(st *store.Store, cfg Config) *Maintainer {
	return &Maintainer{
		st:       st,
		cfg:      cfg,
		covers:   make(map[int]*Cover),
		building: make(map[int]*buildState),
	}
}

// CoverFor returns the model cover for window c, building it on first use.
func (m *Maintainer) CoverFor(c int) (*Cover, error) {
	m.mu.Lock()
	if cv, ok := m.covers[c]; ok {
		m.mu.Unlock()
		return cv, nil
	}
	if bs, ok := m.building[c]; ok {
		m.mu.Unlock()
		<-bs.done
		return bs.cover, bs.err
	}
	bs := &buildState{done: make(chan struct{})}
	m.building[c] = bs
	m.mu.Unlock()

	w := m.st.Window(c)
	var cv *Cover
	var err error
	if len(w) == 0 {
		err = fmt.Errorf("core: window %d is empty", c)
	} else {
		cv, err = BuildCover(w, c, m.st.WindowLength(), m.cfg)
	}
	bs.cover, bs.err = cv, err

	m.mu.Lock()
	if err == nil {
		m.covers[c] = cv
	}
	delete(m.building, c)
	m.mu.Unlock()
	close(bs.done)
	return cv, err
}

// CoverAt returns the cover for the window containing stream time t.
func (m *Maintainer) CoverAt(t float64) (*Cover, error) {
	if t < 0 {
		return nil, fmt.Errorf("core: negative query time %v", t)
	}
	_, c := m.st.WindowAt(t)
	return m.CoverFor(c)
}

// Invalidate drops the cached cover for window c (e.g. after late tuples
// arrive for a window that was already modeled).
func (m *Maintainer) Invalidate(c int) {
	m.mu.Lock()
	delete(m.covers, c)
	m.mu.Unlock()
}

// Snapshot returns the currently cached covers keyed by window index, for
// persistence.
func (m *Maintainer) Snapshot() map[int]*Cover {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int]*Cover, len(m.covers))
	for c, cv := range m.covers {
		out[c] = cv
	}
	return out
}

// Prime seeds the cache with previously persisted covers (warm restart).
// Existing entries for the same windows are replaced.
func (m *Maintainer) Prime(covers map[int]*Cover) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for c, cv := range covers {
		if cv != nil && cv.Size() > 0 {
			m.covers[c] = cv
		}
	}
}

// CachedWindows returns the indexes of windows with cached covers.
func (m *Maintainer) CachedWindows() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, 0, len(m.covers))
	for c := range m.covers {
		out = append(out, c)
	}
	return out
}
