package core

import (
	"errors"
	"fmt"

	"repro/internal/geo"
	"repro/internal/kmeans"
	"repro/internal/tuple"
)

// This file holds the non-adaptive cover builders used as ablations of
// Ad-KMN. The paper argues (§1, §2.1) that LCSN data is geo-temporally
// skewed and that the partitioning must adapt "only when and where it is
// necessary"; these builders remove the adaptivity so benchmarks can
// quantify what it buys.

// BuildFixedKCover builds a cover with standard (non-adaptive) k-means at a
// fixed k, fitting one model per cluster. It is Ad-KMN without the
// error-driven splitting.
func BuildFixedKCover(w tuple.Batch, c int, h float64, k int, cfg Config) (*Cover, error) {
	cfg = cfg.withDefaults()
	if len(w) == 0 {
		return nil, errors.New("core: cannot build a cover over an empty window")
	}
	if h <= 0 {
		return nil, fmt.Errorf("core: window length %v, want > 0", h)
	}
	if k > len(w) {
		k = len(w)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k = %d, want ≥ 1", k)
	}
	res, err := kmeans.Run(w.Positions(), k, cfg.Cluster)
	if err != nil {
		return nil, fmt.Errorf("core: fixed-k clustering: %w", err)
	}
	regions, err := fitRegions(w, res, cfg, normalSpanFor(w, cfg))
	if err != nil {
		return nil, err
	}
	start, end := tuple.WindowBounds(c, h)
	lo, hi := clampRange(w)
	return &Cover{
		Pollutant:   cfg.Pollutant,
		WindowIndex: c,
		ValidFrom:   start,
		ValidUntil:  end,
		Regions:     regions,
		ValueLo:     lo,
		ValueHi:     hi,
	}, nil
}

// BuildGridCover partitions the window's bounding box into a uniform
// cells×cells grid and fits one model per non-empty cell, with the cell
// center as the centroid. Grids ignore the skew of bus-route data: most
// cells are empty or sparse while route corridors are dense.
func BuildGridCover(w tuple.Batch, c int, h float64, cells int, cfg Config) (*Cover, error) {
	cfg = cfg.withDefaults()
	if len(w) == 0 {
		return nil, errors.New("core: cannot build a cover over an empty window")
	}
	if h <= 0 {
		return nil, fmt.Errorf("core: window length %v, want > 0", h)
	}
	if cells < 1 {
		return nil, fmt.Errorf("core: cells = %d, want ≥ 1", cells)
	}
	bounds, _ := w.Bounds()
	// Inflate slightly so max-edge points land inside the last cell.
	bounds = bounds.Inflate(1e-9 * (1 + bounds.Perimeter()))
	cw := (bounds.Max.X - bounds.Min.X) / float64(cells)
	ch := (bounds.Max.Y - bounds.Min.Y) / float64(cells)
	if cw == 0 {
		cw = 1
	}
	if ch == 0 {
		ch = 1
	}

	cellOf := func(p geo.Point) int {
		cx := int((p.X - bounds.Min.X) / cw)
		cy := int((p.Y - bounds.Min.Y) / ch)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		if cx < 0 {
			cx = 0
		}
		if cy < 0 {
			cy = 0
		}
		return cy*cells + cx
	}

	// Reuse fitRegions by synthesizing a kmeans.Result whose "centroids"
	// are cell centers and assignments are cell indices.
	centroids := make([]geo.Point, cells*cells)
	for cy := 0; cy < cells; cy++ {
		for cx := 0; cx < cells; cx++ {
			centroids[cy*cells+cx] = geo.Point{
				X: bounds.Min.X + (float64(cx)+0.5)*cw,
				Y: bounds.Min.Y + (float64(cy)+0.5)*ch,
			}
		}
	}
	assign := make([]int, len(w))
	for i, r := range w {
		assign[i] = cellOf(r.Pos())
	}
	res := &kmeans.Result{Centroids: centroids, Assign: assign}
	regions, err := fitRegions(w, res, cfg, normalSpanFor(w, cfg))
	if err != nil {
		return nil, err
	}
	start, end := tuple.WindowBounds(c, h)
	lo, hi := clampRange(w)
	return &Cover{
		Pollutant:   cfg.Pollutant,
		WindowIndex: c,
		ValidFrom:   start,
		ValidUntil:  end,
		Regions:     regions,
		ValueLo:     lo,
		ValueHi:     hi,
	}, nil
}
