package core

import (
	"sort"
	"testing"
)

func TestMissingCovers(t *testing.T) {
	st := fillStore(t, 100, 4, 30)
	m := NewMaintainer(st, Config{Cluster: clusterSeed(3)})
	if got := m.MissingCovers(); len(got) != 4 {
		t.Fatalf("MissingCovers = %v, want all 4 windows", got)
	}
	if _, err := m.CoverFor(1); err != nil {
		t.Fatal(err)
	}
	got := m.MissingCovers()
	sort.Ints(got)
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("MissingCovers = %v, want [0 2 3]", got)
	}
}

// TestSchedulerWarmPrime is the restart scenario: a maintainer over a
// recovered store with no cached covers is primed in the background so
// queries find covers already built.
func TestSchedulerWarmPrime(t *testing.T) {
	st := fillStore(t, 100, 5, 30)
	m := NewMaintainer(st, Config{Cluster: clusterSeed(4)})
	s := NewScheduler(SchedulerConfig{Workers: 2})
	defer s.Close()

	if n := s.WarmPrime(m); n != 5 {
		t.Fatalf("WarmPrime queued %d builds, want 5", n)
	}
	s.Wait()
	if got := m.CachedWindows(); len(got) != 5 {
		t.Fatalf("CachedWindows = %v, want all 5 windows prebuilt", got)
	}
	// A second prime finds nothing missing.
	if n := s.WarmPrime(m); n != 0 {
		t.Errorf("second WarmPrime queued %d builds, want 0", n)
	}
	if stats := s.Stats(); stats.Built != 5 {
		t.Errorf("Stats = %+v, want 5 built", stats)
	}
	// Nil scheduler and nil maintainer are inert.
	var nilSched *Scheduler
	if n := nilSched.WarmPrime(m); n != 0 {
		t.Errorf("nil scheduler primed %d", n)
	}
	if n := s.WarmPrime(nil); n != 0 {
		t.Errorf("nil maintainer primed %d", n)
	}
}
