package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/geo"
	"repro/internal/wire"
)

// Dialer opens a transport to a cluster node's wire address.
type Dialer func(addr string) (Transport, error)

// ShardedStats counts a sharded transport's routing work.
type ShardedStats struct {
	// Direct counts exchanges sent straight to the computed shard owner.
	Direct int64
	// Seeded counts exchanges sent to the seed node (non-positional
	// requests, and everything before the ring is known).
	Seeded int64
	// Bounced counts NotOwner bounces (stale ring), each followed by a
	// ring refresh and one retry at the named owner.
	Bounced int64
	// Refreshes counts ring fetches.
	Refreshes int64
}

// ShardedTransport is a cluster-aware Transport: it fetches the shard
// ring once (from its seed node), then sends every positional request
// straight to the shard owner — no router hop on the hot path. A
// NotOwner bounce (the ring changed) refreshes the ring and retries
// once at the node the bounce named. Non-positional requests (model
// covers, heatmaps, mixed batches) go to the seed node, whose
// router/scatter logic answers them cluster-wide. It is safe for
// concurrent use.
type ShardedTransport struct {
	seed Transport
	dial Dialer

	// ringTTL re-fetches the cached ring once it is older than the TTL
	// (0 = never; the ring then refreshes only on a NotOwner bounce). A
	// TTL lets clients converge on a resharded cluster even when their
	// request mix never hits a moved shard — e.g. a client pinned to a
	// shard whose owner silently left the ring would otherwise keep
	// dialing it forever.
	ringTTL time.Duration
	now     func() time.Time // injectable clock for tests

	mu        sync.Mutex
	ring      *cluster.Ring
	fetchedAt time.Time            // when ring was fetched (TTL basis)
	conns     map[string]Transport // keyed by address: correct even under a stale ring

	stats ShardedStats
}

// NewSharded builds a sharded transport over a seed node connection and
// a dialer for the owner connections.
func NewSharded(seed Transport, dial Dialer) *ShardedTransport {
	return &ShardedTransport{seed: seed, dial: dial, conns: make(map[string]Transport), now: time.Now}
}

// SetRingTTL bounds the cached ring's age: a positional exchange
// finding the ring older than ttl re-fetches it from the seed node
// first (keeping the stale ring if the fetch fails — a degraded seed
// must not take down a working shard map). ttl <= 0 restores the
// default: refresh only on NotOwner bounces.
func (s *ShardedTransport) SetRingTTL(ttl time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ringTTL = ttl
}

// Stats returns a snapshot of the routing counters.
func (s *ShardedTransport) Stats() ShardedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Ring returns the cached shard ring (fetching it on first use).
func (s *ShardedTransport) Ring() (*cluster.Ring, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ringLocked()
}

func (s *ShardedTransport) ringLocked() (*cluster.Ring, error) {
	if s.ring != nil {
		//lockcheck:allow s.now is an injected clock (time.Now); it cannot block
		if s.ringTTL <= 0 || s.now().Sub(s.fetchedAt) < s.ringTTL {
			return s.ring, nil
		}
		// TTL expired: re-fetch, but keep serving the stale ring if the
		// seed is unreachable — shards that did not move still answer.
		if ring, err := s.refreshLocked(); err == nil {
			return ring, nil
		}
		s.fetchedAt = s.now() //lockcheck:allow s.now is an injected clock (time.Now); it cannot block
		return s.ring, nil
	}
	return s.refreshLocked()
}

func (s *ShardedTransport) refreshLocked() (*cluster.Ring, error) {
	s.stats.Refreshes++
	resp, err := s.seed.Exchange(wire.RingRequest{})
	if err != nil {
		return nil, fmt.Errorf("client: fetch ring: %w", err)
	}
	rr, ok := resp.(wire.RingResponse)
	if !ok {
		if er, isErr := resp.(wire.ErrorResponse); isErr {
			return nil, fmt.Errorf("client: fetch ring: %s", er.Msg)
		}
		return nil, fmt.Errorf("client: fetch ring: unexpected response %T", resp)
	}
	ring, err := cluster.RingFromWire(rr)
	if err != nil {
		return nil, fmt.Errorf("client: fetch ring: %w", err)
	}
	s.ring = ring
	s.fetchedAt = s.now() //lockcheck:allow s.now is an injected clock (time.Now); it cannot block
	return ring, nil
}

// conn returns (dialing if needed) the transport to addr. The dial
// happens OUTSIDE the transport mutex: one unreachable owner must not
// stall concurrent exchanges to healthy owners for a dial timeout.
func (s *ShardedTransport) conn(addr string) (Transport, error) {
	s.mu.Lock()
	if t, ok := s.conns[addr]; ok {
		s.mu.Unlock()
		return t, nil
	}
	s.mu.Unlock()
	t, err := s.dial(addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	s.mu.Lock()
	if existing, ok := s.conns[addr]; ok {
		// A concurrent exchange dialed the same owner; keep theirs.
		s.mu.Unlock()
		if c, isCloser := t.(interface{ Close() error }); isCloser {
			_ = c.Close()
		}
		return existing, nil
	}
	s.conns[addr] = t
	s.mu.Unlock()
	return t, nil
}

// dropConn forgets an address's connection (after a transport error,
// so the next exchange redials).
func (s *ShardedTransport) dropConn(addr string) {
	s.mu.Lock()
	t, ok := s.conns[addr]
	delete(s.conns, addr)
	s.mu.Unlock()
	if ok {
		if c, isCloser := t.(interface{ Close() error }); isCloser {
			_ = c.Close()
		}
	}
}

// Exchange implements Transport with shard-map awareness.
func (s *ShardedTransport) Exchange(req wire.Message) (wire.Message, error) {
	q, ok := req.(wire.QueryRequest)
	if !ok || q.Legacy {
		// Non-positional (or untagged) requests: the seed node routes or
		// scatter-gathers them server-side.
		s.mu.Lock()
		s.stats.Seeded++
		s.mu.Unlock()
		return s.seed.Exchange(req)
	}

	s.mu.Lock()
	ring, err := s.ringLocked()
	if err != nil {
		// No ring (peer not clustered, or unreachable): degrade to the
		// seed node, which answers single-node deployments directly.
		s.stats.Seeded++
		s.mu.Unlock()
		return s.seed.Exchange(req)
	}
	addr := ring.Addr(ring.Owner(q.Pollutant, geo.Point{X: q.X, Y: q.Y}))
	s.stats.Direct++
	s.mu.Unlock()

	t, err := s.conn(addr)
	if err != nil {
		return nil, err
	}
	resp, err := t.Exchange(req)
	if err != nil {
		s.dropConn(addr)
		return nil, err
	}
	bounce, isBounce := resp.(wire.NotOwnerResponse)
	if !isBounce {
		return resp, nil
	}
	if bounce.Addr == "" {
		return nil, fmt.Errorf("client: shard owned by unreachable node %d", bounce.Owner)
	}

	// Stale ring: drop it for the next exchange to refresh, and retry
	// once at the address the bounce named — the bouncing node knows the
	// current owner even when our refresh source is itself stale.
	s.mu.Lock()
	s.stats.Bounced++
	s.stats.Direct++
	s.ring = nil
	s.mu.Unlock()
	t, err = s.conn(bounce.Addr)
	if err != nil {
		return nil, err
	}
	resp, err = t.Exchange(req)
	if err != nil {
		return nil, err
	}
	if b2, still := resp.(wire.NotOwnerResponse); still {
		return nil, fmt.Errorf("client: shard still owned elsewhere after retry (node %d %s)", b2.Owner, b2.Addr)
	}
	return resp, nil
}

// Close closes every owner connection (and the seed, if closable).
func (s *ShardedTransport) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var errs []error
	for n, t := range s.conns {
		if c, ok := t.(interface{ Close() error }); ok {
			if err := c.Close(); err != nil {
				errs = append(errs, err)
			}
		}
		delete(s.conns, n)
	}
	if c, ok := s.seed.(interface{ Close() error }); ok {
		if err := c.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// FetchRingHTTP fetches the shard ring from a node's HTTP API
// (GET <baseURL>/v1/cluster) — the bootstrap a web client uses instead
// of the wire RingRequest.
func FetchRingHTTP(baseURL string) (*cluster.Ring, error) {
	resp, err := http.Get(baseURL + "/v1/cluster")
	if err != nil {
		return nil, fmt.Errorf("client: fetch ring: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: fetch ring: %s", resp.Status)
	}
	var doc struct {
		Ring wire.RingResponse `json:"ring"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("client: fetch ring: %w", err)
	}
	return cluster.RingFromWire(doc.Ring)
}
