package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/geo"
	"repro/internal/wire"
)

// Dialer opens a transport to a cluster node's wire address.
type Dialer func(addr string) (Transport, error)

// Hedging tunables.
const (
	// hedgeSamples is the latency ring-buffer size the hedge delay
	// derives from.
	hedgeSamples = 128
	// hedgeMinSamples gates the p99 estimate; with fewer samples the
	// delay falls back to defaultHedgeDelay.
	hedgeMinSamples = 16
	// defaultHedgeDelay is the hedge delay before enough latency
	// samples exist to estimate a p99.
	defaultHedgeDelay = 2 * time.Millisecond
)

// ShardedStats counts a sharded transport's routing work.
type ShardedStats struct {
	// Direct counts exchanges sent straight to the computed shard owner.
	Direct int64
	// Seeded counts exchanges sent to the seed node (non-positional
	// requests, and everything before the ring is known).
	Seeded int64
	// Bounced counts NotOwner bounces (stale ring), each followed by a
	// ring refresh and one retry at the named owner.
	Bounced int64
	// Refreshes counts ring fetches.
	Refreshes int64
	// Failovers counts exchanges answered by a replica or re-homed
	// owner after the computed owner was unreachable.
	Failovers int64
	// Hedged counts hedge probes launched (primary slower than the
	// hedge delay).
	Hedged int64
	// HedgeWins counts exchanges answered by the hedge probe.
	HedgeWins int64
}

// ShardedTransport is a cluster-aware Transport: it fetches the shard
// ring once (from its seed node), then sends every positional request
// straight to the shard owner — no router hop on the hot path. A
// NotOwner bounce (the ring changed) refreshes the ring and retries
// once at the node the bounce named. Non-positional requests (model
// covers, heatmaps, mixed batches) go to the seed node, whose
// router/scatter logic answers them cluster-wide. It is safe for
// concurrent use.
type ShardedTransport struct {
	seed Transport
	dial Dialer

	// ringTTL re-fetches the cached ring once it is older than the TTL
	// (0 = never; the ring then refreshes only on a NotOwner bounce). A
	// TTL lets clients converge on a resharded cluster even when their
	// request mix never hits a moved shard — e.g. a client pinned to a
	// shard whose owner silently left the ring would otherwise keep
	// dialing it forever.
	ringTTL time.Duration
	now     func() time.Time // injectable clock for tests

	mu        sync.Mutex
	ring      *cluster.Ring
	fetchedAt time.Time // when ring was fetched (TTL basis)
	// stale forces a refresh before the next positional exchange (set by
	// a NotOwner bounce or an epoch-mismatch rejection). The cached ring
	// is kept as the fallback: an unreachable seed must not take down a
	// working shard map, and epoch monotonicity below guarantees the
	// refresh never replaces it with something older.
	stale    bool
	conns    map[string]Transport // keyed by address: correct even under a stale ring
	hedgeOn  bool
	hedgeMin time.Duration // floor under the p99-derived hedge delay

	stats ShardedStats

	latMu sync.Mutex
	lats  [hedgeSamples]time.Duration // owner-exchange latency ring buffer
	latN  int                         // total samples recorded
}

// NewSharded builds a sharded transport over a seed node connection and
// a dialer for the owner connections.
func NewSharded(seed Transport, dial Dialer) *ShardedTransport {
	return &ShardedTransport{seed: seed, dial: dial, conns: make(map[string]Transport), now: time.Now}
}

// SetRingTTL bounds the cached ring's age: a positional exchange
// finding the ring older than ttl re-fetches it from the seed node
// first (keeping the stale ring if the fetch fails — a degraded seed
// must not take down a working shard map). ttl <= 0 restores the
// default: refresh only on NotOwner bounces.
func (s *ShardedTransport) SetRingTTL(ttl time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ringTTL = ttl
}

// SetHedging enables (or disables) hedged reads: on a replicated ring,
// a single-shard query whose owner has not answered within the hedge
// delay — the p99 of recent owner latencies, floored by SetHedgeFloor —
// is also sent to the shard's first replica, and the first usable
// answer wins. The loser's answer is discarded. Off by default: hedging
// trades duplicate work for tail latency, which is an operator call.
func (s *ShardedTransport) SetHedging(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hedgeOn = on
}

// SetHedgeFloor bounds the hedge delay from below, so a very fast p99
// cannot turn hedging into "always query two nodes".
func (s *ShardedTransport) SetHedgeFloor(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hedgeMin = d
}

// Stats returns a snapshot of the routing counters.
func (s *ShardedTransport) Stats() ShardedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// recordLatency feeds one successful owner-exchange latency into the
// hedge-delay estimate.
func (s *ShardedTransport) recordLatency(d time.Duration) {
	s.latMu.Lock()
	s.lats[s.latN%hedgeSamples] = d
	s.latN++
	s.latMu.Unlock()
}

// hedgeDelay derives the hedge delay: the p99 of the recorded owner
// latencies (defaultHedgeDelay until enough samples exist), floored by
// SetHedgeFloor.
func (s *ShardedTransport) hedgeDelay() time.Duration {
	s.latMu.Lock()
	n := s.latN
	if n > hedgeSamples {
		n = hedgeSamples
	}
	buf := append([]time.Duration(nil), s.lats[:n]...)
	s.latMu.Unlock()
	d := defaultHedgeDelay
	if n >= hedgeMinSamples {
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
		d = buf[n*99/100]
	}
	s.mu.Lock()
	floor := s.hedgeMin
	s.mu.Unlock()
	if d < floor {
		d = floor
	}
	return d
}

// Ring returns the cached shard ring (fetching it on first use).
func (s *ShardedTransport) Ring() (*cluster.Ring, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ringLocked()
}

func (s *ShardedTransport) ringLocked() (*cluster.Ring, error) {
	if s.ring != nil {
		//lockcheck:allow s.now is an injected clock (time.Now); it cannot block
		if !s.stale && (s.ringTTL <= 0 || s.now().Sub(s.fetchedAt) < s.ringTTL) {
			return s.ring, nil
		}
		// Stale or TTL expired: re-fetch, but keep serving the cached
		// ring if the seed is unreachable — shards that did not move
		// still answer.
		if ring, err := s.refreshLocked(); err == nil {
			return ring, nil
		}
		s.stale = false
		s.fetchedAt = s.now() //lockcheck:allow s.now is an injected clock (time.Now); it cannot block
		return s.ring, nil
	}
	return s.refreshLocked()
}

// refreshLocked fetches the ring from the seed. Adoption is epoch-
// monotonic: during a membership transition different nodes serve
// different epochs for a moment, and a client that already routed at
// epoch E must never fall back to E-1 — a refresh landing on a
// behind node keeps the cached (newer) ring instead.
func (s *ShardedTransport) refreshLocked() (*cluster.Ring, error) {
	s.stats.Refreshes++
	resp, err := s.seed.Exchange(wire.RingRequest{})
	if err != nil {
		return nil, fmt.Errorf("client: fetch ring: %w", err)
	}
	rr, ok := resp.(wire.RingResponse)
	if !ok {
		if er, isErr := resp.(wire.ErrorResponse); isErr {
			return nil, fmt.Errorf("client: fetch ring: %s", er.Msg)
		}
		return nil, fmt.Errorf("client: fetch ring: unexpected response %T", resp)
	}
	ring, err := cluster.RingFromWire(rr)
	if err != nil {
		return nil, fmt.Errorf("client: fetch ring: %w", err)
	}
	if s.ring == nil || ring.Epoch() >= s.ring.Epoch() {
		s.ring = ring
	}
	s.stale = false
	s.fetchedAt = s.now() //lockcheck:allow s.now is an injected clock (time.Now); it cannot block
	return s.ring, nil
}

// RingEpoch returns the membership epoch of the cached ring (0 when no
// ring is cached yet).
func (s *ShardedTransport) RingEpoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ring == nil {
		return 0
	}
	return s.ring.Epoch()
}

// conn returns (dialing if needed) the transport to addr. The dial
// happens OUTSIDE the transport mutex: one unreachable owner must not
// stall concurrent exchanges to healthy owners for a dial timeout.
func (s *ShardedTransport) conn(addr string) (Transport, error) {
	s.mu.Lock()
	if t, ok := s.conns[addr]; ok {
		s.mu.Unlock()
		return t, nil
	}
	s.mu.Unlock()
	t, err := s.dial(addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	s.mu.Lock()
	if existing, ok := s.conns[addr]; ok {
		// A concurrent exchange dialed the same owner; keep theirs.
		s.mu.Unlock()
		if c, isCloser := t.(interface{ Close() error }); isCloser {
			_ = c.Close()
		}
		return existing, nil
	}
	s.conns[addr] = t
	s.mu.Unlock()
	return t, nil
}

// dropConn forgets an address's connection (after a transport error,
// so the next exchange redials).
func (s *ShardedTransport) dropConn(addr string) {
	s.mu.Lock()
	t, ok := s.conns[addr]
	delete(s.conns, addr)
	s.mu.Unlock()
	if ok {
		if c, isCloser := t.(interface{ Close() error }); isCloser {
			_ = c.Close()
		}
	}
}

// Exchange implements Transport with shard-map awareness.
func (s *ShardedTransport) Exchange(req wire.Message) (wire.Message, error) {
	q, ok := req.(wire.QueryRequest)
	if !ok || q.Legacy {
		// Non-positional (or untagged) requests: the seed node routes or
		// scatter-gathers them server-side.
		s.mu.Lock()
		s.stats.Seeded++
		s.mu.Unlock()
		return s.seed.Exchange(req)
	}

	s.mu.Lock()
	ring, err := s.ringLocked()
	if err != nil {
		// No ring (peer not clustered, or unreachable): degrade to the
		// seed node, which answers single-node deployments directly.
		s.stats.Seeded++
		s.mu.Unlock()
		return s.seed.Exchange(req)
	}
	reps := ring.ReplicasFor(shardOf(ring, q))
	addr := ring.Addr(reps[0])
	s.stats.Direct++
	hedge := s.hedgeOn && len(reps) > 1
	s.mu.Unlock()

	resp, err := s.ownerExchange(ring, reps, addr, q, hedge)
	if err != nil {
		// The owner is unreachable — a transport failure, not an answer.
		// Treat it exactly like a NotOwner bounce: refresh the ring and
		// retry at the re-homed owner or a replica, instead of failing
		// the query on a node the cluster may already have healed around.
		return s.failoverExchange(q, reps[0], err)
	}
	bounce, isBounce := resp.(wire.NotOwnerResponse)
	if !isBounce {
		return resp, nil
	}
	if bounce.Addr == "" {
		return nil, fmt.Errorf("client: shard owned by unreachable node %d", bounce.Owner)
	}

	// Stale ring: mark it for the next exchange to refresh (the cached
	// ring stays as the epoch floor and the fallback), and retry once at
	// the address the bounce named — the bouncing node knows the current
	// owner even when our refresh source is itself stale.
	s.mu.Lock()
	s.stats.Bounced++
	s.stats.Direct++
	s.stale = true
	s.mu.Unlock()
	t, err := s.conn(bounce.Addr)
	if err != nil {
		return nil, err
	}
	resp, err = t.Exchange(req)
	if err != nil {
		return nil, err
	}
	if b2, still := resp.(wire.NotOwnerResponse); still {
		return nil, fmt.Errorf("client: shard still owned elsewhere after retry (node %d %s)", b2.Owner, b2.Addr)
	}
	return resp, nil
}

// shardOf computes a positional query's shard key on a ring.
func shardOf(ring *cluster.Ring, q wire.QueryRequest) cluster.ShardKey {
	return cluster.ShardKey{Pollutant: q.Pollutant, Cell: ring.CellOf(geo.Point{X: q.X, Y: q.Y})}
}

// usableReplicaAnswer reports whether a replica's response answers the
// query: a mirror miss ("replica:"-prefixed error) or an owner bounce
// does not, and the caller keeps waiting on (or fails over past) it.
func usableReplicaAnswer(m wire.Message) bool {
	if m == nil {
		return false
	}
	if _, isBounce := m.(wire.NotOwnerResponse); isBounce {
		return false
	}
	if er, isErr := m.(wire.ErrorResponse); isErr && strings.HasPrefix(er.Msg, "replica:") {
		return false
	}
	return true
}

// ownerExchange sends one query to its shard owner, optionally hedging
// it at the shard's first replica once the owner exceeds the hedge
// delay. The first usable answer wins; the loser's answer is discarded
// (the Transport interface has no cancellation, so the losing exchange
// drains in the background).
func (s *ShardedTransport) ownerExchange(ring *cluster.Ring, reps []int, addr string, q wire.QueryRequest, hedge bool) (wire.Message, error) {
	t, err := s.conn(addr)
	if err != nil {
		return nil, err
	}
	if !hedge {
		start := s.now()
		resp, err := t.Exchange(q)
		if err != nil {
			s.dropConn(addr)
			return nil, err
		}
		s.recordLatency(s.now().Sub(start))
		return resp, nil
	}

	type result struct {
		resp wire.Message
		err  error
	}
	prim := make(chan result, 1) //bounded: one-shot result; the exchange goroutine sends exactly once
	start := s.now()
	go func() { //bounded: one goroutine per hedged exchange, result channel buffered
		r, e := t.Exchange(q)
		prim <- result{r, e}
	}()
	timer := time.NewTimer(s.hedgeDelay())
	defer timer.Stop()
	select {
	case r := <-prim:
		if r.err != nil {
			s.dropConn(addr)
			return nil, r.err
		}
		s.recordLatency(s.now().Sub(start))
		return r.resp, nil
	case <-timer.C:
	}

	// Owner slower than the hedge delay: probe the shard's first replica
	// with a replica read. The probe target is re-resolved from the ring
	// cached NOW — not the snapshot the primary exchange routed with — so
	// a membership transition that re-homed the shard while the owner was
	// stalling hedges at the current epoch's replica instead of a node
	// that may no longer mirror (or even hold) the shard.
	s.mu.Lock()
	s.stats.Hedged++
	if s.ring != nil && s.ring.Epoch() >= ring.Epoch() {
		ring = s.ring
	}
	s.mu.Unlock()
	reps = ring.ReplicasFor(shardOf(ring, q))
	if len(reps) < 2 {
		// The current ring no longer replicates this shard (a promotion
		// clamped R, or a transition un-replicated it): there is nowhere
		// to hedge — wait out the owner.
		r := <-prim
		if r.err != nil {
			s.dropConn(addr)
			return nil, r.err
		}
		s.recordLatency(s.now().Sub(start))
		return r.resp, nil
	}
	hch := make(chan result, 1) //bounded: one-shot result; the probe goroutine sends exactly once
	repAddr := ring.Addr(reps[1])
	origin := uint16(reps[0])
	go func() { //bounded: one goroutine per hedge probe, result channel buffered
		rt, err := s.conn(repAddr)
		if err != nil {
			hch <- result{nil, err}
			return
		}
		r, e := rt.Exchange(wire.ReplicaRead{Origin: origin, Inner: q})
		hch <- result{r, e}
	}()
	hedgeDone := false
	for {
		select {
		case r := <-prim:
			if r.err == nil {
				s.recordLatency(s.now().Sub(start))
				return r.resp, nil
			}
			s.dropConn(addr)
			if !hedgeDone {
				// The owner died mid-exchange; the in-flight hedge is now
				// the cheapest failover, so give it a chance first.
				if hr := <-hch; hr.err == nil && usableReplicaAnswer(hr.resp) {
					s.mu.Lock()
					s.stats.HedgeWins++
					s.mu.Unlock()
					return hr.resp, nil
				}
			}
			return nil, r.err
		case hr := <-hch:
			if hr.err == nil && usableReplicaAnswer(hr.resp) {
				s.mu.Lock()
				s.stats.HedgeWins++
				s.mu.Unlock()
				return hr.resp, nil
			}
			// Hedge missed (dead replica, no mirror): the owner remains
			// the only source; keep waiting on it.
			hedgeDone = true
			hch = nil
		}
	}
}

// failoverExchange heals a query whose owner was unreachable: refresh
// the ring (the cluster may have resharded away from the dead node),
// retry once at a re-homed owner, then walk the shard's replicas with
// replica reads. Only when nobody answers does the owner's original
// error surface.
func (s *ShardedTransport) failoverExchange(q wire.QueryRequest, deadOwner int, origErr error) (wire.Message, error) {
	s.mu.Lock()
	ring, err := s.refreshLocked()
	if err != nil {
		// The seed is unreachable too; nothing to re-route with.
		s.mu.Unlock()
		return nil, origErr
	}
	reps := ring.ReplicasFor(shardOf(ring, q))
	s.mu.Unlock()

	countWin := func() {
		s.mu.Lock()
		s.stats.Failovers++
		s.mu.Unlock()
	}
	if reps[0] != deadOwner {
		// The refreshed ring re-homed the shard: retry at the new owner,
		// exactly like a bounce retry.
		if t, err := s.conn(ring.Addr(reps[0])); err == nil {
			resp, err := t.Exchange(q)
			switch {
			case err != nil:
				s.dropConn(ring.Addr(reps[0]))
			case usableReplicaAnswer(resp):
				countWin()
				return resp, nil
			}
		}
	}
	for _, rep := range reps {
		if rep == deadOwner {
			continue
		}
		t, err := s.conn(ring.Addr(rep))
		if err != nil {
			continue
		}
		resp, err := t.Exchange(wire.ReplicaRead{Origin: uint16(deadOwner), Inner: q})
		if err != nil {
			s.dropConn(ring.Addr(rep))
			continue
		}
		if usableReplicaAnswer(resp) {
			countWin()
			return resp, nil
		}
	}
	return nil, fmt.Errorf("client: shard owner and replicas unreachable: %w", origErr)
}

// Close closes every owner connection (and the seed, if closable).
func (s *ShardedTransport) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var errs []error
	for n, t := range s.conns {
		if c, ok := t.(interface{ Close() error }); ok {
			if err := c.Close(); err != nil {
				errs = append(errs, err)
			}
		}
		delete(s.conns, n)
	}
	if c, ok := s.seed.(interface{ Close() error }); ok {
		if err := c.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// FetchRingHTTP fetches the shard ring from a node's HTTP API
// (GET <baseURL>/v1/cluster) — the bootstrap a web client uses instead
// of the wire RingRequest.
func FetchRingHTTP(baseURL string) (*cluster.Ring, error) {
	resp, err := http.Get(baseURL + "/v1/cluster")
	if err != nil {
		return nil, fmt.Errorf("client: fetch ring: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: fetch ring: %s", resp.Status)
	}
	var doc struct {
		Ring wire.RingResponse `json:"ring"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("client: fetch ring: %w", err)
	}
	return cluster.RingFromWire(doc.Ring)
}
