package client

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/query"
	"repro/internal/wire"
)

// scriptedTransport returns canned responses or errors, to exercise the
// client's handling of protocol violations without a network.
type scriptedTransport struct {
	responses []wire.Message
	errs      []error
	calls     int
}

func (s *scriptedTransport) Exchange(req wire.Message) (wire.Message, error) {
	i := s.calls
	s.calls++
	var err error
	if i < len(s.errs) {
		err = s.errs[i]
	}
	var resp wire.Message
	if i < len(s.responses) {
		resp = s.responses[i]
	}
	return resp, err
}

func TestBaselineTransportError(t *testing.T) {
	boom := errors.New("radio dropped")
	b := NewBaseline(&scriptedTransport{errs: []error{boom}})
	if _, err := b.Query(query.Request{}); !errors.Is(err, boom) {
		t.Errorf("transport error not propagated: %v", err)
	}
}

func TestBaselineUnexpectedResponse(t *testing.T) {
	b := NewBaseline(&scriptedTransport{responses: []wire.Message{wire.ModelRequest{}}})
	_, err := b.Query(query.Request{})
	if err == nil || !strings.Contains(err.Error(), "unexpected response") {
		t.Errorf("want unexpected-response error, got %v", err)
	}
}

func TestModelCacheTransportError(t *testing.T) {
	boom := errors.New("no signal")
	mc := NewModelCache(&scriptedTransport{errs: []error{boom}})
	if _, err := mc.Query(query.Request{}); !errors.Is(err, boom) {
		t.Errorf("transport error not propagated: %v", err)
	}
}

func TestModelCacheUnexpectedResponse(t *testing.T) {
	mc := NewModelCache(&scriptedTransport{responses: []wire.Message{wire.QueryResponse{}}})
	_, err := mc.Query(query.Request{})
	if err == nil || !strings.Contains(err.Error(), "unexpected response") {
		t.Errorf("want unexpected-response error, got %v", err)
	}
}

func TestModelCacheBadModelResponse(t *testing.T) {
	// A model response the client cannot reconstruct (unknown family).
	bad := wire.ModelResponse{
		Features:  "no-such-family",
		Centroids: []geo.Point{{X: 1, Y: 2}},
		Coefs:     [][]float64{{1}},
	}
	mc := NewModelCache(&scriptedTransport{responses: []wire.Message{bad}})
	if _, err := mc.Query(query.Request{}); err == nil {
		t.Error("unreconstructable model response should error")
	}
}
