package client

// Epoch-awareness tests for the sharded transport: ring adoption is
// epoch-monotonic (a refresh landing on a behind node never regresses
// the shard map), a stale-ring bounce triggers exactly one refresh and
// then routes straight to the correct owner, and a concurrent join —
// clients racing exchanges while the cluster commits a new epoch —
// converges every client onto the joined ring without errors. All
// clock-dependent paths use the injected clock; no sleeping.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/geo"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// testRingAt builds a ring at an explicit membership epoch.
func testRingAt(t *testing.T, epoch uint64, nodes ...string) *cluster.Ring {
	t.Helper()
	cells, err := cluster.Cells(geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := cluster.NewRing(cluster.Desc{Nodes: nodes, Cells: cells, Epoch: epoch})
	if err != nil {
		t.Fatal(err)
	}
	return ring
}

// lockedSeed is a ttlSeed safe for concurrent exchanges and ring swaps.
type lockedSeed struct {
	mu      sync.Mutex
	ring    *cluster.Ring
	fetches int
}

func (s *lockedSeed) Exchange(req wire.Message) (wire.Message, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := req.(wire.RingRequest); ok {
		s.fetches++
		return s.ring.Wire(), nil
	}
	return wire.ErrorResponse{Msg: "seed answers only ring requests"}, nil
}

func (s *lockedSeed) swap(r *cluster.Ring) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ring = r
}

func (s *lockedSeed) fetched() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fetches
}

// fakeOwner answers queries with a constant value, or bounces to
// another owner while armed with one.
type fakeOwner struct {
	mu     sync.Mutex
	bounce *wire.NotOwnerResponse
	value  float64
	calls  int
}

func (o *fakeOwner) Exchange(req wire.Message) (wire.Message, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.calls++
	if o.bounce != nil {
		return *o.bounce, nil
	}
	return wire.QueryResponse{Value: o.value}, nil
}

func (o *fakeOwner) arm(b *wire.NotOwnerResponse) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.bounce = b
}

// ownerFleet hands each address a fakeOwner on first dial.
type ownerFleet struct {
	mu     sync.Mutex
	owners map[string]*fakeOwner
}

func newOwnerFleet() *ownerFleet { return &ownerFleet{owners: make(map[string]*fakeOwner)} }

func (fl *ownerFleet) at(addr string) *fakeOwner {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	o, ok := fl.owners[addr]
	if !ok {
		o = &fakeOwner{value: float64(len(fl.owners) + 1)}
		fl.owners[addr] = o
	}
	return o
}

func (fl *ownerFleet) dialer() Dialer {
	return func(addr string) (Transport, error) { return fl.at(addr), nil }
}

// TestShardedEpochMonotonicAdoption: a refresh that lands on a node
// still serving an OLDER epoch must not regress the cached ring — mid-
// transition, different members answer different epochs for a moment,
// and a client that already routed at epoch E never falls back.
func TestShardedEpochMonotonicAdoption(t *testing.T) {
	newer := testRingAt(t, 2, "a:1", "b:1")
	older := testRingAt(t, 1, "c:1", "d:1")
	seed := &lockedSeed{ring: newer}
	fleet := newOwnerFleet()
	sc := NewSharded(seed, fleet.dialer())
	cur := time.Unix(1000, 0)
	sc.now = func() time.Time { return cur }
	sc.SetRingTTL(time.Minute)

	if got := sc.RingEpoch(); got != 0 {
		t.Fatalf("epoch %d before any fetch, want 0", got)
	}
	req := wire.QueryRequest{T: 100, X: 500, Y: 500, Pollutant: tuple.CO2}
	if _, err := sc.Exchange(req); err != nil {
		t.Fatal(err)
	}
	if got := sc.RingEpoch(); got != 2 {
		t.Fatalf("cached epoch %d, want 2", got)
	}

	// The seed regresses (say the client's refresh raced a member that
	// has not committed yet): the fetch happens, but adoption is refused.
	seed.swap(older)
	cur = cur.Add(2 * time.Minute)
	if _, err := sc.Exchange(req); err != nil {
		t.Fatal(err)
	}
	if got := seed.fetched(); got != 2 {
		t.Fatalf("expired ring fetched %d times, want 2", got)
	}
	if got := sc.RingEpoch(); got != 2 {
		t.Fatalf("regressed to epoch %d after a stale fetch, want to keep 2", got)
	}
	ring, err := sc.Ring()
	if err != nil {
		t.Fatal(err)
	}
	if ring.Addr(0) != "a:1" {
		t.Fatalf("cached ring swapped to %q despite the older epoch", ring.Addr(0))
	}

	// A genuinely newer ring is adopted as usual.
	seed.swap(testRingAt(t, 3, "e:1", "f:1"))
	cur = cur.Add(2 * time.Minute)
	if _, err := sc.Exchange(req); err != nil {
		t.Fatal(err)
	}
	if got := sc.RingEpoch(); got != 3 {
		t.Fatalf("cached epoch %d after a newer fetch, want 3", got)
	}
}

// TestShardedStaleBounceSingleRefresh: a NotOwner bounce answers the
// query via the bounce-named owner, marks the ring stale, and the NEXT
// exchange refreshes exactly once and routes straight to the correct
// owner — no bounce loop, no per-query refresh storm.
func TestShardedStaleBounceSingleRefresh(t *testing.T) {
	old := testRingAt(t, 1, "a:1", "b:1")
	seed := &lockedSeed{ring: old}
	fleet := newOwnerFleet()
	sc := NewSharded(seed, fleet.dialer())

	req := wire.QueryRequest{T: 100, X: 500, Y: 500, Pollutant: tuple.CO2}
	ownerAddr := old.Addr(old.Owner(tuple.CO2, geo.Point{X: 500, Y: 500}))
	other := "a:1"
	if ownerAddr == "a:1" {
		other = "b:1"
	}

	// The cluster transitioned: the old owner bounces to the new one.
	fleet.at(ownerAddr).arm(&wire.NotOwnerResponse{Owner: 1, Addr: other})
	fleet.at(other).value = 42
	resp, err := sc.Exchange(req)
	if err != nil {
		t.Fatal(err)
	}
	if qr, ok := resp.(wire.QueryResponse); !ok || qr.Value != 42 {
		t.Fatalf("bounced exchange answered %#v, want the new owner's 42", resp)
	}
	if got := sc.Stats().Bounced; got != 1 {
		t.Fatalf("Bounced = %d, want 1", got)
	}

	// The seed has the committed (newer-epoch) ring; the next exchange
	// refreshes exactly once and goes straight to the current owner.
	seed.swap(testRingAt(t, 2, "a:1", "b:1"))
	before := seed.fetched()
	fleet.at(ownerAddr).arm(nil)
	for i := 0; i < 3; i++ {
		if _, err := sc.Exchange(req); err != nil {
			t.Fatal(err)
		}
	}
	if got := seed.fetched(); got != before+1 {
		t.Fatalf("stale flag caused %d refreshes across 3 exchanges, want exactly 1", got-before)
	}
	if got := sc.RingEpoch(); got != 2 {
		t.Fatalf("cached epoch %d after the bounce-driven refresh, want 2", got)
	}
	if got := sc.Stats().Bounced; got != 1 {
		t.Fatalf("post-refresh exchanges still bounced: Bounced = %d, want 1", got)
	}
}

// TestShardedRefreshUnderConcurrentJoin: clients keep exchanging while
// the cluster commits a join (epoch 1 ring of two nodes -> epoch 2 ring
// with a third). Every exchange must answer, and once a bounce points a
// client at the transition it converges on the joined ring and routes
// shards the joiner gained straight to it.
func TestShardedRefreshUnderConcurrentJoin(t *testing.T) {
	old := testRingAt(t, 1, "a:1", "b:1")
	joined := testRingAt(t, 2, "a:1", "b:1", "c:1")
	seed := &lockedSeed{ring: old}
	fleet := newOwnerFleet()
	sc := NewSharded(seed, fleet.dialer())

	// A probe point the joiner owns after the transition but an old
	// member owned before: the interesting shard of a join.
	var probe geo.Point
	found := false
	for x := 50.0; x < 1000 && !found; x += 100 {
		for y := 50.0; y < 1000 && !found; y += 100 {
			p := geo.Point{X: x, Y: y}
			if joined.Owner(tuple.CO2, p) == 2 && old.Owner(tuple.CO2, p) != 2 {
				probe, found = p, true
			}
		}
	}
	if !found {
		t.Skip("joiner owns no probe shard (placement fluke)")
	}
	oldOwner := old.Addr(old.Owner(tuple.CO2, probe))
	fleet.at("c:1").value = 99

	// Concurrent load across the transition: half the goroutines hammer
	// the probe shard, half spread over other points.
	var wg sync.WaitGroup
	errs := make(chan error, 64) //bounded: one slot per worker exchange below
	exchangeOnce := func(p geo.Point) {
		defer wg.Done()
		resp, err := sc.Exchange(wire.QueryRequest{T: 100, X: p.X, Y: p.Y, Pollutant: tuple.CO2})
		if err != nil {
			errs <- err
			return
		}
		if _, ok := resp.(wire.QueryResponse); !ok {
			errs <- fmt.Errorf("exchange answered %#v", resp)
		}
	}
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go exchangeOnce(geo.Point{X: float64(100 + i*50), Y: 500})
	}
	wg.Wait()

	// The join commits: the seed serves the new epoch and the old owner
	// starts bouncing the moved shard to the joiner.
	seed.swap(joined)
	fleet.at(oldOwner).arm(&wire.NotOwnerResponse{Owner: 2, Addr: "c:1"})
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go exchangeOnce(probe)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("exchange across the join failed: %v", err)
	}

	// Converged: the cached ring is the joined epoch and the moved shard
	// routes straight to the joiner — the old owner sees no more traffic
	// for it.
	if got := sc.RingEpoch(); got != 2 {
		t.Fatalf("cached epoch %d after the join, want 2", got)
	}
	joinerCalls := fleet.at("c:1").calls
	oldCalls := fleet.at(oldOwner).calls
	wg.Add(1)
	exchangeOnce(probe)
	if fleet.at("c:1").calls != joinerCalls+1 {
		t.Fatal("post-join probe exchange did not route to the joiner")
	}
	if fleet.at(oldOwner).calls != oldCalls {
		t.Fatal("post-join probe exchange still touched the old owner")
	}
}
