package client

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/kmeans"
	"repro/internal/netsim"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// newStack builds a server engine over synthetic data and a link transport
// in front of it.
func newStack(t *testing.T, codec wire.Codec) (*server.Engine, *netsim.Link, Transport) {
	t.Helper()
	st := store.MustOpenMemory(3600)
	rng := rand.New(rand.NewSource(1))
	var b tuple.Batch
	for c := 0; c < 3; c++ {
		for i := 0; i < 400; i++ {
			x, y := rng.Float64()*2000, rng.Float64()*2000
			b = append(b, tuple.Raw{
				T: float64(c)*3600 + rng.Float64()*3600,
				X: x, Y: y,
				S: 430 + 0.04*x + 0.01*y,
			})
		}
	}
	if err := st.Append(b); err != nil {
		t.Fatal(err)
	}
	eng := server.NewEngine(st, core.Config{Cluster: kmeans.Config{Seed: 3}})
	link, err := netsim.NewLink(netsim.GPRS())
	if err != nil {
		t.Fatal(err)
	}
	return eng, link, &LinkTransport{Link: link, Codec: codec, Handler: eng}
}

// walkQueries generates n query tuples pacing through time at dt seconds,
// walking within the data region.
func walkQueries(n int, dt float64) []query.Request {
	qs := make([]query.Request, n)
	rng := rand.New(rand.NewSource(9))
	x, y := 500.0, 500.0
	for i := range qs {
		x += rng.NormFloat64() * 30
		y += rng.NormFloat64() * 30
		x = math.Max(0, math.Min(2000, x))
		y = math.Max(0, math.Min(2000, y))
		qs[i] = query.Request{T: float64(i) * dt, X: x, Y: y}
	}
	return qs
}

func TestBaselineAnswersMatchServer(t *testing.T) {
	eng, _, tr := newStack(t, wire.Binary)
	b := NewBaseline(tr)
	qs := walkQueries(50, 60)
	answers, err := RunContinuous(b, qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range answers {
		want, err := eng.Query(context.Background(), qs[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Value-want) > 1e-9 {
			t.Fatalf("query %d: %v vs server %v", i, a.Value, want)
		}
		if a.Local {
			t.Fatalf("baseline answer %d claims to be local", i)
		}
	}
}

func TestModelCacheAnswersMatchServer(t *testing.T) {
	eng, _, tr := newStack(t, wire.Binary)
	mc := NewModelCache(tr)
	qs := walkQueries(50, 60)
	answers, err := RunContinuous(mc, qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range answers {
		want, err := eng.Query(context.Background(), qs[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Value-want) > 1e-9 {
			t.Fatalf("query %d: %v vs server %v", i, a.Value, want)
		}
	}
	// First answer is a fetch; the rest of the same window are local.
	if answers[0].Local {
		t.Error("first query should have fetched")
	}
	if !answers[1].Local {
		t.Error("second query should be local")
	}
}

func TestModelCacheRefetchesAcrossWindows(t *testing.T) {
	_, _, tr := newStack(t, wire.Binary)
	mc := NewModelCache(tr)
	// 90 queries spaced 120 s apart cross from window 0 (0..3600) into
	// windows 1 and 2 (data ends at 10800): exactly 3 fetches.
	qs := walkQueries(90, 120)
	if _, err := RunContinuous(mc, qs); err != nil {
		t.Fatal(err)
	}
	st := mc.CacheStats()
	if st.Refreshes != 3 {
		t.Errorf("Refreshes = %d, want 3 (one per window crossed)", st.Refreshes)
	}
	if st.Misses != 3 || st.Hits != 87 {
		t.Errorf("hits/misses = %d/%d, want 87/3", st.Hits, st.Misses)
	}
}

func TestModelCacheSavesBandwidth(t *testing.T) {
	// The Figure 7(b) property, at unit-test scale: two orders of
	// magnitude fewer bytes sent, and far less air time.
	_, linkB, trB := newStack(t, wire.Binary)
	qs := walkQueries(100, 30) // all within window 0
	if _, err := RunContinuous(NewBaseline(trB), qs); err != nil {
		t.Fatal(err)
	}
	baseStats := linkB.Stats()

	_, linkM, trM := newStack(t, wire.Binary)
	if _, err := RunContinuous(NewModelCache(trM), qs); err != nil {
		t.Fatal(err)
	}
	cacheStats := linkM.Stats()

	if cacheStats.Exchanges != 1 {
		t.Fatalf("model-cache exchanges = %d, want 1", cacheStats.Exchanges)
	}
	if baseStats.Exchanges != 100 {
		t.Fatalf("baseline exchanges = %d, want 100", baseStats.Exchanges)
	}
	sentRatio := float64(baseStats.SentBytes) / float64(cacheStats.SentBytes)
	if sentRatio < 50 {
		t.Errorf("sent ratio = %.1f, want ≥ 50", sentRatio)
	}
	timeRatio := baseStats.SimSeconds / cacheStats.SimSeconds
	if timeRatio < 50 {
		t.Errorf("time ratio = %.1f, want ≥ 50", timeRatio)
	}
	if baseStats.ReceivedBytes <= cacheStats.ReceivedBytes {
		t.Errorf("baseline received %d should exceed model-cache %d",
			baseStats.ReceivedBytes, cacheStats.ReceivedBytes)
	}
}

func TestServerErrorPropagates(t *testing.T) {
	_, _, tr := newStack(t, wire.Binary)
	b := NewBaseline(tr)
	if _, err := b.Query(query.Request{T: 1e12}); err == nil {
		t.Error("query in empty window should error")
	}
	mc := NewModelCache(tr)
	if _, err := mc.Query(query.Request{T: 1e12}); err == nil {
		t.Error("model fetch for empty window should error")
	}
}

func TestRunContinuousEmpty(t *testing.T) {
	_, _, tr := newStack(t, wire.Binary)
	if _, err := RunContinuous(NewBaseline(tr), nil); err == nil {
		t.Error("empty stream should error")
	}
}

func TestJSONCodecWorksEndToEnd(t *testing.T) {
	eng, link, tr := newStack(t, wire.JSON)
	mc := NewModelCache(tr)
	qs := walkQueries(10, 30)
	answers, err := RunContinuous(mc, qs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Query(context.Background(), qs[5])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(answers[5].Value-want) > 1e-9 {
		t.Errorf("JSON stack: %v vs %v", answers[5].Value, want)
	}
	if link.Stats().Exchanges != 1 {
		t.Errorf("exchanges = %d, want 1", link.Stats().Exchanges)
	}
}

func TestStrategyNames(t *testing.T) {
	_, _, tr := newStack(t, wire.Binary)
	if NewBaseline(tr).Name() != "baseline" {
		t.Error("baseline name")
	}
	if NewModelCache(tr).Name() != "model-cache" {
		t.Error("model-cache name")
	}
}
