// Package client implements the mobile object v_q: the smartphone (or
// vehicle) that registers a continuous query and receives pollution values
// as it moves (§2.2–2.3). Two strategies are provided, matching the two
// arms of the bandwidth experiment (Figure 7b):
//
//   - Baseline: every query tuple is a request/response round trip; the
//     server interpolates and returns ŝ_l.
//   - ModelCache: the client fetches the model cover (t_n, µ, M) once,
//     answers locally while t_l ≤ t_n, and refreshes only on expiry.
//
// Both strategies run over a Transport, normally the simulated cellular
// link, which accounts every byte and second the device would spend.
package client

import (
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/netsim"
	"repro/internal/query"
	"repro/internal/wire"
)

// Handler is the server side of the protocol (implemented by
// server.Engine).
type Handler interface {
	HandleMessage(req wire.Message) wire.Message
}

// Transport carries protocol messages between client and server,
// accounting link usage.
type Transport interface {
	// Exchange performs one request/response round trip.
	Exchange(req wire.Message) (wire.Message, error)
}

// LinkTransport is a Transport over a simulated cellular link: requests
// and responses are encoded with a codec, their sizes charged to the link,
// and the handler invoked in-process.
type LinkTransport struct {
	Link    *netsim.Link
	Codec   wire.Codec
	Handler Handler
}

// Exchange implements Transport.
func (t *LinkTransport) Exchange(req wire.Message) (wire.Message, error) {
	reqData, err := t.Codec.Encode(req)
	if err != nil {
		return nil, fmt.Errorf("client: encode request: %w", err)
	}
	resp := t.Handler.HandleMessage(req)
	respData, err := t.Codec.Encode(resp)
	if err != nil {
		return nil, fmt.Errorf("client: encode response: %w", err)
	}
	if _, err := t.Link.Exchange(len(reqData), len(respData)); err != nil {
		return nil, err
	}
	// Decode the response as the device would, so malformed server output
	// surfaces as an error rather than silently passing a Go value along.
	decoded, err := t.Codec.Decode(respData)
	if err != nil {
		return nil, fmt.Errorf("client: decode response: %w", err)
	}
	return decoded, nil
}

// Answer is one delivered pollution update.
type Answer struct {
	Q     query.Q
	Value float64
	// Local reports whether the value was computed on the device from the
	// cached model cover (true) or by the server (false).
	Local bool
}

// Strategy answers a stream of query tuples.
type Strategy interface {
	// Name labels the strategy in reports.
	Name() string
	// Query answers one query tuple.
	Query(q query.Q) (Answer, error)
}

// Baseline is the §2.3 baseline: one round trip per query tuple.
type Baseline struct {
	transport Transport
}

// NewBaseline returns the baseline strategy over a transport.
func NewBaseline(t Transport) *Baseline { return &Baseline{transport: t} }

// Name implements Strategy.
func (b *Baseline) Name() string { return "baseline" }

// Query implements Strategy.
func (b *Baseline) Query(q query.Q) (Answer, error) {
	resp, err := b.transport.Exchange(wire.QueryRequest{T: q.T, X: q.X, Y: q.Y})
	if err != nil {
		return Answer{}, err
	}
	switch m := resp.(type) {
	case wire.QueryResponse:
		return Answer{Q: q, Value: m.Value, Local: false}, nil
	case wire.ErrorResponse:
		return Answer{}, fmt.Errorf("client: server error: %s", m.Msg)
	default:
		return Answer{}, fmt.Errorf("client: unexpected response %T", resp)
	}
}

// ModelCache is the paper's bandwidth-optimized strategy.
type ModelCache struct {
	transport Transport
	cache     *cache.Cache
}

// NewModelCache returns the model-cache strategy over a transport.
func NewModelCache(t Transport) *ModelCache {
	return &ModelCache{transport: t, cache: cache.New()}
}

// Name implements Strategy.
func (m *ModelCache) Name() string { return "model-cache" }

// CacheStats exposes hit/miss counters.
func (m *ModelCache) CacheStats() cache.Stats { return m.cache.Stats() }

// Query implements Strategy: answer locally when the cached cover is valid
// at t_l, otherwise send a model request e_l and refresh.
func (m *ModelCache) Query(q query.Q) (Answer, error) {
	cv, ok := m.cache.Lookup(q.T)
	if !ok {
		resp, err := m.transport.Exchange(wire.ModelRequest{T: q.T})
		if err != nil {
			return Answer{}, err
		}
		switch r := resp.(type) {
		case wire.ModelResponse:
			cv, err = wire.CoverFromModelResponse(r)
			if err != nil {
				return Answer{}, err
			}
			m.cache.Store(cv)
		case wire.ErrorResponse:
			return Answer{}, fmt.Errorf("client: server error: %s", r.Msg)
		default:
			return Answer{}, fmt.Errorf("client: unexpected response %T", resp)
		}
	}
	v, err := cv.Interpolate(q.T, q.X, q.Y)
	if err != nil {
		return Answer{}, err
	}
	return Answer{Q: q, Value: v, Local: ok}, nil
}

// RunContinuous drives a strategy through a full continuous query — the
// mobile object transmitting query tuples at its uniform interval — and
// returns the answers.
func RunContinuous(s Strategy, qs []query.Q) ([]Answer, error) {
	if len(qs) == 0 {
		return nil, errors.New("client: empty query stream")
	}
	out := make([]Answer, len(qs))
	for i, q := range qs {
		a, err := s.Query(q)
		if err != nil {
			return nil, fmt.Errorf("client: query %d: %w", i, err)
		}
		out[i] = a
	}
	return out, nil
}
