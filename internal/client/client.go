// Package client implements the mobile object v_q: the smartphone (or
// vehicle) that registers a continuous query and receives pollution values
// as it moves (§2.2–2.3). Two strategies are provided, matching the two
// arms of the bandwidth experiment (Figure 7b):
//
//   - Baseline: every query tuple is a request/response round trip; the
//     server interpolates and returns ŝ_l.
//   - ModelCache: the client fetches the model cover (t_n, µ, M) once per
//     pollutant, answers locally while t_l ≤ t_n, and refreshes only on
//     expiry.
//
// Strategies answer v1 query.Requests, so one client can interleave
// pollutants over a single connection; the model cache keeps one cover
// per pollutant. Both strategies run over a Transport, normally the
// simulated cellular link, which accounts every byte and second the
// device would spend.
package client

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/netsim"
	"repro/internal/query"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// Handler is the server side of the protocol (implemented by
// server.Engine).
type Handler interface {
	HandleMessage(req wire.Message) wire.Message
}

// Transport carries protocol messages between client and server,
// accounting link usage.
type Transport interface {
	// Exchange performs one request/response round trip.
	Exchange(req wire.Message) (wire.Message, error)
}

// LinkTransport is a Transport over a simulated cellular link: requests
// and responses are encoded with a codec, their sizes charged to the link,
// and the handler invoked in-process.
type LinkTransport struct {
	Link    *netsim.Link
	Codec   wire.Codec
	Handler Handler
}

// Exchange implements Transport.
func (t *LinkTransport) Exchange(req wire.Message) (wire.Message, error) {
	reqData, err := t.Codec.Encode(req)
	if err != nil {
		return nil, fmt.Errorf("client: encode request: %w", err)
	}
	resp := t.Handler.HandleMessage(req)
	respData, err := t.Codec.Encode(resp)
	if err != nil {
		return nil, fmt.Errorf("client: encode response: %w", err)
	}
	if _, err := t.Link.Exchange(len(reqData), len(respData)); err != nil {
		return nil, err
	}
	// Decode the response as the device would, so malformed server output
	// surfaces as an error rather than silently passing a Go value along.
	decoded, err := t.Codec.Decode(respData)
	if err != nil {
		return nil, fmt.Errorf("client: decode response: %w", err)
	}
	return decoded, nil
}

// Answer is one delivered pollution update.
type Answer struct {
	Req   query.Request
	Value float64
	// Local reports whether the value was computed on the device from the
	// cached model cover (true) or by the server (false).
	Local bool
}

// Strategy answers a stream of v1 query requests.
type Strategy interface {
	// Name labels the strategy in reports.
	Name() string
	// Query answers one request.
	Query(req query.Request) (Answer, error)
}

// Baseline is the §2.3 baseline: one round trip per query tuple.
type Baseline struct {
	transport Transport
}

// NewBaseline returns the baseline strategy over a transport.
func NewBaseline(t Transport) *Baseline { return &Baseline{transport: t} }

// Name implements Strategy.
func (b *Baseline) Name() string { return "baseline" }

// Query implements Strategy.
func (b *Baseline) Query(req query.Request) (Answer, error) {
	resp, err := b.transport.Exchange(wire.QueryRequest{
		T: req.T, X: req.X, Y: req.Y, Pollutant: req.Pollutant,
	})
	if err != nil {
		return Answer{}, err
	}
	switch m := resp.(type) {
	case wire.QueryResponse:
		return Answer{Req: req, Value: m.Value, Local: false}, nil
	case wire.ErrorResponse:
		return Answer{}, fmt.Errorf("client: server error: %s", m.Msg)
	default:
		return Answer{}, fmt.Errorf("client: unexpected response %T", resp)
	}
}

// ModelCache is the paper's bandwidth-optimized strategy, generalized to
// one cached cover per pollutant.
type ModelCache struct {
	transport Transport
	caches    map[tuple.Pollutant]*cache.Cache
}

// NewModelCache returns the model-cache strategy over a transport.
func NewModelCache(t Transport) *ModelCache {
	return &ModelCache{transport: t, caches: make(map[tuple.Pollutant]*cache.Cache)}
}

// Name implements Strategy.
func (m *ModelCache) Name() string { return "model-cache" }

// cacheFor returns (lazily creating) the pollutant's cover cache.
func (m *ModelCache) cacheFor(p tuple.Pollutant) *cache.Cache {
	c, ok := m.caches[p]
	if !ok {
		c = cache.New()
		m.caches[p] = c
	}
	return c
}

// CacheStats aggregates hit/miss counters across all pollutant caches.
func (m *ModelCache) CacheStats() cache.Stats {
	var out cache.Stats
	for _, c := range m.caches {
		s := c.Stats()
		out.Hits += s.Hits
		out.Misses += s.Misses
		out.Refreshes += s.Refreshes
	}
	return out
}

// CacheStatsFor returns the counters of one pollutant's cache.
func (m *ModelCache) CacheStatsFor(p tuple.Pollutant) cache.Stats {
	if c, ok := m.caches[p]; ok {
		return c.Stats()
	}
	return cache.Stats{}
}

// Query implements Strategy: answer locally when the pollutant's cached
// cover is valid at t_l, otherwise send a model request e_l and refresh.
func (m *ModelCache) Query(req query.Request) (Answer, error) {
	cc := m.cacheFor(req.Pollutant)
	cv, ok := cc.Lookup(req.T)
	if !ok {
		resp, err := m.transport.Exchange(wire.ModelRequest{T: req.T, Pollutant: req.Pollutant})
		if err != nil {
			return Answer{}, err
		}
		switch r := resp.(type) {
		case wire.ModelResponse:
			cv, err = wire.CoverFromModelResponse(r)
			if err != nil {
				return Answer{}, err
			}
			cc.Store(cv)
		case wire.ErrorResponse:
			return Answer{}, fmt.Errorf("client: server error: %s", r.Msg)
		default:
			return Answer{}, fmt.Errorf("client: unexpected response %T", resp)
		}
	}
	v, err := cv.Interpolate(req.T, req.X, req.Y)
	if err != nil {
		return Answer{}, err
	}
	return Answer{Req: req, Value: v, Local: ok}, nil
}

// RunContinuous drives a strategy through a full continuous query — the
// mobile object transmitting query tuples at its uniform interval — and
// returns the answers.
func RunContinuous(s Strategy, reqs []query.Request) ([]Answer, error) {
	//ctxcheck:allow compatibility wrapper; RunContinuousCtx is the ctx-aware form
	return RunContinuousCtx(context.Background(), s, reqs)
}

// RunContinuousCtx is RunContinuous with cooperative cancellation: the
// stream stops at the first context error.
func RunContinuousCtx(ctx context.Context, s Strategy, reqs []query.Request) ([]Answer, error) {
	if len(reqs) == 0 {
		return nil, errors.New("client: empty query stream")
	}
	out := make([]Answer, len(reqs))
	for i, req := range reqs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("client: query %d: %w", i, err)
		}
		a, err := s.Query(req)
		if err != nil {
			return nil, fmt.Errorf("client: query %d: %w", i, err)
		}
		out[i] = a
	}
	return out, nil
}
