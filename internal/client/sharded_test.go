package client

// Unit tests for the sharded transport's ring-TTL refresh: a configured
// TTL re-fetches an aged ring before routing, a failed refresh keeps
// serving the stale ring (and backs off a full TTL), and recovery
// adopts the seed's new ring. Uses an injected clock — no sleeping.

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/geo"
	"repro/internal/tuple"
	"repro/internal/wire"
)

func testRing(t *testing.T, nodes ...string) *cluster.Ring {
	t.Helper()
	cells, err := cluster.Cells(geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := cluster.NewRing(cluster.Desc{Nodes: nodes, Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	return ring
}

// ttlSeed answers ring requests from a swappable ring, with a kill
// switch. The TTL tests drive it from one goroutine; no locking needed.
type ttlSeed struct {
	ring    *cluster.Ring
	down    bool
	fetches int
}

func (s *ttlSeed) Exchange(req wire.Message) (wire.Message, error) {
	if _, ok := req.(wire.RingRequest); ok {
		s.fetches++
		if s.down {
			return nil, errors.New("seed down")
		}
		return s.ring.Wire(), nil
	}
	return wire.ErrorResponse{Msg: "ttl seed answers only ring requests"}, nil
}

// echoOwner answers every query with a constant so Exchange succeeds
// whichever owner the ring picks.
type echoOwner struct{ addr string }

func (o *echoOwner) Exchange(wire.Message) (wire.Message, error) {
	return wire.QueryResponse{Value: 1}, nil
}

func TestShardedRingTTL(t *testing.T) {
	seed := &ttlSeed{ring: testRing(t, "a:1", "b:1")}
	var dialed []string
	sc := NewSharded(seed, func(addr string) (Transport, error) {
		dialed = append(dialed, addr)
		return &echoOwner{addr: addr}, nil
	})
	cur := time.Unix(1000, 0)
	sc.now = func() time.Time { return cur }

	req := wire.QueryRequest{T: 100, X: 500, Y: 500, Pollutant: tuple.CO2}
	exchange := func() {
		t.Helper()
		resp, err := sc.Exchange(req)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := resp.(wire.QueryResponse); !ok {
			t.Fatalf("unexpected response %#v", resp)
		}
	}

	// Without a TTL the ring is fetched once, ever.
	exchange()
	cur = cur.Add(10 * time.Hour)
	exchange()
	if seed.fetches != 1 {
		t.Fatalf("TTL-less transport fetched the ring %d times, want 1", seed.fetches)
	}

	// With a TTL, an aged ring is re-fetched before routing; a fresh one
	// is not.
	sc.SetRingTTL(time.Minute)
	exchange()
	if seed.fetches != 2 {
		t.Fatalf("aged ring not re-fetched: %d fetches, want 2", seed.fetches)
	}
	ringA, _ := sc.Ring()
	exchange()
	if seed.fetches != 2 {
		t.Fatalf("fresh ring re-fetched: %d fetches, want 2", seed.fetches)
	}

	// A failed refresh keeps the stale ring working and backs off a full
	// TTL before retrying the seed.
	seed.down = true
	cur = cur.Add(2 * time.Minute)
	exchange()
	if seed.fetches != 3 {
		t.Fatalf("expired ring not re-fetched: %d fetches, want 3", seed.fetches)
	}
	if ring, _ := sc.Ring(); ring != ringA {
		t.Fatal("failed refresh replaced the cached ring")
	}
	exchange() // immediately after the failure: inside the back-off
	if seed.fetches != 3 {
		t.Fatalf("failed refresh not backed off: %d fetches, want 3", seed.fetches)
	}
	cur = cur.Add(2 * time.Minute)
	exchange()
	if seed.fetches != 4 {
		t.Fatalf("back-off never re-tried the seed: %d fetches, want 4", seed.fetches)
	}

	// Recovery: the next expiry adopts the seed's new ring, so clients
	// converge on a resharded cluster without needing a NotOwner bounce.
	seed.down = false
	seed.ring = testRing(t, "c:1", "d:1")
	cur = cur.Add(2 * time.Minute)
	exchange()
	ring, err := sc.Ring()
	if err != nil {
		t.Fatal(err)
	}
	if ring == ringA {
		t.Fatal("recovered seed's new ring was not adopted")
	}
	owner := ring.Addr(ring.Owner(tuple.CO2, geo.Point{X: 500, Y: 500}))
	if owner != "c:1" && owner != "d:1" {
		t.Fatalf("post-recovery owner %q still on the old ring", owner)
	}
	if last := dialed[len(dialed)-1]; last != owner {
		t.Fatalf("last exchange dialed %q, want new owner %q", last, owner)
	}
	if got := sc.Stats().Refreshes; got != 5 {
		t.Fatalf("Refreshes counter is %d, want 5 (3 successful fetches + 2 failed attempts)", got)
	}
}

// TestShardedRingTTLDisabled locks SetRingTTL(0) back to bounce-only
// refresh semantics.
func TestShardedRingTTLDisabled(t *testing.T) {
	seed := &ttlSeed{ring: testRing(t, "a:1", "b:1")}
	sc := NewSharded(seed, func(addr string) (Transport, error) {
		return &echoOwner{addr: addr}, nil
	})
	cur := time.Unix(1000, 0)
	sc.now = func() time.Time { return cur }
	sc.SetRingTTL(time.Minute)

	req := wire.QueryRequest{T: 100, X: 500, Y: 500, Pollutant: tuple.CO2}
	if _, err := sc.Exchange(req); err != nil {
		t.Fatal(err)
	}
	sc.SetRingTTL(0)
	cur = cur.Add(10 * time.Hour)
	if _, err := sc.Exchange(req); err != nil {
		t.Fatal(err)
	}
	if seed.fetches != 1 {
		t.Fatalf("disabled TTL still re-fetched: %d fetches, want 1", seed.fetches)
	}
}
