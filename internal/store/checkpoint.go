package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/tuple"
)

// On-disk checkpoint layout
//
// A checkpoint file (checkpoint-%06d.emt) is a fixed header followed by
// the retained windows as ordinary tuple binary frames — the same
// framing the segments use, so one codec serves both:
//
//	magic    uint32  "EMCK"
//	version  uint32  1
//	seq      uint64  checkpoint sequence number
//	horizon  uint64  segments with seq ≤ horizon are fully covered
//	frames   uint32  number of tuple frames that follow
//	tuples   uint64  total tuples across all frames
//	maxTime  uint64  float64 bits of the store's max timestamp
//	crc      uint32  CRC-32 (IEEE) of the 44 header bytes above
//	frames × tuple.WriteBinary frames (each self-checksummed)
//
// The MANIFEST commits a checkpoint: a tiny checksummed record naming
// the current checkpoint and its horizon:
//
//	magic    uint32  "EMMF"
//	version  uint32  1
//	seq      uint64
//	horizon  uint64
//	crc      uint32  CRC-32 (IEEE) of the 24 bytes above
//
// Both are written to a ".tmp" sibling, fsynced, and renamed into
// place, with a directory fsync after each rename, so a crash at any
// instant leaves either the old or the new file — never a torn one.

const (
	ckMagic       = 0x454d434b // "EMCK"
	manifestMagic = 0x454d4d46 // "EMMF"
	ckVersion     = 1

	ckHeaderSize = 48
	manifestSize = 28

	// manifestName is the commit record's file name inside cfg.Dir.
	manifestName = "MANIFEST"

	// ckFrameTuples chunks one window into multiple frames so a huge
	// window never exceeds the codec's per-frame sanity bound.
	ckFrameTuples = 1 << 16
)

// ErrCorruptCheckpoint marks an unreadable checkpoint or manifest.
// Recovery treats it as "this checkpoint does not exist" and falls back
// to the next candidate, ultimately to full segment replay.
var ErrCorruptCheckpoint = errors.New("store: corrupt checkpoint")

// CheckpointStats counts the store's checkpoint activity.
type CheckpointStats struct {
	// Checkpoints is the number of checkpoints committed (manifest
	// renamed into place).
	Checkpoints int64
	// Failures counts checkpoint attempts that aborted before commit.
	Failures int64
	// LastSeq is the sequence number of the newest committed checkpoint
	// (-1 before the first).
	LastSeq int64
	// LastWindows and LastTuples describe the newest committed
	// checkpoint's payload.
	LastWindows int64
	LastTuples  int64
	// SegmentsDeleted is the total number of segment files removed by
	// checkpoint compaction (recovery-time deletions are counted in
	// RecoveryStats instead).
	SegmentsDeleted int64
}

// RecoveryStats describes what Open did to rebuild the store: where the
// retained state came from and how much of the segment log had to be
// replayed. The crash-injection and restart tests assert against these
// counters; they are fixed once Open returns.
type RecoveryStats struct {
	// FromCheckpoint is true when the retained windows were loaded from
	// a checkpoint file rather than rebuilt by full log replay.
	FromCheckpoint bool
	// Columnar is true when recovery went through the columnar sidecar:
	// window bases stayed lazy instead of being decoded up front.
	Columnar bool
	// CheckpointSeq and CheckpointTuples identify the checkpoint used
	// (meaningful only when FromCheckpoint).
	CheckpointSeq    int
	CheckpointTuples int
	// CorruptCheckpoints counts checkpoint files that failed validation
	// and were skipped during recovery.
	CorruptCheckpoints int
	// SegmentsReplayed and TuplesReplayed count the segment suffix
	// actually replayed (all segments, under full replay).
	SegmentsReplayed int
	TuplesReplayed   int
	// SegmentsDeleted counts segment files removed at Open: covered
	// segments left behind by an interrupted compaction, and segments
	// proven to lie entirely behind the retention horizon.
	SegmentsDeleted int
}

// checkpointName returns the file name of checkpoint seq.
func checkpointName(seq int) string { return fmt.Sprintf("checkpoint-%06d.emt", seq) }

// parseSeq extracts the numeric sequence of a "<prefix>NNNNNN.emt" file
// name; ok is false for names that do not match.
func parseSeq(name, prefix string) (int, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".emt") {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(".emt")]
	if mid == "" {
		return 0, false
	}
	n, err := strconv.Atoi(mid)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// checkpointSeqs lists the checkpoint sequence numbers present in dir,
// newest first.
func checkpointSeqs(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: read dir: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeq(e.Name(), "checkpoint-"); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(seqs)))
	return seqs, nil
}

// ckHeader is the decoded fixed header of a checkpoint file.
type ckHeader struct {
	seq     int
	horizon int
	frames  int
	tuples  int
	maxTime float64
}

func encodeCkHeader(h ckHeader) []byte {
	buf := make([]byte, ckHeaderSize)
	binary.LittleEndian.PutUint32(buf[0:], ckMagic)
	binary.LittleEndian.PutUint32(buf[4:], ckVersion)
	binary.LittleEndian.PutUint64(buf[8:], uint64(int64(h.seq)))
	binary.LittleEndian.PutUint64(buf[16:], uint64(int64(h.horizon)))
	binary.LittleEndian.PutUint32(buf[24:], uint32(h.frames))
	binary.LittleEndian.PutUint64(buf[28:], uint64(int64(h.tuples)))
	binary.LittleEndian.PutUint64(buf[36:], math.Float64bits(h.maxTime))
	binary.LittleEndian.PutUint32(buf[44:], crc32.ChecksumIEEE(buf[:44]))
	return buf
}

func decodeCkHeader(buf []byte) (ckHeader, error) {
	if len(buf) < ckHeaderSize {
		return ckHeader{}, fmt.Errorf("%w: short header", ErrCorruptCheckpoint)
	}
	if crc32.ChecksumIEEE(buf[:44]) != binary.LittleEndian.Uint32(buf[44:]) {
		return ckHeader{}, fmt.Errorf("%w: header checksum", ErrCorruptCheckpoint)
	}
	if binary.LittleEndian.Uint32(buf[0:]) != ckMagic {
		return ckHeader{}, fmt.Errorf("%w: bad magic", ErrCorruptCheckpoint)
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != ckVersion {
		return ckHeader{}, fmt.Errorf("%w: version %d", ErrCorruptCheckpoint, v)
	}
	return ckHeader{
		seq:     int(int64(binary.LittleEndian.Uint64(buf[8:]))),
		horizon: int(int64(binary.LittleEndian.Uint64(buf[16:]))),
		frames:  int(binary.LittleEndian.Uint32(buf[24:])),
		tuples:  int(int64(binary.LittleEndian.Uint64(buf[28:]))),
		maxTime: math.Float64frombits(binary.LittleEndian.Uint64(buf[36:])),
	}, nil
}

// readCheckpointFile fully validates and loads one checkpoint file: the
// header checksum, every frame's checksum, the frame count, the tuple
// total, and a clean EOF all have to line up, or the whole file is
// rejected — recovery never trusts half a checkpoint.
func readCheckpointFile(path string) (ckHeader, []tuple.Batch, error) {
	f, err := os.Open(path)
	if err != nil {
		return ckHeader{}, nil, fmt.Errorf("%w: %v", ErrCorruptCheckpoint, err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	hdrBuf := make([]byte, ckHeaderSize)
	if _, err := io.ReadFull(r, hdrBuf); err != nil {
		return ckHeader{}, nil, fmt.Errorf("%w: header: %v", ErrCorruptCheckpoint, err)
	}
	hdr, err := decodeCkHeader(hdrBuf)
	if err != nil {
		return ckHeader{}, nil, err
	}
	batches := make([]tuple.Batch, 0, hdr.frames)
	total := 0
	for i := 0; i < hdr.frames; i++ {
		b, err := tuple.ReadBinary(r)
		if err != nil {
			return ckHeader{}, nil, fmt.Errorf("%w: frame %d: %v", ErrCorruptCheckpoint, i, err)
		}
		total += len(b)
		batches = append(batches, b)
	}
	if _, err := tuple.ReadBinary(r); !errors.Is(err, io.EOF) {
		return ckHeader{}, nil, fmt.Errorf("%w: trailing data after %d frames", ErrCorruptCheckpoint, hdr.frames)
	}
	if total != hdr.tuples {
		return ckHeader{}, nil, fmt.Errorf("%w: %d tuples, header claims %d", ErrCorruptCheckpoint, total, hdr.tuples)
	}
	return hdr, batches, nil
}

// readManifest reads and validates dir's MANIFEST commit record.
func readManifest(dir string) (seq, horizon int, err error) {
	buf, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return 0, 0, fmt.Errorf("%w: manifest: %v", ErrCorruptCheckpoint, err)
	}
	if len(buf) != manifestSize {
		return 0, 0, fmt.Errorf("%w: manifest length %d", ErrCorruptCheckpoint, len(buf))
	}
	if crc32.ChecksumIEEE(buf[:24]) != binary.LittleEndian.Uint32(buf[24:]) {
		return 0, 0, fmt.Errorf("%w: manifest checksum", ErrCorruptCheckpoint)
	}
	if binary.LittleEndian.Uint32(buf[0:]) != manifestMagic {
		return 0, 0, fmt.Errorf("%w: manifest magic", ErrCorruptCheckpoint)
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != ckVersion {
		return 0, 0, fmt.Errorf("%w: manifest version %d", ErrCorruptCheckpoint, v)
	}
	seq = int(int64(binary.LittleEndian.Uint64(buf[8:])))
	horizon = int(int64(binary.LittleEndian.Uint64(buf[16:])))
	return seq, horizon, nil
}

// Checkpoint persists the retained windows to a new checkpoint file and
// compacts the segment log behind it. The sequence is:
//
//  1. Under the store lock: snapshot the retained windows and seal the
//     open segment, rotating to a fresh one. Everything appended so far
//     is covered by the snapshot; everything after the rotation lands
//     in segments the checkpoint does not claim. The sealed handle is
//     retired, not closed, so a concurrent every-batch Append that
//     already captured it can still run its own fsync against it. The
//     seal fsync itself runs outside the lock — unless a commit group
//     is pending on the segment, whose acks depend on an fsync that
//     provably covers their frames before the handle is replaced.
//  2. Write checkpoint-%06d.emt to a temp file, fsync, rename, fsync
//     the directory.
//  3. Commit it by writing MANIFEST the same way.
//  4. Compact: delete segments at or below the checkpoint horizon
//     (sparing the newest Config.KeepSegments of them) and checkpoint
//     files superseded by this one.
//
// A failure before step 3 leaves the previous checkpoint (or the plain
// segment log) authoritative; a failure during step 4 is reported but
// the checkpoint itself stands, and the deletions are retried by the
// next checkpoint or at the next Open. Memory-only stores (no Dir)
// return nil without doing anything. Checkpoint is safe for concurrent
// use with Append and queries; concurrent Checkpoint calls serialize.
func (s *Store) Checkpoint() error {
	s.ckMu.Lock()
	defer s.ckMu.Unlock()

	s.mu.Lock()
	if s.cfg.Dir == "" {
		s.mu.Unlock()
		return nil
	}
	if s.closed {
		s.mu.Unlock()
		return errors.New("store: checkpoint after close")
	}
	// Handles retired by the previous checkpoint are doomed now; any
	// append still fsyncing one holds a reference that defers the close.
	for _, h := range s.retired {
		h.doom()
	}
	s.retired = nil
	idxs := s.unionIndexesLocked()
	batches := make([]tuple.Batch, len(idxs))
	var lazyIdx []int // positions in idxs whose base must come from the sidecar
	for i, c := range idxs {
		batches[i] = s.windows[c].Clone()
		if s.col.lazy[c] != nil {
			lazyIdx = append(lazyIdx, i)
		}
	}
	var cr *colReader
	if len(lazyIdx) > 0 && s.col.rd != nil {
		cr = s.col.rd
		cr.acquire()
	} else if len(s.col.lazy) == 0 {
		// Every lazy window has been materialized or evicted; no new ones
		// can appear (they only come from Open), so the old sidecar's
		// reader is done. Retiring it lets compaction reclaim the file on
		// every platform.
		s.retireReaderLocked()
	}
	prevCkSeq := s.recovery.CheckpointSeq
	spareCol := -1
	if s.col.rd != nil {
		spareCol = s.col.rd.rd.Seq()
	}
	maxTime := s.maxTime
	horizon := s.segSeq
	var sealSync *segHandle
	if s.seg != nil {
		if s.group != nil || len(s.sealed) > 0 {
			// Pending commit groups will be released by an fsync of
			// whatever segment is current by then; sync their frames
			// under the lock so rotation cannot ack them off a sync
			// that missed their segment.
			if err := s.doSync(s.seg.f); err != nil {
				if cr != nil {
					cr.release()
				}
				s.mu.Unlock()
				s.failCheckpoint()
				return fmt.Errorf("store: checkpoint: seal segment: %w", err)
			}
		} else {
			// No group depends on this segment: every acknowledged
			// every-batch append already fsynced its own frame, and an
			// in-flight one holds the (still open, retired) handle and
			// will. Defer the seal fsync past the lock so queries never
			// stall behind it.
			sealSync = s.seg
			sealSync.acquire()
		}
		s.retired = append(s.retired, s.seg)
		s.seg = nil
		s.segSeq++
		// A failed open here is not fatal: persistLocked re-opens the
		// segment on the next append, exactly as after a failed rotation.
		_ = s.openSegment()
	} else {
		horizon = s.segSeq - 1
	}
	seq := s.ckSeq
	s.ckSeq++
	s.mu.Unlock()

	if sealSync != nil {
		err := s.doSync(sealSync.f)
		sealSync.release()
		if err != nil {
			// The rotation stands (the segment keeps its frames and
			// recovery replays it); only this checkpoint is abandoned.
			if cr != nil {
				cr.release()
			}
			s.failCheckpoint()
			return fmt.Errorf("store: checkpoint: seal segment: %w", err)
		}
	}

	// Assemble still-lazy windows outside the lock: their snapshot is the
	// immutable sidecar base plus the suffix cloned above. A corrupt
	// sidecar block falls back to the row checkpoint file it was derived
	// from.
	var asmErr error
	for _, i := range lazyIdx {
		c := idxs[i]
		var base tuple.Batch
		err := errors.New("store: columnar reader closed")
		if cr != nil {
			base, err = cr.rd.WindowTuples(c)
		}
		if err != nil {
			s.col.fallbacks.Add(1)
			base, err = s.readCheckpointWindow(prevCkSeq, c)
		}
		if err != nil {
			asmErr = fmt.Errorf("store: checkpoint: assemble window %d: %w", c, err)
			break
		}
		batches[i] = append(base, batches[i]...)
	}
	if cr != nil {
		cr.release()
	}
	if asmErr != nil {
		s.failCheckpoint()
		return asmErr
	}
	// Count from the assembled batches, not the snapshot total: they are
	// what the file will actually hold, and the header must agree with
	// the frames even if lazy assembly returned a surprise.
	tuples := 0
	for _, b := range batches {
		tuples += len(b)
	}

	if err := s.writeCheckpointFile(seq, horizon, batches, tuples, maxTime); err != nil {
		s.failCheckpoint()
		return err
	}
	if s.cfg.Columnar.Enabled {
		// Sidecar before MANIFEST: a crash in between leaves a committed
		// pair one rename away, and a sidecar write failure only costs
		// the accelerator (the checkpoint still commits).
		s.writeSidecar(seq, idxs, batches)
	}
	if err := s.writeManifest(seq, horizon); err != nil {
		s.failCheckpoint()
		return err
	}
	s.ckStatsMu.Lock()
	s.ckStats.Checkpoints++
	s.ckStats.LastSeq = int64(seq)
	s.ckStats.LastWindows = int64(len(idxs))
	s.ckStats.LastTuples = int64(tuples)
	s.ckStatsMu.Unlock()

	deleted, err := s.compact(seq, horizon, spareCol)
	s.ckStatsMu.Lock()
	s.ckStats.SegmentsDeleted += int64(deleted)
	s.ckStatsMu.Unlock()
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	return nil
}

func (s *Store) failCheckpoint() {
	s.ckStatsMu.Lock()
	s.ckStats.Failures++
	s.ckStatsMu.Unlock()
}

// CheckpointStats returns the checkpoint counters.
func (s *Store) CheckpointStats() CheckpointStats {
	s.ckStatsMu.Lock()
	defer s.ckStatsMu.Unlock()
	return s.ckStats
}

// RecoveryStats reports what this store's Open did to rebuild state. It
// is fixed once Open returns.
func (s *Store) RecoveryStats() RecoveryStats { return s.recovery }

// atomicReplace installs path crash-safely: the payload is written to a
// ".tmp" sibling, fsynced, closed, renamed into place, and the
// directory fsynced — a crash at any instant leaves either the old or
// the new file. The temp file is removed on every failure path. File
// fsyncs go through syncSeg (hookable, but NOT counted in
// DurabilityStats.Syncs, which tracks append-path durability only).
func (s *Store) atomicReplace(path string, fill func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := fill(bw); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := s.syncSeg(f); err != nil {
		return fail(fmt.Errorf("sync: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("close: %w", err)
	}
	if err := s.renameFile(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("rename: %w", err)
	}
	return s.syncDir()
}

// writeCheckpointFile writes one checkpoint atomically. Windows larger
// than ckFrameTuples are chunked across several frames.
func (s *Store) writeCheckpointFile(seq, horizon int, batches []tuple.Batch, tuples int, maxTime float64) error {
	frames := 0
	for _, b := range batches {
		frames += (len(b) + ckFrameTuples - 1) / ckFrameTuples
	}
	err := s.atomicReplace(filepath.Join(s.cfg.Dir, checkpointName(seq)), func(w io.Writer) error {
		if _, err := w.Write(encodeCkHeader(ckHeader{
			seq: seq, horizon: horizon, frames: frames, tuples: tuples, maxTime: maxTime,
		})); err != nil {
			return err
		}
		for _, b := range batches {
			for off := 0; off < len(b); off += ckFrameTuples {
				end := off + ckFrameTuples
				if end > len(b) {
					end = len(b)
				}
				if err := s.writeFrame(w, b[off:end]); err != nil {
					return fmt.Errorf("write frame: %w", err)
				}
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	return nil
}

// writeManifest commits checkpoint seq by atomically replacing MANIFEST.
func (s *Store) writeManifest(seq, horizon int) error {
	buf := make([]byte, manifestSize)
	binary.LittleEndian.PutUint32(buf[0:], manifestMagic)
	binary.LittleEndian.PutUint32(buf[4:], ckVersion)
	binary.LittleEndian.PutUint64(buf[8:], uint64(int64(seq)))
	binary.LittleEndian.PutUint64(buf[16:], uint64(int64(horizon)))
	binary.LittleEndian.PutUint32(buf[24:], crc32.ChecksumIEEE(buf[:24]))
	err := s.atomicReplace(filepath.Join(s.cfg.Dir, manifestName), func(w io.Writer) error {
		_, err := w.Write(buf)
		return err
	})
	if err != nil {
		return fmt.Errorf("store: manifest: %w", err)
	}
	return nil
}

// syncDir fsyncs cfg.Dir so a just-renamed file survives a crash.
func (s *Store) syncDir() error {
	d, err := os.Open(s.cfg.Dir)
	if err != nil {
		return fmt.Errorf("sync dir: %w", err)
	}
	err = s.syncSeg(d)
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("sync dir: %w", err)
	}
	return nil
}

// compact removes segment files fully covered by checkpoint ckSeq
// (those at or below horizon, sparing the newest Config.KeepSegments),
// checkpoint files other than ckSeq, and columnar sidecars other than
// ckSeq's — except spareCol, the sidecar a live reader still serves
// lazy windows from (deleted by a later compaction once the reader
// retires). Deletion failures are joined and reported but never undo
// the checkpoint — the files are retried by the next compaction or at
// the next Open.
func (s *Store) compact(ckSeq, horizon, spareCol int) (deleted int, err error) {
	var errs []error
	names, err := segmentNames(s.cfg.Dir)
	if err != nil {
		return 0, err
	}
	for _, name := range s.coveredToDelete(names, horizon) {
		if rerr := s.removeFile(filepath.Join(s.cfg.Dir, name)); rerr != nil {
			errs = append(errs, rerr)
		} else {
			deleted++
		}
	}
	seqs, err := checkpointSeqs(s.cfg.Dir)
	if err != nil {
		errs = append(errs, err)
	}
	for _, seq := range seqs {
		if seq == ckSeq {
			continue
		}
		if rerr := s.removeFile(filepath.Join(s.cfg.Dir, checkpointName(seq))); rerr != nil {
			errs = append(errs, rerr)
		}
	}
	for _, seq := range colblockSeqs(s.cfg.Dir) {
		if seq == ckSeq || seq == spareCol {
			continue
		}
		if rerr := s.removeFile(filepath.Join(s.cfg.Dir, colblockName(seq))); rerr != nil {
			errs = append(errs, rerr)
		}
	}
	return deleted, errors.Join(errs...)
}

// coveredToDelete picks the checkpoint-covered segments (seq ≤ horizon)
// that compaction should delete, sparing the newest Config.KeepSegments
// of them. Shared by Checkpoint's compaction and recovery's resume of
// an interrupted one so both always agree on which segments survive.
func (s *Store) coveredToDelete(names []string, horizon int) []string {
	var covered []string
	for _, name := range names {
		if seq, ok := parseSeq(name, "segment-"); ok && seq <= horizon {
			covered = append(covered, name)
		}
	}
	keep := s.cfg.KeepSegments
	if keep > len(covered) {
		keep = len(covered)
	}
	return covered[:len(covered)-keep]
}
