package store

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"repro/internal/geo"
	"repro/internal/tuple"
)

func colCfg(dir string) Config {
	return Config{
		WindowLength: 100,
		Dir:          dir,
		Sync:         SyncNever(),
		Columnar:     ColumnarConfig{Enabled: true, BlockTuples: 32},
	}
}

func randBatch(rng *rand.Rand, n int, tmin, tmax float64) tuple.Batch {
	b := make(tuple.Batch, n)
	for i := range b {
		b[i] = tuple.Raw{
			T: tmin + rng.Float64()*(tmax-tmin),
			X: rng.Float64()*5000 - 1000,
			Y: rng.Float64()*4000 - 800,
			S: rng.NormFloat64() * 40,
		}
	}
	return b
}

func batchBitEqual(a, b tuple.Batch) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i].T) != math.Float64bits(b[i].T) ||
			math.Float64bits(a[i].X) != math.Float64bits(b[i].X) ||
			math.Float64bits(a[i].Y) != math.Float64bits(b[i].Y) ||
			math.Float64bits(a[i].S) != math.Float64bits(b[i].S) {
			return false
		}
	}
	return true
}

func copyDirTo(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestColumnarLazyRecovery checks the headline behavior: a restart over a
// checkpointed log with the sidecar present recovers lazily (no tuples
// decoded), serves exact counts and bounds from the footer, and
// materializes windows bit-identically on demand — including a window
// that is lazy base + replayed segment suffix.
func TestColumnarLazyRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(colCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for c := 0; c < 5; c++ {
		if err := s.Append(randBatch(rng, 120, float64(c*100), float64(c*100+100))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Suffix after the checkpoint: window 4 gains tuples, window 5 is new.
	suffix4 := randBatch(rng, 30, 400, 500)
	suffix5 := randBatch(rng, 40, 500, 600)
	if err := s.Append(suffix4); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(suffix5); err != nil {
		t.Fatal(err)
	}
	want := map[int]tuple.Batch{}
	for c := 0; c <= 5; c++ {
		want[c] = s.Window(c)
	}
	wantLen := s.Len()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(colCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rs := r.RecoveryStats()
	if !rs.FromCheckpoint || !rs.Columnar {
		t.Fatalf("recovery %+v: want columnar checkpoint recovery", rs)
	}
	cs := r.ColumnarStats()
	if cs.LazyWindows == 0 {
		t.Fatalf("stats %+v: no lazy windows after columnar recovery", cs)
	}
	if cs.Materializations != 0 {
		t.Fatalf("stats %+v: windows materialized before anything was read", cs)
	}
	if r.Len() != wantLen {
		t.Fatalf("Len = %d, want %d", r.Len(), wantLen)
	}
	for c := 0; c <= 5; c++ {
		if got := r.WindowLen(c); got != len(want[c]) {
			t.Fatalf("WindowLen(%d) = %d, want %d", c, got, len(want[c]))
		}
		wb, wok := want[c].Bounds()
		gb, gok := r.WindowBounds(c)
		if wok != gok || gb != wb {
			t.Fatalf("WindowBounds(%d) = %+v,%v want %+v,%v", c, gb, gok, wb, wok)
		}
	}
	for c := 0; c <= 5; c++ {
		if got := r.Window(c); !batchBitEqual(got, want[c]) {
			t.Fatalf("window %d differs after columnar recovery", c)
		}
	}
	cs = r.ColumnarStats()
	if cs.Materializations == 0 || cs.LazyWindows != 0 {
		t.Fatalf("stats %+v: want all windows materialized after reads", cs)
	}
	if cs.MmapReads+cs.ReadAtReads == 0 || cs.BytesRead == 0 {
		t.Fatalf("stats %+v: no reads accounted", cs)
	}
	if cs.FallbackReplays != 0 || cs.MaterializeFailures != 0 {
		t.Fatalf("stats %+v: unexpected fallbacks on a clean sidecar", cs)
	}
}

// TestColumnarDisableMmap forces the pread path end to end.
func TestColumnarDisableMmap(t *testing.T) {
	dir := t.TempDir()
	cfg := colCfg(dir)
	cfg.Columnar.DisableMmap = true
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	if err := s.Append(randBatch(rng, 200, 0, 300)); err != nil {
		t.Fatal(err)
	}
	want := map[int]tuple.Batch{}
	for _, c := range s.WindowIndexes() {
		want[c] = s.Window(c)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for c, w := range want {
		if got := r.Window(c); !batchBitEqual(got, w) {
			t.Fatalf("window %d differs under DisableMmap", c)
		}
	}
	cs := r.ColumnarStats()
	if cs.MmapReads != 0 || cs.ReadAtReads == 0 {
		t.Fatalf("stats %+v: DisableMmap must route every read through pread", cs)
	}
}

// TestColumnarCorruptBlockFallsBack flips a byte inside a sidecar block
// (leaving its footer intact) and requires materialization to fall back
// to the row checkpoint with identical results.
func TestColumnarCorruptBlockFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(colCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if err := s.Append(randBatch(rng, 300, 0, 200)); err != nil {
		t.Fatal(err)
	}
	want := map[int]tuple.Batch{}
	for _, c := range s.WindowIndexes() {
		want[c] = s.Window(c)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	seqs := colblockSeqs(dir)
	if len(seqs) != 1 {
		t.Fatalf("sidecars on disk: %v, want exactly one", seqs)
	}
	path := filepath.Join(dir, colblockName(seqs[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0xff // inside the first block, past the 8-byte header
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(colCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.RecoveryStats().Columnar {
		t.Fatalf("recovery %+v: footer is intact, recovery should still be lazy", r.RecoveryStats())
	}
	for c, w := range want {
		if got := r.Window(c); !batchBitEqual(got, w) {
			t.Fatalf("window %d differs after block-corruption fallback", c)
		}
	}
	cs := r.ColumnarStats()
	if cs.FallbackReplays == 0 {
		t.Fatalf("stats %+v: corrupt block must be counted as a fallback replay", cs)
	}
	if cs.MaterializeFailures != 0 {
		t.Fatalf("stats %+v: fallback should have succeeded", cs)
	}
}

// TestColumnarCheckpointOfLazyWindows checkpoints a store whose windows
// were never materialized: the new checkpoint must carry the full data
// (streamed from the old sidecar), proven by a third, clean restart.
func TestColumnarCheckpointOfLazyWindows(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(colCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	if err := s.Append(randBatch(rng, 250, 0, 300)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	mid, err := Open(colCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Append a suffix but read nothing: every checkpointed base stays lazy.
	extra := randBatch(rng, 50, 300, 400)
	if err := mid.Append(extra); err != nil {
		t.Fatal(err)
	}
	if mid.ColumnarStats().Materializations != 0 {
		t.Fatal("append alone must not materialize windows")
	}
	if err := mid.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := map[int]tuple.Batch{}
	for _, c := range mid.WindowIndexes() {
		want[c] = mid.Window(c)
	}
	if err := mid.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(colCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got, wantN := len(r.WindowIndexes()), len(want); got != wantN {
		t.Fatalf("windows after second checkpoint: %d, want %d", got, wantN)
	}
	for c, w := range want {
		if got := r.Window(c); !batchBitEqual(got, w) {
			t.Fatalf("window %d differs after checkpoint-of-lazy-windows", c)
		}
	}
}

// TestColumnarEquivalenceRandomHistories is the satellite property test
// at the store layer: over randomized ingest histories — late arrivals,
// interleaved checkpoints, torn segment tails — a columnar reopen and a
// row-replay reopen of the same directory must agree bit-for-bit on
// every observable.
func TestColumnarEquivalenceRandomHistories(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		dir := t.TempDir()
		cfg := colCfg(dir)
		cfg.Retain = 8
		s, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		maxWin := 3
		ops := 30 + rng.Intn(40)
		for i := 0; i < ops; i++ {
			if rng.Intn(10) == 0 {
				if err := s.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if rng.Intn(4) == 0 {
				maxWin++
			}
			lo := maxWin - 3 - rng.Intn(2) // late arrivals into older windows
			if lo < 0 {
				lo = 0
			}
			b := randBatch(rng, 1+rng.Intn(25), float64(lo*100), float64(maxWin*100))
			if err := s.Append(b); err != nil {
				t.Fatal(err)
			}
		}
		if rng.Intn(2) == 0 {
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// Optionally tear the newest segment's tail, as a crash mid-write
		// would: recovery must treat the damage identically on both paths.
		if rng.Intn(2) == 0 {
			names, err := segmentNames(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(names) > 0 {
				p := filepath.Join(dir, names[len(names)-1])
				f, err := os.OpenFile(p, os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				f.Write([]byte{0x45, 0x4d, 0x54, 0x31, 0x13, 0x37, 0x00})
				f.Close()
			}
		}

		cfgA := cfg
		cfgA.Dir = copyDirTo(t, dir)
		cfgB := cfg
		cfgB.Dir = copyDirTo(t, dir)
		cfgB.Columnar = ColumnarConfig{}
		sa, err := Open(cfgA)
		if err != nil {
			t.Fatalf("trial %d: columnar reopen: %v", trial, err)
		}
		sb, err := Open(cfgB)
		if err != nil {
			t.Fatalf("trial %d: row reopen: %v", trial, err)
		}
		if sa.Len() != sb.Len() {
			t.Fatalf("trial %d: Len %d vs %d", trial, sa.Len(), sb.Len())
		}
		if math.Float64bits(sa.MaxTime()) != math.Float64bits(sb.MaxTime()) {
			t.Fatalf("trial %d: MaxTime %v vs %v", trial, sa.MaxTime(), sb.MaxTime())
		}
		ia, ib := sa.WindowIndexes(), sb.WindowIndexes()
		if len(ia) != len(ib) {
			t.Fatalf("trial %d: indexes %v vs %v", trial, ia, ib)
		}
		for i := range ia {
			if ia[i] != ib[i] {
				t.Fatalf("trial %d: indexes %v vs %v", trial, ia, ib)
			}
		}
		for _, c := range ia {
			gb, gok := sa.WindowBounds(c)
			wa, wb := sa.Window(c), sb.Window(c)
			if !batchBitEqual(wa, wb) {
				t.Fatalf("trial %d: window %d differs between scan paths", trial, c)
			}
			eb, eok := wb.Bounds()
			if gok != eok || gb != eb {
				t.Fatalf("trial %d: WindowBounds(%d) %+v,%v vs %+v,%v", trial, c, gb, gok, eb, eok)
			}
		}
		sa.Close()
		sb.Close()
	}
}

// TestColumnarWindowRegion compares the merged two-source region scan
// against filtering the materialized window, on clustered data so the
// zone maps actually prune, with an unmaterialized suffix in play.
func TestColumnarWindowRegion(t *testing.T) {
	dir := t.TempDir()
	cfg := colCfg(dir)
	cfg.Columnar.BlockTuples = 16
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	// Two spatial clusters far apart inside one window, so blocks sort
	// into disjoint cells and a query over one cluster prunes the other.
	var b tuple.Batch
	for i := 0; i < 200; i++ {
		cx, cy := 0.0, 0.0
		if i%2 == 1 {
			cx, cy = 50000, 50000
		}
		b = append(b, tuple.Raw{
			T: rng.Float64() * 100,
			X: cx + rng.Float64()*100, Y: cy + rng.Float64()*100,
			S: 400 + rng.NormFloat64(),
		})
	}
	if err := s.Append(b); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	suffix := randBatch(rng, 25, 0, 100)
	if err := s.Append(suffix); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	region := geo.Rect{Min: geo.Point{X: -500, Y: -500}, Max: geo.Point{X: 1500, Y: 1200}}
	got := r.WindowRegion(0, region)
	if r.ColumnarStats().Materializations != 0 {
		t.Fatal("WindowRegion must not materialize the window")
	}
	if cs := r.ColumnarStats(); cs.BlocksPruned == 0 {
		t.Fatalf("stats %+v: clustered scan pruned nothing", cs)
	}
	var want tuple.Batch
	for _, tp := range r.Window(0) {
		if region.Contains(tp.Pos()) {
			want = append(want, tp)
		}
	}
	sortTuples := func(b tuple.Batch) {
		sort.Slice(b, func(i, j int) bool {
			if b[i].T != b[j].T {
				return b[i].T < b[j].T
			}
			if b[i].X != b[j].X {
				return b[i].X < b[j].X
			}
			if b[i].Y != b[j].Y {
				return b[i].Y < b[j].Y
			}
			return b[i].S < b[j].S
		})
	}
	sortTuples(got)
	sortTuples(want)
	if !batchBitEqual(got, want) {
		t.Fatalf("WindowRegion: %d tuples vs filtered window's %d", len(got), len(want))
	}
}

// TestCheckpointConcurrentManualCalls is the regression test for the
// checkpoint/ticker race: concurrent Checkpoint calls (as the engine's
// periodic ticker and a manual trigger produce) while every-batch
// appends are fsyncing must never turn an acknowledged append into a
// sync error against a closed handle.
func TestCheckpointConcurrentManualCalls(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{WindowLength: 100, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Widen the race window: every fsync dawdles, so an append's
	// out-of-lock sync reliably overlaps the next checkpoint's retire.
	s.syncSeg = func(f *os.File) error {
		for i := 0; i < 200; i++ {
			_ = i
		}
		return f.Sync()
	}
	var wg sync.WaitGroup
	appendErr := make(chan error, 64) //bounded: one slot per appender goroutine below
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if err := s.Append(mkBatch(float64(g*1000+i) / 10)); err != nil {
					appendErr <- err
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if err := s.Checkpoint(); err != nil {
					appendErr <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(appendErr)
	for err := range appendErr {
		t.Errorf("concurrent checkpoint/append: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
