package store

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/colblock"
	"repro/internal/geo"
	"repro/internal/tuple"
)

// Columnar sidecar integration
//
// When Config.Columnar.Enabled is set, every checkpoint also writes a
// columnar sidecar (colblock-%06d.emc, see internal/colblock) with the
// same tuples, and Open recovers lazily from it: instead of decoding the
// whole row checkpoint up front, recovery reads the checkpoint's 48-byte
// header plus the sidecar's footer, records each window's tuple count and
// zone maps, and materializes a window's base only when something asks
// for it. The segment suffix behind the checkpoint horizon still replays
// into memory as usual, so a window can be a lazy columnar base plus an
// in-memory suffix — the two-source scan.
//
// The sidecar is strictly an accelerator: a failed sidecar write does not
// fail the checkpoint, a missing or corrupt sidecar falls back to eager
// row recovery, and a block that fails its checksum at materialization
// time falls back to reading that window from the row checkpoint file.

// ColumnarConfig configures the columnar checkpoint sidecar.
type ColumnarConfig struct {
	// Enabled turns on sidecar emission at checkpoint time and lazy
	// columnar recovery at Open.
	Enabled bool
	// DisableMmap forces the sidecar reader onto the pread path. See
	// docs/OPERATIONS.md for when that is the right call.
	DisableMmap bool
	// BlockTuples overrides the tuples-per-block target
	// (0 = colblock.DefaultBlockTuples).
	BlockTuples int
}

// ColumnarStats counts the columnar path's activity on both sides:
// sidecars written at checkpoint time, and how reads were served.
type ColumnarStats struct {
	// Enabled mirrors Config.Columnar.Enabled.
	Enabled bool
	// SidecarsWritten and BlocksWritten count successful sidecar emits;
	// WriteFailures counts sidecar writes that failed (the checkpoint
	// itself still committed).
	SidecarsWritten int64
	BlocksWritten   int64
	WriteFailures   int64
	// LazyWindows is the number of windows currently served from the
	// sidecar without having been materialized.
	LazyWindows int64
	// Materializations counts windows decoded from the sidecar into
	// memory on demand; MaterializeFailures counts windows that could be
	// recovered from neither the sidecar nor the row checkpoint.
	Materializations    int64
	MaterializeFailures int64
	// FallbackReplays counts reads that had to fall back from the
	// columnar path to row replay (corrupt block, reader closed).
	FallbackReplays int64
	// Reader-side counters: blocks decoded, blocks skipped by zone map,
	// and how the bytes were accessed.
	BlocksScanned int64
	BlocksPruned  int64
	MmapReads     int64
	ReadAtReads   int64
	BytesRead     int64
}

// Add accumulates o into s field-wise (Enabled is OR-ed); the engine
// aggregates per-shard stats with it.
func (s *ColumnarStats) Add(o ColumnarStats) {
	s.Enabled = s.Enabled || o.Enabled
	s.SidecarsWritten += o.SidecarsWritten
	s.BlocksWritten += o.BlocksWritten
	s.WriteFailures += o.WriteFailures
	s.LazyWindows += o.LazyWindows
	s.Materializations += o.Materializations
	s.MaterializeFailures += o.MaterializeFailures
	s.FallbackReplays += o.FallbackReplays
	s.BlocksScanned += o.BlocksScanned
	s.BlocksPruned += o.BlocksPruned
	s.MmapReads += o.MmapReads
	s.ReadAtReads += o.ReadAtReads
	s.BytesRead += o.BytesRead
}

// colReader wraps the sidecar reader with a reference count so that the
// store can drop it (Close, or a checkpoint that drained every lazy
// window) while a concurrent materialization is mid-scan: the mapping is
// unmapped only when the last user releases.
type colReader struct {
	rd   *colblock.Reader
	refs atomic.Int64
}

func newColReader(rd *colblock.Reader) *colReader {
	cr := &colReader{rd: rd}
	cr.refs.Store(1) // owner reference, released by Close or checkpoint retirement
	return cr
}

// acquire takes a scan reference. Callers hold s.mu, which orders every
// acquire before the owner release that could drop refs to zero.
func (cr *colReader) acquire() { cr.refs.Add(1) }

func (cr *colReader) release() {
	if cr.refs.Add(-1) == 0 {
		cr.rd.Close()
	}
}

// lazyWin describes a window whose checkpoint base has not been
// materialized: its tuple count and the zone-map union of its blocks.
type lazyWin struct {
	count                  int
	minX, minY, maxX, maxY float64
}

// columnarState is the store's columnar bookkeeping. rd and lazy are
// guarded by s.mu; the counters are atomics so the hot paths never take
// a stats lock.
type columnarState struct {
	rd   *colReader
	lazy map[int]*lazyWin

	// retiredStats carries the final counter snapshot of a dropped
	// reader (Close, or a checkpoint that drained every lazy window) so
	// ColumnarStats stays monotone across reader retirement. Guarded by
	// s.mu.
	retiredStats colblock.Stats

	sidecarsWritten     atomic.Int64
	blocksWritten       atomic.Int64
	writeFailures       atomic.Int64
	materializations    atomic.Int64
	materializeFailures atomic.Int64
	fallbacks           atomic.Int64
}

// retireReaderLocked drops the store's owner reference on the sidecar
// reader, folding a final counter snapshot into retiredStats. An
// in-flight materialization holding its own reference keeps the mapping
// alive until it releases (any counters it adds after this snapshot are
// dropped — a bounded, read-only discrepancy). Caller holds s.mu.
func (s *Store) retireReaderLocked() {
	if s.col.rd == nil {
		return
	}
	st := s.col.rd.rd.Stats()
	s.col.retiredStats.BlocksScanned += st.BlocksScanned
	s.col.retiredStats.BlocksPruned += st.BlocksPruned
	s.col.retiredStats.MmapReads += st.MmapReads
	s.col.retiredStats.ReadAtReads += st.ReadAtReads
	s.col.retiredStats.BytesRead += st.BytesRead
	s.col.rd.release()
	s.col.rd = nil
}

// colblockName returns the sidecar file name for checkpoint seq.
func colblockName(seq int) string { return fmt.Sprintf("colblock-%06d.emc", seq) }

// colblockSeqs lists the sidecar sequence numbers present in dir.
func colblockSeqs(dir string) []int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var seqs []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if !strings.HasPrefix(name, "colblock-") || !strings.HasSuffix(name, ".emc") {
			continue
		}
		mid := name[len("colblock-") : len(name)-len(".emc")]
		if n, err := strconv.Atoi(mid); err == nil && n >= 0 {
			seqs = append(seqs, n)
		}
	}
	sort.Ints(seqs)
	return seqs
}

// readCheckpointHeader reads and validates only the fixed header of a
// checkpoint file — all lazy recovery needs from the row file.
func readCheckpointHeader(path string) (ckHeader, error) {
	f, err := os.Open(path)
	if err != nil {
		return ckHeader{}, fmt.Errorf("%w: %v", ErrCorruptCheckpoint, err)
	}
	defer f.Close()
	buf := make([]byte, ckHeaderSize)
	if _, err := io.ReadFull(f, buf); err != nil {
		return ckHeader{}, fmt.Errorf("%w: header: %v", ErrCorruptCheckpoint, err)
	}
	return decodeCkHeader(buf)
}

// tryLazyRecover attempts columnar recovery of checkpoint seq: validate
// the row header, open the sidecar, cross-check them, and register every
// window as lazy. On success the caller skips the eager row read. Runs
// single-threaded inside Open.
func (s *Store) tryLazyRecover(seq int) (ckHeader, bool) {
	hdr, err := readCheckpointHeader(filepath.Join(s.cfg.Dir, checkpointName(seq)))
	if err != nil || hdr.seq != seq {
		return ckHeader{}, false
	}
	rd, err := colblock.OpenFile(filepath.Join(s.cfg.Dir, colblockName(seq)),
		colblock.Options{DisableMmap: s.cfg.Columnar.DisableMmap})
	if err != nil {
		return ckHeader{}, false
	}
	if rd.Seq() != seq || rd.Tuples() != hdr.tuples {
		rd.Close()
		return ckHeader{}, false
	}
	lazy := make(map[int]*lazyWin)
	for _, c := range rd.Windows() {
		z, ok := rd.WindowZone(c)
		if !ok {
			continue
		}
		lazy[c] = &lazyWin{count: z.Count, minX: z.MinX, minY: z.MinY, maxX: z.MaxX, maxY: z.MaxY}
		s.total += z.Count
	}
	s.col.rd = newColReader(rd)
	s.col.lazy = lazy
	return hdr, true
}

// materializeWindow installs window c's checkpoint base into memory:
// decode it from the sidecar (falling back to the row checkpoint file on
// a corrupt block), then prepend it to whatever segment-suffix tuples
// already accumulated in memory. Safe for concurrent use; the loser of a
// materialization race discards its copy.
func (s *Store) materializeWindow(c int) {
	s.mu.Lock()
	lw := s.col.lazy[c]
	if lw == nil {
		s.mu.Unlock()
		return
	}
	cr := s.col.rd
	if cr != nil {
		cr.acquire()
	}
	ckSeq := s.recovery.CheckpointSeq
	s.mu.Unlock()

	var base tuple.Batch
	err := errors.New("store: columnar reader closed")
	if cr != nil {
		base, err = cr.rd.WindowTuples(c)
		cr.release()
		if err == nil && len(base) != lw.count {
			err = fmt.Errorf("store: columnar window %d: %d tuples, directory claims %d", c, len(base), lw.count)
		}
	}
	if err != nil {
		s.col.fallbacks.Add(1)
		base, err = s.readCheckpointWindow(ckSeq, c)
	}
	if err != nil {
		// Neither source could produce the window. The files are intact on
		// disk for a restart to retry; for this process the window serves
		// its in-memory suffix only, and the failure is counted.
		s.col.materializeFailures.Add(1)
		base = nil
	}

	s.mu.Lock()
	if s.col.lazy[c] == nil {
		// Evicted, or another materializer won; its installation stands.
		s.mu.Unlock()
		return
	}
	delete(s.col.lazy, c)
	s.col.materializations.Add(1)
	if len(base) > 0 {
		s.windows[c] = append(base, s.windows[c]...)
	}
	s.total += len(base) - lw.count
	s.mu.Unlock()
}

// readCheckpointWindow extracts window c's tuples from the row
// checkpoint file, in their original append order — the per-window
// fallback when a sidecar block fails its checksum.
func (s *Store) readCheckpointWindow(seq, c int) (tuple.Batch, error) {
	f, err := os.Open(filepath.Join(s.cfg.Dir, checkpointName(seq)))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptCheckpoint, err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	hdrBuf := make([]byte, ckHeaderSize)
	if _, err := io.ReadFull(r, hdrBuf); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorruptCheckpoint, err)
	}
	hdr, err := decodeCkHeader(hdrBuf)
	if err != nil {
		return nil, err
	}
	var out tuple.Batch
	for i := 0; i < hdr.frames; i++ {
		b, err := tuple.ReadBinary(r)
		if err != nil {
			return nil, fmt.Errorf("%w: frame %d: %v", ErrCorruptCheckpoint, i, err)
		}
		for _, tp := range b {
			if tuple.WindowIndex(tp.T, s.cfg.WindowLength) == c {
				out = append(out, tp)
			}
		}
	}
	return out, nil
}

// WindowBounds returns the exact spatial bounding box of window W_c
// without materializing it: the lazy base contributes its zone-map
// union, the in-memory part is scanned. ok is false for an empty or
// absent window. The result is identical to Window(c).Bounds() — zone
// maps are exact min/max — at none of the copying or decoding cost.
func (s *Store) WindowBounds(c int) (geo.Rect, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var r geo.Rect
	ok := false
	if lw := s.col.lazy[c]; lw != nil {
		r = geo.Rect{Min: geo.Point{X: lw.minX, Y: lw.minY}, Max: geo.Point{X: lw.maxX, Y: lw.maxY}}
		ok = true
	}
	for _, tp := range s.windows[c] {
		if !ok {
			r = geo.Rect{Min: tp.Pos(), Max: tp.Pos()}
			ok = true
			continue
		}
		r = r.ExpandToPoint(tp.Pos())
	}
	return r, ok
}

// WindowRegion returns window W_c's tuples whose positions fall inside
// region r — the merged two-source scan: a lazy columnar base streams
// through the sidecar's block iterator, which skips whole blocks whose
// zone maps miss r, and the in-memory part (the post-checkpoint suffix,
// or the whole window when nothing is lazy) is filtered directly. The
// window is never materialized. The result's tuple set is exactly
// Window(c) filtered by r, but its order is the sidecar's (cell, time)
// sort followed by the suffix's append order — use Window when append
// order matters.
func (s *Store) WindowRegion(c int, r geo.Rect) tuple.Batch {
	s.mu.RLock()
	lw := s.col.lazy[c]
	var cr *colReader
	if lw != nil && s.col.rd != nil {
		cr = s.col.rd
		cr.acquire()
	}
	var suffix tuple.Batch
	for _, tp := range s.windows[c] {
		if p := tp.Pos(); r.Contains(p) {
			suffix = append(suffix, tp)
		}
	}
	s.mu.RUnlock()
	if lw == nil {
		return suffix
	}
	if cr == nil {
		// Lazy with no reader should not happen; recover via the slow path.
		s.materializeWindow(c)
		w := s.Window(c)
		out := w[:0]
		for _, tp := range w {
			if r.Contains(tp.Pos()) {
				out = append(out, tp)
			}
		}
		return out
	}
	var base tuple.Batch
	_, _, err := cr.rd.ScanWindowRegion(c, r.Min.X, r.Min.Y, r.Max.X, r.Max.Y, func(tp tuple.Raw) {
		base = append(base, tp)
	})
	cr.release()
	if err != nil {
		// A corrupt block mid-scan: materialize (which falls back to the
		// row checkpoint) and filter the full window instead.
		s.col.fallbacks.Add(1)
		s.materializeWindow(c)
		w := s.Window(c)
		out := w[:0]
		for _, tp := range w {
			if r.Contains(tp.Pos()) {
				out = append(out, tp)
			}
		}
		return out
	}
	return append(base, suffix...)
}

// writeSidecar emits the columnar sidecar for checkpoint seq. Failures
// are counted, not returned: the row checkpoint is the authority and the
// next Open simply recovers eagerly.
func (s *Store) writeSidecar(seq int, idxs []int, batches []tuple.Batch) {
	windows := make([]colblock.WindowData, len(idxs))
	for i, c := range idxs {
		windows[i] = colblock.WindowData{Window: c, Tuples: batches[i]}
	}
	var est colblock.EncodeStats
	err := s.atomicReplace(filepath.Join(s.cfg.Dir, colblockName(seq)), func(w io.Writer) error {
		var err error
		est, err = colblock.Encode(w, seq, windows, s.cfg.Columnar.BlockTuples)
		return err
	})
	if err != nil {
		s.col.writeFailures.Add(1)
		return
	}
	s.col.sidecarsWritten.Add(1)
	s.col.blocksWritten.Add(int64(est.Blocks))
}

// ColumnarStats returns a snapshot of the columnar path's counters.
func (s *Store) ColumnarStats() ColumnarStats {
	s.mu.RLock()
	lazy := len(s.col.lazy)
	rs := s.col.retiredStats
	if s.col.rd != nil {
		live := s.col.rd.rd.Stats()
		rs.BlocksScanned += live.BlocksScanned
		rs.BlocksPruned += live.BlocksPruned
		rs.MmapReads += live.MmapReads
		rs.ReadAtReads += live.ReadAtReads
		rs.BytesRead += live.BytesRead
	}
	s.mu.RUnlock()
	return ColumnarStats{
		Enabled:             s.cfg.Columnar.Enabled,
		SidecarsWritten:     s.col.sidecarsWritten.Load(),
		BlocksWritten:       s.col.blocksWritten.Load(),
		WriteFailures:       s.col.writeFailures.Load(),
		LazyWindows:         int64(lazy),
		Materializations:    s.col.materializations.Load(),
		MaterializeFailures: s.col.materializeFailures.Load(),
		FallbackReplays:     s.col.fallbacks.Load(),
		BlocksScanned:       rs.BlocksScanned,
		BlocksPruned:        rs.BlocksPruned,
		MmapReads:           rs.MmapReads,
		ReadAtReads:         rs.ReadAtReads,
		BytesRead:           rs.BytesRead,
	}
}
