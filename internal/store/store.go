// Package store implements the server-side raw-tuple database of the
// EnviroMeter architecture (Figure 1: the `raw_tuples` table). Sensed data
// arrives as a stream of raw tuples and is organized into the paper's time
// windows W_c = [cH, (c+1)H): all query processing — naive scans, index
// builds, and model-cover estimation — operates on one window at a time.
//
// The store keeps recent windows in memory and optionally persists every
// appended batch to checksummed segment files for crash recovery, giving
// the platform the durability a real deployment ingesting a month of bus
// data needs.
package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/tuple"
)

// Config configures a Store.
type Config struct {
	// WindowLength is H, in seconds of stream time. Must be positive.
	WindowLength float64
	// Retain bounds how many windows are kept in memory; older windows are
	// evicted. Zero means keep everything (the benchmark setting).
	Retain int
	// Dir, when non-empty, enables durability: every appended batch is
	// written to a segment file under Dir before being acknowledged.
	Dir string
}

// Store is a windowed, optionally durable raw-tuple store. It is safe for
// concurrent use.
type Store struct {
	mu      sync.RWMutex
	cfg     Config
	windows map[int]tuple.Batch // window index c -> tuples in W_c
	total   int                 // tuples currently held
	maxTime float64             // largest timestamp ever appended

	seg    *os.File // open segment file, nil when durability is off
	segSeq int
}

// Open creates a store. If cfg.Dir is non-empty, existing segment files in
// it are replayed (recovery) and a new segment is opened for appends.
func Open(cfg Config) (*Store, error) {
	if cfg.WindowLength <= 0 {
		return nil, fmt.Errorf("store: WindowLength = %v, want > 0", cfg.WindowLength)
	}
	if cfg.Retain < 0 {
		return nil, fmt.Errorf("store: Retain = %d, want ≥ 0", cfg.Retain)
	}
	s := &Store{cfg: cfg, windows: make(map[int]tuple.Batch)}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: create dir: %w", err)
		}
		if err := s.recover(); err != nil {
			return nil, err
		}
		if err := s.openSegment(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustOpenMemory returns an in-memory store or panics; a convenience for
// tests and examples where the config is a known-good literal.
func MustOpenMemory(windowLength float64) *Store {
	s, err := Open(Config{WindowLength: windowLength})
	if err != nil {
		panic(err)
	}
	return s
}

// recover replays all segment files in cfg.Dir in sequence order. A
// trailing corrupt frame (torn write) is tolerated on the last segment;
// corruption elsewhere is an error.
func (s *Store) recover() error {
	names, err := segmentNames(s.cfg.Dir)
	if err != nil {
		return err
	}
	for i, name := range names {
		last := i == len(names)-1
		if err := s.replaySegment(filepath.Join(s.cfg.Dir, name), last); err != nil {
			return err
		}
	}
	if len(names) > 0 {
		fmt.Sscanf(names[len(names)-1], "segment-%06d.emt", &s.segSeq)
		s.segSeq++
	}
	return nil
}

func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: read dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".emt" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (s *Store) replaySegment(path string, tolerateTail bool) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: open segment: %w", err)
	}
	defer f.Close()
	for {
		b, err := tuple.ReadBinary(f)
		if err == io.EOF {
			return nil
		}
		if errors.Is(err, tuple.ErrCorrupt) {
			if tolerateTail {
				// Torn tail write from a crash: everything before it is
				// intact, so recovery succeeds with what we have.
				return nil
			}
			return fmt.Errorf("store: segment %s: %w", path, err)
		}
		if err != nil {
			return fmt.Errorf("store: segment %s: %w", path, err)
		}
		s.addToWindows(b)
	}
}

func (s *Store) openSegment() error {
	path := filepath.Join(s.cfg.Dir, fmt.Sprintf("segment-%06d.emt", s.segSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: open segment for append: %w", err)
	}
	s.seg = f
	return nil
}

// Append validates and ingests a batch of raw tuples. With durability on,
// the batch is persisted before the in-memory state is updated.
func (s *Store) Append(b tuple.Batch) error {
	if len(b) == 0 {
		return nil
	}
	if err := b.Validate(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg != nil {
		if err := tuple.WriteBinary(s.seg, b); err != nil {
			return fmt.Errorf("store: persist batch: %w", err)
		}
	}
	s.addToWindows(b)
	s.evictLocked()
	return nil
}

// addToWindows distributes tuples into their windows. Caller holds mu (or
// is single-threaded recovery).
func (s *Store) addToWindows(b tuple.Batch) {
	for _, r := range b {
		c := tuple.WindowIndex(r.T, s.cfg.WindowLength)
		s.windows[c] = append(s.windows[c], r)
		s.total++
		if r.T > s.maxTime {
			s.maxTime = r.T
		}
	}
}

// evictLocked drops the oldest windows beyond the retention bound.
func (s *Store) evictLocked() {
	if s.cfg.Retain == 0 || len(s.windows) <= s.cfg.Retain {
		return
	}
	idxs := make([]int, 0, len(s.windows))
	for c := range s.windows {
		idxs = append(idxs, c)
	}
	sort.Ints(idxs)
	for _, c := range idxs[:len(idxs)-s.cfg.Retain] {
		s.total -= len(s.windows[c])
		delete(s.windows, c)
	}
}

// Window returns a copy of the tuples in window W_c, sorted by time.
func (s *Store) Window(c int) tuple.Batch {
	s.mu.RLock()
	b := s.windows[c].Clone()
	s.mu.RUnlock()
	b.SortByTime()
	return b
}

// WindowAt returns the window containing stream time t, along with its
// index.
func (s *Store) WindowAt(t float64) (tuple.Batch, int) {
	c := tuple.WindowIndex(t, s.cfg.WindowLength)
	return s.Window(c), c
}

// LatestWindowIndex returns the index of the newest non-empty window.
// ok is false when the store is empty.
func (s *Store) LatestWindowIndex() (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.windows) == 0 {
		return 0, false
	}
	best := 0
	first := true
	for c := range s.windows {
		if first || c > best {
			best, first = c, false
		}
	}
	return best, true
}

// WindowIndexes returns the indexes of all retained windows in ascending
// order.
func (s *Store) WindowIndexes() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idxs := make([]int, 0, len(s.windows))
	for c := range s.windows {
		idxs = append(idxs, c)
	}
	sort.Ints(idxs)
	return idxs
}

// Len returns the total number of retained tuples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.total
}

// MaxTime returns the largest timestamp ever appended (0 for an empty
// store).
func (s *Store) MaxTime() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.maxTime
}

// WindowLength returns H.
func (s *Store) WindowLength() float64 { return s.cfg.WindowLength }

// Sync flushes the open segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return nil
	}
	return s.seg.Sync()
}

// Close syncs and closes the segment file. The in-memory state remains
// readable but further Appends with durability will fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return nil
	}
	if err := s.seg.Sync(); err != nil {
		s.seg.Close()
		s.seg = nil
		return err
	}
	err := s.seg.Close()
	s.seg = nil
	return err
}
