// Package store implements the server-side raw-tuple database of the
// EnviroMeter architecture (Figure 1: the `raw_tuples` table). Sensed data
// arrives as a stream of raw tuples and is organized into the paper's time
// windows W_c = [cH, (c+1)H): all query processing — naive scans, index
// builds, and model-cover estimation — operates on one window at a time.
//
// The store keeps recent windows in memory and optionally persists every
// appended batch to checksummed segment files for crash recovery, giving
// the platform the durability a real deployment ingesting a month of bus
// data needs.
//
// # Segment hygiene
//
// A failed batch write can leave a torn (partial) frame at the tail of
// the open segment. The store never writes after a torn frame: on a write
// error it truncates the segment back to the last good frame boundary,
// and if even the truncate fails it abandons the segment and rotates to a
// fresh one. Recovery relies on this invariant — a corrupt frame always
// sits at a segment's tail, so replay keeps every frame before it and
// ignores the rest of that segment only.
//
// # Durability and sync policy
//
// Historically the store acknowledged a durable Append as soon as the
// frame reached the OS (write(2)); fsync happened only on Sync and Close,
// so a machine crash could lose every acknowledged batch since the last
// explicit Sync. That weak guarantee is now opt-in: Config.Sync selects
// when appends reach stable storage, and its zero value is SyncEveryBatch
// — an Append with Dir set does not return before its frame is fsynced.
// SyncGrouped amortizes the fsync across a commit group (concurrent
// appenders share one fsync, acknowledged only once the group is
// durable), and SyncNever restores the historical write-and-ack behavior.
//
// # Checkpoints, recovery, and compaction
//
// Without checkpoints the segment log only ever grows, and every Open
// replays all of it just to evict most of what it read. Checkpoint
// bounds both: it writes the retained windows to checkpoint-%06d.emt
// (a checksummed header plus ordinary tuple frames), commits it via an
// atomically-replaced checksummed MANIFEST, and then deletes every
// segment at or below the checkpoint horizon — the open segment is
// rotated as part of the checkpoint, so the horizon is exact. Open
// recovers from the newest valid checkpoint (preferring the one the
// MANIFEST names) and replays only the segments after its horizon; a
// corrupt or missing checkpoint falls back to the next candidate and
// ultimately to full replay of whatever segments exist. Recovery also
// finishes interrupted compactions and deletes segments it can prove
// lie entirely behind the retention horizon, so disk stays bounded even
// when checkpoints never run. RecoveryStats reports which path Open
// took and how much it replayed; CheckpointStats counts checkpoint
// activity. See checkpoint.go for the exact file formats.
package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tuple"
)

// SyncMode selects when durable appends are flushed to stable storage.
type SyncMode int

const (
	// SyncModeEveryBatch fsyncs the segment after every appended batch,
	// before the append is acknowledged. The default when Dir is set.
	SyncModeEveryBatch SyncMode = iota
	// SyncModeGrouped groups concurrent appends into commit groups: a
	// group is sealed after MaxBatches appends or MaxDelay, whichever
	// comes first, and one fsync covers the whole group. Every append in
	// the group is acknowledged only after that fsync returns.
	SyncModeGrouped
	// SyncModeNever issues no policy-driven fsyncs: appends are
	// acknowledged once written to the OS, and data reaches stable
	// storage only on Sync, Close, or at the kernel's leisure. This is
	// the store's historical (pre-sync-policy) behavior.
	SyncModeNever
)

// SyncPolicy configures when durable appends are flushed; build one with
// SyncEveryBatch, SyncGrouped, or SyncNever. The zero value is
// SyncEveryBatch().
type SyncPolicy struct {
	Mode SyncMode
	// MaxBatches seals a commit group at this many appends
	// (SyncModeGrouped; 0 = 32).
	MaxBatches int
	// MaxDelay seals a commit group at this age, bounding how long a
	// lone append waits for company (SyncModeGrouped; 0 = 2ms).
	MaxDelay time.Duration
}

// SyncEveryBatch returns the policy that fsyncs every appended batch
// before acknowledging it.
func SyncEveryBatch() SyncPolicy { return SyncPolicy{Mode: SyncModeEveryBatch} }

// SyncGrouped returns the group-commit policy: one fsync covers up to
// maxBatches appends or maxDelay of accumulation, whichever comes first
// (0 picks the defaults: 32 batches, 2ms).
func SyncGrouped(maxBatches int, maxDelay time.Duration) SyncPolicy {
	return SyncPolicy{Mode: SyncModeGrouped, MaxBatches: maxBatches, MaxDelay: maxDelay}
}

// SyncNever returns the policy that never fsyncs on append.
func SyncNever() SyncPolicy { return SyncPolicy{Mode: SyncModeNever} }

// DurabilityStats counts the store's durable writes and fsyncs — the
// observable effect of the sync policy (under SyncGrouped, Syncs stays
// well below Appends on a concurrent append burst).
type DurabilityStats struct {
	// Appends is the number of batches durably written to segments.
	Appends int64
	// Syncs is the number of fsyncs issued (policy-driven, manual Sync,
	// and the final sync in Close).
	Syncs int64
}

// Config configures a Store.
type Config struct {
	// WindowLength is H, in seconds of stream time. Must be positive.
	WindowLength float64
	// Retain bounds how many windows are kept in memory; older windows are
	// evicted. Zero means keep everything (the benchmark setting).
	Retain int
	// Dir, when non-empty, enables durability: every appended batch is
	// written to a segment file under Dir before being acknowledged.
	Dir string
	// Sync selects when durable appends reach stable storage. The zero
	// value is SyncEveryBatch(); see SyncGrouped and SyncNever. Ignored
	// when Dir is empty.
	Sync SyncPolicy
	// KeepSegments spares the newest N checkpoint-covered segments from
	// compaction — a safety margin that keeps recent raw history on disk
	// even after a checkpoint supersedes it. 0 deletes every covered
	// segment.
	KeepSegments int
	// Columnar configures the columnar checkpoint sidecar (see
	// columnar.go): when Enabled, each checkpoint also emits a columnar
	// copy of its windows and Open recovers lazily from it. Ignored when
	// Dir is empty.
	Columnar ColumnarConfig
}

// Store is a windowed, optionally durable raw-tuple store. It is safe for
// concurrent use.
type Store struct {
	mu      sync.RWMutex
	cfg     Config
	windows map[int]tuple.Batch // window index c -> tuples in W_c
	total   int                 // tuples currently held
	maxTime float64             // largest timestamp ever appended

	seg    *segHandle // open segment, nil when durability is off
	segSeq int
	segOff int64 // end offset of the last intact frame in seg
	closed bool  // Close was called; durable appends must fail

	// retired holds segment handles sealed by a checkpoint but not yet
	// doomed: an every-batch Append (or a group-commit closer) that
	// captured a handle before the seal still fsyncs it through its own
	// reference. The next checkpoint (or Close) dooms them; the refcount
	// defers the actual close past any fsync still in flight.
	retired []*segHandle

	// col is the columnar sidecar state (reader, lazy windows, counters);
	// see columnar.go.
	col columnarState

	// group is the open commit group (SyncModeGrouped); appends join it
	// and block on its done channel until one fsync covers them all.
	// sealed holds groups detached from `group` (MaxBatches reached)
	// whose fsync has not completed yet — a failed rotation or Close
	// sync must poison these too, or their appends would be acked as
	// durable off a sync that never covered their frames.
	group   *commitGroup
	sealed  map[*commitGroup]bool
	appends atomic.Int64
	syncs   atomic.Int64

	// evictHooks run after windows are evicted, outside the store lock,
	// in registration order. Guarded by mu; keyed for unregistration.
	evictHooks map[int]func(evicted []int)
	nextHookID int

	// ckMu serializes Checkpoint calls; ckStatsMu guards ckStats so
	// stats reads never block behind a running checkpoint. ckSeq (the
	// next checkpoint sequence) is guarded by mu, like segSeq. recovery
	// is written by Open only and immutable afterwards.
	ckMu      sync.Mutex
	ckStatsMu sync.Mutex
	ckSeq     int
	ckStats   CheckpointStats
	recovery  RecoveryStats

	// writeFrame persists one batch to the segment (and to checkpoint
	// files); swapped by tests to inject torn writes. Defaults to
	// tuple.WriteBinary.
	writeFrame func(w io.Writer, b tuple.Batch) error
	// syncSeg flushes a file to stable storage; swapped by tests to
	// count or fail fsyncs. Defaults to (*os.File).Sync.
	syncSeg func(f *os.File) error
	// renameFile and removeFile are the checkpoint/compaction filesystem
	// ops, swapped by the crash-injection tests. Default os.Rename and
	// os.Remove.
	renameFile func(oldpath, newpath string) error
	removeFile func(path string) error
}

// segHandle wraps an open segment file with a reference count so the
// fsync-outside-the-lock paths (every-batch Append, group-commit close,
// a checkpoint's deferred seal sync) never race the close issued by the
// next checkpoint: each such path acquires a reference under the store
// lock while the handle is current, and doom defers the close until the
// last reference releases. Without this, a checkpoint closing the
// previous checkpoint's retired handles while an append's fsync was
// still in flight turned acknowledged-durable appends into EBADF sync
// errors.
type segHandle struct {
	f      *os.File
	refs   atomic.Int32
	doomed atomic.Bool
	closed atomic.Bool
}

// acquire takes a reference. Callers hold the store mutex, which orders
// every acquire before the doom that could close the file.
func (h *segHandle) acquire() { h.refs.Add(1) }

// release drops a reference, closing a doomed handle when the last
// reference goes.
func (h *segHandle) release() {
	if h.refs.Add(-1) == 0 && h.doomed.Load() {
		h.closeOnce()
	}
}

// doom marks the handle for close, closing immediately when no fsync is
// in flight. Called with the store mutex held.
func (h *segHandle) doom() {
	h.doomed.Store(true)
	if h.refs.Load() == 0 {
		h.closeOnce()
	}
}

// closeNow closes immediately when unreferenced (returning the close
// error) and dooms otherwise. Called with the store mutex held; used by
// Close, which wants the error when it can have one.
func (h *segHandle) closeNow() error {
	if h.refs.Load() == 0 {
		if h.closed.CompareAndSwap(false, true) {
			return h.f.Close()
		}
		return nil
	}
	h.doom()
	return nil
}

// closeOnce closes the file exactly once, no matter how many of doom and
// the racing releases reach it.
func (h *segHandle) closeOnce() {
	if h.closed.CompareAndSwap(false, true) {
		h.f.Close()
	}
}

// commitGroup is one group-commit unit: the appends that share a single
// fsync. err is written once, before done closes. failErr (guarded by
// the store mutex) poisons the group when its segment could not be
// synced on a rotation or at Close — the closer propagates it instead
// of fsyncing whatever segment is current by then.
type commitGroup struct {
	once    sync.Once
	done    chan struct{}
	timer   *time.Timer
	n       int
	err     error
	failErr error
}

// Open creates a store. If cfg.Dir is non-empty, existing segment files in
// it are replayed (recovery) and a new segment is opened for appends.
func Open(cfg Config) (*Store, error) {
	if cfg.WindowLength <= 0 {
		return nil, fmt.Errorf("store: WindowLength = %v, want > 0", cfg.WindowLength)
	}
	if cfg.Retain < 0 {
		return nil, fmt.Errorf("store: Retain = %d, want ≥ 0", cfg.Retain)
	}
	if cfg.KeepSegments < 0 {
		return nil, fmt.Errorf("store: KeepSegments = %d, want ≥ 0", cfg.KeepSegments)
	}
	switch cfg.Sync.Mode {
	case SyncModeEveryBatch, SyncModeGrouped, SyncModeNever:
	default:
		return nil, fmt.Errorf("store: unknown sync mode %d", cfg.Sync.Mode)
	}
	if cfg.Sync.Mode == SyncModeGrouped {
		if cfg.Sync.MaxBatches <= 0 {
			cfg.Sync.MaxBatches = 32
		}
		if cfg.Sync.MaxDelay <= 0 {
			cfg.Sync.MaxDelay = 2 * time.Millisecond
		}
	}
	s := &Store{
		cfg:        cfg,
		windows:    make(map[int]tuple.Batch),
		writeFrame: tuple.WriteBinary,
		syncSeg:    func(f *os.File) error { return f.Sync() },
		renameFile: os.Rename,
		removeFile: os.Remove,
	}
	s.ckStats.LastSeq = -1
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: create dir: %w", err)
		}
		if err := s.recover(); err != nil {
			return nil, err
		}
		if err := s.openSegment(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustOpenMemory returns an in-memory store or panics; a convenience for
// tests and examples where the config is a known-good literal.
func MustOpenMemory(windowLength float64) *Store {
	s, err := Open(Config{WindowLength: windowLength})
	if err != nil {
		panic(err)
	}
	return s
}

// recover rebuilds the in-memory windows from cfg.Dir: from the newest
// valid checkpoint plus the segment suffix behind its horizon when one
// exists, otherwise by full replay of every segment file. A trailing
// corrupt frame (torn write) ends a segment's replay: the write path
// guarantees nothing valid follows a torn frame within a segment (it
// truncates or rotates on write error), so the frames before it are
// kept and replay continues with the next segment. Recovery also
// deletes segments that no longer matter — those covered by the used
// checkpoint (finishing an interrupted compaction) and those whose
// every frame lies entirely behind the retention horizon.
func (s *Store) recover() error {
	names, err := segmentNames(s.cfg.Dir)
	if err != nil {
		return err
	}
	ckSeqs, err := checkpointSeqs(s.cfg.Dir)
	if err != nil {
		return err
	}
	s.removeStrayTmp()
	if len(ckSeqs) > 0 {
		s.ckSeq = ckSeqs[0] + 1
	}

	// Candidate order: the manifest-committed checkpoint first (the
	// common case needs exactly one validation), then the rest newest
	// first — a complete checkpoint whose manifest rename was lost is
	// still preferable to replaying the whole log.
	candidates := ckSeqs
	if manSeq, _, err := readManifest(s.cfg.Dir); err == nil {
		reordered := make([]int, 0, len(ckSeqs))
		reordered = append(reordered, manSeq)
		for _, seq := range ckSeqs {
			if seq != manSeq {
				reordered = append(reordered, seq)
			}
		}
		candidates = reordered
	}
	horizon := -1
	for _, seq := range candidates {
		var hdr ckHeader
		if s.cfg.Columnar.Enabled {
			// Lazy columnar recovery: validate the row header, open the
			// sidecar, and register every window as lazy — no tuple is
			// decoded until something asks for its window. A missing or
			// inconsistent sidecar falls through to the eager row read.
			if h, ok := s.tryLazyRecover(seq); ok {
				hdr = h
				s.recovery.Columnar = true
			}
		}
		if !s.recovery.Columnar {
			h, batches, err := readCheckpointFile(filepath.Join(s.cfg.Dir, checkpointName(seq)))
			if err != nil {
				s.recovery.CorruptCheckpoints++
				continue
			}
			hdr = h
			for _, b := range batches {
				s.addToWindows(b)
			}
		}
		// The recovered checkpoint IS the newest committed one: seed the
		// checkpoint counters so LastSeq survives a restart (the window
		// count is read before eviction — it is the checkpoint's, even
		// if a lowered Retain trims it right after).
		s.ckStats.LastSeq = int64(seq)
		s.ckStats.LastWindows = int64(len(s.windows) + len(s.col.lazy))
		s.ckStats.LastTuples = int64(hdr.tuples)
		s.evictLocked()
		// The header's maxTime can exceed every retained tuple's (the
		// tuple that set it may live in an evicted window); restoring it
		// keeps MaxTime exact across restarts.
		if hdr.maxTime > s.maxTime {
			s.maxTime = hdr.maxTime
		}
		horizon = hdr.horizon
		s.recovery.FromCheckpoint = true
		s.recovery.CheckpointSeq = seq
		s.recovery.CheckpointTuples = hdr.tuples
		break
	}

	type segInfo struct {
		name    string
		covered bool // at or below the used checkpoint's horizon
		frames  int
		maxWin  int
	}
	infos := make([]segInfo, 0, len(names))
	for _, name := range names {
		seq, _ := parseSeq(name, "segment-")
		if s.recovery.FromCheckpoint && seq <= horizon {
			infos = append(infos, segInfo{name: name, covered: true})
			continue
		}
		frames, maxWin, tuples, err := s.replaySegment(filepath.Join(s.cfg.Dir, name))
		if err != nil {
			return err
		}
		s.recovery.SegmentsReplayed++
		s.recovery.TuplesReplayed += tuples
		infos = append(infos, segInfo{name: name, frames: frames, maxWin: maxWin})
		// Re-apply the retention bound as we go: segments hold every
		// window ever appended, and a restarted store must come back no
		// larger than a running one — nor hold more than ~Retain windows
		// plus one segment's worth at any point during replay. No hooks
		// can be registered yet, so the evicted list needs no fan-out.
		s.evictLocked()
	}
	switch {
	case len(names) > 0:
		last, _ := parseSeq(names[len(names)-1], "segment-")
		s.segSeq = last + 1
	case horizon >= 0:
		// All segments compacted away: keep numbering past the horizon
		// so a future checkpoint's coverage claim stays unambiguous.
		s.segSeq = horizon + 1
	}

	// Deletion pass. Covered segments are an interrupted compaction (or
	// a lowered KeepSegments); resume it with the same sparing rule
	// Checkpoint's own compaction uses. When no checkpoint was usable,
	// horizon is -1 and nothing is covered. Before deleting anything,
	// the manifest must name the checkpoint actually used: recovery may
	// have picked one the manifest does not point at (orphaned by a
	// crashed commit, or a fallback past an unreadable candidate), and
	// deleting its covered segments while MANIFEST names another
	// checkpoint would let a later recovery prefer that other
	// checkpoint and look for segments that no longer exist.
	if s.recovery.FromCheckpoint {
		committed := false
		if manSeq, manHor, err := readManifest(s.cfg.Dir); err == nil &&
			manSeq == s.recovery.CheckpointSeq && manHor == horizon {
			committed = true
		} else if err := s.writeManifest(s.recovery.CheckpointSeq, horizon); err == nil {
			committed = true
		}
		if committed {
			for _, name := range s.coveredToDelete(names, horizon) {
				if s.removeFile(filepath.Join(s.cfg.Dir, name)) == nil {
					s.recovery.SegmentsDeleted++
				}
			}
		}
	}
	// Retention-dead segments: every intact frame sits in a window
	// older than the oldest retained one, so replaying this segment
	// again can never contribute data — reclaim it now instead of
	// re-reading it on every restart. (A torn tail holds no
	// acknowledged data, so it does not keep a segment alive.)
	if retained := s.unionIndexesLocked(); s.cfg.Retain > 0 && len(retained) > 0 {
		minRetained := retained[0]
		for _, in := range infos {
			if in.covered {
				continue
			}
			if in.frames == 0 || in.maxWin < minRetained {
				if s.removeFile(filepath.Join(s.cfg.Dir, in.name)) == nil {
					s.recovery.SegmentsDeleted++
				}
			}
		}
	}
	return nil
}

// removeStrayTmp clears ".tmp" leftovers of checkpoint/manifest writes
// that crashed before their rename. Best-effort: a leftover is inert.
func (s *Store) removeStrayTmp() {
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".tmp" {
			os.Remove(filepath.Join(s.cfg.Dir, e.Name()))
		}
	}
}

// segmentNames lists the segment files in dir in sequence order.
// Checkpoint files share the directory and the .emt extension but are
// never segments — replaying one would double-count its tuples.
func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: read dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, ok := parseSeq(e.Name(), "segment-"); ok {
			names = append(names, e.Name())
		}
	}
	sort.Slice(names, func(i, j int) bool {
		a, _ := parseSeq(names[i], "segment-")
		b, _ := parseSeq(names[j], "segment-")
		return a < b
	})
	return names, nil
}

// replaySegment replays one segment into the windows, returning how
// many intact frames and tuples it contributed and the largest window
// index it touched (meaningless when frames is 0).
func (s *Store) replaySegment(path string) (frames, maxWin, tuples int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("store: open segment: %w", err)
	}
	defer f.Close()
	var off int64 // start of the frame being read
	for {
		b, err := tuple.ReadBinary(f)
		if errors.Is(err, io.EOF) {
			return frames, maxWin, tuples, nil
		}
		if errors.Is(err, tuple.ErrCorrupt) {
			// A torn tail write (crash, or a rotated-away segment) is
			// legitimate: everything before it is intact and the write
			// discipline guarantees nothing was appended after it. An
			// intact frame AFTER the corruption cannot come from that
			// discipline — that is real damage (bitrot, external
			// writes), and silently dropping the acknowledged frames
			// behind it would be data loss, so fail loudly. Only this
			// rare path buffers the file to scan past the corruption —
			// and if the file cannot even be re-read, refuse to guess.
			data, rerr := os.ReadFile(path)
			if rerr != nil {
				return frames, maxWin, tuples, fmt.Errorf("store: segment %s: %w (could not verify torn tail: %v)", path, err, rerr)
			}
			if off+1 < int64(len(data)) && tuple.ContainsFrame(data[off+1:]) {
				return frames, maxWin, tuples, fmt.Errorf("store: segment %s: %w (intact frames follow the corruption; not a torn tail)", path, err)
			}
			return frames, maxWin, tuples, nil
		}
		if err != nil {
			return frames, maxWin, tuples, fmt.Errorf("store: segment %s: %w", path, err)
		}
		s.addToWindows(b)
		for i, r := range b {
			if c := tuple.WindowIndex(r.T, s.cfg.WindowLength); (frames == 0 && i == 0) || c > maxWin {
				maxWin = c
			}
		}
		frames++
		tuples += len(b)
		off += int64(tuple.EncodedSize(len(b)))
	}
}

func (s *Store) openSegment() error {
	path := filepath.Join(s.cfg.Dir, fmt.Sprintf("segment-%06d.emt", s.segSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: open segment for append: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: stat segment: %w", err)
	}
	s.seg = &segHandle{f: f}
	s.segOff = info.Size()
	return nil
}

// Append validates and ingests a batch of raw tuples. With durability on,
// the batch is persisted before the in-memory state is updated and — per
// the sync policy — flushed to stable storage before Append returns; a
// batch that cannot be persisted is not ingested. Under SyncGrouped the
// final wait is shared: the append blocks until its commit group's single
// fsync covers it. A sync failure is returned to every append it covers
// (the in-memory state keeps the batch; only its durability is in doubt).
// Eviction hooks registered with OnEvict run after the append, outside
// the store lock.
//
//ctxcheck:allow the group-commit wait is bounded by Sync.MaxDelay
func (s *Store) Append(b tuple.Batch) error {
	if len(b) == 0 {
		return nil
	}
	if err := b.Validate(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var syncErr error
	var group *commitGroup
	var seal bool
	s.mu.Lock()
	if s.cfg.Dir != "" {
		if err := s.persistLocked(b); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.addToWindows(b)
	evicted := s.evictLocked()
	var hooks []func(evicted []int)
	if len(evicted) > 0 && len(s.evictHooks) > 0 {
		ids := make([]int, 0, len(s.evictHooks))
		for id := range s.evictHooks {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		hooks = make([]func(evicted []int), len(ids))
		for i, id := range ids {
			hooks[i] = s.evictHooks[id]
		}
	}
	var everySeg *segHandle
	if s.cfg.Dir != "" && s.seg != nil {
		switch s.cfg.Sync.Mode {
		case SyncModeEveryBatch:
			everySeg = s.seg
			everySeg.acquire()
		case SyncModeGrouped:
			group, seal = s.joinGroupLocked()
		}
	}
	s.mu.Unlock()
	if everySeg != nil {
		// Fsync outside the lock: holding mu through an fsync would stall
		// every reader (the whole query path) per append. The frame is
		// already written, and the acquired reference keeps the handle
		// open past any concurrent checkpoint that retires and dooms it.
		syncErr = s.doSync(everySeg.f)
		everySeg.release()
	}
	if group != nil {
		if seal {
			s.closeGroup(group)
		}
		<-group.done
		syncErr = group.err
	}
	for _, fn := range hooks {
		fn(evicted)
	}
	if syncErr != nil {
		return fmt.Errorf("store: sync: %w", syncErr)
	}
	return nil
}

// doSync flushes f to stable storage, counting the fsync.
func (s *Store) doSync(f *os.File) error {
	s.syncs.Add(1)
	return s.syncSeg(f)
}

// joinGroupLocked adds the calling append to the open commit group,
// opening one (with its MaxDelay timer) if none is pending. seal is true
// when this append filled the group to MaxBatches: the caller must then
// close the group itself, performing the group's fsync inline. Caller
// holds mu.
func (s *Store) joinGroupLocked() (g *commitGroup, seal bool) {
	if s.group == nil {
		g := &commitGroup{done: make(chan struct{})} //bounded: signal-only latch; closed once after the group fsync
		g.timer = time.AfterFunc(s.cfg.Sync.MaxDelay, func() { s.closeGroup(g) })
		s.group = g
	}
	g = s.group
	g.n++
	if g.n >= s.cfg.Sync.MaxBatches {
		s.group = nil // later appends start a fresh group
		if s.sealed == nil {
			s.sealed = make(map[*commitGroup]bool)
		}
		s.sealed[g] = true // visible to poisoning until its fsync resolves
		return g, true
	}
	return g, false
}

// closeGroup seals g: detaches it from the store, issues the group's one
// fsync, and releases every append waiting on it. Called by the append
// that filled the group or by the group's MaxDelay timer — whichever
// fires first wins; the call is idempotent. A group poisoned by a failed
// rotation or Close sync (failErr) propagates that error instead of
// fsyncing whatever segment is current by now; a store closed in the
// meantime has already synced the group's frames under its lock.
func (s *Store) closeGroup(g *commitGroup) {
	g.once.Do(func() {
		// g.timer and g.failErr are written under mu; reading them under
		// mu orders this (possibly timer-goroutine) read after those
		// writes.
		s.mu.Lock()
		if s.group == g {
			s.group = nil
		}
		delete(s.sealed, g)
		seg := s.seg
		closed := s.closed
		if seg != nil && !closed {
			seg.acquire()
		}
		timer := g.timer
		ferr := g.failErr
		s.mu.Unlock()
		if timer != nil {
			timer.Stop()
		}
		switch {
		case ferr != nil:
			g.err = ferr
			if seg != nil && !closed {
				seg.release()
			}
		case seg != nil && !closed:
			g.err = s.doSync(seg.f)
			seg.release()
		}
		close(g.done)
	})
}

// DurabilityStats returns the append/fsync counters.
func (s *Store) DurabilityStats() DurabilityStats {
	return DurabilityStats{Appends: s.appends.Load(), Syncs: s.syncs.Load()}
}

// persistLocked writes one batch frame to the open segment, maintaining
// the invariant that the segment never holds bytes after a torn frame: a
// failed write is rolled back by truncating to the last good frame
// boundary, and if the truncate fails too the segment is abandoned and a
// fresh one rotated in. Caller holds mu.
func (s *Store) persistLocked(b tuple.Batch) error {
	if s.closed {
		return errors.New("store: closed")
	}
	if s.seg == nil {
		// The previous rotation failed; retry so durability heals as
		// soon as the directory is writable again.
		if err := s.openSegment(); err != nil {
			return err
		}
	}
	//lockcheck:allow writeFrame is the test crash-injection seam; segment writes must serialize under mu
	if err := s.writeFrame(s.seg.f, b); err != nil {
		werr := fmt.Errorf("store: persist batch: %w", err)
		if terr := s.seg.f.Truncate(s.segOff); terr == nil {
			return werr
		}
		// Truncate failed: the torn frame stays, so this segment must
		// never be appended to again. Before abandoning it, sync it —
		// earlier intact frames may belong to an open commit group (or to
		// an every-batch append racing toward its fsync) and must not be
		// lost with the handle. If even that sync fails, poison the group
		// so its appends are NOT acknowledged as durable; its timer will
		// complete it with the error.
		if serr := s.doSync(s.seg.f); serr != nil {
			if g := s.group; g != nil {
				s.group = nil
				g.failErr = serr
			}
			for g := range s.sealed {
				if g.failErr == nil {
					g.failErr = serr
				}
			}
		}
		s.seg.doom()
		s.seg = nil
		s.segSeq++
		if oerr := s.openSegment(); oerr != nil {
			return errors.Join(werr, oerr)
		}
		return werr
	}
	s.segOff += int64(tuple.EncodedSize(len(b)))
	s.appends.Add(1)
	return nil
}

// OnEvict registers fn to run after windows are evicted by the retention
// bound. Hooks run outside the store lock, in registration order, with
// the evicted window indexes in ascending order. The cover maintainer
// uses this to keep its cache within the retention horizon. The returned
// function unregisters the hook — otherwise the store keeps (and keeps
// invoking) it for its whole lifetime.
func (s *Store) OnEvict(fn func(evicted []int)) (unregister func()) {
	s.mu.Lock()
	if s.evictHooks == nil {
		s.evictHooks = make(map[int]func(evicted []int))
	}
	id := s.nextHookID
	s.nextHookID++
	s.evictHooks[id] = fn
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		delete(s.evictHooks, id)
		s.mu.Unlock()
	}
}

// Retain returns the store's retention bound (0 = unbounded).
func (s *Store) Retain() int { return s.cfg.Retain }

// addToWindows distributes tuples into their windows. Caller holds mu (or
// is single-threaded recovery).
func (s *Store) addToWindows(b tuple.Batch) {
	for _, r := range b {
		c := tuple.WindowIndex(r.T, s.cfg.WindowLength)
		s.windows[c] = append(s.windows[c], r)
		s.total++
		if r.T > s.maxTime {
			s.maxTime = r.T
		}
	}
}

// unionIndexesLocked returns the distinct retained window indexes —
// in-memory and lazy columnar — in ascending order. Caller holds mu.
func (s *Store) unionIndexesLocked() []int {
	idxs := make([]int, 0, len(s.windows)+len(s.col.lazy))
	for c := range s.windows {
		idxs = append(idxs, c)
	}
	for c := range s.col.lazy {
		if _, ok := s.windows[c]; !ok {
			idxs = append(idxs, c)
		}
	}
	sort.Ints(idxs)
	return idxs
}

// evictLocked drops the oldest windows beyond the retention bound and
// returns their indexes in ascending order (nil when nothing is evicted).
// A window counts once whether it lives in memory, lazily in the
// columnar sidecar, or (base + suffix) in both; eviction drops both
// halves.
func (s *Store) evictLocked() []int {
	if s.cfg.Retain == 0 {
		return nil
	}
	idxs := s.unionIndexesLocked()
	if len(idxs) <= s.cfg.Retain {
		return nil
	}
	evicted := idxs[:len(idxs)-s.cfg.Retain]
	for _, c := range evicted {
		s.total -= len(s.windows[c])
		delete(s.windows, c)
		if lw := s.col.lazy[c]; lw != nil {
			s.total -= lw.count
			delete(s.col.lazy, c)
		}
	}
	return evicted
}

// Window returns a copy of the tuples in window W_c, sorted by time. A
// window still lazy in the columnar sidecar is materialized first, so
// callers see the full base + suffix contents either way.
func (s *Store) Window(c int) tuple.Batch {
	s.mu.RLock()
	lazy := s.col.lazy[c] != nil
	var b tuple.Batch
	if !lazy {
		b = s.windows[c].Clone()
	}
	s.mu.RUnlock()
	if lazy {
		s.materializeWindow(c)
		s.mu.RLock()
		b = s.windows[c].Clone()
		s.mu.RUnlock()
	}
	b.SortByTime()
	return b
}

// WindowLen returns the number of tuples in window W_c without copying
// (or materializing) it — the cheap emptiness/size probe for query
// planning.
func (s *Store) WindowLen(c int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := len(s.windows[c])
	if lw := s.col.lazy[c]; lw != nil {
		n += lw.count
	}
	return n
}

// WindowAt returns the window containing stream time t, along with its
// index.
func (s *Store) WindowAt(t float64) (tuple.Batch, int) {
	c := tuple.WindowIndex(t, s.cfg.WindowLength)
	return s.Window(c), c
}

// LatestWindowIndex returns the index of the newest non-empty window.
// ok is false when the store is empty.
func (s *Store) LatestWindowIndex() (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	best := 0
	first := true
	for c := range s.windows {
		if first || c > best {
			best, first = c, false
		}
	}
	for c := range s.col.lazy {
		if first || c > best {
			best, first = c, false
		}
	}
	return best, !first
}

// WindowIndexes returns the indexes of all retained windows — in-memory
// and lazy columnar — in ascending order.
func (s *Store) WindowIndexes() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.unionIndexesLocked()
}

// Len returns the total number of retained tuples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.total
}

// MaxTime returns the largest timestamp ever appended (0 for an empty
// store).
func (s *Store) MaxTime() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.maxTime
}

// WindowLength returns H.
func (s *Store) WindowLength() float64 { return s.cfg.WindowLength }

// Sync flushes the open segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return nil
	}
	return s.doSync(s.seg.f)
}

// Close syncs and closes the segment file. A pending commit group is
// released once the final sync has covered its frames. The in-memory
// state remains readable but further Appends with durability will fail.
func (s *Store) Close() error {
	s.mu.Lock()
	s.closed = true
	group := s.group
	s.group = nil
	var err error
	if s.seg != nil {
		// Sync under the lock: a concurrently-firing group timer must not
		// release the group's waiters before this sync has covered them.
		if err = s.doSync(s.seg.f); err != nil {
			s.seg.doom()
		} else {
			err = s.seg.closeNow()
		}
		s.seg = nil
	}
	// Retired handles were normally fsynced when their checkpoint
	// sealed them; a final best-effort sync covers the rare seal whose
	// deferred fsync failed (possible only under SyncNever, which
	// promises nothing, but flushing here costs one no-op fsync).
	for _, h := range s.retired {
		if serr := s.doSync(h.f); serr != nil && err == nil {
			err = serr
		}
		if cerr := h.closeNow(); cerr != nil && err == nil {
			err = cerr
		}
	}
	s.retired = nil
	// Drop the sidecar reader; still-lazy windows fall back to the row
	// checkpoint file if something reads them after Close.
	s.retireReaderLocked()
	if group != nil {
		// Hand the group this sync's outcome under mu: whichever of
		// Close and the group's timer wins the once reads it there, so a
		// failed final sync can never be acknowledged as durable.
		group.failErr = err
	}
	if err != nil {
		// Sealed groups awaiting their fsync are covered by this failed
		// sync too; their sealers must not ack them as durable.
		for g := range s.sealed {
			if g.failErr == nil {
				g.failErr = err
			}
		}
	}
	s.mu.Unlock()
	if group != nil {
		s.closeGroup(group)
	}
	return err
}
